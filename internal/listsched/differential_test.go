package listsched

import (
	"math"
	"math/rand"
	"testing"

	"grads/internal/core"
)

// TestSerialLowerBound: on a single-node grid every transfer costs zero, so
// any work-conserving schedule is serial and its makespan must equal the
// critical-path lower bound — the summed execution cost of all tasks —
// with a gapless timeline.
func TestSerialLowerBound(t *testing.T) {
	specs := parseSuite(t)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, s := soloGrid(t, seed)
		resources := g.Nodes()
		node := resources[0]
		for _, z := range specs {
			w, err := z.Build(rng)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.0
			for _, c := range w.Components {
				want += s.ECost(c, node)
			}
			for _, name := range Names() {
				h, _ := New(name)
				res, err := h.Schedule(NewContext(s, w, resources))
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, z, name, err)
				}
				if math.Abs(res.Makespan-want) > 1e-9*want {
					t.Errorf("seed %d %s %s: makespan %v != serial lower bound %v",
						seed, z, name, res.Makespan, want)
				}
				tl := res.Timelines[0]
				if math.Abs(tl.Busy()-tl.End()) > 1e-9*want {
					t.Errorf("seed %d %s %s: timeline has gaps: busy %v, end %v",
						seed, z, name, tl.Busy(), tl.End())
				}
			}
		}
	}
}

// TestMinMinAdapterMatchesCore: the engine's min-min adapter must reproduce
// core.Scheduler.ScheduleWith(core.MinMin) exactly — same node pointers and
// bit-identical start/finish floats — on a shared heterogeneous grid, for
// every zoo class. This pins the engine's cost primitives, ready ordering,
// and tie-breaking to the paper scheduler's.
func TestMinMinAdapterMatchesCore(t *testing.T) {
	specs := parseSuite(t)
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, s := testGrid(t, seed)
		resources := g.Nodes()
		for _, z := range specs {
			w, err := z.Build(rng)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := s.ScheduleWith(core.MinMin, w, resources)
			if err != nil {
				t.Fatalf("seed %d %s: core: %v", seed, z, err)
			}
			h, _ := New(MinMinAdapter)
			res, err := h.Schedule(NewContext(s, w, resources))
			if err != nil {
				t.Fatalf("seed %d %s: engine: %v", seed, z, err)
			}
			if res.Makespan != ref.Makespan {
				t.Fatalf("seed %d %s: makespan %v != core %v", seed, z, res.Makespan, ref.Makespan)
			}
			for i := range ref.Assignments {
				a, b := res.Assignments[i], ref.Assignments[i]
				if a.Node != b.Node || a.Start != b.Start || a.Finish != b.Finish {
					t.Fatalf("seed %d %s: component %d engine {%s %v %v} != core {%s %v %v}",
						seed, z, i, a.Node.Name(), a.Start, a.Finish, b.Node.Name(), b.Start, b.Finish)
				}
			}
		}
	}
}

// TestHEFTNeverWorseSerial: on the heterogeneous grid HEFT's makespan never
// exceeds running everything serially on the single fastest node (HEFT
// considers that placement among its candidates task by task).
func TestHEFTNeverWorseSerial(t *testing.T) {
	specs := parseSuite(t)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, s := testGrid(t, seed)
		resources := g.Nodes()
		for _, z := range specs {
			if z.Class == ZooEMAN {
				continue // arch constraints force cross-node hops
			}
			w, err := z.Build(rng)
			if err != nil {
				t.Fatal(err)
			}
			bestSerial := math.Inf(1)
			for _, r := range resources {
				sum, ok := 0.0, true
				for _, c := range w.Components {
					if !core.Eligible(c, r) {
						ok = false
						break
					}
					sum += s.ECost(c, r)
				}
				if ok && sum < bestSerial {
					bestSerial = sum
				}
			}
			h, _ := New(HEFT)
			res, err := h.Schedule(NewContext(s, w, resources))
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan > bestSerial*(1+1e-9) {
				t.Errorf("seed %d %s: HEFT makespan %v worse than serial-fastest %v",
					seed, z, res.Makespan, bestSerial)
			}
		}
	}
}
