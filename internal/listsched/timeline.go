package listsched

import (
	"fmt"
	"math"
	"sort"
)

// Slot is one occupied interval [Start, End) on a node timeline: either a
// scheduled task (Reserved false, Label = task name) or an advance
// reservation (Reserved true) that scheduling must leave untouched.
type Slot struct {
	Start, End float64
	Label      string
	Reserved   bool
}

// Timeline is one node's reservation timeline: a sorted, non-overlapping
// slot list supporting earliest-gap queries and insertion. Slots may touch
// ([a,b) then [b,c)) but never overlap. It is the structure the HEFT-style
// insertion policy and advance reservations share: an EASY-backfill queue
// that publishes its reservations here gets respected automatically,
// because EarliestFit never returns a start that would intersect one.
type Timeline struct {
	slots []Slot
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Slots returns the occupied intervals in start order. The caller must not
// mutate the returned slice.
func (t *Timeline) Slots() []Slot { return t.slots }

// End returns the end of the last occupied interval, or 0 for an empty
// timeline — the "node free" time of an append-only (non-backfilling)
// scheduler.
func (t *Timeline) End() float64 {
	if len(t.slots) == 0 {
		return 0
	}
	return t.slots[len(t.slots)-1].End
}

// Busy returns the total occupied duration, reservations included.
func (t *Timeline) Busy() float64 {
	sum := 0.0
	for _, s := range t.slots {
		sum += s.End - s.Start
	}
	return sum
}

// EarliestFit returns the earliest start ≥ ready at which a slot of length
// dur fits without overlapping any occupied interval: either inside a gap
// between existing slots or after the last one. A zero-length request fits
// at the first instant ≥ ready not interior to a slot.
func (t *Timeline) EarliestFit(ready, dur float64) float64 {
	start := ready
	for _, s := range t.slots {
		if s.End <= start {
			continue // entirely before the candidate start
		}
		if start+dur <= s.Start {
			return start // fits in the gap before this slot
		}
		start = s.End // collide: try right after this slot
	}
	return start
}

// insert places [start, start+dur) with the given label, keeping the slot
// list sorted, and fails if the interval would overlap an existing slot or
// is malformed.
func (t *Timeline) insert(start, dur float64, label string, reserved bool) error {
	end := start + dur
	if math.IsNaN(start) || math.IsInf(start, 0) || dur < 0 || math.IsInf(end, 1) {
		return fmt.Errorf("listsched: bad slot [%v, %v) %q", start, end, label)
	}
	i := sort.Search(len(t.slots), func(i int) bool { return t.slots[i].Start >= start })
	// Overlap can only involve the neighbor ending after our start or the
	// neighbor starting before our end.
	if i > 0 && t.slots[i-1].End > start {
		return fmt.Errorf("listsched: slot [%v, %v) %q overlaps [%v, %v) %q",
			start, end, label, t.slots[i-1].Start, t.slots[i-1].End, t.slots[i-1].Label)
	}
	if i < len(t.slots) && t.slots[i].Start < end {
		return fmt.Errorf("listsched: slot [%v, %v) %q overlaps [%v, %v) %q",
			start, end, label, t.slots[i].Start, t.slots[i].End, t.slots[i].Label)
	}
	t.slots = append(t.slots, Slot{})
	copy(t.slots[i+1:], t.slots[i:])
	t.slots[i] = Slot{Start: start, End: end, Label: label, Reserved: reserved}
	return nil
}

// Insert places a task slot [start, start+dur).
func (t *Timeline) Insert(start, dur float64, label string) error {
	return t.insert(start, dur, label, false)
}

// Reserve places an advance reservation [start, start+dur): an interval
// scheduling treats as occupied and the validity harness checks is still
// present, unmodified, in the final timeline.
func (t *Timeline) Reserve(start, dur float64, label string) error {
	return t.insert(start, dur, label, true)
}

// CheckInvariants verifies sortedness and pairwise non-overlap.
func (t *Timeline) CheckInvariants() error {
	for i, s := range t.slots {
		if s.End < s.Start {
			return fmt.Errorf("listsched: inverted slot [%v, %v) %q", s.Start, s.End, s.Label)
		}
		if i > 0 && t.slots[i-1].End > s.Start {
			return fmt.Errorf("listsched: slots [%v, %v) %q and [%v, %v) %q overlap",
				t.slots[i-1].Start, t.slots[i-1].End, t.slots[i-1].Label, s.Start, s.End, s.Label)
		}
	}
	return nil
}

// Clone returns an independent copy of the timeline.
func (t *Timeline) Clone() *Timeline {
	return &Timeline{slots: append([]Slot(nil), t.slots...)}
}
