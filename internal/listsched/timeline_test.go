package listsched

import (
	"math"
	"math/rand"
	"testing"
)

func TestTimelineEarliestFit(t *testing.T) {
	tl := NewTimeline()
	if err := tl.Reserve(10, 5, "r1"); err != nil { // [10, 15)
		t.Fatal(err)
	}
	if err := tl.Insert(20, 10, "a"); err != nil { // [20, 30)
		t.Fatal(err)
	}
	cases := []struct {
		ready, dur, want float64
	}{
		{0, 5, 0},   // fits before everything
		{0, 10, 0},  // exactly fills [0, 10)
		{0, 11, 30}, // too big for both gaps: after everything
		{0, 6, 0},   // head gap [0, 10) holds dur 6
		{8, 3, 15},  // [8, 11) collides with r1: middle gap
		{12, 2, 15}, // ready inside r1
		{15, 5, 15}, // exactly fills the middle gap
		{15, 6, 30}, // overruns into "a": goes after everything
		{25, 1, 30}, // ready inside "a"
		{40, 3, 40}, // after the end
		{0, 0, 0},   // zero-length at ready
		{10, 0, 10}, // zero-length at a slot boundary stays put
	}
	for _, tc := range cases {
		if got := tl.EarliestFit(tc.ready, tc.dur); got != tc.want {
			t.Errorf("EarliestFit(%v, %v) = %v, want %v", tc.ready, tc.dur, got, tc.want)
		}
	}
}

func TestTimelineInsertErrors(t *testing.T) {
	tl := NewTimeline()
	if err := tl.Insert(10, 10, "a"); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name       string
		start, dur float64
	}{
		{"overlap-left", 5, 6},
		{"overlap-right", 19, 5},
		{"contained", 12, 2},
		{"covers", 5, 30},
		{"negative-dur", 0, -1},
		{"nan", math.NaN(), 1},
		{"inf", math.Inf(1), 1},
	}
	for _, tc := range bad {
		if err := tl.Insert(tc.start, tc.dur, tc.name); err == nil {
			t.Errorf("%s: Insert(%v, %v) succeeded, want error", tc.name, tc.start, tc.dur)
		}
	}
	// Touching slots are legal.
	if err := tl.Insert(20, 5, "b"); err != nil {
		t.Fatalf("touching insert failed: %v", err)
	}
	if err := tl.Insert(5, 5, "c"); err != nil {
		t.Fatalf("left-touching insert failed: %v", err)
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tl.End(); got != 25 {
		t.Fatalf("End = %v, want 25", got)
	}
	if got := tl.Busy(); got != 20 {
		t.Fatalf("Busy = %v, want 20", got)
	}
}

// TestTimelineFitNeverOverlaps drives random fit-then-insert rounds and
// checks the invariants after every step: whatever EarliestFit returns must
// insert cleanly.
func TestTimelineFitNeverOverlaps(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		for i := 0; i < 200; i++ {
			ready := rng.Float64() * 500
			dur := rng.Float64() * 30
			start := tl.EarliestFit(ready, dur)
			if start < ready {
				t.Fatalf("seed %d: EarliestFit(%v, %v) = %v < ready", seed, ready, dur, start)
			}
			if err := tl.Insert(start, dur, "x"); err != nil {
				t.Fatalf("seed %d: fit %v did not insert: %v", seed, start, err)
			}
			if err := tl.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
		}
	}
}

// TestTimelineFitIsEarliest cross-checks EarliestFit against a brute-force
// scan over candidate starts (gap edges and the ready instant).
func TestTimelineFitIsEarliest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		tl := NewTimeline()
		for i := 0; i < 20; i++ {
			s := rng.Float64() * 300
			d := rng.Float64() * 20
			_ = tl.Insert(tl.EarliestFit(s, d), d, "x")
		}
		ready := rng.Float64() * 300
		dur := rng.Float64() * 25
		got := tl.EarliestFit(ready, dur)

		fits := func(start float64) bool {
			if start < ready {
				return false
			}
			for _, s := range tl.Slots() {
				if s.Start < start+dur && start < s.End {
					return false
				}
			}
			return true
		}
		if !fits(got) {
			t.Fatalf("trial %d: EarliestFit(%v, %v) = %v does not fit", trial, ready, dur, got)
		}
		// No candidate start strictly earlier than got may fit: candidates
		// are ready itself and every slot end.
		for _, cand := range append([]float64{ready}, slotEnds(tl)...) {
			if cand < got && fits(cand) {
				t.Fatalf("trial %d: EarliestFit(%v, %v) = %v but %v fits earlier", trial, ready, dur, got, cand)
			}
		}
	}
}

func slotEnds(tl *Timeline) []float64 {
	ends := make([]float64, 0, len(tl.Slots()))
	for _, s := range tl.Slots() {
		ends = append(ends, s.End)
	}
	return ends
}
