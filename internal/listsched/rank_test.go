package listsched

import (
	"math/rand"
	"sort"
	"testing"

	"grads/internal/core"
)

// TestUpwardRankMonotone: rank_u strictly decreases along every edge — the
// predecessor's rank includes its own positive execution cost plus the path
// through the successor, so scheduling by decreasing rank is topological.
func TestUpwardRankMonotone(t *testing.T) {
	specs := parseSuite(t)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, s := testGrid(t, seed)
		resources := g.Nodes()
		for _, z := range specs {
			w, err := z.Build(rng)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, z, err)
			}
			ctx := NewContext(s, w, resources)
			ranks := UpwardRanks(ctx)
			for i := 0; i < w.Len(); i++ {
				if ranks[i] <= 0 {
					t.Fatalf("seed %d %s: rank[%d] = %v, want > 0", seed, z, i, ranks[i])
				}
				for _, d := range w.Deps(i) {
					if ranks[d] <= ranks[i] {
						t.Fatalf("seed %d %s: rank not monotone along edge %d→%d: %v <= %v",
							seed, z, d, i, ranks[d], ranks[i])
					}
				}
			}
			down := DownwardRanks(ctx)
			for i := 0; i < w.Len(); i++ {
				for _, d := range w.Deps(i) {
					if down[d] >= down[i] {
						t.Fatalf("seed %d %s: rank_d not monotone along edge %d→%d: %v >= %v",
							seed, z, d, i, down[d], down[i])
					}
				}
				if len(w.Deps(i)) == 0 && down[i] != 0 {
					t.Fatalf("seed %d %s: entry %d has rank_d %v, want 0", seed, z, i, down[i])
				}
			}
		}
	}
}

// randomTopoPerm draws a random topological insertion order of w: perm[k]
// is the original index inserted k-th.
func randomTopoPerm(rng *rand.Rand, w *core.Workflow) []int {
	n := w.Len()
	placed := make([]bool, n)
	perm := make([]int, 0, n)
	for len(perm) < n {
		var ready []int
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			ok := true
			for _, d := range w.Deps(i) {
				if !placed[d] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, i)
			}
		}
		pick := ready[rng.Intn(len(ready))]
		placed[pick] = true
		perm = append(perm, pick)
	}
	return perm
}

// TestUpwardRankPermutationInvariant: ranks are a property of the DAG, not
// of the insertion order — rebuilding the workflow under any topological
// permutation of Add calls yields bitwise-identical ranks per component.
func TestUpwardRankPermutationInvariant(t *testing.T) {
	spec := ZooSpec{Class: ZooLayered, Layers: 4, Width: 6, Fanin: 3, CCR: 1.5}
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, s := testGrid(t, seed)
		resources := g.Nodes()
		w, err := spec.Build(rng)
		if err != nil {
			t.Fatal(err)
		}

		perm := randomTopoPerm(rng, w)
		newIdx := make([]int, w.Len())
		w2 := core.NewWorkflow()
		for k, old := range perm {
			deps := make([]int, 0, len(w.Deps(old)))
			for _, d := range w.Deps(old) {
				deps = append(deps, newIdx[d])
			}
			sort.Ints(deps)
			id, err := w2.AddChecked(w.Components[old], deps...)
			if err != nil {
				t.Fatalf("seed %d: permuted rebuild: %v", seed, err)
			}
			if id != k {
				t.Fatalf("seed %d: permuted index %d, want %d", seed, id, k)
			}
			newIdx[old] = id
		}

		up1 := UpwardRanks(NewContext(s, w, resources))
		up2 := UpwardRanks(NewContext(s, w2, resources))
		down1 := DownwardRanks(NewContext(s, w, resources))
		down2 := DownwardRanks(NewContext(s, w2, resources))
		for i := 0; i < w.Len(); i++ {
			if up1[i] != up2[newIdx[i]] {
				t.Fatalf("seed %d: rank_u[%d] %v != permuted %v", seed, i, up1[i], up2[newIdx[i]])
			}
			if down1[i] != down2[newIdx[i]] {
				t.Fatalf("seed %d: rank_d[%d] %v != permuted %v", seed, i, down1[i], down2[newIdx[i]])
			}
		}
	}
}

// TestUpwardRankChain: on a chain the upward rank is the exact suffix sum of
// mean execution and communication costs — a closed form cross-check.
func TestUpwardRankChain(t *testing.T) {
	z := ZooSpec{Class: ZooChain, N: 6, CCR: 1}
	rng := rand.New(rand.NewSource(9))
	g, s := testGrid(t, 9)
	w, err := z.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(s, w, g.Nodes())
	ranks := UpwardRanks(ctx)
	want := 0.0
	for i := w.Len() - 1; i >= 0; i-- {
		if i < w.Len()-1 {
			want += ctx.MeanCommCost(i)
		}
		want += ctx.MeanExecCost(i)
		if ranks[i] != want {
			t.Fatalf("chain rank[%d] = %v, want suffix sum %v", i, ranks[i], want)
		}
	}
}
