package listsched

import (
	"reflect"
	"testing"
)

// FuzzParseZoo checks the parser/formatter contract on arbitrary input:
// whenever a spec parses, formatting it must yield a canonical string that
// reparses to the identical value (lossless round trip), and the canonical
// string must be a fixed point of Parse∘Format.
func FuzzParseZoo(f *testing.F) {
	seeds := []string{
		"chain",
		"chain:n=16,ccr=0.5",
		"fanout:width=24,ccr=1",
		"diamond:width=6,layers=4,ccr=1",
		"layered:layers=4,width=8,fanin=3,ccr=1",
		"eman:n=400,width=8",
		"chain:ccr=0.125;fanout;eman",
		"chain:n=1;chain:n=4096",
		"layered:ccr=1024",
		" chain ; fanout:width=2 ",
		"chain:n=2,n=3",
		"ring:n=4",
		"chain:ccr=-1",
		"chain:n=1e3",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		specs, err := ParseZoo(spec)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		if len(specs) == 0 {
			t.Fatalf("ParseZoo(%q) returned no specs without error", spec)
		}
		canon := FormatZoo(specs)
		re, err := ParseZoo(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(specs, re) {
			t.Fatalf("round trip of %q: %+v != %+v (via %q)", spec, specs, re, canon)
		}
		if again := FormatZoo(re); again != canon {
			t.Fatalf("canonical form of %q is not a fixed point: %q != %q", spec, again, canon)
		}
		for _, z := range specs {
			if z.Tasks() <= 0 {
				t.Fatalf("parsed spec %s has non-positive task count %d", z, z.Tasks())
			}
		}
	})
}
