package listsched

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestParseZooDefaultsAndOverrides(t *testing.T) {
	got, err := ParseZoo("chain;fanout:width=32;layered:ccr=2.5,fanin=1;eman:n=200,width=4;diamond")
	if err != nil {
		t.Fatal(err)
	}
	want := []ZooSpec{
		{Class: ZooChain, N: 16, CCR: 0.5},
		{Class: ZooFanout, Width: 32, CCR: 1},
		{Class: ZooLayered, Layers: 4, Width: 8, Fanin: 1, CCR: 2.5},
		{Class: ZooEMAN, N: 200, Width: 4},
		{Class: ZooDiamond, Width: 6, Layers: 4, CCR: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseZoo = %+v\nwant %+v", got, want)
	}
}

func TestParseZooErrors(t *testing.T) {
	cases := []struct {
		name, spec, wantSub string
	}{
		{"empty", "", "empty zoo spec"},
		{"blank-entry", "chain;;fanout", "empty zoo entry"},
		{"unknown-class", "ring:n=4", "unknown zoo class"},
		{"unknown-key", "chain:m=4", "unknown key"},
		{"bad-param", "chain:n", "want key=value"},
		{"not-number", "chain:n=four", "not a number"},
		{"duplicate-key", "chain:n=4,n=5", "duplicate key"},
		{"zero-int", "chain:n=0", "must be an integer"},
		{"negative-int", "fanout:width=-3", "must be an integer"},
		{"fraction-int", "fanout:width=2.5", "must be an integer"},
		{"huge-int", "chain:n=100000", "must be an integer"},
		{"negative-ccr", "chain:ccr=-1", "out of range"},
		{"nan-ccr", "chain:ccr=NaN", "out of range"},
		{"inf-ccr", "chain:ccr=Inf", "out of range"},
		{"huge-ccr", "chain:ccr=1e30", "out of range"},
		{"wrong-class-key", "eman:ccr=1", "unknown key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseZoo(tc.spec); err == nil {
				t.Fatalf("ParseZoo(%q) succeeded", tc.spec)
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParseZoo(%q) = %v, want substring %q", tc.spec, err, tc.wantSub)
			}
		})
	}
}

func TestZooRoundTrip(t *testing.T) {
	specs, err := ParseZoo("chain:n=12,ccr=0.25;fanout;diamond:layers=2;layered:width=3;eman")
	if err != nil {
		t.Fatal(err)
	}
	formatted := FormatZoo(specs)
	re, err := ParseZoo(formatted)
	if err != nil {
		t.Fatalf("reparse of %q: %v", formatted, err)
	}
	if !reflect.DeepEqual(specs, re) {
		t.Fatalf("round trip: %+v != %+v (via %q)", specs, re, formatted)
	}
}

func TestZooBuildShapes(t *testing.T) {
	specs, err := ParseZoo("chain:n=8;fanout:width=5;diamond:width=3,layers=2;layered:layers=3,width=4;eman:n=100,width=3")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, z := range specs {
		wf, err := z.Build(rng)
		if err != nil {
			t.Fatalf("%s: %v", z, err)
		}
		if wf.Len() != z.Tasks() {
			t.Errorf("%s: built %d tasks, Tasks() = %d", z, wf.Len(), z.Tasks())
		}
		if err := wf.Validate(); err != nil {
			t.Errorf("%s: %v", z, err)
		}
		switch z.Class {
		case ZooChain:
			for i := 1; i < wf.Len(); i++ {
				if d := wf.Deps(i); len(d) != 1 || d[0] != i-1 {
					t.Errorf("chain deps[%d] = %v", i, d)
				}
			}
		case ZooFanout:
			if len(wf.Deps(wf.Len()-1)) != z.Width {
				t.Errorf("fanout join has %d deps, want %d", len(wf.Deps(wf.Len()-1)), z.Width)
			}
			levels := wf.Levels()
			if len(levels) != 3 || len(levels[1]) != z.Width {
				t.Errorf("fanout levels = %v", levels)
			}
		case ZooDiamond:
			levels := wf.Levels()
			if len(levels) != 1+2*z.Layers {
				t.Errorf("diamond has %d levels, want %d", len(levels), 1+2*z.Layers)
			}
		case ZooLayered:
			if got := len(wf.Levels()); got != z.Layers {
				t.Errorf("layered has %d levels, want %d", got, z.Layers)
			}
		}
	}
}

// TestZooBuildDeterministic: the same seed yields the identical DAG.
func TestZooBuildDeterministic(t *testing.T) {
	spec := ZooSpec{Class: ZooLayered, Layers: 4, Width: 6, Fanin: 3, CCR: 2}
	build := func() *strings.Builder {
		rng := rand.New(rand.NewSource(42))
		wf, err := spec.Build(rng)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i, c := range wf.Components {
			b.WriteString(c.Name)
			for _, d := range wf.Deps(i) {
				b.WriteByte(' ')
				b.WriteByte(byte('0' + d%10))
			}
			b.WriteByte(';')
		}
		return &b
	}
	if a, b := build().String(), build().String(); a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
}

// TestZooCCRScalesOutput: a higher CCR must produce proportionally larger
// output volumes for the same task weights.
func TestZooCCRScalesOutput(t *testing.T) {
	lo := ZooSpec{Class: ZooChain, N: 5, CCR: 0.5}
	hi := ZooSpec{Class: ZooChain, N: 5, CCR: 2}
	wlo, err := lo.Build(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	whi, err := hi.Build(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wlo.Components {
		a, b := wlo.Components[i].OutputBytes, whi.Components[i].OutputBytes
		if b != 4*a {
			t.Fatalf("component %d: CCR 2 output %v != 4× CCR 0.5 output %v", i, b, a)
		}
	}
}
