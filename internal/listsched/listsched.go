// Package listsched is a pluggable DAG list-scheduling engine over the
// paper's workflow/performance-matrix machinery (internal/core): a
// Heuristic maps a core.Workflow onto per-node reservation Timelines using
// the same memoized execution- and data-cost primitives the GrADS
// scheduler ranks with. It implements the HEFT family — HEFT (upward-rank
// priority with earliest-finish-time gap insertion), CPOP (critical path
// on a processor) — a sufferage list variant, and a min-min adapter that
// reproduces core.Scheduler's min-min schedule exactly. Timelines support
// advance reservations: pre-claimed intervals (a metascheduler's EASY
// backfill guarantee, or the already-running tasks of a mid-execution
// rescheduling pass) that every heuristic schedules around and the
// validity harness verifies are preserved.
package listsched

import (
	"fmt"
	"math"

	"grads/internal/core"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Heuristic names accepted by New.
const (
	HEFT          = "heft"
	CPOP          = "cpop"
	SufferageList = "sufferage-list"
	MinMinAdapter = "min-min"
)

// Names lists the registered heuristics in presentation order.
func Names() []string { return []string{HEFT, CPOP, SufferageList, MinMinAdapter} }

// Heuristic maps the unscheduled components of a Context onto its
// timelines and returns the resulting schedule.
type Heuristic interface {
	Name() string
	Schedule(ctx *Context) (*Result, error)
}

// New returns the named heuristic.
func New(name string) (Heuristic, error) {
	switch name {
	case HEFT:
		return heft{}, nil
	case CPOP:
		return cpop{}, nil
	case SufferageList:
		return sufferage{}, nil
	case MinMinAdapter:
		return minmin{}, nil
	}
	return nil, fmt.Errorf("listsched: unknown heuristic %q (have: %v)", name, Names())
}

// Context is one scheduling problem: a workflow, the resources it may map
// onto with their (possibly pre-reserved) timelines, the cost model, and —
// for rescheduling passes — the components already fixed in place.
type Context struct {
	S         *core.Scheduler  // cost primitives (ECost/DCost/TransferTime)
	W         *core.Workflow   // full workflow; Done marks fixed components
	Resources []*topology.Node // schedulable resources, in priority order
	Timelines []*Timeline      // one per resource, same order

	// Done[i] marks components whose placement is fixed (already executed
	// or running when a rescheduling pass starts); Assign[i] holds their
	// node and times. Heuristics schedule only the rest.
	Done   []bool
	Assign []core.Assignment

	// NotBefore is the earliest instant any newly scheduled slot may start
	// (the rescheduling horizon). Zero for from-scratch scheduling.
	NotBefore float64

	// SlowNode/SlowFactor model a resource degraded from NotBefore on:
	// ExecCost multiplies estimates on SlowNode by SlowFactor (≥ 1).
	SlowNode   *topology.Node
	SlowFactor float64

	// reservations records the advance reservations placed through Reserve,
	// per resource, so the validity harness can verify containment.
	reservations [][]Slot

	// comm model (mean latency + per-byte time over distinct node pairs),
	// computed lazily for the rank functions.
	commLat, commRate float64
	commReady         bool
}

// NewContext builds a from-scratch scheduling context with empty timelines.
func NewContext(s *core.Scheduler, w *core.Workflow, resources []*topology.Node) *Context {
	ctx := &Context{
		S:            s,
		W:            w,
		Resources:    resources,
		Timelines:    make([]*Timeline, len(resources)),
		Done:         make([]bool, w.Len()),
		Assign:       make([]core.Assignment, w.Len()),
		reservations: make([][]Slot, len(resources)),
	}
	for i := range ctx.Timelines {
		ctx.Timelines[i] = NewTimeline()
	}
	return ctx
}

// Reserve places an advance reservation [start, start+dur) on resource ri's
// timeline and records it for containment checking.
func (c *Context) Reserve(ri int, start, dur float64, label string) error {
	if ri < 0 || ri >= len(c.Timelines) {
		return fmt.Errorf("listsched: reserve on unknown resource %d", ri)
	}
	if err := c.Timelines[ri].Reserve(start, dur, label); err != nil {
		return err
	}
	c.reservations[ri] = append(c.reservations[ri],
		Slot{Start: start, End: start + dur, Label: label, Reserved: true})
	return nil
}

// Reservations returns the advance reservations placed on resource ri.
func (c *Context) Reservations(ri int) []Slot { return c.reservations[ri] }

// ExecCost is the execution-time estimate of component ci on r under the
// context's degradation model.
func (c *Context) ExecCost(ci int, r *topology.Node) float64 {
	v := c.S.ECost(c.W.Components[ci], r)
	if c.SlowFactor > 1 && r == c.SlowNode {
		v *= c.SlowFactor
	}
	return v
}

// Comm is the time to move component pred's output from node `from` to node
// `to` (zero on the same node).
func (c *Context) Comm(pred int, from, to *topology.Node) float64 {
	return c.S.TransferTime(from, to, c.W.Components[pred].OutputBytes)
}

// readyBound returns the earliest instant component ci may start on r given
// the finish times (and nodes) of its predecessors: max predecessor finish,
// plus the output-transfer time for cross-node edges when the heuristic
// charges communication as start delay (the HEFT family), plus input
// staging from the workflow origin for entry components, clamped to the
// rescheduling horizon.
func (c *Context) readyBound(ci int, r *topology.Node, finish []float64, nodes []*topology.Node, commInStart bool) float64 {
	ready := c.NotBefore
	deps := c.W.Deps(ci)
	if len(deps) == 0 && commInStart {
		if t := c.S.TransferTime(c.W.Origin, r, c.W.Components[ci].InputBytes); t > ready {
			ready = t
		}
	}
	for _, d := range deps {
		t := finish[d]
		if commInStart && nodes[d] != r {
			t += c.Comm(d, nodes[d], r)
		}
		if t > ready {
			ready = t
		}
	}
	return ready
}

// emitDecision publishes one engine scheduling decision into telemetry.
func (c *Context) emitDecision(heuristic string, makespan float64, scheduled int) {
	if c.S == nil || c.S.Grid == nil || c.S.Grid.Sim == nil {
		return
	}
	tel := c.S.Grid.Sim.Telemetry()
	if tel == nil {
		return
	}
	tel.Counter("listsched", "schedules").Inc()
	tel.Emit(telemetry.Event{
		Type: telemetry.EvSchedDecision, Comp: "listsched", Name: heuristic,
		Args: []telemetry.Arg{
			telemetry.I("components", scheduled),
			telemetry.I("resources", len(c.Resources)),
			telemetry.F("makespan", makespan),
		},
	})
}

// Result is a completed engine schedule: the assignment of every component
// (fixed ones included), the timelines it occupies, and the communication
// semantics the heuristic used (needed to validate precedence).
type Result struct {
	Heuristic   string
	Makespan    float64
	Assignments []core.Assignment // indexed by component
	Timelines   []*Timeline       // aliases the context's timelines

	// CommInStart is true when cross-node transfers delay task starts (the
	// HEFT family) and false when they are folded into slot durations (the
	// min-min adapter, matching core.Scheduler's rank semantics).
	CommInStart bool
}

// Utilization is the busy fraction of the result's resources over its
// horizon: total occupied timeline duration / (resources × horizon), where
// the horizon is the makespan or the last occupied instant, whichever is
// later (an advance reservation may outlive the workflow).
func (r *Result) Utilization() float64 {
	if len(r.Timelines) == 0 {
		return 0
	}
	busy, horizon := 0.0, r.Makespan
	for _, t := range r.Timelines {
		busy += t.Busy()
		if end := t.End(); end > horizon {
			horizon = end
		}
	}
	if horizon <= 0 {
		return 0
	}
	return busy / (float64(len(r.Timelines)) * horizon)
}

// SlotLabel names component ci's timeline slot (assignment slots carry it
// so schedules, executions and rescheduling contexts agree on identity).
func SlotLabel(ci int) string { return fmt.Sprintf("c%d", ci) }

// checkEps is the relative tolerance CheckResult allows on floating-point
// comparisons that re-derive a bound through a different operation order.
const checkEps = 1e-9

// CheckResult is the schedule-validity property harness: it re-derives
// every invariant a feasible reservation-timeline schedule must satisfy
// and returns the first violation.
//
//   - every component is assigned to an eligible resource of the context;
//   - precedence: each start is ≥ every predecessor's finish, plus the
//     cross-node transfer time when the heuristic charges communication as
//     start delay, and ≥ the rescheduling horizon;
//   - slot durations equal the cost model's execution estimate (plus data
//     cost for duration-charged heuristics);
//   - node timelines are sorted and non-overlapping, and every assignment
//     appears as exactly one slot with matching bounds;
//   - advance reservations are contained intact in the final timelines;
//   - the reported makespan equals the maximum finish time.
func CheckResult(ctx *Context, res *Result) error {
	w, n := ctx.W, ctx.W.Len()
	if len(res.Assignments) != n {
		return fmt.Errorf("listsched: %d assignments for %d components", len(res.Assignments), n)
	}
	ri := make(map[*topology.Node]int, len(ctx.Resources))
	for i, r := range ctx.Resources {
		ri[r] = i
	}

	nodes := make([]*topology.Node, n)
	finish := make([]float64, n)
	maxFinish := 0.0
	for i, a := range res.Assignments {
		if a.Node == nil {
			return fmt.Errorf("listsched: component %d unassigned", i)
		}
		if _, ok := ri[a.Node]; !ok {
			return fmt.Errorf("listsched: component %d on unknown resource %s", i, a.Node.Name())
		}
		if !core.Eligible(w.Components[i], a.Node) {
			return fmt.Errorf("listsched: component %d (%s) on ineligible resource %s",
				i, w.Components[i].Name, a.Node.Name())
		}
		if a.Finish < a.Start || math.IsNaN(a.Start) || math.IsInf(a.Finish, 0) {
			return fmt.Errorf("listsched: component %d has bad interval [%v, %v)", i, a.Start, a.Finish)
		}
		nodes[i], finish[i] = a.Node, a.Finish
		if a.Finish > maxFinish {
			maxFinish = a.Finish
		}
	}

	eps := func(v float64) float64 { return checkEps * math.Max(1, math.Abs(v)) }

	for i, a := range res.Assignments {
		if ctx.Done[i] {
			continue // fixed placements predate the horizon by design
		}
		ready := ctx.readyBound(i, a.Node, finish, nodes, res.CommInStart)
		if a.Start+eps(ready) < ready {
			return fmt.Errorf("listsched: component %d starts %v before ready bound %v", i, a.Start, ready)
		}
		dur := a.Finish - a.Start
		want := ctx.ExecCost(i, a.Node)
		if !res.CommInStart {
			want = ctx.S.W1*want + ctx.S.W2*ctx.S.DCost(w, i, a.Node, res.Assignments)
		}
		if math.Abs(dur-want) > eps(want) {
			return fmt.Errorf("listsched: component %d duration %v != cost-model %v", i, dur, want)
		}
	}

	if math.Abs(res.Makespan-maxFinish) > eps(maxFinish) {
		return fmt.Errorf("listsched: makespan %v != max finish %v", res.Makespan, maxFinish)
	}

	for r, tl := range res.Timelines {
		if err := tl.CheckInvariants(); err != nil {
			return err
		}
		// Index the slots: every assignment must own exactly one, and every
		// reservation must be contained unmodified.
		byLabel := make(map[string]Slot, len(tl.Slots()))
		for _, s := range tl.Slots() {
			if _, dup := byLabel[s.Label]; dup {
				return fmt.Errorf("listsched: duplicate slot label %q on %s", s.Label, ctx.Resources[r].Name())
			}
			byLabel[s.Label] = s
		}
		for _, want := range ctx.Reservations(r) {
			got, ok := byLabel[want.Label]
			if !ok || !got.Reserved || got.Start != want.Start || got.End != want.End {
				return fmt.Errorf("listsched: reservation %q [%v, %v) on %s not contained in final timeline",
					want.Label, want.Start, want.End, ctx.Resources[r].Name())
			}
		}
	}
	for i, a := range res.Assignments {
		tl := res.Timelines[ri[a.Node]]
		found := false
		for _, s := range tl.Slots() {
			if s.Label == SlotLabel(i) {
				if s.Reserved && !ctx.Done[i] {
					return fmt.Errorf("listsched: component %d slot marked reserved", i)
				}
				if s.Start != a.Start || s.End != a.Finish {
					return fmt.Errorf("listsched: component %d slot [%v, %v) != assignment [%v, %v)",
						i, s.Start, s.End, a.Start, a.Finish)
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("listsched: component %d has no slot on %s", i, a.Node.Name())
		}
	}
	return nil
}

// Perturbation degrades one node by Factor (≥ 1) from instant At on — the
// mid-execution event the rescheduling policies of the dagzoo experiment
// react to. A zero Perturbation (nil Node) leaves execution unchanged.
type Perturbation struct {
	Node   *topology.Node
	At     float64
	Factor float64
}

// slowedDur is the wall time of work that takes base seconds at full speed
// when started at start on a node degraded by factor from at on.
func (p Perturbation) slowedDur(r *topology.Node, start, base float64) float64 {
	if p.Node == nil || r != p.Node || p.Factor <= 1 {
		return base
	}
	switch {
	case start >= p.At: // entirely degraded
		return base * p.Factor
	case start+base <= p.At: // finished before the degradation
		return base
	default: // spans the onset: remaining work slows down
		done := p.At - start
		return done + (base-done)*p.Factor
	}
}

// ExecuteStatic replays a planned schedule under a perturbation: tasks
// dispatch in planned start order, each waiting for its predecessors (plus
// transfers, under the result's communication semantics), for its node's
// previously dispatched work, and for any advance reservation it would
// collide with after slipping; work on the perturbed node stretches by the
// slowdown. It returns the executed assignments and makespan. With a zero
// perturbation the execution reproduces the plan exactly.
func ExecuteStatic(ctx *Context, res *Result, pert Perturbation) ([]core.Assignment, float64, error) {
	n := ctx.W.Len()
	ri := make(map[*topology.Node]int, len(ctx.Resources))
	for i, r := range ctx.Resources {
		ri[r] = i
	}
	// Scratch timelines seeded with the advance reservations only: slipped
	// tasks must still fit around them.
	scratch := make([]*Timeline, len(ctx.Resources))
	nodeFree := make([]float64, len(ctx.Resources))
	for i := range scratch {
		scratch[i] = NewTimeline()
		for _, s := range ctx.Reservations(i) {
			if err := scratch[i].Reserve(s.Start, s.End-s.Start, s.Label); err != nil {
				return nil, 0, err
			}
		}
	}

	// Planned start order with index tie-break is topological: predecessors
	// never start after successors and always have smaller indices.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			sa, sb := res.Assignments[a].Start, res.Assignments[b].Start
			if sa < sb || (sa == sb && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}

	actual := make([]core.Assignment, n)
	nodes := make([]*topology.Node, n)
	finish := make([]float64, n)
	makespan := 0.0
	for i := range nodes {
		nodes[i] = res.Assignments[i].Node
	}
	for _, ci := range order {
		plan := res.Assignments[ci]
		k := ri[plan.Node]
		base := plan.Finish - plan.Start
		cand := plan.Start
		if r := ctx.readyBound(ci, plan.Node, finish, nodes, res.CommInStart); r > cand {
			cand = r
		}
		if nodeFree[k] > cand {
			cand = nodeFree[k]
		}
		// Fit around reservations; slipping right may stretch the duration
		// (more of the work lands after the perturbation), so iterate to a
		// fixed point.
		start := cand
		dur := pert.slowedDur(plan.Node, start, base)
		for iter := 0; iter < len(scratch[k].Slots())+2; iter++ {
			fit := scratch[k].EarliestFit(start, dur)
			d2 := pert.slowedDur(plan.Node, fit, base)
			if fit == start && d2 == dur {
				break
			}
			start, dur = fit, d2
		}
		if err := scratch[k].Insert(start, dur, SlotLabel(ci)); err != nil {
			return nil, 0, err
		}
		actual[ci] = core.Assignment{Node: plan.Node, Start: start, Finish: start + dur}
		finish[ci] = actual[ci].Finish
		if nodeFree[k] < finish[ci] {
			nodeFree[k] = finish[ci]
		}
		if finish[ci] > makespan {
			makespan = finish[ci]
		}
	}
	return actual, makespan, nil
}
