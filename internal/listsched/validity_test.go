package listsched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"grads/internal/core"
	"grads/internal/topology"
)

// TestScheduleValidity is the property harness entry point: every heuristic
// × every zoo class × 20 seeds, with advance reservations seeded onto the
// timelines, must produce a schedule CheckResult accepts.
func TestScheduleValidity(t *testing.T) {
	specs := parseSuite(t)
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, s := testGrid(t, seed)
		resources := g.Nodes()
		for _, z := range specs {
			w, err := z.Build(rng)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, z, err)
			}
			for _, name := range Names() {
				h, err := New(name)
				if err != nil {
					t.Fatal(err)
				}
				ctx := NewContext(s, w, resources)
				// Two disjoint advance reservations on rng-chosen resources;
				// the schedule must flow around them and leave them intact.
				for j := 0; j < 2; j++ {
					ri := rng.Intn(len(resources))
					start := float64(j)*100 + rng.Float64()*50
					dur := 1 + rng.Float64()*20
					if err := ctx.Reserve(ri, start, dur, fmt.Sprintf("resv%d", j)); err != nil {
						t.Fatalf("seed %d %s %s: reserve: %v", seed, z, name, err)
					}
				}
				res, err := h.Schedule(ctx)
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, z, name, err)
				}
				if err := CheckResult(ctx, res); err != nil {
					t.Errorf("seed %d %s %s: %v", seed, z, name, err)
				}
				if res.Makespan <= 0 {
					t.Errorf("seed %d %s %s: makespan %v", seed, z, name, res.Makespan)
				}
				if u := res.Utilization(); u <= 0 || u > 1 {
					t.Errorf("seed %d %s %s: utilization %v outside (0, 1]", seed, z, name, u)
				}
			}
		}
	}
}

// TestCheckResultCatchesViolations corrupts valid schedules one invariant at
// a time and requires the harness to object — the harness must not be
// vacuously green.
func TestCheckResultCatchesViolations(t *testing.T) {
	g, s := testGrid(t, 1)
	resources := g.Nodes()
	w, err := (ZooSpec{Class: ZooDiamond, Width: 3, Layers: 2, CCR: 1}).Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	schedule := func() (*Context, *Result) {
		ctx := NewContext(s, w, resources)
		if err := ctx.Reserve(0, 5, 10, "hold"); err != nil {
			t.Fatal(err)
		}
		h, _ := New(HEFT)
		res, err := h.Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return ctx, res
	}

	// Baseline sanity: untouched result passes.
	ctx, res := schedule()
	if err := CheckResult(ctx, res); err != nil {
		t.Fatalf("baseline: %v", err)
	}

	t.Run("precedence", func(t *testing.T) {
		ctx, res := schedule()
		// Pull a non-entry component's start before its predecessor's finish.
		for i := w.Len() - 1; i >= 0; i-- {
			if len(w.Deps(i)) > 0 {
				res.Assignments[i].Start = 0
				break
			}
		}
		if CheckResult(ctx, res) == nil {
			t.Fatal("precedence violation not caught")
		}
	})
	t.Run("makespan", func(t *testing.T) {
		ctx, res := schedule()
		res.Makespan *= 2
		if CheckResult(ctx, res) == nil {
			t.Fatal("wrong makespan not caught")
		}
	})
	t.Run("duration", func(t *testing.T) {
		ctx, res := schedule()
		res.Assignments[0].Finish += 1
		if CheckResult(ctx, res) == nil {
			t.Fatal("duration drift not caught")
		}
	})
	t.Run("reservation-clobbered", func(t *testing.T) {
		ctx, res := schedule()
		// Drop the reservation from its timeline behind the context's back.
		for _, tl := range res.Timelines {
			kept := tl.Slots()[:0:0]
			for _, sl := range tl.Slots() {
				if !sl.Reserved {
					kept = append(kept, sl)
				}
			}
			tl.slots = kept
		}
		if CheckResult(ctx, res) == nil {
			t.Fatal("clobbered reservation not caught")
		}
	})
	t.Run("unknown-resource", func(t *testing.T) {
		ctx, res := schedule()
		g2, _ := testGrid(t, 2)
		res.Assignments[0].Node = g2.Nodes()[0]
		if CheckResult(ctx, res) == nil {
			t.Fatal("foreign resource not caught")
		}
	})
}

// TestExecuteStaticReproducesPlan: with a zero perturbation, replaying any
// heuristic's plan returns exactly the planned assignments and makespan.
func TestExecuteStaticReproducesPlan(t *testing.T) {
	specs := parseSuite(t)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, s := testGrid(t, seed)
		resources := g.Nodes()
		for _, z := range specs {
			w, err := z.Build(rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range Names() {
				h, _ := New(name)
				ctx := NewContext(s, w, resources)
				if err := ctx.Reserve(rng.Intn(len(resources)), rng.Float64()*30, 5, "hold"); err != nil {
					t.Fatal(err)
				}
				res, err := h.Schedule(ctx)
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, z, name, err)
				}
				actual, makespan, err := ExecuteStatic(ctx, res, Perturbation{})
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, z, name, err)
				}
				if makespan != res.Makespan {
					t.Fatalf("seed %d %s %s: executed makespan %v != planned %v",
						seed, z, name, makespan, res.Makespan)
				}
				for i, a := range actual {
					p := res.Assignments[i]
					if a.Node != p.Node || a.Start != p.Start || a.Finish != p.Finish {
						t.Fatalf("seed %d %s %s: component %d executed %+v != planned %+v",
							seed, z, name, i, a, p)
					}
				}
			}
		}
	}
}

// TestExecuteStaticPerturbed: degrading a node mid-run keeps the execution
// feasible — no overlap per node, precedence holds on actual times,
// reservations stay clear — and can only lengthen the makespan.
func TestExecuteStaticPerturbed(t *testing.T) {
	specs := parseSuite(t)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, s := testGrid(t, seed)
		resources := g.Nodes()
		for _, z := range specs {
			w, err := z.Build(rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range Names() {
				h, _ := New(name)
				ctx := NewContext(s, w, resources)
				if err := ctx.Reserve(0, 10, 8, "hold"); err != nil {
					t.Fatal(err)
				}
				res, err := h.Schedule(ctx)
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, z, name, err)
				}
				pert := Perturbation{
					Node:   resources[rng.Intn(len(resources))],
					At:     res.Makespan / 2,
					Factor: 3,
				}
				actual, makespan, err := ExecuteStatic(ctx, res, pert)
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, z, name, err)
				}
				if makespan+1e-9 < res.Makespan {
					t.Fatalf("seed %d %s %s: perturbed makespan %v < planned %v",
						seed, z, name, makespan, res.Makespan)
				}
				checkExecution(t, ctx, res, actual)
			}
		}
	}
}

// checkExecution verifies feasibility of an executed assignment set: per-node
// non-overlap (including the advance reservations) and precedence under the
// result's communication semantics.
func checkExecution(t *testing.T, ctx *Context, res *Result, actual []core.Assignment) {
	t.Helper()
	nodes := make([]*topology.Node, len(actual))
	finish := make([]float64, len(actual))
	for i, a := range actual {
		nodes[i], finish[i] = a.Node, a.Finish
	}
	for i, a := range actual {
		rb := ctx.readyBound(i, a.Node, finish, nodes, res.CommInStart)
		if a.Start+1e-9*math.Max(1, rb) < rb {
			t.Fatalf("executed component %d starts %v before ready bound %v", i, a.Start, rb)
		}
	}
	for k, r := range ctx.Resources {
		type iv struct {
			start, end float64
			what       string
		}
		var ivs []iv
		for _, s := range ctx.Reservations(k) {
			ivs = append(ivs, iv{s.Start, s.End, "reservation " + s.Label})
		}
		for i, a := range actual {
			if a.Node == r {
				ivs = append(ivs, iv{a.Start, a.Finish, SlotLabel(i)})
			}
		}
		sortBy2(ivs, func(a, b iv) bool { return a.start < b.start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				t.Fatalf("%s: %s [%v, %v) overlaps %s [%v, %v)", r.Name(),
					ivs[i-1].what, ivs[i-1].start, ivs[i-1].end,
					ivs[i].what, ivs[i].start, ivs[i].end)
			}
		}
	}
}

// sortBy2 is a tiny generic insertion sort for the execution checks.
func sortBy2[T any](xs []T, less func(a, b T) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
