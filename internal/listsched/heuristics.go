package listsched

import (
	"fmt"
	"math"

	"grads/internal/core"
	"grads/internal/topology"
)

// schedState is the shared mutable state of one engine run: finish times
// and nodes per component (fixed placements pre-filled) and the assignment
// array handed to the data-cost primitives.
type schedState struct {
	ctx    *Context
	assign []core.Assignment
	nodes  []*topology.Node
	finish []float64
	done   []bool
	left   int
}

func newSchedState(ctx *Context) *schedState {
	n := ctx.W.Len()
	st := &schedState{
		ctx:    ctx,
		assign: make([]core.Assignment, n),
		nodes:  make([]*topology.Node, n),
		finish: make([]float64, n),
		done:   make([]bool, n),
		left:   0,
	}
	for i := 0; i < n; i++ {
		if ctx.Done[i] {
			st.assign[i] = ctx.Assign[i]
			st.nodes[i] = ctx.Assign[i].Node
			st.finish[i] = ctx.Assign[i].Finish
			st.done[i] = true
		} else {
			st.left++
		}
	}
	return st
}

// place commits component ci to resource index k at [start, start+dur).
func (st *schedState) place(ci, k int, start, dur float64) error {
	if err := st.ctx.Timelines[k].Insert(start, dur, SlotLabel(ci)); err != nil {
		return err
	}
	r := st.ctx.Resources[k]
	st.assign[ci] = core.Assignment{Node: r, Start: start, Finish: start + dur}
	st.nodes[ci] = r
	st.finish[ci] = start + dur
	st.done[ci] = true
	st.left--
	return nil
}

// result wraps up the run.
func (st *schedState) result(name string, commInStart bool) *Result {
	makespan := 0.0
	for _, a := range st.assign {
		if a.Finish > makespan {
			makespan = a.Finish
		}
	}
	st.ctx.emitDecision(name, makespan, st.ctx.W.Len())
	return &Result{
		Heuristic:   name,
		Makespan:    makespan,
		Assignments: st.assign,
		Timelines:   st.ctx.Timelines,
		CommInStart: commInStart,
	}
}

// eftPlace finds the earliest-finish-time placement of ci over all eligible
// resources using gap insertion, and commits it. The first resource (in
// context order) achieving the minimum finish wins ties.
func (st *schedState) eftPlace(ci int) error {
	ctx := st.ctx
	bestK, bestStart, bestDur, bestEFT := -1, 0.0, 0.0, math.Inf(1)
	for k, r := range ctx.Resources {
		if !core.Eligible(ctx.W.Components[ci], r) {
			continue
		}
		ready := ctx.readyBound(ci, r, st.finish, st.nodes, true)
		dur := ctx.ExecCost(ci, r)
		start := ctx.Timelines[k].EarliestFit(ready, dur)
		if eft := start + dur; eft < bestEFT {
			bestK, bestStart, bestDur, bestEFT = k, start, dur, eft
		}
	}
	if bestK < 0 {
		return fmt.Errorf("listsched: component %q has no eligible resource", ctx.W.Components[ci].Name)
	}
	return st.place(ci, bestK, bestStart, bestDur)
}

// readyList returns the unscheduled components whose predecessors are all
// scheduled, in increasing index order.
func (st *schedState) readyList() []int {
	var ready []int
	for i := range st.done {
		if st.done[i] {
			continue
		}
		ok := true
		for _, d := range st.ctx.W.Deps(i) {
			if !st.done[d] {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, i)
		}
	}
	return ready
}

// heft is the classic HEFT list scheduler: tasks in decreasing upward-rank
// order, each placed at its earliest finish time with gap insertion.
type heft struct{}

func (heft) Name() string { return HEFT }

func (heft) Schedule(ctx *Context) (*Result, error) {
	st := newSchedState(ctx)
	ranks := UpwardRanks(ctx)
	order := make([]int, 0, st.left)
	for i := range st.done {
		if !st.done[i] {
			order = append(order, i)
		}
	}
	// Decreasing rank, index ascending on ties. Upward ranks are monotone
	// along edges, so this order is topological; the index tie-break keeps
	// zero-cost chains (rank(pred) == rank(succ)) in dependency order too.
	sortBy(order, func(a, b int) bool {
		if ranks[a] != ranks[b] {
			return ranks[a] > ranks[b]
		}
		return a < b
	})
	for _, ci := range order {
		if err := st.eftPlace(ci); err != nil {
			return nil, err
		}
	}
	return st.result(HEFT, true), nil
}

// cpop is critical-path-on-a-processor: priorities are rank_u + rank_d, the
// critical path is pinned to the single processor minimizing its total
// execution time, and everything else is EFT-placed in priority order.
type cpop struct{}

func (cpop) Name() string { return CPOP }

func (cpop) Schedule(ctx *Context) (*Result, error) {
	st := newSchedState(ctx)
	up, down := UpwardRanks(ctx), DownwardRanks(ctx)
	n := ctx.W.Len()
	prio := make([]float64, n)
	for i := range prio {
		prio[i] = up[i] + down[i]
	}

	// Walk the critical path: start from the entry component with the
	// highest priority, follow the successor with the highest priority.
	onCP := make([]bool, n)
	cp := []int{}
	entry := -1
	for i := 0; i < n; i++ {
		if len(ctx.W.Deps(i)) == 0 && (entry < 0 || prio[i] > prio[entry]) {
			entry = i
		}
	}
	succs := ctx.W.Succs()
	for at := entry; at >= 0; {
		onCP[at] = true
		cp = append(cp, at)
		next := -1
		for _, j := range succs[at] {
			if next < 0 || prio[j] > prio[next] {
				next = j
			}
		}
		at = next
	}

	// The CP processor minimizes the summed execution of the whole path; it
	// must be eligible for every CP task, else fall back to pure EFT.
	cpNode := -1
	bestSum := math.Inf(1)
	for k, r := range ctx.Resources {
		sum, ok := 0.0, true
		for _, ci := range cp {
			if !core.Eligible(ctx.W.Components[ci], r) {
				ok = false
				break
			}
			sum += ctx.ExecCost(ci, r)
		}
		if ok && sum < bestSum {
			cpNode, bestSum = k, sum
		}
	}

	for st.left > 0 {
		ready := st.readyList()
		if len(ready) == 0 {
			return nil, fmt.Errorf("listsched: workflow has a dependency cycle")
		}
		pick := ready[0]
		for _, ci := range ready[1:] {
			if prio[ci] > prio[pick] {
				pick = ci
			}
		}
		if onCP[pick] && cpNode >= 0 {
			r := ctx.Resources[cpNode]
			rb := ctx.readyBound(pick, r, st.finish, st.nodes, true)
			dur := ctx.ExecCost(pick, r)
			start := ctx.Timelines[cpNode].EarliestFit(rb, dur)
			if err := st.place(pick, cpNode, start, dur); err != nil {
				return nil, err
			}
			continue
		}
		if err := st.eftPlace(pick); err != nil {
			return nil, err
		}
	}
	return st.result(CPOP, true), nil
}

// sufferage is the list variant of the paper's sufferage heuristic: each
// round, the ready task that would suffer most from losing its best
// placement (largest best-vs-second-best EFT gap) is scheduled first, with
// gap insertion on the timelines.
type sufferage struct{}

func (sufferage) Name() string { return SufferageList }

func (sufferage) Schedule(ctx *Context) (*Result, error) {
	st := newSchedState(ctx)
	for st.left > 0 {
		ready := st.readyList()
		if len(ready) == 0 {
			return nil, fmt.Errorf("listsched: workflow has a dependency cycle")
		}
		type cand struct {
			ci, k      int
			start, dur float64
			eft, snd   float64
		}
		best := cand{ci: -1, eft: math.Inf(1)}
		bestSuff := math.Inf(-1)
		for _, ci := range ready {
			c := cand{ci: ci, k: -1, eft: math.Inf(1), snd: math.Inf(1)}
			for k, r := range ctx.Resources {
				if !core.Eligible(ctx.W.Components[ci], r) {
					continue
				}
				rb := ctx.readyBound(ci, r, st.finish, st.nodes, true)
				dur := ctx.ExecCost(ci, r)
				start := ctx.Timelines[k].EarliestFit(rb, dur)
				switch eft := start + dur; {
				case eft < c.eft:
					c.snd = c.eft
					c.k, c.start, c.dur, c.eft = k, start, dur, eft
				case eft < c.snd:
					c.snd = eft
				}
			}
			if c.k < 0 {
				return nil, fmt.Errorf("listsched: component %q has no eligible resource", ctx.W.Components[ci].Name)
			}
			suff := c.snd - c.eft // +Inf when only one resource is eligible
			if math.IsInf(c.snd, 1) {
				suff = math.Inf(1)
			}
			if suff > bestSuff {
				bestSuff, best = suff, c
			}
		}
		if err := st.place(best.ci, best.k, best.start, best.dur); err != nil {
			return nil, err
		}
	}
	return st.result(SufferageList, true), nil
}

// minmin adapts the GrADS min-min heuristic to the engine: ranks (execution
// plus data cost) are charged as slot durations and placement appends at
// the end of each timeline, reproducing core.Scheduler.ScheduleWith
// (core.MinMin) assignment-for-assignment on a fresh context.
type minmin struct{}

func (minmin) Name() string { return MinMinAdapter }

func (minmin) Schedule(ctx *Context) (*Result, error) {
	st := newSchedState(ctx)
	for st.left > 0 {
		ready := st.readyList()
		if len(ready) == 0 {
			return nil, fmt.Errorf("listsched: workflow has a dependency cycle")
		}
		type cand struct {
			ci, k         int
			start, finish float64
		}
		pick := cand{ci: -1, finish: math.Inf(1)}
		for _, ci := range ready {
			best := cand{ci: ci, k: -1, finish: math.Inf(1)}
			for k, r := range ctx.Resources {
				if !core.Eligible(ctx.W.Components[ci], r) {
					continue
				}
				// Mirror core.Scheduler exactly: duration is the full rank
				// (weighted execution + data cost), the start is the node's
				// append point pushed by predecessor finishes, and strict
				// comparisons keep the first minimum.
				rank := ctx.S.W1*ctx.ExecCost(ci, r) + ctx.S.W2*ctx.S.DCost(ctx.W, ci, r, st.assign)
				if math.IsInf(rank, 1) {
					continue
				}
				start := ctx.Timelines[k].End()
				for _, d := range ctx.W.Deps(ci) {
					if st.assign[d].Finish > start {
						start = st.assign[d].Finish
					}
				}
				if start < ctx.NotBefore {
					start = ctx.NotBefore
				}
				if finish := start + rank; finish < best.finish {
					best.k, best.start, best.finish = k, start, finish
				}
			}
			if best.k < 0 {
				return nil, fmt.Errorf("listsched: component %q has no eligible resource", ctx.W.Components[ci].Name)
			}
			if best.finish < pick.finish {
				pick = best
			}
		}
		if err := st.place(pick.ci, pick.k, pick.start, pick.finish-pick.start); err != nil {
			return nil, err
		}
	}
	return st.result(MinMinAdapter, false), nil
}

// sortBy is an in-place insertion sort with an explicit strict less — the
// engine's orders are tiny and must be deterministic and stable-by-index.
func sortBy(xs []int, less func(a, b int) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
