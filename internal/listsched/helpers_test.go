package listsched

import (
	"testing"

	"grads/internal/core"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// testGrid is a small heterogeneous testbed: a fast IA32 site and a slow
// mixed site, so every zoo class (including EMAN's arch/memory constraints)
// has multiple but not uniformly eligible resources.
func testGrid(tb testing.TB, seed int64) (*topology.Grid, *core.Scheduler) {
	tb.Helper()
	sim := simcore.New(seed)
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e8, 1e-4)
	g.AddSite("B", 1e7, 5e-4)
	g.Connect("A", "B", 1.25e6, 0.03)
	g.AddNode(topology.NodeSpec{Name: "a1", Site: "A", Arch: topology.ArchIA32, MHz: 2000, FlopsPerCycle: 1, MemMB: 2048})
	g.AddNode(topology.NodeSpec{Name: "a2", Site: "A", Arch: topology.ArchIA32, MHz: 1500, FlopsPerCycle: 1, MemMB: 1024})
	g.AddNode(topology.NodeSpec{Name: "b1", Site: "B", Arch: topology.ArchIA64, MHz: 800, FlopsPerCycle: 2, MemMB: 2048})
	g.AddNode(topology.NodeSpec{Name: "b2", Site: "B", Arch: topology.ArchIA32, MHz: 400, FlopsPerCycle: 1, MemMB: 512})
	return g, core.NewScheduler(g, nil)
}

// soloGrid is a single-node testbed where every transfer costs zero — the
// serial lower-bound fixture.
func soloGrid(tb testing.TB, seed int64) (*topology.Grid, *core.Scheduler) {
	tb.Helper()
	sim := simcore.New(seed)
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e8, 1e-4)
	g.AddNode(topology.NodeSpec{Name: "solo", Site: "A", Arch: topology.ArchIA32, MHz: 1000, FlopsPerCycle: 1, MemMB: 2048})
	return g, core.NewScheduler(g, nil)
}

// zooSuite is the DAG set the property tests sweep: every class, sized for
// test speed.
const zooSuite = "chain:n=10;fanout:width=8;diamond:width=4,layers=2;layered:layers=3,width=5;eman:n=200,width=4"

func parseSuite(tb testing.TB) []ZooSpec {
	tb.Helper()
	specs, err := ParseZoo(zooSuite)
	if err != nil {
		tb.Fatal(err)
	}
	return specs
}
