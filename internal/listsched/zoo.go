package listsched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"grads/internal/apps"
	"grads/internal/core"
	"grads/internal/perfmodel"
)

// Zoo classes.
const (
	ZooChain   = "chain"   // serial pipeline of n tasks
	ZooFanout  = "fanout"  // fork-join: entry → width parallel tasks → exit
	ZooDiamond = "diamond" // layers alternating 1 → width → 1 diamonds
	ZooLayered = "layered" // random layered DAG (layers × width, random fan-in)
	ZooEMAN    = "eman"    // the §3.3 EMAN refinement workflow, expanded
)

// ZooSpec describes one synthetic DAG of the zoo. Zero-valued fields take
// the class defaults on Parse; Build requires a canonical (parsed or
// Canon-icalized) spec.
type ZooSpec struct {
	Class  string
	N      int     // chain length / eman particle count
	Width  int     // fanout width / diamond width / layered width / eman split
	Layers int     // diamond count / layered depth
	Fanin  int     // layered: max extra predecessors per task
	CCR    float64 // target communication-to-computation ratio
}

// zooParam describes one accepted key of a class, in canonical order.
type zooParam struct {
	key string
	get func(*ZooSpec) float64
	set func(*ZooSpec, float64)
	flt bool // float-valued (ccr); else positive integer
}

var (
	paramN      = zooParam{key: "n", get: func(z *ZooSpec) float64 { return float64(z.N) }, set: func(z *ZooSpec, v float64) { z.N = int(v) }}
	paramWidth  = zooParam{key: "width", get: func(z *ZooSpec) float64 { return float64(z.Width) }, set: func(z *ZooSpec, v float64) { z.Width = int(v) }}
	paramLayers = zooParam{key: "layers", get: func(z *ZooSpec) float64 { return float64(z.Layers) }, set: func(z *ZooSpec, v float64) { z.Layers = int(v) }}
	paramFanin  = zooParam{key: "fanin", get: func(z *ZooSpec) float64 { return float64(z.Fanin) }, set: func(z *ZooSpec, v float64) { z.Fanin = int(v) }}
	paramCCR    = zooParam{key: "ccr", get: func(z *ZooSpec) float64 { return z.CCR }, set: func(z *ZooSpec, v float64) { z.CCR = v }, flt: true}
)

// zooClasses maps each class to its parameters (canonical emission order)
// and defaults.
var zooClasses = []struct {
	class    string
	params   []zooParam
	defaults ZooSpec
}{
	{ZooChain, []zooParam{paramN, paramCCR}, ZooSpec{Class: ZooChain, N: 16, CCR: 0.5}},
	{ZooFanout, []zooParam{paramWidth, paramCCR}, ZooSpec{Class: ZooFanout, Width: 24, CCR: 1}},
	{ZooDiamond, []zooParam{paramWidth, paramLayers, paramCCR}, ZooSpec{Class: ZooDiamond, Width: 6, Layers: 4, CCR: 1}},
	{ZooLayered, []zooParam{paramLayers, paramWidth, paramFanin, paramCCR}, ZooSpec{Class: ZooLayered, Layers: 4, Width: 8, Fanin: 3, CCR: 1}},
	{ZooEMAN, []zooParam{paramN, paramWidth}, ZooSpec{Class: ZooEMAN, N: 400, Width: 8}},
}

// zooClass looks up a class entry.
func zooClass(class string) (int, bool) {
	for i := range zooClasses {
		if zooClasses[i].class == class {
			return i, true
		}
	}
	return 0, false
}

// maxZooSize bounds every integer parameter so that fuzzed specs cannot
// describe pathological DAGs.
const maxZooSize = 4096

// ParseZoo parses a DAG-zoo spec:
//
//	spec  := entry (';' entry)*
//	entry := class [':' param (',' param)*]
//	param := key '=' value
//
// with classes and keys
//
//	chain    n=16,ccr=0.5              serial pipeline of n tasks
//	fanout   width=24,ccr=1            fork-join: 1 → width → 1
//	diamond  width=6,layers=4,ccr=1    layers stacked 1 → width → 1 diamonds
//	layered  layers=4,width=8,fanin=3,ccr=1   random layered DAG
//	eman     n=400,width=8             the §3.3 EMAN workflow, width-way split
//
// Omitted keys take the class defaults shown; integer parameters must be in
// [1, 4096] and ccr finite and non-negative. The result is canonical:
// FormatZoo renders it back to a spec that reparses to the identical value.
func ParseZoo(spec string) ([]ZooSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("listsched: empty zoo spec")
	}
	var out []ZooSpec
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("listsched: empty zoo entry")
		}
		class, rest, hasParams := strings.Cut(entry, ":")
		ci, ok := zooClass(class)
		if !ok {
			return nil, fmt.Errorf("listsched: unknown zoo class %q", class)
		}
		z := zooClasses[ci].defaults
		seen := map[string]bool{}
		if hasParams {
			for _, kv := range strings.Split(rest, ",") {
				key, val, okKV := strings.Cut(kv, "=")
				if !okKV {
					return nil, fmt.Errorf("listsched: zoo %s: bad param %q (want key=value)", class, kv)
				}
				var p *zooParam
				for i := range zooClasses[ci].params {
					if zooClasses[ci].params[i].key == key {
						p = &zooClasses[ci].params[i]
						break
					}
				}
				if p == nil {
					return nil, fmt.Errorf("listsched: zoo %s: unknown key %q", class, key)
				}
				if seen[key] {
					return nil, fmt.Errorf("listsched: zoo %s: duplicate key %q", class, key)
				}
				seen[key] = true
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("listsched: zoo %s: %s=%q is not a number", class, key, val)
				}
				if p.flt {
					if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1024 {
						return nil, fmt.Errorf("listsched: zoo %s: %s=%v out of range [0, 1024]", class, key, v)
					}
				} else {
					if v != math.Trunc(v) || v < 1 || v > maxZooSize {
						return nil, fmt.Errorf("listsched: zoo %s: %s=%v must be an integer in [1, %d]", class, key, v, maxZooSize)
					}
				}
				p.set(&z, v)
			}
		}
		out = append(out, z)
	}
	return out, nil
}

// String renders the spec in the canonical grammar (every parameter
// explicit, class order).
func (z ZooSpec) String() string {
	ci, ok := zooClass(z.Class)
	if !ok {
		return z.Class
	}
	parts := make([]string, 0, len(zooClasses[ci].params))
	for _, p := range zooClasses[ci].params {
		v := p.get(&z)
		parts = append(parts, p.key+"="+strconv.FormatFloat(v, 'f', -1, 64))
	}
	return z.Class + ":" + strings.Join(parts, ",")
}

// FormatZoo renders specs in the grammar ParseZoo accepts — its exact
// inverse on parsed values, so zoo workloads round-trip losslessly through
// reports and replays.
func FormatZoo(specs []ZooSpec) string {
	parts := make([]string, len(specs))
	for i, z := range specs {
		parts[i] = z.String()
	}
	return strings.Join(parts, ";")
}

// Tasks returns the component count the spec expands to (for reports).
func (z ZooSpec) Tasks() int {
	switch z.Class {
	case ZooChain:
		return z.N
	case ZooFanout:
		return z.Width + 2
	case ZooDiamond:
		return 1 + z.Layers*(z.Width+1)
	case ZooLayered:
		return z.Layers * z.Width
	case ZooEMAN:
		return 4 + 2*z.Width
	}
	return 0
}

// zoo CCR calibration: a task of f flops runs f/refFlops seconds on the
// reference node, so ccr targets OutputBytes = ccr · exec · refBW with the
// reference WAN bandwidth.
const (
	zooRefFlops = 6e8    // mean MacroGrid node speed, flops/s
	zooRefBW    = 1.25e6 // Internet path bandwidth, bytes/s
)

// zooComponent builds one generic zoo task: a linear performance model of
// `flops` total work and an output volume hitting the spec's CCR.
func zooComponent(name string, flops, ccr float64) (*core.Component, error) {
	model, err := perfmodel.FitComponent(name, []perfmodel.Sample{
		{N: 1, Flops: flops}, {N: 2, Flops: 2 * flops}, {N: 3, Flops: 3 * flops},
	}, 1, 0)
	if err != nil {
		return nil, err
	}
	return &core.Component{
		Name:        name,
		Model:       model,
		ProblemSize: 1,
		OutputBytes: ccr * (flops / zooRefFlops) * zooRefBW,
	}, nil
}

// zooFlops draws one task weight: 1–10 Gflop, seconds-scale on the testbed.
func zooFlops(rng *rand.Rand) float64 { return 1e9 * float64(1+rng.Intn(10)) }

// Build materializes the spec into a workflow. Task weights (and the
// layered class's edges) are drawn from rng, so a fixed seed yields a fixed
// DAG.
func (z ZooSpec) Build(rng *rand.Rand) (*core.Workflow, error) {
	if _, ok := zooClass(z.Class); !ok {
		return nil, fmt.Errorf("listsched: unknown zoo class %q", z.Class)
	}
	w := core.NewWorkflow()
	add := func(name string, deps ...int) (int, error) {
		c, err := zooComponent(name, zooFlops(rng), z.CCR)
		if err != nil {
			return 0, err
		}
		return w.AddChecked(c, deps...)
	}
	switch z.Class {
	case ZooChain:
		prev := -1
		for i := 0; i < z.N; i++ {
			var deps []int
			if prev >= 0 {
				deps = []int{prev}
			}
			id, err := add(fmt.Sprintf("chain%d", i), deps...)
			if err != nil {
				return nil, err
			}
			prev = id
		}
	case ZooFanout:
		entry, err := add("fork")
		if err != nil {
			return nil, err
		}
		mids := make([]int, z.Width)
		for i := range mids {
			if mids[i], err = add(fmt.Sprintf("mid%d", i), entry); err != nil {
				return nil, err
			}
		}
		if _, err = add("join", mids...); err != nil {
			return nil, err
		}
	case ZooDiamond:
		prev, err := add("d0")
		if err != nil {
			return nil, err
		}
		for l := 0; l < z.Layers; l++ {
			wide := make([]int, z.Width)
			for i := range wide {
				if wide[i], err = add(fmt.Sprintf("d%d.%d", l+1, i), prev); err != nil {
					return nil, err
				}
			}
			if prev, err = add(fmt.Sprintf("j%d", l+1), wide...); err != nil {
				return nil, err
			}
		}
	case ZooLayered:
		var prevLayer []int
		for l := 0; l < z.Layers; l++ {
			cur := make([]int, 0, z.Width)
			for i := 0; i < z.Width; i++ {
				var deps []int
				if len(prevLayer) > 0 {
					k := 1 + rng.Intn(z.Fanin)
					seen := map[int]bool{}
					for j := 0; j < k; j++ {
						d := prevLayer[rng.Intn(len(prevLayer))]
						if !seen[d] {
							seen[d] = true
							deps = append(deps, d)
						}
					}
					sort.Ints(deps)
				}
				id, err := add(fmt.Sprintf("l%d.%d", l, i), deps...)
				if err != nil {
					return nil, err
				}
				cur = append(cur, id)
			}
			prevLayer = cur
		}
	case ZooEMAN:
		wf, err := apps.EMANWorkflow(float64(z.N), z.Width)
		if err != nil {
			return nil, err
		}
		w = wf.Expand()
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
