package listsched

import "grads/internal/core"

// commModel derives the context's mean point-to-point transfer model — a
// latency intercept plus a per-byte rate, averaged over all ordered node
// pairs — the resource-independent communication estimate the rank
// functions use (classic HEFT's "average transfer rate").
func (c *Context) commModel() (lat, rate float64) {
	if c.commReady {
		return c.commLat, c.commRate
	}
	const b1, b2 = 1e6, 2e6
	sum1, sum2, pairs := 0.0, 0.0, 0
	for _, a := range c.Resources {
		for _, b := range c.Resources {
			if a == b {
				continue
			}
			sum1 += c.S.TransferTime(a, b, b1)
			sum2 += c.S.TransferTime(a, b, b2)
			pairs++
		}
	}
	if pairs > 0 {
		t1, t2 := sum1/float64(pairs), sum2/float64(pairs)
		c.commRate = (t2 - t1) / (b2 - b1)
		c.commLat = t1 - c.commRate*b1
		if c.commLat < 0 {
			c.commLat = 0
		}
	}
	c.commReady = true
	return c.commLat, c.commRate
}

// MeanExecCost is component ci's execution estimate averaged over the
// eligible resources (0 when none is eligible — Schedule reports the error).
func (c *Context) MeanExecCost(ci int) float64 {
	sum, count := 0.0, 0
	for _, r := range c.Resources {
		if core.Eligible(c.W.Components[ci], r) {
			sum += c.ExecCost(ci, r)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// MeanCommCost is the mean cost of shipping component ci's output across
// an edge (identical for all of ci's successors).
func (c *Context) MeanCommCost(ci int) float64 {
	bytes := c.W.Components[ci].OutputBytes
	if bytes <= 0 {
		return 0
	}
	lat, rate := c.commModel()
	return lat + bytes*rate
}

// UpwardRanks computes rank_u for every component: its mean execution cost
// plus the most expensive (comm + rank_u) path through its successors —
// the length of the critical path from the component to an exit, under
// mean costs. Ranks strictly decrease along every edge with positive
// execution costs, so scheduling by decreasing rank_u is a topological
// order.
func UpwardRanks(ctx *Context) []float64 {
	n := ctx.W.Len()
	succs := ctx.W.Succs()
	ranks := make([]float64, n)
	for i := n - 1; i >= 0; i-- { // index order is topological (Add invariant)
		tail := 0.0
		for _, j := range succs[i] {
			if v := ctx.MeanCommCost(i) + ranks[j]; v > tail {
				tail = v
			}
		}
		ranks[i] = ctx.MeanExecCost(i) + tail
	}
	return ranks
}

// DownwardRanks computes rank_d for every component: the longest mean-cost
// path from an entry component to (but excluding) the component itself.
// rank_u + rank_d is the length of the longest path through a component;
// its maximum identifies the critical path (CPOP).
func DownwardRanks(ctx *Context) []float64 {
	n := ctx.W.Len()
	ranks := make([]float64, n)
	for i := 0; i < n; i++ {
		m := 0.0
		for _, d := range ctx.W.Deps(i) {
			if v := ranks[d] + ctx.MeanExecCost(d) + ctx.MeanCommCost(d); v > m {
				m = v
			}
		}
		ranks[i] = m
	}
	return ranks
}
