package load

import (
	"math/rand"
	"testing"
	"testing/quick"

	"grads/internal/simcore"
)

func TestConstantAndStep(t *testing.T) {
	c := Constant(2)
	if c.At(0) != 2 || c.At(100) != 2 {
		t.Fatalf("Constant profile wrong: %v", c)
	}
	st := Step(80, 0, 2)
	if st.At(79.9) != 0 || st.At(80) != 2 || st.At(1000) != 2 {
		t.Fatalf("Step profile wrong: %v", st)
	}
}

func TestSpike(t *testing.T) {
	sp := Spike(10, 20, 1, 5)
	cases := []struct{ t, want float64 }{{0, 1}, {9.99, 1}, {10, 5}, {19.99, 5}, {20, 1}, {100, 1}}
	for _, c := range cases {
		if got := sp.At(c.t); got != c.want {
			t.Fatalf("Spike.At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestPlayDeliversValues(t *testing.T) {
	s := simcore.New(1)
	var history []float64
	Play(s, Step(80, 0, 2), func(v float64) { history = append(history, v) })
	s.Run()
	if len(history) != 2 || history[0] != 0 || history[1] != 2 {
		t.Fatalf("Play delivered %v, want [0 2]", history)
	}
	if s.Now() != 80 {
		t.Fatalf("final time %v, want 80", s.Now())
	}
}

func TestPlayCancelable(t *testing.T) {
	s := simcore.New(1)
	count := 0
	evs := Play(s, Profile{{At: 1, Value: 1}, {At: 2, Value: 2}, {At: 3, Value: 3}}, func(float64) { count++ })
	s.Schedule(1.5, func() {
		for _, e := range evs {
			if e.Time() > 1.5 {
				e.Cancel()
			}
		}
	})
	s.Run()
	if count != 1 {
		t.Fatalf("fired %d points after cancel, want 1", count)
	}
}

func TestNormalizeSortsAndDropsNegative(t *testing.T) {
	p := Profile{{At: 5, Value: 3}, {At: -1, Value: 9}, {At: 2, Value: 1}}
	q := p.Normalize()
	if len(q) != 2 || q[0].At != 2 || q[1].At != 5 {
		t.Fatalf("Normalize = %v", q)
	}
}

func TestRandomWalkBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := RandomWalk(rng, 100, 1, 2, 1.5, 0, 4)
	if len(p) != 100 {
		t.Fatalf("walk has %d points, want 100", len(p))
	}
	for _, pt := range p {
		if pt.Value < 0 || pt.Value > 4 {
			t.Fatalf("walk escaped bounds: %v", pt)
		}
	}
}

// Property: At is piecewise-constant and right-continuous — querying exactly
// at a point's time returns the point's value.
func TestQuickAtMatchesPoints(t *testing.T) {
	f := func(times []uint8, values []int8) bool {
		n := len(times)
		if len(values) < n {
			n = len(values)
		}
		if n == 0 {
			return true
		}
		var p Profile
		for i := 0; i < n; i++ {
			p = append(p, Point{At: float64(times[i]), Value: float64(values[i])})
		}
		p = p.Normalize()
		for i, pt := range p {
			// Skip duplicated timestamps (only the last one wins).
			if i+1 < len(p) && p[i+1].At == pt.At {
				continue
			}
			if p.At(pt.At) != pt.Value {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
