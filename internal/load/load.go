// Package load provides time-varying background-load profiles for the Grid
// emulation: step loads (the paper's "artificial load introduced five
// minutes after start" and "two competitive processes at t=80s"), constant
// loads, spikes, random walks, and trace playback onto arbitrary setters.
package load

import (
	"math/rand"
	"sort"

	"grads/internal/simcore"
)

// Point is one step of a load profile: at virtual time At the controlled
// quantity becomes Value and holds until the next point.
type Point struct {
	At    float64
	Value float64
}

// Profile is a piecewise-constant time series, ordered by time.
type Profile []Point

// Constant returns a profile that is v forever.
func Constant(v float64) Profile { return Profile{{At: 0, Value: v}} }

// Step returns a profile that is before until t0 and after from then on.
func Step(t0, before, after float64) Profile {
	return Profile{{At: 0, Value: before}, {At: t0, Value: after}}
}

// Spike returns a profile that is base except on [t0, t1), where it is peak.
func Spike(t0, t1, base, peak float64) Profile {
	return Profile{{At: 0, Value: base}, {At: t0, Value: peak}, {At: t1, Value: base}}
}

// RandomWalk returns a profile sampled every dt on [0, until): each step the
// value moves by a uniform increment in [-sigma, sigma] and is clamped to
// [min, max]. The walk is deterministic given rng's state: randomness only
// ever comes from the explicit rng (never the global source), and a nil rng
// falls back to a fixed-seed source rather than nondeterminism.
func RandomWalk(rng *rand.Rand, until, dt, start, sigma, min, max float64) Profile {
	if dt <= 0 || until <= 0 {
		return Constant(start)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var p Profile
	v := start
	for t := 0.0; t < until; t += dt {
		p = append(p, Point{At: t, Value: v})
		v += (rng.Float64()*2 - 1) * sigma
		if v < min {
			v = min
		}
		if v > max {
			v = max
		}
	}
	return p
}

// Normalize sorts the profile by time and drops points with negative times.
func (p Profile) Normalize() Profile {
	q := make(Profile, 0, len(p))
	for _, pt := range p {
		if pt.At >= 0 {
			q = append(q, pt)
		}
	}
	sort.SliceStable(q, func(i, j int) bool { return q[i].At < q[j].At })
	return q
}

// At returns the profile's value at time t (the last point at or before t),
// or 0 if t precedes the first point.
func (p Profile) At(t float64) float64 {
	v := 0.0
	for _, pt := range p {
		if pt.At > t {
			break
		}
		v = pt.Value
	}
	return v
}

// Play schedules the profile onto set: at each point's time, set is called
// with the point's value. Points in the past (relative to sim.Now) fire
// immediately. Play returns the scheduled events so a caller can cancel the
// remainder of a trace.
func Play(sim *simcore.Sim, p Profile, set func(float64)) []simcore.Event {
	evs := make([]simcore.Event, 0, len(p))
	for _, pt := range p.Normalize() {
		v := pt.Value
		evs = append(evs, sim.At(pt.At, func() { set(v) }))
	}
	return evs
}
