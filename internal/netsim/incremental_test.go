package netsim

import (
	"fmt"
	"testing"

	"grads/internal/simcore"
)

// Two disjoint components: flows on lanA never share a link with flows on
// lanB. A mutation on lanA must re-solve only lanA's flows.
func TestIncrementalSolveScopesToComponent(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	lanA := n.AddLink("lanA", 1000, 0)
	lanB := n.AddLink("lanB", 1000, 0)
	for i := 0; i < 3; i++ {
		s.Spawn("a", func(p *simcore.Proc) { n.Transfer(p, []*Link{lanA}, 1e6) })
	}
	for i := 0; i < 5; i++ {
		s.Spawn("b", func(p *simcore.Proc) { n.Transfer(p, []*Link{lanB}, 1e6) })
	}
	s.RunUntil(1)
	_, before := n.SolverStats()
	s.Schedule(0, func() { n.SetBackground(lanA, 100) })
	s.RunUntil(2)
	if _, after := n.SolverStats(); after-before != 3 {
		t.Fatalf("background change on lanA re-solved %d flows, want 3 (lanA's component only)", after-before)
	}

	// The same mutation under the reference solver re-solves everything.
	n.SetReferenceSolver(true)
	_, before = n.SolverStats()
	s.Schedule(0, func() { n.SetBackground(lanA, 200) })
	s.RunUntil(3)
	if _, after := n.SolverStats(); after-before != 8 {
		t.Fatalf("reference solver re-solved %d flows, want all 8", after-before)
	}
}

// Components connected through a shared bottleneck must be walked
// transitively: dirtying l1 re-solves the flows on l2 that share a route
// with an l1 flow, and beyond.
func TestIncrementalSolvePropagatesOverSharedLinks(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l1 := n.AddLink("l1", 100, 0)
	l2 := n.AddLink("l2", 40, 0)
	l3 := n.AddLink("l3", 70, 0)
	other := n.AddLink("other", 10, 0)
	s.Spawn("a", func(p *simcore.Proc) { n.Transfer(p, []*Link{l1}, 1e6) })
	s.Spawn("b", func(p *simcore.Proc) { n.Transfer(p, []*Link{l1, l2}, 1e6) })
	s.Spawn("c", func(p *simcore.Proc) { n.Transfer(p, []*Link{l2, l3}, 1e6) })
	s.Spawn("d", func(p *simcore.Proc) { n.Transfer(p, []*Link{other}, 1e6) })
	s.RunUntil(0.5)
	_, before := n.SolverStats()
	s.Schedule(0, func() { n.SetBackground(l3, 5) })
	s.RunUntil(1)
	if _, after := n.SolverStats(); after-before != 3 {
		t.Fatalf("l3 change re-solved %d flows, want 3 (a, b, c transitively; not d)", after-before)
	}
}

// Ten transfers starting at the same instant — and later finishing at the
// same instant — must each cost one progressive-filling pass total, not one
// per flow.
func TestSameInstantEventsBatchIntoOneSolve(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("lan", 1000, 0)
	for i := 0; i < 10; i++ {
		s.Spawn(fmt.Sprintf("tx%d", i), func(p *simcore.Proc) { n.Transfer(p, []*Link{l}, 1000) })
	}
	// One long flow survives the batch completion so that completing the ten
	// equal flows still requires (exactly one) reallocation.
	s.Spawn("long", func(p *simcore.Proc) { n.Transfer(p, []*Link{l}, 1e6) })
	s.Run()
	passes, flowsSolved := n.SolverStats()
	// Pass 1: the 11-flow start batch. Pass 2: the 10 simultaneous
	// completions, re-solving only the survivor. The survivor's own
	// completion leaves no flows, so it needs no pass at all.
	if passes != 2 {
		t.Fatalf("ran %d solver passes, want 2 (one per same-instant batch)", passes)
	}
	if flowsSolved != 12 {
		t.Fatalf("solved %d flow rates, want 12 (11 at start + 1 survivor)", flowsSolved)
	}
}

// Regression test for the single-pass completion rewrite: when several flows
// finish at the same virtual timestamp, they complete (and their processes
// resume) in start order, deterministically.
func TestCompletionOrderAtEqualTimestampsIsDeterministic(t *testing.T) {
	run := func(reference bool) []string {
		s := simcore.New(7)
		n := New(s)
		n.SetReferenceSolver(reference)
		l := n.AddLink("lan", 600, 0)
		var order []string
		for _, name := range []string{"e", "c", "a", "d", "b", "f"} {
			name := name
			s.Spawn(name, func(p *simcore.Proc) {
				n.Transfer(p, []*Link{l}, 500) // equal sizes: all finish together
				order = append(order, name)
			})
		}
		s.Run()
		return order
	}
	want := []string{"e", "c", "a", "d", "b", "f"} // spawn (= flow seq) order
	for trial := 0; trial < 3; trial++ {
		for _, ref := range []bool{false, true} {
			got := run(ref)
			if len(got) != len(want) {
				t.Fatalf("reference=%v: %d completions, want %d", ref, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("reference=%v trial %d: completion order %v, want %v", ref, trial, got, want)
				}
			}
		}
	}
}

// The incremental and reference solvers must assign bit-identical rates.
// (The full differential check over random workloads lives in
// internal/simtest; this is the minimal white-box version.)
func TestIncrementalRatesMatchReference(t *testing.T) {
	build := func(reference bool) (*simcore.Sim, *Network) {
		s := simcore.New(3)
		n := New(s)
		n.SetReferenceSolver(reference)
		l1 := n.AddLink("l1", 100, 0)
		l2 := n.AddLink("l2", 40, 0)
		l3 := n.AddLink("l3", 250, 0)
		s.Spawn("a", func(p *simcore.Proc) { n.Transfer(p, []*Link{l1}, 1e5) })
		s.Spawn("b", func(p *simcore.Proc) { n.Transfer(p, []*Link{l1, l2}, 1e5) })
		s.Spawn("c", func(p *simcore.Proc) { n.Transfer(p, []*Link{l2}, 1e5) })
		s.Spawn("d", func(p *simcore.Proc) { n.Transfer(p, []*Link{l3}, 1e5) })
		s.SpawnAt(2, "e", func(p *simcore.Proc) { n.Transfer(p, []*Link{l3, l2}, 1e5) })
		s.Schedule(1, func() { n.SetBackground(l1, 17) })
		return s, n
	}
	si, ni := build(false)
	sr, nr := build(true)
	for _, at := range []float64{0.5, 1.5, 2.5} {
		si.RunUntil(at)
		sr.RunUntil(at)
		inc, ref := ni.FlowSnapshot(), nr.FlowSnapshot()
		if len(inc) != len(ref) {
			t.Fatalf("t=%v: %d vs %d flows", at, len(inc), len(ref))
		}
		for i := range inc {
			if inc[i].Rate != ref[i].Rate || inc[i].Remaining != ref[i].Remaining {
				t.Fatalf("t=%v flow %d: incremental (rate=%v rem=%v) != reference (rate=%v rem=%v)",
					at, i, inc[i].Rate, inc[i].Remaining, ref[i].Rate, ref[i].Remaining)
			}
		}
	}
}
