// Package netsim provides a flow-level network simulation with max-min fair
// bandwidth sharing.
//
// Transfers are modeled as fluid flows over a route (a sequence of links).
// All concurrent flows share link capacity max-min fairly: the allocation is
// computed by progressive filling and recomputed whenever a flow starts or
// ends or a link's background traffic changes. Latency is paid once per
// route before the flow starts. This fidelity level captures everything the
// GrADS experiments measure (transfer durations under contention and
// time-varying cross traffic) without packet-level cost.
//
// # Incremental solver
//
// The max-min allocation decomposes over connected components of the
// bipartite flow–link graph: flows in different components share no links,
// so their rates are independent. The default solver exploits this. Every
// mutation (flow start/finish, background change, degradation) marks the
// affected links dirty; one coalesced reallocation per virtual instant then
// re-solves only the connected component(s) reachable from the dirty links,
// leaving all other flow rates untouched. Both solvers run the identical
// progressive-filling code (solveFlows) over a seq-ordered flow list, so the
// incremental path is bit-identical to the global one — a property enforced
// by the differential harness in internal/simtest.
//
// SetReferenceSolver(true) (gradsim -netsim-reference) disables the
// component scoping and re-solves every flow on every reallocation, exactly
// like the original global solver. It is the oracle the incremental solver
// is checked against.
//
// # Batched reallocation
//
// Reallocations are deferred to a simcore.Coalescer: N simultaneous flow
// completions (or an arbitrary burst of same-instant mutations) trigger one
// progressive-filling pass instead of N. The flush always runs before
// virtual time advances, so no process can observe stale rates across an
// interval; synchronous readers (EstimateRate, FlowSnapshot) force the flush
// themselves.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// ErrLinkDown is returned by transfers over a partitioned link and is the
// interrupt cause delivered to flows crossing a link when it goes down.
var ErrLinkDown = errors.New("netsim: link down")

// ErrEndpointDown is the interrupt cause delivered to flows whose source or
// destination endpoint (node) failed mid-transfer.
var ErrEndpointDown = errors.New("netsim: endpoint down")

// Link is a network link with fixed capacity and latency plus adjustable
// background (cross) traffic and a fault state (degradation factors and a
// partition flag) controlled by the chaos layer. Create links with
// Network.AddLink.
type Link struct {
	name       string
	capacity   float64 // bytes per second
	latency    float64 // seconds
	background float64 // bytes per second consumed by cross traffic

	capFactor float64 // degradation multiplier on capacity, (0, 1]
	latFactor float64 // degradation multiplier on latency, >= 1
	down      bool    // partitioned: transfers fail

	flows map[*flow]struct{} // active flows crossing this link

	// Solver scratch, valid only while stamp equals the owning network's
	// current epoch. Keeping it on the link makes each solve allocation-free.
	svResidual float64
	svCount    int
	stamp      int64
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's effective capacity in bytes per second:
// the raw capacity scaled by any injected degradation.
func (l *Link) Capacity() float64 { return l.capacity * l.capFactor }

// Latency returns the link's effective one-way latency in seconds,
// including any injected degradation.
func (l *Link) Latency() float64 { return l.latency * l.latFactor }

// Background returns the current cross-traffic consumption in bytes/s.
func (l *Link) Background() float64 { return l.background }

// Down reports whether the link is partitioned.
func (l *Link) Down() bool { return l.down }

// residual returns capacity available to simulated flows, floored at a tiny
// positive value so saturated links stall flows without dividing by zero.
func (l *Link) residual() float64 {
	r := l.capacity*l.capFactor - l.background
	if r < 1 {
		r = 1
	}
	return r
}

// Residual returns the capacity available to simulated flows in bytes/s
// (effective capacity minus background traffic, floored at 1 B/s). It is
// what the max-min solver divides among the flows crossing the link; the
// simtest invariant checks compare flow-rate sums against it.
func (l *Link) Residual() float64 { return l.residual() }

// Network owns links and active flows and maintains the max-min fair
// allocation in virtual time.
type Network struct {
	sim     *simcore.Sim
	links   map[string]*Link
	flows   []*flow // active flows, ascending seq (start order)
	nextSeq int64

	lastUpdate float64
	doneEvent  simcore.Event
	onDone     func() // completion handler, bound once to avoid per-reschedule allocs

	bytesMoved float64 // cumulative completed-flow volume, for stats

	reference bool // re-solve every flow on every reallocation (oracle mode)

	// Deferred-reallocation state: mutations mark links dirty and trigger
	// one coalesced flush per virtual instant.
	realloc *simcore.Coalescer
	dirty   map[*Link]struct{}
	reasons []string // distinct mutation reasons folded into the next flush

	epoch   int64 // stamp generator for link scratch and flow marks
	version int64 // bumped on every state mutation, see StateVersion

	// Reusable scratch for the solver and completion handling.
	seedScratch  []*Link
	queueScratch []*Link
	compScratch  []*flow
	linkScratch  []*Link
	workScratch  []*flow
	finScratch   []*flow

	statSolves      int64 // progressive-filling passes run
	statFlowsSolved int64 // flow rates recomputed, summed over passes
}

type flow struct {
	seq       int64
	route     []*Link
	remaining float64
	total     float64
	rate      float64
	start     float64
	proc      *simcore.Proc
	src, dst  string // endpoint labels for fault targeting ("" = unlabeled)

	mark int64 // component-walk visit stamp
}

// New creates an empty network bound to sim.
func New(sim *simcore.Sim) *Network {
	n := &Network{
		sim:        sim,
		links:      make(map[string]*Link),
		lastUpdate: sim.Now(),
		dirty:      make(map[*Link]struct{}),
	}
	n.realloc = simcore.NewCoalescer(sim, n.flush)
	n.onDone = n.onCompletion
	return n
}

// SetReferenceSolver selects between the incremental component solver
// (false, the default) and the global reference solver (true), which
// re-solves every flow on every reallocation. Both produce bit-identical
// rates; the reference solver exists as the oracle for the differential
// harness. Any pending reallocation is flushed before switching.
func (n *Network) SetReferenceSolver(on bool) {
	n.realloc.Flush()
	n.reference = on
}

// ReferenceSolver reports whether the global reference solver is selected.
func (n *Network) ReferenceSolver() bool { return n.reference }

// SolverStats returns the number of progressive-filling passes run and the
// total number of flow rates recomputed across them. Under the incremental
// solver the second number counts only dirty-component flows; under the
// reference solver it counts every active flow per pass.
func (n *Network) SolverStats() (passes, flowsSolved int64) {
	return n.statSolves, n.statFlowsSolved
}

// AddLink creates and registers a link. capacity is in bytes per second,
// latency in seconds. It panics on a duplicate name or non-positive capacity.
func (n *Network) AddLink(name string, capacity, latency float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: link %q capacity must be positive", name))
	}
	if _, dup := n.links[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %q", name))
	}
	l := &Link{
		name: name, capacity: capacity, latency: latency,
		capFactor: 1, latFactor: 1,
		flows: make(map[*flow]struct{}),
	}
	n.links[name] = l
	return l
}

// Link returns the named link, or nil.
func (n *Network) Link(name string) *Link { return n.links[name] }

// SetBackground changes a link's cross-traffic consumption (bytes/s) and
// re-splits the bandwidth of the flows sharing capacity with it.
func (n *Network) SetBackground(l *Link, bytesPerSec float64) {
	if bytesPerSec < 0 {
		bytesPerSec = 0
	}
	n.advance()
	l.background = bytesPerSec
	n.invalidateLink("background:"+l.name, l)
}

// SetCapacityFactor degrades (or restores) a link: its capacity becomes
// factor times the raw capacity. factor clamps to (0, 1]. Active flows
// re-split at the current instant.
func (n *Network) SetCapacityFactor(l *Link, factor float64) {
	if factor <= 0 {
		factor = 1e-6
	}
	if factor > 1 {
		factor = 1
	}
	n.advance()
	l.capFactor = factor
	n.invalidateLink("degrade:"+l.name, l)
}

// SetLatencyFactor multiplies a link's latency by factor (>= 1); 1 restores
// the raw latency. Latency is paid at flow start, so only new transfers see
// the change.
func (n *Network) SetLatencyFactor(l *Link, factor float64) {
	if factor < 1 {
		factor = 1
	}
	l.latFactor = factor
	n.version++
}

// SetLinkDown partitions or restores a link. Going down kills every active
// flow crossing the link (each blocked transfer returns ErrLinkDown with
// its partial byte count) and makes new transfers over it fail until the
// link comes back.
func (n *Network) SetLinkDown(l *Link, down bool) {
	if l.down == down {
		return
	}
	n.advance()
	l.down = down
	if down {
		n.failFlows(func(f *flow) bool {
			for _, fl := range f.route {
				if fl == l {
					return true
				}
			}
			return false
		}, ErrLinkDown)
	}
	n.invalidateLink("partition:"+l.name, l)
}

// FailEndpoint kills every active flow labeled with the given endpoint as
// source or destination (a node crash severs its transfers mid-flight).
// Each victim's blocked transfer returns cause with its partial byte count.
// It returns the number of flows killed.
func (n *Network) FailEndpoint(name string, cause error) int {
	if cause == nil {
		cause = ErrEndpointDown
	}
	n.advance()
	killed := n.failFlows(func(f *flow) bool { return f.src == name || f.dst == name }, cause)
	if killed > 0 {
		n.note("endpoint:" + name)
	}
	return killed
}

// failFlows interrupts every active flow matching the predicate with cause.
// The victims' Transfer calls unwind (removing themselves from the flow
// set) as each interrupt is delivered. It returns the number interrupted.
func (n *Network) failFlows(match func(*flow) bool, cause error) int {
	var victims []*flow
	for _, f := range n.flows {
		if match(f) {
			victims = append(victims, f)
		}
	}
	for _, f := range victims {
		f.proc.Interrupt(cause)
	}
	if len(victims) > 0 {
		if tel := n.sim.Telemetry(); tel != nil {
			tel.Counter("netsim", "flows_killed").Add(uint64(len(victims)))
		}
	}
	return len(victims)
}

// routeUp returns nil when every link of route is up, or ErrLinkDown naming
// the first partitioned link.
func routeUp(route []*Link) error {
	for _, l := range route {
		if l.down {
			return fmt.Errorf("%w: %s", ErrLinkDown, l.name)
		}
	}
	return nil
}

// StateVersion returns a counter that increases on every network state
// mutation (flow add/remove, background, degradation, partition, latency
// changes). Equal versions guarantee rate and latency estimates over any
// route return identical values, making the version a sound memoization key
// for transfer-time estimates; EstimateRate probes restore state exactly and
// do not bump it.
func (n *Network) StateVersion() int64 { return n.version }

// note records a mutation reason for the next coalesced reallocation and
// triggers the flush, without marking any link dirty.
func (n *Network) note(reason string) {
	n.version++
	for _, r := range n.reasons {
		if r == reason {
			n.realloc.Trigger()
			return
		}
	}
	n.reasons = append(n.reasons, reason)
	n.realloc.Trigger()
}

// invalidateLink marks one link dirty and schedules the coalesced flush.
func (n *Network) invalidateLink(reason string, l *Link) {
	n.dirty[l] = struct{}{}
	n.note(reason)
}

// invalidateRoute marks every link of a route dirty and schedules the flush.
func (n *Network) invalidateRoute(reason string, route []*Link) {
	for _, l := range route {
		n.dirty[l] = struct{}{}
	}
	n.note(reason)
}

// flush is the coalesced reallocation: it folds elapsed progress, re-solves
// the dirty scope, re-arms the completion event and publishes one realloc
// trace event carrying every distinct mutation reason of the batch.
func (n *Network) flush() {
	n.advance()
	if len(n.dirty) > 0 {
		seed := n.seedScratch[:0]
		for l := range n.dirty {
			seed = append(seed, l)
		}
		clear(n.dirty)
		n.solveSeed(seed)
		n.seedScratch = seed[:0]
	}
	n.reschedule()
	if len(n.reasons) > 0 {
		n.emitRealloc(strings.Join(n.reasons, "+"))
		n.reasons = n.reasons[:0]
	}
}

// emitRealloc publishes a max-min reallocation trace event. It is called
// only at real allocation-changing points, never from EstimateRate probes.
func (n *Network) emitRealloc(reason string) {
	tel := n.sim.Telemetry()
	if tel == nil {
		return
	}
	tel.Counter("netsim", "reallocs").Inc()
	minRate, maxRate := math.Inf(1), 0.0
	for _, f := range n.flows {
		if f.rate < minRate {
			minRate = f.rate
		}
		if f.rate > maxRate {
			maxRate = f.rate
		}
	}
	if len(n.flows) == 0 {
		minRate = 0
	}
	tel.Emit(telemetry.Event{
		Type: telemetry.EvNetRealloc, Comp: "netsim",
		Args: []telemetry.Arg{
			telemetry.S("reason", reason),
			telemetry.I("flows", len(n.flows)),
			telemetry.F("min_rate", minRate),
			telemetry.F("max_rate", maxRate),
		},
	})
}

// ActiveFlows returns the number of in-progress transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// BytesMoved returns the cumulative volume of completed transfers.
func (n *Network) BytesMoved() float64 { return n.bytesMoved }

// FlowInfo is a read-only snapshot of one active flow.
type FlowInfo struct {
	Rate      float64 // current max-min fair rate, bytes/s
	Remaining float64 // bytes left to move
	Total     float64 // transfer size, bytes
	Route     []*Link // links crossed, in order (do not mutate)
}

// FlowSnapshot returns the active flows in start order. Any pending
// coalesced reallocation is flushed first so the rates are current.
func (n *Network) FlowSnapshot() []FlowInfo {
	n.realloc.Flush()
	n.advance()
	out := make([]FlowInfo, len(n.flows))
	for i, f := range n.flows {
		out[i] = FlowInfo{Rate: f.rate, Remaining: f.remaining, Total: f.total, Route: f.route}
	}
	return out
}

// RouteLatency returns the summed one-way latency of a route.
func (n *Network) RouteLatency(route []*Link) float64 {
	sum := 0.0
	for _, l := range route {
		sum += l.Latency()
	}
	return sum
}

// EstimateRate returns the max-min fair rate (bytes/s) that a new flow over
// route would receive if it started now, given current flows and background
// traffic. This is what an NWS-style bandwidth probe observes.
func (n *Network) EstimateRate(route []*Link) float64 {
	if len(route) == 0 {
		return math.Inf(1)
	}
	// Fold any pending same-instant mutations so the probe sees the state a
	// real flow would start into.
	n.realloc.Flush()
	// The phantom's seq sorts after every real flow, mirroring its position
	// at the tail of the flow list.
	phantom := &flow{seq: math.MaxInt64, route: route, remaining: 1}
	n.flows = append(n.flows, phantom)
	n.indexFlow(phantom)
	n.probeSolve(route)
	rate := phantom.rate
	n.flows[len(n.flows)-1] = nil
	n.flows = n.flows[:len(n.flows)-1]
	n.unindexFlow(phantom)
	n.probeSolve(route) // restore pre-probe rates (bit-identical re-solve)
	return rate
}

// probeSolve re-solves the scope affected by an EstimateRate probe: the
// probe route's connected component, or everything in reference mode.
func (n *Network) probeSolve(route []*Link) {
	if n.reference {
		n.solveFlows(n.flows)
		return
	}
	seed := n.seedScratch[:0]
	seed = append(seed, route...)
	n.solveSeed(seed)
	n.seedScratch = seed[:0]
}

// TransferTimeEstimate predicts the duration of moving the given volume over
// route under current conditions (latency + volume at the estimated rate).
func (n *Network) TransferTimeEstimate(route []*Link, bytes float64) float64 {
	if len(route) == 0 || bytes <= 0 {
		return 0
	}
	return n.RouteLatency(route) + bytes/n.EstimateRate(route)
}

// Transfer moves bytes over route, blocking the calling process for the
// route latency plus the fair-shared transmission time. It returns the bytes
// actually delivered and the interrupt cause if interrupted mid-transfer.
// An empty route (intra-node move) completes after a yield. Transfers over a
// partitioned link fail immediately with ErrLinkDown.
func (n *Network) Transfer(p *simcore.Proc, route []*Link, bytes float64) (moved float64, err error) {
	return n.TransferLabeled(p, route, bytes, "", "")
}

// TransferLabeled is Transfer with the flow labeled by its source and
// destination node names, making it a target for FailEndpoint: when either
// endpoint goes down mid-transfer the flow is killed and the blocked call
// returns the failure cause with the partial byte count. Empty labels opt
// out of endpoint fault targeting.
func (n *Network) TransferLabeled(p *simcore.Proc, route []*Link, bytes float64, src, dst string) (moved float64, err error) {
	if len(route) == 0 || bytes <= 0 {
		return bytes, p.Yield()
	}
	if err := routeUp(route); err != nil {
		return 0, err
	}
	if err := p.Sleep(n.RouteLatency(route)); err != nil {
		return 0, err
	}
	// Re-check after paying the latency: the link may have been cut while
	// the first bit was in flight.
	if err := routeUp(route); err != nil {
		return 0, err
	}
	n.advance()
	n.nextSeq++
	f := &flow{seq: n.nextSeq, route: route, remaining: bytes, total: bytes, start: n.sim.Now(), proc: p, src: src, dst: dst}
	n.flows = append(n.flows, f)
	n.indexFlow(f)
	n.invalidateRoute("flow-start", route)
	if tel := n.sim.Telemetry(); tel != nil {
		tel.Emit(telemetry.Event{
			Type: telemetry.EvFlowStart, Comp: "netsim", Name: p.Name(),
			Args: []telemetry.Arg{
				telemetry.F("bytes", bytes),
				telemetry.I("hops", len(route)),
			},
		})
	}
	if err := p.ParkWith(nil); err != nil {
		n.removeFlow(f)
		return f.total - f.remaining, err
	}
	return f.total, nil
}

// indexFlow registers f on every link of its route.
func (n *Network) indexFlow(f *flow) {
	for _, l := range f.route {
		l.flows[f] = struct{}{}
	}
}

// unindexFlow removes f from every link of its route.
func (n *Network) unindexFlow(f *flow) {
	for _, l := range f.route {
		delete(l.flows, f)
	}
}

// advance progresses all flows to the current time at their last rates.
func (n *Network) advance() {
	now := n.sim.Now()
	dt := now - n.lastUpdate
	if dt > 0 {
		for _, f := range n.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 1e-9+1e-12*f.total {
				f.remaining = 0
			}
		}
	}
	n.lastUpdate = now
}

// solveSeed re-solves the connected component(s) of the flow–link graph
// reachable from the seed links — or every flow in reference mode. Because
// max-min allocations decompose over components, solving a component in
// isolation yields exactly the rates the global solve would assign it.
func (n *Network) solveSeed(seed []*Link) {
	if len(n.flows) == 0 {
		return
	}
	if n.reference {
		n.solveFlows(n.flows)
		return
	}
	n.epoch++
	ep := n.epoch
	queue := n.queueScratch[:0]
	for _, l := range seed {
		if l.stamp != ep {
			l.stamp = ep
			queue = append(queue, l)
		}
	}
	marked := 0
	for qi := 0; qi < len(queue); qi++ {
		for f := range queue[qi].flows {
			if f.mark == ep {
				continue
			}
			f.mark = ep
			marked++
			for _, rl := range f.route {
				if rl.stamp != ep {
					rl.stamp = ep
					queue = append(queue, rl)
				}
			}
		}
	}
	n.queueScratch = queue[:0]
	if marked == 0 {
		return
	}
	if marked == len(n.flows) {
		// The dirty scope covers everything; n.flows is already seq-ordered.
		n.solveFlows(n.flows)
		return
	}
	// Collect the marked flows by filtering the flow list, which reproduces
	// the reference solver's iteration order (ascending seq) exactly.
	comp := n.compScratch[:0]
	for _, f := range n.flows {
		if f.mark == ep {
			comp = append(comp, f)
		}
	}
	n.solveFlows(comp)
	n.compScratch = comp[:0]
}

// solveFlows runs progressive filling over the given seq-ordered flow set,
// assigning each flow its max-min fair rate. It is the single shared solver
// core: the reference path passes every active flow, the incremental path a
// connected component. The arithmetic (iteration order, freeze tolerance,
// residual clamping) is identical either way, which is what makes the two
// paths bit-identical.
func (n *Network) solveFlows(flows []*flow) {
	if len(flows) == 0 {
		return
	}
	n.statSolves++
	n.statFlowsSolved += int64(len(flows))
	n.epoch++
	ep := n.epoch
	links := n.linkScratch[:0]
	for _, f := range flows {
		for _, l := range f.route {
			if l.stamp != ep {
				l.stamp = ep
				l.svResidual = l.residual()
				l.svCount = 0
				links = append(links, l)
			}
			l.svCount++
		}
	}
	work := n.workScratch[:0]
	work = append(work, flows...)
	for len(work) > 0 {
		// Find the tightest link share among links with unfrozen flows.
		minShare := math.Inf(1)
		for _, l := range links {
			if l.svCount > 0 {
				if sh := l.svResidual / float64(l.svCount); sh < minShare {
					minShare = sh
				}
			}
		}
		if math.IsInf(minShare, 1) {
			break
		}
		// Freeze every unfrozen flow crossing a bottleneck link.
		progress := false
		next := work[:0]
		for _, f := range work {
			bottlenecked := false
			for _, l := range f.route {
				if l.svCount > 0 && l.svResidual/float64(l.svCount) <= minShare*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				next = append(next, f)
				continue
			}
			f.rate = minShare
			progress = true
			for _, l := range f.route {
				l.svResidual -= minShare
				if l.svResidual < 0 {
					l.svResidual = 0
				}
				l.svCount--
			}
		}
		work = next
		if !progress {
			break
		}
	}
	n.linkScratch = links[:0]
	n.workScratch = work[:0]
}

// reschedule cancels the pending completion event and schedules the next
// flow completion under current rates.
func (n *Network) reschedule() {
	n.doneEvent.Cancel()
	if len(n.flows) == 0 {
		return
	}
	soonest := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	n.doneEvent = n.sim.Schedule(soonest, n.onDone)
}

// onCompletion finishes exhausted flows in one pass over the flow list,
// marks their routes for the coalesced reallocation, and wakes their
// processes. Simultaneous completions therefore cost a single progressive
// filling, and the surviving flows keep their relative (seq) order, which
// keeps completion handling deterministic at equal timestamps.
func (n *Network) onCompletion() {
	n.advance()
	now := n.sim.Now()
	tel := n.sim.Telemetry()
	finished := n.finScratch[:0]
	rest := n.flows[:0]
	for _, f := range n.flows {
		// A flow is done when no work remains — or when the work left is
		// so small its completion time is absorbed by floating point
		// (now + dt == now), which would otherwise loop the event forever.
		if f.remaining <= 0 || (f.rate > 0 && now+f.remaining/f.rate == now) {
			f.remaining = 0
			n.bytesMoved += f.total
			n.unindexFlow(f)
			n.invalidateRoute("flow-end", f.route)
			finished = append(finished, f)
			if tel != nil {
				tel.Histogram("netsim", "flow_seconds").Observe(now - f.start)
				tel.Histogram("netsim", "flow_bytes").Observe(f.total)
				tel.Emit(telemetry.Event{
					Type: telemetry.EvFlowEnd, Comp: "netsim", Name: f.proc.Name(),
					Dur:  now - f.start,
					Args: []telemetry.Arg{telemetry.F("bytes", f.total)},
				})
			}
		} else {
			rest = append(rest, f)
		}
	}
	for i := len(rest); i < len(n.flows); i++ {
		n.flows[i] = nil
	}
	n.flows = rest
	if len(finished) == 0 {
		// Floating-point guard: nothing actually crossed zero; re-arm the
		// completion event through the flush without emitting a realloc.
		n.realloc.Trigger()
	} else if tel != nil {
		tel.Counter("netsim", "flows_completed").Add(uint64(len(finished)))
	}
	// Resume in a separate pass: a resumed process runs immediately and may
	// start new transfers, mutating the flow list mid-iteration otherwise.
	for i, f := range finished {
		finished[i] = nil
		f.proc.Resume(nil)
	}
	n.finScratch = finished[:0]
}

// removeFlow deletes a flow whose process was interrupted, preserving the
// seq order of the survivors.
func (n *Network) removeFlow(f *flow) {
	n.advance()
	for i, x := range n.flows {
		if x == f {
			copy(n.flows[i:], n.flows[i+1:])
			n.flows[len(n.flows)-1] = nil
			n.flows = n.flows[:len(n.flows)-1]
			break
		}
	}
	n.unindexFlow(f)
	n.invalidateRoute("flow-interrupted", f.route)
}
