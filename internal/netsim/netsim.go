// Package netsim provides a flow-level network simulation with max-min fair
// bandwidth sharing.
//
// Transfers are modeled as fluid flows over a route (a sequence of links).
// All concurrent flows share link capacity max-min fairly: the allocation is
// computed by progressive filling and recomputed whenever a flow starts or
// ends or a link's background traffic changes. Latency is paid once per
// route before the flow starts. This fidelity level captures everything the
// GrADS experiments measure (transfer durations under contention and
// time-varying cross traffic) without packet-level cost.
package netsim

import (
	"errors"
	"fmt"
	"math"

	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// ErrLinkDown is returned by transfers over a partitioned link and is the
// interrupt cause delivered to flows crossing a link when it goes down.
var ErrLinkDown = errors.New("netsim: link down")

// ErrEndpointDown is the interrupt cause delivered to flows whose source or
// destination endpoint (node) failed mid-transfer.
var ErrEndpointDown = errors.New("netsim: endpoint down")

// Link is a network link with fixed capacity and latency plus adjustable
// background (cross) traffic and a fault state (degradation factors and a
// partition flag) controlled by the chaos layer. Create links with
// Network.AddLink.
type Link struct {
	name       string
	capacity   float64 // bytes per second
	latency    float64 // seconds
	background float64 // bytes per second consumed by cross traffic

	capFactor float64 // degradation multiplier on capacity, (0, 1]
	latFactor float64 // degradation multiplier on latency, >= 1
	down      bool    // partitioned: transfers fail
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's effective capacity in bytes per second:
// the raw capacity scaled by any injected degradation.
func (l *Link) Capacity() float64 { return l.capacity * l.capFactor }

// Latency returns the link's effective one-way latency in seconds,
// including any injected degradation.
func (l *Link) Latency() float64 { return l.latency * l.latFactor }

// Background returns the current cross-traffic consumption in bytes/s.
func (l *Link) Background() float64 { return l.background }

// Down reports whether the link is partitioned.
func (l *Link) Down() bool { return l.down }

// residual returns capacity available to simulated flows, floored at a tiny
// positive value so saturated links stall flows without dividing by zero.
func (l *Link) residual() float64 {
	r := l.capacity*l.capFactor - l.background
	if r < 1 {
		r = 1
	}
	return r
}

// Network owns links and active flows and maintains the max-min fair
// allocation in virtual time.
type Network struct {
	sim     *simcore.Sim
	links   map[string]*Link
	flows   []*flow
	nextSeq int64

	lastUpdate float64
	doneEvent  *simcore.Event

	bytesMoved float64 // cumulative completed-flow volume, for stats
}

type flow struct {
	seq       int64
	route     []*Link
	remaining float64
	total     float64
	rate      float64
	start     float64
	proc      *simcore.Proc
	src, dst  string // endpoint labels for fault targeting ("" = unlabeled)
}

// New creates an empty network bound to sim.
func New(sim *simcore.Sim) *Network {
	return &Network{sim: sim, links: make(map[string]*Link), lastUpdate: sim.Now()}
}

// AddLink creates and registers a link. capacity is in bytes per second,
// latency in seconds. It panics on a duplicate name or non-positive capacity.
func (n *Network) AddLink(name string, capacity, latency float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: link %q capacity must be positive", name))
	}
	if _, dup := n.links[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %q", name))
	}
	l := &Link{name: name, capacity: capacity, latency: latency, capFactor: 1, latFactor: 1}
	n.links[name] = l
	return l
}

// Link returns the named link, or nil.
func (n *Network) Link(name string) *Link { return n.links[name] }

// SetBackground changes a link's cross-traffic consumption (bytes/s) and
// re-splits the bandwidth of all active flows.
func (n *Network) SetBackground(l *Link, bytesPerSec float64) {
	if bytesPerSec < 0 {
		bytesPerSec = 0
	}
	n.advance()
	l.background = bytesPerSec
	n.reallocate()
	n.reschedule()
	n.emitRealloc("background:" + l.name)
}

// SetCapacityFactor degrades (or restores) a link: its capacity becomes
// factor times the raw capacity. factor clamps to (0, 1]. Active flows
// re-split immediately.
func (n *Network) SetCapacityFactor(l *Link, factor float64) {
	if factor <= 0 {
		factor = 1e-6
	}
	if factor > 1 {
		factor = 1
	}
	n.advance()
	l.capFactor = factor
	n.reallocate()
	n.reschedule()
	n.emitRealloc("degrade:" + l.name)
}

// SetLatencyFactor multiplies a link's latency by factor (>= 1); 1 restores
// the raw latency. Latency is paid at flow start, so only new transfers see
// the change.
func (n *Network) SetLatencyFactor(l *Link, factor float64) {
	if factor < 1 {
		factor = 1
	}
	l.latFactor = factor
}

// SetLinkDown partitions or restores a link. Going down kills every active
// flow crossing the link (each blocked transfer returns ErrLinkDown with
// its partial byte count) and makes new transfers over it fail until the
// link comes back.
func (n *Network) SetLinkDown(l *Link, down bool) {
	if l.down == down {
		return
	}
	n.advance()
	l.down = down
	if down {
		n.failFlows(func(f *flow) bool {
			for _, fl := range f.route {
				if fl == l {
					return true
				}
			}
			return false
		}, ErrLinkDown)
	}
	n.reallocate()
	n.reschedule()
	n.emitRealloc("partition:" + l.name)
}

// FailEndpoint kills every active flow labeled with the given endpoint as
// source or destination (a node crash severs its transfers mid-flight).
// Each victim's blocked transfer returns cause with its partial byte count.
// It returns the number of flows killed.
func (n *Network) FailEndpoint(name string, cause error) int {
	if cause == nil {
		cause = ErrEndpointDown
	}
	n.advance()
	killed := n.failFlows(func(f *flow) bool { return f.src == name || f.dst == name }, cause)
	if killed > 0 {
		n.reallocate()
		n.reschedule()
		n.emitRealloc("endpoint:" + name)
	}
	return killed
}

// failFlows interrupts every active flow matching the predicate with cause.
// The victims' Transfer calls unwind (removing themselves from the flow
// set) as each interrupt is delivered. It returns the number interrupted.
func (n *Network) failFlows(match func(*flow) bool, cause error) int {
	var victims []*flow
	for _, f := range n.flows {
		if match(f) {
			victims = append(victims, f)
		}
	}
	for _, f := range victims {
		f.proc.Interrupt(cause)
	}
	if len(victims) > 0 {
		if tel := n.sim.Telemetry(); tel != nil {
			tel.Counter("netsim", "flows_killed").Add(uint64(len(victims)))
		}
	}
	return len(victims)
}

// routeUp returns nil when every link of route is up, or ErrLinkDown naming
// the first partitioned link.
func routeUp(route []*Link) error {
	for _, l := range route {
		if l.down {
			return fmt.Errorf("%w: %s", ErrLinkDown, l.name)
		}
	}
	return nil
}

// emitRealloc publishes a max-min reallocation trace event. It is called
// only at real allocation-changing points, never from EstimateRate probes.
func (n *Network) emitRealloc(reason string) {
	tel := n.sim.Telemetry()
	if tel == nil {
		return
	}
	tel.Counter("netsim", "reallocs").Inc()
	minRate, maxRate := math.Inf(1), 0.0
	for _, f := range n.flows {
		if f.rate < minRate {
			minRate = f.rate
		}
		if f.rate > maxRate {
			maxRate = f.rate
		}
	}
	if len(n.flows) == 0 {
		minRate = 0
	}
	tel.Emit(telemetry.Event{
		Type: telemetry.EvNetRealloc, Comp: "netsim",
		Args: []telemetry.Arg{
			telemetry.S("reason", reason),
			telemetry.I("flows", len(n.flows)),
			telemetry.F("min_rate", minRate),
			telemetry.F("max_rate", maxRate),
		},
	})
}

// ActiveFlows returns the number of in-progress transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// BytesMoved returns the cumulative volume of completed transfers.
func (n *Network) BytesMoved() float64 { return n.bytesMoved }

// RouteLatency returns the summed one-way latency of a route.
func (n *Network) RouteLatency(route []*Link) float64 {
	sum := 0.0
	for _, l := range route {
		sum += l.Latency()
	}
	return sum
}

// EstimateRate returns the max-min fair rate (bytes/s) that a new flow over
// route would receive if it started now, given current flows and background
// traffic. This is what an NWS-style bandwidth probe observes.
func (n *Network) EstimateRate(route []*Link) float64 {
	if len(route) == 0 {
		return math.Inf(1)
	}
	phantom := &flow{route: route, remaining: 1}
	n.flows = append(n.flows, phantom)
	n.computeRates()
	rate := phantom.rate
	n.flows = n.flows[:len(n.flows)-1]
	n.computeRates()
	return rate
}

// TransferTimeEstimate predicts the duration of moving the given volume over
// route under current conditions (latency + volume at the estimated rate).
func (n *Network) TransferTimeEstimate(route []*Link, bytes float64) float64 {
	if len(route) == 0 || bytes <= 0 {
		return 0
	}
	return n.RouteLatency(route) + bytes/n.EstimateRate(route)
}

// Transfer moves bytes over route, blocking the calling process for the
// route latency plus the fair-shared transmission time. It returns the bytes
// actually delivered and the interrupt cause if interrupted mid-transfer.
// An empty route (intra-node move) completes after a yield. Transfers over a
// partitioned link fail immediately with ErrLinkDown.
func (n *Network) Transfer(p *simcore.Proc, route []*Link, bytes float64) (moved float64, err error) {
	return n.TransferLabeled(p, route, bytes, "", "")
}

// TransferLabeled is Transfer with the flow labeled by its source and
// destination node names, making it a target for FailEndpoint: when either
// endpoint goes down mid-transfer the flow is killed and the blocked call
// returns the failure cause with the partial byte count. Empty labels opt
// out of endpoint fault targeting.
func (n *Network) TransferLabeled(p *simcore.Proc, route []*Link, bytes float64, src, dst string) (moved float64, err error) {
	if len(route) == 0 || bytes <= 0 {
		return bytes, p.Yield()
	}
	if err := routeUp(route); err != nil {
		return 0, err
	}
	if err := p.Sleep(n.RouteLatency(route)); err != nil {
		return 0, err
	}
	// Re-check after paying the latency: the link may have been cut while
	// the first bit was in flight.
	if err := routeUp(route); err != nil {
		return 0, err
	}
	n.advance()
	n.nextSeq++
	f := &flow{seq: n.nextSeq, route: route, remaining: bytes, total: bytes, start: n.sim.Now(), proc: p, src: src, dst: dst}
	n.flows = append(n.flows, f)
	n.reallocate()
	n.reschedule()
	if tel := n.sim.Telemetry(); tel != nil {
		tel.Emit(telemetry.Event{
			Type: telemetry.EvFlowStart, Comp: "netsim", Name: p.Name(),
			Args: []telemetry.Arg{
				telemetry.F("bytes", bytes),
				telemetry.I("hops", len(route)),
				telemetry.F("rate", f.rate),
			},
		})
	}
	n.emitRealloc("flow-start")
	if err := p.ParkWith(nil); err != nil {
		n.removeFlow(f)
		n.emitRealloc("flow-interrupted")
		return f.total - f.remaining, err
	}
	return f.total, nil
}

// advance progresses all flows to the current time at their last rates.
func (n *Network) advance() {
	now := n.sim.Now()
	dt := now - n.lastUpdate
	if dt > 0 {
		for _, f := range n.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 1e-9+1e-12*f.total {
				f.remaining = 0
			}
		}
	}
	n.lastUpdate = now
}

// reallocate recomputes the max-min fair rate of every flow.
func (n *Network) reallocate() { n.computeRates() }

// computeRates runs progressive filling over the current flow set.
func (n *Network) computeRates() {
	if len(n.flows) == 0 {
		return
	}
	type linkState struct {
		residual float64
		count    int // unfrozen flows crossing this link
	}
	states := make(map[*Link]*linkState)
	for _, f := range n.flows {
		for _, l := range f.route {
			st := states[l]
			if st == nil {
				st = &linkState{residual: l.residual()}
				states[l] = st
			}
			st.count++
		}
	}
	frozen := make(map[*flow]bool, len(n.flows))
	for len(frozen) < len(n.flows) {
		// Find the tightest link share among links with unfrozen flows.
		minShare := math.Inf(1)
		for _, st := range states {
			if st.count > 0 {
				if sh := st.residual / float64(st.count); sh < minShare {
					minShare = sh
				}
			}
		}
		if math.IsInf(minShare, 1) {
			break
		}
		// Freeze every unfrozen flow crossing a bottleneck link.
		progress := false
		for _, f := range n.flows {
			if frozen[f] {
				continue
			}
			bottlenecked := false
			for _, l := range f.route {
				st := states[l]
				if st.count > 0 && st.residual/float64(st.count) <= minShare*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			f.rate = minShare
			frozen[f] = true
			progress = true
			for _, l := range f.route {
				st := states[l]
				st.residual -= minShare
				if st.residual < 0 {
					st.residual = 0
				}
				st.count--
			}
		}
		if !progress {
			break
		}
	}
}

// reschedule cancels the pending completion event and schedules the next
// flow completion under current rates.
func (n *Network) reschedule() {
	if n.doneEvent != nil {
		n.doneEvent.Cancel()
		n.doneEvent = nil
	}
	if len(n.flows) == 0 {
		return
	}
	soonest := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	n.doneEvent = n.sim.Schedule(soonest, n.onCompletion)
}

// onCompletion finishes exhausted flows, wakes their processes and
// reallocates bandwidth among the survivors.
func (n *Network) onCompletion() {
	n.doneEvent = nil
	n.advance()
	now := n.sim.Now()
	var finished, rest []*flow
	for _, f := range n.flows {
		// A flow is done when no work remains — or when the work left is
		// so small its completion time is absorbed by floating point
		// (now + dt == now), which would otherwise loop the event forever.
		if f.remaining <= 0 || (f.rate > 0 && now+f.remaining/f.rate == now) {
			f.remaining = 0
			finished = append(finished, f)
		} else {
			rest = append(rest, f)
		}
	}
	n.flows = rest
	n.reallocate()
	n.reschedule()
	if len(finished) > 0 {
		n.emitRealloc("flow-end")
	}
	if tel := n.sim.Telemetry(); tel != nil {
		tel.Counter("netsim", "flows_completed").Add(uint64(len(finished)))
		for _, f := range finished {
			tel.Histogram("netsim", "flow_seconds").Observe(now - f.start)
			tel.Histogram("netsim", "flow_bytes").Observe(f.total)
			tel.Emit(telemetry.Event{
				Type: telemetry.EvFlowEnd, Comp: "netsim", Name: f.proc.Name(),
				Dur:  now - f.start,
				Args: []telemetry.Arg{telemetry.F("bytes", f.total)},
			})
		}
	}
	for _, f := range finished {
		n.bytesMoved += f.total
		f.proc.Resume(nil)
	}
}

// removeFlow deletes a flow whose process was interrupted.
func (n *Network) removeFlow(f *flow) {
	n.advance()
	rest := n.flows[:0:0]
	for _, x := range n.flows {
		if x != f {
			rest = append(rest, x)
		}
	}
	n.flows = rest
	n.reallocate()
	n.reschedule()
}
