package netsim

import (
	"errors"
	"testing"

	"grads/internal/simcore"
)

func TestSetLinkDownKillsCrossingFlows(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	hit := n.AddLink("wan", 100, 0)
	other := n.AddLink("lan", 100, 0)
	var hitErr, otherErr error
	var hitMoved float64
	s.Spawn("victim", func(p *simcore.Proc) {
		hitMoved, hitErr = n.Transfer(p, []*Link{hit}, 1000)
	})
	s.Spawn("bystander", func(p *simcore.Proc) {
		_, otherErr = n.Transfer(p, []*Link{other}, 1000)
	})
	s.At(2, func() { n.SetLinkDown(hit, true) })
	s.Run()
	if !errors.Is(hitErr, ErrLinkDown) {
		t.Fatalf("flow over downed link got %v, want ErrLinkDown", hitErr)
	}
	if hitMoved >= 1000 {
		t.Fatalf("killed flow reported %v bytes moved", hitMoved)
	}
	if otherErr != nil {
		t.Fatalf("flow on an unrelated link was killed: %v", otherErr)
	}
	if !hit.Down() || other.Down() {
		t.Fatal("down flags wrong")
	}
}

func TestTransferOverDownLinkFailsFast(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("wan", 100, 0.5)
	n.SetLinkDown(l, true)
	var err error
	var at float64
	s.Spawn("tx", func(p *simcore.Proc) {
		_, err = n.Transfer(p, []*Link{l}, 1000)
		at = p.Now()
	})
	s.Run()
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("got %v, want ErrLinkDown", err)
	}
	if at != 0 {
		t.Fatalf("down-route transfer paid latency (finished at %v), want fail before the latency sleep", at)
	}
}

func TestLinkRecoveryRestoresTransfers(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("wan", 100, 0)
	n.SetLinkDown(l, true)
	s.At(5, func() { n.SetLinkDown(l, false) })
	var err error
	var done float64
	s.SpawnAt(6, "tx", func(p *simcore.Proc) {
		_, err = n.Transfer(p, []*Link{l}, 100)
		done = p.Now()
	})
	s.Run()
	if err != nil {
		t.Fatalf("transfer after recovery failed: %v", err)
	}
	if done != 7 {
		t.Fatalf("finished at %v, want 7 (full capacity back)", done)
	}
}

func TestFailEndpointKillsLabeledFlows(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("lan", 100, 0)
	cause := errors.New("node down")
	var srcErr, dstErr, plainErr error
	s.Spawn("from-a", func(p *simcore.Proc) {
		_, srcErr = n.TransferLabeled(p, []*Link{l}, 1000, "a1", "b1")
	})
	s.Spawn("to-a", func(p *simcore.Proc) {
		_, dstErr = n.TransferLabeled(p, []*Link{l}, 1000, "b1", "a1")
	})
	s.Spawn("unlabeled", func(p *simcore.Proc) {
		_, plainErr = n.Transfer(p, []*Link{l}, 1000)
	})
	var killed int
	s.At(1, func() { killed = n.FailEndpoint("a1", cause) })
	s.Run()
	if killed != 2 {
		t.Fatalf("FailEndpoint killed %d flows, want 2", killed)
	}
	if !errors.Is(srcErr, cause) || !errors.Is(dstErr, cause) {
		t.Fatalf("labeled flows got %v / %v, want the endpoint cause", srcErr, dstErr)
	}
	if plainErr != nil {
		t.Fatalf("unlabeled flow was killed: %v", plainErr)
	}
}

func TestCapacityAndLatencyFactorsDegrade(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("wan", 100, 1)
	n.SetCapacityFactor(l, 0.5)
	n.SetLatencyFactor(l, 3)
	var done float64
	s.Spawn("tx", func(p *simcore.Proc) {
		n.Transfer(p, []*Link{l}, 100)
		done = p.Now()
	})
	s.Run()
	// 3x latency (3 s) + 100 B at half capacity (2 s).
	if done != 5 {
		t.Fatalf("degraded transfer finished at %v, want 5", done)
	}
	if l.Capacity() != 50 || l.Latency() != 3 {
		t.Fatalf("Capacity=%v Latency=%v, want 50/3", l.Capacity(), l.Latency())
	}
	// Recovery restores the nominal figures.
	n.SetCapacityFactor(l, 1)
	n.SetLatencyFactor(l, 1)
	if l.Capacity() != 100 || l.Latency() != 1 {
		t.Fatal("factors did not reset")
	}
}
