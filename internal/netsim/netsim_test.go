package netsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grads/internal/simcore"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleTransfer(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("wan", 1000, 0.5) // 1000 B/s, 500 ms
	var done float64
	s.Spawn("tx", func(p *simcore.Proc) {
		moved, err := n.Transfer(p, []*Link{l}, 2000)
		if err != nil || moved != 2000 {
			t.Errorf("Transfer = %v, %v", moved, err)
		}
		done = p.Now()
	})
	s.Run()
	if !almost(done, 2.5, 1e-9) { // 0.5 latency + 2000/1000
		t.Fatalf("transfer finished at %v, want 2.5", done)
	}
	if n.BytesMoved() != 2000 {
		t.Fatalf("BytesMoved = %v", n.BytesMoved())
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("lan", 100, 0)
	var d1, d2 float64
	s.Spawn("a", func(p *simcore.Proc) {
		n.Transfer(p, []*Link{l}, 500)
		d1 = p.Now()
	})
	s.Spawn("b", func(p *simcore.Proc) {
		n.Transfer(p, []*Link{l}, 500)
		d2 = p.Now()
	})
	s.Run()
	if !almost(d1, 10, 1e-9) || !almost(d2, 10, 1e-9) {
		t.Fatalf("finish times %v %v, want 10 each (fair share)", d1, d2)
	}
}

func TestMultiLinkRouteBottleneck(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	fast := n.AddLink("lan", 1000, 0.001)
	slow := n.AddLink("wan", 100, 0.030)
	var done float64
	s.Spawn("tx", func(p *simcore.Proc) {
		n.Transfer(p, []*Link{fast, slow}, 1000)
		done = p.Now()
	})
	s.Run()
	// latency 0.031 + 1000/100 (bottleneck) = 10.031
	if !almost(done, 10.031, 1e-9) {
		t.Fatalf("finished at %v, want 10.031", done)
	}
}

func TestMaxMinUnevenShares(t *testing.T) {
	// Flow A crosses only link1 (cap 100). Flows B and C cross link1+link2
	// where link2 has cap 40. Max-min: B and C get 20 each on link2;
	// A gets the rest of link1 = 60.
	s := simcore.New(1)
	n := New(s)
	l1 := n.AddLink("l1", 100, 0)
	l2 := n.AddLink("l2", 40, 0)
	var rateA float64
	s.Spawn("a", func(p *simcore.Proc) { n.Transfer(p, []*Link{l1}, 6000) })
	s.Spawn("b", func(p *simcore.Proc) { n.Transfer(p, []*Link{l1, l2}, 4000) })
	s.Spawn("c", func(p *simcore.Proc) { n.Transfer(p, []*Link{l1, l2}, 4000) })
	s.Schedule(1, func() {
		// After 1s: A moved 60, B and C moved 20 each. Check via the
		// remaining-time estimate embedded in flow rates.
		rateA = 0
		for _, f := range n.flows {
			if f.route[len(f.route)-1] == l1 && len(f.route) == 1 {
				rateA = f.rate
			}
		}
	})
	s.Run()
	if !almost(rateA, 60, 1e-9) {
		t.Fatalf("single-link flow rate = %v, want 60 (max-min)", rateA)
	}
}

func TestBackgroundTrafficSlowsTransfer(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("wan", 100, 0)
	var done float64
	s.Spawn("tx", func(p *simcore.Proc) {
		n.Transfer(p, []*Link{l}, 1000)
		done = p.Now()
	})
	s.Schedule(5, func() { n.SetBackground(l, 50) }) // halves available bw
	s.Run()
	// 5s at 100 B/s = 500 B; remaining 500 at 50 B/s = 10 s more.
	if !almost(done, 15, 1e-9) {
		t.Fatalf("finished at %v, want 15", done)
	}
}

func TestInterruptMidTransfer(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("wan", 100, 0)
	cause := errors.New("stop")
	var moved float64
	var err error
	p := s.Spawn("tx", func(p *simcore.Proc) {
		moved, err = n.Transfer(p, []*Link{l}, 1000)
	})
	s.Schedule(4, func() { p.Interrupt(cause) })
	s.Run()
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want %v", err, cause)
	}
	if !almost(moved, 400, 1e-6) {
		t.Fatalf("moved %v before interrupt, want 400", moved)
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("flow leaked: %d active", n.ActiveFlows())
	}
}

func TestEstimateRate(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	l := n.AddLink("wan", 100, 0)
	if r := n.EstimateRate([]*Link{l}); !almost(r, 100, 1e-9) {
		t.Fatalf("idle estimate = %v, want 100", r)
	}
	s.Spawn("bg", func(p *simcore.Proc) { n.Transfer(p, []*Link{l}, 1e6) })
	s.Schedule(1, func() {
		if r := n.EstimateRate([]*Link{l}); !almost(r, 50, 1e-9) {
			t.Errorf("estimate with 1 flow = %v, want 50", r)
		}
		if est := n.TransferTimeEstimate([]*Link{l}, 100); !almost(est, 2, 1e-9) {
			t.Errorf("TransferTimeEstimate = %v, want 2", est)
		}
	})
	s.RunUntil(2)
}

func TestEmptyRouteIsFree(t *testing.T) {
	s := simcore.New(1)
	n := New(s)
	var done float64 = -1
	s.Spawn("tx", func(p *simcore.Proc) {
		moved, err := n.Transfer(p, nil, 1e9)
		if err != nil || moved != 1e9 {
			t.Errorf("Transfer = %v, %v", moved, err)
		}
		done = p.Now()
	})
	s.Run()
	if done != 0 {
		t.Fatalf("intra-node transfer took time: %v", done)
	}
}

// Property: the max-min allocation never oversubscribes a link, and every
// flow receives a strictly positive rate.
func TestQuickMaxMinFeasibleAndPositive(t *testing.T) {
	f := func(routesRaw []uint8, caps [3]uint16) bool {
		s := simcore.New(3)
		n := New(s)
		links := []*Link{
			n.AddLink("a", float64(caps[0]%500)+10, 0),
			n.AddLink("b", float64(caps[1]%500)+10, 0),
			n.AddLink("c", float64(caps[2]%500)+10, 0),
		}
		if len(routesRaw) == 0 || len(routesRaw) > 10 {
			return true
		}
		for _, r := range routesRaw {
			// Build a route out of 1-3 distinct links from bits of r.
			var route []*Link
			for i := 0; i < 3; i++ {
				if r&(1<<i) != 0 {
					route = append(route, links[i])
				}
			}
			if len(route) == 0 {
				route = []*Link{links[r%3]}
			}
			s.Spawn("tx", func(p *simcore.Proc) { n.Transfer(p, route, 1e7) })
		}
		ok := true
		s.Schedule(0.5, func() {
			use := map[*Link]float64{}
			for _, fl := range n.flows {
				if fl.rate <= 0 {
					ok = false
				}
				for _, l := range fl.route {
					use[l] += fl.rate
				}
			}
			for l, u := range use {
				if u > l.residual()*(1+1e-9) {
					ok = false
				}
			}
			s.Stop()
		})
		s.Run()
		return ok
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: volume conservation — total bytes moved equals the sum of all
// transfer sizes once every flow completes.
func TestQuickVolumeConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 8 {
			return true
		}
		s := simcore.New(5)
		n := New(s)
		l := n.AddLink("l", 997, 0.003)
		total := 0.0
		for _, raw := range sizes {
			b := float64(raw%9000) + 1
			total += b
			s.Spawn("tx", func(p *simcore.Proc) { n.Transfer(p, []*Link{l}, b) })
		}
		s.Run()
		return almost(n.BytesMoved(), total, 1e-6*(1+total))
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
