package netsim

import (
	"fmt"
	"testing"

	"grads/internal/simcore"
)

// benchSolver64x512 measures the flow-churn hot path on a 64-node grid:
// 16 sites of 4 nodes, each site behind a LAN link, sites joined pairwise by
// a WAN link (8 site-pair components), with 512 long-lived flows spread over
// intra-site and cross-site routes. Each iteration is one EstimateRate
// probe — a phantom flow add + solve + remove + solve, i.e. exactly the
// solver work a real flow start/finish costs. The incremental solver touches
// one 64-flow component per solve; the reference solver re-solves all 512.
//
// CI runs both, and cmd/benchguard turns the pair into BENCH_netsim.json,
// failing the build if the incremental solver is not faster.
func benchSolver64x512(b *testing.B, reference bool) {
	const sites = 16 // x 4 nodes = 64 nodes
	s := simcore.New(1)
	n := New(s)
	n.SetReferenceSolver(reference)
	lans := make([]*Link, sites)
	for i := range lans {
		// Slightly distinct capacities keep cross-component shares from
		// colliding, mirroring heterogeneous real sites.
		lans[i] = n.AddLink(fmt.Sprintf("lan:%d", i), 1e9+float64(i)*1e7, 0)
	}
	wans := make([]*Link, sites/2)
	for i := range wans {
		wans[i] = n.AddLink(fmt.Sprintf("wan:%d", i), 4e8+float64(i)*1e6, 0)
	}
	for i := 0; i < 512; i++ {
		pair := i % (sites / 2)
		siteA, siteB := 2*pair, 2*pair+1
		var route []*Link
		switch i % 4 {
		case 0: // intra-site at A
			route = []*Link{lans[siteA]}
		case 1: // intra-site at B
			route = []*Link{lans[siteB]}
		default: // cross-site over the pair's WAN
			route = []*Link{lans[siteA], wans[pair], lans[siteB]}
		}
		s.Spawn("bg", func(p *simcore.Proc) { n.Transfer(p, route, 1e15) })
	}
	s.RunUntil(1)
	if n.ActiveFlows() != 512 {
		b.Fatalf("setup: %d active flows, want 512", n.ActiveFlows())
	}
	probe := []*Link{lans[0], wans[0], lans[1]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.EstimateRate(probe)
	}
}

func BenchmarkSolver64Nodes512FlowsReference(b *testing.B) { benchSolver64x512(b, true) }

func BenchmarkSolver64Nodes512FlowsIncremental(b *testing.B) { benchSolver64x512(b, false) }
