package binder

import (
	"testing"

	"grads/internal/gis"
	"grads/internal/simcore"
	"grads/internal/topology"
)

func rig() (*simcore.Sim, *topology.Grid, *gis.Service, *Binder) {
	sim := simcore.New(1)
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e8, 1e-4)
	g.AddNode(topology.NodeSpec{Name: "ia32", Site: "A", Arch: topology.ArchIA32, MHz: 1000})
	g.AddNode(topology.NodeSpec{Name: "ia64", Site: "A", Arch: topology.ArchIA64, MHz: 500})
	gs := gis.New(sim, g)
	return sim, g, gs, New(sim, gs)
}

func pkg() Package {
	return Package{Name: "app", IRBytes: 200e3, Libraries: []string{"blas"}, IsMPI: true}
}

func TestBindHeterogeneousNodes(t *testing.T) {
	sim, g, gs, b := rig()
	gs.RegisterSoftwareEverywhere(LocalBinderPkg, "/opt/binder")
	gs.RegisterSoftwareEverywhere("blas", "/opt/blas")
	var res *Result
	sim.Spawn("mgr", func(p *simcore.Proc) {
		r, err := b.Bind(p, pkg(), g.Nodes())
		if err != nil {
			t.Errorf("Bind: %v", err)
			return
		}
		res = r
	})
	sim.Run()
	if res == nil {
		t.Fatal("bind did not complete")
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("bound %d nodes", len(res.Nodes))
	}
	if !res.MPISyncNeeded {
		t.Fatal("MPI package must require synchronization")
	}
	// Each node compiled for its own architecture; the slower node takes
	// longer to compile (compilation runs on the target).
	archs := map[topology.Arch]float64{}
	for _, nr := range res.Nodes {
		archs[nr.Arch] = nr.PrepTime
	}
	if len(archs) != 2 {
		t.Fatalf("architectures bound: %v", archs)
	}
	if archs[topology.ArchIA64] <= archs[topology.ArchIA32] {
		t.Fatalf("500 MHz node should compile slower: %v", archs)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
	// Local binders run in parallel: elapsed ~ slowest prep + global
	// queries, far less than the sum.
	sum := archs[topology.ArchIA32] + archs[topology.ArchIA64]
	if res.Elapsed >= sum {
		t.Fatalf("bind not parallel: elapsed %v >= sum %v", res.Elapsed, sum)
	}
}

func TestBindFailsOnMissingSoftware(t *testing.T) {
	sim, g, gs, b := rig()
	gs.RegisterSoftwareEverywhere(LocalBinderPkg, "/opt/binder")
	// blas missing everywhere.
	var bindErr error
	sim.Spawn("mgr", func(p *simcore.Proc) {
		_, bindErr = b.Bind(p, pkg(), g.Nodes())
	})
	sim.Run()
	if bindErr == nil {
		t.Fatal("bind succeeded without required libraries")
	}
	// Missing local binder itself fails in the global phase.
	sim2, g2, _, b2 := rig()
	var err2 error
	sim2.Spawn("mgr", func(p *simcore.Proc) {
		_, err2 = b2.Bind(p, pkg(), g2.Nodes())
	})
	sim2.Run()
	if err2 == nil {
		t.Fatal("bind succeeded without the local binder installed")
	}
}

func TestBindEmptyNodes(t *testing.T) {
	sim, _, _, b := rig()
	var err error
	sim.Spawn("mgr", func(p *simcore.Proc) {
		_, err = b.Bind(p, pkg(), nil)
	})
	sim.Run()
	if err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestEstimateOverheadTracksActual(t *testing.T) {
	sim, g, gs, b := rig()
	gs.RegisterSoftwareEverywhere(LocalBinderPkg, "/opt/binder")
	gs.RegisterSoftwareEverywhere("blas", "/opt/blas")
	est := b.EstimateOverhead(pkg(), g.Nodes())
	var actual float64
	sim.Spawn("mgr", func(p *simcore.Proc) {
		r, err := b.Bind(p, pkg(), g.Nodes())
		if err != nil {
			t.Errorf("Bind: %v", err)
			return
		}
		actual = r.Elapsed
	})
	sim.Run()
	if est <= 0 {
		t.Fatal("estimate is zero")
	}
	ratio := actual / est
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("estimate %v vs actual %v (ratio %v)", est, actual, ratio)
	}
	if b.EstimateOverhead(pkg(), nil) != 0 {
		t.Fatal("estimate for no nodes should be 0")
	}
}
