// Package binder implements the distributed GrADS binder of §2: a global
// binder that locates software through the Grid Information Service and
// launches a local binder process on every scheduled node; each local binder
// locates application libraries, instruments the code with Autopilot
// sensors, and configures and compiles the application's intermediate
// representation for the target architecture. Because compilation happens
// on the target machine from a high-level representation, heterogeneous
// (IA-32 + IA-64) resource sets work naturally.
package binder

import (
	"fmt"

	"grads/internal/faultinject"
	"grads/internal/gis"
	"grads/internal/resilience"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// LocalBinderPkg is the GIS software key for the local binder code itself.
const LocalBinderPkg = "grads-local-binder"

// Package is the compilation package delivered to the binder: the
// application source in intermediate representation, the libraries it
// links, and whether it follows the MPI launch protocol.
type Package struct {
	Name      string
	IRBytes   float64  // size of the intermediate representation
	Libraries []string // required preinstalled libraries (GIS lookups)
	IsMPI     bool
}

// NodeResult reports one local binder's work.
type NodeResult struct {
	Node     *topology.Node
	Arch     topology.Arch
	PrepTime float64 // configure+instrument+compile time on that node
}

// Result reports a completed bind.
type Result struct {
	Nodes []NodeResult
	// Elapsed is the wall-clock (virtual) duration of the whole bind —
	// the "Grid overhead" phase of Figure 3.
	Elapsed float64
	// MPISyncNeeded tells the application manager it must perform the
	// global MPI synchronization before launch.
	MPISyncNeeded bool
}

// Binder is the global binder.
type Binder struct {
	sim *simcore.Sim
	gis *gis.Service

	// CompileRate is the IR compilation speed in bytes/s on a 1 GHz
	// reference node; actual speed scales with node clock.
	CompileRate float64
	// InstrumentTime is the per-node cost of inserting Autopilot sensors.
	InstrumentTime float64
	// ConfigureTime is the per-node cost of the configuration script.
	ConfigureTime float64

	health  *faultinject.Health
	retrier *resilience.Retrier
}

// SetHealth attaches the chaos-layer availability handle; Bind fails fast
// with ErrUnavailable while the binder service itself is down.
func (b *Binder) SetHealth(h *faultinject.Health) { b.health = h }

// SetRetrier installs a retry policy around the binder's GIS lookups, so
// transient GIS outages stall a bind instead of failing it.
func (b *Binder) SetRetrier(r *resilience.Retrier) { b.retrier = r }

// New creates a binder with 2003-era defaults.
func New(sim *simcore.Sim, g *gis.Service) *Binder {
	return &Binder{
		sim:            sim,
		gis:            g,
		CompileRate:    200e3, // ~200 KB of IR per second at 1 GHz
		InstrumentTime: 1.0,
		ConfigureTime:  2.0,
	}
}

// Bind executes the distributed bind for a package on the scheduled nodes:
// the global phase resolves the local binder's location on every node, then
// local binders run in parallel. The calling process blocks until every
// local binder finishes. The GIS must have LocalBinderPkg and every library
// registered on every node or the bind fails.
func (b *Binder) Bind(p *simcore.Proc, pkg Package, nodes []*topology.Node) (*Result, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("binder: no nodes scheduled")
	}
	if err := b.health.Check(p); err != nil {
		return nil, fmt.Errorf("binder: %w", err)
	}
	start := p.Now()

	// Global binder: locate the local binder code on every scheduled node,
	// riding out transient GIS outages via the retry policy.
	for _, n := range nodes {
		err := b.retrier.Do(p, "gis.lookup", func() error {
			_, lerr := b.gis.LookupSoftware(p, n.Name(), LocalBinderPkg)
			return lerr
		})
		if err != nil {
			return nil, fmt.Errorf("binder: global phase: %w", err)
		}
	}

	// Local binders run concurrently, one per node.
	res := &Result{MPISyncNeeded: pkg.IsMPI}
	results := make([]NodeResult, len(nodes))
	errs := make([]error, len(nodes))
	done := simcore.NewSignal(b.sim)
	remaining := len(nodes)
	for i, n := range nodes {
		i, n := i, n
		b.sim.Spawn(fmt.Sprintf("local-binder:%s", n.Name()), func(lp *simcore.Proc) {
			defer func() {
				remaining--
				if remaining == 0 {
					done.Broadcast()
				}
			}()
			t0 := lp.Now()
			// Locate application-specific libraries (retried like the
			// global phase).
			for _, lib := range pkg.Libraries {
				lib := lib
				err := b.retrier.Do(lp, "gis.lookup", func() error {
					_, lerr := b.gis.LookupSoftware(lp, n.Name(), lib)
					return lerr
				})
				if err != nil {
					errs[i] = err
					return
				}
			}
			// Instrument with sensors, configure, compile for this
			// architecture at this node's speed.
			compile := pkg.IRBytes / (b.CompileRate * n.Spec.MHz / 1000)
			if err := lp.Sleep(b.InstrumentTime + b.ConfigureTime + compile); err != nil {
				errs[i] = err
				return
			}
			results[i] = NodeResult{Node: n, Arch: n.Spec.Arch, PrepTime: lp.Now() - t0}
		})
	}
	for remaining > 0 {
		if err := done.Wait(p); err != nil {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("binder: local phase: %w", err)
		}
	}
	res.Nodes = results
	res.Elapsed = p.Now() - start
	return res, nil
}

// EstimateOverhead predicts the bind duration on a node set without
// running it (for rescheduling cost estimates): GIS queries plus the
// slowest node's prep time.
func (b *Binder) EstimateOverhead(pkg Package, nodes []*topology.Node) float64 {
	if len(nodes) == 0 {
		return 0
	}
	queries := float64(len(nodes)) * gis.QueryDelay // global phase, serial
	slowest := 0.0
	for _, n := range nodes {
		t := float64(len(pkg.Libraries))*gis.QueryDelay +
			b.InstrumentTime + b.ConfigureTime +
			pkg.IRBytes/(b.CompileRate*n.Spec.MHz/1000)
		if t > slowest {
			slowest = t
		}
	}
	return queries + slowest
}
