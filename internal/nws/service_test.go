package nws

import (
	"math"
	"testing"

	"grads/internal/simcore"
	"grads/internal/topology"
)

func testGrid(sim *simcore.Sim) *topology.Grid {
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e6, 1e-4)
	g.AddSite("B", 1e6, 1e-4)
	g.Connect("A", "B", 1e5, 0.010)
	g.AddNode(topology.NodeSpec{Name: "a1", Site: "A", MHz: 1000, FlopsPerCycle: 1})
	g.AddNode(topology.NodeSpec{Name: "a2", Site: "A", MHz: 1000, FlopsPerCycle: 1})
	g.AddNode(topology.NodeSpec{Name: "b1", Site: "B", MHz: 500, FlopsPerCycle: 1})
	return g
}

func TestServiceMeasuresCPULoad(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	svc := Start(sim, g, 5)
	// Load node a1 at t=20: availability drops to 1/3.
	sim.Schedule(20, func() { g.Node("a1").CPU.SetExternalLoad(2) })
	sim.RunUntil(200)
	f := svc.CPUForecast("a1")
	if math.Abs(f-1.0/3.0) > 0.05 {
		t.Fatalf("CPU forecast for loaded node = %v, want ~0.333", f)
	}
	if got := svc.CPUForecast("a2"); math.Abs(got-1) > 1e-9 {
		t.Fatalf("idle node forecast = %v, want 1", got)
	}
	if svc.CPUForecast("nonexistent") != 1 {
		t.Fatal("unknown node should forecast 1")
	}
	svc.Stop()
}

func TestServiceMeasuresNetwork(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	svc := Start(sim, g, 5)
	sim.RunUntil(100)
	bw := svc.BandwidthForecast("A", "B")
	if math.Abs(bw-1e5) > 1e3 {
		t.Fatalf("WAN bandwidth forecast = %v, want ~1e5", bw)
	}
	lat := svc.LatencyForecast("A", "B")
	if math.Abs(lat-0.0102) > 1e-6 { // 2 LAN hops + WAN
		t.Fatalf("latency forecast = %v, want 0.0102", lat)
	}
	// Background traffic halves available WAN bandwidth; forecast follows.
	g.Net.SetBackground(g.WAN("A", "B"), 5e4)
	sim.RunUntil(400)
	bw = svc.BandwidthForecast("A", "B")
	if math.Abs(bw-5e4) > 5e3 {
		t.Fatalf("post-traffic forecast = %v, want ~5e4", bw)
	}
	svc.Stop()
}

func TestTransferEstimate(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	svc := Start(sim, g, 5)
	sim.RunUntil(50)
	a, b := g.Node("a1"), g.Node("b1")
	est := svc.TransferEstimate(a, b, 1e5)
	// ~0.0102 latency + 1e5/1e5 = ~1.01
	if math.Abs(est-1.0102) > 0.01 {
		t.Fatalf("TransferEstimate = %v, want ~1.01", est)
	}
	if svc.TransferEstimate(a, a, 1e5) != 0 {
		t.Fatal("same-node transfer should cost 0")
	}
	svc.Stop()
}

func TestEffectiveSpeedForecast(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	svc := Start(sim, g, 5)
	g.Node("b1").CPU.SetExternalLoad(1)
	sim.RunUntil(100)
	got := svc.EffectiveSpeedForecast(g.Node("b1"))
	want := 500e6 * 0.5
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("EffectiveSpeedForecast = %v, want ~%v", got, want)
	}
	svc.Stop()
}

func TestActiveProbesMeasureNetwork(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	svc := StartActive(sim, g, 5, 64e3)
	sim.RunUntil(100)
	// Active probes should land near the passive truth.
	bw := svc.BandwidthForecast("A", "B")
	if bw < 0.8e5 || bw > 1.2e5 {
		t.Fatalf("active bandwidth forecast = %v, want ~1e5", bw)
	}
	lat := svc.LatencyForecast("A", "B")
	if math.Abs(lat-0.0102) > 0.002 {
		t.Fatalf("active latency forecast = %v, want ~0.0102", lat)
	}
	if svc.Probes() == 0 {
		t.Fatal("no probes sent in active mode")
	}
	// Probe traffic is real: it shows up in the network totals.
	if g.Net.BytesMoved() == 0 {
		t.Fatal("probe bytes did not cross the network")
	}
	svc.Stop()
	// Passive mode sends no probes.
	sim2 := simcore.New(1)
	g2 := testGrid(sim2)
	svc2 := Start(sim2, g2, 5)
	sim2.RunUntil(50)
	if svc2.Probes() != 0 || g2.Net.BytesMoved() != 0 {
		t.Fatal("passive mode generated probe traffic")
	}
	svc2.Stop()
}

func TestActiveProbesTrackBackgroundTraffic(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	svc := StartActive(sim, g, 5, 64e3)
	g.Net.SetBackground(g.WAN("A", "B"), 5e4) // half the WAN consumed
	sim.RunUntil(300)
	bw := svc.BandwidthForecast("A", "B")
	if bw < 0.35e5 || bw > 0.7e5 {
		t.Fatalf("forecast under cross traffic = %v, want ~5e4", bw)
	}
	svc.Stop()
}

func TestServiceStopKillsSensor(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	svc := Start(sim, g, 5)
	sim.RunUntil(12)
	svc.Stop()
	sim.Run() // must terminate: sensor loop exited
	if n := len(sim.LiveProcs()); n != 0 {
		t.Fatalf("live procs after Stop: %v", sim.LiveProcs())
	}
}
