// Package nws reproduces the role of the Network Weather Service in GrADS:
// periodic sensors measure CPU availability and end-to-end network latency
// and bandwidth on the emulated Grid, and a forecaster ensemble predicts
// their near-future values. Schedulers and reschedulers consume the
// forecasts when ranking resources and evaluating migrations.
//
// The forecasting design follows NWS: several simple predictors run in
// parallel on each measurement series, each predictor's one-step-ahead error
// is tracked, and the ensemble's forecast is the prediction of whichever
// predictor has been most accurate so far.
package nws

import (
	"math"
	"sort"
)

// Forecaster predicts the next value of a scalar time series.
type Forecaster interface {
	// Name identifies the predictor (for diagnostics).
	Name() string
	// Update feeds the next observed value.
	Update(v float64)
	// Forecast predicts the next value. Before any update it returns NaN.
	Forecast() float64
}

// LastValue predicts the most recent observation.
type LastValue struct {
	v   float64
	has bool
}

// Name implements Forecaster.
func (f *LastValue) Name() string { return "last" }

// Update implements Forecaster.
func (f *LastValue) Update(v float64) { f.v, f.has = v, true }

// Forecast implements Forecaster.
func (f *LastValue) Forecast() float64 {
	if !f.has {
		return math.NaN()
	}
	return f.v
}

// RunningMean predicts the mean of all observations.
type RunningMean struct {
	sum float64
	n   int
}

// Name implements Forecaster.
func (f *RunningMean) Name() string { return "mean" }

// Update implements Forecaster.
func (f *RunningMean) Update(v float64) { f.sum += v; f.n++ }

// Forecast implements Forecaster.
func (f *RunningMean) Forecast() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.sum / float64(f.n)
}

// SlidingMean predicts the mean of the last w observations.
type SlidingMean struct {
	w   int
	buf []float64
}

// NewSlidingMean creates a sliding-window mean predictor of width w (>= 1).
func NewSlidingMean(w int) *SlidingMean {
	if w < 1 {
		w = 1
	}
	return &SlidingMean{w: w}
}

// Name implements Forecaster.
func (f *SlidingMean) Name() string { return "swmean" }

// Update implements Forecaster.
func (f *SlidingMean) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.w {
		f.buf = f.buf[1:]
	}
}

// Forecast implements Forecaster.
func (f *SlidingMean) Forecast() float64 {
	if len(f.buf) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range f.buf {
		sum += v
	}
	return sum / float64(len(f.buf))
}

// SlidingMedian predicts the median of the last w observations; it is robust
// to the load spikes common in grid CPU series.
type SlidingMedian struct {
	w   int
	buf []float64
}

// NewSlidingMedian creates a sliding-window median predictor of width w.
func NewSlidingMedian(w int) *SlidingMedian {
	if w < 1 {
		w = 1
	}
	return &SlidingMedian{w: w}
}

// Name implements Forecaster.
func (f *SlidingMedian) Name() string { return "swmedian" }

// Update implements Forecaster.
func (f *SlidingMedian) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.w {
		f.buf = f.buf[1:]
	}
}

// Forecast implements Forecaster.
func (f *SlidingMedian) Forecast() float64 {
	n := len(f.buf)
	if n == 0 {
		return math.NaN()
	}
	tmp := append([]float64(nil), f.buf...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// ExpSmooth predicts with exponential smoothing: s <- a*v + (1-a)*s.
type ExpSmooth struct {
	alpha float64
	s     float64
	has   bool
}

// NewExpSmooth creates an exponential-smoothing predictor with factor alpha
// in (0, 1].
func NewExpSmooth(alpha float64) *ExpSmooth {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &ExpSmooth{alpha: alpha}
}

// Name implements Forecaster.
func (f *ExpSmooth) Name() string { return "expsmooth" }

// Update implements Forecaster.
func (f *ExpSmooth) Update(v float64) {
	if !f.has {
		f.s, f.has = v, true
		return
	}
	f.s = f.alpha*v + (1-f.alpha)*f.s
}

// Forecast implements Forecaster.
func (f *ExpSmooth) Forecast() float64 {
	if !f.has {
		return math.NaN()
	}
	return f.s
}

// Ensemble runs several predictors on one series and forecasts with the one
// whose cumulative one-step-ahead absolute error is lowest, exactly as NWS
// selects its forecasting method per series.
type Ensemble struct {
	members []Forecaster
	errSum  []float64
	n       int
	last    float64
}

// NewEnsemble creates an ensemble over the given members; with none given it
// uses the standard NWS-style set.
func NewEnsemble(members ...Forecaster) *Ensemble {
	if len(members) == 0 {
		members = []Forecaster{
			&LastValue{},
			&RunningMean{},
			NewSlidingMean(10),
			NewSlidingMedian(10),
			NewExpSmooth(0.25),
			NewExpSmooth(0.75),
		}
	}
	return &Ensemble{members: members, errSum: make([]float64, len(members))}
}

// Update scores every member's previous forecast against v, then feeds v to
// all members.
func (e *Ensemble) Update(v float64) {
	if e.n > 0 {
		for i, m := range e.members {
			p := m.Forecast()
			if !math.IsNaN(p) {
				e.errSum[i] += math.Abs(p - v)
			}
		}
	}
	for _, m := range e.members {
		m.Update(v)
	}
	e.n++
	e.last = v
}

// Forecast returns the best member's prediction, or NaN before any update.
func (e *Ensemble) Forecast() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	best, bestErr := -1, math.Inf(1)
	for i := range e.members {
		if e.errSum[i] < bestErr {
			best, bestErr = i, e.errSum[i]
		}
	}
	return e.members[best].Forecast()
}

// Best returns the name of the currently most accurate member.
func (e *Ensemble) Best() string {
	if e.n == 0 {
		return ""
	}
	best, bestErr := 0, math.Inf(1)
	for i := range e.members {
		if e.errSum[i] < bestErr {
			best, bestErr = i, e.errSum[i]
		}
	}
	return e.members[best].Name()
}

// Observations returns how many values the ensemble has seen.
func (e *Ensemble) Observations() int { return e.n }

// Last returns the most recent observation (0 before any update).
func (e *Ensemble) Last() float64 {
	if e.n == 0 {
		return 0
	}
	return e.last
}
