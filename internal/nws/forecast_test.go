package nws

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feed(f Forecaster, vs ...float64) {
	for _, v := range vs {
		f.Update(v)
	}
}

func TestLastValue(t *testing.T) {
	f := &LastValue{}
	if !math.IsNaN(f.Forecast()) {
		t.Fatal("empty forecast should be NaN")
	}
	feed(f, 1, 2, 3)
	if f.Forecast() != 3 {
		t.Fatalf("LastValue = %v", f.Forecast())
	}
}

func TestRunningMean(t *testing.T) {
	f := &RunningMean{}
	feed(f, 1, 2, 3, 4)
	if f.Forecast() != 2.5 {
		t.Fatalf("RunningMean = %v", f.Forecast())
	}
}

func TestSlidingMeanWindow(t *testing.T) {
	f := NewSlidingMean(3)
	feed(f, 100, 1, 2, 3) // 100 falls out of the window
	if f.Forecast() != 2 {
		t.Fatalf("SlidingMean = %v, want 2", f.Forecast())
	}
}

func TestSlidingMedianRobustToSpike(t *testing.T) {
	f := NewSlidingMedian(5)
	feed(f, 1, 1, 1, 1000, 1)
	if f.Forecast() != 1 {
		t.Fatalf("SlidingMedian = %v, want 1", f.Forecast())
	}
	g := NewSlidingMedian(4)
	feed(g, 1, 2, 3, 4)
	if g.Forecast() != 2.5 {
		t.Fatalf("even-window median = %v, want 2.5", g.Forecast())
	}
}

func TestExpSmooth(t *testing.T) {
	f := NewExpSmooth(0.5)
	feed(f, 10)
	if f.Forecast() != 10 {
		t.Fatalf("first value = %v", f.Forecast())
	}
	feed(f, 20)
	if f.Forecast() != 15 {
		t.Fatalf("smoothed = %v, want 15", f.Forecast())
	}
	// Constructor clamps nonsense alphas.
	if NewExpSmooth(-3).alpha != 0.5 || NewExpSmooth(2).alpha != 0.5 {
		t.Fatal("alpha clamp failed")
	}
}

func TestEnsemblePicksAccurateMember(t *testing.T) {
	// A constant series: every member converges, but after a single outlier
	// the median should beat the last-value predictor.
	e := NewEnsemble()
	for i := 0; i < 20; i++ {
		e.Update(5)
	}
	e.Update(50) // spike
	e.Update(5)
	e.Update(5)
	if got := e.Forecast(); math.Abs(got-5) > 1 {
		t.Fatalf("ensemble forecast %v, want ~5 despite spike", got)
	}
	if e.Best() == "" {
		t.Fatal("Best() empty after updates")
	}
	if e.Observations() != 23 {
		t.Fatalf("Observations = %d", e.Observations())
	}
	if e.Last() != 5 {
		t.Fatalf("Last = %v", e.Last())
	}
}

func TestEnsembleTracksStep(t *testing.T) {
	// After a step change and enough post-step samples, the forecast should
	// be near the new level (the last-value / sliding members adapt).
	e := NewEnsemble()
	for i := 0; i < 30; i++ {
		e.Update(1.0)
	}
	for i := 0; i < 30; i++ {
		e.Update(0.25)
	}
	if got := e.Forecast(); math.Abs(got-0.25) > 0.1 {
		t.Fatalf("post-step forecast %v, want ~0.25", got)
	}
}

func TestEnsembleEmpty(t *testing.T) {
	e := NewEnsemble()
	if !math.IsNaN(e.Forecast()) {
		t.Fatal("empty ensemble should forecast NaN")
	}
	if e.Best() != "" {
		t.Fatal("empty ensemble Best() should be empty")
	}
}

// Property: for any bounded series, the ensemble forecast stays within the
// observed min/max envelope (all members are convex combinations of inputs).
func TestQuickForecastWithinEnvelope(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		e := NewEnsemble()
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			e.Update(v)
		}
		got := e.Forecast()
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: on a constant series every forecaster converges exactly.
func TestQuickConstantSeriesExact(t *testing.T) {
	f := func(v uint16, n uint8) bool {
		k := int(n%50) + 2
		val := float64(v)
		members := []Forecaster{
			&LastValue{}, &RunningMean{}, NewSlidingMean(5),
			NewSlidingMedian(5), NewExpSmooth(0.3),
		}
		for _, m := range members {
			for i := 0; i < k; i++ {
				m.Update(val)
			}
			if math.Abs(m.Forecast()-val) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
