package nws

import (
	"errors"
	"math"

	"grads/internal/faultinject"
	"grads/internal/netsim"
	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Service is the running weather service on an emulated Grid: a periodic
// sensor process that measures every node's CPU availability and every site
// pair's latency and bandwidth, feeding per-series forecaster ensembles.
type Service struct {
	sim    *simcore.Sim
	grid   *topology.Grid
	period float64

	// probeBytes, when positive, switches the network sensors to ACTIVE
	// probing: latency is measured with a small ping transfer and
	// bandwidth with a probeBytes transfer through the real network model
	// (consuming real bandwidth, like NWS probes do). Zero keeps the
	// passive instantaneous estimates.
	probeBytes float64

	cpu       map[string]*Ensemble // node name -> availability in [0,1]
	bandwidth map[string]*Ensemble // site pair key -> bytes/s
	// bwLong smooths each bandwidth series over a long window: the right
	// forecast for minutes-long transfers (checkpoint migration), whose
	// effective rate is the time average of the fluctuating availability,
	// not the next sample.
	bwLong  map[string]*SlidingMean
	latency map[string]*Ensemble // site pair key -> seconds
	sensor  *simcore.Proc
	stopped bool
	probes  int

	health   *faultinject.Health
	degraded bool // in outage: forecasts serve last-known data
	missed   int  // measurement rounds skipped during outages
}

// SetHealth attaches the chaos-layer availability handle. While the service
// is down the sensor stops measuring and every forecast degrades gracefully
// to last-known data (and, for series never measured, to the static
// capability defaults) — consumers keep working on stale forecasts, exactly
// the failure mode a real NWS outage produces.
func (s *Service) SetHealth(h *faultinject.Health) { s.health = h }

// Degraded reports whether the service is currently serving stale
// (last-known) forecasts because of an outage.
func (s *Service) Degraded() bool { return s.degraded }

// Missed returns how many measurement rounds outages have suppressed.
func (s *Service) Missed() int { return s.missed }

// pairKey builds a canonical site-pair key.
func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Start creates a Service measuring every period seconds and spawns its
// sensor process. The first measurement is taken immediately.
func Start(sim *simcore.Sim, grid *topology.Grid, period float64) *Service {
	return StartActive(sim, grid, period, 0)
}

// StartActive is Start with active network probing: each measurement sends
// a small ping and a probeBytes bulk transfer over the real network model
// and derives latency and bandwidth from the observed durations, exactly as
// NWS probes do. probeBytes <= 0 falls back to passive estimates.
func StartActive(sim *simcore.Sim, grid *topology.Grid, period float64, probeBytes float64) *Service {
	if period <= 0 {
		period = 10
	}
	s := &Service{
		sim:        sim,
		grid:       grid,
		period:     period,
		probeBytes: probeBytes,
		cpu:        make(map[string]*Ensemble),
		bandwidth:  make(map[string]*Ensemble),
		bwLong:     make(map[string]*SlidingMean),
		latency:    make(map[string]*Ensemble),
	}
	for _, n := range grid.Nodes() {
		s.cpu[n.Name()] = NewEnsemble()
	}
	sites := grid.Sites()
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			if grid.WAN(sites[i].Name, sites[j].Name) == nil {
				continue
			}
			k := pairKey(sites[i].Name, sites[j].Name)
			s.bandwidth[k] = NewEnsemble()
			s.bwLong[k] = NewSlidingMean(20)
			s.latency[k] = NewEnsemble()
		}
		// Intra-site series, keyed by the site against itself.
		k := pairKey(sites[i].Name, sites[i].Name)
		s.bandwidth[k] = NewEnsemble()
		s.bwLong[k] = NewSlidingMean(20)
		s.latency[k] = NewEnsemble()
	}
	s.sensor = sim.Spawn("nws-sensor", s.run)
	return s
}

// Stop terminates the sensor process.
func (s *Service) Stop() {
	s.stopped = true
	s.sensor.Kill()
}

// run is the sensor loop. Outages suspend measurement (forecasts go stale);
// probe transfers severed by network faults skip the round instead of
// killing the sensor.
func (s *Service) run(p *simcore.Proc) {
	for !s.stopped {
		if s.health.Down() {
			s.setDegraded(true)
			s.missed++
		} else {
			s.setDegraded(false)
			if err := s.measure(p); err != nil {
				if !errors.Is(err, netsim.ErrLinkDown) && !errors.Is(err, netsim.ErrEndpointDown) {
					return
				}
			}
		}
		if err := p.Sleep(s.period); err != nil {
			return
		}
	}
}

// setDegraded records outage-mode transitions, emitting one
// service.degraded event per edge.
func (s *Service) setDegraded(d bool) {
	if s.degraded == d {
		return
	}
	s.degraded = d
	if d {
		s.sim.Tracef("nws: outage — serving last-known forecasts")
	} else {
		s.sim.Tracef("nws: restored — measurements resume")
	}
	if tel := s.sim.Telemetry(); tel != nil {
		tel.Emit(telemetry.Event{
			Type: telemetry.EvServiceDegraded, Comp: "nws", Name: "forecasts",
			Args: []telemetry.Arg{telemetry.B("degraded", d)},
		})
	}
}

// Probes returns how many active network probes were sent.
func (s *Service) Probes() int { return s.probes }

// measure samples every monitored series once. With active probing enabled
// the calling sensor process pays for the probe transfers.
func (s *Service) measure(p *simcore.Proc) error {
	for _, n := range s.grid.Nodes() {
		s.cpu[n.Name()].Update(n.CPU.Availability())
	}
	sites := s.grid.Sites()
	for i := range sites {
		for j := i; j < len(sites); j++ {
			a, b := sites[i], sites[j]
			k := pairKey(a.Name, b.Name)
			bwEns, ok := s.bandwidth[k]
			if !ok {
				continue
			}
			var r []*netsim.Link
			switch {
			case i == j && len(a.Nodes()) >= 2:
				r = s.grid.Route(a.Nodes()[0], a.Nodes()[1])
			case i != j && len(a.Nodes()) > 0 && len(b.Nodes()) > 0:
				r = s.grid.Route(a.Nodes()[0], b.Nodes()[0])
			default:
				continue
			}
			if s.probeBytes > 0 {
				lat, bw, err := s.probe(p, r)
				if err != nil {
					return err
				}
				s.latency[k].Update(lat)
				bwEns.Update(bw)
				s.bwLong[k].Update(bw)
			} else {
				bw := s.grid.Net.EstimateRate(r)
				bwEns.Update(bw)
				s.bwLong[k].Update(bw)
				s.latency[k].Update(s.grid.Net.RouteLatency(r))
			}
		}
	}
	return nil
}

// probe measures one route with a ping and a bulk transfer.
func (s *Service) probe(p *simcore.Proc, route []*netsim.Link) (lat, bw float64, err error) {
	const pingBytes = 64
	t0 := s.sim.Now()
	if _, err := s.grid.Net.Transfer(p, route, pingBytes); err != nil {
		return 0, 0, err
	}
	lat = s.sim.Now() - t0 // serialization of 64 bytes is negligible
	t0 = s.sim.Now()
	if _, err := s.grid.Net.Transfer(p, route, s.probeBytes); err != nil {
		return 0, 0, err
	}
	elapsed := s.sim.Now() - t0
	s.probes += 2
	transfer := elapsed - lat
	if transfer <= 0 {
		transfer = elapsed
	}
	return lat, s.probeBytes / transfer, nil
}

// CPUForecast predicts the availability (fraction in (0,1]) of a node. With
// no measurements yet it returns 1 (optimistic, like a fresh NWS series).
func (s *Service) CPUForecast(node string) float64 {
	e, ok := s.cpu[node]
	if !ok || e.Observations() == 0 {
		return 1
	}
	f := e.Forecast()
	if math.IsNaN(f) || f <= 0 {
		return 1e-3
	}
	return f
}

// CPUSnapshot returns the availability forecast of every named node in one
// map — a shared view the metascheduler hands to all the admission
// decisions of one round, so competing jobs are ranked against identical
// forecasts rather than forecasts drifting between queries.
func (s *Service) CPUSnapshot(nodes []string) map[string]float64 {
	out := make(map[string]float64, len(nodes))
	for _, n := range nodes {
		out[n] = s.CPUForecast(n)
	}
	return out
}

// BandwidthForecast predicts the bytes/s a new flow between the two sites
// would receive. Unmeasured pairs fall back to the instantaneous estimate.
func (s *Service) BandwidthForecast(siteA, siteB string) float64 {
	e, ok := s.bandwidth[pairKey(siteA, siteB)]
	if ok && e.Observations() > 0 {
		if f := e.Forecast(); !math.IsNaN(f) && f > 0 {
			return f
		}
	}
	return s.instantRate(siteA, siteB)
}

// BandwidthForecastLong predicts the average bytes/s a LONG transfer
// between the two sites will sustain: the long-window mean of the series,
// appropriate when the transfer outlives the fluctuation period (migration
// cost estimates use this; short-horizon consumers use BandwidthForecast).
func (s *Service) BandwidthForecastLong(siteA, siteB string) float64 {
	sm, ok := s.bwLong[pairKey(siteA, siteB)]
	if ok {
		if f := sm.Forecast(); !math.IsNaN(f) && f > 0 {
			return f
		}
	}
	return s.BandwidthForecast(siteA, siteB)
}

// LatencyForecast predicts the one-way latency between two sites in seconds.
func (s *Service) LatencyForecast(siteA, siteB string) float64 {
	e, ok := s.latency[pairKey(siteA, siteB)]
	if ok && e.Observations() > 0 {
		if f := e.Forecast(); !math.IsNaN(f) && f >= 0 {
			return f
		}
	}
	a, b := s.grid.Site(siteA), s.grid.Site(siteB)
	if a == nil || b == nil || len(a.Nodes()) == 0 || len(b.Nodes()) == 0 {
		return 0
	}
	return s.grid.Net.RouteLatency(s.grid.Route(a.Nodes()[0], b.Nodes()[0]))
}

// TransferEstimate predicts the seconds needed to move bytes between nodes
// a and b using the forecast series (latency + bytes/bandwidth).
func (s *Service) TransferEstimate(a, b *topology.Node, bytes float64) float64 {
	if a == b || bytes <= 0 {
		return 0
	}
	bw := s.BandwidthForecast(a.Site().Name, b.Site().Name)
	if bw <= 0 {
		bw = 1
	}
	return s.LatencyForecast(a.Site().Name, b.Site().Name) + bytes/bw
}

// instantRate measures the current fair-share rate between two sites.
func (s *Service) instantRate(siteA, siteB string) float64 {
	a, b := s.grid.Site(siteA), s.grid.Site(siteB)
	if a == nil || b == nil || len(a.Nodes()) == 0 || len(b.Nodes()) == 0 {
		return 1
	}
	if siteA == siteB {
		if len(a.Nodes()) < 2 {
			return math.Inf(1)
		}
		return s.grid.Net.EstimateRate(s.grid.Route(a.Nodes()[0], a.Nodes()[1]))
	}
	return s.grid.Net.EstimateRate(s.grid.Route(a.Nodes()[0], b.Nodes()[0]))
}

// EffectiveSpeedForecast predicts a node's delivered flop/s: peak speed
// scaled by forecast CPU availability.
func (s *Service) EffectiveSpeedForecast(n *topology.Node) float64 {
	return n.Spec.Flops() * s.CPUForecast(n.Name())
}
