// Package cop defines the Configurable Object Program abstraction of
// Figure 1: an application encapsulated with its mapper (which decides how
// to map the application onto a set of resources) and its executable
// performance model (which estimates performance on a set of resources).
// The application manager, scheduler and rescheduler all drive applications
// exclusively through these interfaces.
package cop

import (
	"sort"

	"grads/internal/binder"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// Mapper determines how to map an application's tasks to a set of
// resources: given the available pool it selects and orders the nodes the
// application should run on.
type Mapper interface {
	Map(pool []*topology.Node, avail func(*topology.Node) float64) []*topology.Node
}

// PerformanceModel estimates the application's execution behavior on a
// resource set. It doubles as the rescheduler's Estimator.
type PerformanceModel interface {
	// RemainingTime predicts the remaining execution time on nodes given
	// per-node availability forecasts.
	RemainingTime(nodes []*topology.Node, avail func(*topology.Node) float64) float64
	// CheckpointBytes is the migration data footprint.
	CheckpointBytes() float64
	// RestartOverhead is the fixed restart cost on new resources.
	RestartOverhead() float64
}

// RunReport summarizes one execution segment of an application.
type RunReport struct {
	// Stopped is true when the segment ended in an SRS checkpoint-and-stop
	// rather than completion.
	Stopped bool
	// Duration is the application execution time of the segment, excluding
	// checkpoint I/O.
	Duration float64
	// CkptWrite and CkptRead are checkpoint I/O times within the segment.
	CkptWrite float64
	CkptRead  float64
}

// Recoverable is implemented by COPs that can roll back to their last
// committed checkpoint after a node failure (the fault-tolerance capability
// the paper's conclusion previews for VGrADS).
type Recoverable interface {
	// Rollback resets in-memory progress to the last committed checkpoint
	// and reports whether checkpoint data exists to restore from.
	Rollback() bool
}

// COP is a configurable object program: application code plus mapper plus
// performance model (Figure 1).
type COP interface {
	Name() string
	// Pkg is the compilation package the binder tailors per node.
	Pkg() binder.Package
	Mapper() Mapper
	Model() PerformanceModel
	// Run executes the application (one segment) on the bound nodes from
	// the calling simulated process. restart marks a post-migration
	// segment, which begins by reading checkpoints.
	Run(p *simcore.Proc, nodes []*topology.Node, restart bool) (RunReport, error)
}

// GreedyMapper selects the width fastest nodes by forecast effective speed,
// breaking ties by name; with SameSite it restricts the choice to the
// single best site (tightly coupled MPI applications).
type GreedyMapper struct {
	Width    int
	SameSite bool
}

// Map implements Mapper.
func (m GreedyMapper) Map(pool []*topology.Node, avail func(*topology.Node) float64) []*topology.Node {
	if len(pool) == 0 || m.Width <= 0 {
		return nil
	}
	speed := func(n *topology.Node) float64 {
		a := 1.0
		if avail != nil {
			a = avail(n)
		}
		return n.Spec.Flops() * a
	}
	// Failed nodes are never schedulable.
	var alive []*topology.Node
	for _, n := range pool {
		if !n.Down() {
			alive = append(alive, n)
		}
	}
	pool = alive
	if !m.SameSite {
		return topFastest(pool, m.Width, speed)
	}
	// Per site: aggregate lock-step rate of its best min(width, |site|)
	// nodes = count * slowest-selected speed.
	bySite := map[string][]*topology.Node{}
	for _, n := range pool {
		bySite[n.Site().Name] = append(bySite[n.Site().Name], n)
	}
	var bestSet []*topology.Node
	bestRate := -1.0
	// Deterministic site order.
	names := make([]string, 0, len(bySite))
	for s := range bySite {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		sel := topFastest(bySite[s], m.Width, speed)
		if len(sel) == 0 {
			continue
		}
		slowest := speed(sel[len(sel)-1])
		rate := float64(len(sel)) * slowest
		if rate > bestRate {
			bestRate, bestSet = rate, sel
		}
	}
	return bestSet
}

// topFastest returns up to k nodes sorted by descending speed (name-stable).
func topFastest(pool []*topology.Node, k int, speed func(*topology.Node) float64) []*topology.Node {
	sel := append([]*topology.Node(nil), pool...)
	sortNodes(sel, speed)
	if len(sel) > k {
		sel = sel[:k]
	}
	return sel
}

// sortNodes orders nodes by descending speed, ties broken by name.
func sortNodes(ns []*topology.Node, speed func(*topology.Node) float64) {
	sort.SliceStable(ns, func(i, j int) bool {
		si, sj := speed(ns[i]), speed(ns[j])
		if si != sj {
			return si > sj
		}
		return ns[i].Name() < ns[j].Name()
	})
}
