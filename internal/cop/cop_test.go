package cop

import (
	"testing"

	"grads/internal/simcore"
	"grads/internal/topology"
)

func grid() *topology.Grid {
	sim := simcore.New(1)
	g := topology.NewGrid(sim)
	g.AddSite("F", 1e8, 1e-4)
	g.AddSite("S", 1e8, 1e-4)
	g.Connect("F", "S", 1e6, 0.01)
	g.AddNode(topology.NodeSpec{Name: "f1", Site: "F", MHz: 1000, FlopsPerCycle: 1})
	g.AddNode(topology.NodeSpec{Name: "f2", Site: "F", MHz: 1000, FlopsPerCycle: 1})
	g.AddNode(topology.NodeSpec{Name: "s1", Site: "S", MHz: 400, FlopsPerCycle: 1})
	g.AddNode(topology.NodeSpec{Name: "s2", Site: "S", MHz: 400, FlopsPerCycle: 1})
	g.AddNode(topology.NodeSpec{Name: "s3", Site: "S", MHz: 400, FlopsPerCycle: 1})
	return g
}

func TestGreedyMapperTopFastest(t *testing.T) {
	g := grid()
	m := GreedyMapper{Width: 2}
	sel := m.Map(g.Nodes(), nil)
	if len(sel) != 2 || sel[0].Name() != "f1" || sel[1].Name() != "f2" {
		t.Fatalf("selected %v", names(sel))
	}
	if got := (GreedyMapper{Width: 0}).Map(g.Nodes(), nil); got != nil {
		t.Fatal("width 0 should select nothing")
	}
	if got := m.Map(nil, nil); got != nil {
		t.Fatal("empty pool should select nothing")
	}
}

func TestGreedyMapperSameSiteAggregateRate(t *testing.T) {
	g := grid()
	// Width 3: F offers 2x1e9 = 2e9; S offers 3x4e8 = 1.2e9 -> F wins.
	m := GreedyMapper{Width: 3, SameSite: true}
	sel := m.Map(g.Nodes(), nil)
	if len(sel) != 2 || sel[0].Site().Name != "F" {
		t.Fatalf("width 3 chose %v", names(sel))
	}
	// Width 5 still compares per-site: F 2e9 vs S 1.2e9 -> F.
	m.Width = 5
	sel = m.Map(g.Nodes(), nil)
	if sel[0].Site().Name != "F" {
		t.Fatalf("width 5 chose %v", names(sel))
	}
	// Load F: availability 0.2 -> F rate 2*2e8=4e8 < S 1.2e9 -> S wins.
	avail := func(n *topology.Node) float64 {
		if n.Site().Name == "F" {
			return 0.2
		}
		return 1
	}
	sel = m.Map(g.Nodes(), avail)
	if len(sel) != 3 || sel[0].Site().Name != "S" {
		t.Fatalf("loaded-F selection %v", names(sel))
	}
}

func names(ns []*topology.Node) []string {
	var out []string
	for _, n := range ns {
		out = append(out, n.Name())
	}
	return out
}
