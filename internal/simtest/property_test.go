package simtest

import (
	"testing"

	"grads/internal/netsim"
	"grads/internal/simcore"
)

// Sampling the allocation at many virtual times across seeds and solvers,
// every snapshot must satisfy the max-min invariants: capacity feasibility,
// positive rates, and the bottleneck condition.
func TestAllocationSatisfiesMaxMinInvariants(t *testing.T) {
	for _, seed := range []int64{2, 17, 303} {
		for _, ref := range []bool{false, true} {
			cfg := DefaultWorkload(seed)
			sim, n, _ := Build(cfg, ref, nil)
			for at := 1.0; at <= cfg.Horizon; at += 2 {
				sim.RunUntil(at)
				flows := n.FlowSnapshot()
				for _, v := range CheckMaxMin(flows) {
					t.Errorf("seed %d reference=%v t=%v: %s (%d active flows)",
						seed, ref, at, v, len(flows))
				}
				if t.Failed() {
					return
				}
			}
		}
	}
}

// CheckMaxMin itself must reject broken allocations; otherwise the property
// test above proves nothing.
func TestCheckMaxMinDetectsViolations(t *testing.T) {
	sim := simcore.New(1)
	n := netsim.New(sim)
	l := n.AddLink("lan", 1000, 0)
	sim.Spawn("a", func(p *simcore.Proc) { n.Transfer(p, []*netsim.Link{l}, 1e6) })
	sim.Spawn("b", func(p *simcore.Proc) { n.Transfer(p, []*netsim.Link{l}, 1e6) })
	sim.RunUntil(1)
	good := n.FlowSnapshot()
	if vs := CheckMaxMin(good); len(vs) != 0 {
		t.Fatalf("valid allocation flagged: %v", vs)
	}

	// Oversubscribe: both flows claim the full residual.
	over := []netsim.FlowInfo{
		{Rate: 1000, Remaining: 1, Total: 1, Route: []*netsim.Link{l}},
		{Rate: 1000, Remaining: 1, Total: 1, Route: []*netsim.Link{l}},
	}
	if vs := CheckMaxMin(over); len(vs) == 0 {
		t.Fatal("oversubscribed allocation not flagged as infeasible")
	}

	// Starve: one flow gets nothing while the link has headroom.
	starved := []netsim.FlowInfo{
		{Rate: 400, Remaining: 1, Total: 1, Route: []*netsim.Link{l}},
		{Rate: 0, Remaining: 1, Total: 1, Route: []*netsim.Link{l}},
	}
	vs := CheckMaxMin(starved)
	if len(vs) == 0 {
		t.Fatal("starved flow not flagged")
	}

	// Unfair split on one link: 100 vs 700 leaves the slow flow without a
	// saturated link where it is maximal.
	unfair := []netsim.FlowInfo{
		{Rate: 100, Remaining: 1, Total: 1, Route: []*netsim.Link{l}},
		{Rate: 700, Remaining: 1, Total: 1, Route: []*netsim.Link{l}},
	}
	found := false
	for _, v := range CheckMaxMin(unfair) {
		if v.Invariant == "bottleneck" {
			found = true
		}
	}
	if !found {
		t.Fatal("unfair split not flagged by the bottleneck condition")
	}
}
