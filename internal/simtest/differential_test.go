package simtest

import (
	"bytes"
	"testing"
)

// diffLine locates the first line where two traces diverge, for a readable
// failure message.
func diffLine(a, b []byte) (int, string, string) {
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return i + 1, string(la[i]), string(lb[i])
		}
	}
	return n + 1, "", ""
}

// The tentpole guarantee: replaying the same seeded workload through the
// incremental and the reference solver must emit byte-identical telemetry
// traces — same events, timestamps, rates and ordering.
func TestDifferentialTracesAreByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		cfg := DefaultWorkload(seed)
		inc, err := Trace(cfg, false)
		if err != nil {
			t.Fatalf("seed %d: incremental trace: %v", seed, err)
		}
		ref, err := Trace(cfg, true)
		if err != nil {
			t.Fatalf("seed %d: reference trace: %v", seed, err)
		}
		if len(inc) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		if !bytes.Equal(inc, ref) {
			line, a, b := diffLine(inc, ref)
			t.Fatalf("seed %d: traces diverge at line %d\nincremental: %s\nreference:   %s",
				seed, line, a, b)
		}
	}
}

// A calm workload (no chaos) must also match: this isolates the flow
// start/finish batching path from the fault paths.
func TestDifferentialTracesMatchWithoutChaos(t *testing.T) {
	cfg := DefaultWorkload(99)
	cfg.ChaosOps = 0
	inc, err := Trace(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Trace(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inc, ref) {
		line, a, b := diffLine(inc, ref)
		t.Fatalf("calm traces diverge at line %d\nincremental: %s\nreference:   %s", line, a, b)
	}
}

// The same workload under the same solver must be deterministic run-to-run;
// a flaky trace would make the differential check meaningless.
func TestTraceIsDeterministicRunToRun(t *testing.T) {
	cfg := DefaultWorkload(5)
	for _, ref := range []bool{false, true} {
		a, err := Trace(cfg, ref)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Trace(cfg, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("reference=%v: identical runs produced different traces", ref)
		}
	}
}
