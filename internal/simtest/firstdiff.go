package simtest

import (
	"bytes"
	"fmt"
)

// FirstDiff locates the first divergence between two JSONL streams and
// describes it as "line N:\n  a: ...\n  b: ...", truncating long lines. It
// returns "" when the streams are byte-identical. Differential harnesses use
// it to turn a useless "traces differ" into the first diverging event.
func FirstDiff(a, b []byte) string {
	if bytes.Equal(a, b) {
		return ""
	}
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) > n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		var sa, sb string
		if i < len(la) {
			sa = string(la[i])
		} else {
			sa = "<EOF>"
		}
		if i < len(lb) {
			sb = string(lb[i])
		} else {
			sb = "<EOF>"
		}
		if sa != sb {
			const max = 200
			if len(sa) > max {
				sa = sa[:max] + "..."
			}
			if len(sb) > max {
				sb = sb[:max] + "..."
			}
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, sa, sb)
		}
	}
	return fmt.Sprintf("streams differ only in length: %d vs %d bytes", len(a), len(b))
}
