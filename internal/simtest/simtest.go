// Package simtest verifies the netsim incremental solver against the
// reference solver. It provides two complementary checks:
//
//   - A differential harness: a seeded random transfer workload (with
//     optional chaos mutations — background shifts, degradations, partitions,
//     endpoint failures) is replayed through both solvers, each run emitting a
//     telemetry JSONL trace into a buffer. The two traces must be
//     byte-identical: same events, same timestamps, same rates, same
//     completion order. Any divergence — a rate differing in the last ulp, a
//     completion reordering, an extra reallocation — shows up as a byte diff.
//
//   - Property tests: at sampled virtual times the active allocation is
//     checked against the defining max-min fairness invariants (capacity
//     feasibility, positivity, and the bottleneck condition: every flow
//     crosses a saturated link on which it has a maximal rate), independent
//     of what the reference solver computes.
//
// The package is exercised by its own tests and by the solver-equivalence CI
// job, which replays published experiments under both solvers.
package simtest

import (
	"bytes"
	"fmt"

	"grads/internal/netsim"
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// Workload describes one seeded random transfer workload over a multi-site
// topology: per-site LANs joined by a smaller set of WAN backbones, with
// transfers between random site pairs and an optional chaos schedule.
type Workload struct {
	Seed     int64   // RNG seed; fixes the workload and the trace bytes
	Sites    int     // LAN count (one per site)
	Wans     int     // WAN backbone count joining site pairs
	Flows    int     // transfers started over [0, 0.6*Horizon)
	ChaosOps int     // chaos mutations scheduled over [0, 0.8*Horizon); 0 = calm
	Horizon  float64 // virtual seconds to run
}

// DefaultWorkload returns a workload that keeps several dozen flows in
// flight across multiple components with a moderately hostile chaos
// schedule.
func DefaultWorkload(seed int64) Workload {
	return Workload{Seed: seed, Sites: 6, Wans: 3, Flows: 80, ChaosOps: 24, Horizon: 50}
}

// Build wires the workload onto a fresh simulation using the requested
// solver and returns the simulation, the network, and every link (LANs
// first, then WANs). Nothing has run yet; the caller drives virtual time.
func Build(cfg Workload, reference bool, tel *telemetry.Telemetry) (*simcore.Sim, *netsim.Network, []*netsim.Link) {
	sim := simcore.New(cfg.Seed)
	if tel != nil {
		sim.SetTelemetry(tel)
	}
	n := netsim.New(sim)
	n.SetReferenceSolver(reference)

	lans := make([]*netsim.Link, cfg.Sites)
	for i := range lans {
		// Distinct capacities at every site so near-tie freeze rounds are the
		// exception, not the rule, and components are asymmetric.
		lans[i] = n.AddLink(fmt.Sprintf("lan%d", i), 1e6+float64(i)*7919, 0.0005)
	}
	wans := make([]*netsim.Link, cfg.Wans)
	for j := range wans {
		wans[j] = n.AddLink(fmt.Sprintf("wan%d", j), 2.5e5+float64(j)*104729, 0.02)
	}
	links := append(append([]*netsim.Link{}, lans...), wans...)

	// Draw the whole schedule up front from the simulation RNG: the draws are
	// then independent of event interleaving by construction, so both solver
	// runs replay the exact same workload.
	rng := sim.Rand()
	for i := 0; i < cfg.Flows; i++ {
		start := rng.Float64() * 0.6 * cfg.Horizon
		a := rng.Intn(cfg.Sites)
		b := rng.Intn(cfg.Sites)
		size := 1e3 + rng.Float64()*5e5
		route := []*netsim.Link{lans[a]}
		if a != b {
			route = append(route, wans[(a+b)%cfg.Wans], lans[b])
		}
		src, dst := fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b)
		name := fmt.Sprintf("xfer%d", i)
		sim.SpawnAt(start, name, func(p *simcore.Proc) {
			n.TransferLabeled(p, route, size, src, dst)
		})
	}
	for i := 0; i < cfg.ChaosOps; i++ {
		at := rng.Float64() * 0.8 * cfg.Horizon
		l := links[rng.Intn(len(links))]
		switch rng.Intn(5) {
		case 0:
			bg := rng.Float64() * 0.5 * l.Capacity()
			sim.At(at, func() { n.SetBackground(l, bg) })
		case 1:
			f := 0.3 + 0.7*rng.Float64()
			sim.At(at, func() { n.SetCapacityFactor(l, f) })
		case 2:
			up := at + 0.5 + rng.Float64()*3
			sim.At(at, func() { n.SetLinkDown(l, true) })
			sim.At(up, func() { n.SetLinkDown(l, false) })
		case 3:
			victim := fmt.Sprintf("n%d", rng.Intn(cfg.Sites))
			sim.At(at, func() { n.FailEndpoint(victim, nil) })
		case 4:
			f := 1 + rng.Float64()*2
			sim.At(at, func() { n.SetLatencyFactor(l, f) })
		}
	}
	return sim, n, links
}

// Trace replays the workload to its horizon under the chosen solver and
// returns the resulting telemetry JSONL stream. Two calls with the same
// workload must return byte-identical traces regardless of the solver.
func Trace(cfg Workload, reference bool) ([]byte, error) {
	var buf bytes.Buffer
	tel := telemetry.New()
	tel.AddSink(telemetry.NewJSONL(&buf))
	sim, _, _ := Build(cfg, reference, tel)
	sim.RunUntil(cfg.Horizon)
	if err := tel.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Violation describes one broken max-min invariant.
type Violation struct {
	Invariant string // "feasibility", "positivity", or "bottleneck"
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// CheckMaxMin validates the defining properties of a max-min fair
// allocation over the given flow snapshot:
//
//  1. Feasibility: on every link the flow rates sum to at most the residual
//     capacity (within relative tolerance).
//  2. Positivity: every active flow has a strictly positive rate.
//  3. Bottleneck condition: every flow crosses at least one saturated link
//     on which its rate is maximal among the link's flows. (This is
//     equivalent to max-min optimality and implies Pareto efficiency: no
//     flow's rate can grow without shrinking an equal-or-slower flow.)
//
// It returns every violation found, empty when the allocation is max-min.
func CheckMaxMin(flows []netsim.FlowInfo) []Violation {
	const eps = 1e-9
	load := map[*netsim.Link]float64{}
	maxRate := map[*netsim.Link]float64{}
	for _, f := range flows {
		for _, l := range f.Route {
			load[l] += f.Rate
			if f.Rate > maxRate[l] {
				maxRate[l] = f.Rate
			}
		}
	}
	var out []Violation
	for l, sum := range load {
		if sum > l.Residual()*(1+eps) {
			out = append(out, Violation{"feasibility",
				fmt.Sprintf("link %s carries %g B/s over residual %g B/s", l.Name(), sum, l.Residual())})
		}
	}
	for i, f := range flows {
		if !(f.Rate > 0) {
			out = append(out, Violation{"positivity",
				fmt.Sprintf("flow %d (remaining %g B) has rate %g", i, f.Remaining, f.Rate)})
			continue
		}
		bottlenecked := false
		for _, l := range f.Route {
			saturated := load[l] >= l.Residual()*(1-eps)
			if saturated && f.Rate >= maxRate[l]*(1-eps) {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			out = append(out, Violation{"bottleneck",
				fmt.Sprintf("flow %d (rate %g) has no saturated route link where its rate is maximal", i, f.Rate)})
		}
	}
	return out
}
