package simcore

import (
	"container/heap"
	"io"
	"testing"

	"grads/internal/telemetry"
)

// The pre-arena event queue, kept verbatim as the benchmark baseline: a
// binary min-heap via container/heap over individually allocated events.
// BenchmarkKernelEventThroughputLegacy drives it through the same
// schedule→fire churn as BenchmarkKernelEventThroughput drives the 4-ary
// arena queue, and cmd/benchguard gates the speedup between the two
// (BENCH_kernel.json).

type legacyEvent struct {
	t        float64
	seq      int64
	fn       func()
	canceled bool
	index    int
}

type legacyHeap []*legacyEvent

func (h legacyHeap) Len() int { return len(h) }

func (h legacyHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h legacyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *legacyHeap) Push(x any) {
	e := x.(*legacyEvent)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *legacyHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

func (h *legacyHeap) popNext() *legacyEvent {
	for h.Len() > 0 {
		e := heap.Pop(h).(*legacyEvent)
		if !e.canceled {
			return e
		}
	}
	return nil
}

// legacySim replicates the pre-change kernel's schedule→fire path: allocate
// an event, push it through container/heap, pop and fire.
type legacySim struct {
	now    float64
	seq    int64
	events legacyHeap
}

func (s *legacySim) schedule(delay float64, fn func()) *legacyEvent {
	t := s.now + delay
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &legacyEvent{t: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	return e
}

func (s *legacySim) run() {
	for {
		e := s.events.popNext()
		if e == nil {
			return
		}
		s.now = e.t
		e.fn()
	}
}

// kernelChurn is the shared workload shape: a rolling window of ~1024
// pending events with wrapping timestamps, drained in bursts — the access
// pattern of a large simulation in steady state.
const churnWindow = 1024

func BenchmarkKernelEventThroughput(b *testing.B) {
	sim := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(float64(i%1000), fn)
		if i%churnWindow == churnWindow-1 {
			sim.Run()
		}
	}
	sim.Run()
}

func BenchmarkKernelEventThroughputLegacy(b *testing.B) {
	sim := &legacySim{}
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.schedule(float64(i%1000), fn)
		if i%churnWindow == churnWindow-1 {
			sim.run()
		}
	}
	sim.run()
}

// BenchmarkKernelEventThroughputTelemetry is the same churn with a
// telemetry hub attached (kernel counters live, no sinks): the enabled-path
// cost over the nil-guard fast path. It must stay 0 allocs/op too.
func BenchmarkKernelEventThroughputTelemetry(b *testing.B) {
	sim := New(1)
	sim.SetTelemetry(telemetry.New())
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(float64(i%1000), fn)
		if i%churnWindow == churnWindow-1 {
			sim.Run()
		}
	}
	sim.Run()
}

// BenchmarkKernelCancelReschedule measures the cancel-heavy pattern of the
// CPU and network models (every state change cancels and reschedules a
// completion event); lazy cancellation must keep this allocation-free.
func BenchmarkKernelCancelReschedule(b *testing.B) {
	sim := New(1)
	fn := func() {}
	// Keep a standing population so cancels land mid-heap.
	for i := 0; i < churnWindow; i++ {
		sim.Schedule(float64(i%97)+1e6, fn)
	}
	var pending Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pending.Cancel()
		pending = sim.Schedule(float64(i%97), fn)
		if i%churnWindow == churnWindow-1 {
			sim.RunUntil(sim.Now() + 50)
		}
	}
	b.StopTimer()
	sim.Run()
}

// BenchmarkProcSleepResume measures the pooled process-resume path (Sleep
// schedules a proc event with no per-call closure).
func BenchmarkProcSleepResume(b *testing.B) {
	sim := New(1)
	iters := b.N
	sim.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < iters; i++ {
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	sim.Run()
}

// The traced pair measures instrumented kernel throughput — the tentpole
// end to end. Each fired event records a task-start and a task-completion
// telemetry record, the instrumentation pattern of the CPU and network
// models. The new side runs the arena kernel with the batched append-style
// JSONL encoder; the legacy side runs the container/heap kernel with the
// per-event json.Marshal encoder it replaced (NewJSONLReference).
// cmd/benchguard gates the speedup at 5x and holds the new side to
// 0 allocs/op (BENCH_kernel.json).

func BenchmarkKernelEventThroughputTraced(b *testing.B) {
	sim := New(1)
	sink := telemetry.NewJSONL(io.Discard)
	args := []telemetry.Arg{telemetry.I("node", 3)}
	var seq uint64
	fn := func() {
		seq++
		sink.Emit(telemetry.Event{T: sim.Now(), Seq: seq, Type: "task.start",
			Comp: "cpusim", Name: "worker", Args: args})
		sink.Emit(telemetry.Event{T: sim.Now(), Seq: seq, Type: "task.done",
			Comp: "cpusim", Name: "worker", Dur: 2.5, Args: args})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(float64(i%1000), fn)
		if i%churnWindow == churnWindow-1 {
			sim.Run()
		}
	}
	sim.Run()
	sink.Close()
}

func BenchmarkKernelEventThroughputTracedLegacy(b *testing.B) {
	sim := &legacySim{}
	sink := telemetry.NewJSONLReference(io.Discard)
	args := []telemetry.Arg{telemetry.I("node", 3)}
	var seq uint64
	fn := func() {
		seq++
		sink.Emit(telemetry.Event{T: sim.now, Seq: seq, Type: "task.start",
			Comp: "cpusim", Name: "worker", Args: args})
		sink.Emit(telemetry.Event{T: sim.now, Seq: seq, Type: "task.done",
			Comp: "cpusim", Name: "worker", Dur: 2.5, Args: args})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.schedule(float64(i%1000), fn)
		if i%churnWindow == churnWindow-1 {
			sim.run()
		}
	}
	sim.run()
	sink.Close()
}
