package simcore

// waiter pairs a parked process with the wait-queue bookkeeping needed to
// wake it or remove it on interrupt.
type waiter struct {
	p       *Proc
	removed bool
}

// waitQueue is a FIFO of parked processes. Wakeups preserve arrival order,
// which keeps simulations deterministic.
type waitQueue struct {
	ws []*waiter
}

// add registers p at the tail and returns its waiter record.
func (q *waitQueue) add(p *Proc) *waiter {
	w := &waiter{p: p}
	q.ws = append(q.ws, w)
	return w
}

// popLive removes and returns the first non-removed waiter, or nil.
func (q *waitQueue) popLive() *waiter {
	for len(q.ws) > 0 {
		w := q.ws[0]
		q.ws = q.ws[1:]
		if !w.removed {
			return w
		}
	}
	return nil
}

// len reports the number of live waiters.
func (q *waitQueue) len() int {
	n := 0
	for _, w := range q.ws {
		if !w.removed {
			n++
		}
	}
	return n
}

// Signal is a broadcast/wakeup condition for simulated processes.
// The zero value is not usable; create one with NewSignal.
type Signal struct {
	sim *Sim
	q   waitQueue
}

// NewSignal creates a Signal bound to sim.
func NewSignal(sim *Sim) *Signal { return &Signal{sim: sim} }

// Wait parks the calling process until Fire or Broadcast wakes it.
// It returns the interrupt cause if the process was interrupted.
func (g *Signal) Wait(p *Proc) error {
	w := g.q.add(p)
	p.unblock = func() { w.removed = true }
	return p.park()
}

// WaitTimeout parks the calling process until a wakeup or until timeout
// seconds elapse. It reports whether the wakeup arrived before the timeout;
// err carries the interrupt cause, if any.
func (g *Signal) WaitTimeout(p *Proc, timeout float64) (woken bool, err error) {
	w := g.q.add(p)
	fired := false
	ev := g.sim.Schedule(timeout, func() {
		if !w.removed {
			w.removed = true
			fired = true
			p.run(nil)
		}
	})
	p.unblock = func() { w.removed = true; ev.Cancel() }
	err = p.park()
	ev.Cancel()
	return err == nil && !fired, err
}

// Fire wakes the longest-waiting process, if any, and reports whether one
// was woken. The wakeup is delivered as an immediate event, so the waiter
// resumes after the caller's current event completes.
func (g *Signal) Fire() bool {
	w := g.q.popLive()
	if w == nil {
		return false
	}
	w.removed = true
	w.p.unblock = nil
	g.sim.scheduleAt(g.sim.now, nil, w.p)
	return true
}

// Broadcast wakes all waiting processes in arrival order and returns the
// number woken.
func (g *Signal) Broadcast() int {
	n := 0
	for g.Fire() {
		n++
	}
	return n
}

// Waiters returns the number of processes currently parked on the signal.
func (g *Signal) Waiters() int { return g.q.len() }

// Chan is a FIFO message queue for simulated processes, analogous to a Go
// channel with capacity cap (0 means unbounded). Delivery is instantaneous
// in virtual time; transport costs are modeled by higher layers.
type Chan struct {
	sim     *Sim
	cap     int // 0 = unbounded
	buf     []any
	getters waitQueue
	putters waitQueue
	closed  bool
}

// NewChan creates a message queue. capacity <= 0 means unbounded.
func NewChan(sim *Sim, capacity int) *Chan {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan{sim: sim, cap: capacity}
}

// Len returns the number of buffered messages.
func (c *Chan) Len() int { return len(c.buf) }

// Put appends v, blocking while the queue is at capacity. It returns the
// interrupt cause if the caller was interrupted while blocked.
func (c *Chan) Put(p *Proc, v any) error {
	for c.cap > 0 && len(c.buf) >= c.cap {
		w := c.putters.add(p)
		p.unblock = func() { w.removed = true }
		if err := p.park(); err != nil {
			return err
		}
	}
	c.buf = append(c.buf, v)
	c.wakeGetter()
	return nil
}

// TryPut appends v without blocking; it reports whether the value was
// accepted (false only for a full bounded queue).
func (c *Chan) TryPut(v any) bool {
	if c.cap > 0 && len(c.buf) >= c.cap {
		return false
	}
	c.buf = append(c.buf, v)
	c.wakeGetter()
	return true
}

// Get removes and returns the head message, blocking while the queue is
// empty. It returns the interrupt cause if the caller was interrupted.
func (c *Chan) Get(p *Proc) (any, error) {
	for len(c.buf) == 0 {
		w := c.getters.add(p)
		p.unblock = func() { w.removed = true }
		if err := p.park(); err != nil {
			return nil, err
		}
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	c.wakePutter()
	return v, nil
}

// GetTimeout is Get with a timeout in seconds. ok is false if the timeout
// expired (or the caller was interrupted) before a message arrived.
func (c *Chan) GetTimeout(p *Proc, timeout float64) (v any, ok bool, err error) {
	deadline := c.sim.now + timeout
	for len(c.buf) == 0 {
		remain := deadline - c.sim.now
		if remain <= 0 {
			return nil, false, nil
		}
		w := c.getters.add(p)
		fired := false
		ev := c.sim.Schedule(remain, func() {
			if !w.removed {
				w.removed = true
				fired = true
				p.run(nil)
			}
		})
		p.unblock = func() { w.removed = true; ev.Cancel() }
		err := p.park()
		ev.Cancel()
		if err != nil {
			return nil, false, err
		}
		if fired && len(c.buf) == 0 {
			return nil, false, nil
		}
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.wakePutter()
	return v, true, nil
}

func (c *Chan) wakeGetter() {
	if w := c.getters.popLive(); w != nil {
		w.removed = true
		w.p.unblock = nil
		c.sim.scheduleAt(c.sim.now, nil, w.p)
	}
}

func (c *Chan) wakePutter() {
	if w := c.putters.popLive(); w != nil {
		w.removed = true
		w.p.unblock = nil
		c.sim.scheduleAt(c.sim.now, nil, w.p)
	}
}

// Semaphore is a counting semaphore with FIFO grant order.
type Semaphore struct {
	sim   *Sim
	avail int
	q     waitQueue
}

// NewSemaphore creates a semaphore with n initial permits.
func NewSemaphore(sim *Sim, n int) *Semaphore { return &Semaphore{sim: sim, avail: n} }

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// Acquire takes one permit, blocking until one is free. It returns the
// interrupt cause if the caller was interrupted while blocked.
func (s *Semaphore) Acquire(p *Proc) error {
	for s.avail == 0 {
		w := s.q.add(p)
		p.unblock = func() { w.removed = true }
		if err := p.park(); err != nil {
			return err
		}
	}
	s.avail--
	return nil
}

// Release returns one permit and wakes the longest waiter, if any.
func (s *Semaphore) Release() {
	s.avail++
	if w := s.q.popLive(); w != nil {
		w.removed = true
		w.p.unblock = nil
		s.sim.scheduleAt(s.sim.now, nil, w.p)
	}
}
