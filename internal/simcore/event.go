package simcore

import "container/heap"

// Event is a scheduled callback in virtual time. Events are ordered by time,
// with insertion order breaking ties, which makes runs fully deterministic.
// An Event may be canceled before it fires; canceled events are skipped by
// the kernel and never run.
type Event struct {
	t        float64
	seq      int64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Time returns the virtual time at which the event is scheduled to fire.
func (e *Event) Time() float64 { return e.t }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event from firing. Canceling an event that already
// fired or was already canceled is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// eventHeap is a min-heap of events keyed by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// push inserts an event into the heap.
func (h *eventHeap) push(e *Event) { heap.Push(h, e) }

// popNext removes and returns the earliest non-canceled event,
// or nil if the heap holds no live events.
func (h *eventHeap) popNext() *Event {
	for h.Len() > 0 {
		e := heap.Pop(h).(*Event)
		if !e.canceled {
			return e
		}
	}
	return nil
}

// peekNext returns the earliest non-canceled event without removing it,
// discarding canceled events it encounters, or nil if none remain.
func (h *eventHeap) peekNext() *Event {
	for h.Len() > 0 {
		e := (*h)[0]
		if !e.canceled {
			return e
		}
		heap.Pop(h)
	}
	return nil
}
