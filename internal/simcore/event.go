package simcore

// The kernel's event queue is built for zero allocations on the
// schedule→fire path: event records live in an index-stable arena whose
// slots are recycled through a free list, and ordering is kept by a 4-ary
// min-heap of (time, seq) keys. The heap stores key copies next to the slot
// index, so sift comparisons never chase the arena, and the 4-ary shape
// halves the sift-down depth of a binary heap — pops, which dominate event
// churn, touch ~log4(n) cache lines instead of ~log2(n).
//
// Cancellation is lazy: a canceled event stays in the heap until it reaches
// the top and is discarded, exactly as the previous container/heap kernel
// did, so firing order (time, then schedule sequence) is unchanged.

// Event is a cancelable handle to a scheduled callback. The kernel pools
// event storage and recycles a record as soon as its event fires or its
// cancellation is collected, so a handle names (slot, generation) rather
// than pointing at the record: operations through a stale handle — one
// whose event already fired or whose slot now serves a newer event — are
// safe no-ops. The zero Event is a valid inert handle.
type Event struct {
	s   *Sim
	t   float64
	idx int32
	gen uint32
}

// Time returns the virtual time at which the event was scheduled to fire.
// It remains valid after the event fires or is canceled.
func (e Event) Time() float64 { return e.t }

// Live reports whether the event is still scheduled and not canceled.
func (e Event) Live() bool {
	if e.s == nil {
		return false
	}
	sl := &e.s.q.slots[e.idx]
	return sl.gen == e.gen && !sl.canceled
}

// Canceled reports whether the event will never fire through this handle:
// it was canceled, or it already fired and its slot was recycled. A live
// (still pending) event reports false.
func (e Event) Canceled() bool { return !e.Live() }

// Cancel prevents the event from firing. Canceling an event that already
// fired, was already canceled, or whose slot has been recycled for a newer
// event is a safe no-op.
func (e Event) Cancel() {
	if e.s == nil {
		return
	}
	q := &e.s.q
	sl := &q.slots[e.idx]
	if sl.gen != e.gen || sl.canceled {
		return
	}
	sl.canceled = true
	q.live--
}

// eventSlot is one pooled event record. gen increments every time the slot
// is recycled, invalidating all outstanding handles to the previous event.
// When proc is non-nil the event resumes that process (fn is unused); this
// lets Sleep and the wait primitives schedule wakeups without allocating a
// closure per park.
type eventSlot struct {
	fn       func()
	proc     *Proc
	t        float64
	seq      int64
	gen      uint32
	canceled bool
}

// heapEntry mirrors a scheduled slot's ordering key into the heap array,
// packed to 16 bytes so four children share one cache line. tb holds the
// firing time's IEEE-754 bits: virtual time is never negative (At clamps to
// the present and the clock starts at 0), so the bit patterns order exactly
// like the floats, with a single integer compare. ord packs (seq, slot
// index) with seq in the high bits, so equal-time events order by schedule
// sequence. The packing caps the arena at ordIdxBits slots and seq at
// 2^(64-ordIdxBits) events — ~2M simultaneously pending events and ~8.8e12
// total, far beyond any realistic run; alloc panics rather than corrupting
// order if the arena cap is ever hit.
type heapEntry struct {
	tb  uint64
	ord uint64
}

const ordIdxBits = 21

func (a heapEntry) before(b heapEntry) bool {
	if a.tb != b.tb {
		return a.tb < b.tb
	}
	return a.ord < b.ord
}

// eventQueue is the allocation-free priority queue: a 4-ary min-heap of
// (time, seq) keys over an index-stable slot arena with a free list. live
// counts scheduled, non-canceled events so PendingEvents is O(1).
type eventQueue struct {
	slots []eventSlot
	free  []int32
	heap  []heapEntry
	live  int
}

// alloc takes a slot from the free list (growing the arena only when it is
// empty) and fills it. Steady-state simulations reuse slots indefinitely.
func (q *eventQueue) alloc(t float64, seq int64, fn func(), proc *Proc) int32 {
	var idx int32
	if n := len(q.free) - 1; n >= 0 {
		idx = q.free[n]
		q.free = q.free[:n]
	} else {
		if len(q.slots) >= 1<<ordIdxBits {
			panic("simcore: event arena full (more than 2^21 pending events)")
		}
		q.slots = append(q.slots, eventSlot{})
		idx = int32(len(q.slots) - 1)
	}
	sl := &q.slots[idx]
	sl.fn, sl.proc, sl.t, sl.seq, sl.canceled = fn, proc, t, seq, false
	return idx
}

// recycle retires a slot that has been popped from the heap: the generation
// bump invalidates outstanding handles, the callback references are dropped
// so the arena never retains dead closures, and the slot returns to the
// free list.
func (q *eventQueue) recycle(idx int32) {
	sl := &q.slots[idx]
	sl.gen++
	sl.fn, sl.proc = nil, nil
	q.free = append(q.free, idx)
}

// push inserts a key, sifting up through 4-ary parents.
func (q *eventQueue) push(e heapEntry) {
	h := append(q.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	q.heap = h
}

// deleteMin removes the root key, sifting the detached last element down
// through 4-ary levels. The heap must be non-empty.
func (q *eventQueue) deleteMin() {
	h := q.heap
	n := len(h) - 1
	last := h[n]
	q.heap = h[:n]
	h = h[:n]
	i := 0
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		mc := c
		for j := c + 1; j < end; j++ {
			if h[j].before(h[mc]) {
				mc = j
			}
		}
		if !h[mc].before(last) {
			break
		}
		h[i] = h[mc]
		i = mc
	}
	if n > 0 {
		h[i] = last
	}
}

// peekLive discards canceled events off the top of the heap (recycling
// their slots) and returns the arena index of the earliest live event, or
// -1 when no live events remain.
func (q *eventQueue) peekLive() int32 {
	for len(q.heap) > 0 {
		idx := int32(q.heap[0].ord & (1<<ordIdxBits - 1))
		if !q.slots[idx].canceled {
			return idx
		}
		q.deleteMin()
		q.recycle(idx)
	}
	return -1
}
