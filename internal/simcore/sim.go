// Package simcore provides a deterministic discrete-event simulation kernel
// with virtual time and goroutine-based simulated processes.
//
// The kernel is the substrate for the Grid emulator (our MicroGrid
// equivalent): the network model, CPU model, grid services, the MPI layer and
// the GrADS runtime all execute inside a single Sim. Exactly one goroutine —
// either the kernel or one simulated process — runs at any moment, so
// simulations are fully deterministic: identical inputs and seeds yield
// identical traces.
package simcore

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"grads/internal/telemetry"
)

// Sim is a discrete-event simulation. The zero value is not usable; create
// one with New.
type Sim struct {
	now   float64
	seq   int64
	q     eventQueue
	rng   *rand.Rand
	fired uint64

	nextProcID int
	liveProcs  map[int]*Proc

	stopped bool
	tracer  func(t float64, msg string)

	// Telemetry. tel is nil when observability is off; the cached metric
	// handles below are nil then too, making every instrumentation site a
	// single predictable branch (see BenchmarkSimcoreEventThroughput).
	tel       *telemetry.Telemetry
	cEvents   *telemetry.Counter
	cSpawns   *telemetry.Counter
	cSwitches *telemetry.Counter
}

// New creates a simulation whose random source is seeded with seed.
// Virtual time starts at 0 and is measured in seconds.
func New(seed int64) *Sim {
	return &Sim{
		rng:       rand.New(rand.NewSource(seed)),
		liveProcs: make(map[int]*Proc),
	}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetTracer installs a trace sink called by Tracef. A nil sink disables
// tracing (the default).
func (s *Sim) SetTracer(fn func(t float64, msg string)) { s.tracer = fn }

// SetTelemetry attaches an observability hub to the kernel: its clock is
// bound to this simulation's virtual time and the kernel begins publishing
// its own counters (events fired, processes spawned, context switches) and
// process-lifecycle trace events into it. Passing nil detaches telemetry
// and restores the zero-cost path.
func (s *Sim) SetTelemetry(tel *telemetry.Telemetry) {
	s.tel = tel
	if tel == nil {
		s.cEvents, s.cSpawns, s.cSwitches = nil, nil, nil
		return
	}
	tel.SetClock(func() float64 { return s.now })
	s.cEvents = tel.Counter("simcore", "events_fired")
	s.cSpawns = tel.Counter("simcore", "procs_spawned")
	s.cSwitches = tel.Counter("simcore", "proc_switches")
}

// Telemetry returns the attached hub, or nil. Components built over the
// kernel use this to reach the simulation's observability layer.
func (s *Sim) Telemetry() *telemetry.Telemetry { return s.tel }

// Tracef emits a trace line to the installed tracer, if any.
func (s *Sim) Tracef(format string, args ...any) {
	if s.tracer != nil {
		s.tracer(s.now, fmt.Sprintf(format, args...))
	}
}

// Schedule runs fn after delay seconds of virtual time and returns the
// scheduled event, which may be canceled. A negative delay is treated as 0.
func (s *Sim) Schedule(delay float64, fn func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t and returns the scheduled event.
// Scheduling in the past is clamped to the present.
func (s *Sim) At(t float64, fn func()) Event {
	return s.scheduleAt(t, fn, nil)
}

// scheduleAt is the single entry point onto the event queue. Exactly one of
// fn and proc is set: a proc event resumes the process without a per-call
// closure (the pooled resume path used by Sleep and the wait primitives).
// The clamp also maps a NaN time to the present, keeping the heap keys
// totally ordered.
func (s *Sim) scheduleAt(t float64, fn func(), proc *Proc) Event {
	if !(t > s.now) {
		t = s.now
	}
	s.seq++
	idx := s.q.alloc(t, s.seq, fn, proc)
	s.q.push(heapEntry{tb: math.Float64bits(t), ord: uint64(s.seq)<<ordIdxBits | uint64(idx)})
	s.q.live++
	return Event{s: s, t: t, idx: idx, gen: s.q.slots[idx].gen}
}

// Stop makes the current Run call return after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Run processes events until no live events remain or Stop is called.
// It returns the final virtual time.
func (s *Sim) Run() float64 { return s.RunUntil(math.Inf(1)) }

// RunUntil processes events with firing times <= horizon, then advances the
// clock to min(horizon, next event time) and returns the current time.
// If horizon is +Inf the clock is left at the last fired event.
func (s *Sim) RunUntil(horizon float64) float64 {
	s.stopped = false
	for !s.stopped {
		idx := s.q.peekLive()
		if idx < 0 {
			break
		}
		if s.q.slots[idx].t > horizon {
			s.now = horizon
			return s.now
		}
		s.fire(idx)
	}
	if !math.IsInf(horizon, 1) && horizon > s.now {
		s.now = horizon
	}
	return s.now
}

// fire pops the queue's minimum — the live event in slot idx — recycles the
// slot before running the callback (so the callback may immediately reuse
// it for new events), advances the clock, and runs the callback.
func (s *Sim) fire(idx int32) {
	s.q.deleteMin()
	sl := &s.q.slots[idx]
	t, fn, proc := sl.t, sl.fn, sl.proc
	s.q.live--
	s.q.recycle(idx)
	s.now = t
	s.fired++
	s.cEvents.Add(1)
	if proc != nil {
		proc.run(nil)
	} else {
		fn()
	}
}

// NextEventTime returns the firing time of the earliest live event and true,
// or (0, false) when no live events remain. Conservative parallel runners use
// it to compute a lower bound on this kernel's next action without firing
// anything.
func (s *Sim) NextEventTime() (float64, bool) {
	idx := s.q.peekLive()
	if idx < 0 {
		return 0, false
	}
	return s.q.slots[idx].t, true
}

// RunBefore processes events with firing times strictly less than bound and
// returns the current time. Unlike RunUntil, the clock is NOT advanced to
// bound when the queue runs dry or only holds later events: the kernel stays
// at its last fired event, so new events injected afterwards at t >= now are
// never clamped forward. This is the round primitive for barrier-synchronous
// sharded execution, where bound is the round horizon (LBTS + lookahead).
func (s *Sim) RunBefore(bound float64) float64 {
	s.stopped = false
	for !s.stopped {
		idx := s.q.peekLive()
		if idx < 0 {
			break
		}
		if !(s.q.slots[idx].t < bound) {
			break
		}
		s.fire(idx)
	}
	return s.now
}

// Step fires exactly one event, if one exists, and reports whether it did.
func (s *Sim) Step() bool {
	idx := s.q.peekLive()
	if idx < 0 {
		return false
	}
	s.fire(idx)
	return true
}

// EventsFired returns how many kernel events have fired since the
// simulation was created, independent of telemetry being attached. Soak
// harnesses use it to size fault schedules in kernel events rather than
// virtual seconds.
func (s *Sim) EventsFired() uint64 { return s.fired }

// PendingEvents returns the number of live (non-canceled) scheduled events.
// It is O(1): the queue maintains the count across push, fire and cancel.
func (s *Sim) PendingEvents() int { return s.q.live }

// LiveProcs returns the names of processes that have been spawned and have
// not yet terminated, sorted for determinism. It is a debugging aid for
// detecting deadlocked simulations.
func (s *Sim) LiveProcs() []string {
	names := make([]string, 0, len(s.liveProcs))
	for _, p := range s.liveProcs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}
