// Package simcore provides a deterministic discrete-event simulation kernel
// with virtual time and goroutine-based simulated processes.
//
// The kernel is the substrate for the Grid emulator (our MicroGrid
// equivalent): the network model, CPU model, grid services, the MPI layer and
// the GrADS runtime all execute inside a single Sim. Exactly one goroutine —
// either the kernel or one simulated process — runs at any moment, so
// simulations are fully deterministic: identical inputs and seeds yield
// identical traces.
package simcore

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"grads/internal/telemetry"
)

// Sim is a discrete-event simulation. The zero value is not usable; create
// one with New.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
	rng    *rand.Rand

	nextProcID int
	liveProcs  map[int]*Proc

	stopped bool
	tracer  func(t float64, msg string)

	// Telemetry. tel is nil when observability is off; the cached metric
	// handles below are nil then too, making every instrumentation site a
	// single predictable branch (see BenchmarkSimcoreEventThroughput).
	tel       *telemetry.Telemetry
	cEvents   *telemetry.Counter
	cSpawns   *telemetry.Counter
	cSwitches *telemetry.Counter
}

// New creates a simulation whose random source is seeded with seed.
// Virtual time starts at 0 and is measured in seconds.
func New(seed int64) *Sim {
	return &Sim{
		rng:       rand.New(rand.NewSource(seed)),
		liveProcs: make(map[int]*Proc),
	}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetTracer installs a trace sink called by Tracef. A nil sink disables
// tracing (the default).
func (s *Sim) SetTracer(fn func(t float64, msg string)) { s.tracer = fn }

// SetTelemetry attaches an observability hub to the kernel: its clock is
// bound to this simulation's virtual time and the kernel begins publishing
// its own counters (events fired, processes spawned, context switches) and
// process-lifecycle trace events into it. Passing nil detaches telemetry
// and restores the zero-cost path.
func (s *Sim) SetTelemetry(tel *telemetry.Telemetry) {
	s.tel = tel
	if tel == nil {
		s.cEvents, s.cSpawns, s.cSwitches = nil, nil, nil
		return
	}
	tel.SetClock(func() float64 { return s.now })
	s.cEvents = tel.Counter("simcore", "events_fired")
	s.cSpawns = tel.Counter("simcore", "procs_spawned")
	s.cSwitches = tel.Counter("simcore", "proc_switches")
}

// Telemetry returns the attached hub, or nil. Components built over the
// kernel use this to reach the simulation's observability layer.
func (s *Sim) Telemetry() *telemetry.Telemetry { return s.tel }

// Tracef emits a trace line to the installed tracer, if any.
func (s *Sim) Tracef(format string, args ...any) {
	if s.tracer != nil {
		s.tracer(s.now, fmt.Sprintf(format, args...))
	}
}

// Schedule runs fn after delay seconds of virtual time and returns the
// scheduled event, which may be canceled. A negative delay is treated as 0.
func (s *Sim) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t and returns the scheduled event.
// Scheduling in the past is clamped to the present.
func (s *Sim) At(t float64, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &Event{t: t, seq: s.seq, fn: fn}
	s.events.push(e)
	return e
}

// Stop makes the current Run call return after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Run processes events until no live events remain or Stop is called.
// It returns the final virtual time.
func (s *Sim) Run() float64 { return s.RunUntil(math.Inf(1)) }

// RunUntil processes events with firing times <= horizon, then advances the
// clock to min(horizon, next event time) and returns the current time.
// If horizon is +Inf the clock is left at the last fired event.
func (s *Sim) RunUntil(horizon float64) float64 {
	s.stopped = false
	for !s.stopped {
		e := s.events.peekNext()
		if e == nil {
			break
		}
		if e.t > horizon {
			s.now = horizon
			return s.now
		}
		s.events.popNext()
		s.now = e.t
		s.cEvents.Add(1)
		e.fn()
	}
	if !math.IsInf(horizon, 1) && horizon > s.now {
		s.now = horizon
	}
	return s.now
}

// Step fires exactly one event, if one exists, and reports whether it did.
func (s *Sim) Step() bool {
	e := s.events.popNext()
	if e == nil {
		return false
	}
	s.now = e.t
	s.cEvents.Add(1)
	e.fn()
	return true
}

// PendingEvents returns the number of live (non-canceled) scheduled events.
func (s *Sim) PendingEvents() int {
	n := 0
	for _, e := range s.events {
		if !e.canceled {
			n++
		}
	}
	return n
}

// LiveProcs returns the names of processes that have been spawned and have
// not yet terminated, sorted for determinism. It is a debugging aid for
// detecting deadlocked simulations.
func (s *Sim) LiveProcs() []string {
	names := make([]string, 0, len(s.liveProcs))
	for _, p := range s.liveProcs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}
