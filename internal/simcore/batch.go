package simcore

// Coalescer batches many triggers within one virtual instant into a single
// callback invocation. Components whose bookkeeping is expensive but
// idempotent (the network's max-min reallocation, for example) call Trigger
// on every state change; the callback then runs once, after all
// already-scheduled work at the current instant, no matter how many changes
// piled up. Because the callback fires before virtual time advances, no
// simulated process can ever observe the deferred state from a later
// timestamp.
//
// A Coalescer is single-threaded like the rest of the kernel: all methods
// must be called from kernel event context or a simulated process.
type Coalescer struct {
	sim *Sim
	fn  func()
	ev  Event

	fired uint64 // number of callback runs (Trigger batches + Flushes)
	calls uint64 // number of Trigger calls absorbed
}

// NewCoalescer returns a coalescer that runs fn at most once per batch of
// same-instant triggers.
func NewCoalescer(sim *Sim, fn func()) *Coalescer {
	return &Coalescer{sim: sim, fn: fn}
}

// Trigger schedules the callback to run once at the current virtual time,
// after every event already scheduled at this instant. Further triggers
// before the callback runs are absorbed into the same pending run.
func (c *Coalescer) Trigger() {
	c.calls++
	if c.ev.Live() {
		return
	}
	c.ev = c.sim.Schedule(0, c.fire)
}

// fire runs as the coalesced event's callback; by then the kernel has
// retired the event, so c.ev is already stale and a new Trigger may arm it
// again from inside fn.
func (c *Coalescer) fire() {
	c.fired++
	c.fn()
}

// Pending reports whether a coalesced run is scheduled and has not fired yet.
func (c *Coalescer) Pending() bool { return c.ev.Live() }

// Flush runs the callback synchronously if a run is pending, canceling the
// scheduled event; it is a no-op otherwise. Readers that need the deferred
// state to be current (probes, snapshots) call Flush before looking.
func (c *Coalescer) Flush() {
	if !c.ev.Live() {
		return
	}
	c.ev.Cancel()
	c.fired++
	c.fn()
}

// Stats returns the number of Trigger calls absorbed and the number of
// callback runs actually performed. The difference is the work saved by
// batching.
func (c *Coalescer) Stats() (triggers, runs uint64) { return c.calls, c.fired }
