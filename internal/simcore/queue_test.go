package simcore

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestCancelAfterFireOnRecycledSlot checks the generation-counter safety
// property: a handle to an event that already fired must stay inert even
// after its arena slot has been recycled for newer events, and must never
// cancel the slot's new occupant.
func TestCancelAfterFireOnRecycledSlot(t *testing.T) {
	s := New(1)
	var fired []string
	first := s.Schedule(1, func() { fired = append(fired, "first") })
	s.Run()

	// first's slot is now free; the next event reuses it.
	second := s.Schedule(1, func() { fired = append(fired, "second") })
	if second.idx != first.idx {
		t.Fatalf("slot not recycled: first idx %d, second idx %d", first.idx, second.idx)
	}
	if first.Live() {
		t.Fatal("stale handle reports Live")
	}
	if !first.Canceled() {
		t.Fatal("stale handle reports Canceled() = false")
	}

	first.Cancel() // must NOT cancel second, which now owns the slot
	if !second.Live() {
		t.Fatal("Cancel through a stale handle killed the slot's new event")
	}
	s.Run()
	if len(fired) != 2 || fired[1] != "second" {
		t.Fatalf("fired %v, want [first second]", fired)
	}

	// Cancel on the zero Event is a no-op too.
	var zero Event
	zero.Cancel()
	if zero.Live() {
		t.Fatal("zero Event reports Live")
	}
}

// TestCancelAfterCancelCollected checks that a canceled event's handle stays
// inert after the kernel lazily collects and recycles its slot.
func TestCancelAfterCancelCollected(t *testing.T) {
	s := New(1)
	doomed := s.Schedule(1, func() { t.Error("canceled event fired") })
	s.Schedule(2, func() {})
	doomed.Cancel()
	s.Run() // collection pops the canceled event and recycles its slot

	replacement := s.Schedule(1, func() {})
	doomed.Cancel() // stale: must not touch replacement
	if !replacement.Live() {
		t.Fatal("stale Cancel hit a recycled slot's new event")
	}
	if got := s.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents = %d, want 1", got)
	}
}

// TestEventTimeSurvivesFiring checks Time() keeps returning the scheduled
// time after the event fires (callers use it to filter handles post-run).
func TestEventTimeSurvivesFiring(t *testing.T) {
	s := New(1)
	e := s.Schedule(3.5, func() {})
	if e.Time() != 3.5 {
		t.Fatalf("Time() = %v before firing, want 3.5", e.Time())
	}
	s.Run()
	if e.Time() != 3.5 {
		t.Fatalf("Time() = %v after firing, want 3.5", e.Time())
	}
}

// TestEqualTimestampSeqOrder floods one instant with events interleaved with
// cancellations and requires exact schedule-order firing.
func TestEqualTimestampSeqOrder(t *testing.T) {
	s := New(1)
	var fired []int
	var evs []Event
	for i := 0; i < 100; i++ {
		i := i
		evs = append(evs, s.Schedule(7, func() { fired = append(fired, i) }))
	}
	for i := 0; i < 100; i += 3 {
		evs[i].Cancel()
	}
	s.Run()
	want := make([]int, 0, 100)
	for i := 0; i < 100; i++ {
		if i%3 != 0 {
			want = append(want, i)
		}
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("equal-timestamp order broken at %d: got %v", i, fired[i])
		}
	}
}

// TestRunUntilHorizonClamping pins the horizon behaviors: clock clamps to a
// finite horizon with pending events beyond it, a horizon between events
// leaves them intact, an infinite horizon leaves the clock on the last
// event, and canceled events at the horizon boundary do not advance time.
func TestRunUntilHorizonClamping(t *testing.T) {
	s := New(1)
	var fired []float64
	for _, d := range []float64{1, 2, 3, 10} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	if now := s.RunUntil(2.5); now != 2.5 {
		t.Fatalf("RunUntil(2.5) = %v", now)
	}
	if s.PendingEvents() != 2 {
		t.Fatalf("pending = %d, want 2", s.PendingEvents())
	}
	if now := s.RunUntil(2.7); now != 2.7 {
		t.Fatalf("empty advance: RunUntil(2.7) = %v", now)
	}
	if len(fired) != 2 {
		t.Fatalf("horizon advance fired %v", fired)
	}
	if now := s.Run(); now != 10 {
		t.Fatalf("Run() = %v, want clock left on last event", now)
	}

	// A canceled event past the horizon must not be fired, and peeking at it
	// must not advance the clock beyond the horizon.
	s2 := New(1)
	e := s2.Schedule(5, func() { t.Error("canceled event fired") })
	e.Cancel()
	if now := s2.RunUntil(3); now != 3 {
		t.Fatalf("RunUntil over canceled tail = %v, want 3", now)
	}
	if now := s2.Run(); now != 3 {
		t.Fatalf("Run over canceled tail = %v, want clock unchanged at 3", now)
	}
}

// TestPendingEventsChurn cross-checks the O(1) live counter against a
// straight count through a randomized schedule/cancel/reschedule/fire churn,
// including double-cancels and cancels through stale handles.
func TestPendingEventsChurn(t *testing.T) {
	s := New(1)
	rng := rand.New(rand.NewSource(99))
	type rec struct {
		ev   Event
		live bool
	}
	var recs []*rec
	liveModel := 0
	fired := 0
	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // schedule
			r := &rec{live: true}
			r.ev = s.Schedule(rng.Float64()*100, func() { r.live = false; fired++ })
			recs = append(recs, r)
			liveModel++
		case op < 8 && len(recs) > 0: // cancel (possibly stale or repeated)
			r := recs[rng.Intn(len(recs))]
			r.ev.Cancel()
			if r.live {
				r.live = false
				liveModel--
			}
		case op < 9: // fire one event
			before := s.PendingEvents()
			firedBefore := fired
			s.Step()
			liveModel -= fired - firedBefore
			if before == 0 && s.PendingEvents() != 0 {
				t.Fatalf("step %d: Step on empty queue changed pending", step)
			}
		default: // reschedule: cancel one, schedule another
			if len(recs) > 0 {
				r := recs[rng.Intn(len(recs))]
				if r.live {
					r.ev.Cancel()
					r.live = false
					liveModel--
				}
			}
			r := &rec{live: true}
			r.ev = s.Schedule(rng.Float64()*10, func() { r.live = false; fired++ })
			recs = append(recs, r)
			liveModel++
		}
		if got := s.PendingEvents(); got != liveModel {
			t.Fatalf("step %d: PendingEvents = %d, model = %d", step, got, liveModel)
		}
	}
	s.Run()
	if got := s.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents = %d after drain, want 0", got)
	}
}

// TestQueueOrderAgainstSortedReference is the property test comparing the
// 4-ary heap's firing order against a reference sorted slice: random
// workloads with heavily clustered timestamps and random cancellations must
// fire in exactly the order of a stable sort of the surviving events by
// (time, schedule order).
func TestQueueOrderAgainstSortedReference(t *testing.T) {
	type ref struct {
		t        float64
		id       int
		canceled bool
	}
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		s := New(1)
		n := 1 + rng.Intn(80)
		model := make([]*ref, n)
		evs := make([]Event, n)
		var fired []int
		for i := 0; i < n; i++ {
			// Cluster times onto half-integers so duplicates are common.
			at := math.Floor(rng.Float64()*8) / 2
			model[i] = &ref{t: at, id: i}
			id := i
			evs[i] = s.At(at, func() { fired = append(fired, id) })
		}
		for i := range evs {
			if rng.Intn(5) == 0 {
				evs[i].Cancel()
				model[i].canceled = true
			}
		}
		s.Run()

		var want []*ref
		for _, r := range model {
			if !r.canceled {
				want = append(want, r)
			}
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].t < want[j].t })
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, reference has %d", trial, len(fired), len(want))
		}
		for i, r := range want {
			if fired[i] != r.id {
				t.Fatalf("trial %d: position %d fired event %d, reference says %d",
					trial, i, fired[i], r.id)
			}
		}
	}
}
