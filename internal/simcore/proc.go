package simcore

import (
	"errors"
	"fmt"

	"grads/internal/telemetry"
)

// ErrInterrupted is returned from a blocking operation when another process
// interrupts the blocked process.
var ErrInterrupted = errors.New("simcore: interrupted")

// ErrKilled is the interrupt cause delivered by Proc.Kill.
var ErrKilled = errors.New("simcore: killed")

// procExit is the panic payload used by Proc.Exit to unwind a process body.
type procExit struct{}

// Proc is a simulated process: a goroutine whose execution is interleaved
// with the event kernel so that exactly one goroutine runs at a time.
// All methods on Proc must be called from the process's own goroutine,
// except Interrupt, Kill, Alive and Name, which are for external use.
type Proc struct {
	sim  *Sim
	id   int
	name string

	resume chan error    // kernel -> proc: run (value is interrupt cause or nil)
	parked chan struct{} // proc -> kernel: parked or terminated

	// unblock removes the process from whatever wait structure it is
	// parked on (timer, channel queue, signal list). Set on every park;
	// called by Interrupt before resuming with an error.
	unblock func()

	// sleepEv is the pending wakeup of the current Sleep, and cancelSleep
	// the once-allocated unblock function that revokes it — Sleep itself
	// allocates nothing (see Event's generation counters for why a stale
	// sleepEv is harmless).
	sleepEv     Event
	cancelSleep func()

	alive bool
	dead  bool
}

// Spawn creates a process named name executing body and schedules it to
// start at the current virtual time. It returns the process handle.
func (s *Sim) Spawn(name string, body func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, body)
}

// SpawnAt creates a process that starts at absolute virtual time t.
func (s *Sim) SpawnAt(t float64, name string, body func(p *Proc)) *Proc {
	s.nextProcID++
	p := &Proc{
		sim:    s,
		id:     s.nextProcID,
		name:   name,
		resume: make(chan error),
		parked: make(chan struct{}),
		alive:  true,
	}
	p.cancelSleep = func() { p.sleepEv.Cancel() }
	s.liveProcs[p.id] = p
	s.cSpawns.Add(1)
	if s.tel != nil {
		s.tel.Emit(telemetry.Event{
			Type: telemetry.EvProcSpawn, Comp: "simcore", Name: name,
			Args: []telemetry.Arg{telemetry.I("id", p.id), telemetry.F("start_t", t)},
		})
	}
	go func() {
		// Wait for the start event before running the body.
		if err := <-p.resume; err == nil {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(procExit); !ok {
							panic(r)
						}
					}
				}()
				body(p)
			}()
		}
		p.alive = false
		p.dead = true
		delete(s.liveProcs, p.id)
		if s.tel != nil {
			s.tel.Emit(telemetry.Event{
				Type: telemetry.EvProcExit, Comp: "simcore", Name: p.name,
				Args: []telemetry.Arg{telemetry.I("id", p.id)},
			})
		}
		p.parked <- struct{}{} // final handoff back to the kernel
	}()
	s.scheduleAt(t, nil, p)
	return p
}

// run hands control to the process goroutine and blocks the kernel until the
// process parks again or terminates.
func (p *Proc) run(cause error) {
	if p.dead {
		return
	}
	p.sim.cSwitches.Add(1)
	if p.sim.tel != nil {
		p.sim.tel.Emit(telemetry.Event{
			Type: telemetry.EvProcResume, Comp: "simcore", Name: p.name,
			Args: []telemetry.Arg{telemetry.I("id", p.id), telemetry.B("interrupted", cause != nil)},
		})
	}
	p.resume <- cause
	<-p.parked
}

// park suspends the process until the kernel resumes it. The caller must
// have arranged a wakeup (a scheduled event or a queue registration) and set
// p.unblock to a function that revokes that arrangement. park returns the
// interrupt cause, or nil for a normal wakeup.
func (p *Proc) park() error {
	if p.sim.tel != nil {
		p.sim.tel.Emit(telemetry.Event{
			Type: telemetry.EvProcPark, Comp: "simcore", Name: p.name,
			Args: []telemetry.Arg{telemetry.I("id", p.id)},
		})
	}
	p.parked <- struct{}{}
	err := <-p.resume
	p.unblock = nil
	return err
}

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.sim.now }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Alive reports whether the process has started and not yet terminated.
func (p *Proc) Alive() bool { return p.alive && !p.dead }

// Sleep suspends the process for d seconds of virtual time. It returns nil
// on normal wakeup or the interrupt cause if the process was interrupted.
// A non-positive d yields the processor for zero time (other events at the
// current time run first).
func (p *Proc) Sleep(d float64) error {
	if d < 0 || d != d {
		d = 0
	}
	p.sleepEv = p.sim.scheduleAt(p.sim.now+d, nil, p)
	p.unblock = p.cancelSleep
	return p.park()
}

// SleepUntil suspends the process until absolute virtual time t (or the
// current time, whichever is later). It returns the interrupt cause, if any.
func (p *Proc) SleepUntil(t float64) error {
	return p.Sleep(t - p.sim.now)
}

// Yield lets all other events scheduled at the current time run first.
func (p *Proc) Yield() error { return p.Sleep(0) }

// Exit terminates the process immediately (unwinding its body).
func (p *Proc) Exit() { panic(procExit{}) }

// Interrupt wakes the process with the given cause if it is blocked.
// The cause must be non-nil; the blocked operation returns it as its error.
// Interrupting a process that is not blocked (running or terminated) is a
// no-op and returns false. Interrupt must be called from kernel context or
// another process, never from the target process itself.
func (p *Proc) Interrupt(cause error) bool {
	if cause == nil {
		cause = ErrInterrupted
	}
	if p.dead || p.unblock == nil {
		return false
	}
	p.unblock()
	p.unblock = nil
	p.run(cause)
	return true
}

// Kill interrupts the process with ErrKilled if it is blocked. Process
// bodies that honor the convention of exiting on ErrKilled will terminate.
func (p *Proc) Kill() bool { return p.Interrupt(ErrKilled) }

// ParkWith parks the calling process until another event calls Resume.
// It is the extension point for external blocking primitives (CPU and
// network models, resources). onInterrupt runs if the process is
// interrupted while parked, before the blocking call returns the cause; use
// it to revoke the wakeup arrangement. A nil onInterrupt is replaced by a
// no-op (the process remains interruptible either way).
func (p *Proc) ParkWith(onInterrupt func()) error {
	if onInterrupt == nil {
		onInterrupt = func() {}
	}
	p.unblock = onInterrupt
	return p.park()
}

// Resume wakes a process parked via ParkWith with the given cause (nil for
// a normal wakeup). It must be called from kernel event context or from
// another process, and only while the target is parked; resuming a process
// that is not parked deadlocks the simulation.
func (p *Proc) Resume(cause error) {
	p.unblock = nil
	p.run(cause)
}

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%d,%s)", p.id, p.name) }
