package simcore

import "testing"

func TestCoalescerBatchesSameInstantTriggers(t *testing.T) {
	s := New(1)
	runs := 0
	var at []float64
	c := NewCoalescer(s, func() {
		runs++
		at = append(at, s.Now())
	})
	// Three triggers at t=0 and two at t=5 must produce exactly two runs.
	s.Schedule(0, c.Trigger)
	s.Schedule(0, c.Trigger)
	s.Schedule(0, c.Trigger)
	s.Schedule(5, c.Trigger)
	s.Schedule(5, c.Trigger)
	s.Run()
	if runs != 2 {
		t.Fatalf("callback ran %d times, want 2", runs)
	}
	if at[0] != 0 || at[1] != 5 {
		t.Fatalf("callback fired at %v, want [0 5]", at)
	}
	if trig, fired := c.Stats(); trig != 5 || fired != 2 {
		t.Fatalf("Stats = (%d, %d), want (5, 2)", trig, fired)
	}
}

func TestCoalescerRunsAfterSameInstantEvents(t *testing.T) {
	s := New(1)
	var order []string
	c := NewCoalescer(s, func() { order = append(order, "flush") })
	s.Schedule(1, func() {
		c.Trigger()
		s.Schedule(0, func() { order = append(order, "later-event") })
		order = append(order, "mutation")
	})
	s.Run()
	// The coalesced run fires at t=1 but after the event scheduled by the
	// mutation itself is NOT required — only that it runs before time
	// advances. Verify it ran at the same instant, after the mutation.
	if len(order) != 3 || order[0] != "mutation" {
		t.Fatalf("order = %v", order)
	}
	if order[1] != "flush" && order[2] != "flush" {
		t.Fatalf("flush missing from same-instant batch: %v", order)
	}
}

func TestCoalescerFlushForcesPendingRun(t *testing.T) {
	s := New(1)
	runs := 0
	c := NewCoalescer(s, func() { runs++ })
	s.Schedule(2, func() {
		c.Trigger()
		if !c.Pending() {
			t.Error("Pending = false after Trigger")
		}
		c.Flush()
		if runs != 1 {
			t.Errorf("Flush did not run callback (runs=%d)", runs)
		}
		if c.Pending() {
			t.Error("Pending = true after Flush")
		}
		c.Flush() // no-op: nothing pending
	})
	s.Run()
	if runs != 1 {
		t.Fatalf("callback ran %d times, want exactly 1 (flushed run must cancel the scheduled one)", runs)
	}
}

func TestCoalescerRetriggersAfterFire(t *testing.T) {
	s := New(1)
	runs := 0
	c := NewCoalescer(s, func() { runs++ })
	s.Schedule(1, c.Trigger)
	s.Schedule(1.5, c.Trigger) // separate instant: separate run
	s.Run()
	if runs != 2 {
		t.Fatalf("callback ran %d times, want 2", runs)
	}
}
