package simcore

import (
	"math"
	"testing"
)

func TestNextEventTime(t *testing.T) {
	s := New(1)
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("empty sim reports a next event")
	}
	ev := s.At(5, func() {})
	s.At(9, func() {})
	if nt, ok := s.NextEventTime(); !ok || nt != 5 {
		t.Fatalf("NextEventTime = %v,%v want 5,true", nt, ok)
	}
	ev.Cancel()
	if nt, ok := s.NextEventTime(); !ok || nt != 9 {
		t.Fatalf("after cancel: NextEventTime = %v,%v want 9,true", nt, ok)
	}
	s.Run()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("drained sim reports a next event")
	}
}

func TestRunBeforeStrictBound(t *testing.T) {
	s := New(1)
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	// Strict: an event exactly at the bound must NOT fire.
	if now := s.RunBefore(3); now != 2 {
		t.Fatalf("RunBefore(3) = %v want 2", now)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	// The clock stays at the last fired event, not the bound: injecting at
	// a time inside the processed window but >= now must not be clamped.
	s.At(2.5, func() { fired = append(fired, 2.5) })
	s.RunBefore(math.Inf(1))
	want := []float64{1, 2, 2.5, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v want %v", fired, want)
		}
	}
}

func TestRunBeforeDoesNotAdvanceClock(t *testing.T) {
	s := New(1)
	s.At(10, func() {})
	if now := s.RunBefore(5); now != 0 {
		t.Fatalf("RunBefore(5) advanced the clock to %v", now)
	}
	if n, ok := s.NextEventTime(); !ok || n != 10 {
		t.Fatalf("event at 10 lost: %v,%v", n, ok)
	}
}

func TestRunBeforeRounds(t *testing.T) {
	// Drive the kernel in conservative rounds of width 1 and verify the
	// result matches a single Run: same firing order, same final clock.
	order := func(run func(s *Sim)) []int {
		s := New(7)
		var got []int
		for i := 0; i < 50; i++ {
			i := i
			at := float64((i*7)%10) + float64(i)/100
			s.At(at, func() { got = append(got, i) })
		}
		run(s)
		return got
	}
	ref := order(func(s *Sim) { s.Run() })
	rounds := order(func(s *Sim) {
		for {
			nt, ok := s.NextEventTime()
			if !ok {
				break
			}
			s.RunBefore(nt + 1)
		}
	})
	if len(ref) != len(rounds) {
		t.Fatalf("round-driven run fired %d events, reference %d", len(rounds), len(ref))
	}
	for i := range ref {
		if ref[i] != rounds[i] {
			t.Fatalf("firing order diverges at %d: %d vs %d", i, rounds[i], ref[i])
		}
	}
}
