package simcore

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(2.0, func() { order = append(order, 2) })
	s.Schedule(1.0, func() { order = append(order, 1) })
	s.Schedule(3.0, func() { order = append(order, 3) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 3.0 {
		t.Fatalf("final time = %v, want 3.0", s.Now())
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5.0, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEventCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(1.0, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New(1)
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	now := s.RunUntil(2.5)
	if now != 2.5 {
		t.Fatalf("RunUntil returned %v, want 2.5", now)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("resume after RunUntil fired %v", fired)
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	s := New(1)
	var at float64 = -1
	s.Schedule(5, func() {
		s.At(1.0, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != 5.0 {
		t.Fatalf("past event fired at %v, want clamped to 5.0", at)
	}
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var times []float64
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if err := p.Sleep(1.5); err != nil {
				t.Errorf("Sleep: %v", err)
			}
			times = append(times, p.Now())
		}
	})
	s.Run()
	want := []float64{1.5, 3.0, 4.5}
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	s := New(1)
	start := -1.0
	s.SpawnAt(10, "late", func(p *Proc) { start = p.Now() })
	s.Run()
	if start != 10 {
		t.Fatalf("process started at %v, want 10", start)
	}
}

func TestProcInterrupt(t *testing.T) {
	s := New(1)
	cause := errors.New("migrate")
	var got error
	var when float64
	p := s.Spawn("victim", func(p *Proc) {
		got = p.Sleep(100)
		when = p.Now()
	})
	s.Schedule(5, func() {
		if !p.Interrupt(cause) {
			t.Error("Interrupt returned false for a blocked proc")
		}
	})
	s.Run()
	if !errors.Is(got, cause) {
		t.Fatalf("interrupt cause = %v, want %v", got, cause)
	}
	if when != 5 {
		t.Fatalf("woke at %v, want 5", when)
	}
	if s.PendingEvents() != 0 {
		t.Fatalf("stale wakeup event left behind: %d pending", s.PendingEvents())
	}
}

func TestInterruptNotBlocked(t *testing.T) {
	s := New(1)
	p := s.Spawn("done", func(p *Proc) {})
	s.Run()
	if p.Interrupt(errors.New("x")) {
		t.Fatal("Interrupt succeeded on a dead proc")
	}
	if p.Alive() {
		t.Fatal("Alive() = true after termination")
	}
}

func TestProcExit(t *testing.T) {
	s := New(1)
	reached := false
	s.Spawn("exiter", func(p *Proc) {
		p.Sleep(1)
		p.Exit()
		reached = true
	})
	s.Run()
	if reached {
		t.Fatal("code after Exit ran")
	}
	if len(s.LiveProcs()) != 0 {
		t.Fatalf("live procs after exit: %v", s.LiveProcs())
	}
}

func TestSignalFireAndBroadcast(t *testing.T) {
	s := New(1)
	sig := NewSignal(s)
	var woken []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			if err := sig.Wait(p); err != nil {
				t.Errorf("Wait: %v", err)
			}
			woken = append(woken, name)
		})
	}
	s.Schedule(1, func() {
		if !sig.Fire() {
			t.Error("Fire found no waiters")
		}
	})
	s.Schedule(2, func() {
		if n := sig.Broadcast(); n != 2 {
			t.Errorf("Broadcast woke %d, want 2", n)
		}
	})
	s.Run()
	if len(woken) != 3 || woken[0] != "a" || woken[1] != "b" || woken[2] != "c" {
		t.Fatalf("wake order %v, want FIFO [a b c]", woken)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	s := New(1)
	sig := NewSignal(s)
	var timedOut, gotIt bool
	s.Spawn("t1", func(p *Proc) {
		woken, err := sig.WaitTimeout(p, 2.0)
		if err != nil {
			t.Errorf("WaitTimeout: %v", err)
		}
		timedOut = !woken
	})
	s.Spawn("t2", func(p *Proc) {
		p.Sleep(3) // miss the first waiter's window
		woken, err := sig.WaitTimeout(p, 10.0)
		if err != nil {
			t.Errorf("WaitTimeout: %v", err)
		}
		gotIt = woken
	})
	s.Schedule(4, func() { sig.Fire() })
	s.Run()
	if !timedOut {
		t.Fatal("first waiter should have timed out")
	}
	if !gotIt {
		t.Fatal("second waiter should have been woken before timeout")
	}
}

func TestChanPutGet(t *testing.T) {
	s := New(1)
	c := NewChan(s, 0)
	var got []int
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, err := c.Get(p)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			got = append(got, v.(int))
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			if err := c.Put(p, i); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
	})
	s.Run()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("messages out of order: %v", got)
		}
	}
}

func TestChanBoundedBlocksPutter(t *testing.T) {
	s := New(1)
	c := NewChan(s, 2)
	var putDone float64 = -1
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if err := c.Put(p, i); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
		putDone = p.Now()
	})
	s.Spawn("consumer", func(p *Proc) {
		p.Sleep(5)
		if _, err := c.Get(p); err != nil {
			t.Errorf("Get: %v", err)
		}
	})
	s.Run()
	if putDone != 5 {
		t.Fatalf("third Put completed at %v, want 5 (after a Get freed space)", putDone)
	}
}

func TestChanGetTimeout(t *testing.T) {
	s := New(1)
	c := NewChan(s, 0)
	var firstOK, secondOK bool
	var firstT float64
	s.Spawn("consumer", func(p *Proc) {
		_, ok, err := c.GetTimeout(p, 2)
		if err != nil {
			t.Errorf("GetTimeout: %v", err)
		}
		firstOK, firstT = ok, p.Now()
		v, ok, err := c.GetTimeout(p, 10)
		if err != nil {
			t.Errorf("GetTimeout: %v", err)
		}
		secondOK = ok && v.(int) == 42
	})
	s.Schedule(3, func() { c.TryPut(42) })
	s.Run()
	if firstOK || firstT != 2 {
		t.Fatalf("first GetTimeout ok=%v t=%v, want timeout at 2", firstOK, firstT)
	}
	if !secondOK {
		t.Fatal("second GetTimeout should have received 42")
	}
}

func TestChanInterruptWhileBlocked(t *testing.T) {
	s := New(1)
	c := NewChan(s, 0)
	var got error
	p := s.Spawn("consumer", func(p *Proc) {
		_, err := c.Get(p)
		got = err
	})
	s.Schedule(1, func() { p.Kill() })
	s.Run()
	if !errors.Is(got, ErrKilled) {
		t.Fatalf("Get returned %v, want ErrKilled", got)
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	s := New(1)
	sem := NewSemaphore(s, 2)
	var order []string
	work := func(name string, hold float64) func(*Proc) {
		return func(p *Proc) {
			if err := sem.Acquire(p); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			order = append(order, name)
			p.Sleep(hold)
			sem.Release()
		}
	}
	s.Spawn("a", work("a", 10))
	s.Spawn("b", work("b", 10))
	s.Spawn("c", work("c", 1))
	s.Spawn("d", work("d", 1))
	s.Run()
	if len(order) != 4 || order[2] != "c" || order[3] != "d" {
		t.Fatalf("grant order %v, want [a b c d]", order)
	}
	if sem.Available() != 2 {
		t.Fatalf("permits leaked: %d available, want 2", sem.Available())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		s := New(42)
		var trace []float64
		for i := 0; i < 4; i++ {
			s.Spawn("w", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(s.Rand().Float64())
					trace = append(trace, p.Now())
				}
			})
		}
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: whatever the insertion order and times, events fire in
// nondecreasing time order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []float64) bool {
		s := New(7)
		var fired []float64
		for _, d := range delays {
			if d < 0 {
				d = -d
			}
			if d > 1e9 || d != d { // cap and drop NaN
				d = 0
			}
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(delays)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: a semaphore with n permits never admits more than n holders.
func TestQuickSemaphoreBound(t *testing.T) {
	f := func(permits uint8, procs uint8) bool {
		n := int(permits%4) + 1
		m := int(procs%16) + 1
		s := New(3)
		sem := NewSemaphore(s, n)
		holding, maxHolding := 0, 0
		for i := 0; i < m; i++ {
			s.Spawn("w", func(p *Proc) {
				if sem.Acquire(p) != nil {
					return
				}
				holding++
				if holding > maxHolding {
					maxHolding = holding
				}
				p.Sleep(s.Rand().Float64())
				holding--
				sem.Release()
			})
		}
		s.Run()
		return maxHolding <= n
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt run: count=%d", count)
	}
}
