package vgrid

import (
	"testing"

	"grads/internal/gis"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// macro builds the MacroGrid with a GIS carrying one selective package.
func macro(t *testing.T) (*topology.Grid, *gis.Service) {
	t.Helper()
	sim := simcore.New(1)
	g := topology.MacroGrid(sim)
	gs := gis.New(sim, g)
	gs.RegisterSoftware("ucsd1", "special", "/opt/special")
	gs.RegisterSoftware("ucsd2", "special", "/opt/special")
	return g, gs
}

func TestLooseBagPicksFastest(t *testing.T) {
	g, gs := macro(t)
	f := NewFinder(g, gs, nil)
	v, err := f.Find(Spec{Name: "bag", Kind: LooseBag, MinNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes) != 4 {
		t.Fatalf("got %d nodes", len(v.Nodes))
	}
	// The 12 IA-64 nodes (1.8 Gflop/s) are the fastest on the MacroGrid.
	for _, n := range v.Nodes {
		if n.Spec.Arch != topology.ArchIA64 {
			t.Fatalf("loose bag picked %s (%s), want IA-64 fastest", n.Name(), n.Spec.Arch)
		}
	}
	if v.Rate != 4*1.8e9 {
		t.Fatalf("rate = %v", v.Rate)
	}
}

func TestLooseBagMaxNodes(t *testing.T) {
	g, gs := macro(t)
	f := NewFinder(g, gs, nil)
	v, err := f.Find(Spec{Name: "bag", Kind: LooseBag, MinNodes: 2, MaxNodes: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes) != 20 {
		t.Fatalf("got %d nodes, want MaxNodes=20", len(v.Nodes))
	}
}

func TestClusterBindsSingleSite(t *testing.T) {
	g, gs := macro(t)
	f := NewFinder(g, gs, nil)
	v, err := f.Find(Spec{Name: "mpi", Kind: Cluster, MinNodes: 10, Arch: topology.ArchIA32})
	if err != nil {
		t.Fatal(err)
	}
	site := v.Nodes[0].Site()
	for _, n := range v.Nodes {
		if n.Site() != site {
			t.Fatalf("cluster spans sites %s and %s", site.Name, n.Site().Name)
		}
		if n.Spec.Arch != topology.ArchIA32 {
			t.Fatalf("arch constraint violated: %s", n.Name())
		}
	}
	// Best IA-32 cluster of 10: UCSD's 10x 1.36 Gflop/s Athlons.
	if site.Name != "UCSD" {
		t.Fatalf("picked %s, want UCSD", site.Name)
	}
}

func TestClusterAvoidsLoadedSite(t *testing.T) {
	g, gs := macro(t)
	for _, n := range g.Site("UCSD").Nodes() {
		n.CPU.SetExternalLoad(4) // UCSD now effectively 5x slower
	}
	f := NewFinder(g, gs, nil)
	v, err := f.Find(Spec{Name: "mpi", Kind: Cluster, MinNodes: 10, Arch: topology.ArchIA32})
	if err != nil {
		t.Fatal(err)
	}
	if v.Nodes[0].Site().Name == "UCSD" {
		t.Fatal("picked the loaded site")
	}
}

func TestTightBagRespectsLatencyBound(t *testing.T) {
	g, gs := macro(t)
	f := NewFinder(g, gs, nil)
	// 12 ms bound: only UTK-UIUC (11 ms) qualifies as a cross-site pair.
	v, err := f.Find(Spec{Name: "tight", Kind: TightBag, MinNodes: 40, MaxLatency: 0.012})
	if err != nil {
		t.Fatal(err)
	}
	sites := map[string]bool{}
	for _, n := range v.Nodes {
		sites[n.Site().Name] = true
	}
	for s := range sites {
		if s != "UTK" && s != "UIUC" {
			t.Fatalf("tight bag includes %s beyond the latency bound", s)
		}
	}
	if len(v.Nodes) != 40 {
		t.Fatalf("got %d nodes", len(v.Nodes))
	}
	// A 40-node single site does not exist, so the bound was necessary.
	if !sites["UTK"] || !sites["UIUC"] {
		t.Fatalf("expected both UTK and UIUC, got %v", sites)
	}
}

func TestTightBagImpossibleBound(t *testing.T) {
	g, gs := macro(t)
	f := NewFinder(g, gs, nil)
	// 1 ms bound: no cross-site group; largest single site has 24 nodes.
	if _, err := f.Find(Spec{Name: "x", Kind: TightBag, MinNodes: 30, MaxLatency: 0.001}); err == nil {
		t.Fatal("impossible tight bag satisfied")
	}
}

func TestSoftwareConstraint(t *testing.T) {
	g, gs := macro(t)
	f := NewFinder(g, gs, nil)
	v, err := f.Find(Spec{Name: "sw", Kind: LooseBag, MinNodes: 2, Software: []string{"special"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range v.Nodes {
		if !gs.HasSoftware(n.Name(), "special") {
			t.Fatalf("%s lacks the required software", n.Name())
		}
	}
	if _, err := f.Find(Spec{Name: "sw", Kind: LooseBag, MinNodes: 3, Software: []string{"special"}}); err == nil {
		t.Fatal("only 2 nodes have the software; MinNodes=3 should fail")
	}
}

func TestDownNodesExcluded(t *testing.T) {
	g, gs := macro(t)
	for _, n := range g.Site("UH").Nodes() {
		n.SetDown(true)
	}
	f := NewFinder(g, gs, nil)
	v, err := f.Find(Spec{Name: "bag", Kind: LooseBag, MinNodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range v.Nodes {
		if n.Site().Name == "UH" {
			t.Fatal("selected a failed node")
		}
	}
	if _, err := f.Find(Spec{Name: "ia64", Kind: LooseBag, MinNodes: 1, Arch: topology.ArchIA64}); err == nil {
		t.Fatal("all IA-64 nodes are down; request should fail")
	}
}

func TestSpecValidation(t *testing.T) {
	g, gs := macro(t)
	f := NewFinder(g, gs, nil)
	if _, err := f.Find(Spec{Name: "zero", Kind: LooseBag}); err == nil {
		t.Fatal("MinNodes=0 accepted")
	}
	if _, err := f.Find(Spec{Name: "huge", Kind: Cluster, MinNodes: 1000}); err == nil {
		t.Fatal("oversized request accepted")
	}
	if LooseBag.String() != "LooseBag" || Cluster.String() != "Cluster" || TightBag.String() != "TightBag" {
		t.Fatal("Kind.String wrong")
	}
}
