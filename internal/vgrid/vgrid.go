// Package vgrid implements the virtual Grid abstraction the paper's
// conclusion previews ("our new Virtual Grid Application Development
// (VGrADS) project ... adds an abstraction layer called virtual Grids
// (vgrids) to the current Grid infrastructure"): an application asks for a
// *class* of resource aggregate — a loose bag, a tight bag, or a cluster,
// qualified by architecture, memory and speed constraints — and the vgrid
// finder binds it to the best concrete node set currently available,
// using GIS capability data and NWS forecasts. The GrADS schedulers and
// reschedulers then operate inside the returned vgrid.
package vgrid

import (
	"fmt"
	"math"
	"sort"

	"grads/internal/gis"
	"grads/internal/nws"
	"grads/internal/topology"
)

// Kind classifies the connectivity an application needs from its vgrid.
type Kind int

// Vgrid kinds, from weakest to strongest connectivity guarantee.
const (
	// LooseBag: any nodes anywhere (throughput-oriented workloads).
	LooseBag Kind = iota
	// TightBag: nodes whose pairwise one-way latency stays under the
	// spec's MaxLatency (loosely coupled parallel jobs).
	TightBag
	// Cluster: nodes of a single site sharing a LAN (tightly coupled MPI).
	Cluster
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LooseBag:
		return "LooseBag"
	case TightBag:
		return "TightBag"
	case Cluster:
		return "Cluster"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Spec is a vgrid request.
type Spec struct {
	Name string
	Kind Kind

	MinNodes int
	MaxNodes int // 0 = MinNodes

	Arch       topology.Arch // empty = any
	MinMemMB   float64
	MinMHz     float64
	MaxLatency float64  // TightBag only; 0 = 50 ms
	Software   []string // packages that must be installed (GIS)
}

// VGrid is a bound virtual Grid: the concrete nodes backing a Spec.
type VGrid struct {
	Spec  Spec
	Nodes []*topology.Node
	// Rate is the selection score: the forecast aggregate effective speed
	// (lock-step for Cluster/TightBag, additive for LooseBag), in flop/s.
	Rate float64
}

// Finder binds specs to concrete resources.
type Finder struct {
	Grid    *topology.Grid
	GIS     *gis.Service
	Weather *nws.Service
}

// NewFinder creates a Finder. GIS and Weather may be nil (no software
// filtering; instantaneous CPU availability).
func NewFinder(grid *topology.Grid, g *gis.Service, w *nws.Service) *Finder {
	return &Finder{Grid: grid, GIS: g, Weather: w}
}

// avail returns a node's forecast availability.
func (f *Finder) avail(n *topology.Node) float64 {
	if f.Weather != nil {
		return f.Weather.CPUForecast(n.Name())
	}
	return n.CPU.Availability()
}

// speed is a node's forecast effective speed.
func (f *Finder) speed(n *topology.Node) float64 {
	return n.Spec.Flops() * f.avail(n)
}

// eligible applies the node-local constraints.
func (f *Finder) eligible(n *topology.Node, s Spec) bool {
	if n.Down() {
		return false
	}
	if s.Arch != "" && n.Spec.Arch != s.Arch {
		return false
	}
	if n.Spec.MemMB < s.MinMemMB || n.Spec.MHz < s.MinMHz {
		return false
	}
	for _, pkg := range s.Software {
		if f.GIS == nil || !f.GIS.HasSoftware(n.Name(), pkg) {
			return false
		}
	}
	return true
}

// Find binds the spec to the best matching concrete node set, or returns
// an error when no aggregate satisfies it.
func (f *Finder) Find(s Spec) (*VGrid, error) {
	if s.MinNodes <= 0 {
		return nil, fmt.Errorf("vgrid: %s: MinNodes must be positive", s.Name)
	}
	max := s.MaxNodes
	if max < s.MinNodes {
		max = s.MinNodes
	}
	var pool []*topology.Node
	for _, n := range f.Grid.Nodes() {
		if f.eligible(n, s) {
			pool = append(pool, n)
		}
	}
	if len(pool) < s.MinNodes {
		return nil, fmt.Errorf("vgrid: %s: only %d eligible nodes, need %d",
			s.Name, len(pool), s.MinNodes)
	}
	switch s.Kind {
	case LooseBag:
		return f.bindLooseBag(s, pool, max)
	case TightBag:
		return f.bindTightBag(s, pool, max)
	case Cluster:
		return f.bindCluster(s, pool, max)
	}
	return nil, fmt.Errorf("vgrid: %s: unknown kind %v", s.Name, s.Kind)
}

// bindLooseBag takes the fastest nodes anywhere; score is additive.
func (f *Finder) bindLooseBag(s Spec, pool []*topology.Node, max int) (*VGrid, error) {
	sortBySpeed(pool, f.speed)
	if len(pool) > max {
		pool = pool[:max]
	}
	rate := 0.0
	for _, n := range pool {
		rate += f.speed(n)
	}
	return &VGrid{Spec: s, Nodes: pool, Rate: rate}, nil
}

// bindCluster picks the single site whose best nodes give the highest
// lock-step rate.
func (f *Finder) bindCluster(s Spec, pool []*topology.Node, max int) (*VGrid, error) {
	bySite := groupBySite(pool)
	var best []*topology.Node
	bestRate := -1.0
	for _, nodes := range bySite {
		if len(nodes) < s.MinNodes {
			continue
		}
		sortBySpeed(nodes, f.speed)
		if len(nodes) > max {
			nodes = nodes[:max]
		}
		rate := lockstep(nodes, f.speed)
		if rate > bestRate {
			bestRate, best = rate, nodes
		}
	}
	if best == nil {
		return nil, fmt.Errorf("vgrid: %s: no single site has %d eligible nodes", s.Name, s.MinNodes)
	}
	return &VGrid{Spec: s, Nodes: best, Rate: bestRate}, nil
}

// bindTightBag grows a latency-bounded site group around each site and
// picks the group with the best lock-step rate.
func (f *Finder) bindTightBag(s Spec, pool []*topology.Node, max int) (*VGrid, error) {
	maxLat := s.MaxLatency
	if maxLat <= 0 {
		maxLat = 0.050
	}
	bySite := groupBySite(pool)
	siteNames := make([]string, 0, len(bySite))
	for name := range bySite {
		siteNames = append(siteNames, name)
	}
	sort.Strings(siteNames)

	var best []*topology.Node
	bestRate := -1.0
	for _, center := range siteNames {
		// Candidate group: the center site plus every site reachable
		// within the latency bound (with pairwise checks).
		group := []string{center}
		for _, other := range siteNames {
			if other == center {
				continue
			}
			ok := true
			for _, member := range group {
				lat := f.siteLatency(member, other)
				if math.IsInf(lat, 1) || lat > maxLat {
					ok = false
					break
				}
			}
			if ok {
				group = append(group, other)
			}
		}
		var nodes []*topology.Node
		for _, site := range group {
			nodes = append(nodes, bySite[site]...)
		}
		if len(nodes) < s.MinNodes {
			continue
		}
		sortBySpeed(nodes, f.speed)
		if len(nodes) > max {
			nodes = nodes[:max]
		}
		rate := lockstep(nodes, f.speed)
		if rate > bestRate {
			bestRate, best = rate, nodes
		}
	}
	if best == nil {
		return nil, fmt.Errorf("vgrid: %s: no latency-bounded group has %d eligible nodes", s.Name, s.MinNodes)
	}
	return &VGrid{Spec: s, Nodes: best, Rate: bestRate}, nil
}

// siteLatency returns the one-way latency between two sites, +Inf when
// unconnected.
func (f *Finder) siteLatency(a, b string) float64 {
	if a == b {
		return f.Grid.Site(a).LAN.Latency()
	}
	if f.Weather != nil {
		if lat := f.Weather.LatencyForecast(a, b); lat > 0 {
			return lat
		}
	}
	w := f.Grid.WAN(a, b)
	if w == nil {
		return math.Inf(1)
	}
	return w.Latency()
}

// groupBySite partitions nodes by site name.
func groupBySite(pool []*topology.Node) map[string][]*topology.Node {
	out := map[string][]*topology.Node{}
	for _, n := range pool {
		out[n.Site().Name] = append(out[n.Site().Name], n)
	}
	return out
}

// sortBySpeed orders nodes by descending speed, name-stable.
func sortBySpeed(ns []*topology.Node, speed func(*topology.Node) float64) {
	sort.SliceStable(ns, func(i, j int) bool {
		si, sj := speed(ns[i]), speed(ns[j])
		if si != sj {
			return si > sj
		}
		return ns[i].Name() < ns[j].Name()
	})
}

// lockstep is count x slowest speed.
func lockstep(ns []*topology.Node, speed func(*topology.Node) float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	slowest := math.Inf(1)
	for _, n := range ns {
		if s := speed(n); s < slowest {
			slowest = s
		}
	}
	return slowest * float64(len(ns))
}
