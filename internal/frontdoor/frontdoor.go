package frontdoor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"grads/internal/faultinject"
	"grads/internal/metasched"
	"grads/internal/resilience"
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// BrokerSpec declares one broker of the serving fleet: a metascheduler
// configuration over its own site group, plus the nominal capacity the
// balancer weighs it by (0 defaults to the grid's node count).
type BrokerSpec struct {
	Name     string
	Config   metasched.Config
	Capacity float64
}

// Config wires a FrontDoor over a broker fleet.
type Config struct {
	Sim     *simcore.Sim
	Brokers []BrokerSpec

	// Policy is the routing policy (default round-robin).
	Policy Policy
	// Classes are the QoS request classes (default DefaultClasses).
	Classes []Class

	// Seed feeds the front door's private random source — routing and QoS
	// draws never touch the kernel's source, so adding a front door to a
	// simulation leaves every other component's stream untouched.
	Seed int64

	// DropAt is the per-class pressure (observed p95 over target) past
	// which drop probability ramps linearly to 1 (default 2).
	DropAt float64
	// MinSamples is how many completions a class needs before its
	// pressure estimate is trusted (default 8).
	MinSamples int

	// Breaker parameterizes the per-class SLO breakers; the zero value
	// gets a serving-tuned default (5 consecutive breaches trip, 120 s
	// cooldown, no jitter). An open breaker sheds the class entirely
	// until its cooldown probes succeed.
	Breaker resilience.BreakerConfig
	// BrownoutSuspects, when positive, diverts requests away from brokers
	// whose failure detector currently suspects at least this many nodes
	// (and drops them when every broker is browned out). Brokers without
	// a detector are never considered browned out.
	BrownoutSuspects int

	// Quiet suppresses the front door's own telemetry (events and hub
	// metrics), so a single-broker front door produces a trace
	// byte-identical to direct metascheduler submission.
	Quiet bool
}

// broker is the front door's record of one fleet member.
type broker struct {
	name   string
	sched  *metasched.Scheduler
	routed int
	doneN  int
}

// FrontDoor is the serving entry point: it realizes a request stream onto
// the broker fleet, one routing and QoS decision per request.
type FrontDoor struct {
	cfg     Config
	sim     *simcore.Sim
	rng     *rand.Rand
	policy  Policy
	brokers []*broker
	views   []brokerView // policy-visible state, index-aligned with brokers
	classes []*classState
	clsIdx  map[string]int
	pending map[string]pendingReq

	latAll   telemetry.Histogram
	requests int
	drops    int
	offloads int
	started  bool
}

// pendingReq ties an in-flight job back to its request.
type pendingReq struct {
	class  int
	broker int
}

// New builds a FrontDoor and its broker fleet. Brokers are created here
// (held open, named, completion-hooked) but not started; Start spawns them
// and schedules the request stream.
func New(cfg Config) (*FrontDoor, error) {
	if cfg.Sim == nil {
		return nil, errors.New("frontdoor: Sim is required")
	}
	if len(cfg.Brokers) == 0 {
		return nil, errors.New("frontdoor: at least one broker is required")
	}
	if cfg.Policy == nil {
		cfg.Policy = &RoundRobin{}
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = DefaultClasses()
	}
	if cfg.DropAt <= 0 {
		cfg.DropAt = 2
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 8
	}
	if cfg.Breaker == (resilience.BreakerConfig{}) {
		cfg.Breaker = resilience.BreakerConfig{FailureThreshold: 5, Cooldown: 120, HalfOpenProbes: 3}
	}
	clsIdx, err := classByName(cfg.Classes)
	if err != nil {
		return nil, err
	}
	f := &FrontDoor{
		cfg:     cfg,
		sim:     cfg.Sim,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		policy:  cfg.Policy,
		clsIdx:  clsIdx,
		pending: make(map[string]pendingReq),
	}
	for _, c := range cfg.Classes {
		f.classes = append(f.classes, &classState{
			cls:     c,
			breaker: resilience.NewBreaker(cfg.Sim, "qos:"+c.Name, cfg.Breaker, nil),
		})
	}
	for i, bs := range cfg.Brokers {
		mc := bs.Config
		if mc.Sim == nil {
			mc.Sim = cfg.Sim
		}
		if mc.Sim != cfg.Sim {
			return nil, fmt.Errorf("frontdoor: broker %q runs on a different Sim", bs.Name)
		}
		mc.Name = bs.Name
		mc.HoldOpen = true
		idx, userDone := i, mc.OnJobDone
		mc.OnJobDone = func(j *metasched.Job) {
			f.onDone(idx, j)
			if userDone != nil {
				userDone(j)
			}
		}
		s, err := metasched.New(mc)
		if err != nil {
			return nil, fmt.Errorf("frontdoor: broker %q: %w", bs.Name, err)
		}
		capacity := bs.Capacity
		if capacity <= 0 {
			capacity = float64(len(mc.Grid.Nodes()))
		}
		f.brokers = append(f.brokers, &broker{name: bs.Name, sched: s})
		f.views = append(f.views, brokerView{capacity: capacity})
	}
	return f, nil
}

// Start spawns every broker and schedules the request stream: each request
// fires its routing decision at its arrival instant, and intake closes
// after the last one, so broker daemons retire exactly when the system
// drains. Start must be called before the simulation runs.
func (f *FrontDoor) Start(reqs []Request) error {
	if f.started {
		return errors.New("frontdoor: already started")
	}
	for _, r := range reqs {
		if _, ok := f.clsIdx[r.Class]; !ok {
			return fmt.Errorf("frontdoor: request %d has unknown class %q", r.ID, r.Class)
		}
	}
	f.started = true
	for _, b := range f.brokers {
		b.sched.Start()
	}
	for _, r := range reqs {
		req := r
		f.sim.At(req.At, func() { f.handle(req) })
	}
	closeAt := 0.0
	if len(reqs) > 0 {
		closeAt = reqs[len(reqs)-1].At
	}
	f.sim.At(closeAt, func() {
		for _, b := range f.brokers {
			b.sched.CloseIntake()
		}
	})
	return nil
}

// Stop halts every broker.
func (f *FrontDoor) Stop() {
	for _, b := range f.brokers {
		b.sched.Stop()
	}
}

// NumBrokers returns the fleet size.
func (f *FrontDoor) NumBrokers() int { return len(f.brokers) }

// Broker returns fleet member i's scheduler (records, lease ledger).
func (f *FrontDoor) Broker(i int) *metasched.Scheduler { return f.brokers[i].sched }

// handle makes the routing and QoS decision for one arrived request.
func (f *FrontDoor) handle(r Request) {
	ci := f.clsIdx[r.Class]
	st := f.classes[ci]
	f.requests++
	st.requests++

	// Brownout shedding: an open SLO breaker fails the class fast until
	// its cooldown probes pass.
	if !st.breaker.Allow() {
		f.drop(r, st, "breaker")
		return
	}
	// Pressure shedding: past DropAt, drop probability ramps to 1.
	pressure := st.pressure(f.cfg.MinSamples)
	if over := pressure - f.cfg.DropAt; over > 0 {
		if f.rng.Float64() < math.Min(over, 1) {
			f.drop(r, st, "pressure")
			return
		}
	}

	b := f.policy.Pick(f.views, f.rng)
	diverted := false
	if f.brownedOut(b) {
		alt := f.divertTarget(b, true)
		if alt < 0 {
			f.drop(r, st, "brownout")
			return
		}
		b, diverted = alt, true
	} else if pressure > 1 && len(f.brokers) > 1 {
		// Offload: under SLO pressure, probabilistically divert away from
		// the policy's choice to the least-loaded alternative.
		if f.rng.Float64() < math.Min(pressure-1, 1) {
			if alt := f.divertTarget(b, false); alt >= 0 {
				b, diverted = alt, true
			}
		}
	}

	name := fmt.Sprintf("%s-%06d", r.Class, r.ID)
	if _, err := f.brokers[b].sched.Submit(st.cls.Spec(name, f.sim.Now())); err != nil {
		f.drop(r, st, "reject")
		return
	}
	f.pending[name] = pendingReq{class: ci, broker: b}
	f.views[b].outstanding++
	f.brokers[b].routed++
	if diverted {
		st.offloads++
		f.offloads++
	}
	if tel := f.tel(); tel != nil {
		tel.Counter("frontdoor", "requests").Inc()
		if diverted {
			tel.Counter("frontdoor", "offloads").Inc()
		}
		tel.Emit(telemetry.Event{
			Type: telemetry.EvReqRoute, Comp: "frontdoor", Name: name,
			Args: []telemetry.Arg{
				telemetry.S("class", r.Class),
				telemetry.S("broker", f.brokers[b].name),
				telemetry.B("offload", diverted),
			},
		})
	}
}

// drop sheds one request.
func (f *FrontDoor) drop(r Request, st *classState, reason string) {
	f.drops++
	st.drops++
	if tel := f.tel(); tel != nil {
		tel.Counter("frontdoor", "requests").Inc()
		tel.Counter("frontdoor", "drops").Inc()
		tel.Emit(telemetry.Event{
			Type: telemetry.EvReqDrop, Comp: "frontdoor", Name: fmt.Sprintf("%s-%06d", r.Class, r.ID),
			Args: []telemetry.Arg{
				telemetry.S("class", r.Class),
				telemetry.S("reason", reason),
			},
		})
	}
}

// onDone observes one terminal job: completion latency feeds the broker's
// bandit statistics, the class histogram and the class SLO breaker.
func (f *FrontDoor) onDone(bi int, job *metasched.Job) {
	name := job.Spec.Name
	pd, ok := f.pending[name]
	if !ok {
		return // not a front-door submission
	}
	delete(f.pending, name)
	submit, _, finish := job.Times()
	lat := finish - submit

	v := &f.views[bi]
	v.outstanding--
	v.n++
	v.meanLat += (lat - v.meanLat) / float64(v.n)
	f.brokers[bi].doneN++

	st := f.classes[pd.class]
	completed := job.State() == metasched.JobDone
	if completed {
		st.done++
	} else {
		st.failed++
	}
	st.hist.Observe(lat)
	f.latAll.Observe(lat)
	breach := !completed || (st.cls.Target > 0 && lat > st.cls.Target)
	if breach {
		st.breaches++
		st.breaker.Record(faultinject.ErrUnavailable)
	} else {
		st.breaker.Record(nil)
	}
	if tel := f.tel(); tel != nil {
		tel.Histogram("frontdoor", "latency_"+st.cls.Name).Observe(lat)
		tel.Emit(telemetry.Event{
			Type: telemetry.EvReqDone, Comp: "frontdoor", Name: name,
			Args: []telemetry.Arg{
				telemetry.S("class", st.cls.Name),
				telemetry.S("broker", f.brokers[bi].name),
				telemetry.B("ok", completed),
				telemetry.F("latency", lat),
			},
		})
	}
}

// tel returns the telemetry hub, or nil when detached or Quiet.
func (f *FrontDoor) tel() *telemetry.Telemetry {
	if f.cfg.Quiet {
		return nil
	}
	return f.sim.Telemetry()
}

// brownedOut reports whether broker i's failure detector currently sees a
// storm of at least BrownoutSuspects suspected nodes.
func (f *FrontDoor) brownedOut(i int) bool {
	if f.cfg.BrownoutSuspects <= 0 {
		return false
	}
	det := f.brokers[i].sched.Detector()
	return det != nil && det.SuspectedCount() >= f.cfg.BrownoutSuspects
}

// divertTarget picks the least-loaded (outstanding per capacity) broker
// other than exclude; with skipBrowned, browned-out brokers are also
// ineligible. Returns -1 when no broker qualifies.
func (f *FrontDoor) divertTarget(exclude int, skipBrowned bool) int {
	best, bestLoad := -1, math.Inf(1)
	for i := range f.views {
		if i == exclude || (skipBrowned && f.brownedOut(i)) {
			continue
		}
		load := float64(f.views[i].outstanding) / f.views[i].capacity
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// BrokerLoad is one fleet member's routing outcome.
type BrokerLoad struct {
	Name     string
	Capacity float64
	Routed   int
	Done     int
	MeanLat  float64
}

// Stats is the front door's flattened outcome for experiment tables.
type Stats struct {
	Requests int
	Drops    int
	Offloads int
	Pending  int // routed but not yet terminal
	Classes  []ClassStats
	Brokers  []BrokerLoad
	Fairness float64 // Jain index over capacity-normalized routed load
	Mean     float64 // all-requests completion latency
	P50      float64
	P95      float64
	P99      float64
}

// Stats snapshots the front door's ledger. The conservation invariant
// Requests == Drops + sum(Done+Failed) + Pending always holds.
func (f *FrontDoor) Stats() Stats {
	qs := f.latAll.Quantiles(0.5, 0.95, 0.99)
	s := Stats{
		Requests: f.requests,
		Drops:    f.drops,
		Offloads: f.offloads,
		Pending:  len(f.pending),
		Fairness: f.fairness(),
		Mean:     f.latAll.Mean(),
		P50:      qs[0],
		P95:      qs[1],
		P99:      qs[2],
	}
	for _, st := range f.classes {
		s.Classes = append(s.Classes, st.stats())
	}
	for i, b := range f.brokers {
		s.Brokers = append(s.Brokers, BrokerLoad{
			Name:     b.name,
			Capacity: f.views[i].capacity,
			Routed:   b.routed,
			Done:     b.doneN,
			MeanLat:  f.views[i].meanLat,
		})
	}
	return s
}

// fairness is the Jain index over per-broker routed load normalized by
// capacity: 1 is a perfectly even spread, 1/n a single hot broker.
func (f *FrontDoor) fairness() float64 {
	sum, sumSq := 0.0, 0.0
	for i, b := range f.brokers {
		x := float64(b.routed) / f.views[i].capacity
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(f.brokers)) * sumSq)
}
