package frontdoor

import (
	"math"
	"reflect"
	"testing"
)

// TestParseArrivalsGrammar: the documented forms parse to the expected
// phases, canonicalized (sorted phases, sorted mixes, concrete defaults).
func TestParseArrivalsGrammar(t *testing.T) {
	got, err := ParseArrivals(
		"flash@0-3600:rate=0.1,peak=1,at=1800,hold=120,mix=int:1;" +
			" poisson@0-600:rate=0.25 ;" +
			"mmpp@600-1200:rate=0.1,hi=0.5,dwell=200;" +
			"wave@0-3600:rate=0.2,amp=0.5,period=1200,mix=bulk:1/int:3;" +
			"ramp@1200-1800:rate=0,to=0.4")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []Phase{
		{Kind: "poisson", Start: 0, End: 600, Rate: 0.25},
		{Kind: "flash", Start: 0, End: 3600, Rate: 0.1, Peak: 1, FlashAt: 1800, Hold: 120,
			Mix: []MixEntry{{Class: "int", Weight: 1}}},
		{Kind: "wave", Start: 0, End: 3600, Rate: 0.2, Amp: 0.5, Period: 1200,
			Mix: []MixEntry{{Class: "bulk", Weight: 1}, {Class: "int", Weight: 3}}},
		{Kind: "mmpp", Start: 600, End: 1200, Rate: 0.1, Hi: 0.5, Dwell: 200, HiDwell: 200},
		{Kind: "ramp", Start: 1200, End: 1800, Rate: 0, To: 0.4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed phases:\n got %+v\nwant %+v", got, want)
	}
}

// TestParseArrivalsErrors: malformed specs are rejected with a diagnostic
// naming the offending phase.
func TestParseArrivalsErrors(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"empty", ""},
		{"separators only", ";;;"},
		{"no at", "poisson0-10:rate=1"},
		{"no colon", "poisson@0-10"},
		{"no window dash", "poisson@10:rate=1"},
		{"window end before start", "poisson@10-5:rate=1"},
		{"window end equals start", "poisson@5-5:rate=1"},
		{"negative start", "poisson@-1-10:rate=1"},
		{"NaN start", "poisson@NaN-10:rate=1"},
		{"infinite end", "poisson@0-+Inf:rate=1"},
		{"unknown kind", "burst@0-10:rate=1"},
		{"missing rate", "poisson@0-10:mix=int:1"},
		{"zero poisson rate", "poisson@0-10:rate=0"},
		{"negative rate", "poisson@0-10:rate=-1"},
		{"bare param", "poisson@0-10:rate"},
		{"unknown param", "poisson@0-10:rate=1,burst=2"},
		{"duplicate param", "poisson@0-10:rate=1,rate=2"},
		{"foreign param", "poisson@0-10:rate=1,amp=0.5"},
		{"mmpp missing hi", "mmpp@0-10:rate=1,dwell=5"},
		{"mmpp missing dwell", "mmpp@0-10:rate=1,hi=2"},
		{"mmpp zero hidwell", "mmpp@0-10:rate=1,hi=2,dwell=5,hidwell=0"},
		{"wave missing amp", "wave@0-10:rate=1,period=5"},
		{"wave amp above one", "wave@0-10:rate=1,amp=1.5,period=5"},
		{"wave zero period", "wave@0-10:rate=1,amp=0.5,period=0"},
		{"flash missing at", "flash@0-10:rate=1,peak=2,hold=1"},
		{"flash at outside window", "flash@0-10:rate=1,peak=2,at=10,hold=1"},
		{"flash zero hold", "flash@0-10:rate=1,peak=2,at=5,hold=0"},
		{"ramp missing to", "ramp@0-10:rate=0"},
		{"ramp both zero", "ramp@0-10:rate=0,to=0"},
		{"mix no weight", "poisson@0-10:rate=1,mix=int"},
		{"mix empty class", "poisson@0-10:rate=1,mix=:1"},
		{"mix zero weight", "poisson@0-10:rate=1,mix=int:0"},
		{"mix duplicate class", "poisson@0-10:rate=1,mix=int:1/int:2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got, err := ParseArrivals(c.spec); err == nil {
				t.Fatalf("accepted %q: %+v", c.spec, got)
			}
		})
	}
}

// TestFormatArrivalsRoundTrip: FormatArrivals is the exact inverse of
// ParseArrivals on canonical phases.
func TestFormatArrivalsRoundTrip(t *testing.T) {
	spec := "poisson@0-600:rate=0.25,mix=batch:1/int:2.5;" +
		"mmpp@600-1200:rate=0.1,hi=0.5,dwell=200,hidwell=50;" +
		"wave@0-3600:rate=0.2,amp=0.5,period=1200;" +
		"flash@0-3600:rate=0.01,peak=1,at=1800,hold=120;" +
		"ramp@1200-1800:rate=0.1,to=0.4"
	phases, err := ParseArrivals(spec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	formatted := FormatArrivals(phases)
	again, err := ParseArrivals(formatted)
	if err != nil {
		t.Fatalf("reparse of %q: %v", formatted, err)
	}
	if !reflect.DeepEqual(phases, again) {
		t.Fatalf("round trip changed phases:\n was %+v\n got %+v", phases, again)
	}
	if FormatArrivals(again) != formatted {
		t.Fatalf("format not stable:\n was %q\n got %q", formatted, FormatArrivals(again))
	}
}

// FuzzParseArrivals: whatever the input, an accepted spec must be
// well-formed (finite windows and rates, positive weights) and must
// survive a format/parse round trip unchanged — reports render workloads
// with FormatArrivals for replay.
func FuzzParseArrivals(f *testing.F) {
	for _, seed := range []string{
		"poisson@0-600:rate=0.25",
		"poisson@0-600:rate=0.25,mix=int:6/batch:3/bulk:1",
		"mmpp@600-1200:rate=0.1,hi=0.5,dwell=200",
		"mmpp@0-10:rate=1,hi=2,dwell=5,hidwell=1",
		"wave@0-3600:rate=0.2,amp=0.5,period=1200",
		"flash@0-3600:rate=0.01,peak=1,at=1800,hold=120",
		"ramp@1200-1800:rate=0.1,to=0.4",
		"ramp@0-10:rate=0,to=1",
		"poisson@0-1:rate=1; wave@1-2:rate=1,amp=1,period=0.5 ;;",
		"poisson@0.5-600.25:rate=0.0001",
		"poisson@0-1e3:rate=1E-2",
		"poisson@0-10:rate=NaN",
		"flash@0-10:rate=1,peak=2,at=11,hold=1",
		"burst@0-10:rate=1",
		";;;",
		"poisson@@:rate=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		phases, err := ParseArrivals(spec)
		if err != nil {
			return
		}
		if len(phases) == 0 {
			t.Fatalf("accepted %q but returned no phases", spec)
		}
		for _, p := range phases {
			if math.IsNaN(p.Start) || p.Start < 0 || math.IsInf(p.End, 0) || p.End <= p.Start {
				t.Fatalf("accepted %q with bad window [%v, %v)", spec, p.Start, p.End)
			}
			for _, v := range []float64{p.Rate, p.Hi, p.Dwell, p.HiDwell, p.Amp, p.Period, p.Peak, p.FlashAt, p.Hold, p.To} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("accepted %q with bad parameter %v", spec, v)
				}
			}
			if p.peakRate() <= 0 && p.Kind != "flash" && p.Kind != "mmpp" {
				t.Fatalf("accepted %q with zero peak rate", spec)
			}
			for i, m := range p.Mix {
				if !validClassName(m.Class) || m.Weight <= 0 {
					t.Fatalf("accepted %q with bad mix entry %+v", spec, m)
				}
				if i > 0 && p.Mix[i-1].Class >= m.Class {
					t.Fatalf("accepted %q with unsorted mix %+v", spec, p.Mix)
				}
			}
		}
		formatted := FormatArrivals(phases)
		again, err := ParseArrivals(formatted)
		if err != nil {
			t.Fatalf("round trip of %q failed: %v (formatted %q)", spec, err, formatted)
		}
		if !reflect.DeepEqual(phases, again) {
			t.Fatalf("round trip of %q changed phases:\n was %+v\n got %+v", spec, phases, again)
		}
	})
}
