package frontdoor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Request is one generated front-door arrival: a QoS class materializing at
// a virtual instant. IDs are dense and ordered by arrival time.
type Request struct {
	ID    int
	Class string
	At    float64
}

// Generate realizes the arrival phases into a concrete request stream using
// only the supplied seeded source: thinning against each phase's peak rate
// turns the non-homogeneous intensity into arrival instants, and each
// arrival draws its class from the phase mix (or the classes' default
// weights). Overlapping phases superpose. The stream is sorted by time with
// deterministic tie-breaks, and IDs follow that order, so a (spec, classes,
// seed) triple always yields the identical stream.
func Generate(phases []Phase, classes []Class, rng *rand.Rand) ([]Request, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("frontdoor: no request classes")
	}
	if rng == nil {
		return nil, fmt.Errorf("frontdoor: Generate needs a seeded source")
	}
	byName := make(map[string]bool, len(classes))
	defMix := make([]MixEntry, len(classes))
	for i, c := range classes {
		if byName[c.Name] {
			return nil, fmt.Errorf("frontdoor: duplicate class %q", c.Name)
		}
		byName[c.Name] = true
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		defMix[i] = MixEntry{Class: c.Name, Weight: w}
	}

	type raw struct {
		at    float64
		phase int
	}
	var arrivals []raw
	for pi := range phases {
		p := &phases[pi]
		for _, m := range p.Mix {
			if !byName[m.Class] {
				return nil, fmt.Errorf("frontdoor: phase %d mix names unknown class %q", pi, m.Class)
			}
		}
		lmax := p.peakRate()
		if lmax <= 0 {
			continue
		}
		rate := p.rateFn(rng)
		// Thinning: candidate arrivals at the peak rate, accepted with
		// probability lambda(t)/lmax, realize the exact intensity.
		for t := p.Start; ; {
			t += rng.ExpFloat64() / lmax
			if t >= p.End {
				break
			}
			if rng.Float64()*lmax <= rate(t) {
				arrivals = append(arrivals, raw{at: t, phase: pi})
			}
		}
	}
	sort.SliceStable(arrivals, func(i, j int) bool {
		if arrivals[i].at != arrivals[j].at {
			return arrivals[i].at < arrivals[j].at
		}
		return arrivals[i].phase < arrivals[j].phase
	})

	// Class draws happen in final stream order (not per-phase generation
	// order), so the class sequence is a pure function of the sorted stream.
	reqs := make([]Request, len(arrivals))
	for i, a := range arrivals {
		mix := phases[a.phase].Mix
		if len(mix) == 0 {
			mix = defMix
		}
		reqs[i] = Request{ID: i, Class: drawClass(mix, rng), At: a.at}
	}
	return reqs, nil
}

// drawClass samples one class from the mix weights.
func drawClass(mix []MixEntry, rng *rand.Rand) string {
	total := 0.0
	for _, m := range mix {
		total += m.Weight
	}
	x := rng.Float64() * total
	for _, m := range mix {
		x -= m.Weight
		if x < 0 {
			return m.Class
		}
	}
	return mix[len(mix)-1].Class
}

// peakRate is the phase's maximum instantaneous rate, the thinning bound.
func (p *Phase) peakRate() float64 {
	switch p.Kind {
	case "mmpp":
		return math.Max(p.Rate, p.Hi)
	case "wave":
		return p.Rate * (1 + p.Amp)
	case "flash":
		return math.Max(p.Rate, p.Peak)
	case "ramp":
		return math.Max(p.Rate, p.To)
	}
	return p.Rate
}

// rateFn returns the phase's instantaneous intensity lambda(t). For mmpp
// the modulating state sequence is realized up front from rng (exponential
// dwells alternating low/high from the low state), so the returned function
// is pure and the draw order is fixed.
func (p *Phase) rateFn(rng *rand.Rand) func(t float64) float64 {
	switch p.Kind {
	case "poisson":
		r := p.Rate
		return func(float64) float64 { return r }
	case "mmpp":
		// switches[i] is the instant of the i-th state flip; the state at t
		// is high iff the number of flips before t is odd.
		var switches []float64
		t, high := p.Start, false
		for t < p.End {
			mean := p.Dwell
			if high {
				mean = p.HiDwell
			}
			t += rng.ExpFloat64() * mean
			high = !high
			switches = append(switches, t)
		}
		lo, hi := p.Rate, p.Hi
		return func(t float64) float64 {
			n := sort.SearchFloat64s(switches, t)
			if n%2 == 1 {
				return hi
			}
			return lo
		}
	case "wave":
		base, amp, period, start := p.Rate, p.Amp, p.Period, p.Start
		return func(t float64) float64 {
			return base * (1 + amp*math.Sin(2*math.Pi*(t-start)/period))
		}
	case "flash":
		base, peak, from, until := p.Rate, p.Peak, p.FlashAt, p.FlashAt+p.Hold
		return func(t float64) float64 {
			if t >= from && t < until {
				return peak
			}
			return base
		}
	case "ramp":
		from, to, start, span := p.Rate, p.To, p.Start, p.End-p.Start
		return func(t float64) float64 {
			return from + (to-from)*(t-start)/span
		}
	}
	return func(float64) float64 { return 0 }
}
