package frontdoor

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func genFrom(t *testing.T, spec string, seed int64) []Request {
	t.Helper()
	phases, err := ParseArrivals(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	reqs, err := Generate(phases, DefaultClasses(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("generate %q: %v", spec, err)
	}
	return reqs
}

// TestGenerateDeterministic: a (spec, classes, seed) triple always yields
// the identical stream; a different seed yields a different one.
func TestGenerateDeterministic(t *testing.T) {
	spec := "wave@0-4000:rate=0.2,amp=0.5,period=1000;flash@0-4000:rate=0,peak=0.5,at=2000,hold=200,mix=int:1"
	a := genFrom(t, spec, 11)
	b := genFrom(t, spec, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := genFrom(t, spec, 12)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
	for i, r := range a {
		if r.ID != i {
			t.Fatalf("request %d has ID %d (IDs must be dense in time order)", i, r.ID)
		}
		if i > 0 && r.At < a[i-1].At {
			t.Fatalf("request %d at %g precedes request %d at %g", i, r.At, i-1, a[i-1].At)
		}
	}
}

// TestGeneratePoissonRate: a homogeneous phase realizes close to rate*T
// arrivals, all inside the window.
func TestGeneratePoissonRate(t *testing.T) {
	reqs := genFrom(t, "poisson@100-10100:rate=0.2", 1)
	want := 0.2 * 10000
	if got := float64(len(reqs)); math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("got %g arrivals, want about %g", got, want)
	}
	for _, r := range reqs {
		if r.At < 100 || r.At >= 10100 {
			t.Fatalf("arrival %g outside window [100, 10100)", r.At)
		}
	}
}

// TestGenerateMixProportions: class draws follow the phase mix.
func TestGenerateMixProportions(t *testing.T) {
	reqs := genFrom(t, "poisson@0-20000:rate=0.3,mix=int:3/bulk:1", 2)
	counts := map[string]int{}
	for _, r := range reqs {
		counts[r.Class]++
	}
	if counts["batch"] != 0 {
		t.Fatalf("mix excluded batch but generated %d", counts["batch"])
	}
	frac := float64(counts["int"]) / float64(len(reqs))
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("int fraction %g, want about 0.75", frac)
	}
}

// TestGenerateFlash: the flash window is much denser than the baseline.
func TestGenerateFlash(t *testing.T) {
	reqs := genFrom(t, "flash@0-10000:rate=0.02,peak=1,at=4000,hold=1000", 3)
	in, out := 0, 0
	for _, r := range reqs {
		if r.At >= 4000 && r.At < 5000 {
			in++
		} else {
			out++
		}
	}
	// Inside: ~1000 arrivals over 1000 s; outside: ~180 over 9000 s.
	inRate, outRate := float64(in)/1000, float64(out)/9000
	if inRate < 20*outRate {
		t.Fatalf("flash density %g not well above baseline %g", inRate, outRate)
	}
}

// TestGenerateRamp: a 0->r ramp loads the second half of the window more
// heavily than the first.
func TestGenerateRamp(t *testing.T) {
	reqs := genFrom(t, "ramp@0-10000:rate=0,to=0.4", 4)
	lo, hi := 0, 0
	for _, r := range reqs {
		if r.At < 5000 {
			lo++
		} else {
			hi++
		}
	}
	// Expected split is 1:3 (integral of a linear ramp).
	if lo == 0 || float64(hi)/float64(lo) < 2 {
		t.Fatalf("ramp split lo=%d hi=%d, want hi about 3x lo", lo, hi)
	}
}

// TestGenerateMMPP: the modulated stream's volume lands between the pure
// low-rate and pure high-rate extremes, away from both.
func TestGenerateMMPP(t *testing.T) {
	reqs := genFrom(t, "mmpp@0-40000:rate=0.05,hi=0.5,dwell=500", 5)
	n := float64(len(reqs))
	// Equal mean dwells: expected rate is the average 0.275/s over 40000 s.
	if n < 0.1*40000 || n > 0.45*40000 {
		t.Fatalf("mmpp generated %g arrivals, want between the modulated extremes", n)
	}
}

// TestGenerateSuperposition: overlapping phases superpose their streams.
func TestGenerateSuperposition(t *testing.T) {
	one := genFrom(t, "poisson@0-10000:rate=0.1", 6)
	two := genFrom(t, "poisson@0-10000:rate=0.1;poisson@0-10000:rate=0.1", 6)
	if len(two) < len(one)*3/2 {
		t.Fatalf("superposed stream has %d arrivals, single %d", len(two), len(one))
	}
}

// TestGenerateErrors: unknown mix classes, duplicate classes and a nil
// source are rejected.
func TestGenerateErrors(t *testing.T) {
	phases, err := ParseArrivals("poisson@0-10:rate=1,mix=nosuch:1")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Generate(phases, DefaultClasses(), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown mix class accepted")
	}
	ok, _ := ParseArrivals("poisson@0-10:rate=1")
	if _, err := Generate(ok, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty class list accepted")
	}
	if _, err := Generate(ok, DefaultClasses(), nil); err == nil {
		t.Fatal("nil source accepted")
	}
	dup := []Class{{Name: "a", Width: 1}, {Name: "a", Width: 1}}
	if _, err := Generate(ok, dup, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("duplicate class list accepted")
	}
}
