// Package frontdoor is the serving layer over the metascheduler fleet: a
// deterministic open-loop request generator (seeded Poisson/MMPP arrivals
// shaped by diurnal waves, flash crowds and ramps), a front-door load
// balancer that spreads requests across multiple metasched brokers under
// pluggable routing policies (round-robin, least-queue, weighted-random,
// UCB and epsilon-greedy bandits), and a per-class QoS engine that makes
// probabilistic local/offload/drop decisions against p95-latency targets,
// shedding load during brownouts through the resilience breakers and the
// failure detector. All randomness comes from explicit seeded sources, so
// a run's trace is byte-identical at a fixed seed.
package frontdoor

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MixEntry is one class's weight in a phase's request mix.
type MixEntry struct {
	Class  string
	Weight float64
}

// Phase is one parsed window of the -arrivals grammar: an arrival process
// active on [Start, End) with a base rate, optional modulation parameters,
// and an optional per-class request mix overriding the class defaults.
type Phase struct {
	Kind       string  // poisson | mmpp | wave | flash | ramp
	Start, End float64 // active window, seconds of virtual time

	Rate float64 // base mean arrival rate, requests/second

	// mmpp: a 2-state Markov-modulated Poisson process alternating between
	// Rate (low) and Hi, with exponential dwell times of mean Dwell (low)
	// and HiDwell (high).
	Hi, Dwell, HiDwell float64

	// wave: diurnal modulation Rate * (1 + Amp*sin(2pi*(t-Start)/Period)).
	Amp, Period float64

	// flash: a flash crowd at rate Peak on [FlashAt, FlashAt+Hold), Rate
	// elsewhere in the window.
	Peak, FlashAt, Hold float64

	// ramp: linear rate change from Rate at Start to To at End.
	To float64

	// Mix is the per-class request mix for this phase (sorted by class
	// name); nil uses the class defaults.
	Mix []MixEntry
}

// String renders the phase in the canonical -arrivals grammar (the form
// FormatArrivals emits and ParseArrivals reparses losslessly).
func (p Phase) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s-%s:rate=%s", p.Kind, arrFloat(p.Start), arrFloat(p.End), arrFloat(p.Rate))
	switch p.Kind {
	case "mmpp":
		fmt.Fprintf(&b, ",hi=%s,dwell=%s,hidwell=%s", arrFloat(p.Hi), arrFloat(p.Dwell), arrFloat(p.HiDwell))
	case "wave":
		fmt.Fprintf(&b, ",amp=%s,period=%s", arrFloat(p.Amp), arrFloat(p.Period))
	case "flash":
		fmt.Fprintf(&b, ",peak=%s,at=%s,hold=%s", arrFloat(p.Peak), arrFloat(p.FlashAt), arrFloat(p.Hold))
	case "ramp":
		fmt.Fprintf(&b, ",to=%s", arrFloat(p.To))
	}
	if len(p.Mix) > 0 {
		parts := make([]string, len(p.Mix))
		for i, m := range p.Mix {
			parts[i] = m.Class + ":" + arrFloat(m.Weight)
		}
		fmt.Fprintf(&b, ",mix=%s", strings.Join(parts, "/"))
	}
	return b.String()
}

// arrFloat renders a non-negative finite value in fixed notation (no
// exponent), so formatted specs reparse to the identical value.
func arrFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// FormatArrivals renders phases in the grammar ParseArrivals accepts (its
// exact inverse), so generated workloads can be reported and replayed.
func FormatArrivals(phases []Phase) string {
	parts := make([]string, len(phases))
	for i, p := range phases {
		parts[i] = p.String()
	}
	return strings.Join(parts, ";")
}

// ParseArrivals parses the -arrivals workload grammar:
//
//	spec  := phase (';' phase)*
//	phase := kind '@' start '-' end ':' param (',' param)*
//	param := key '=' value
//	mix   := class ':' weight ('/' class ':' weight)*
//
// where kind selects the arrival process active on [start, end) seconds:
//
//	poisson  rate=R                      homogeneous Poisson arrivals
//	mmpp     rate=R,hi=R2,dwell=D        2-state Markov-modulated Poisson:
//	         [,hidwell=D2]               rate R/R2 with exp. dwell D/D2
//	                                     (hidwell defaults to dwell)
//	wave     rate=R,amp=A,period=P       diurnal wave R*(1+A*sin(2pi t/P))
//	flash    rate=R,peak=R2,at=T,hold=H  flash crowd: R2 on [T, T+H)
//	ramp     rate=R,to=R2                linear ramp from R to R2
//
// Every phase accepts mix=class:w/class:w/... overriding the default
// per-class request mix (weights positive, classes sorted canonically).
// Phases may overlap: overlapping windows superpose their streams.
//
// Example:
//
//	wave@0-3600:rate=0.2,amp=0.5,period=1200;flash@0-3600:rate=0,peak=1,at=1800,hold=120,mix=int:1
//
// Phases are returned sorted by start time (then end, kind, rate) so
// generation order never depends on how the spec string was assembled.
func ParseArrivals(spec string) ([]Phase, error) {
	var phases []Phase
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := parsePhase(part)
		if err != nil {
			return nil, fmt.Errorf("frontdoor: bad phase %q: %w", part, err)
		}
		phases = append(phases, p)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("frontdoor: empty arrivals spec")
	}
	sortPhases(phases)
	return phases, nil
}

func parsePhase(s string) (Phase, error) {
	at := strings.Index(s, "@")
	if at < 0 {
		return Phase{}, fmt.Errorf("missing '@'")
	}
	kind := strings.ToLower(strings.TrimSpace(s[:at]))
	switch kind {
	case "poisson", "mmpp", "wave", "flash", "ramp":
	default:
		return Phase{}, fmt.Errorf("unknown arrival kind %q (want poisson, mmpp, wave, flash or ramp)", kind)
	}
	rest := s[at+1:]
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return Phase{}, fmt.Errorf("missing ':' before parameters")
	}
	window := rest[:colon]
	dash := strings.Index(window, "-")
	if dash < 0 {
		return Phase{}, fmt.Errorf("window %q is not start-end", window)
	}
	p := Phase{Kind: kind}
	start, err := parseArrFloat(window[:dash])
	if err != nil {
		return Phase{}, fmt.Errorf("bad window start %q", window[:dash])
	}
	end, err := parseArrFloat(window[dash+1:])
	if err != nil {
		return Phase{}, fmt.Errorf("bad window end %q", window[dash+1:])
	}
	if end <= start {
		return Phase{}, fmt.Errorf("window end %s is not after start %s", arrFloat(end), arrFloat(start))
	}
	p.Start, p.End = start, end

	seen := map[string]bool{}
	for _, param := range strings.Split(rest[colon+1:], ",") {
		eq := strings.Index(param, "=")
		if eq < 0 {
			return Phase{}, fmt.Errorf("parameter %q is not key=value", param)
		}
		key, val := strings.TrimSpace(param[:eq]), strings.TrimSpace(param[eq+1:])
		if seen[key] {
			return Phase{}, fmt.Errorf("duplicate parameter %q", key)
		}
		seen[key] = true
		if key == "mix" {
			mix, err := parseMix(val)
			if err != nil {
				return Phase{}, err
			}
			p.Mix = mix
			continue
		}
		fv, err := parseArrFloat(val)
		if err != nil {
			return Phase{}, fmt.Errorf("%s=%q is not a non-negative finite number", key, val)
		}
		switch key {
		case "rate":
			p.Rate = fv
		case "hi":
			p.Hi = fv
		case "dwell":
			p.Dwell = fv
		case "hidwell":
			p.HiDwell = fv
		case "amp":
			p.Amp = fv
		case "period":
			p.Period = fv
		case "peak":
			p.Peak = fv
		case "at":
			p.FlashAt = fv
		case "hold":
			p.Hold = fv
		case "to":
			p.To = fv
		default:
			return Phase{}, fmt.Errorf("unknown parameter %q", key)
		}
	}
	if !seen["rate"] {
		return Phase{}, fmt.Errorf("phase needs rate=")
	}
	if err := p.validate(seen); err != nil {
		return Phase{}, err
	}
	return p, nil
}

// validate enforces the per-kind parameter contract; seen marks which keys
// the spec supplied, so kind-foreign parameters are rejected rather than
// silently ignored.
func (p *Phase) validate(seen map[string]bool) error {
	allowed := map[string][]string{
		"poisson": {"rate", "mix"},
		"mmpp":    {"rate", "hi", "dwell", "hidwell", "mix"},
		"wave":    {"rate", "amp", "period", "mix"},
		"flash":   {"rate", "peak", "at", "hold", "mix"},
		"ramp":    {"rate", "to", "mix"},
	}[p.Kind]
	for key := range seen {
		ok := false
		for _, a := range allowed {
			if key == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%s= does not apply to %s phases", key, p.Kind)
		}
	}
	switch p.Kind {
	case "poisson":
		if p.Rate <= 0 {
			return fmt.Errorf("poisson phase needs rate > 0")
		}
	case "mmpp":
		if p.Hi <= 0 || p.Dwell <= 0 {
			return fmt.Errorf("mmpp phase needs hi= and dwell= positive")
		}
		if !seen["hidwell"] {
			p.HiDwell = p.Dwell
		} else if p.HiDwell <= 0 {
			return fmt.Errorf("mmpp hidwell= must be positive")
		}
	case "wave":
		if p.Rate <= 0 {
			return fmt.Errorf("wave phase needs rate > 0")
		}
		if p.Amp <= 0 || p.Amp > 1 {
			return fmt.Errorf("wave amp= must be in (0, 1]")
		}
		if p.Period <= 0 {
			return fmt.Errorf("wave phase needs period > 0")
		}
	case "flash":
		if p.Peak <= 0 {
			return fmt.Errorf("flash phase needs peak > 0")
		}
		if !seen["at"] || p.FlashAt < p.Start || p.FlashAt >= p.End {
			return fmt.Errorf("flash at= must lie inside the window")
		}
		if p.Hold <= 0 {
			return fmt.Errorf("flash phase needs hold > 0")
		}
	case "ramp":
		if p.Rate <= 0 && p.To <= 0 {
			return fmt.Errorf("ramp phase needs rate or to positive")
		}
	}
	return nil
}

// parseMix parses class:w/class:w, canonicalized sorted by class name.
func parseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	seen := map[string]bool{}
	for _, part := range strings.Split(s, "/") {
		colon := strings.Index(part, ":")
		if colon < 0 {
			return nil, fmt.Errorf("mix entry %q is not class:weight", part)
		}
		cls := strings.TrimSpace(part[:colon])
		if !validClassName(cls) {
			return nil, fmt.Errorf("mix entry %q needs a class of [a-z0-9_-]", part)
		}
		if seen[cls] {
			return nil, fmt.Errorf("duplicate mix class %q", cls)
		}
		seen[cls] = true
		w, err := parseArrFloat(part[colon+1:])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("mix weight %q is not a positive finite number", part[colon+1:])
		}
		mix = append(mix, MixEntry{Class: cls, Weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].Class < mix[j].Class })
	return mix, nil
}

// validClassName restricts mix class names to lowercase identifiers, so
// the grammar's separators can never hide inside a class.
func validClassName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' && r != '-' {
			return false
		}
	}
	return true
}

// parseArrFloat parses a non-negative finite float.
func parseArrFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

// sortPhases orders phases by start, then end, kind and rate — a
// deterministic order, so generation never depends on spec assembly order.
func sortPhases(phases []Phase) {
	sort.SliceStable(phases, func(i, j int) bool {
		a, b := phases[i], phases[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Rate < b.Rate
	})
}
