package frontdoor

import (
	"fmt"

	"grads/internal/apps"
	"grads/internal/cop"
	"grads/internal/metasched"
	"grads/internal/resilience"
	"grads/internal/telemetry"
)

// Class is one QoS request class: the grid job shape a request of the
// class expands into, its economic weight, and its p95 latency target.
type Class struct {
	Name   string
	Weight float64 // default share of the request mix

	// Target is the class's p95 end-to-end latency objective in seconds;
	// the QoS engine sheds load when the observed p95 drifts past it.
	Target float64

	// Job shape: a task farm of Tasks units of Flops each on a lease of
	// Width nodes (shrinkable to MinWidth).
	Tasks    int
	Flops    float64
	Width    int
	MinWidth int

	Bid float64 // willingness to pay per node-round
	Est float64 // runtime estimate handed to backfill
}

// DefaultClasses is the serving workload's three-tier mix: latency-bound
// interactive requests, mid-weight batch analyses, and wide bulk jobs.
// Weights follow the usual traffic pyramid (most requests are small).
func DefaultClasses() []Class {
	return []Class{
		{Name: "int", Weight: 6, Target: 60, Tasks: 2, Flops: 2e8, Width: 1, MinWidth: 1, Bid: 8, Est: 20},
		{Name: "batch", Weight: 3, Target: 300, Tasks: 8, Flops: 1e9, Width: 2, MinWidth: 1, Bid: 4, Est: 120},
		{Name: "bulk", Weight: 1, Target: 1200, Tasks: 16, Flops: 2e9, Width: 4, MinWidth: 2, Bid: 2, Est: 400},
	}
}

// Spec expands one request of this class into the metascheduler job it
// submits: a task farm built against the target broker's grid.
func (c Class) Spec(name string, submit float64) metasched.JobSpec {
	cls := c
	return metasched.JobSpec{
		Name: name, Kind: cls.Name, Submit: submit,
		Width: cls.Width, MinWidth: cls.MinWidth, Bid: cls.Bid, EstRuntime: cls.Est,
		Make: func(ctx *metasched.AppContext) (cop.COP, error) {
			farm, err := apps.NewTaskFarm(ctx.Grid, ctx.RSS, ctx.Binder, ctx.Weather, cls.Tasks, cls.Flops, cls.Width)
			if err != nil {
				return nil, err
			}
			farm.CheckpointEvery = 4
			return farm, nil
		},
	}
}

// classState is the QoS engine's live view of one class: its latency
// history, SLO breaker and outcome ledger.
type classState struct {
	cls     Class
	hist    telemetry.Histogram // completion latency, seconds
	breaker *resilience.Breaker

	requests int
	drops    int
	offloads int
	done     int
	failed   int
	breaches int // completions past Target (or terminal failures)
}

// pressure is the class's congestion signal: observed p95 latency over the
// target, 0 until enough completions have been seen to trust the estimate.
func (s *classState) pressure(minSamples int) float64 {
	if int(s.hist.Count()) < minSamples || s.cls.Target <= 0 {
		return 0
	}
	return s.hist.Quantile(0.95) / s.cls.Target
}

// ClassStats is one class's flattened outcome for experiment tables.
type ClassStats struct {
	Name     string
	Requests int
	Done     int
	Failed   int
	Drops    int
	Offloads int
	Breaches int
	Mean     float64
	P50      float64
	P95      float64
	P99      float64
}

func (s *classState) stats() ClassStats {
	qs := s.hist.Quantiles(0.5, 0.95, 0.99)
	return ClassStats{
		Name:     s.cls.Name,
		Requests: s.requests,
		Done:     s.done,
		Failed:   s.failed,
		Drops:    s.drops,
		Offloads: s.offloads,
		Breaches: s.breaches,
		Mean:     s.hist.Mean(),
		P50:      qs[0],
		P95:      qs[1],
		P99:      qs[2],
	}
}

// classByName indexes a class list, rejecting duplicates.
func classByName(classes []Class) (map[string]int, error) {
	idx := make(map[string]int, len(classes))
	for i, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("frontdoor: class %d has no name", i)
		}
		if _, dup := idx[c.Name]; dup {
			return nil, fmt.Errorf("frontdoor: duplicate class %q", c.Name)
		}
		idx[c.Name] = i
	}
	return idx, nil
}
