package frontdoor

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"grads/internal/metasched"
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// TestDifferentialDirectSubmit: at arrival rates low enough that the QoS
// engine never intervenes, a single-broker front door must be a pure
// pass-through — the same completion set AND a byte-identical JSONL trace
// as direct metasched.Submit of the equivalent stream. This pins the
// serving layer's zero-interference contract: routing a stream through the
// front door changes nothing the broker can observe.
func TestDifferentialDirectSubmit(t *testing.T) {
	const simSeed, genSeed, horizon = 71, 6, 100000
	classes := DefaultClasses()
	phases, err := ParseArrivals("poisson@0-4000:rate=0.01")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reqs, err := Generate(phases, classes, rand.New(rand.NewSource(genSeed)))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(reqs) < 20 {
		t.Fatalf("only %d requests generated, want a meaningful stream", len(reqs))
	}
	byName := map[string]Class{}
	for _, c := range classes {
		byName[c.Name] = c
	}

	// Both runs build the identical environment in the identical order; the
	// broker is unnamed so its telemetry component matches single-broker
	// direct use exactly.
	build := func() (*simcore.Sim, *bytes.Buffer, *telemetry.Telemetry, BrokerSpec) {
		sim := simcore.New(simSeed)
		tel := telemetry.New()
		var buf bytes.Buffer
		tel.AddSink(telemetry.NewJSONL(&buf))
		sim.SetTelemetry(tel)
		spec := newFleet(sim, []int{6})[0]
		spec.Name = ""
		return sim, &buf, tel, spec
	}

	// Reference: the stream submitted directly to the broker up front.
	sim1, buf1, tel1, spec1 := build()
	direct, err := metasched.New(spec1.Config)
	if err != nil {
		t.Fatalf("direct broker: %v", err)
	}
	for _, r := range reqs {
		name := fmt.Sprintf("%s-%06d", r.Class, r.ID)
		if _, err := direct.Submit(byName[r.Class].Spec(name, r.At)); err != nil {
			t.Fatalf("direct submit %s: %v", name, err)
		}
	}
	direct.Start()
	sim1.RunUntil(horizon)
	tel1.Close()

	// Candidate: the same stream through a quiet single-broker front door.
	sim2, buf2, tel2, spec2 := build()
	fd, err := New(Config{
		Sim: sim2, Brokers: []BrokerSpec{spec2}, Policy: &RoundRobin{},
		Seed: 1, Quiet: true,
	})
	if err != nil {
		t.Fatalf("frontdoor: %v", err)
	}
	if err := fd.Start(reqs); err != nil {
		t.Fatalf("start: %v", err)
	}
	sim2.RunUntil(horizon)
	tel2.Close()

	s := fd.Stats()
	if s.Drops != 0 || s.Offloads != 0 || s.Pending != 0 {
		t.Fatalf("front door intervened at trickle load: %+v", s)
	}
	rec1, rec2 := direct.Records(), fd.Broker(0).Records()
	if !reflect.DeepEqual(rec1, rec2) {
		t.Fatalf("completion sets differ:\ndirect    %+v\nfrontdoor %+v", rec1, rec2)
	}
	for _, r := range rec1 {
		if r.State != "done" {
			t.Fatalf("job %s ended %s — the trickle stream must not queue or fail", r.Name, r.State)
		}
	}
	if buf1.Len() == 0 {
		t.Fatal("empty reference trace")
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		a, b := buf1.Bytes(), buf2.Bytes()
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("traces diverge at byte %d:\ndirect    ...%s\nfrontdoor ...%s",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
}
