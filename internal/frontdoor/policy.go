package frontdoor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// brokerView is the per-broker state a routing policy reads: the broker's
// nominal capacity, its in-flight request count, and its observed
// completion-latency statistics (running mean over n completions). The
// front door maintains it; policies only read it, so every Pick stays
// allocation-free.
type brokerView struct {
	capacity    float64
	outstanding int
	n           int
	meanLat     float64
}

// Policy picks a broker for each request. Pick must not allocate — it is
// the balancer hot path, benchmarked and CI-gated at 0 allocs/op. All
// randomness comes from the front door's seeded source.
type Policy interface {
	Name() string
	Pick(views []brokerView, rng *rand.Rand) int
}

// PolicyNames lists the accepted -route policy names.
func PolicyNames() []string { return []string{"rr", "least", "wrand", "ucb", "eps"} }

// ParseRoutePolicy builds a routing policy from its -route name:
//
//	rr      round-robin
//	least   fewest in-flight requests
//	wrand   random, weighted by broker capacity
//	ucb     UCB1 bandit on observed completion latency
//	eps     epsilon-greedy bandit (10% exploration)
func ParseRoutePolicy(name string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "rr", "round-robin":
		return &RoundRobin{}, nil
	case "least", "least-queue":
		return &LeastQueue{}, nil
	case "wrand", "weighted-random":
		return &WeightedRandom{}, nil
	case "ucb":
		return &UCB{Explore: 1}, nil
	case "eps", "epsilon-greedy":
		return &EpsilonGreedy{Epsilon: 0.1}, nil
	}
	return nil, fmt.Errorf("frontdoor: unknown routing policy %q (want %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// RoundRobin cycles through the brokers in order, blind to load.
type RoundRobin struct{ next int }

// Name returns the policy's -route name.
func (p *RoundRobin) Name() string { return "rr" }

// Pick returns the next broker in rotation.
func (p *RoundRobin) Pick(views []brokerView, _ *rand.Rand) int {
	i := p.next % len(views)
	p.next++
	return i
}

// LeastQueue picks the broker with the fewest in-flight requests (lowest
// index on ties), the classic join-the-shortest-queue heuristic.
type LeastQueue struct{}

// Name returns the policy's -route name.
func (p *LeastQueue) Name() string { return "least" }

// Pick returns the broker with the smallest outstanding count.
func (p *LeastQueue) Pick(views []brokerView, _ *rand.Rand) int {
	best := 0
	for i := 1; i < len(views); i++ {
		if views[i].outstanding < views[best].outstanding {
			best = i
		}
	}
	return best
}

// WeightedRandom picks a broker with probability proportional to its
// capacity: load lands where the nodes are, but with no feedback.
type WeightedRandom struct{}

// Name returns the policy's -route name.
func (p *WeightedRandom) Name() string { return "wrand" }

// Pick draws one broker by capacity weight.
func (p *WeightedRandom) Pick(views []brokerView, rng *rand.Rand) int {
	total := 0.0
	for i := range views {
		total += views[i].capacity
	}
	if total <= 0 {
		return 0
	}
	x := rng.Float64() * total
	for i := range views {
		x -= views[i].capacity
		if x < 0 {
			return i
		}
	}
	return len(views) - 1
}

// UCB is a UCB1 bandit over completion latency: each broker's score is its
// mean observed latency minus an optimism bonus that shrinks as the broker
// accumulates observations, and the lowest score wins. The bonus is scaled
// by the fleet-wide mean latency so exploration stays meaningful whatever
// the workload's latency magnitude. Unobserved brokers are tried first.
type UCB struct {
	// Explore scales the optimism bonus (1 is standard UCB1).
	Explore float64
}

// Name returns the policy's -route name.
func (p *UCB) Name() string { return "ucb" }

// Pick returns the broker minimizing mean latency minus the UCB bonus.
func (p *UCB) Pick(views []brokerView, _ *rand.Rand) int {
	total := 0
	latSum := 0.0
	for i := range views {
		if views[i].n == 0 {
			return i
		}
		total += views[i].n
		latSum += views[i].meanLat * float64(views[i].n)
	}
	scale := latSum / float64(total)
	logTotal := math.Log(float64(total))
	best, bestScore := 0, math.Inf(1)
	for i := range views {
		bonus := p.Explore * scale * math.Sqrt(2*logTotal/float64(views[i].n))
		if score := views[i].meanLat - bonus; score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// EpsilonGreedy explores a uniform random broker with probability Epsilon
// and otherwise exploits the lowest observed mean latency. Unobserved
// brokers count as latency 0, so every broker is exploited at least once.
type EpsilonGreedy struct {
	Epsilon float64
}

// Name returns the policy's -route name.
func (p *EpsilonGreedy) Name() string { return "eps" }

// Pick explores with probability Epsilon, else exploits the best mean.
func (p *EpsilonGreedy) Pick(views []brokerView, rng *rand.Rand) int {
	if rng.Float64() < p.Epsilon {
		return rng.Intn(len(views))
	}
	best := 0
	for i := 1; i < len(views); i++ {
		if views[i].meanLat < views[best].meanLat {
			best = i
		}
	}
	return best
}
