package frontdoor

import (
	"math/rand"
	"testing"
)

func views4() []brokerView {
	return []brokerView{
		{capacity: 8}, {capacity: 4}, {capacity: 2}, {capacity: 2},
	}
}

// TestParseRoutePolicy: every advertised name resolves, aliases included,
// and junk is rejected.
func TestParseRoutePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParseRoutePolicy(name)
		if err != nil {
			t.Fatalf("parse %q: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	for _, alias := range []string{"round-robin", "least-queue", "weighted-random", "epsilon-greedy", " RR "} {
		if _, err := ParseRoutePolicy(alias); err != nil {
			t.Fatalf("alias %q rejected: %v", alias, err)
		}
	}
	if _, err := ParseRoutePolicy("random-forest"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestRoundRobinCycles: rr visits every broker in order, forever.
func TestRoundRobinCycles(t *testing.T) {
	p := &RoundRobin{}
	vs := views4()
	for i := 0; i < 12; i++ {
		if got := p.Pick(vs, nil); got != i%4 {
			t.Fatalf("pick %d = %d, want %d", i, got, i%4)
		}
	}
}

// TestLeastQueuePicksShortest: least picks the minimum outstanding count,
// lowest index on ties.
func TestLeastQueuePicksShortest(t *testing.T) {
	p := &LeastQueue{}
	vs := views4()
	vs[0].outstanding, vs[1].outstanding, vs[2].outstanding, vs[3].outstanding = 5, 2, 7, 2
	if got := p.Pick(vs, nil); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	vs[1].outstanding = 9
	if got := p.Pick(vs, nil); got != 3 {
		t.Fatalf("pick = %d, want 3", got)
	}
}

// TestWeightedRandomFollowsCapacity: wrand lands on brokers roughly in
// proportion to capacity.
func TestWeightedRandomFollowsCapacity(t *testing.T) {
	p := &WeightedRandom{}
	vs := views4() // capacities 8/4/2/2
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, len(vs))
	for i := 0; i < 16000; i++ {
		counts[p.Pick(vs, rng)]++
	}
	for i, want := range []float64{0.5, 0.25, 0.125, 0.125} {
		got := float64(counts[i]) / 16000
		if got < want-0.02 || got > want+0.02 {
			t.Fatalf("broker %d drew fraction %g, want about %g", i, got, want)
		}
	}
}

// TestUCBExploresThenExploits: unobserved brokers are tried first; once
// everything is well observed, the lowest-latency broker dominates.
func TestUCBExploresThenExploits(t *testing.T) {
	p := &UCB{Explore: 1}
	vs := views4()
	seen := map[int]bool{}
	for i := 0; i < len(vs); i++ {
		got := p.Pick(vs, nil)
		if seen[got] {
			t.Fatalf("broker %d picked again before all were explored", got)
		}
		seen[got] = true
		vs[got].n = 1
		vs[got].meanLat = float64(100 * (got + 1))
	}
	// Feed many observations so the optimism bonus shrinks.
	for i := range vs {
		vs[i].n = 500
	}
	if got := p.Pick(vs, nil); got != 0 {
		t.Fatalf("well-observed pick = %d, want the fastest broker 0", got)
	}
	// A fast broker with almost no observations should be re-tried: its
	// bonus dwarfs the exploited broker's advantage.
	vs[3].n = 1
	if got := p.Pick(vs, nil); got != 3 {
		t.Fatalf("pick = %d, want under-observed broker 3", got)
	}
}

// TestEpsilonGreedy: eps=0 always exploits the best mean; eps=1 explores
// roughly uniformly.
func TestEpsilonGreedy(t *testing.T) {
	vs := views4()
	for i := range vs {
		vs[i].n = 10
		vs[i].meanLat = float64(100 - 10*i)
	}
	greedy := &EpsilonGreedy{Epsilon: 0}
	rng := rand.New(rand.NewSource(10))
	if got := greedy.Pick(vs, rng); got != 3 {
		t.Fatalf("greedy pick = %d, want 3", got)
	}
	explore := &EpsilonGreedy{Epsilon: 1}
	counts := make([]int, len(vs))
	for i := 0; i < 8000; i++ {
		counts[explore.Pick(vs, rng)]++
	}
	for i, c := range counts {
		if c < 1600 || c > 2400 {
			t.Fatalf("broker %d explored %d/8000 times, want about uniform", i, c)
		}
	}
}

// TestPickAllocs: the routing decision is the balancer hot path and must
// not allocate, whatever the policy.
func TestPickAllocs(t *testing.T) {
	vs := views4()
	for i := range vs {
		vs[i].n = 3 + i
		vs[i].meanLat = float64(50 + i)
		vs[i].outstanding = i
	}
	rng := rand.New(rand.NewSource(11))
	for _, p := range []Policy{
		&RoundRobin{}, &LeastQueue{}, &WeightedRandom{}, &UCB{Explore: 1}, &EpsilonGreedy{Epsilon: 0.1},
	} {
		pol := p
		if n := testing.AllocsPerRun(200, func() { pol.Pick(vs, rng) }); n != 0 {
			t.Fatalf("policy %s allocates %g per pick", pol.Name(), n)
		}
	}
}

// benchPick exercises one policy's Pick over a warm 4-broker fleet.
func benchPick(b *testing.B, p Policy) {
	vs := views4()
	for i := range vs {
		vs[i].n = 100 + i
		vs[i].meanLat = float64(40 + 20*i)
		vs[i].outstanding = 3 * i
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += p.Pick(vs, rng)
	}
	_ = sink
}

// BenchmarkRouteUCB is the balancer hot path under the bandit policy —
// CI-gated at 0 allocs/op (see the serve-bench benchguard job).
func BenchmarkRouteUCB(b *testing.B) { benchPick(b, &UCB{Explore: 1}) }

// BenchmarkRouteLeast is the join-shortest-queue hot path, same gate.
func BenchmarkRouteLeast(b *testing.B) { benchPick(b, &LeastQueue{}) }
