package frontdoor

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"grads/internal/binder"
	"grads/internal/gis"
	"grads/internal/ibp"
	"grads/internal/metasched"
	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// newFleet builds a serving fleet on one kernel: one single-site grid per
// broker (with its own GIS, depots and binder), sized by nodeCounts.
func newFleet(sim *simcore.Sim, nodeCounts []int) []BrokerSpec {
	specs := make([]BrokerSpec, 0, len(nodeCounts))
	for i, n := range nodeCounts {
		site := fmt.Sprintf("site%02d", i)
		grid := topology.NewGrid(sim)
		grid.AddSite(site, topology.GigE, topology.LANLatency)
		for _, sp := range topology.SyntheticSite(site, n) {
			grid.AddNode(sp)
		}
		g := gis.New(sim, grid)
		g.RegisterSoftwareEverywhere(binder.LocalBinderPkg, "/opt/grads/binder")
		for _, lib := range []string{"scalapack", "blas", "srs", "autopilot", "mpi"} {
			g.RegisterSoftwareEverywhere(lib, "/opt/"+lib)
		}
		st := ibp.New(sim, grid)
		st.AddDepotsEverywhere()
		specs = append(specs, BrokerSpec{
			Name: site,
			Config: metasched.Config{
				Sim: sim, Grid: grid, GIS: g, Storage: st, Binder: binder.New(sim, g),
				Policy: metasched.PolicyBackfill, Tick: 5,
			},
		})
	}
	return specs
}

// TestFrontDoorConservation: every generated request is accounted for —
// dropped or driven to a terminal state — and the fleet drains completely
// once intake closes.
func TestFrontDoorConservation(t *testing.T) {
	sim := simcore.New(21)
	phases, err := ParseArrivals("poisson@0-2000:rate=0.05")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reqs, err := Generate(phases, DefaultClasses(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	fd, err := New(Config{Sim: sim, Brokers: newFleet(sim, []int{4, 2}), Policy: &LeastQueue{}, Seed: 7})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := fd.Start(reqs); err != nil {
		t.Fatalf("start: %v", err)
	}
	sim.RunUntil(200000)

	s := fd.Stats()
	if s.Requests != len(reqs) {
		t.Fatalf("requests = %d, want %d", s.Requests, len(reqs))
	}
	terminal := 0
	for _, c := range s.Classes {
		terminal += c.Done + c.Failed
	}
	if s.Requests != s.Drops+terminal+s.Pending {
		t.Fatalf("conservation broken: %d requests, %d drops, %d terminal, %d pending",
			s.Requests, s.Drops, terminal, s.Pending)
	}
	if s.Pending != 0 {
		t.Fatalf("%d requests still pending after drain horizon", s.Pending)
	}
	if terminal == 0 {
		t.Fatal("no requests completed")
	}
	routed := 0
	for i, b := range s.Brokers {
		routed += b.Routed
		if got := len(fd.Broker(i).Jobs()); got != b.Routed {
			t.Fatalf("broker %s ledger has %d jobs, routed %d", b.Name, got, b.Routed)
		}
	}
	if routed != s.Requests-s.Drops {
		t.Fatalf("routed %d, want %d", routed, s.Requests-s.Drops)
	}
	if s.Fairness <= 0 || s.Fairness > 1 {
		t.Fatalf("fairness %g outside (0, 1]", s.Fairness)
	}
	if s.P95 < s.P50 || s.P99 < s.P95 {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
	}
}

// TestFrontDoorDeterminism: two identically seeded serving runs produce
// byte-identical JSONL traces and identical stats.
func TestFrontDoorDeterminism(t *testing.T) {
	run := func() ([]byte, Stats) {
		sim := simcore.New(33)
		tel := telemetry.New()
		var buf bytes.Buffer
		tel.AddSink(telemetry.NewJSONL(&buf))
		sim.SetTelemetry(tel)
		specs := newFleet(sim, []int{4, 2, 2})
		phases, err := ParseArrivals("wave@0-1500:rate=0.08,amp=0.5,period=500")
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		reqs, err := Generate(phases, DefaultClasses(), rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		fd, err := New(Config{Sim: sim, Brokers: specs, Policy: &UCB{Explore: 1}, Seed: 5})
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		if err := fd.Start(reqs); err != nil {
			t.Fatalf("start: %v", err)
		}
		sim.RunUntil(100000)
		tel.Close()
		return buf.Bytes(), fd.Stats()
	}
	trace1, stats1 := run()
	trace2, stats2 := run()
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("identically seeded runs produced different traces")
	}
	if !reflect.DeepEqual(stats1, stats2) {
		t.Fatalf("identically seeded runs produced different stats:\n%+v\n%+v", stats1, stats2)
	}
	if len(trace1) == 0 {
		t.Fatal("no trace emitted")
	}
}

// TestFrontDoorShedsUnderOverload: a tiny broker under a heavy interactive
// stream with a tight SLO blows past its p95 target; the QoS engine must
// shed load (pressure drops and breaker fast-fails) rather than queue
// without bound, while conservation still holds mid-collapse.
func TestFrontDoorShedsUnderOverload(t *testing.T) {
	sim := simcore.New(44)
	classes := []Class{
		{Name: "int", Weight: 1, Target: 30, Tasks: 2, Flops: 2e8, Width: 1, MinWidth: 1, Bid: 8, Est: 20},
	}
	phases, err := ParseArrivals("poisson@0-1200:rate=0.5,mix=int:1")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reqs, err := Generate(phases, classes, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	fd, err := New(Config{
		Sim: sim, Brokers: newFleet(sim, []int{2}), Policy: &RoundRobin{},
		Classes: classes, Seed: 3, MinSamples: 4,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := fd.Start(reqs); err != nil {
		t.Fatalf("start: %v", err)
	}
	sim.RunUntil(400000)

	s := fd.Stats()
	if s.Drops == 0 {
		t.Fatal("overloaded front door shed nothing")
	}
	cls := s.Classes[0]
	if cls.Breaches == 0 {
		t.Fatal("no SLO breaches recorded under overload")
	}
	terminal := cls.Done + cls.Failed
	if s.Requests != s.Drops+terminal+s.Pending {
		t.Fatalf("conservation broken under overload: %d requests, %d drops, %d terminal, %d pending",
			s.Requests, s.Drops, terminal, s.Pending)
	}
}

// TestUCBAvoidsWeakBroker: on a lopsided fleet the bandit concentrates
// traffic on the big broker well past its capacity share, where blind
// round-robin splits evenly.
func TestUCBAvoidsWeakBroker(t *testing.T) {
	routedShare := func(p Policy) float64 {
		sim := simcore.New(55)
		phases, err := ParseArrivals("poisson@0-3000:rate=0.1,mix=int:3/batch:1")
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		reqs, err := Generate(phases, DefaultClasses(), rand.New(rand.NewSource(8)))
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		fd, err := New(Config{Sim: sim, Brokers: newFleet(sim, []int{8, 2}), Policy: p, Seed: 8})
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		if err := fd.Start(reqs); err != nil {
			t.Fatalf("start: %v", err)
		}
		sim.RunUntil(300000)
		s := fd.Stats()
		total := 0
		for _, b := range s.Brokers {
			total += b.Routed
		}
		if total == 0 {
			t.Fatal("nothing routed")
		}
		return float64(s.Brokers[0].Routed) / float64(total)
	}
	ucb := routedShare(&UCB{Explore: 1})
	rr := routedShare(&RoundRobin{})
	if ucb <= rr {
		t.Fatalf("ucb sent %.2f of traffic to the big broker, round-robin %.2f — bandit learned nothing", ucb, rr)
	}
	if ucb < 0.6 {
		t.Fatalf("ucb big-broker share %.2f, want well above the even split", ucb)
	}
}
