package experiments

import (
	"fmt"
	"math/rand"

	"grads/internal/apps"
	"grads/internal/core"
	"grads/internal/topology"
)

// HeurConfig parameterizes the scheduling-heuristic ablation (the §3.1
// machinery: min-min vs max-min vs sufferage vs random, and the best-of-
// three selection the GrADS scheduler performs).
type HeurConfig struct {
	Seed   int64
	Trials int
	Layers int
	Width  int
	Fanin  int
}

// DefaultHeurConfig returns a medium-size study.
func DefaultHeurConfig() HeurConfig {
	return HeurConfig{Seed: 7, Trials: 20, Layers: 4, Width: 8, Fanin: 3}
}

// HeurResult aggregates one strategy over all trials.
type HeurResult struct {
	Strategy     string
	MeanMakespan float64
	Wins         int // trials where this strategy (alone) was the best
}

// RunHeuristics generates random layered workflows and schedules each with
// every heuristic plus a random baseline on the MacroGrid.
func RunHeuristics(cfg HeurConfig) ([]HeurResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	strategies := append(append([]string{}, core.Heuristics...), core.MCT, core.OLB, "random")
	sums := make(map[string]float64, len(strategies))
	wins := make(map[string]int, len(strategies))

	for trial := 0; trial < cfg.Trials; trial++ {
		env := NewEnv(cfg.Seed+int64(trial), topology.MacroGrid, "heur", 0)
		wf, err := apps.RandomWorkflow(rng, cfg.Layers, cfg.Width, cfg.Fanin)
		if err != nil {
			return nil, err
		}
		s := core.NewScheduler(env.Grid, nil)
		best, bestName := 0.0, ""
		for _, strat := range strategies {
			var sched *core.Schedule
			switch strat {
			case "random":
				sched, err = s.ScheduleRandom(rng, wf, env.Grid.Nodes())
			case core.MCT, core.OLB:
				sched, err = s.ScheduleBaseline(strat, wf, env.Grid.Nodes())
			default:
				sched, err = s.ScheduleWith(strat, wf, env.Grid.Nodes())
			}
			if err != nil {
				return nil, fmt.Errorf("heuristics %s: %w", strat, err)
			}
			sums[strat] += sched.Makespan
			if bestName == "" || sched.Makespan < best {
				best, bestName = sched.Makespan, strat
			}
		}
		wins[bestName]++
	}

	results := make([]HeurResult, 0, len(strategies))
	for _, strat := range strategies {
		results = append(results, HeurResult{
			Strategy:     strat,
			MeanMakespan: sums[strat] / float64(cfg.Trials),
			Wins:         wins[strat],
		})
	}
	return results, nil
}

// FormatHeuristics renders the ablation table.
func FormatHeuristics(results []HeurResult) string {
	t := &Table{Header: []string{"strategy", "mean-makespan(s)", "wins"}}
	for _, r := range results {
		t.Add(r.Strategy, Secs(r.MeanMakespan), fmt.Sprintf("%d", r.Wins))
	}
	return t.String()
}

// WeightResult is one (w1, w2) setting's mean makespan over the trials —
// the rank-weight ablation the paper's rank function exposes.
type WeightResult struct {
	W1, W2       float64
	MeanMakespan float64
}

// RunRankWeights sweeps the data-cost weight w2 (w1 fixed at 1) over random
// data-heavy workflows, showing when data movement matters to schedule
// quality.
func RunRankWeights(cfg HeurConfig, w2s []float64) ([]WeightResult, error) {
	if len(w2s) == 0 {
		w2s = []float64{0, 0.5, 1, 2, 4}
	}
	results := make([]WeightResult, 0, len(w2s))
	for _, w2 := range w2s {
		rng := rand.New(rand.NewSource(cfg.Seed))
		sum := 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			env := NewEnv(cfg.Seed+int64(trial), topology.MacroGrid, "weights", 0)
			wf, err := apps.RandomWorkflow(rng, cfg.Layers, cfg.Width, cfg.Fanin)
			if err != nil {
				return nil, err
			}
			// Make the workflow data-heavy so w2 matters.
			for _, c := range wf.Components {
				c.OutputBytes *= 50
			}
			s := core.NewScheduler(env.Grid, nil)
			s.W2 = w2
			sched, err := s.Schedule(wf, env.Grid.Nodes())
			if err != nil {
				return nil, err
			}
			// Evaluate the resulting placement under the FULL cost model
			// (data movement included) regardless of the scheduling weight.
			placement := make([]*topology.Node, wf.Len())
			for i, a := range sched.Assignments {
				placement[i] = a.Node
			}
			eval := core.NewScheduler(env.Grid, nil)
			full, err := eval.EvaluateFixed(wf, placement)
			if err != nil {
				return nil, err
			}
			sum += full.Makespan
		}
		results = append(results, WeightResult{W1: 1, W2: w2, MeanMakespan: sum / float64(cfg.Trials)})
	}
	return results, nil
}

// FormatRankWeights renders the weight sweep.
func FormatRankWeights(results []WeightResult) string {
	t := &Table{Header: []string{"w1", "w2", "mean-makespan(s)"}}
	for _, r := range results {
		t.Add(fmt.Sprintf("%.1f", r.W1), fmt.Sprintf("%.1f", r.W2), Secs(r.MeanMakespan))
	}
	return t.String()
}
