package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"grads/internal/load"
	"grads/internal/rescheduler"
	"grads/internal/topology"
)

// WeatherConfig parameterizes the forecasting ablation: the paper wires NWS
// forecasts into every rank computation and migration decision; this
// experiment quantifies why. WAN cross traffic is bursty (long quiet
// periods with short heavy spikes); migration decisions are sampled in the
// middle of a spike, when an instantaneous measurement is maximally
// misleading about the bandwidth a minutes-long checkpoint transfer will
// actually see.
type WeatherConfig struct {
	N int // QR matrix size for the migration decision
	// Remaining is the fraction of the factorization still to run at the
	// decision point; with the default it sits in the zone where a few-x
	// cost error flips the verdict.
	Remaining float64
	Trials    int
	Seed      int64
}

// DefaultWeatherConfig uses a crossover-adjacent size, where decisions are
// most sensitive to the cost estimate.
func DefaultWeatherConfig() WeatherConfig {
	return WeatherConfig{N: 9000, Remaining: 0.8, Trials: 30, Seed: 3}
}

// WeatherResult compares decision quality for one estimator source.
type WeatherResult struct {
	Source      string // "nws-forecast" or "instantaneous"
	Agreements  int    // decisions matching the time-averaged-truth oracle
	Trials      int
	MeanCostErr float64 // mean relative migration-cost estimation error
}

// spikePeriod and spikeLen shape the bursty cross traffic: spikeLen seconds
// of heavy traffic every spikePeriod seconds.
const (
	spikePeriod = 200.0
	spikeLen    = 30.0
)

// RunWeather runs the ablation.
func RunWeather(cfg WeatherConfig) ([]WeatherResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	results := []WeatherResult{
		{Source: "nws-forecast", Trials: cfg.Trials},
		{Source: "instantaneous", Trials: cfg.Trials},
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		quiet := 5e4 + rng.Float64()*1e5
		spike := 7e5 + rng.Float64()*4.5e5
		meanBg := (quiet*(spikePeriod-spikeLen) + spike*spikeLen) / spikePeriod

		// Oracle: the decision and cost under the true time-averaged
		// cross traffic (what a long transfer actually experiences).
		oracleDec, oracleCost, err := weatherDecision(cfg, load.Constant(meanBg), false)
		if err != nil {
			return nil, err
		}
		profile := burstProfile(quiet, spike, 1200)
		for i, useNWS := range []bool{true, false} {
			dec, cost, err := weatherDecision(cfg, profile, useNWS)
			if err != nil {
				return nil, err
			}
			if dec == oracleDec {
				results[i].Agreements++
			}
			if oracleCost > 0 {
				results[i].MeanCostErr += math.Abs(cost-oracleCost) / oracleCost / float64(cfg.Trials)
			}
		}
	}
	return results, nil
}

// burstProfile builds the spike train: quiet with [period-len, period)
// spikes, repeated until the horizon.
func burstProfile(quiet, spike, until float64) load.Profile {
	var p load.Profile
	for t := 0.0; t < until; t += spikePeriod {
		p = append(p,
			load.Point{At: t, Value: quiet},
			load.Point{At: t + spikePeriod - spikeLen, Value: spike},
		)
	}
	return p
}

// weatherDecision evaluates one migration decision at t=995 — inside the
// [970, 1000) spike of the burst profile — for a loaded QR at cfg.N.
func weatherDecision(cfg WeatherConfig, profile load.Profile, useNWS bool) (bool, float64, error) {
	period := 10.0
	env := NewEnv(cfg.Seed, topology.QRTestbed, "qr", period)
	wan := env.Grid.WAN("UTK", "UIUC")
	load.Play(env.Sim, profile, func(v float64) { env.Grid.Net.SetBackground(wan, v) })
	env.Grid.Node("utk1").CPU.SetExternalLoad(1)
	env.Sim.RunUntil(995)

	app := &weatherApp{n: float64(cfg.N), frac: cfg.Remaining}
	r := rescheduler.New(env.Grid, nil)
	if useNWS {
		r.Weather = env.Weather
	}
	d := r.Evaluate(app, env.Grid.Site("UTK").Nodes(),
		rescheduler.SiteCandidates(env.Grid.Nodes()))
	env.Weather.Stop()
	return d.Migrate, d.MigrationCost, nil
}

// weatherApp is a minimal estimator: a loaded QR at size n with half its
// work remaining.
type weatherApp struct{ n, frac float64 }

// RemainingTime implements rescheduler.Estimator.
func (a *weatherApp) RemainingTime(nodes []*topology.Node, avail func(*topology.Node) float64) float64 {
	slowest := 1e30
	for _, nd := range nodes {
		if r := nd.Spec.Flops() * avail(nd); r < slowest {
			slowest = r
		}
	}
	frac := a.frac
	if frac <= 0 {
		frac = 0.5
	}
	return frac * 4.0 / 3.0 * a.n * a.n * a.n / (slowest * float64(len(nodes)))
}

// CheckpointBytes implements rescheduler.Estimator.
func (a *weatherApp) CheckpointBytes() float64 { return (a.n*a.n + a.n) * 8 }

// RestartOverhead implements rescheduler.Estimator.
func (a *weatherApp) RestartOverhead() float64 { return 28 }

// FormatWeather renders the ablation.
func FormatWeather(results []WeatherResult) string {
	t := &Table{Header: []string{"estimator source", "oracle agreement", "mean cost error"}}
	for _, r := range results {
		t.Add(r.Source,
			fmt.Sprintf("%d/%d", r.Agreements, r.Trials),
			fmt.Sprintf("%.1f%%", 100*r.MeanCostErr))
	}
	return t.String()
}
