package experiments

import (
	"fmt"
	"math"

	"grads/internal/simcore"
	"grads/internal/topology"
)

// The paper validated the MicroGrid against the MacroGrid by running "very
// similar experiments" on both and comparing behavior (§1, §4.2). This
// driver replays the Figure 4 process-swapping scenario on the emulated
// MicroGrid testbed and on the equivalent MacroGrid slice and compares the
// progress traces.

// MacroGridSlice builds the MacroGrid counterpart of the §4.2.2 virtual
// Grid: three UTK-class, three UIUC-class and one UCSD node with the same
// clock rates, on production-like (rather than emulated) links — 100 Mb
// Ethernet LANs instead of the MicroGrid's configured GigE.
func MacroGridSlice(sim *simcore.Sim) *topology.Grid {
	g := topology.NewGrid(sim)
	g.AddSite("UTK", topology.Ethernet100, topology.LANLatency)
	g.AddSite("UIUC", topology.Ethernet100, topology.LANLatency)
	g.AddSite("UCSD", topology.Ethernet100, topology.LANLatency)
	for i := 1; i <= 3; i++ {
		g.AddNode(topology.NodeSpec{Name: fmt.Sprintf("utk%d", i), Site: "UTK",
			Arch: topology.ArchIA32, MHz: 550, FlopsPerCycle: 0.4, MemMB: 256})
		g.AddNode(topology.NodeSpec{Name: fmt.Sprintf("uiuc%d", i), Site: "UIUC",
			Arch: topology.ArchIA32, MHz: 450, FlopsPerCycle: 0.4, MemMB: 256})
	}
	g.AddNode(topology.NodeSpec{Name: "ucsd1", Site: "UCSD",
		Arch: topology.ArchIA32, MHz: 1700, FlopsPerCycle: 0.8, MemMB: 1024})
	g.Connect("UTK", "UIUC", topology.Ethernet100, 0.011)
	g.Connect("UCSD", "UTK", topology.Ethernet100, 0.030)
	g.Connect("UCSD", "UIUC", topology.Ethernet100, 0.030)
	return g
}

// ValidationResult compares the two testbeds' behavior on the same
// scenario.
type ValidationResult struct {
	MicroCompletion float64
	MacroCompletion float64
	MicroSwapAt     float64
	MacroSwapAt     float64
	// MaxProgressSkew is the largest per-iteration completion-time
	// difference between the two traces, as a fraction of the run.
	MaxProgressSkew float64
}

// RunValidation replays the Figure 4 scenario on both testbeds.
func RunValidation(cfg Fig4Config) (*ValidationResult, error) {
	micro, microDone, err := fig4RunOn(cfg, cfg.Policy, topology.MicroGridTestbed)
	if err != nil {
		return nil, fmt.Errorf("microgrid: %w", err)
	}
	macro, macroDone, err := fig4RunOn(cfg, cfg.Policy, MacroGridSlice)
	if err != nil {
		return nil, fmt.Errorf("macrogrid: %w", err)
	}
	res := &ValidationResult{MicroCompletion: microDone, MacroCompletion: macroDone}
	if st := micro.SwapTimes(); len(st) > 0 {
		res.MicroSwapAt = st[len(st)-1]
	}
	if st := macro.SwapTimes(); len(st) > 0 {
		res.MacroSwapAt = st[len(st)-1]
	}
	// Compare per-iteration completion times.
	macroAt := map[int]float64{}
	for _, m := range macro.Progress() {
		macroAt[m.Iter] = m.Time
	}
	scale := math.Max(microDone, macroDone)
	for _, m := range micro.Progress() {
		if mt, ok := macroAt[m.Iter]; ok && scale > 0 {
			skew := math.Abs(m.Time-mt) / scale
			if skew > res.MaxProgressSkew {
				res.MaxProgressSkew = skew
			}
		}
	}
	return res, nil
}

// FormatValidation renders the cross-testbed comparison.
func FormatValidation(r *ValidationResult) string {
	t := &Table{Header: []string{"metric", "MicroGrid", "MacroGrid slice"}}
	t.Add("completion (s)", Secs(r.MicroCompletion), Secs(r.MacroCompletion))
	t.Add("last swap at (s)", Secs(r.MicroSwapAt), Secs(r.MacroSwapAt))
	s := t.String()
	s += fmt.Sprintf("\nmax per-iteration progress skew: %.1f%% of the run\n", 100*r.MaxProgressSkew)
	return s
}
