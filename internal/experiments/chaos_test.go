package experiments

import (
	"reflect"
	"testing"

	"grads/internal/faultinject"
)

func smallChaosConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.N = 2000
	cfg.Particles = 100
	cfg.Width = 6
	return cfg
}

// TestRunChaosSpecRecoversFromCrash: an explicit schedule crashing a
// checkpoint-holding QR node mid-run plus an NWS outage completes via
// checkpoint recovery, with the injections and the detector firing visible
// in the result.
func TestRunChaosSpecRecoversFromCrash(t *testing.T) {
	events, err := faultinject.ParseSpec("crash@40-400:utk1;outage@10-30:nws")
	if err != nil {
		t.Fatal(err)
	}
	r, timeline, err := RunChaosSpec(smallChaosConfig(), events)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("run did not complete: %+v", r)
	}
	if r.Recoveries < 1 {
		t.Fatalf("recoveries=%d, want >= 1 (crash lands mid-run)", r.Recoveries)
	}
	if r.Injected != 2 || r.Recovered < 1 {
		t.Fatalf("injected=%d recovered=%d, want 2 injections and the crash healed", r.Injected, r.Recovered)
	}
	if r.Suspects < 1 {
		t.Fatalf("suspects=%d, want the detector to notice the crash", r.Suspects)
	}
	if timeline == "" {
		t.Fatal("no timeline rendered")
	}
}

// TestChaosDeterministic: the same seeded chaos scenario produces the exact
// same result struct twice.
func TestChaosDeterministic(t *testing.T) {
	cfg := smallChaosConfig()
	run := func() ChaosResult {
		r, err := chaosQR(cfg, 900, nil)
		if err != nil {
			t.Fatal(err)
		}
		return *r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded chaos runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestChaosEMANResilientExecution: the EMAN workflow completes under
// generated faults at a hostile MTBF, re-placing crashed components.
func TestChaosEMANResilientExecution(t *testing.T) {
	cfg := smallChaosConfig()
	r, err := chaosEMAN(cfg, 900)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed || r.Total <= 0 {
		t.Fatalf("EMAN chaos run did not complete: %+v", r)
	}
}
