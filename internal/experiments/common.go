// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation on the emulated Grid: the Figure 3 QR
// stop/restart bars with their phase breakdown, the §4.1.2 rescheduler
// decision table, the Figure 4 N-body process-swapping progress trace, the
// §3.3 EMAN workflow-scheduling demonstration, and the ablation studies
// (heuristic comparison, swap policies, opportunistic rescheduling).
package experiments

import (
	"fmt"
	"strings"

	"grads/internal/binder"
	"grads/internal/gis"
	"grads/internal/ibp"
	"grads/internal/nws"
	"grads/internal/simcore"
	"grads/internal/srs"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// sharedTel, when set, is attached to every simulation NewEnv creates, so a
// single CLI invocation collects one telemetry stream across all the
// experiments it runs.
var sharedTel *telemetry.Telemetry

// SetTelemetry installs (or, with nil, removes) the hub every subsequently
// created experiment environment publishes into.
func SetTelemetry(t *telemetry.Telemetry) { sharedTel = t }

// Telemetry returns the installed shared hub, or nil.
func Telemetry() *telemetry.Telemetry { return sharedTel }

// referenceSolver, when set, makes every subsequently created environment run
// the network on the reference (global progressive-filling) solver instead of
// the incremental one. The two are trace-identical; the knob exists so the
// equivalence can be demonstrated on the published experiments.
var referenceSolver bool

// SetReferenceSolver selects which max-min solver environments created after
// the call use: the O(component) incremental solver (false, the default) or
// the reference global solver (true).
func SetReferenceSolver(on bool) { referenceSolver = on }

// Env bundles one fully wired GrADS execution environment on a fresh
// deterministic simulation.
type Env struct {
	Sim     *simcore.Sim
	Grid    *topology.Grid
	GIS     *gis.Service
	Storage *ibp.System
	Binder  *binder.Binder
	Weather *nws.Service
	RSS     *srs.RSS
}

// GridBuilder constructs a testbed on a simulation.
type GridBuilder func(*simcore.Sim) *topology.Grid

// NewEnv wires GIS (with the standard software registered everywhere), IBP
// depots, the binder, the weather service, and an RSS for appName over the
// given testbed. Seed fixes all randomness.
func NewEnv(seed int64, build GridBuilder, appName string, nwsPeriod float64) *Env {
	sim := simcore.New(seed)
	if sharedTel != nil {
		sim.SetTelemetry(sharedTel)
	}
	grid := build(sim)
	if referenceSolver {
		grid.Net.SetReferenceSolver(true)
	}
	g := gis.New(sim, grid)
	g.RegisterSoftwareEverywhere(binder.LocalBinderPkg, "/opt/grads/binder")
	for _, lib := range []string{"scalapack", "blas", "srs", "autopilot", "eman", "mpi"} {
		g.RegisterSoftwareEverywhere(lib, "/opt/"+lib)
	}
	st := ibp.New(sim, grid)
	st.AddDepotsEverywhere()
	env := &Env{
		Sim:     sim,
		Grid:    grid,
		GIS:     g,
		Storage: st,
		Binder:  binder.New(sim, g),
		RSS:     srs.NewRSS(sim, st, appName),
	}
	if nwsPeriod > 0 {
		env.Weather = nws.Start(sim, grid, nwsPeriod)
	}
	return env
}

// Table renders an aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (for plotting the
// figures with external tools).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Secs formats seconds compactly.
func Secs(v float64) string { return fmt.Sprintf("%.1f", v) }
