package experiments

import (
	"math"
	"testing"

	"grads/internal/swap"
	"grads/internal/topology"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"a", "long-header"}}
	tab.Add("xxxxxx", "1")
	s := tab.String()
	if len(s) == 0 || s[0] != 'a' {
		t.Fatalf("table render wrong:\n%s", s)
	}
}

func TestNewEnvWiring(t *testing.T) {
	env := NewEnv(1, topology.QRTestbed, "app", 10)
	if env.GIS == nil || env.Storage == nil || env.Binder == nil || env.RSS == nil || env.Weather == nil {
		t.Fatal("env incompletely wired")
	}
	if !env.GIS.HasSoftware("utk1", "scalapack") {
		t.Fatal("standard software not registered")
	}
	if env.Storage.Depot("uiuc3") == nil {
		t.Fatal("depots not created everywhere")
	}
	env.Weather.Stop()
}

// TestFig3Shape verifies the paper's §4.1.2 findings end to end:
// checkpoint reads dominate migration cost, writes are insignificant,
// rescheduling pays only above the crossover, and the worst-case-cost
// rescheduler makes the paper's wrong decision near the crossover.
func TestFig3Shape(t *testing.T) {
	cfg := DefaultFig3Config()
	cfg.Sizes = []int{6000, 8000, 12000}
	rows, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byN := map[int]Fig3Row{}
	for _, r := range rows {
		byN[r.N] = r
	}
	for _, r := range rows {
		read := r.Migrate.Sum("checkpoint reading", 0)
		write := r.Migrate.Sum("checkpoint writing", 0)
		if read < 10*write {
			t.Errorf("N=%d: read %v does not dominate write %v", r.N, read, write)
		}
		if r.ViolationAt <= 0 {
			t.Errorf("N=%d: no contract violation detected", r.N)
		}
	}
	if byN[6000].MigrationHelps {
		t.Error("N=6000: migration should not pay (cost overshadows benefit)")
	}
	if !byN[12000].MigrationHelps {
		t.Error("N=12000: migration should pay")
	}
	// Larger problems benefit more (remaining lifetime grows as N^3, cost
	// as N^2).
	gain8 := byN[8000].StayTotal - byN[8000].MigrateTotal
	gain12 := byN[12000].StayTotal - byN[12000].MigrateTotal
	if gain12 <= gain8 {
		t.Errorf("benefit not growing with size: %v (8000) vs %v (12000)", gain8, gain12)
	}
	// The paper's wrong decision near the crossover: the 900s worst-case
	// rescheduler stays although migration actually helps at N=8000, while
	// the honest estimate migrates.
	if byN[8000].WorstCaseDecision {
		t.Error("N=8000: worst-case rescheduler should (wrongly) stay")
	}
	if !byN[8000].HonestDecision {
		t.Error("N=8000: honest estimate should migrate")
	}
	if math.Abs(byN[8000].ActualCost-byN[8000].HonestCost) > 0.3*byN[8000].ActualCost {
		t.Errorf("honest cost estimate %v far from actual %v",
			byN[8000].HonestCost, byN[8000].ActualCost)
	}
	if FormatFig3(rows) == "" || FormatFig3Decisions(rows) == "" {
		t.Error("formatting empty")
	}
}

// TestFig4Shape verifies the §4.2.2 demonstration: progress slows when the
// competitive load lands at t=80 and recovers after the rescheduler swaps
// all three working processes to the UIUC cluster.
func TestFig4Shape(t *testing.T) {
	r, err := RunFig4(DefaultFig4Config())
	if err != nil {
		t.Fatal(err)
	}
	if r.Swaps != 3 {
		t.Fatalf("swaps = %d, want all 3 working processes migrated", r.Swaps)
	}
	for _, st := range r.SwapTimes {
		if st < r.LoadAt {
			t.Fatalf("swap at %v before the load at %v", st, r.LoadAt)
		}
		if st > 150 {
			t.Fatalf("swap at %v, want completed by t=150 like the paper", st)
		}
	}
	if r.Completed <= 0 || r.BaseDone <= 0 {
		t.Fatal("runs did not complete within the horizon")
	}
	if r.Completed >= r.BaseDone {
		t.Fatalf("swapping (%v) did not beat no-swap (%v)", r.Completed, r.BaseDone)
	}
	// Slope comparison: iterations per second before load, under load
	// (baseline), and after the swap.
	preRate := progressRate(r.Progress, 10, r.LoadAt)
	postRate := progressRate(r.Progress, 160, 240)
	loadedRate := progressRate(r.Baseline, 100, 400)
	if loadedRate >= 0.6*preRate {
		t.Fatalf("baseline under load not degraded: %v vs %v iters/s", loadedRate, preRate)
	}
	if postRate < 0.8*loadedRate*2 {
		t.Fatalf("post-swap rate %v did not recover (loaded %v)", postRate, loadedRate)
	}
	if FormatFig4(r, 20) == "" {
		t.Error("formatting empty")
	}
}

// progressRate estimates iterations per second between two times.
func progressRate(marks []swap.IterMark, t0, t1 float64) float64 {
	firstIter, lastIter := -1, -1
	firstT, lastT := 0.0, 0.0
	for _, m := range marks {
		if m.Time < t0 || m.Time > t1 {
			continue
		}
		if firstIter < 0 {
			firstIter, firstT = m.Iter, m.Time
		}
		lastIter, lastT = m.Iter, m.Time
	}
	if firstIter < 0 || lastT == firstT {
		return 0
	}
	return float64(lastIter-firstIter) / (lastT - firstT)
}

// TestEMANShape verifies §3.3: every heuristic beats random, best-of-three
// is no worse than any single heuristic, and the schedule spans both
// architectures.
func TestEMANShape(t *testing.T) {
	res, err := RunEMAN(DefaultEMANConfig())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EMANResult{}
	for _, r := range res {
		byName[r.Strategy] = r
	}
	random := byName["random"]
	best := byName["best-of-3"]
	for _, h := range []string{"min-min", "max-min", "sufferage"} {
		r := byName[h]
		if r.Makespan >= random.Makespan {
			t.Errorf("%s (%v) not better than random (%v)", h, r.Makespan, random.Makespan)
		}
		if best.Makespan > r.Makespan+1e-9 {
			t.Errorf("best-of-3 (%v) worse than %s (%v)", best.Makespan, h, r.Makespan)
		}
		if r.Simulated <= 0 {
			t.Errorf("%s: schedule did not execute", h)
		}
	}
	if best.IA64Used == 0 || best.IA32Used == 0 {
		t.Errorf("heterogeneity not exercised: ia32=%d ia64=%d", best.IA32Used, best.IA64Used)
	}
	if FormatEMAN(res) == "" {
		t.Error("formatting empty")
	}
}

func TestHeuristicsShape(t *testing.T) {
	cfg := DefaultHeurConfig()
	cfg.Trials = 6
	res, err := RunHeuristics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var randomMean float64
	minHeur := math.Inf(1)
	for _, r := range res {
		if r.Strategy == "random" {
			randomMean = r.MeanMakespan
		} else if r.MeanMakespan < minHeur {
			minHeur = r.MeanMakespan
		}
	}
	if minHeur >= randomMean {
		t.Fatalf("heuristics (%v) not better than random (%v)", minHeur, randomMean)
	}
	w, err := RunRankWeights(cfg, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if w[0].MeanMakespan <= w[1].MeanMakespan {
		t.Fatalf("ignoring data costs (w2=0: %v) should hurt vs w2=1 (%v)",
			w[0].MeanMakespan, w[1].MeanMakespan)
	}
	if FormatHeuristics(res) == "" || FormatRankWeights(w) == "" {
		t.Error("formatting empty")
	}
}

func TestSwapPoliciesShape(t *testing.T) {
	res, err := RunSwapPolicies(DefaultFig4Config())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SwapPolicyResult{}
	for _, r := range res {
		byName[r.Policy] = r
	}
	if byName["none"].Swaps != 0 {
		t.Error("none policy swapped")
	}
	for _, p := range []string{"greedy", "threshold", "gang"} {
		r := byName[p]
		if r.Completion <= 0 {
			t.Errorf("%s: did not complete", p)
			continue
		}
		if r.Completion >= byName["none"].Completion {
			t.Errorf("%s (%v) not better than none (%v)", p, r.Completion, byName["none"].Completion)
		}
	}
	if byName["gang"].Completion > byName["greedy"].Completion {
		t.Error("gang policy should beat per-machine greedy for a synchronized app")
	}
	if FormatSwapPolicies(res) == "" {
		t.Error("formatting empty")
	}
}

func TestOpportunisticShape(t *testing.T) {
	r, err := RunOpportunistic(DefaultOpportunisticConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.MigratedAt <= 0 {
		t.Fatal("opportunistic migration never triggered")
	}
	if r.MigratedAt < r.ShortDone-1 {
		t.Fatalf("migration at %v before the short job finished at %v", r.MigratedAt, r.ShortDone)
	}
	if r.LongTotal >= r.LongBaseline {
		t.Fatalf("opportunistic (%v) not better than pinned (%v)", r.LongTotal, r.LongBaseline)
	}
	if r.Decision.Target[0].Site().Name != "UTK" {
		t.Fatalf("migrated to %s, want the freed UTK cluster", r.Decision.Target[0].Site().Name)
	}
	if FormatOpportunistic(r) == "" {
		t.Error("formatting empty")
	}
}

// TestFaultToleranceShape verifies the extension: a crash without
// checkpoints restarts from scratch; periodic checkpoints bound the lost
// work and beat scratch restart; checkpoint overhead grows as the interval
// shrinks.
func TestFaultToleranceShape(t *testing.T) {
	res, err := RunFault(DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	byInterval := map[int]FaultResult{}
	for _, r := range res {
		byInterval[r.Interval] = r
	}
	baseline := byInterval[-1]
	scratch := byInterval[0]
	ckpt20 := byInterval[20]
	ckpt5 := byInterval[5]
	if baseline.Recoveries != 0 || scratch.Recoveries != 1 {
		t.Fatalf("recovery counts wrong: %+v", res)
	}
	if scratch.Total <= baseline.Total {
		t.Fatal("a crash should cost something")
	}
	if scratch.CkptRead != 0 {
		t.Fatal("scratch restart must not restore")
	}
	if ckpt20.Total >= scratch.Total {
		t.Fatalf("checkpointed recovery (%v) not better than scratch (%v)",
			ckpt20.Total, scratch.Total)
	}
	if ckpt20.CkptRead <= 0 {
		t.Fatal("checkpointed recovery did not restore")
	}
	if ckpt5.CkptWrite <= ckpt20.CkptWrite {
		t.Fatal("shorter interval should write more checkpoint data")
	}
	if FormatFault(res) == "" {
		t.Error("formatting empty")
	}
}

// TestValidationShape verifies the §1/§4.2 claim that the controlled
// emulation reproduces testbed behavior: the MicroGrid and the MacroGrid
// slice agree on the swap scenario within a few percent.
func TestValidationShape(t *testing.T) {
	r, err := RunValidation(DefaultFig4Config())
	if err != nil {
		t.Fatal(err)
	}
	if r.MicroCompletion <= 0 || r.MacroCompletion <= 0 {
		t.Fatal("runs did not complete")
	}
	rel := math.Abs(r.MicroCompletion-r.MacroCompletion) / r.MacroCompletion
	if rel > 0.10 {
		t.Fatalf("testbeds disagree by %.1f%% on completion", rel*100)
	}
	if r.MaxProgressSkew > 0.10 {
		t.Fatalf("progress skew %.1f%% too large", r.MaxProgressSkew*100)
	}
	if r.MicroSwapAt <= 0 || r.MacroSwapAt <= 0 {
		t.Fatal("swaps missing on one testbed")
	}
	if FormatValidation(r) == "" {
		t.Error("formatting empty")
	}
}

// TestEconomyShape reproduces the cited G-commerce comparison: the
// commodities market yields smoother prices than auctions at comparable
// utilization.
func TestEconomyShape(t *testing.T) {
	res, err := RunEconomy(DefaultEconomyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d formulations", len(res))
	}
	cm, au := res[0], res[1]
	if cm.PriceVolatility >= au.PriceVolatility {
		t.Fatalf("commodity volatility %v not smoother than auction %v",
			cm.PriceVolatility, au.PriceVolatility)
	}
	if cm.MeanUtilization < 0.4 || au.MeanUtilization < 0.4 {
		t.Fatalf("utilization collapsed: %+v", res)
	}
	if FormatEconomy(res) == "" {
		t.Error("formatting empty")
	}
}

// TestWeatherShape verifies the forecasting ablation: under bursty cross
// traffic, long-horizon NWS forecasts dominate instantaneous measurements
// for migration decisions.
func TestWeatherShape(t *testing.T) {
	res, err := RunWeather(DefaultWeatherConfig())
	if err != nil {
		t.Fatal(err)
	}
	nws, inst := res[0], res[1]
	if nws.Agreements <= inst.Agreements {
		t.Fatalf("forecasts (%d/%d) not better than instantaneous (%d/%d)",
			nws.Agreements, nws.Trials, inst.Agreements, inst.Trials)
	}
	if nws.MeanCostErr >= inst.MeanCostErr {
		t.Fatalf("forecast cost error %v not below instantaneous %v",
			nws.MeanCostErr, inst.MeanCostErr)
	}
	if nws.MeanCostErr > 0.3 {
		t.Fatalf("forecast cost error %v too large", nws.MeanCostErr)
	}
	if FormatWeather(res) == "" {
		t.Error("formatting empty")
	}
}
