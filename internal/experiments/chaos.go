package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"grads/internal/appmgr"
	"grads/internal/apps"
	"grads/internal/core"
	"grads/internal/faultinject"
	"grads/internal/gis"
	"grads/internal/netsim"
	"grads/internal/resilience"
	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// ChaosConfig parameterizes the chaos study: the QR and EMAN workloads run
// under a seeded schedule of node crashes while the resilience layer
// (checkpoint recovery, retries, failure detector, GIS re-query) keeps them
// going, sweeping node MTBF.
type ChaosConfig struct {
	// QR workload.
	N, NB           int
	CheckpointEvery int // panels between periodic checkpoints

	// EMAN workload.
	Particles float64
	Width     int

	MTBFs          []float64 // per-node mean time between failures, seconds
	MTTR           float64   // mean repair time, seconds (<= 0: crashes permanent)
	Horizon        float64   // fault generation window, seconds
	DetectorPeriod float64   // heartbeat period, seconds
	RunCap         float64   // virtual-time cap per scenario (hang guard)
	Seed           int64
}

// DefaultChaosConfig sweeps MTBF from benign to hostile with two-minute
// repairs, on a QR size small enough that even the hostile point finishes
// inside the cap.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		N: 4000, NB: 100, CheckpointEvery: 10,
		Particles: 200, Width: 12,
		MTBFs:          []float64{3000, 1500, 750},
		MTTR:           120,
		Horizon:        4000,
		DetectorPeriod: 5,
		RunCap:         40000,
		Seed:           1,
	}
}

// ChaosResult is one (workload, MTBF) cell of the study.
type ChaosResult struct {
	Workload   string
	MTBF       float64
	Completed  bool
	Total      float64 // completion time (or the cap when not completed)
	Recoveries int     // restarts / component re-placements performed
	Injected   int     // fault injections executed
	Recovered  int     // fault recoveries executed
	Suspects   int     // failure-detector firings
	Retries    int     // service-call re-attempts by the retry layer
}

// chaosHarness bundles the per-scenario resilience stack.
type chaosHarness struct {
	injector *faultinject.Injector
	detector *resilience.Detector
	retrier  *resilience.Retrier
}

// newChaosHarness wires injector, detector and retrier over an Env: every
// grid service gets a Health handle, the detector watches every node, and
// the RSS and binder share the retry policy.
func newChaosHarness(env *Env, seed int64, detectorPeriod float64) *chaosHarness {
	in := faultinject.NewInjector(env.Sim, env.Grid)
	var weather faultinject.HealthSetter
	if env.Weather != nil {
		weather = env.Weather
	}
	faultinject.Wire(in, env.GIS, weather, env.Binder, env.Storage)
	det := resilience.NewDetector(env.Sim, env.Grid, detectorPeriod)
	det.Watch(nodeNames(env.Grid)...)
	retr := resilience.NewRetrier(env.Sim, resilience.DefaultPolicy(),
		rand.New(rand.NewSource(seed+7)))
	env.RSS.SetRetrier(retr)
	env.Binder.SetRetrier(retr)
	return &chaosHarness{injector: in, detector: det, retrier: retr}
}

func (h *chaosHarness) start() {
	h.injector.Start()
	h.detector.Start()
}

func (h *chaosHarness) stop(env *Env) {
	h.injector.Stop()
	h.detector.Stop()
	if env.Weather != nil {
		env.Weather.Stop()
	}
}

func nodeNames(g *topology.Grid) []string {
	var names []string
	for _, n := range g.Nodes() {
		names = append(names, n.Name())
	}
	return names
}

// RunChaos executes the MTBF sweep for both workloads.
func RunChaos(cfg ChaosConfig) ([]ChaosResult, error) {
	var results []ChaosResult
	for _, mtbf := range cfg.MTBFs {
		r, err := chaosQR(cfg, mtbf, nil)
		if err != nil {
			return nil, fmt.Errorf("chaos qr mtbf=%g: %w", mtbf, err)
		}
		results = append(results, *r)
		e, err := chaosEMAN(cfg, mtbf)
		if err != nil {
			return nil, fmt.Errorf("chaos eman mtbf=%g: %w", mtbf, err)
		}
		results = append(results, *e)
	}
	return results, nil
}

// RunChaosSpec runs the QR workload under an explicit -faults schedule
// (instead of a generated one) and returns the single result plus the
// executed timeline, for the gradsim -faults flag.
func RunChaosSpec(cfg ChaosConfig, events []faultinject.Event) (*ChaosResult, string, error) {
	var timeline string
	r, err := chaosQR(cfg, 0, func(h *chaosHarness) {
		h.injector.Load(events)
		timeline = h.injector.Describe()
	})
	if err != nil {
		return nil, "", err
	}
	r.MTBF = 0
	return r, timeline, nil
}

// chaosQR runs the QR workload under faults. When load is nil the schedule
// is generated from mtbf/mttr; otherwise load installs the schedule.
func chaosQR(cfg ChaosConfig, mtbf float64, load func(*chaosHarness)) (*ChaosResult, error) {
	env := NewEnv(cfg.Seed, topology.QRTestbed, "qr", 10)
	h := newChaosHarness(env, cfg.Seed, cfg.DetectorPeriod)
	if load != nil {
		load(h)
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		h.injector.Load(faultinject.GenerateNodeFaults(rng, nodeNames(env.Grid), mtbf, cfg.MTTR, cfg.Horizon))
	}

	qr, err := apps.NewQR(env.Grid, env.RSS, env.Binder, env.Weather, cfg.N, cfg.NB)
	if err != nil {
		return nil, err
	}
	qr.CheckpointEvery = cfg.CheckpointEvery
	mgr := appmgr.New(env.Sim, env.Grid, env.Binder, env.Weather)
	mgr.RSS = env.RSS
	mgr.Retrier = h.retrier

	h.start()
	var rep *appmgr.Report
	var execErr error
	done := false
	env.Sim.Spawn("user", func(p *simcore.Proc) {
		rep, execErr = mgr.Execute(p, qr, env.Grid.Nodes())
		done = true
		h.stop(env)
	})
	env.Sim.RunUntil(cfg.RunCap)

	res := &ChaosResult{
		Workload:  "qr",
		MTBF:      mtbf,
		Completed: done && execErr == nil,
		Total:     env.Sim.Now(),
		Injected:  h.injector.Injected(),
		Recovered: h.injector.Recovered(),
		Suspects:  h.detector.Suspects(),
		Retries:   h.retrier.Retries(),
	}
	if rep != nil {
		res.Recoveries = rep.Failures
		if res.Completed {
			res.Total = rep.Total
		}
	}
	if execErr != nil {
		return nil, execErr
	}
	if !done {
		return nil, fmt.Errorf("chaos qr: did not finish within the %g s cap", cfg.RunCap)
	}
	return res, nil
}

// chaosEMAN schedules the EMAN workflow on the MacroGrid, then executes it
// resiliently under generated node faults.
func chaosEMAN(cfg ChaosConfig, mtbf float64) (*ChaosResult, error) {
	env := NewEnv(cfg.Seed, topology.MacroGrid, "eman", 0)
	h := newChaosHarness(env, cfg.Seed, cfg.DetectorPeriod)
	rng := rand.New(rand.NewSource(cfg.Seed))
	h.injector.Load(faultinject.GenerateNodeFaults(rng, nodeNames(env.Grid), mtbf, cfg.MTTR, cfg.Horizon))

	wfRun, err := apps.EMANWorkflow(cfg.Particles, cfg.Width)
	if err != nil {
		return nil, err
	}
	wfRun = wfRun.Expand()
	sched, err := core.NewScheduler(env.Grid, nil).Schedule(wfRun, env.Grid.Nodes())
	if err != nil {
		return nil, err
	}

	h.start()
	makespan, recoveries, execErr := ExecuteScheduleResilient(env, wfRun, sched, h.retrier, cfg.RunCap, func() {
		h.stop(env)
	})
	if execErr != nil {
		return nil, execErr
	}
	return &ChaosResult{
		Workload:   "eman",
		MTBF:       mtbf,
		Completed:  true,
		Total:      makespan,
		Recoveries: recoveries,
		Injected:   h.injector.Injected(),
		Recovered:  h.injector.Recovered(),
		Suspects:   h.detector.Suspects(),
		Retries:    h.retrier.Retries(),
	}, nil
}

// ExecuteScheduleResilient is ExecuteSchedule with the recovery loop the
// chaos study exercises: a component whose node crashes (before or during
// its compute) re-queries the GIS for live resources, re-places itself on a
// substitute node, pays a restart cost, and re-runs; staging falls back to
// a surviving node of the producer's site when the producer crashed (its
// outputs live in site-local replicated storage). onDone fires when the
// last component finishes (or the execution fails), so the caller can stop
// its daemons. It returns the measured makespan and how many component
// re-placements were performed.
func ExecuteScheduleResilient(env *Env, wf *core.Workflow, sched *core.Schedule, retr *resilience.Retrier, runCap float64, onDone func()) (float64, int, error) {
	const restartCost = 3 // seconds to relaunch a re-placed component

	type compState struct {
		done   bool
		node   *topology.Node
		sig    *simcore.Signal
		finish float64
	}
	states := make([]*compState, wf.Len())
	for i, a := range sched.Assignments {
		states[i] = &compState{sig: simcore.NewSignal(env.Sim), node: a.Node}
	}
	var failure error
	remaining := wf.Len()
	recoveries := 0
	allDone := simcore.NewSignal(env.Sim)

	// Node crashes must reach components mid-compute: track which
	// component procs are exposed on which node and interrupt them (in
	// component order, deterministically) when that node goes down.
	procs := make([]*simcore.Proc, wf.Len())
	exposed := make([]bool, wf.Len())
	unsubscribe := env.Grid.OnNodeStateChange(func(n *topology.Node, down bool) {
		if !down {
			return
		}
		for i := range procs {
			if exposed[i] && states[i].node == n && procs[i] != nil {
				procs[i].Interrupt(netsim.ErrEndpointDown)
			}
		}
	})

	fail := func(err error) {
		if failure == nil {
			failure = err
		}
		allDone.Broadcast()
	}

	for i := range wf.Components {
		i := i
		c := wf.Components[i]
		st := states[i]
		procs[i] = env.Sim.Spawn("eman:"+c.Name, func(p *simcore.Proc) {
			for _, d := range wf.Deps(i) {
				for !states[d].done {
					if failure != nil {
						return
					}
					if err := states[d].sig.Wait(p); err != nil {
						if isEndpointLoss(err) {
							continue // our node crashed while idle; re-placed at run time
						}
						return
					}
				}
			}
			// stageAndCompute pulls the inputs and runs the compute on the
			// component's current node, with the proc registered for crash
			// interrupts while exposed.
			stageAndCompute := func() error {
				exposed[i] = true
				defer func() { exposed[i] = false }()
				for _, d := range wf.Deps(i) {
					if wf.Components[d].OutputBytes <= 0 {
						continue
					}
					src := states[d].node
					// The producer's node may have crashed since it
					// finished; its outputs live in site-local replicated
					// storage, so stage from a surviving node instead.
					if src.Down() {
						src = stagingFallback(env, src)
						if src == nil {
							return fmt.Errorf("experiments: no live staging source for %s", wf.Components[d].Name)
						}
					}
					if src == st.node {
						continue
					}
					route := env.Grid.Route(src, st.node)
					if _, err := env.Grid.Net.TransferLabeled(p, route, wf.Components[d].OutputBytes, src.Name(), st.node.Name()); err != nil {
						return err
					}
				}
				if c.Model != nil {
					if _, err := st.node.CPU.Compute(p, c.Model.FlopsAt(c.ProblemSize)); err != nil {
						return err
					}
				}
				return nil
			}

			for attempt := 0; ; attempt++ {
				if failure != nil {
					return
				}
				// Bound pathological schedules: give up after 32 re-runs.
				if attempt > 32 {
					fail(fmt.Errorf("experiments: component %s: too many re-placements", c.Name))
					return
				}
				// Re-place onto a live node when ours has crashed.
				if st.node.Down() {
					sub, err := substituteNode(p, env, retr, st.node, i)
					if err != nil {
						fail(fmt.Errorf("experiments: component %s: %w", c.Name, err))
						return
					}
					recoveries++
					emitReplace(env, c.Name, st.node.Name(), sub.Name())
					st.node = sub
					if err := p.Sleep(restartCost); err != nil {
						if isEndpointLoss(err) {
							continue
						}
						return
					}
				}
				if err := stageAndCompute(); err != nil {
					if isEndpointLoss(err) {
						continue // our node or a peer died: re-place and retry
					}
					fail(err)
					return
				}
				break
			}
			st.done = true
			st.finish = p.Now()
			st.sig.Broadcast()
			remaining--
			if remaining == 0 {
				allDone.Broadcast()
			}
		})
	}

	finished := false
	env.Sim.Spawn("eman-watch", func(p *simcore.Proc) {
		for remaining > 0 && failure == nil {
			if err := allDone.Wait(p); err != nil {
				return
			}
		}
		finished = true
		unsubscribe()
		if onDone != nil {
			onDone()
		}
	})
	env.Sim.RunUntil(runCap)

	if failure != nil {
		return 0, recoveries, failure
	}
	if !finished {
		return 0, recoveries, fmt.Errorf("experiments: resilient schedule execution did not finish within the %g s cap", runCap)
	}
	makespan := 0.0
	for _, st := range states {
		if st.finish > makespan {
			makespan = st.finish
		}
	}
	return makespan, recoveries, nil
}

// stagingFallback picks a live node to stage a crashed producer's output
// from: same site first (the replica is a LAN copy), else any live node,
// in deterministic name order.
func stagingFallback(env *Env, down *topology.Node) *topology.Node {
	var fallback *topology.Node
	for _, n := range env.Grid.Nodes() {
		if n.Down() || n == down {
			continue
		}
		if n.Site() == down.Site() {
			return n
		}
		if fallback == nil {
			fallback = n
		}
	}
	return fallback
}

// substituteNode re-queries the GIS for live resources and picks a
// replacement for a crashed node: same architecture when possible, rotated
// by the component index so concurrent re-placements spread over the pool
// instead of piling onto one node (deterministic either way).
func substituteNode(p *simcore.Proc, env *Env, retr *resilience.Retrier, down *topology.Node, comp int) (*topology.Node, error) {
	var pool []*topology.Node
	err := retr.Do(p, "gis.query", func() error {
		var qerr error
		pool, qerr = env.GIS.QueryResources(p, gis.Filter{})
		return qerr
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pool, func(a, b int) bool { return pool[a].Name() < pool[b].Name() })
	var sameArch []*topology.Node
	for _, n := range pool {
		if n.Spec.Arch == down.Spec.Arch {
			sameArch = append(sameArch, n)
		}
	}
	if len(sameArch) > 0 {
		return sameArch[comp%len(sameArch)], nil
	}
	if len(pool) > 0 {
		return pool[comp%len(pool)], nil
	}
	return nil, fmt.Errorf("no live resources for re-placement")
}

// isEndpointLoss reports whether an error means the component's node (or a
// transfer endpoint or route) crashed — the retryable-by-re-placement class.
// netsim wraps these sentinels with link/endpoint names, so unwrap.
func isEndpointLoss(err error) bool {
	return errors.Is(err, netsim.ErrEndpointDown) || errors.Is(err, netsim.ErrLinkDown)
}

func emitReplace(env *Env, comp, from, to string) {
	env.Sim.Tracef("chaos: re-placing %s: %s -> %s", comp, from, to)
	if tel := env.Sim.Telemetry(); tel != nil {
		tel.Counter("chaos", "replacements").Inc()
		tel.Emit(telemetry.Event{
			Type: telemetry.EvAppRestart, Comp: "eman:" + comp, Name: "component-replaced",
			Args: []telemetry.Arg{telemetry.S("from", from), telemetry.S("to", to)},
		})
	}
}

// FormatChaos renders the MTBF sweep.
func FormatChaos(results []ChaosResult) string {
	t := &Table{Header: []string{"workload", "mtbf(s)", "completed", "total(s)", "recoveries", "faults", "healed", "suspects", "retries"}}
	for _, r := range results {
		t.Add(r.Workload, Secs(r.MTBF), fmt.Sprint(r.Completed), Secs(r.Total),
			fmt.Sprint(r.Recoveries), fmt.Sprint(r.Injected), fmt.Sprint(r.Recovered),
			fmt.Sprint(r.Suspects), fmt.Sprint(r.Retries))
	}
	return t.String()
}
