package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"grads/internal/apps"
	"grads/internal/cop"
	"grads/internal/linalg"
	"grads/internal/metasched"
	"grads/internal/topology"
)

// ContentionConfig parameterizes the metascheduler contention sweep: a
// deterministic multi-application job stream (ScaLAPACK QR factorizations
// and task farms) pushed through the broker on the QR testbed, swept over
// arrival rate x queue policy.
type ContentionConfig struct {
	Policies      []metasched.Policy
	Interarrivals []float64 // mean interarrival gaps (seconds) to sweep
	Jobs          int       // submissions per cell
	Seed          int64
	Tick          float64 // admission round period
	StarveAfter   float64 // starvation threshold before preemption
	NWSPeriod     float64
	RunCap        float64 // virtual-time safety horizon per cell
}

// DefaultContentionConfig returns the standard sweep: every policy, a
// saturated arrival rate and a relaxed one, ten jobs per cell.
func DefaultContentionConfig() ContentionConfig {
	return ContentionConfig{
		Policies:      metasched.Policies(),
		Interarrivals: []float64{30, 240},
		Jobs:          10,
		Seed:          2,
		Tick:          5,
		StarveAfter:   180,
		NWSPeriod:     30,
		RunCap:        200000,
	}
}

// ContentionResult summarizes one sweep cell.
type ContentionResult struct {
	Policy       metasched.Policy
	Interarrival float64

	Jobs, Done, Failed       int
	Makespan                 float64
	MeanWait, P95Wait        float64
	Fairness                 float64 // Jain index over slowdowns
	Utilization              float64 // leased node-seconds / (nodes x makespan)
	PreemptOrders, Preempted int
	Requeues                 int
}

// qrEstRate is the coarse per-node delivered flop/s used only for the
// user-supplied runtime estimates (backfill reservations), deliberately
// rougher than the COP's own performance model.
const qrEstRate = 54e6

// contentionStream generates the deterministic submission stream for one
// arrival-rate cell: a seeded mix of QR factorizations (tightly coupled,
// single-site) and task farms (loosely coupled, any width), plus one wide
// high-bid "urgent" QR latecomer that must starve under contention and
// force a preemption negotiation.
func contentionStream(cfg ContentionConfig, interarrival float64) []metasched.JobSpec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := make([]metasched.JobSpec, 0, cfg.Jobs)
	t := 0.0
	urgent := cfg.Jobs * 3 / 5
	for i := 0; i < cfg.Jobs; i++ {
		t += rng.ExpFloat64() * interarrival
		submit := math.Round(t*10) / 10
		if i == urgent {
			specs = append(specs, qrJob(fmt.Sprintf("job%02d-urgent-qr", i), submit, 3000, 8, 4, 40))
			continue
		}
		bid := 1 + math.Round(rng.Float64()*70)/10
		if rng.Intn(2) == 0 {
			n := 2000 + 500*rng.Intn(5)
			width := 4 + rng.Intn(5)
			specs = append(specs, qrJob(fmt.Sprintf("job%02d-qr", i), submit, n, width, 2, bid))
		} else {
			tasks := 8 * (2 + rng.Intn(4))
			width := 2 + rng.Intn(5)
			specs = append(specs, farmJob(fmt.Sprintf("job%02d-farm", i), submit, tasks, width, bid))
		}
	}
	return specs
}

// qrJob builds a ScaLAPACK QR submission.
func qrJob(name string, submit float64, n, width, minWidth int, bid float64) metasched.JobSpec {
	return metasched.JobSpec{
		Name: name, Kind: "qr", Submit: submit,
		Width: width, MinWidth: minWidth, Bid: bid,
		EstRuntime: linalg.QRFlops(float64(n)) / (float64(width) * qrEstRate),
		Make: func(c *metasched.AppContext) (cop.COP, error) {
			q, err := apps.NewQR(c.Grid, c.RSS, c.Binder, c.Weather, n, 100)
			if err != nil {
				return nil, err
			}
			q.SetMaxProcs(width)
			q.CheckpointEvery = 5
			return q, nil
		},
	}
}

// farmJob builds a task-farm submission.
func farmJob(name string, submit float64, tasks, width int, bid float64) metasched.JobSpec {
	const taskFlops = 5e9
	return metasched.JobSpec{
		Name: name, Kind: "task-farm", Submit: submit,
		Width: width, MinWidth: 1, Bid: bid,
		EstRuntime: float64(tasks) * taskFlops / (float64(width) * 2 * qrEstRate),
		Make: func(c *metasched.AppContext) (cop.COP, error) {
			f, err := apps.NewTaskFarm(c.Grid, c.RSS, c.Binder, c.Weather, tasks, taskFlops, width)
			if err != nil {
				return nil, err
			}
			f.CheckpointEvery = 2
			return f, nil
		},
	}
}

// runContentionCell runs one policy x arrival-rate cell on a fresh
// environment and reduces the job records to the cell metrics.
func runContentionCell(cfg ContentionConfig, policy metasched.Policy, interarrival float64) (*ContentionResult, error) {
	env := NewEnv(cfg.Seed, topology.QRTestbed, "metasched", cfg.NWSPeriod)
	var sch *metasched.Scheduler
	mcfg := metasched.Config{
		Sim: env.Sim, Grid: env.Grid, GIS: env.GIS, Storage: env.Storage,
		Binder: env.Binder, Weather: env.Weather,
		Policy: policy, Tick: cfg.Tick, StarveAfter: cfg.StarveAfter,
		OnIdle: func() {
			if env.Weather != nil {
				env.Weather.Stop()
			}
			sch.Stop()
		},
	}
	s, err := metasched.New(mcfg)
	if err != nil {
		return nil, err
	}
	sch = s
	for _, spec := range contentionStream(cfg, interarrival) {
		if _, err := sch.Submit(spec); err != nil {
			return nil, err
		}
	}
	sch.Start()
	env.Sim.RunUntil(cfg.RunCap)

	res := &ContentionResult{
		Policy: policy, Interarrival: interarrival,
		Jobs:          cfg.Jobs,
		PreemptOrders: sch.PreemptOrders(),
		Preempted:     sch.PreemptApplied(),
	}
	var waits, slowdowns []float64
	for _, rec := range sch.Records() {
		res.Requeues += rec.Requeues
		switch rec.State {
		case "done":
			res.Done++
			if rec.Finish > res.Makespan {
				res.Makespan = rec.Finish
			}
			waits = append(waits, rec.Wait)
			if rec.Turnaround > 0 {
				ideal := rec.Turnaround - rec.Wait
				if ideal > 0 {
					slowdowns = append(slowdowns, rec.Turnaround/ideal)
				}
			}
		case "failed":
			res.Failed++
		}
	}
	res.MeanWait, res.P95Wait = meanP95(waits)
	res.Fairness = jainIndex(slowdowns)
	if res.Makespan > 0 {
		res.Utilization = sch.Leases().BusyNodeSeconds() /
			(float64(len(env.Grid.Nodes())) * res.Makespan)
	}
	return res, nil
}

// RunContention sweeps arrival rate x queue policy.
func RunContention(cfg ContentionConfig) ([]ContentionResult, error) {
	var out []ContentionResult
	for _, ia := range cfg.Interarrivals {
		for _, policy := range cfg.Policies {
			r, err := runContentionCell(cfg, policy, ia)
			if err != nil {
				return nil, fmt.Errorf("contention %s/ia=%g: %w", policy, ia, err)
			}
			out = append(out, *r)
		}
	}
	return out, nil
}

// meanP95 reduces a sample to its mean and 95th percentile.
func meanP95(xs []float64) (mean, p95 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	idx := int(math.Ceil(0.95*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sum / float64(len(sorted)), sorted[idx]
}

// jainIndex is Jain's fairness index (sum x)^2 / (n * sum x^2), 1 when all
// jobs suffer identical slowdown.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// ContentionTable renders the sweep as a table.
func ContentionTable(res []ContentionResult) *Table {
	t := &Table{Header: []string{
		"policy", "mean_gap_s", "done", "makespan_s", "wait_mean_s",
		"wait_p95_s", "fairness", "util", "preempts", "requeues",
	}}
	for _, r := range res {
		done := fmt.Sprintf("%d/%d", r.Done, r.Jobs)
		if r.Failed > 0 {
			done += fmt.Sprintf(" (%d failed)", r.Failed)
		}
		t.Add(string(r.Policy), Secs(r.Interarrival), done, Secs(r.Makespan),
			Secs(r.MeanWait), Secs(r.P95Wait), fmt.Sprintf("%.3f", r.Fairness),
			fmt.Sprintf("%.3f", r.Utilization),
			fmt.Sprintf("%d/%d", r.PreemptOrders, r.Preempted),
			fmt.Sprint(r.Requeues))
	}
	return t
}

// FormatContention renders the sweep report.
func FormatContention(res []ContentionResult) string {
	return ContentionTable(res).String() +
		"\n(preempts = stop-and-shrink orders issued / applied via SRS;" +
		"\n fairness = Jain index over per-job slowdowns)\n"
}
