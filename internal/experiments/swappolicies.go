package experiments

import "fmt"

// SwapPolicyResult is one policy's outcome on the Figure 4 scenario.
type SwapPolicyResult struct {
	Policy     string
	Completion float64 // 0 when the horizon was hit before finishing
	Swaps      int
}

// RunSwapPolicies replays the §4.2 scenario under each swapping policy —
// the policy study of the cited HPDC-12 paper ("we have designed and
// evaluated several policies"): no swapping, per-machine greedy, threshold,
// and the gang policy that moves the whole synchronized active set.
func RunSwapPolicies(cfg Fig4Config) ([]SwapPolicyResult, error) {
	var out []SwapPolicyResult
	for _, policy := range []string{"none", "greedy", "threshold", "gang"} {
		rt, done, err := fig4Run(cfg, policy)
		if err != nil {
			return nil, fmt.Errorf("swap policy %s: %w", policy, err)
		}
		out = append(out, SwapPolicyResult{
			Policy:     policy,
			Completion: done,
			Swaps:      rt.Swaps(),
		})
	}
	return out, nil
}

// FormatSwapPolicies renders the policy comparison.
func FormatSwapPolicies(results []SwapPolicyResult) string {
	t := &Table{Header: []string{"policy", "completion(s)", "swaps"}}
	for _, r := range results {
		c := "horizon"
		if r.Completion > 0 {
			c = Secs(r.Completion)
		}
		t.Add(r.Policy, c, fmt.Sprintf("%d", r.Swaps))
	}
	return t.String()
}
