package experiments

import (
	"fmt"
	"math/rand"

	"grads/internal/core"
	"grads/internal/listsched"
	"grads/internal/topology"
)

// DagZooConfig parameterizes the DAG-zoo leaderboard: every list-scheduling
// heuristic × rescheduling policy over a suite of synthetic DAG classes on
// the MacroGrid, with a mid-run node slowdown.
type DagZooConfig struct {
	Seed       int64
	Trials     int    // seeds (fresh DAG + grid) per class
	Zoo        string // zoo spec ("" = the default suite below)
	SlowFactor float64
}

// DefaultDagZooConfig returns the published leaderboard configuration.
func DefaultDagZooConfig() DagZooConfig {
	return DagZooConfig{Seed: 11, Trials: 5, SlowFactor: 3}
}

// dagZooPolicies are the rescheduling policies the leaderboard compares:
// ride out the slowdown on the original plan, or re-map the unstarted tasks
// around it.
var dagZooPolicies = []string{"static", "remap"}

// defaultDagZooSuite is the published class set: the low- and high-CCR
// variants stress where communication-aware heuristics should win.
var defaultDagZooSuite = []struct{ label, spec string }{
	{"chain", "chain:n=16,ccr=0.5"},
	{"fanout-lo", "fanout:width=24,ccr=0.25"},
	{"fanout-hi", "fanout:width=24,ccr=4"},
	{"diamond", "diamond:width=6,layers=4,ccr=1"},
	{"layered-hi", "layered:layers=4,width=8,fanin=3,ccr=4"},
	{"eman", "eman:n=400,width=8"},
}

// DagZooCell aggregates one (heuristic, policy) pair over a class's trials.
type DagZooCell struct {
	Heuristic string
	Policy    string
	MeanMk    float64 // mean executed (static) or re-planned (remap) makespan
	MeanSLR   float64 // makespan / critical-path lower bound
	MeanUtil  float64 // planned-schedule utilization
	Wins      int     // trials where this heuristic was strictly best under the policy
}

// DagZooClass is one DAG class's leaderboard.
type DagZooClass struct {
	Label string
	Spec  listsched.ZooSpec
	Tasks int
	Cells []DagZooCell // heuristic-major, policy-minor
}

// Mean returns the class's aggregate for one (heuristic, policy) pair.
func (c *DagZooClass) Mean(heuristic, policy string) (DagZooCell, bool) {
	for _, cell := range c.Cells {
		if cell.Heuristic == heuristic && cell.Policy == policy {
			return cell, true
		}
	}
	return DagZooCell{}, false
}

// RunDagZoo runs the leaderboard. Every schedule produced along the way is
// passed through the listsched validity harness; a violation fails the
// experiment rather than silently skewing the table.
func RunDagZoo(cfg DagZooConfig) ([]DagZooClass, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("dagzoo: %d trials", cfg.Trials)
	}
	if cfg.SlowFactor < 1 {
		return nil, fmt.Errorf("dagzoo: slow factor %v < 1", cfg.SlowFactor)
	}
	suite := defaultDagZooSuite
	if cfg.Zoo != "" {
		specs, err := listsched.ParseZoo(cfg.Zoo)
		if err != nil {
			return nil, err
		}
		suite = suite[:0:0]
		for _, z := range specs {
			suite = append(suite, struct{ label, spec string }{z.String(), z.String()})
		}
	}

	heuristics := listsched.Names()
	out := make([]DagZooClass, 0, len(suite))
	for classIdx, entry := range suite {
		specs, err := listsched.ParseZoo(entry.spec)
		if err != nil {
			return nil, err
		}
		z := specs[0]
		cls := DagZooClass{Label: entry.label, Spec: z, Tasks: z.Tasks()}

		type agg struct {
			mk, slr, util float64
			wins          int
		}
		aggs := make(map[string]*agg, len(heuristics)*len(dagZooPolicies))
		for _, h := range heuristics {
			for _, p := range dagZooPolicies {
				aggs[h+"/"+p] = &agg{}
			}
		}

		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(classIdx)*10_007 + int64(trial)))
			env := NewEnv(cfg.Seed+int64(trial), topology.MacroGrid, "dagzoo", 0)
			wf, err := z.Build(rng)
			if err != nil {
				return nil, fmt.Errorf("dagzoo %s trial %d: %w", cls.Label, trial, err)
			}
			s := core.NewScheduler(env.Grid, nil)
			resources := env.Grid.Nodes()
			cp := wf.CriticalPathTime(resources)
			if cp <= 0 {
				return nil, fmt.Errorf("dagzoo %s trial %d: critical path %v", cls.Label, trial, cp)
			}

			// Per-policy makespans of this trial, for win counting.
			mks := map[string][]float64{}
			for _, name := range heuristics {
				h, err := listsched.New(name)
				if err != nil {
					return nil, err
				}
				staticMk, remapMk, util, err := dagZooTrial(s, wf, resources, h, cfg.SlowFactor)
				if err != nil {
					return nil, fmt.Errorf("dagzoo %s trial %d %s: %w", cls.Label, trial, name, err)
				}
				a := aggs[name+"/static"]
				a.mk += staticMk
				a.slr += staticMk / cp
				a.util += util
				a = aggs[name+"/remap"]
				a.mk += remapMk
				a.slr += remapMk / cp
				a.util += util
				mks["static"] = append(mks["static"], staticMk)
				mks["remap"] = append(mks["remap"], remapMk)
			}
			for _, p := range dagZooPolicies {
				best := 0
				for i, v := range mks[p] {
					if v < mks[p][best] {
						best = i
					}
				}
				aggs[heuristics[best]+"/"+p].wins++
			}
		}

		n := float64(cfg.Trials)
		for _, h := range heuristics {
			for _, p := range dagZooPolicies {
				a := aggs[h+"/"+p]
				cls.Cells = append(cls.Cells, DagZooCell{
					Heuristic: h, Policy: p,
					MeanMk: a.mk / n, MeanSLR: a.slr / n, MeanUtil: a.util / n,
					Wins: a.wins,
				})
			}
		}
		out = append(out, cls)
	}
	return out, nil
}

// dagZooTrial runs one heuristic through both policies on one DAG: plan,
// execute the plan under a mid-run slowdown of the plan's busiest node
// (static), then re-plan the unstarted tasks around the degradation with the
// started tasks pinned as advance reservations (remap).
func dagZooTrial(s *core.Scheduler, wf *core.Workflow, resources []*topology.Node,
	h listsched.Heuristic, slowFactor float64) (staticMk, remapMk, util float64, err error) {
	ctx := listsched.NewContext(s, wf, resources)
	res, err := h.Schedule(ctx)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := listsched.CheckResult(ctx, res); err != nil {
		return 0, 0, 0, fmt.Errorf("plan: %w", err)
	}

	// Degrade the plan's busiest resource halfway through.
	busiest := 0
	for k, tl := range res.Timelines {
		if tl.Busy() > res.Timelines[busiest].Busy() {
			busiest = k
		}
	}
	pert := listsched.Perturbation{Node: resources[busiest], At: res.Makespan / 2, Factor: slowFactor}
	actual, staticMk, err := listsched.ExecuteStatic(ctx, res, pert)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("static execution: %w", err)
	}

	// Remap: tasks started before the perturbation keep their executed slots
	// (as advance reservations on a fresh context); the rest re-schedule with
	// the degradation visible to the cost model.
	rctx := listsched.NewContext(s, wf, resources)
	rctx.NotBefore = pert.At
	rctx.SlowNode = pert.Node
	rctx.SlowFactor = slowFactor
	ri := make(map[*topology.Node]int, len(resources))
	for k, r := range resources {
		ri[r] = k
	}
	for i, a := range actual {
		if a.Start >= pert.At {
			continue
		}
		rctx.Done[i] = true
		rctx.Assign[i] = a
		if err := rctx.Reserve(ri[a.Node], a.Start, a.Finish-a.Start, listsched.SlotLabel(i)); err != nil {
			return 0, 0, 0, fmt.Errorf("remap pin %d: %w", i, err)
		}
	}
	rres, err := h.Schedule(rctx)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("remap: %w", err)
	}
	if err := listsched.CheckResult(rctx, rres); err != nil {
		return 0, 0, 0, fmt.Errorf("remap: %w", err)
	}
	return staticMk, rres.Makespan, res.Utilization(), nil
}

// DagZooTable renders the leaderboard as one flat table.
func DagZooTable(classes []DagZooClass) *Table {
	t := &Table{Header: []string{"class", "tasks", "heuristic", "policy", "mean-makespan(s)", "slr", "util", "wins"}}
	for _, c := range classes {
		for _, cell := range c.Cells {
			t.Add(c.Label, fmt.Sprintf("%d", c.Tasks), cell.Heuristic, cell.Policy,
				Secs(cell.MeanMk), fmt.Sprintf("%.2f", cell.MeanSLR),
				fmt.Sprintf("%.3f", cell.MeanUtil), fmt.Sprintf("%d", cell.Wins))
		}
	}
	return t
}

// FormatDagZoo renders the leaderboard grouped by class.
func FormatDagZoo(classes []DagZooClass) string {
	return DagZooTable(classes).String()
}

// RunZoo schedules an explicit zoo spec (the gradsim -zoo flag) with one
// heuristic (the -heuristic flag) on the MacroGrid and reports per-DAG
// makespan, schedule length ratio and utilization. Every schedule passes
// the validity harness first.
func RunZoo(spec, heuristic string, seed int64) (string, error) {
	if seed == 0 {
		seed = 1
	}
	specs, err := listsched.ParseZoo(spec)
	if err != nil {
		return "", err
	}
	h, err := listsched.New(heuristic)
	if err != nil {
		return "", err
	}
	env := NewEnv(seed, topology.MacroGrid, "zoo", 0)
	s := core.NewScheduler(env.Grid, nil)
	resources := env.Grid.Nodes()
	rng := rand.New(rand.NewSource(seed))

	t := &Table{Header: []string{"dag", "tasks", "makespan(s)", "slr", "util"}}
	for _, z := range specs {
		wf, err := z.Build(rng)
		if err != nil {
			return "", err
		}
		ctx := listsched.NewContext(s, wf, resources)
		res, err := h.Schedule(ctx)
		if err != nil {
			return "", err
		}
		if err := listsched.CheckResult(ctx, res); err != nil {
			return "", err
		}
		cp := wf.CriticalPathTime(resources)
		slr := 0.0
		if cp > 0 {
			slr = res.Makespan / cp
		}
		t.Add(z.String(), fmt.Sprintf("%d", wf.Len()), Secs(res.Makespan),
			fmt.Sprintf("%.2f", slr), fmt.Sprintf("%.3f", res.Utilization()))
	}
	return fmt.Sprintf("zoo scheduling — heuristic %s on the MacroGrid (seed %d)\n\n%s",
		heuristic, seed, t.String()), nil
}

// RunDagZooSmoke is the CI determinism case: a compressed multi-seed
// leaderboard whose byte-identical output (and embedded validity checks)
// gate the determinism matrix.
func RunDagZooSmoke(seeds []int64) (string, error) {
	var out string
	for _, seed := range seeds {
		cfg := DagZooConfig{
			Seed:       seed,
			Trials:     2,
			Zoo:        "chain:n=8,ccr=0.5;fanout:width=8,ccr=2;layered:layers=3,width=5,fanin=2,ccr=2",
			SlowFactor: 3,
		}
		classes, err := RunDagZoo(cfg)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("seed %d:\n%s\n", seed, FormatDagZoo(classes))
	}
	return "CI dagzoo smoke — compressed leaderboard, validity-checked per schedule\n\n" + out, nil
}
