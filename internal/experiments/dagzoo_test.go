package experiments

import (
	"testing"

	"grads/internal/listsched"
)

// TestDagZooLeaderboard runs the published configuration and pins the
// acceptance property: on the wide fan-out high-CCR class the
// communication-aware HEFT beats the paper's min-min under both policies.
// Every schedule inside RunDagZoo already passes the validity harness.
func TestDagZooLeaderboard(t *testing.T) {
	classes, err := RunDagZoo(DefaultDagZooConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != len(defaultDagZooSuite) {
		t.Fatalf("%d classes, want %d", len(classes), len(defaultDagZooSuite))
	}
	byLabel := map[string]*DagZooClass{}
	for i := range classes {
		byLabel[classes[i].Label] = &classes[i]
		for _, cell := range classes[i].Cells {
			if cell.MeanMk <= 0 {
				t.Errorf("%s %s/%s: mean makespan %v", classes[i].Label, cell.Heuristic, cell.Policy, cell.MeanMk)
			}
			if cell.MeanSLR < 0.99 {
				t.Errorf("%s %s/%s: SLR %v below the critical-path lower bound",
					classes[i].Label, cell.Heuristic, cell.Policy, cell.MeanSLR)
			}
			if cell.MeanUtil <= 0 || cell.MeanUtil > 1 {
				t.Errorf("%s %s/%s: utilization %v", classes[i].Label, cell.Heuristic, cell.Policy, cell.MeanUtil)
			}
		}
	}
	for _, label := range []string{"fanout-hi", "fanout-lo"} {
		cls, ok := byLabel[label]
		if !ok {
			t.Fatalf("class %s missing", label)
		}
		for _, policy := range dagZooPolicies {
			heft, ok1 := cls.Mean(listsched.HEFT, policy)
			minmin, ok2 := cls.Mean(listsched.MinMinAdapter, policy)
			if !ok1 || !ok2 {
				t.Fatalf("%s: missing heft/min-min cells", label)
			}
			if heft.MeanMk >= minmin.MeanMk {
				t.Errorf("%s/%s: HEFT mean makespan %v does not beat min-min %v",
					label, policy, heft.MeanMk, minmin.MeanMk)
			}
		}
	}
}

// TestDagZooSmokeDeterministic: the CI smoke case is byte-identical across
// runs in one process — the cheap local version of the determinism matrix.
func TestDagZooSmokeDeterministic(t *testing.T) {
	a, err := RunDagZooSmoke([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDagZooSmoke([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("smoke output differs between identical runs")
	}
}

// TestRunZooReport exercises the -zoo CLI path over every class and both an
// unknown heuristic and a malformed spec error.
func TestRunZooReport(t *testing.T) {
	out, err := RunZoo("chain:n=6;fanout:width=6,ccr=2;diamond:width=3,layers=2;layered:layers=3,width=4;eman:n=100,width=4", "cpop", 3)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty report")
	}
	if _, err := RunZoo("chain", "nope", 1); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if _, err := RunZoo("ring:n=4", "heft", 1); err == nil {
		t.Fatal("bad spec accepted")
	}
}
