package experiments

import (
	"fmt"

	"grads/internal/apps"
	"grads/internal/mpi"
	"grads/internal/swap"
	"grads/internal/topology"
)

// Fig4Config parameterizes the §4.2.2 process-swapping demonstration on the
// MicroGrid virtual Grid.
type Fig4Config struct {
	Bodies     int
	Iterations int
	Active     int // initial active processes (paper: 3, all at UTK)

	LoadAt    float64 // virtual time the competitive processes start
	LoadProcs float64 // paper: two competitive processes on one UTK machine

	Policy       string  // "gang" (paper behavior), "greedy", "threshold", "none"
	DaemonPeriod float64 // swapping-rescheduler check period
	Horizon      float64 // simulation cutoff
}

// DefaultFig4Config mirrors the paper's demonstration run: ~1 s iterations
// on the 550 MHz UTK nodes, two competitive processes on one UTK machine at
// t=80s, and a swap of all three working processes to UIUC shortly after.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Bodies:       5700,
		Iterations:   220,
		Active:       3,
		LoadAt:       80,
		LoadProcs:    2,
		Policy:       "gang",
		DaemonPeriod: 30,
		Horizon:      600,
	}
}

// Fig4Result carries the progress traces Figure 4 plots.
type Fig4Result struct {
	Progress  []swap.IterMark // with the swapping rescheduler
	Baseline  []swap.IterMark // same run without swapping
	SwapTimes []float64       // when the swaps completed
	Swaps     int
	LoadAt    float64
	Completed float64 // completion time with swapping (0 if horizon hit)
	BaseDone  float64 // completion time without swapping (0 if horizon hit)
}

// buildFig4Policy resolves a policy name over the world placement.
func buildFig4Policy(name string, nodes []*topology.Node) (swap.Policy, error) {
	switch name {
	case "gang":
		return swap.GangPolicy{
			Gain:   1.2,
			SiteOf: func(phys int) string { return nodes[phys].Site().Name },
		}, nil
	case "greedy":
		return swap.GreedyPolicy{Gain: 1.3}, nil
	case "threshold":
		return swap.ThresholdPolicy{Fraction: 0.7}, nil
	case "none":
		return swap.NonePolicy{}, nil
	}
	return nil, fmt.Errorf("fig4: unknown policy %q", name)
}

// fig4Run executes one N-body run under a policy on the MicroGrid testbed.
func fig4Run(cfg Fig4Config, policy string) (*swap.Runtime, float64, error) {
	return fig4RunOn(cfg, policy, topology.MicroGridTestbed)
}

// fig4RunOn executes the scenario on an arbitrary testbed (the MicroGrid/
// MacroGrid cross-validation uses this). It returns the swap runtime and
// the completion time (0 when the horizon was hit first).
func fig4RunOn(cfg Fig4Config, policy string, build GridBuilder) (*swap.Runtime, float64, error) {
	env := NewEnv(1, build, "nbody", 0)
	var nodes []*topology.Node
	nodes = append(nodes, env.Grid.Site("UTK").Nodes()...)
	nodes = append(nodes, env.Grid.Site("UIUC").Nodes()...)
	world := mpi.NewWorld(env.Sim, env.Grid, "nbody", nodes)

	nb := apps.NewNBody(cfg.Bodies, cfg.Iterations)
	rt := swap.NewRuntime(world, cfg.Active, nb.StateBytes(cfg.Active))

	pol, err := buildFig4Policy(policy, nodes)
	if err != nil {
		return nil, 0, err
	}
	daemon := swap.StartDaemon(env.Sim, rt, pol, cfg.DaemonPeriod, swap.NodeSpeed(nodes))

	// The paper's two competitive processes land on one UTK machine at
	// t=80 seconds.
	env.Sim.At(cfg.LoadAt, func() {
		env.Grid.Site("UTK").Nodes()[1].CPU.SetExternalLoad(cfg.LoadProcs)
	})

	rt.Run(env.Sim, nb.Body(cfg.Active), cfg.Iterations)
	env.Sim.RunUntil(cfg.Horizon)
	daemon.Stop()
	env.Sim.RunUntil(cfg.Horizon) // drain daemon shutdown

	if err := world.Err(); err != nil {
		return nil, 0, err
	}
	done := 0.0
	prog := rt.Progress()
	if len(prog) > 0 && prog[len(prog)-1].Iter == cfg.Iterations {
		done = prog[len(prog)-1].Time
	}
	return rt, done, nil
}

// RunFig4 executes the demonstration with the configured policy and the
// no-swap baseline.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	rt, done, err := fig4Run(cfg, cfg.Policy)
	if err != nil {
		return nil, err
	}
	base, baseDone, err := fig4Run(cfg, "none")
	if err != nil {
		return nil, err
	}
	return &Fig4Result{
		Progress:  rt.Progress(),
		Baseline:  base.Progress(),
		SwapTimes: rt.SwapTimes(),
		Swaps:     rt.Swaps(),
		LoadAt:    cfg.LoadAt,
		Completed: done,
		BaseDone:  baseDone,
	}, nil
}

// FormatFig4 renders the progress series (iteration vs time) the way the
// figure plots it, sampled every sampleEvery iterations, plus the events.
func FormatFig4(r *Fig4Result, sampleEvery int) string {
	if sampleEvery < 1 {
		sampleEvery = 10
	}
	t := &Table{Header: []string{"iteration", "t-with-swap(s)", "t-no-swap(s)"}}
	base := map[int]float64{}
	for _, m := range r.Baseline {
		base[m.Iter] = m.Time
	}
	for _, m := range r.Progress {
		if m.Iter%sampleEvery != 0 {
			continue
		}
		b := "-"
		if bt, ok := base[m.Iter]; ok {
			b = Secs(bt)
		}
		t.Add(fmt.Sprintf("%d", m.Iter), Secs(m.Time), b)
	}
	s := t.String()
	s += fmt.Sprintf("\nload injected at t=%.0fs; %d swap(s) completed at %v\n",
		r.LoadAt, r.Swaps, r.SwapTimes)
	if r.Completed > 0 && r.BaseDone > 0 {
		s += fmt.Sprintf("completion: %.1fs with swapping vs %.1fs without (%.0f%% faster)\n",
			r.Completed, r.BaseDone, 100*(r.BaseDone-r.Completed)/r.BaseDone)
	}
	return s
}
