package experiments

import (
	"fmt"

	"grads/internal/appmgr"
	"grads/internal/apps"
	"grads/internal/autopilot"
	"grads/internal/rescheduler"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// Fig3Config parameterizes the §4.1.2 stop/restart experiment.
type Fig3Config struct {
	Sizes []int // matrix sizes (the paper sweeps 6000..12000)
	NB    int   // ScaLAPACK panel width

	// LoadAfterStart is how long after the application's first panel the
	// artificial load is introduced on one UTK node (the paper's "five
	// minutes after the start of the application").
	LoadAfterStart float64
	LoadProcs      float64 // competing processes added (paper: an artificial load)

	// WorstCaseCost reproduces the paper's experimentally determined
	// worst-case rescheduling cost of 900 s used by the deployed
	// rescheduler.
	WorstCaseCost float64

	MonitorPeriod float64
	// UpperTolerance is the contract's initial upper ratio limit. With a
	// single competing process the loaded ratio is just under 2, so the
	// limit sits below that.
	UpperTolerance float64
}

// DefaultFig3Config returns the paper-faithful configuration.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Sizes:          []int{6000, 7000, 8000, 9000, 10000, 11000, 12000},
		NB:             100,
		LoadAfterStart: 300,
		LoadProcs:      1,
		WorstCaseCost:  900,
		MonitorPeriod:  15,
		UpperTolerance: 1.5,
	}
}

// Fig3Row is one matrix size's outcome: the two forced-mode executions
// (the paired bars of Figure 3) plus the decisions the rescheduler would
// take.
type Fig3Row struct {
	N            int
	Stay         *appmgr.Report // no rescheduling (left bar)
	Migrate      *appmgr.Report // rescheduling (right bar)
	StayTotal    float64
	MigrateTotal float64

	ViolationAt float64 // when the contract monitor fired (stay run)

	HonestDecision    bool    // decision with an estimated migration cost
	WorstCaseDecision bool    // decision with the fixed 900 s cost
	HonestCost        float64 // the honest cost estimate
	ActualCost        float64 // measured migration overhead (migrate run)
	MigrationHelps    bool    // ground truth: migrate total < stay total
}

// RunFig3 executes the experiment for every size and returns the rows.
func RunFig3(cfg Fig3Config) ([]Fig3Row, error) {
	rows := make([]Fig3Row, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		stay, err := fig3Scenario(n, cfg, rescheduler.ModeForceStay)
		if err != nil {
			return nil, fmt.Errorf("fig3 N=%d stay: %w", n, err)
		}
		migrate, err := fig3Scenario(n, cfg, rescheduler.ModeForceMigrate)
		if err != nil {
			return nil, fmt.Errorf("fig3 N=%d migrate: %w", n, err)
		}
		row := Fig3Row{
			N:                 n,
			Stay:              stay.report,
			Migrate:           migrate.report,
			StayTotal:         stay.report.Total,
			MigrateTotal:      migrate.report.Total,
			ViolationAt:       stay.violationAt,
			HonestDecision:    stay.honest.Migrate,
			WorstCaseDecision: stay.worstCase.Migrate,
			HonestCost:        stay.honest.MigrationCost,
			MigrationHelps:    migrate.report.Total < stay.report.Total,
		}
		row.ActualCost = migrate.report.Sum(appmgr.PhaseCkptWrite, 0) +
			migrate.report.Sum(appmgr.PhaseCkptRead, 0) +
			migrate.report.Sum(appmgr.PhaseResourceSelection, 2) +
			migrate.report.Sum(appmgr.PhasePerfModeling, 2) +
			migrate.report.Sum(appmgr.PhaseGridOverhead, 2) +
			migrate.report.Sum(appmgr.PhaseAppStart, 2)
		rows = append(rows, row)
	}
	return rows, nil
}

// fig3Run carries one scenario's outputs.
type fig3Run struct {
	report      *appmgr.Report
	violationAt float64
	honest      rescheduler.Decision
	worstCase   rescheduler.Decision
}

// fig3Scenario runs one managed QR execution end to end under the given
// rescheduler mode: schedule on the (initially faster) UTK cluster, inject
// load, detect the contract violation, decide, and (in migrate mode)
// checkpoint, move to UIUC and restart.
func fig3Scenario(n int, cfg Fig3Config, mode rescheduler.Mode) (*fig3Run, error) {
	env := NewEnv(1, topology.QRTestbed, "qr", 10)
	qr, err := apps.NewQR(env.Grid, env.RSS, env.Binder, env.Weather, n, cfg.NB)
	if err != nil {
		return nil, err
	}
	mgr := appmgr.New(env.Sim, env.Grid, env.Binder, env.Weather)
	mgr.RSS = env.RSS

	resch := rescheduler.New(env.Grid, env.Weather)
	resch.Mode = mode
	resch.WorstCaseCost = cfg.WorstCaseCost

	out := &fig3Run{}
	contract := &autopilot.Contract{
		Name:       fmt.Sprintf("qr-%d", n),
		Predicted:  autopilot.Sensor(qr.PredictedPanelSensor()),
		Actual:     autopilot.Sensor(qr.ActualPanelSensor()),
		UpperLimit: cfg.UpperTolerance,
	}
	mon := autopilot.NewMonitor(env.Sim, contract, cfg.MonitorPeriod)
	mon.OnViolation = func(v autopilot.Violation) bool {
		if out.violationAt == 0 {
			out.violationAt = v.Time
			// Record what each decision policy would do, regardless of
			// the forced mode actually driving this run.
			candidates := rescheduler.SiteCandidates(env.Grid.Nodes())
			honest := rescheduler.New(env.Grid, env.Weather)
			out.honest = honest.Evaluate(qr, qr.CurNodes(), candidates)
			pess := rescheduler.New(env.Grid, env.Weather)
			pess.WorstCaseCost = cfg.WorstCaseCost
			out.worstCase = pess.Evaluate(qr, qr.CurNodes(), candidates)
		}
		d := resch.Evaluate(qr, qr.CurNodes(), rescheduler.SiteCandidates(env.Grid.Nodes()))
		if !d.Migrate {
			return false
		}
		mgr.NextNodes = d.Target
		env.RSS.RequestStop(len(qr.CurNodes()))
		return true
	}
	mon.Start()

	// Artificial load on the first scheduled node, LoadAfterStart seconds
	// after the application's first panel completes.
	env.Sim.Spawn("load-injector", func(p *simcore.Proc) {
		for qr.DonePanels() == 0 {
			if p.Sleep(1) != nil {
				return
			}
		}
		if p.Sleep(cfg.LoadAfterStart) != nil {
			return
		}
		nodes := qr.CurNodes()
		if len(nodes) > 0 {
			nodes[0].CPU.SetExternalLoad(cfg.LoadProcs)
		}
	})

	var execErr error
	env.Sim.Spawn("user", func(p *simcore.Proc) {
		out.report, execErr = mgr.Execute(p, qr, env.Grid.Nodes())
		mon.Stop()
		if env.Weather != nil {
			env.Weather.Stop()
		}
	})
	env.Sim.Run()
	if execErr != nil {
		return nil, execErr
	}
	if out.report == nil {
		return nil, fmt.Errorf("fig3: execution did not complete")
	}
	return out, nil
}

// FormatFig3 renders the Figure 3 bars (phase breakdown per size, left =
// no rescheduling, right = rescheduling) as a table.
func FormatFig3(rows []Fig3Row) string {
	t := &Table{Header: []string{
		"N", "mode", "rsel", "model", "grid", "start", "ckptW", "ckptR",
		"rsel2", "model2", "grid2", "start2", "app1", "app2", "TOTAL",
	}}
	for _, r := range rows {
		for _, side := range []struct {
			name string
			rep  *appmgr.Report
		}{{"stay", r.Stay}, {"migrate", r.Migrate}} {
			rep := side.rep
			appDur1 := rep.Sum(appmgr.PhaseAppDuration, 1)
			appDur2 := rep.Sum(appmgr.PhaseAppDuration, 2)
			t.Add(
				fmt.Sprintf("%d", r.N), side.name,
				Secs(rep.Sum(appmgr.PhaseResourceSelection, 1)),
				Secs(rep.Sum(appmgr.PhasePerfModeling, 1)),
				Secs(rep.Sum(appmgr.PhaseGridOverhead, 1)),
				Secs(rep.Sum(appmgr.PhaseAppStart, 1)),
				Secs(rep.Sum(appmgr.PhaseCkptWrite, 0)),
				Secs(rep.Sum(appmgr.PhaseCkptRead, 0)),
				Secs(rep.Sum(appmgr.PhaseResourceSelection, 2)),
				Secs(rep.Sum(appmgr.PhasePerfModeling, 2)),
				Secs(rep.Sum(appmgr.PhaseGridOverhead, 2)),
				Secs(rep.Sum(appmgr.PhaseAppStart, 2)),
				Secs(appDur1), Secs(appDur2), Secs(rep.Total),
			)
		}
	}
	return t.String()
}

// FormatFig3Decisions renders the §4.1.2 decision narrative: what the
// deployed (worst-case-cost) rescheduler decided per size, what an honest
// estimate would decide, and the ground truth.
func FormatFig3Decisions(rows []Fig3Row) string {
	t := &Table{Header: []string{
		"N", "stay(s)", "migrate(s)", "helps?", "900s-decision", "honest-decision",
		"est-cost(s)", "actual-cost(s)", "900s-correct?",
	}}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	dec := func(b bool) string {
		if b {
			return "migrate"
		}
		return "stay"
	}
	for _, r := range rows {
		t.Add(
			fmt.Sprintf("%d", r.N),
			Secs(r.StayTotal), Secs(r.MigrateTotal),
			yn(r.MigrationHelps),
			dec(r.WorstCaseDecision), dec(r.HonestDecision),
			Secs(r.HonestCost), Secs(r.ActualCost),
			yn(r.WorstCaseDecision == r.MigrationHelps),
		)
	}
	return t.String()
}
