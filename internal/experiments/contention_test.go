package experiments

import (
	"reflect"
	"strings"
	"testing"

	"grads/internal/metasched"
)

func smallContentionConfig() ContentionConfig {
	cfg := DefaultContentionConfig()
	cfg.Interarrivals = []float64{30}
	cfg.Jobs = 8
	return cfg
}

// TestRunContentionSweep: the saturated-arrival sweep completes every job
// under every policy with sane metrics, and the urgent latecomer forces at
// least one SRS preemption under a priority-ordered policy.
func TestRunContentionSweep(t *testing.T) {
	res, err := RunContention(smallContentionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(metasched.Policies()) {
		t.Fatalf("got %d cells, want one per policy", len(res))
	}
	preempted := 0
	for _, r := range res {
		if r.Done != r.Jobs || r.Failed != 0 {
			t.Fatalf("%s: done=%d failed=%d of %d jobs", r.Policy, r.Done, r.Failed, r.Jobs)
		}
		if r.Makespan <= 0 || r.MeanWait < 0 || r.P95Wait < r.MeanWait {
			t.Fatalf("%s: implausible metrics %+v", r.Policy, r)
		}
		if r.Fairness <= 0 || r.Fairness > 1 {
			t.Fatalf("%s: Jain index %.3f outside (0, 1]", r.Policy, r.Fairness)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Fatalf("%s: utilization %.3f outside (0, 1]", r.Policy, r.Utilization)
		}
		if r.Policy == metasched.PolicyFIFO && r.PreemptOrders != 0 {
			t.Fatalf("fifo cell issued %d preemption orders, want 0", r.PreemptOrders)
		}
		if r.Policy != metasched.PolicyFIFO {
			preempted += r.Preempted
		}
	}
	if preempted == 0 {
		t.Fatal("no priority cell applied an SRS preemption; the urgent job never triggered one")
	}

	out := FormatContention(res)
	if !strings.Contains(out, "fifo") || !strings.Contains(out, "priority-backfill") {
		t.Fatalf("report missing policies:\n%s", out)
	}
	if csv := ContentionTable(res).CSV(); !strings.Contains(csv, "policy,mean_gap_s") {
		t.Fatalf("CSV header missing:\n%s", csv)
	}
}

// TestContentionDeterministic: the same seeded cell produces the exact same
// result struct twice.
func TestContentionDeterministic(t *testing.T) {
	cfg := smallContentionConfig()
	run := func() ContentionResult {
		r, err := runContentionCell(cfg, metasched.PolicyBackfill, 30)
		if err != nil {
			t.Fatal(err)
		}
		return *r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded contention runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestContentionStreamShape: the generated stream is sorted by submit time,
// mixes both application kinds, and carries exactly one urgent wide QR.
func TestContentionStreamShape(t *testing.T) {
	cfg := smallContentionConfig()
	specs := contentionStream(cfg, 30)
	if len(specs) != cfg.Jobs {
		t.Fatalf("got %d specs, want %d", len(specs), cfg.Jobs)
	}
	kinds := map[string]int{}
	urgent := 0
	for i, s := range specs {
		kinds[s.Kind]++
		if i > 0 && s.Submit < specs[i-1].Submit {
			t.Fatalf("submissions out of order at %d: %g < %g", i, s.Submit, specs[i-1].Submit)
		}
		if strings.Contains(s.Name, "urgent") {
			urgent++
			if s.Bid < 10 || s.Width < 8 {
				t.Fatalf("urgent job too meek: %+v", s)
			}
		}
	}
	if urgent != 1 {
		t.Fatalf("got %d urgent jobs, want 1", urgent)
	}
	if kinds["qr"] == 0 || kinds["task-farm"] == 0 {
		t.Fatalf("stream not mixed: %v", kinds)
	}
}
