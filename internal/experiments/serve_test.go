package experiments

import (
	"strings"
	"testing"
)

// TestRunServeSweep: the full default sweep preserves request conservation
// (enforced inside runServeCell), reports sane metrics per cell, and at the
// highest contention the bandit beats blind round-robin on fleet p95 — the
// headline claim of the checked-in report.
func TestRunServeSweep(t *testing.T) {
	cfg := DefaultServeConfig()
	res, err := RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Rates) * len(cfg.Policies); len(res) != want {
		t.Fatalf("got %d cells, want %d", len(res), want)
	}
	byKey := map[string]ServeResult{}
	for _, r := range res {
		s := r.Stats
		if s.Requests == 0 {
			t.Fatalf("%s/%.2f: empty cell", r.Policy, r.Rate)
		}
		if s.Pending != 0 {
			t.Fatalf("%s/%.2f: %d requests still pending at drain", r.Policy, r.Rate, s.Pending)
		}
		if s.Fairness <= 0 || s.Fairness > 1 {
			t.Fatalf("%s/%.2f: Jain index %.3f outside (0, 1]", r.Policy, r.Rate, s.Fairness)
		}
		if s.P95 < s.P50 || s.P99 < s.P95 {
			t.Fatalf("%s/%.2f: quantiles not monotone: %+v", r.Policy, r.Rate, s)
		}
		if len(s.Classes) != 3 {
			t.Fatalf("%s/%.2f: %d classes, want 3", r.Policy, r.Rate, len(s.Classes))
		}
		byKey[r.Policy] = r
	}
	top := cfg.Rates[len(cfg.Rates)-1]
	ucb, rr := byKey["ucb"], byKey["rr"]
	if ucb.Rate != top || rr.Rate != top {
		t.Fatalf("missing highest-rate cells: ucb at %.2f, rr at %.2f", ucb.Rate, rr.Rate)
	}
	if ucb.Stats.P95 >= rr.Stats.P95 {
		t.Fatalf("bandit p95 %.1f s not below round-robin %.1f s at %.2f req/s",
			ucb.Stats.P95, rr.Stats.P95, top)
	}

	out := FormatServe(res)
	for _, want := range []string{"ucb", "least", "rr", "int", "batch", "bulk", "the bandit holds p95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if csv := ServeClassTable(res).CSV(); !strings.Contains(csv, "policy,rate_rps,class") {
		t.Fatalf("CSV header missing:\n%s", csv)
	}
}

// TestRunServeDeterministic: the same sweep twice yields the same report
// byte-for-byte (the serve report joins the -exp all determinism contract).
func TestRunServeDeterministic(t *testing.T) {
	run := func() string {
		res, err := RunServe(DefaultServeConfig())
		if err != nil {
			t.Fatal(err)
		}
		return FormatServe(res)
	}
	if a, b := run(), run(); a != b {
		t.Fatal("identical serve sweeps produced different reports")
	}
}

// TestRunArrivals: the explicit-workload runner echoes the canonical spec
// and reports through the standard tables.
func TestRunArrivals(t *testing.T) {
	out, err := RunArrivals("poisson@0-400:rate=0.1,mix=int:1", "least", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"poisson@0-400:rate=0.1,mix=int:1", "least", "fleet view"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if _, err := RunArrivals("burst@0-10:rate=1", "least", 0); err == nil {
		t.Fatal("bad arrivals spec accepted")
	}
	if _, err := RunArrivals("poisson@0-10:rate=1", "random-forest", 0); err == nil {
		t.Fatal("bad policy accepted")
	}
}
