package experiments

import (
	"fmt"

	"grads/internal/apps"
	"grads/internal/cop"
	"grads/internal/linalg"
	"grads/internal/metasched"
	"grads/internal/topology"
)

// JobStreamConfig parameterizes an explicit -jobs submission-stream run:
// the parsed stream, the queue policy, and the broker knobs (defaults from
// the contention sweep).
type JobStreamConfig struct {
	Entries     []metasched.StreamEntry
	Policy      metasched.Policy
	Seed        int64
	Tick        float64
	StarveAfter float64
	NWSPeriod   float64
	RunCap      float64
}

// DefaultJobStreamConfig wraps a parsed stream with the standard broker
// configuration on the QR testbed.
func DefaultJobStreamConfig(entries []metasched.StreamEntry) JobStreamConfig {
	return JobStreamConfig{
		Entries: entries, Policy: metasched.PolicyBackfill,
		Seed: 2, Tick: 5, StarveAfter: 180, NWSPeriod: 30, RunCap: 200000,
	}
}

// streamJobSpec binds one parsed stream entry to a runnable submission:
// a QR or task-farm COP constructor plus the broker-facing shape. Missing
// runtime estimates are derived from the job shape exactly like the
// contention sweep's generator derives them.
func streamJobSpec(i int, e metasched.StreamEntry) metasched.JobSpec {
	spec := metasched.JobSpec{
		Name:       fmt.Sprintf("job%02d-%s", i, e.Kind),
		Submit:     e.Submit,
		Width:      e.Width,
		MinWidth:   e.MinWidth,
		Bid:        e.Bid,
		EstRuntime: e.Est,
	}
	if spec.Bid == 0 {
		spec.Bid = 1
	}
	switch e.Kind {
	case "qr":
		n, width := e.N, e.Width
		spec.Kind = "qr"
		if spec.EstRuntime == 0 {
			spec.EstRuntime = linalg.QRFlops(float64(n)) / (float64(width) * qrEstRate)
		}
		spec.Make = func(c *metasched.AppContext) (cop.COP, error) {
			q, err := apps.NewQR(c.Grid, c.RSS, c.Binder, c.Weather, n, 100)
			if err != nil {
				return nil, err
			}
			q.SetMaxProcs(width)
			q.CheckpointEvery = 5
			return q, nil
		}
	case "farm":
		const taskFlops = 5e9
		tasks, width := e.Tasks, e.Width
		spec.Kind = "task-farm"
		if spec.MinWidth == 0 {
			spec.MinWidth = 1
		}
		if spec.EstRuntime == 0 {
			spec.EstRuntime = float64(tasks) * taskFlops / (float64(width) * 2 * qrEstRate)
		}
		spec.Make = func(c *metasched.AppContext) (cop.COP, error) {
			f, err := apps.NewTaskFarm(c.Grid, c.RSS, c.Binder, c.Weather, tasks, taskFlops, width)
			if err != nil {
				return nil, err
			}
			f.CheckpointEvery = 2
			return f, nil
		}
	}
	return spec
}

// RunJobStream pushes an explicit submission stream through the
// metascheduler broker on the QR testbed and returns the per-job outcome
// records in submission order.
func RunJobStream(cfg JobStreamConfig) ([]metasched.Record, error) {
	env := NewEnv(cfg.Seed, topology.QRTestbed, "metasched", cfg.NWSPeriod)
	var sch *metasched.Scheduler
	s, err := metasched.New(metasched.Config{
		Sim: env.Sim, Grid: env.Grid, GIS: env.GIS, Storage: env.Storage,
		Binder: env.Binder, Weather: env.Weather,
		Policy: cfg.Policy, Tick: cfg.Tick, StarveAfter: cfg.StarveAfter,
		OnIdle: func() {
			if env.Weather != nil {
				env.Weather.Stop()
			}
			sch.Stop()
		},
	})
	if err != nil {
		return nil, err
	}
	sch = s
	for i, e := range cfg.Entries {
		if _, err := sch.Submit(streamJobSpec(i, e)); err != nil {
			return nil, err
		}
	}
	sch.Start()
	env.Sim.RunUntil(cfg.RunCap)
	return sch.Records(), nil
}

// JobStreamTable renders the per-job records of a stream run.
func JobStreamTable(recs []metasched.Record) *Table {
	t := &Table{Header: []string{
		"job", "kind", "width", "state", "submit_s", "start_s", "finish_s",
		"wait_s", "turnaround_s", "preempts", "requeues",
	}}
	for _, r := range recs {
		t.Add(r.Name, r.Kind, fmt.Sprint(r.Width), r.State,
			Secs(r.Submit), Secs(r.Start), Secs(r.Finish),
			Secs(r.Wait), Secs(r.Turnaround),
			fmt.Sprint(r.Preemptions), fmt.Sprint(r.Requeues))
	}
	return t
}
