package experiments

import (
	"fmt"

	"grads/internal/appmgr"
	"grads/internal/apps"
	"grads/internal/rescheduler"
	"grads/internal/simcore"
	"grads/internal/srs"
	"grads/internal/topology"
)

// OpportunisticConfig parameterizes the §4.1.1 opportunistic-rescheduling
// demonstration: a short job holds the fast cluster while a long job runs
// on the slow one; when the short job completes, the rescheduler notices
// the freed resources and migrates the long job onto them.
type OpportunisticConfig struct {
	ShortN int // matrix size of the job on the fast (UTK) cluster
	LongN  int // matrix size of the job on the slow (UIUC) cluster
}

// DefaultOpportunisticConfig sizes the jobs so the short one finishes well
// before the long one and moving the long one is genuinely profitable.
func DefaultOpportunisticConfig() OpportunisticConfig {
	return OpportunisticConfig{ShortN: 4000, LongN: 14000}
}

// OpportunisticResult reports the timeline.
type OpportunisticResult struct {
	ShortDone    float64 // completion of the fast-cluster job
	MigratedAt   float64 // when the long job was asked to move (0 = never)
	LongTotal    float64 // long job total with opportunistic rescheduling
	LongBaseline float64 // long job total pinned to the slow cluster
	Decision     rescheduler.Decision
}

// RunOpportunistic executes the two-job scenario with and without the
// opportunistic rescheduler.
func RunOpportunistic(cfg OpportunisticConfig) (*OpportunisticResult, error) {
	withResched, err := opportunisticScenario(cfg, true)
	if err != nil {
		return nil, err
	}
	baseline, err := opportunisticScenario(cfg, false)
	if err != nil {
		return nil, err
	}
	withResched.LongBaseline = baseline.LongTotal
	return withResched, nil
}

func opportunisticScenario(cfg OpportunisticConfig, enabled bool) (*OpportunisticResult, error) {
	env := NewEnv(1, topology.QRTestbed, "multi", 10)
	utk := env.Grid.Site("UTK").Nodes()
	uiuc := env.Grid.Site("UIUC").Nodes()
	out := &OpportunisticResult{}

	// Two independent applications with their own RSS daemons.
	rssShort := srs.NewRSS(env.Sim, env.Storage, "qr-short")
	rssLong := srs.NewRSS(env.Sim, env.Storage, "qr-long")
	short, err := apps.NewQR(env.Grid, rssShort, env.Binder, env.Weather, cfg.ShortN, 100)
	if err != nil {
		return nil, err
	}
	long, err := apps.NewQR(env.Grid, rssLong, env.Binder, env.Weather, cfg.LongN, 100)
	if err != nil {
		return nil, err
	}

	mgrShort := appmgr.New(env.Sim, env.Grid, env.Binder, env.Weather)
	mgrShort.RSS = rssShort
	mgrShort.NextNodes = utk
	mgrLong := appmgr.New(env.Sim, env.Grid, env.Binder, env.Weather)
	mgrLong.RSS = rssLong
	mgrLong.NextNodes = uiuc

	resch := rescheduler.New(env.Grid, env.Weather)
	daemon := rescheduler.NewDaemon(env.Sim, resch, nil)
	daemon.Register(&rescheduler.ManagedApp{
		Name:    "qr-long",
		App:     long,
		Current: uiuc,
		OnMigrate: func(d rescheduler.Decision) bool {
			out.MigratedAt = env.Sim.Now()
			out.Decision = d
			mgrLong.NextNodes = d.Target
			rssLong.RequestStop(len(long.CurNodes()))
			return true
		},
	})
	daemon.Register(&rescheduler.ManagedApp{Name: "qr-short", App: short, Current: utk})

	var errShort, errLong error
	env.Sim.Spawn("user-short", func(p *simcore.Proc) {
		_, errShort = mgrShort.Execute(p, short, utk)
		out.ShortDone = p.Now()
		if enabled {
			daemon.AppCompleted("qr-short")
		}
	})
	env.Sim.Spawn("user-long", func(p *simcore.Proc) {
		rep, err := mgrLong.Execute(p, long, uiuc)
		errLong = err
		if rep != nil {
			out.LongTotal = rep.Total
		}
		if env.Weather != nil {
			env.Weather.Stop()
		}
	})
	env.Sim.Run()
	if errShort != nil {
		return nil, fmt.Errorf("short job: %w", errShort)
	}
	if errLong != nil {
		return nil, fmt.Errorf("long job: %w", errLong)
	}
	return out, nil
}

// FormatOpportunistic renders the timeline comparison.
func FormatOpportunistic(r *OpportunisticResult) string {
	t := &Table{Header: []string{"event", "value"}}
	t.Add("short job completed (s)", Secs(r.ShortDone))
	if r.MigratedAt > 0 {
		t.Add("opportunistic migration at (s)", Secs(r.MigratedAt))
		t.Add("migration target", r.Decision.Target[0].Site().Name)
		t.Add("predicted benefit (s)", Secs(r.Decision.CurrentRemaining-r.Decision.TargetRemaining-r.Decision.MigrationCost))
	} else {
		t.Add("opportunistic migration", "did not trigger")
	}
	t.Add("long job total, opportunistic (s)", Secs(r.LongTotal))
	t.Add("long job total, pinned (s)", Secs(r.LongBaseline))
	return t.String()
}
