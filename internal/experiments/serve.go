package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"grads/internal/binder"
	"grads/internal/frontdoor"
	"grads/internal/gis"
	"grads/internal/ibp"
	"grads/internal/metasched"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// ServeConfig parameterizes the serving sweep: an open-loop Poisson request
// stream pushed through the front door onto a heterogeneous broker fleet,
// swept over arrival rate x routing policy.
type ServeConfig struct {
	Rates      []float64 // arrival rates (requests/s) to sweep
	Policies   []string  // routing policy names (frontdoor.ParseRoutePolicy)
	Duration   float64   // arrival window (seconds)
	NodeCounts []int     // per-broker site sizes — deliberately lopsided
	Seed       int64
	Tick       float64 // broker admission round period
	RunCap     float64 // virtual-time safety horizon per cell
}

// DefaultServeConfig returns the standard sweep: round-robin, join-shortest-
// queue and the UCB bandit over four arrival rates, from a light trickle to
// past the fleet's saturation knee, on an 8/4/2-node three-broker fleet.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Rates:      []float64{0.05, 0.1, 0.2, 0.3},
		Policies:   []string{"rr", "least", "ucb"},
		Duration:   1200,
		NodeCounts: []int{8, 4, 2},
		Seed:       11,
		Tick:       5,
		RunCap:     400000,
	}
}

// ServeResult is one sweep cell: the policy, the offered rate, and the front
// door's full ledger at drain.
type ServeResult struct {
	Policy string
	Rate   float64
	Stats  frontdoor.Stats
}

// serveFleet builds the serving fleet on one kernel: one single-site grid
// per broker (with its own GIS, depots and binder), sized by nodeCounts.
func serveFleet(sim *simcore.Sim, nodeCounts []int, tick float64) []frontdoor.BrokerSpec {
	specs := make([]frontdoor.BrokerSpec, 0, len(nodeCounts))
	for i, n := range nodeCounts {
		site := fmt.Sprintf("site%02d", i)
		grid := topology.NewGrid(sim)
		grid.AddSite(site, topology.GigE, topology.LANLatency)
		for _, sp := range topology.SyntheticSite(site, n) {
			grid.AddNode(sp)
		}
		g := gis.New(sim, grid)
		g.RegisterSoftwareEverywhere(binder.LocalBinderPkg, "/opt/grads/binder")
		for _, lib := range []string{"scalapack", "blas", "srs", "autopilot", "mpi"} {
			g.RegisterSoftwareEverywhere(lib, "/opt/"+lib)
		}
		st := ibp.New(sim, grid)
		st.AddDepotsEverywhere()
		specs = append(specs, frontdoor.BrokerSpec{
			Name: site,
			Config: metasched.Config{
				Sim: sim, Grid: grid, GIS: g, Storage: st, Binder: binder.New(sim, g),
				Policy: metasched.PolicyBackfill, Tick: tick,
			},
		})
	}
	return specs
}

// runServeCell runs one policy x rate cell on a fresh kernel and fleet.
func runServeCell(cfg ServeConfig, policyName string, rate float64) (*ServeResult, error) {
	policy, err := frontdoor.ParseRoutePolicy(policyName)
	if err != nil {
		return nil, err
	}
	phases := []frontdoor.Phase{{Kind: "poisson", Start: 0, End: cfg.Duration, Rate: rate}}
	reqs, err := frontdoor.Generate(phases, frontdoor.DefaultClasses(), rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	sim := simcore.New(cfg.Seed)
	if sharedTel != nil {
		sim.SetTelemetry(sharedTel)
	}
	fd, err := frontdoor.New(frontdoor.Config{
		Sim:     sim,
		Brokers: serveFleet(sim, cfg.NodeCounts, cfg.Tick),
		Policy:  policy,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := fd.Start(reqs); err != nil {
		return nil, err
	}
	sim.RunUntil(cfg.RunCap)
	s := fd.Stats()
	terminal := 0
	for _, c := range s.Classes {
		terminal += c.Done + c.Failed
	}
	if s.Requests != s.Drops+terminal+s.Pending {
		return nil, fmt.Errorf("serve %s/rate=%g: conservation broken: %d requests, %d drops, %d terminal, %d pending",
			policyName, rate, s.Requests, s.Drops, terminal, s.Pending)
	}
	return &ServeResult{Policy: policy.Name(), Rate: rate, Stats: s}, nil
}

// RunServe sweeps arrival rate x routing policy.
func RunServe(cfg ServeConfig) ([]ServeResult, error) {
	var out []ServeResult
	for _, rate := range cfg.Rates {
		for _, policyName := range cfg.Policies {
			r, err := runServeCell(cfg, policyName, rate)
			if err != nil {
				return nil, fmt.Errorf("serve %s/rate=%g: %w", policyName, rate, err)
			}
			out = append(out, *r)
		}
	}
	return out, nil
}

// ServeSummaryTable renders the per-cell fleet-level view of the sweep.
func ServeSummaryTable(res []ServeResult) *Table {
	t := &Table{Header: []string{
		"policy", "rate_rps", "reqs", "drop%", "offloads",
		"p50_s", "p95_s", "p99_s", "fairness",
	}}
	for _, r := range res {
		s := r.Stats
		t.Add(r.Policy, fmt.Sprintf("%.2f", r.Rate), fmt.Sprint(s.Requests),
			pct(s.Drops, s.Requests), fmt.Sprint(s.Offloads),
			Secs(s.P50), Secs(s.P95), Secs(s.P99),
			fmt.Sprintf("%.3f", s.Fairness))
	}
	return t
}

// ServeClassTable renders the per-class view of the sweep.
func ServeClassTable(res []ServeResult) *Table {
	t := &Table{Header: []string{
		"policy", "rate_rps", "class", "reqs", "done", "drop%", "offloads",
		"breaches", "p50_s", "p95_s", "p99_s",
	}}
	for _, r := range res {
		for _, c := range r.Stats.Classes {
			t.Add(r.Policy, fmt.Sprintf("%.2f", r.Rate), c.Name,
				fmt.Sprint(c.Requests), fmt.Sprint(c.Done),
				pct(c.Drops, c.Requests), fmt.Sprint(c.Offloads),
				fmt.Sprint(c.Breaches), Secs(c.P50), Secs(c.P95), Secs(c.P99))
		}
	}
	return t
}

// pct formats part/whole as a percentage, "-" when whole is zero.
func pct(part, whole int) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(part)/float64(whole))
}

// serveCompare extracts the highest-rate p95 of two policies for the
// bandit-versus-blind headline line, "" when either cell is missing.
func serveCompare(res []ServeResult) string {
	top := 0.0
	for _, r := range res {
		if r.Rate > top {
			top = r.Rate
		}
	}
	var ucb, rr *ServeResult
	for i := range res {
		if res[i].Rate != top {
			continue
		}
		switch res[i].Policy {
		case "ucb":
			ucb = &res[i]
		case "rr":
			rr = &res[i]
		}
	}
	if ucb == nil || rr == nil {
		return ""
	}
	return fmt.Sprintf(
		"at %.2f req/s the bandit holds p95 to %s s where round-robin drifts to %s s\n"+
			"(ucb drop %s%% vs rr %s%%; the bandit learns to starve the 2-node broker)\n",
		top, Secs(ucb.Stats.P95), Secs(rr.Stats.P95),
		pct(ucb.Stats.Drops, ucb.Stats.Requests), pct(rr.Stats.Drops, rr.Stats.Requests))
}

// FormatServe renders the serving sweep report.
func FormatServe(res []ServeResult) string {
	var b strings.Builder
	b.WriteString("fleet view (drop% of offered; fairness = Jain over routed/capacity):\n\n")
	b.WriteString(ServeSummaryTable(res).String())
	b.WriteString("\nper-class view (p95 targets: int 60 s, batch 300 s, bulk 1200 s):\n\n")
	b.WriteString(ServeClassTable(res).String())
	if cmp := serveCompare(res); cmp != "" {
		b.WriteString("\n")
		b.WriteString(cmp)
	}
	return b.String()
}

// RunServeSmoke runs one compressed high-contention cell (ucb on the
// lopsided fleet) per seed and fails on any conservation violation; its
// output joins the determinism CI matrix, so it must be byte-stable per
// seed.
func RunServeSmoke(seeds []int64) (string, error) {
	var b strings.Builder
	b.WriteString("CI — serving smoke: one compressed high-contention cell per seed\n")
	for _, seed := range seeds {
		cfg := DefaultServeConfig()
		cfg.Seed = seed
		cfg.Duration = 600
		cfg.Rates = []float64{0.25}
		cfg.Policies = []string{"ucb"}
		res, err := RunServe(cfg)
		if err != nil {
			return "", fmt.Errorf("seed %d: %w", seed, err)
		}
		fmt.Fprintf(&b, "\nseed %d:\n\n%s", seed, ServeSummaryTable(res).String())
	}
	return b.String(), nil
}

// RunArrivals realizes an explicit -arrivals workload spec through the
// front door (routing policy chosen by -route) on the standard serving
// fleet and returns the outcome report.
func RunArrivals(spec, route string, seed int64) (string, error) {
	phases, err := frontdoor.ParseArrivals(spec)
	if err != nil {
		return "", err
	}
	policy, err := frontdoor.ParseRoutePolicy(route)
	if err != nil {
		return "", err
	}
	cfg := DefaultServeConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	reqs, err := frontdoor.Generate(phases, frontdoor.DefaultClasses(), rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return "", err
	}
	sim := simcore.New(cfg.Seed)
	if sharedTel != nil {
		sim.SetTelemetry(sharedTel)
	}
	fd, err := frontdoor.New(frontdoor.Config{
		Sim:     sim,
		Brokers: serveFleet(sim, cfg.NodeCounts, cfg.Tick),
		Policy:  policy,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return "", err
	}
	if err := fd.Start(reqs); err != nil {
		return "", err
	}
	sim.RunUntil(cfg.RunCap)
	span := 0.0
	for _, p := range phases {
		if p.End > span {
			span = p.End
		}
	}
	rate := 0.0
	if span > 0 {
		rate = float64(len(reqs)) / span
	}
	res := []ServeResult{{Policy: policy.Name(), Rate: rate, Stats: fd.Stats()}}
	return "serving — front door on the standard 8/4/2 fleet\n\n" +
		"workload: " + frontdoor.FormatArrivals(phases) + "\n" +
		"policy:   " + policy.Name() + "\n\n" +
		FormatServe(res), nil
}
