package experiments

import (
	"fmt"
	"math/rand"

	"grads/internal/economy"
)

// EconomyConfig parameterizes the Grid-economy extension study (the
// G-commerce formulation comparison the paper cites as [24] and names as
// VGrADS future work).
type EconomyConfig struct {
	Rounds int
	Seed   int64
}

// DefaultEconomyConfig runs 300 allocation rounds.
func DefaultEconomyConfig() EconomyConfig { return EconomyConfig{Rounds: 300, Seed: 5} }

// EconomyResult compares the two market formulations.
type EconomyResult struct {
	Formulation     string
	PriceVolatility float64
	MeanUtilization float64
	FinalMeanPrice  float64
}

// economyParticipants builds the GrADS-flavored market: the testbed sites
// sell node-rounds; the paper's applications buy them.
func economyParticipants() ([]*economy.Producer, []*economy.Consumer) {
	producers := []*economy.Producer{
		{Site: "UTK", Capacity: 24, Cost: 1.2},
		{Site: "UIUC", Capacity: 24, Cost: 1.0},
		{Site: "UCSD", Capacity: 10, Cost: 1.5},
		{Site: "UH", Capacity: 24, Cost: 1.1},
	}
	consumers := []*economy.Consumer{
		{Name: "scalapack-qr", Budget: 60, Demand: 16, MaxPrice: 4},
		{Name: "nbody", Budget: 24, Demand: 8, MaxPrice: 3},
		{Name: "eman", Budget: 120, Demand: 40, MaxPrice: 5},
		{Name: "sweep", Budget: 30, Demand: 20, MaxPrice: 2},
	}
	return producers, consumers
}

// RunEconomy simulates both formulations under identical fluctuating
// demand.
func RunEconomy(cfg EconomyConfig) ([]EconomyResult, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 300
	}
	var out []EconomyResult

	prodC, consC := economyParticipants()
	cm, err := economy.NewCommodityMarket(prodC, consC, 0.1)
	if err != nil {
		return nil, err
	}
	cs := economy.Simulate(cm, consC, cfg.Rounds, rand.New(rand.NewSource(cfg.Seed)))
	out = append(out, EconomyResult{
		Formulation:     "commodities market",
		PriceVolatility: cs.PriceVolatility(),
		MeanUtilization: cs.MeanUtilization(),
		FinalMeanPrice:  cs.MeanPrices[len(cs.MeanPrices)-1],
	})

	prodA, consA := economyParticipants()
	au, err := economy.NewAuctioneer(prodA, consA)
	if err != nil {
		return nil, err
	}
	as := economy.Simulate(au, consA, cfg.Rounds, rand.New(rand.NewSource(cfg.Seed)))
	out = append(out, EconomyResult{
		Formulation:     "sealed-bid auctions",
		PriceVolatility: as.PriceVolatility(),
		MeanUtilization: as.MeanUtilization(),
		FinalMeanPrice:  as.MeanPrices[len(as.MeanPrices)-1],
	})
	return out, nil
}

// FormatEconomy renders the comparison.
func FormatEconomy(results []EconomyResult) string {
	t := &Table{Header: []string{"formulation", "price-volatility", "mean-utilization", "final-mean-price"}}
	for _, r := range results {
		t.Add(r.Formulation,
			fmt.Sprintf("%.4f", r.PriceVolatility),
			fmt.Sprintf("%.3f", r.MeanUtilization),
			fmt.Sprintf("%.2f", r.FinalMeanPrice))
	}
	return t.String()
}
