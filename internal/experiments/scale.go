package experiments

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"grads/internal/shardsim"
)

// shardsOverride is the kernel count sharded experiments run with (the
// gradsim -shards flag). 1 — the single-kernel determinism oracle — is the
// default; any other value selects the conservatively synchronized
// multi-kernel path, which produces byte-identical traces (see
// internal/shardsim).
var shardsOverride = 1

// SetShards selects how many shard kernels the sharded experiments
// (scale-smoke) run with. Values below 1 reset to the single-kernel oracle.
func SetShards(n int) {
	if n < 1 {
		n = 1
	}
	shardsOverride = n
}

// Shards returns the configured shard-kernel count.
func Shards() int { return shardsOverride }

// ScaleVariant is one row of the scaling curve: a kernel architecture run
// over the identical 10k-node workload, with its wall-clock time and its
// virtual end state (which must match the oracle's exactly on the per-site
// fabric).
type ScaleVariant struct {
	Name         string
	Shards       int
	SharedFabric bool
	Wall         time.Duration
	Result       *shardsim.Result
	StatsMatch   bool // virtual stats equal to the shards=1 per-site run
}

// RunScaleCurve runs the 10k-node synthetic workload (16 mega-sites x 640
// nodes; see shardsim.ScaleConfig) under the pre-sharding single-kernel
// architecture and under the sharded kernel at 1, 2, 4 and 8 shards,
// measuring wall-clock time. The virtual end state of every per-site-fabric
// run must be identical; the shared-fabric baseline must agree on the
// workload-level counters. Wall-clock numbers vary by host, so the scale
// experiment is excluded from `gradsim -exp all` and from the determinism
// contract — BENCH_shard.json is its CI-gated form.
func RunScaleCurve(seed int64) ([]ScaleVariant, error) {
	variants := []ScaleVariant{
		{Name: "single-kernel", Shards: 1, SharedFabric: true},
		{Name: "sharded x1", Shards: 1},
		{Name: "sharded x2", Shards: 2},
		{Name: "sharded x4", Shards: 4},
		{Name: "sharded x8", Shards: 8},
	}
	var oracle *shardsim.Result
	for i := range variants {
		v := &variants[i]
		cfg := shardsim.ScaleConfig(seed)
		cfg.Shards = v.Shards
		cfg.SharedFabric = v.SharedFabric
		start := time.Now()
		r := shardsim.RunScenario(cfg)
		v.Wall = time.Since(start)
		v.Result = r
		if len(r.Violations) > 0 {
			return nil, fmt.Errorf("scale: %s violated invariants: %s",
				v.Name, strings.Join(r.Violations, "; "))
		}
		if v.SharedFabric {
			// The legacy fabric partitions bandwidth over a different flow
			// universe, so only the workload counters are comparable.
			continue
		}
		if oracle == nil {
			oracle = r
			v.StatsMatch = true
			continue
		}
		v.StatsMatch = r.FinalTime == oracle.FinalTime &&
			r.Events == oracle.Events && r.Rounds == oracle.Rounds &&
			r.Delivered == oracle.Delivered && r.JobsDone == oracle.JobsDone &&
			r.JobsRequeued == oracle.JobsRequeued
		if !v.StatsMatch {
			return nil, fmt.Errorf("scale: %s diverged from the sharded x1 oracle", v.Name)
		}
	}
	for i := range variants {
		v := &variants[i]
		if !v.SharedFabric {
			continue
		}
		r, o := v.Result, oracle
		v.StatsMatch = r.JobsDone == o.JobsDone && r.HaloAcked == o.HaloAcked &&
			r.CkptAcked == o.CkptAcked && r.LeaseGranted == o.LeaseGranted
		if !v.StatsMatch {
			return nil, fmt.Errorf("scale: shared-fabric workload counters diverged")
		}
	}
	return variants, nil
}

// FormatScale renders the scaling curve.
func FormatScale(vs []ScaleVariant) string {
	base := vs[0].Wall.Seconds()
	t := &Table{Header: []string{"variant", "shards", "wall_s", "speedup", "events", "rounds", "jobs_done", "stats"}}
	for _, v := range vs {
		stats := "match"
		if !v.StatsMatch {
			stats = "DIVERGED"
		}
		t.Add(v.Name, fmt.Sprint(v.Shards), fmt.Sprintf("%.2f", v.Wall.Seconds()),
			fmt.Sprintf("%.2fx", base/v.Wall.Seconds()),
			fmt.Sprint(v.Result.Events), fmt.Sprint(v.Result.Rounds),
			fmt.Sprint(v.Result.JobsDone), stats)
	}
	r := vs[0].Result
	return t.String() + fmt.Sprintf(
		"\n10240 nodes over 16 sites; %d jobs done, %d requeued, %.0f MB staged,\n"+
			"%d crash commands, %d recoveries. speedup is single-kernel wall time\n"+
			"over the variant's; the per-site-fabric rows are byte-equivalent.\n",
		r.JobsDone, r.JobsRequeued, r.StagedMB, r.CrashCmds, r.Recoveries)
}

// scaleSmokeCase names one seeded smoke workload of the shard-equivalence
// suite.
type scaleSmokeCase struct {
	name string
	cfg  shardsim.ScenarioConfig
}

// RunScaleSmoke runs the three seeded smoke workloads (chaos, contention,
// soak) on the sharded kernel at the configured shard count (SetShards /
// gradsim -shards) and reports their virtual end state plus an FNV-64a hash
// of the canonical merged trace. Every line is shard-count-invariant: the CI
// shard-equivalence job diffs the full stdout and the replayed JSONL of
// `-shards 1` against `-shards 4`. When a telemetry hub is installed the
// merged traces are replayed into it, so -trace-jsonl captures the exact
// event stream whose hash is printed.
func RunScaleSmoke(seed int64) (string, error) {
	cases := []scaleSmokeCase{
		{"chaos", shardsim.ChaosSmokeConfig(pick(seed, 11))},
		{"contention", shardsim.ContentionSmokeConfig(pick(seed, 23))},
		{"soak", shardsim.SoakSmokeConfig(pick(seed, 5))},
	}
	t := &Table{Header: []string{"workload", "seed", "vtime_s", "events", "rounds", "delivered",
		"jobs", "requeues", "acks", "leases", "trace_fnv64a", "trace_bytes"}}
	for _, c := range cases {
		c.cfg.Shards = shardsOverride
		r := shardsim.RunScenario(c.cfg)
		if len(r.Violations) > 0 {
			return "", fmt.Errorf("scale-smoke %s: invariants violated: %s",
				c.name, strings.Join(r.Violations, "; "))
		}
		trace := r.MergedTrace()
		h := fnv.New64a()
		h.Write(trace)
		t.Add(c.name, fmt.Sprint(c.cfg.Seed), fmt.Sprintf("%.3f", r.FinalTime),
			fmt.Sprint(r.Events), fmt.Sprint(r.Rounds), fmt.Sprint(r.Delivered),
			fmt.Sprint(r.JobsDone), fmt.Sprint(r.JobsRequeued),
			fmt.Sprintf("%d+%d", r.HaloAcked, r.CkptAcked),
			fmt.Sprintf("%d/%d", r.LeaseGranted, r.LeaseDenied),
			fmt.Sprintf("%016x", h.Sum64()), fmt.Sprint(len(trace)))
		if sharedTel != nil {
			r.ReplayInto(sharedTel)
		}
	}
	return t.String(), nil
}

// pick resolves a smoke case's seed: the override when set, else the default.
func pick(override, def int64) int64 {
	if override != 0 {
		return override
	}
	return def
}
