package experiments

import (
	"fmt"
	"strings"

	"grads/internal/chaossoak"
)

// DefaultSoakConfig is the published chaos-soak point (see
// chaossoak.DefaultConfig).
func DefaultSoakConfig() chaossoak.Config { return chaossoak.DefaultConfig() }

// RunSoak executes one chaos soak with the shared telemetry hub attached,
// so `gradsim -exp soak -trace out.jsonl` emits the byte-identical JSONL
// stream the CI determinism check compares.
func RunSoak(cfg chaossoak.Config) (*chaossoak.Result, error) {
	cfg.Telemetry = sharedTel
	return chaossoak.Run(cfg)
}

// RunSoakSmoke runs the compressed CI matrix: one short soak per seed,
// aggregating every violation. It fails fast on setup errors only — a
// violating run is reported through the results, not an error, so the
// caller can render all seeds before failing.
func RunSoakSmoke(seeds []int64) ([]*chaossoak.Result, error) {
	out := make([]*chaossoak.Result, 0, len(seeds))
	for _, seed := range seeds {
		r, err := RunSoak(chaossoak.SmokeConfig(seed))
		if err != nil {
			return nil, fmt.Errorf("soak smoke seed %d: %w", seed, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatSoak renders one soak's invariant report.
func FormatSoak(r *chaossoak.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d · %d jobs · %d kernel events · drained=%v at t=%s\n",
		r.Seed, r.Jobs, r.KernelEvents, r.Drained, Secs(r.Elapsed))
	fmt.Fprintf(&b, "invariants:  %d sweeps, %d violations\n", r.Checks, len(r.Violations))
	fmt.Fprintf(&b, "jobs:        %d done, %d failed, %d quarantined, %d lost\n",
		r.Done, r.Failed, r.Quarantined, r.LostJobs)
	fmt.Fprintf(&b, "faults:      %d injected, %d healed, %d skipped; detector suspects %d; observed node MTTR %s (%d repairs)\n",
		r.Injected, r.Recovered, r.Skipped, r.Suspects, Secs(r.MTTRMean), r.Repairs)
	fmt.Fprintf(&b, "recovery:    %d admissions, %d requeues, %d preempt shrinks, %d brownout rounds; %d service retries (%d gave up)\n",
		r.Admissions, r.Requeues, r.Preempts, r.Brownouts, r.Retries, r.GaveUp)
	fmt.Fprintf(&b, "guards:      %d breaker opens, %d fast-fails, %d budget denials\n",
		r.BreakerOpens, r.FastFails, r.BudgetDenied)
	fmt.Fprintf(&b, "checkpoints: %d corruptions detected, %d corrupt reads served, %d lineage fallbacks\n",
		r.CorruptDetected, r.CorruptServed, r.LineageFallbacks)

	b.WriteString("\n")
	t := &Table{Header: []string{"class", "jobs", "done", "failed", "quarantined", "mean_turnaround_s", "mean_requeues"}}
	for _, c := range r.PerClass {
		t.Add(c.Class, fmt.Sprint(c.Jobs), fmt.Sprint(c.Done), fmt.Sprint(c.Failed),
			fmt.Sprint(c.Quarantined), Secs(c.MeanTurnaround), fmt.Sprintf("%.2f", c.MeanRequeues))
	}
	b.WriteString(t.String())

	if len(r.FailedJobs) > 0 {
		b.WriteString("\nfailed jobs:\n")
		for _, f := range r.FailedJobs {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	if len(r.Violations) > 0 {
		b.WriteString("\nINVARIANT VIOLATIONS:\n")
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  t=%-10.1f [%s] %s\n", v.T, v.Invariant, v.Detail)
		}
	}
	return b.String()
}

// SoakFailure summarizes why a soak (or smoke matrix) must fail the run,
// or "" when every result is clean.
func SoakFailure(results []*chaossoak.Result) string {
	viol, lost := 0, 0
	for _, r := range results {
		viol += len(r.Violations)
		lost += r.LostJobs
	}
	if viol == 0 && lost == 0 {
		return ""
	}
	return fmt.Sprintf("%d invariant violations, %d lost jobs", viol, lost)
}
