package experiments

import (
	"fmt"

	"grads/internal/appmgr"
	"grads/internal/apps"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// FaultConfig parameterizes the fault-tolerance extension study (the
// capability the paper's conclusion previews for VGrADS): a node hosting
// the QR run crashes mid-execution and the application manager recovers
// from the last committed periodic checkpoint.
type FaultConfig struct {
	N          int
	NB         int
	CrashAfter float64 // seconds after the first panel completes
	// Intervals are the periodic-checkpoint settings to compare, in
	// panels; 0 means no checkpoints (recovery restarts from scratch).
	Intervals []int
}

// DefaultFaultConfig crashes one node about 800 s into an N=8000 run
// (past the first checkpoint of every interval under comparison; QR panels
// are front-loaded, so panel 20 of 80 lands at ~705 s).
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{N: 8000, NB: 100, CrashAfter: 800, Intervals: []int{0, 20, 5}}
}

// FaultResult is one configuration's outcome.
type FaultResult struct {
	Interval   int     // panels between checkpoints (0 = none, -1 = no crash)
	Total      float64 // end-to-end completion time
	LostWork   float64 // discarded execution time
	CkptWrite  float64 // cumulative checkpoint-write time
	CkptRead   float64 // recovery restore time
	Recoveries int
}

// RunFault executes the crash scenario for every checkpoint interval plus a
// crash-free baseline.
func RunFault(cfg FaultConfig) ([]FaultResult, error) {
	results := []FaultResult{}
	baseline, err := faultScenario(cfg, 0, false)
	if err != nil {
		return nil, fmt.Errorf("fault baseline: %w", err)
	}
	baseline.Interval = -1
	results = append(results, *baseline)
	for _, interval := range cfg.Intervals {
		r, err := faultScenario(cfg, interval, true)
		if err != nil {
			return nil, fmt.Errorf("fault interval %d: %w", interval, err)
		}
		results = append(results, *r)
	}
	return results, nil
}

func faultScenario(cfg FaultConfig, interval int, crash bool) (*FaultResult, error) {
	env := NewEnv(1, topology.QRTestbed, "qr", 0)
	qr, err := apps.NewQR(env.Grid, env.RSS, env.Binder, env.Weather, cfg.N, cfg.NB)
	if err != nil {
		return nil, err
	}
	qr.CheckpointEvery = interval
	mgr := appmgr.New(env.Sim, env.Grid, env.Binder, env.Weather)
	mgr.RSS = env.RSS

	if crash {
		env.Sim.Spawn("chaos", func(p *simcore.Proc) {
			for qr.DonePanels() == 0 {
				if p.Sleep(1) != nil {
					return
				}
			}
			if p.Sleep(cfg.CrashAfter) != nil {
				return
			}
			qr.FailCurrentNode(0)
		})
	}

	var rep *appmgr.Report
	var execErr error
	env.Sim.Spawn("user", func(p *simcore.Proc) {
		rep, execErr = mgr.Execute(p, qr, env.Grid.Nodes())
	})
	env.Sim.Run()
	if execErr != nil {
		return nil, execErr
	}
	return &FaultResult{
		Interval:   interval,
		Total:      rep.Total,
		LostWork:   rep.Sum(appmgr.PhaseLostWork, 0),
		CkptWrite:  rep.Sum(appmgr.PhaseCkptWrite, 0),
		CkptRead:   rep.Sum(appmgr.PhaseCkptRead, 0),
		Recoveries: rep.Failures,
	}, nil
}

// FormatFault renders the study.
func FormatFault(results []FaultResult) string {
	t := &Table{Header: []string{"checkpointing", "total(s)", "lost-work(s)", "ckpt-write(s)", "restore(s)", "recoveries"}}
	for _, r := range results {
		label := "none (restart from scratch)"
		switch {
		case r.Interval < 0:
			label = "no crash (baseline)"
		case r.Interval > 0:
			label = fmt.Sprintf("every %d panels", r.Interval)
		}
		t.Add(label, Secs(r.Total), Secs(r.LostWork), Secs(r.CkptWrite), Secs(r.CkptRead),
			fmt.Sprintf("%d", r.Recoveries))
	}
	return t.String()
}
