package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"grads/internal/apps"
	"grads/internal/core"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// EMANConfig parameterizes the §3.3 workflow-scheduling demonstration.
type EMANConfig struct {
	Particles float64 // dataset size (raw particle images)
	Width     int     // parallel split of classesbymra / classalign2
	Seed      int64
}

// DefaultEMANConfig mirrors the demonstration scale. The parallel width
// exceeds the MacroGrid's IA-64 node count so a good schedule must use both
// architectures, exercising the heterogeneous binder path the paper
// validated.
func DefaultEMANConfig() EMANConfig {
	return EMANConfig{Particles: 400, Width: 24, Seed: 1}
}

// EMANResult is one strategy's outcome on the MacroGrid.
type EMANResult struct {
	Strategy  string
	Makespan  float64 // scheduler's predicted makespan
	Simulated float64 // makespan measured by executing the schedule
	IA32Used  int     // distinct IA-32 nodes used
	IA64Used  int     // distinct IA-64 nodes used
}

// RunEMAN schedules the expanded EMAN refinement workflow on the full
// MacroGrid with each heuristic, the best-of-three selection, and a random
// baseline, then executes every schedule on the emulator to validate the
// predicted makespans and the IA-32/IA-64 heterogeneity.
func RunEMAN(cfg EMANConfig) ([]EMANResult, error) {
	var results []EMANResult
	strategies := append([]string{}, core.Heuristics...)
	strategies = append(strategies, "best-of-3", "random")
	for _, strat := range strategies {
		env := NewEnv(cfg.Seed, topology.MacroGrid, "eman", 0)
		wfRun, err := apps.EMANWorkflow(cfg.Particles, cfg.Width)
		if err != nil {
			return nil, err
		}
		wfRun = wfRun.Expand()
		sched := (*core.Schedule)(nil)
		s := core.NewScheduler(env.Grid, nil)
		switch strat {
		case "best-of-3":
			sched, err = s.Schedule(wfRun, env.Grid.Nodes())
		case "random":
			sched, err = s.ScheduleRandom(rand.New(rand.NewSource(cfg.Seed)), wfRun, env.Grid.Nodes())
		default:
			sched, err = s.ScheduleWith(strat, wfRun, env.Grid.Nodes())
		}
		if err != nil {
			return nil, fmt.Errorf("eman %s: %w", strat, err)
		}
		ia32, ia64 := archUsage(sched)
		simulated, err := ExecuteSchedule(env, wfRun, sched)
		if err != nil {
			return nil, fmt.Errorf("eman %s execution: %w", strat, err)
		}
		results = append(results, EMANResult{
			Strategy:  strat,
			Makespan:  sched.Makespan,
			Simulated: simulated,
			IA32Used:  ia32,
			IA64Used:  ia64,
		})
	}
	return results, nil
}

// archUsage counts distinct nodes per architecture in a schedule.
func archUsage(s *core.Schedule) (ia32, ia64 int) {
	seen := map[string]topology.Arch{}
	for _, a := range s.Assignments {
		if a.Node != nil {
			seen[a.Node.Name()] = a.Node.Spec.Arch
		}
	}
	for _, arch := range seen {
		switch arch {
		case topology.ArchIA64:
			ia64++
		default:
			ia32++
		}
	}
	return ia32, ia64
}

// ExecuteSchedule runs a scheduled workflow on the emulator: each component
// becomes a process on its assigned node that waits for its predecessors,
// pulls their output data over the network, computes its work on the node's
// CPU, and signals completion. It returns the measured makespan.
func ExecuteSchedule(env *Env, wf *core.Workflow, sched *core.Schedule) (float64, error) {
	type compState struct {
		done   bool
		sig    *simcore.Signal
		finish float64
	}
	states := make([]*compState, wf.Len())
	for i := range states {
		states[i] = &compState{sig: simcore.NewSignal(env.Sim)}
	}
	var failure error
	for i := range wf.Components {
		i := i
		c := wf.Components[i]
		a := sched.Assignments[i]
		env.Sim.Spawn("eman:"+c.Name, func(p *simcore.Proc) {
			// Wait for predecessors, then stage their outputs.
			for _, d := range wf.Deps(i) {
				for !states[d].done {
					if err := states[d].sig.Wait(p); err != nil {
						return
					}
				}
			}
			for _, d := range wf.Deps(i) {
				src := sched.Assignments[d].Node
				if src != a.Node && wf.Components[d].OutputBytes > 0 {
					route := env.Grid.Route(src, a.Node)
					if _, err := env.Grid.Net.Transfer(p, route, wf.Components[d].OutputBytes); err != nil {
						failure = err
						return
					}
				}
			}
			if c.Model != nil {
				if _, err := a.Node.CPU.Compute(p, c.Model.FlopsAt(c.ProblemSize)); err != nil {
					failure = err
					return
				}
			}
			states[i].done = true
			states[i].finish = p.Now()
			states[i].sig.Broadcast()
		})
	}
	env.Sim.Run()
	if failure != nil {
		return 0, failure
	}
	makespan := 0.0
	for _, st := range states {
		if !st.done {
			return 0, fmt.Errorf("experiments: schedule execution deadlocked")
		}
		if st.finish > makespan {
			makespan = st.finish
		}
	}
	return makespan, nil
}

// FormatEMAN renders the strategy comparison.
func FormatEMAN(results []EMANResult) string {
	t := &Table{Header: []string{"strategy", "predicted(s)", "executed(s)", "ia32-nodes", "ia64-nodes"}}
	for _, r := range results {
		t.Add(r.Strategy, Secs(r.Makespan), Secs(r.Simulated),
			fmt.Sprintf("%d", r.IA32Used), fmt.Sprintf("%d", r.IA64Used))
	}
	return t.String()
}

// FormatEMANDag renders the Figure 2 workflow structure by level.
func FormatEMANDag(wf *core.Workflow) string {
	var b strings.Builder
	for l, comps := range wf.Levels() {
		fmt.Fprintf(&b, "level %d:", l)
		for _, ci := range comps {
			fmt.Fprintf(&b, " %s", wf.Components[ci].Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}
