package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// checkEncodeMatches asserts that appendEvent and json.Marshal agree on e:
// same bytes when both succeed, and the same verdict on encodability.
func checkEncodeMatches(t *testing.T, e *Event) {
	t.Helper()
	want, err := json.Marshal(e)
	got, ok := appendEvent(nil, e)
	if (err == nil) != ok {
		t.Fatalf("encodability disagrees: json.Marshal err=%v, appendEvent ok=%v, event=%+v", err, ok, e)
	}
	if err != nil {
		return
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding mismatch:\n got %s\nwant %s\nevent %+v", got, want, e)
	}
}

func TestAppendEventMatchesMarshalTable(t *testing.T) {
	events := []Event{
		{},
		{T: 0, Seq: 1, Type: EvProcSpawn},
		{T: 1.5, Seq: 42, Type: EvFlowStart, Comp: "netsim", Name: "utk1>ucsd2",
			Args: []Arg{F("bytes", 1e6), I("hops", 3)}},
		{T: 123.456, Seq: 7, Type: EvSchedDecision, Comp: "core", Name: "qr",
			Dur: 2.25, Args: []Arg{S("reason", "predicted benefit 100s"), B("migrate", true)}},
		{T: -0.0, Seq: 0, Type: "x", Dur: -0.0},      // negative zeros: omitempty + "0"
		{T: 1e21, Seq: 1, Type: "big"},               // 'e' format cutoff
		{T: 9.999999999999999e20, Seq: 1, Type: "f"}, // just under the cutoff
		{T: 1e-6, Seq: 1, Type: "small-f"},           // 'f' side of the small cutoff
		{T: 9.9e-7, Seq: 1, Type: "small-e"},         // 'e' side, exercises e-07 -> e-7
		{T: -2.5e-9, Seq: 1, Type: "neg-e"},
		{T: math.MaxFloat64, Seq: 1, Type: "max"},
		{T: math.SmallestNonzeroFloat64, Seq: 1, Type: "denormal"},
		{T: 1, Seq: math.MaxUint64, Type: "seqmax"},
		{T: 1, Seq: 1, Type: "esc", Name: "a\"b\\c\nd\te\rf\bg\fh",
			Args: []Arg{S("html", "<a href=\"x\">&amp;</a>"), S("ctl", "\x00\x01\x1f")}},
		{T: 1, Seq: 1, Type: "uni", Name: "héllo wörld ☃",
			Args: []Arg{S("seps", "a\u2028b\u2029c"), S("bad", "ok\xff\xfe\xc3(")}},
		{T: 1, Seq: 1, Type: "vals", Args: []Arg{
			{Key: "neg", Val: -17}, {Key: "nil", Val: nil},
			{Key: "f0", Val: 0.0}, {Key: "fneg", Val: -1.25},
			{Key: "false", Val: false},
			{Key: "i64", Val: int64(9)}, {Key: "u8", Val: uint8(7)}, // fallback types
		}},
		{T: 1, Seq: 1, Type: "nan", Args: []Arg{F("x", math.NaN())}},
		{T: 1, Seq: 1, Type: "inf", Args: []Arg{F("x", math.Inf(1))}},
		{T: 1, Seq: 1, Type: "neginf", Args: []Arg{F("x", math.Inf(-1))}},
		{T: 1, Seq: 1, Type: "chan", Args: []Arg{{Key: "bad", Val: make(chan int)}}},
		{T: 1, Seq: 1, Type: "empty-args", Args: []Arg{}},
	}
	for i := range events {
		checkEncodeMatches(t, &events[i])
	}
}

// randomEventString builds strings biased toward escape-relevant content.
func randomEventString(rng *rand.Rand) string {
	n := rng.Intn(12)
	b := make([]byte, 0, n*3)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0: // plain ASCII
			b = append(b, byte('a'+rng.Intn(26)))
		case 1: // JSON/HTML specials
			b = append(b, "\"\\<>&/'"[rng.Intn(7)])
		case 2: // control bytes
			b = append(b, byte(rng.Intn(0x20)))
		case 3: // multi-byte runes, including the JS separators
			b = append(b, string([]rune{'é', '☃', '\u2028', '\u2029', '世'}[rng.Intn(5)])...)
		case 4: // raw high bytes (often invalid UTF-8)
			b = append(b, byte(0x80+rng.Intn(0x80)))
		default: // spaces and digits
			b = append(b, " 0123456789.+-"[rng.Intn(14)])
		}
	}
	return string(b)
}

func randomEventFloat(rng *rand.Rand) float64 {
	switch rng.Intn(8) {
	case 0:
		return 0
	case 1:
		return math.Copysign(0, -1)
	case 2: // around the 'e'-format cutoffs
		return 1e21 * math.Pow(10, float64(rng.Intn(7)-3)) * (1 + rng.Float64())
	case 3:
		return 1e-6 * math.Pow(10, float64(rng.Intn(7)-3)) * rng.Float64()
	case 4:
		return float64(rng.Intn(2000)) / 16
	case 5:
		return -rng.ExpFloat64() * 1e3
	case 6:
		return math.Float64frombits(rng.Uint64()) // any bit pattern: NaN/Inf included
	default:
		return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
	}
}

func TestAppendEventMatchesMarshalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		e := Event{
			T:    randomEventFloat(rng),
			Seq:  rng.Uint64(),
			Type: EventType(randomEventString(rng)),
			Comp: randomEventString(rng),
			Name: randomEventString(rng),
		}
		if rng.Intn(3) == 0 {
			e.Dur = randomEventFloat(rng)
		}
		for j := rng.Intn(4); j > 0; j-- {
			k := randomEventString(rng)
			switch rng.Intn(4) {
			case 0:
				e.Args = append(e.Args, F(k, randomEventFloat(rng)))
			case 1:
				e.Args = append(e.Args, I(k, rng.Intn(1<<20)-1<<19))
			case 2:
				e.Args = append(e.Args, S(k, randomEventString(rng)))
			default:
				e.Args = append(e.Args, B(k, rng.Intn(2) == 0))
			}
		}
		checkEncodeMatches(t, &e)
	}
}

// FuzzJSONLEncode cross-checks the batched encoder against json.Marshal on
// fuzzer-chosen scalars routed into every string and float position.
func FuzzJSONLEncode(f *testing.F) {
	f.Add(0.0, uint64(0), "proc.spawn", "simcore", "w", 0.0, "k", "v")
	f.Add(1.5, uint64(3), "net.flow.start", "netsim", "a>b", 2.25, "bytes", "<&>\u2028\xff")
	f.Add(1e21, uint64(1), "x", "", "", -1e-7, "\"", "\\n\x00")
	f.Add(math.Inf(1), uint64(9), "t", "c", "n", math.NaN(), "f", "g")
	f.Fuzz(func(t *testing.T, tm float64, seq uint64, typ, comp, name string, dur float64, k, v string) {
		e := Event{T: tm, Seq: seq, Type: EventType(typ), Comp: comp, Name: name, Dur: dur,
			Args: []Arg{S(k, v), F(k, dur), I(v, int(seq))}}
		want, err := json.Marshal(&e)
		got, ok := appendEvent(nil, &e)
		if (err == nil) != ok {
			t.Fatalf("encodability disagrees: err=%v ok=%v", err, ok)
		}
		if err == nil && !bytes.Equal(got, want) {
			t.Fatalf("mismatch:\n got %s\nwant %s", got, want)
		}
	})
}

// TestJSONLMatchesReferenceSink runs the same event stream through the
// batched sink and the json.Marshal reference sink and requires
// byte-identical output, including the drop behavior for unserializable
// events.
func TestJSONLMatchesReferenceSink(t *testing.T) {
	var fast, ref bytes.Buffer
	a, b := NewJSONL(&fast), NewJSONLReference(&ref)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		e := Event{T: randomEventFloat(rng), Seq: uint64(i), Type: EventType(randomEventString(rng)),
			Comp: randomEventString(rng), Name: randomEventString(rng)}
		if rng.Intn(4) == 0 {
			e.Args = []Arg{F("x", randomEventFloat(rng)), S("s", randomEventString(rng))}
		}
		a.Emit(e)
		b.Emit(e)
	}
	a.Close()
	b.Close()
	if !bytes.Equal(fast.Bytes(), ref.Bytes()) {
		t.Fatal("batched and reference JSONL streams differ")
	}
	if fast.Len() == 0 {
		t.Fatal("no output produced")
	}
}

// TestJSONLFlushBoundary checks that batch flushing never splits or drops
// lines: emitting far more than one buffer's worth of events yields exactly
// one well-formed JSON object per event.
func TestJSONLFlushBoundary(t *testing.T) {
	var out bytes.Buffer
	s := NewJSONL(&out)
	const n = 3000
	long := string(bytes.Repeat([]byte("x"), 100))
	for i := 0; i < n; i++ {
		s.Emit(Event{T: float64(i), Seq: uint64(i), Type: "pad", Name: long})
	}
	if out.Len() == 0 {
		t.Fatal("expected a mid-stream flush before Close")
	}
	s.Close()
	lines := bytes.Split(bytes.TrimSuffix(out.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != n {
		t.Fatalf("got %d lines, want %d", len(lines), n)
	}
	for i, ln := range lines {
		var e Event
		if err := json.Unmarshal(ln, &e); err != nil {
			t.Fatalf("line %d unparsable: %v", i, err)
		}
		if e.Seq != uint64(i) {
			t.Fatalf("line %d has seq %d (reordered or dropped)", i, e.Seq)
		}
	}
}
