package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// chromeEvent is one record of the Chrome trace_event format, the subset
// understood by chrome://tracing and Perfetto. Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders events (as retained by a Buffer) as Chrome
// trace_event JSON loadable in chrome://tracing or https://ui.perfetto.dev.
// Virtual seconds become trace microseconds. Each distinct component gets
// its own named thread row, in first-appearance order; events with Dur > 0
// become complete ("X") slices ending at their timestamp, all others become
// instant ("i") events. The output is deterministic for a deterministic
// event stream.
func WriteChromeTrace(w io.Writer, events []Event) error {
	const pid = 1
	tids := make(map[string]int)
	var meta []chromeEvent
	tidOf := func(comp string) int {
		if comp == "" {
			comp = "(kernel)"
		}
		id, ok := tids[comp]
		if !ok {
			id = len(tids) + 1
			tids[comp] = id
			meta = append(meta, chromeEvent{
				Name:  "thread_name",
				Phase: "M",
				PID:   pid,
				TID:   id,
				Args:  map[string]any{"name": comp},
			})
		}
		return id
	}

	out := make([]chromeEvent, 0, len(events)+8)
	for _, e := range events {
		ce := chromeEvent{
			Cat:  category(e.Type),
			PID:  pid,
			TID:  tidOf(e.Comp),
			TS:   e.T * 1e6,
			Name: string(e.Type),
		}
		if e.Name != "" {
			ce.Name = string(e.Type) + ":" + e.Name
		}
		if len(e.Args) > 0 {
			ce.Args = make(map[string]any, len(e.Args))
			for _, a := range e.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		if e.Dur > 0 {
			ce.Phase = "X"
			ce.TS = (e.T - e.Dur) * 1e6
			ce.Dur = e.Dur * 1e6
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out = append(out, ce)
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"}

	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// category derives the Chrome event category from the dotted type prefix.
func category(t EventType) string {
	s := string(t)
	if i := strings.IndexByte(s, '.'); i > 0 {
		return s[:i]
	}
	if s == "" {
		return "event"
	}
	return s
}

// ChromeSink buffers events and writes the Chrome trace on Close. It is a
// convenience over Buffer + WriteChromeTrace for the CLI path.
type ChromeSink struct {
	buf Buffer
	w   io.Writer
}

// NewChromeSink creates a sink that renders the full Chrome trace to w when
// closed.
func NewChromeSink(w io.Writer) *ChromeSink { return &ChromeSink{w: w} }

// Emit implements Sink.
func (s *ChromeSink) Emit(e Event) { s.buf.Emit(e) }

// Close renders the trace and closes w if it is an io.Closer.
func (s *ChromeSink) Close() error {
	err := WriteChromeTrace(s.w, s.buf.Events())
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	return nil
}
