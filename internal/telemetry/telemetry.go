// Package telemetry is the zero-dependency observability layer of the Grid
// emulator: deterministic counters, gauges and histograms registered per
// component, plus a structured trace of typed events keyed to virtual time.
//
// Design constraints, in order:
//
//  1. Determinism. Two runs of the same seeded simulation must produce
//     byte-identical exports. Nothing here reads wall-clock time or
//     iterates a map without sorting; event timestamps come from the
//     simulation clock installed with SetClock.
//
//  2. Near-zero cost when disabled. Every handle type (Counter, Gauge,
//     Histogram) and Telemetry itself are nil-safe: instrumented code may
//     call through nil pointers and pays a single predictable branch
//     (~1 ns). Hot paths guard event construction with a nil check so
//     argument slices are never built when tracing is off.
//
//  3. No dependencies beyond the standard library, and no dependency on
//     simcore — the kernel imports telemetry, not the reverse.
//
// A Telemetry hub fans events out to Sinks (an in-memory Buffer, a JSONL
// stream, or both); Chrome trace_event JSON for chrome://tracing / Perfetto
// is produced from a Buffer with WriteChromeTrace.
package telemetry

import (
	"sort"
	"sync"
)

// Telemetry is the per-simulation observability hub. Create one with New,
// install the virtual clock with SetClock (simcore.Sim.SetTelemetry does
// this), attach sinks, and hand it to the components being measured. A nil
// *Telemetry is valid and disables everything.
type Telemetry struct {
	mu    sync.Mutex
	clock func() float64
	seq   uint64
	sinks []Sink

	comps map[string]*component
	order []string
}

// component groups one named component's metrics in registration order.
type component struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cOrder   []string
	gOrder   []string
	hOrder   []string
}

// New creates an empty hub with no clock and no sinks.
func New() *Telemetry {
	return &Telemetry{comps: make(map[string]*component)}
}

// SetClock installs the virtual-time source used to stamp events.
func (t *Telemetry) SetClock(fn func() float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

// Now returns the current virtual time, or 0 without a clock.
func (t *Telemetry) Now() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// AddSink attaches a sink; every subsequent event is delivered to it.
func (t *Telemetry) AddSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
}

// Enabled reports whether any sink is attached (events would be observed).
// Metrics are always live on a non-nil hub.
func (t *Telemetry) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sinks) > 0
}

// Emit stamps the event with the current virtual time and a sequence number
// and delivers it to every sink. Callers on hot paths should guard with a
// nil check (or Enabled) before building the event's argument slice.
func (t *Telemetry) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.clock != nil {
		e.T = t.clock()
	}
	t.seq++
	e.Seq = t.seq
	sinks := t.sinks
	t.mu.Unlock()
	for _, s := range sinks {
		s.Emit(e)
	}
}

// Close closes every attached sink.
func (t *Telemetry) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sinks := t.sinks
	t.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// comp returns (creating if needed) the named component. Caller holds t.mu.
func (t *Telemetry) comp(name string) *component {
	c, ok := t.comps[name]
	if !ok {
		c = &component{
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*Histogram),
		}
		t.comps[name] = c
		t.order = append(t.order, name)
	}
	return c
}

// Counter returns the named counter for a component, registering it on
// first use. On a nil hub it returns nil, which is itself a valid no-op
// counter — the disabled fast path.
func (t *Telemetry) Counter(comp, name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.comp(comp)
	m, ok := c.counters[name]
	if !ok {
		m = &Counter{}
		c.counters[name] = m
		c.cOrder = append(c.cOrder, name)
	}
	return m
}

// Gauge returns the named gauge, registering it on first use (nil on a nil
// hub).
func (t *Telemetry) Gauge(comp, name string) *Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.comp(comp)
	m, ok := c.gauges[name]
	if !ok {
		m = &Gauge{}
		c.gauges[name] = m
		c.gOrder = append(c.gOrder, name)
	}
	return m
}

// Histogram returns the named histogram, registering it on first use (nil
// on a nil hub).
func (t *Telemetry) Histogram(comp, name string) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.comp(comp)
	m, ok := c.hists[name]
	if !ok {
		m = &Histogram{}
		c.hists[name] = m
		c.hOrder = append(c.hOrder, name)
	}
	return m
}

// Components returns the registered component names sorted alphabetically.
func (t *Telemetry) Components() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]string(nil), t.order...)
	sort.Strings(out)
	return out
}
