package telemetry

// EventType names one kind of typed trace event. The constants below cover
// the emulator stack; components may define additional types as long as the
// "component.verb" dotted style is kept (the Chrome exporter uses the prefix
// as the event category).
type EventType string

// Typed events emitted by the instrumented layers.
const (
	// Kernel process lifecycle (simcore).
	EvProcSpawn  EventType = "proc.spawn"
	EvProcPark   EventType = "proc.park"
	EvProcResume EventType = "proc.resume"
	EvProcExit   EventType = "proc.exit"

	// Processor-sharing CPU model (cpusim).
	EvCPUShare  EventType = "cpu.share"
	EvTaskStart EventType = "cpu.task.start"
	EvTaskDone  EventType = "cpu.task.done"

	// Max-min fair network model (netsim). net.realloc is emitted once per
	// virtual instant that changed the allocation, carrying every distinct
	// mutation reason of the coalesced batch joined by '+'; net.flow.start
	// carries bytes and hop count (no rate: under batched reallocation the
	// fair share is not known until the instant's flush runs).
	EvNetRealloc EventType = "net.realloc"
	EvFlowStart  EventType = "net.flow.start"
	EvFlowEnd    EventType = "net.flow.end"

	// Workflow scheduler (core).
	EvSchedDecision EventType = "sched.decision"

	// Rescheduler (§4): migration decisions and daemon activity.
	EvReschedDecision EventType = "resched.decision"

	// Contract monitoring (autopilot).
	EvContractTick      EventType = "contract.tick"
	EvContractViolation EventType = "contract.violation"

	// SRS checkpointing.
	EvCkptWrite EventType = "ckpt.write"
	EvCkptRead  EventType = "ckpt.read"

	// Application manager lifecycle.
	EvAppPhase   EventType = "app.phase"
	EvAppRestart EventType = "app.restart"

	// MPI process swapping (§4.2).
	EvSwapOrder EventType = "swap.order"
	EvSwapDone  EventType = "swap.done"

	// Fault injection (chaos layer): one event per injected fault and one
	// per scheduled recovery.
	EvFaultInject  EventType = "fault.inject"
	EvFaultRecover EventType = "fault.recover"

	// Heartbeat failure detector.
	EvDetectorSuspect EventType = "detector.suspect"

	// Resilience layer: retries against degraded grid services and
	// graceful-degradation transitions.
	EvServiceRetry    EventType = "service.retry"
	EvServiceDegraded EventType = "service.degraded"

	// Recovery control plane: circuit-breaker state transitions.
	EvBreakerState EventType = "breaker.state"

	// Checkpoint integrity: a corrupt generation detected (and skipped)
	// during restore planning or reading.
	EvCkptCorrupt EventType = "ckpt.corrupt"

	// Metascheduler graceful degradation: a poison job quarantined after
	// exhausting its requeue cap, and an admission round shed during a
	// failure-detector storm brownout.
	EvJobQuarantine EventType = "job.quarantine"
	EvSchedBrownout EventType = "sched.brownout"

	// Chaos-soak invariant harness: one violated invariant.
	EvSoakViolation EventType = "soak.violation"

	// Metascheduler job stream (metasched): submission into the queue,
	// admission onto a lease, completion (or terminal failure), and
	// preemption orders against running victims.
	EvJobSubmit  EventType = "job.submit"
	EvJobAdmit   EventType = "job.admit"
	EvJobDone    EventType = "job.done"
	EvJobPreempt EventType = "job.preempt"

	// Resource leases (metasched): grants, releases, and reclamation of
	// crashed nodes out of live leases.
	EvLeaseGrant   EventType = "lease.grant"
	EvLeaseRelease EventType = "lease.release"
	EvLeaseReclaim EventType = "lease.reclaim"

	// Front-door request plane (frontdoor): one request routed to a
	// broker, one shed by the QoS engine, and one reaching a terminal
	// state.
	EvReqRoute EventType = "req.route"
	EvReqDrop  EventType = "req.drop"
	EvReqDone  EventType = "req.done"
)

// Arg is one ordered key/value attachment on an event. Values should be
// float64, int, string or bool so every sink serializes them exactly the
// same way run after run.
type Arg struct {
	Key string `json:"k"`
	Val any    `json:"v"`
}

// F makes a float64 argument.
func F(k string, v float64) Arg { return Arg{Key: k, Val: v} }

// I makes an integer argument.
func I(k string, v int) Arg { return Arg{Key: k, Val: v} }

// S makes a string argument.
func S(k, v string) Arg { return Arg{Key: k, Val: v} }

// B makes a boolean argument.
func B(k string, v bool) Arg { return Arg{Key: k, Val: v} }

// Event is one structured trace record in virtual time. T and Seq are
// assigned by Telemetry.Emit; Dur > 0 marks a span that ended at T (the
// Chrome exporter renders it as a complete event starting at T-Dur).
type Event struct {
	T    float64   `json:"t"`
	Seq  uint64    `json:"seq"`
	Type EventType `json:"type"`
	Comp string    `json:"comp,omitempty"`
	Name string    `json:"name,omitempty"`
	Dur  float64   `json:"dur,omitempty"`
	Args []Arg     `json:"args,omitempty"`
}

// Arg returns the value of the named argument and whether it is present.
func (e *Event) Arg(key string) (any, bool) {
	for _, a := range e.Args {
		if a.Key == key {
			return a.Val, true
		}
	}
	return nil, false
}
