package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. All methods are safe on
// a nil receiver (no-ops returning zero), which is the disabled-telemetry
// fast path: instrumented code holds a nil *Counter and pays one predictable
// branch per Add. Counters are uint64 and wrap on overflow, like every
// fixed-width counter; Merge adds modulo 2^64 as well.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Merge folds another counter's count into this one (modulo 2^64).
func (c *Counter) Merge(o *Counter) {
	if c == nil || o == nil {
		return
	}
	c.v.Add(o.v.Load())
}

// Gauge is a last-write-wins instantaneous value. Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histSubBits is the number of sub-bucket bits per power-of-two octave:
// 2^histSubBits sub-buckets per octave bounds the relative quantile error
// at 2^-histSubBits (~6% with 4 bits) independent of the value range.
const histSubBits = 4

// Histogram aggregates positive float64 observations into log-spaced
// buckets (16 sub-buckets per power of two), giving deterministic quantile
// estimates with bounded relative error over an unbounded range. Zero and
// negative observations land in a dedicated underflow bucket treated as the
// smallest value. Nil-safe like Counter.
type Histogram struct {
	mu       sync.Mutex
	buckets  map[int]uint64
	under    uint64 // observations <= 0
	count    uint64
	sum      float64
	min, max float64
}

// bucketIndex maps a positive value to its log-spaced bucket.
func bucketIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	sub := int((frac - 0.5) * float64(int(2)<<histSubBits))
	if sub>>histSubBits != 0 { // frac rounding at 1.0
		sub = 1<<histSubBits - 1
	}
	return exp<<histSubBits | sub
}

// bucketUpper returns the exclusive upper bound of a bucket, the value the
// quantile estimator reports for observations in it.
func bucketUpper(idx int) float64 {
	exp := idx >> histSubBits
	sub := idx & (1<<histSubBits - 1)
	frac := 0.5 + float64(sub+1)/float64(int(2)<<histSubBits)
	return math.Ldexp(frac, exp)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 || math.IsNaN(v) {
		h.under++
		return
	}
	if h.buckets == nil {
		h.buckets = make(map[int]uint64)
	}
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 with none).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 with none).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile estimates the q-quantile (q in [0, 1]) as the upper bound of the
// bucket where the cumulative count crosses q. The estimate is exact to
// within one sub-bucket (~6% relative error) and is clamped to the observed
// [min, max]. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	if h.under >= rank {
		return h.min
	}
	cum := h.under
	idxs := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		cum += h.buckets[i]
		if cum >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Quantiles estimates several quantiles in one pass over the buckets (one
// lock, one bucket sort), returning the estimates in the order the qs were
// given. It is the batch form of Quantile for report tables that read
// p50/p95/p99 of the same histogram; each estimate carries the same
// one-sub-bucket accuracy bound. With no observations every entry is 0.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h == nil || len(qs) == 0 {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return out
	}
	// Rank of each requested quantile, then one cumulative walk over the
	// sorted buckets answering every rank as it is crossed.
	ranks := make([]uint64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		r := uint64(math.Ceil(q * float64(h.count)))
		if r == 0 {
			r = 1
		}
		ranks[i] = r
	}
	order := make([]int, len(qs)) // positions sorted by ascending rank
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ranks[order[a]] < ranks[order[b]] })
	idxs := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	cum, next := h.under, 0
	for next < len(order) && ranks[order[next]] <= cum {
		out[order[next]] = h.min // rank lands in the underflow bucket
		next++
	}
	for _, bi := range idxs {
		if next == len(order) {
			break
		}
		cum += h.buckets[bi]
		for next < len(order) && ranks[order[next]] <= cum {
			v := bucketUpper(bi)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			out[order[next]] = v
			next++
		}
	}
	for ; next < len(order); next++ {
		out[order[next]] = h.max
	}
	return out
}

// Merge folds another histogram's samples into this one.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	o.mu.Lock()
	ocount, osum, omin, omax, ounder := o.count, o.sum, o.min, o.max, o.under
	obuckets := make(map[int]uint64, len(o.buckets))
	for i, n := range o.buckets {
		obuckets[i] = n
	}
	o.mu.Unlock()
	if ocount == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || omin < h.min {
		h.min = omin
	}
	if h.count == 0 || omax > h.max {
		h.max = omax
	}
	h.count += ocount
	h.sum += osum
	h.under += ounder
	if h.buckets == nil {
		h.buckets = make(map[int]uint64, len(obuckets))
	}
	for i, n := range obuckets {
		h.buckets[i] += n
	}
}
