package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink receives every event emitted through a Telemetry hub, in emission
// order. Implementations must tolerate being called from any simulated
// process (the kernel guarantees one runs at a time, but the race detector
// still sees distinct goroutines, so sinks lock).
type Sink interface {
	Emit(Event)
	Close() error
}

// Buffer is an in-memory sink retaining every event, the source for the
// Chrome exporter and for test assertions.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// NewBuffer creates an empty buffer sink.
func NewBuffer() *Buffer { return &Buffer{} }

// Emit implements Sink.
func (b *Buffer) Emit(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Close implements Sink (a no-op).
func (b *Buffer) Close() error { return nil }

// Events returns a copy of the retained events in emission order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// JSONL streams events as one JSON object per line. The encoding is fully
// deterministic: struct field order, ordered Args, and Go's shortest-float
// formatting, so two identical seeded runs produce byte-identical output.
type JSONL struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  io.Closer // closed on Close when the target is a closer
}

// NewJSONL creates a JSONL sink over w. If w is an io.Closer it is closed
// by Close after flushing.
func NewJSONL(w io.Writer) *JSONL {
	s := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONL) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := json.Marshal(&e)
	if err != nil {
		return // unserializable arg; drop rather than corrupt the stream
	}
	s.w.Write(b)
	s.w.WriteByte('\n')
}

// Close flushes the stream and closes the underlying writer if it is a
// closer.
func (s *JSONL) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
