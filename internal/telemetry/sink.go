package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Sink receives every event emitted through a Telemetry hub, in emission
// order. Implementations must tolerate being called from any simulated
// process (the kernel guarantees one runs at a time, but the race detector
// still sees distinct goroutines, so sinks lock).
type Sink interface {
	Emit(Event)
	Close() error
}

// Buffer is an in-memory sink retaining every event, the source for the
// Chrome exporter and for test assertions.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// NewBuffer creates an empty buffer sink.
func NewBuffer() *Buffer { return &Buffer{} }

// Emit implements Sink.
func (b *Buffer) Emit(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Close implements Sink (a no-op).
func (b *Buffer) Close() error { return nil }

// Events returns a copy of the retained events in emission order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// JSONL streams events as one JSON object per line. The encoding is fully
// deterministic: struct field order, ordered Args, and Go's shortest-float
// formatting, so two identical seeded runs produce byte-identical output.
//
// Events are encoded by the hand-rolled appendEvent (see encode.go) into a
// reusable batch buffer that is written out once it exceeds jsonlFlushBytes
// and on Close — no per-event allocation or syscall. NewJSONLReference keeps
// the original per-event json.Marshal pipeline as the correctness oracle and
// performance baseline; both produce byte-identical streams.
type JSONL struct {
	mu        sync.Mutex
	w         io.Writer
	buf       []byte
	c         io.Closer // closed on Close when the target is a closer
	reference bool      // encode via json.Marshal instead of appendEvent
}

// jsonlFlushBytes is the batch-buffer size that triggers a write to the
// underlying writer. Large enough to amortize syscalls over hundreds of
// events, small enough to stay cache-resident.
const jsonlFlushBytes = 64 << 10

// NewJSONL creates a JSONL sink over w. If w is an io.Closer it is closed
// by Close after flushing.
func NewJSONL(w io.Writer) *JSONL {
	s := &JSONL{w: w, buf: make([]byte, 0, jsonlFlushBytes+1024)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// NewJSONLReference creates a JSONL sink that encodes every event with
// json.Marshal, the pipeline the batched encoder replaced. Its output is
// byte-identical to NewJSONL's; it exists as the differential-testing oracle
// (encode_test.go, determinism_test.go) and as the baseline the kernel and
// end-to-end benchmarks measure the batched encoder against.
func NewJSONLReference(w io.Writer) *JSONL {
	s := NewJSONL(w)
	s.reference = true
	return s
}

// Emit implements Sink. Unserializable events (NaN/Inf floats, unsupported
// argument types) are dropped rather than corrupting the stream.
func (s *JSONL) Emit(e Event) {
	s.mu.Lock() // explicit unlocks: no defer on the per-event hot path
	if s.reference {
		ev := e // copy so taking its address does not force e to the heap on the fast path
		b, err := json.Marshal(&ev)
		if err != nil {
			s.mu.Unlock()
			return
		}
		s.buf = append(s.buf, b...)
	} else {
		b, ok := appendEvent(s.buf, &e)
		if !ok {
			s.mu.Unlock()
			return
		}
		s.buf = b
	}
	s.buf = append(s.buf, '\n')
	if len(s.buf) >= jsonlFlushBytes {
		s.w.Write(s.buf)
		s.buf = s.buf[:0]
	}
	s.mu.Unlock()
}

// Close flushes the batch buffer and closes the underlying writer if it is
// a closer.
func (s *JSONL) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if len(s.buf) > 0 {
		_, err = s.w.Write(s.buf)
		s.buf = s.buf[:0]
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
