package telemetry

import (
	"io"
	"testing"
)

// The Emit pair isolates the encoder swap: the batched append-style encoder
// against the json.Marshal reference sink it replaced, on a representative
// flow event. Gated by cmd/benchguard in BENCH_kernel.json.

func BenchmarkJSONLEmit(b *testing.B) {
	s := NewJSONL(io.Discard)
	e := Event{T: 12.5, Type: EvFlowStart, Comp: "netsim", Name: "utk1>ucsd2",
		Args: []Arg{F("bytes", 1e6), I("hops", 3)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seq = uint64(i)
		s.Emit(e)
	}
	s.Close()
}

func BenchmarkJSONLEmitReference(b *testing.B) {
	s := NewJSONLReference(io.Discard)
	e := Event{T: 12.5, Type: EvFlowStart, Comp: "netsim", Name: "utk1>ucsd2",
		Args: []Arg{F("bytes", 1e6), I("hops", 3)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Seq = uint64(i)
		s.Emit(e)
	}
	s.Close()
}
