package telemetry_test

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// --- metrics ---

func TestCounterBasics(t *testing.T) {
	c := telemetry.New().Counter("comp", "hits")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestCounterOverflowWraps(t *testing.T) {
	tel := telemetry.New()
	c := tel.Counter("comp", "wrap")
	c.Add(math.MaxUint64 - 4)
	c.Add(10) // crosses 2^64
	if got := c.Value(); got != 5 {
		t.Fatalf("overflowed counter = %d, want 5 (wrap mod 2^64)", got)
	}
}

func TestCounterMerge(t *testing.T) {
	tel := telemetry.New()
	a := tel.Counter("comp", "a")
	b := tel.Counter("comp", "b")
	a.Add(100)
	b.Add(23)
	a.Merge(b)
	if got := a.Value(); got != 123 {
		t.Fatalf("merged counter = %d, want 123", got)
	}
	// Merge wraps like Add.
	c := tel.Counter("comp", "c")
	d := tel.Counter("comp", "d")
	c.Add(math.MaxUint64)
	d.Add(2)
	c.Merge(d)
	if got := c.Value(); got != 1 {
		t.Fatalf("merged overflow = %d, want 1", got)
	}
}

func TestGauge(t *testing.T) {
	g := telemetry.New().Gauge("comp", "level")
	g.Set(2.5)
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %g, want -7", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := telemetry.New().Histogram("comp", "lat")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("mean = %g, want 500.5", got)
	}
	// Log-bucketed quantiles are exact to one sub-bucket (~6% relative).
	checks := []struct{ q, want float64 }{{0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if rel := math.Abs(got-c.want) / c.want; rel > 0.07 {
			t.Errorf("q%.2f = %g, want %g +/- 7%% (err %.1f%%)", c.q, got, c.want, rel*100)
		}
	}
	// Quantiles never leave the observed range.
	if q := h.Quantile(0); q < 1 || q > 1000 {
		t.Errorf("q0 = %g outside [1,1000]", q)
	}
}

// TestHistogramQuantileAccuracyBound sweeps heavy- and light-tailed seeded
// distributions and requires p50/p95/p99 estimates within the documented
// one-sub-bucket bound (2^-4 relative, with rounding slack: 7%) of the exact
// empirical quantile, and the batch Quantiles readout identical to repeated
// Quantile calls regardless of argument order.
func TestHistogramQuantileAccuracyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return 1 + rng.Float64()*999 }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 30 }},
		{"lognormal", func() float64 { return math.Exp(rng.NormFloat64()*1.5 + 2) }},
		{"bimodal", func() float64 {
			if rng.Intn(10) == 0 {
				return 5000 + rng.Float64()*1000
			}
			return 1 + rng.Float64()*10
		}},
	}
	qs := []float64{0.5, 0.95, 0.99}
	for _, d := range dists {
		h := telemetry.New().Histogram("comp", d.name)
		samples := make([]float64, 20000)
		for i := range samples {
			samples[i] = d.draw()
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		got := h.Quantiles(qs...)
		for i, q := range qs {
			rank := int(math.Ceil(q*float64(len(samples)))) - 1
			exact := samples[rank]
			if rel := math.Abs(got[i]-exact) / exact; rel > 0.07 {
				t.Errorf("%s q%g = %g, want %g +/- 7%% (err %.2f%%)",
					d.name, q, got[i], exact, rel*100)
			}
			if single := h.Quantile(q); single != got[i] {
				t.Errorf("%s q%g: Quantiles=%g disagrees with Quantile=%g",
					d.name, q, got[i], single)
			}
		}
		// Batch answers must not depend on argument order.
		rev := h.Quantiles(0.99, 0.5, 0.95)
		if rev[0] != got[2] || rev[1] != got[0] || rev[2] != got[1] {
			t.Errorf("%s: Quantiles order-sensitive: %v vs %v", d.name, got, rev)
		}
	}
}

// TestHistogramQuantilesEdge pins the batch readout's edge behaviour: nil
// and empty receivers, underflow-bucket ranks, and out-of-range qs.
func TestHistogramQuantilesEdge(t *testing.T) {
	var nilH *telemetry.Histogram
	if got := nilH.Quantiles(0.5, 0.99); got[0] != 0 || got[1] != 0 {
		t.Errorf("nil Quantiles = %v", got)
	}
	empty := telemetry.New().Histogram("comp", "empty")
	if got := empty.Quantiles(0.5); got[0] != 0 {
		t.Errorf("empty Quantiles = %v", got)
	}
	h := telemetry.New().Histogram("comp", "under")
	h.Observe(-3)
	h.Observe(-1)
	h.Observe(10)
	got := h.Quantiles(-1, 0.3, 2)
	if got[0] != -3 || got[1] != -3 {
		t.Errorf("underflow ranks = %v, want min -3", got)
	}
	if got[2] < 9 || got[2] > 10 {
		t.Errorf("q>1 clamps to max: got %g", got[2])
	}
}

func TestHistogramConstantAndNonPositive(t *testing.T) {
	h := telemetry.New().Histogram("comp", "c")
	for i := 0; i < 10; i++ {
		h.Observe(3.25)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); math.Abs(got-3.25) > 3.25*0.07 {
			t.Errorf("constant q%.1f = %g, want ~3.25", q, got)
		}
	}
	z := telemetry.New().Histogram("comp", "z")
	z.Observe(0)
	z.Observe(-5)
	z.Observe(10)
	if z.Count() != 3 {
		t.Fatalf("count = %d", z.Count())
	}
	if got := z.Quantile(0.3); got != -5 {
		t.Errorf("underflow quantile = %g, want min -5", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	tel := telemetry.New()
	a := tel.Histogram("comp", "a")
	b := tel.Histogram("comp", "b")
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b)
	if a.Count() != 200 || a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged count/min/max = %d/%g/%g", a.Count(), a.Min(), a.Max())
	}
	if got := a.Quantile(0.5); math.Abs(got-100)/100 > 0.07 {
		t.Errorf("merged p50 = %g, want ~100", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tel *telemetry.Telemetry
	tel.Emit(telemetry.Event{Type: "x"})
	tel.AddSink(telemetry.NewBuffer())
	tel.SetClock(func() float64 { return 1 })
	if tel.Now() != 0 || tel.Enabled() || tel.Close() != nil || tel.Summary() == "" {
		t.Fatal("nil hub misbehaved")
	}
	c := tel.Counter("a", "b")
	c.Inc()
	c.Add(5)
	c.Merge(nil)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := tel.Gauge("a", "b")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	h := tel.Histogram("a", "b")
	h.Observe(1)
	h.Merge(nil)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram observed")
	}
}

// --- registration identity ---

func TestMetricIdentity(t *testing.T) {
	tel := telemetry.New()
	if tel.Counter("x", "n") != tel.Counter("x", "n") {
		t.Fatal("same name returned distinct counters")
	}
	if tel.Counter("x", "n") == tel.Counter("y", "n") {
		t.Fatal("distinct components share a counter")
	}
}

// --- trace events over the kernel ---

// TestTraceEventOrderingInterleavedProcs runs two interleaved simulated
// processes and checks the event stream: sequence numbers strictly
// increase, timestamps never go backwards, and each process's lifecycle
// (spawn -> resume -> ... -> exit) is internally ordered.
func TestTraceEventOrderingInterleavedProcs(t *testing.T) {
	sim := simcore.New(7)
	tel := telemetry.New()
	buf := telemetry.NewBuffer()
	tel.AddSink(buf)
	sim.SetTelemetry(tel)

	for _, cfg := range []struct {
		name  string
		sleep float64
		iters int
	}{{"alpha", 1.0, 5}, {"beta", 1.5, 4}} {
		cfg := cfg
		sim.Spawn(cfg.name, func(p *simcore.Proc) {
			for i := 0; i < cfg.iters; i++ {
				if err := p.Sleep(cfg.sleep); err != nil {
					return
				}
			}
		})
	}
	sim.Run()

	events := buf.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	var lastSeq uint64
	lastT := math.Inf(-1)
	phase := map[string]int{} // name -> 0 none, 1 spawned, 2 running, 3 exited
	for i, e := range events {
		if e.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not increasing after %d", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.T < lastT {
			t.Fatalf("event %d: time %g went backwards from %g", i, e.T, lastT)
		}
		lastT = e.T
		switch e.Type {
		case telemetry.EvProcSpawn:
			if phase[e.Name] != 0 {
				t.Fatalf("%s spawned twice", e.Name)
			}
			phase[e.Name] = 1
		case telemetry.EvProcResume, telemetry.EvProcPark:
			if phase[e.Name] == 0 || phase[e.Name] == 3 {
				t.Fatalf("%s %s while in phase %d", e.Name, e.Type, phase[e.Name])
			}
			phase[e.Name] = 2
		case telemetry.EvProcExit:
			if phase[e.Name] != 2 {
				t.Fatalf("%s exited from phase %d", e.Name, phase[e.Name])
			}
			phase[e.Name] = 3
		}
	}
	for _, name := range []string{"alpha", "beta"} {
		if phase[name] != 3 {
			t.Errorf("%s never completed its lifecycle (phase %d)", name, phase[name])
		}
	}
	// Kernel counters agree with the trace.
	spawns := tel.Counter("simcore", "procs_spawned").Value()
	if spawns != 2 {
		t.Errorf("procs_spawned = %d, want 2", spawns)
	}
	if fired := tel.Counter("simcore", "events_fired").Value(); fired == 0 {
		t.Error("events_fired = 0")
	}
}

// TestJSONLDeterministic emits an identical event sequence through two
// hubs and requires byte-identical JSONL output.
func TestJSONLDeterministic(t *testing.T) {
	run := func() []byte {
		var out bytes.Buffer
		sim := simcore.New(3)
		tel := telemetry.New()
		tel.AddSink(telemetry.NewJSONL(&out))
		sim.SetTelemetry(tel)
		sim.Spawn("w", func(p *simcore.Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(0.5)
			}
		})
		sim.Run()
		if err := tel.Close(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different JSONL bytes")
	}
	if len(a) == 0 {
		t.Fatal("empty JSONL output")
	}
}

// --- Chrome trace export ---

// goldenEvents is a fixed stream covering instants, spans, multiple
// components and every arg type.
func goldenEvents() []telemetry.Event {
	return []telemetry.Event{
		{T: 0, Seq: 1, Type: telemetry.EvProcSpawn, Comp: "simcore", Name: "qr",
			Args: []telemetry.Arg{telemetry.I("id", 1), telemetry.F("start_t", 0)}},
		{T: 1.5, Seq: 2, Type: telemetry.EvCPUShare, Comp: "cpu:utk1",
			Args: []telemetry.Arg{telemetry.S("reason", "task-start"), telemetry.I("tasks", 1), telemetry.F("rate_ops_s", 5e8)}},
		{T: 4.25, Seq: 3, Type: telemetry.EvFlowEnd, Comp: "netsim", Name: "qr", Dur: 2.75,
			Args: []telemetry.Arg{telemetry.F("bytes", 1e6)}},
		{T: 9, Seq: 4, Type: telemetry.EvReschedDecision, Comp: "rescheduler",
			Args: []telemetry.Arg{telemetry.B("migrate", true), telemetry.S("reason", "predicted benefit 100s")}},
		{T: 12, Seq: 5, Type: telemetry.EvProcExit, Comp: "simcore", Name: "qr",
			Args: []telemetry.Arg{telemetry.I("id", 1)}},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var got bytes.Buffer
	if err := telemetry.WriteChromeTrace(&got, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("chrome trace differs from golden file\ngot:  %s\nwant: %s", got.Bytes(), want)
	}
}

func TestChromeSink(t *testing.T) {
	var out bytes.Buffer
	s := telemetry.NewChromeSink(&out)
	for _, e := range goldenEvents() {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte(`"traceEvents"`)) {
		t.Fatal("chrome sink output lacks traceEvents")
	}
}

// --- summary ---

func TestSummary(t *testing.T) {
	tel := telemetry.New()
	tel.Counter("zeta", "n").Add(3)
	tel.Gauge("alpha", "g").Set(1.5)
	tel.Histogram("alpha", "h").Observe(2)
	s := tel.Summary()
	for _, want := range []string{"alpha", "zeta", "counter", "gauge", "histogram", "n=1"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// Deterministic output.
	if s != tel.Summary() {
		t.Error("summary not stable")
	}
}

// --- event args ---

func TestEventArgLookup(t *testing.T) {
	e := telemetry.Event{Args: []telemetry.Arg{telemetry.F("x", 2), telemetry.S("y", "z")}}
	if v, ok := e.Arg("y"); !ok || v != "z" {
		t.Fatalf("Arg(y) = %v, %v", v, ok)
	}
	if _, ok := e.Arg("missing"); ok {
		t.Fatal("found missing arg")
	}
}
