package telemetry

import (
	"encoding/json"
	"math"
	"strconv"
	"unicode/utf8"
)

// Hand-rolled JSONL encoding of Event, byte-identical to encoding/json's
// output for the same value (struct field order, omitempty, ES6-style float
// formatting, HTML-escaped strings). The per-event json.Marshal it replaces
// walks the struct through reflection and allocates the result; appendEvent
// writes straight into the sink's reusable batch buffer, which is what makes
// JSONL tracing cheap enough for million-event runs. The encoder-equivalence
// property and fuzz tests in encode_test.go hold the two implementations
// together; NewJSONLReference keeps the json.Marshal path alive as the
// oracle.

// appendEvent appends the canonical one-line JSON encoding of e to dst.
// ok is false — and dst is returned unchanged — when the event cannot be
// serialized (a NaN/Inf float or an unsupported argument type), matching
// json.Marshal's error cases so both encoders drop exactly the same events.
func appendEvent(dst []byte, e *Event) (out []byte, ok bool) {
	mark := len(dst)
	dst = append(dst, `{"t":`...)
	dst, ok = appendJSONFloat(dst, e.T)
	if !ok {
		return dst[:mark], false
	}
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, string(e.Type))
	if e.Comp != "" {
		dst = append(dst, `,"comp":`...)
		dst = appendJSONString(dst, e.Comp)
	}
	if e.Name != "" {
		dst = append(dst, `,"name":`...)
		dst = appendJSONString(dst, e.Name)
	}
	if e.Dur != 0 {
		dst = append(dst, `,"dur":`...)
		dst, ok = appendJSONFloat(dst, e.Dur)
		if !ok {
			return dst[:mark], false
		}
	}
	if len(e.Args) > 0 {
		dst = append(dst, `,"args":[`...)
		for i := range e.Args {
			if i > 0 {
				dst = append(dst, ',')
			}
			a := &e.Args[i]
			dst = append(dst, `{"k":`...)
			dst = appendJSONString(dst, a.Key)
			dst = append(dst, `,"v":`...)
			dst, ok = appendJSONValue(dst, a.Val)
			if !ok {
				return dst[:mark], false
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, '}')
	return dst, true
}

// appendJSONValue encodes one argument value. The documented Arg value
// types (float64, int, string, bool) are encoded directly; anything else
// falls back to json.Marshal, whose compact output is identical for every
// type it supports.
func appendJSONValue(dst []byte, v any) ([]byte, bool) {
	switch v := v.(type) {
	case float64:
		return appendJSONFloat(dst, v)
	case int:
		return strconv.AppendInt(dst, int64(v), 10), true
	case string:
		return appendJSONString(dst, v), true
	case bool:
		return strconv.AppendBool(dst, v), true
	case nil:
		return append(dst, "null"...), true
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return dst, false
		}
		return append(dst, b...), true
	}
}

// appendJSONFloat formats f the way encoding/json does: ES6
// number-to-string conversion ('f' format, switching to 'e' with an
// unpadded exponent outside [1e-6, 1e21)). NaN and infinities are
// unencodable, as in json.Marshal.
func appendJSONFloat(dst []byte, f float64) ([]byte, bool) {
	if f != f || f > 1.7976931348623157e308 || f < -1.7976931348623157e308 {
		return dst, false
	}
	// Fast path: for an integer-valued float below 2^53 the shortest
	// round-trip decimal in 'f' format is the integer's own digits, so
	// plain integer formatting is byte-identical and skips the general
	// Ryū shortest-float machinery. Telemetry streams are full of such
	// values (whole-tick times, byte counts, sequence-like args).
	// Negative zero must not take it: json renders -0.0 as "-0".
	if i := int64(f); float64(i) == f && i > -(1<<53) && i < 1<<53 && (i != 0 || !math.Signbit(f)) {
		return strconv.AppendInt(dst, i, 10), true
	}
	abs := f
	if abs < 0 {
		abs = -abs
	}
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// clean up e-09 to e-9
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

const hexDigits = "0123456789abcdef"

// jsonSafe marks the ASCII bytes that encoding/json emits verbatim with
// HTML escaping on (its default): printable characters except the JSON
// specials '"' and '\\' and the HTML specials '<', '>', '&'.
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		safe[b] = b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
	}
	return
}()

// appendJSONString quotes and escapes s exactly as encoding/json's
// HTML-escaping string encoder does: control characters and HTML specials
// become escape sequences, invalid UTF-8 bytes become U+FFFD, and U+2028 /
// U+2029 are escaped for JavaScript embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case c == utf8.RuneError && size == 1:
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
		case c == '\u2028' || c == '\u2029':
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
		default:
			i += size
		}
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
