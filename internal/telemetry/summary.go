package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Summary renders every registered metric as an aligned text table, grouped
// by component (components and metric names alphabetical, so the output is
// stable run to run). Histograms report count, mean, p50/p90/p95/p99 and max.
func (t *Telemetry) Summary() string {
	if t == nil {
		return "(telemetry disabled)\n"
	}
	type row struct{ comp, metric, kind, value string }
	var rows []row

	t.mu.Lock()
	comps := append([]string(nil), t.order...)
	sort.Strings(comps)
	snapshot := make(map[string]*component, len(comps))
	for _, name := range comps {
		snapshot[name] = t.comps[name]
	}
	t.mu.Unlock()

	for _, name := range comps {
		c := snapshot[name]
		counters := append([]string(nil), c.cOrder...)
		sort.Strings(counters)
		for _, m := range counters {
			rows = append(rows, row{name, m, "counter", fmt.Sprintf("%d", c.counters[m].Value())})
		}
		gauges := append([]string(nil), c.gOrder...)
		sort.Strings(gauges)
		for _, m := range gauges {
			rows = append(rows, row{name, m, "gauge", fmt.Sprintf("%g", c.gauges[m].Value())})
		}
		hists := append([]string(nil), c.hOrder...)
		sort.Strings(hists)
		for _, m := range hists {
			h := c.hists[m]
			qs := h.Quantiles(0.5, 0.9, 0.95, 0.99)
			rows = append(rows, row{name, m, "histogram", fmt.Sprintf(
				"n=%d mean=%.4g p50=%.4g p90=%.4g p95=%.4g p99=%.4g max=%.4g",
				h.Count(), h.Mean(), qs[0], qs[1], qs[2], qs[3], h.Max())})
		}
	}
	if len(rows) == 0 {
		return "(no metrics registered)\n"
	}

	w1, w2, w3 := len("component"), len("metric"), len("kind")
	for _, r := range rows {
		if len(r.comp) > w1 {
			w1 = len(r.comp)
		}
		if len(r.metric) > w2 {
			w2 = len(r.metric)
		}
		if len(r.kind) > w3 {
			w3 = len(r.kind)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %-*s  %-*s  %s\n", w1, "component", w2, "metric", w3, "kind", "value")
	fmt.Fprintf(&b, "%s  %s  %s  %s\n",
		strings.Repeat("-", w1), strings.Repeat("-", w2), strings.Repeat("-", w3), "-----")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %-*s  %-*s  %s\n", w1, r.comp, w2, r.metric, w3, r.kind, r.value)
	}
	return b.String()
}
