package chaossoak

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"grads/internal/faultinject"
	"grads/internal/telemetry"
)

// runSmoke executes one smoke soak with a JSONL sink attached and returns
// the result plus the raw trace bytes.
func runSmoke(t *testing.T, cfg Config) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	tel := telemetry.New()
	tel.AddSink(telemetry.NewJSONL(&buf))
	cfg.Telemetry = tel
	r, err := Run(cfg)
	tel.Close()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r, buf.Bytes()
}

func TestSmokeSoakCleanAndDeterministic(t *testing.T) {
	r1, trace1 := runSmoke(t, SmokeConfig(1))
	r2, trace2 := runSmoke(t, SmokeConfig(1))

	if !r1.Drained {
		t.Fatalf("smoke soak did not drain before RunCap (elapsed %v)", r1.Elapsed)
	}
	if len(r1.Violations) != 0 {
		t.Fatalf("invariant violations on clean run: %+v", r1.Violations)
	}
	if r1.LostJobs != 0 {
		t.Fatalf("lost jobs = %d, want 0", r1.LostJobs)
	}
	if got := r1.Done + r1.Failed + r1.Quarantined; got != r1.Jobs {
		t.Fatalf("terminal jobs = %d, want %d", got, r1.Jobs)
	}
	if r1.KernelEvents == 0 || r1.Checks == 0 {
		t.Fatalf("degenerate run: %d kernel events, %d sweeps", r1.KernelEvents, r1.Checks)
	}
	if r1.Injected == 0 {
		t.Fatal("fault schedule injected nothing — the soak exercised no failures")
	}

	// The soak is a falsifier only if reruns are exactly reproducible:
	// same seed, same result, byte-identical telemetry stream.
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same-seed results differ:\n%+v\n%+v", r1, r2)
	}
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("same-seed JSONL traces differ: %d vs %d bytes", len(trace1), len(trace2))
	}
}

func TestSmokeSoakSpecParsesAndSeedsDiverge(t *testing.T) {
	r1, _ := runSmoke(t, SmokeConfig(1))
	if _, err := faultinject.ParseSpec(r1.Spec); err != nil {
		t.Fatalf("Result.Spec does not round-trip through ParseSpec: %v", err)
	}

	// A different seed must produce a different fault schedule — and a run
	// demanding an absurd kernel-event floor must report a scale violation
	// rather than silently passing.
	cfg := SmokeConfig(2)
	cfg.MinKernelEvents = 1 << 60
	r2, _ := runSmoke(t, cfg)
	if r2.Spec == r1.Spec {
		t.Error("seeds 1 and 2 generated identical fault schedules")
	}
	found := false
	for _, v := range r2.Violations {
		if v.Invariant == "scale" {
			found = true
		} else {
			t.Errorf("unexpected violation %+v", v)
		}
	}
	if !found {
		t.Error("MinKernelEvents floor not reported as a scale violation")
	}
}

func TestTruncatedRunReportsLiveness(t *testing.T) {
	cfg := SmokeConfig(1)
	cfg.RunCap = 500 // far below the drain point: jobs must still be in flight
	r, _ := runSmoke(t, cfg)
	if r.Drained {
		t.Fatal("truncated run claims to have drained")
	}
	var liveness *Violation
	for i := range r.Violations {
		if r.Violations[i].Invariant == "liveness" {
			liveness = &r.Violations[i]
		}
	}
	if liveness == nil {
		t.Fatalf("no liveness violation on truncated run; got %+v", r.Violations)
	}
	if !strings.Contains(liveness.Detail, "(") {
		t.Errorf("liveness detail should name stuck jobs with states, got %q", liveness.Detail)
	}
	// Tracked-but-unfinished jobs are stalled, not lost: the liveness
	// violation owns them, LostJobs stays an accounting invariant.
	if r.LostJobs != 0 {
		t.Errorf("truncated run counted stalled jobs as lost: %d", r.LostJobs)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Jobs = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.RunCap = -1 },
		func(c *Config) { c.TickEvery = 0 },
	} {
		cfg := SmokeConfig(1)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run accepted invalid config %+v", cfg)
		}
	}
}
