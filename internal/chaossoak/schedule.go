package chaossoak

import (
	"fmt"
	"math/rand"
	"sort"

	"grads/internal/apps"
	"grads/internal/cop"
	"grads/internal/faultinject"
	"grads/internal/metasched"
	"grads/internal/topology"
)

// buildSchedule layers the mixed fault mix over the background per-node
// crash process: two site-wide storms, checkpoint-corruption windows, a WAN
// partition and a WAN degradation, and an outage or lag window per grid
// service. Every window starts inside [0, Horizon) and ends by Horizon;
// only crash repairs may spill slightly past it (their End is exponential).
func buildSchedule(rng *rand.Rand, grid *topology.Grid, cfg Config) []faultinject.Event {
	names := make([]string, 0, len(grid.Nodes()))
	for _, n := range grid.Nodes() {
		names = append(names, n.Name())
	}
	sort.Strings(names)

	events := faultinject.GenerateNodeFaults(rng, names, cfg.MTBF, cfg.MTTR, cfg.Horizon)

	h := cfg.Horizon
	// jitter places a window start near a fraction of the horizon, with a
	// little seeded spread so distinct seeds see distinct alignments.
	jitter := func(frac float64) float64 { return h * (frac + 0.03*rng.Float64()) }

	at := jitter(0.22)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindStorm, Start: at, End: at + 40, Target: "uiuc", Value: 3,
	})
	at = jitter(0.55)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindStorm, Start: at, End: at + 30, Target: "utk", Value: 2,
	})

	at = jitter(0.32)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindCkptCorrupt, Start: at, End: at + h*0.08, Target: names[1],
	})
	at = jitter(0.62)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindCkptCorrupt, Start: at, End: at + h*0.06, Target: names[len(names)-2],
	})

	at = jitter(0.40)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindLinkDown, Start: at, End: at + 20, Target: "wan:UIUC|UTK",
	})
	at = jitter(0.70)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindLinkSlow, Start: at, End: at + h*0.05, Target: "wan:UIUC|UTK", Value: 0.5,
	})

	at = jitter(0.28)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindOutage, Start: at, End: at + 25, Target: "gis",
	})
	at = jitter(0.48)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindLag, Start: at, End: at + 60, Target: "nws", Value: 0.5,
	})
	at = jitter(0.58)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindOutage, Start: at, End: at + 20, Target: "binder",
	})
	at = jitter(0.76)
	events = append(events, faultinject.Event{
		Kind: faultinject.KindOutage, Start: at, End: at + 15, Target: "ibp",
	})

	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Target < b.Target
	})
	return events
}

// soakClass is one job template in the generated stream.
type soakClass struct {
	kind     string
	width    int
	minWidth int
	est      float64
	make_    func(width int) func(*metasched.AppContext) (cop.COP, error)
}

// soakClasses is the three-way workload mix: a ScaLAPACK QR (iterative,
// panel checkpoints), a wide task farm, and a narrow task farm.
func soakClasses() []soakClass {
	return []soakClass{
		{
			kind: "qr", width: 4, minWidth: 2, est: 40,
			make_: func(width int) func(*metasched.AppContext) (cop.COP, error) {
				return func(c *metasched.AppContext) (cop.COP, error) {
					q, err := apps.NewQR(c.Grid, c.RSS, c.Binder, c.Weather, 1500, 50)
					if err != nil {
						return nil, err
					}
					q.SetMaxProcs(width)
					q.CheckpointEvery = 3
					return q, nil
				}
			},
		},
		{
			kind: "farm-wide", width: 6, minWidth: 3, est: 35,
			make_: func(width int) func(*metasched.AppContext) (cop.COP, error) {
				return func(c *metasched.AppContext) (cop.COP, error) {
					f, err := apps.NewTaskFarm(c.Grid, c.RSS, c.Binder, c.Weather, 18, 5e9, width)
					if err != nil {
						return nil, err
					}
					f.CheckpointEvery = 2
					return f, nil
				}
			},
		},
		{
			kind: "farm-small", width: 3, minWidth: 2, est: 20,
			make_: func(width int) func(*metasched.AppContext) (cop.COP, error) {
				return func(c *metasched.AppContext) (cop.COP, error) {
					f, err := apps.NewTaskFarm(c.Grid, c.RSS, c.Binder, c.Weather, 8, 3e9, width)
					if err != nil {
						return nil, err
					}
					f.CheckpointEvery = 2
					return f, nil
				}
			},
		},
	}
}

// buildStream generates the seeded submission stream: cfg.Jobs submissions
// cycling through the class mix, arrivals spread over the first 60% of the
// horizon so late arrivals still meet live faults, bids spread so the
// priority-backfill policy has real contention to arbitrate.
func buildStream(rng *rand.Rand, cfg Config) []metasched.JobSpec {
	classes := soakClasses()
	specs := make([]metasched.JobSpec, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		cl := classes[i%len(classes)]
		specs = append(specs, metasched.JobSpec{
			Name:       fmt.Sprintf("%s-%02d", cl.kind, i),
			Kind:       cl.kind,
			Submit:     rng.Float64() * cfg.Horizon * 0.6,
			Width:      cl.width,
			MinWidth:   cl.minWidth,
			Bid:        1 + rng.Float64()*4,
			EstRuntime: cl.est,
			Make:       cl.make_(cl.width),
		})
	}
	return specs
}
