// Package chaossoak is the long-horizon invariant harness of the recovery
// control plane: it runs a seeded job stream through the metascheduler on
// the QR testbed while a randomized mixed fault schedule (crashes, storms,
// link faults, service outages, checkpoint corruption) plays against the
// full resilience stack — circuit breakers, retry budgets, failure
// detector, checkpoint lineage — and sweeps a set of safety invariants
// every few seconds of virtual time.
//
// The soak is a falsifier, not a benchmark: any tick where an invariant
// fails is recorded as a Violation (and emitted as telemetry), and the
// acceptance bar is zero violations, zero lost jobs, and a byte-identical
// telemetry trace on every rerun of the same seed.
package chaossoak

import (
	"fmt"
	"math/rand"
	"sort"

	"grads/internal/binder"
	"grads/internal/faultinject"
	"grads/internal/gis"
	"grads/internal/ibp"
	"grads/internal/metasched"
	"grads/internal/nws"
	"grads/internal/resilience"
	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Config parameterizes one soak run.
type Config struct {
	Seed int64
	Jobs int // submissions in the generated stream

	// Horizon is the fault-generation window: every fault starts inside
	// [0, Horizon) (crash repairs may spill slightly past it). RunCap is
	// the hard virtual-time stop; the stream draining before RunCap is
	// itself an invariant (liveness).
	Horizon float64
	RunCap  float64

	// MTBF/MTTR drive the background per-node crash process; the mixed
	// storm/link/service/corruption faults are layered on top.
	MTBF float64
	MTTR float64

	// TickEvery is the invariant-sweep period.
	TickEvery float64

	DetectorPeriod float64
	NWSPeriod      float64

	// Guards installs circuit breakers and retry budgets on the shared
	// retrier (the production configuration). Off, the soak still runs —
	// the comparison is the point of the no-fault benchmarks.
	Guards bool

	// NoFaults suppresses the entire fault schedule. The workload, guards
	// and invariant sweeps still run; the bare-vs-guarded no-fault
	// benchmark pair uses this to price the guard layer on the hot path.
	NoFaults bool

	// MinKernelEvents, when positive, makes the soak demand at least this
	// many kernel events by drain time (the "long enough to mean
	// something" floor). Zero disables the check.
	MinKernelEvents uint64

	// Telemetry, when set, is attached to the simulation kernel so the
	// soak emits the same JSONL stream as every other experiment.
	Telemetry *telemetry.Telemetry
}

// DefaultConfig is the published soak point: a 2400-job stream over a
// two-virtual-day fault window with roughly 1800 injected faults, sized so
// the kernel fires over a million events before the stream drains. Hostile
// enough to exercise every recovery path, yet guaranteed (by seed) to
// drain with zero violations.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Jobs:            2400,
		Horizon:         180000,
		RunCap:          600000,
		MTBF:            1200,
		MTTR:            90,
		TickEvery:       5,
		DetectorPeriod:  5,
		NWSPeriod:       10,
		Guards:          true,
		MinKernelEvents: 1_000_000,
	}
}

// SmokeConfig is the CI point: the same fault mix compressed to a
// forty-job stream that drains in well under a second of wall time, used
// for the multi-seed smoke matrix and the byte-identical-trace check.
func SmokeConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Jobs = 40
	cfg.Horizon = 8000
	cfg.RunCap = 120000
	cfg.MinKernelEvents = 0
	return cfg
}

// Violation is one failed invariant check at one sweep.
type Violation struct {
	T         float64
	Invariant string
	Detail    string
}

// ClassStats aggregates outcomes per job class for the degradation report.
type ClassStats struct {
	Class          string
	Jobs           int
	Done           int
	Quarantined    int
	Failed         int
	MeanTurnaround float64 // over terminal jobs of the class
	MeanRequeues   float64
}

// Result is everything one soak run measured.
type Result struct {
	Seed         int64
	Spec         string // replayable fault schedule (faultinject grammar)
	KernelEvents uint64
	Elapsed      float64 // drain time (or RunCap when the stream stalled)
	Drained      bool

	Jobs        int
	Done        int
	Failed      int
	Quarantined int
	LostJobs    int      // submissions not accounted for by any terminal state
	FailedJobs  []string // "name: error" for every terminally failed job

	Admissions int
	Requeues   int
	Preempts   int
	Brownouts  int

	Injected  int
	Recovered int
	Skipped   int
	Suspects  int
	Repairs   int     // node recoveries observed by the soak's own detector
	MTTRMean  float64 // mean observed node downtime (failure->recovery, detector clock)

	Retries      int
	GaveUp       int
	BreakerOpens int
	FastFails    int
	BudgetDenied int

	CorruptDetected  int
	CorruptServed    int
	LineageFallbacks int

	Checks     int // invariant sweeps executed
	Violations []Violation
	PerClass   []ClassStats
}

// maxViolationDetails bounds the report; past this the soak only counts.
const maxViolationDetails = 64

// Run executes one soak. It is deterministic in cfg: the same Config
// produces the same Result (and, with Telemetry attached, a byte-identical
// event stream).
func Run(cfg Config) (*Result, error) {
	if cfg.Jobs <= 0 || cfg.Horizon <= 0 || cfg.RunCap <= 0 || cfg.TickEvery <= 0 {
		return nil, fmt.Errorf("chaossoak: Jobs, Horizon, RunCap and TickEvery must be positive")
	}

	sim := simcore.New(cfg.Seed)
	if cfg.Telemetry != nil {
		sim.SetTelemetry(cfg.Telemetry)
	}
	grid := topology.QRTestbed(sim)
	g := gis.New(sim, grid)
	g.RegisterSoftwareEverywhere(binder.LocalBinderPkg, "/opt/grads/binder")
	for _, lib := range []string{"scalapack", "blas", "srs", "autopilot", "mpi"} {
		g.RegisterSoftwareEverywhere(lib, "/opt/"+lib)
	}
	st := ibp.New(sim, grid)
	st.AddDepotsEverywhere()
	bind := binder.New(sim, g)
	var weather *nws.Service
	if cfg.NWSPeriod > 0 {
		weather = nws.Start(sim, grid, cfg.NWSPeriod)
	}

	// The shared retrier, optionally with the full guard stack.
	retr := resilience.NewRetrier(sim, resilience.DefaultPolicy(),
		rand.New(rand.NewSource(cfg.Seed+7)))
	if cfg.Guards {
		retr.SetGuards(
			resilience.NewBreakerSet(sim, resilience.DefaultBreakerConfig(),
				rand.New(rand.NewSource(cfg.Seed+11))),
			resilience.NewBudgetSet(sim, resilience.DefaultBudgetConfig()),
		)
	}
	bind.SetRetrier(retr)

	// Fault injection over every service plus the storage corruptor.
	in := faultinject.NewInjector(sim, grid)
	var weatherHS faultinject.HealthSetter
	if weather != nil {
		weatherHS = weather
	}
	faultinject.Wire(in, g, weatherHS, bind, st)
	var events []faultinject.Event
	if !cfg.NoFaults {
		events = buildSchedule(rand.New(rand.NewSource(cfg.Seed+5)), grid, cfg)
	}
	in.Load(events)

	// The soak's own detector clocks observed node downtime (MTTR as the
	// control plane perceives it, detection latency included).
	det := resilience.NewDetector(sim, grid, detectorPeriodOr(cfg))
	names := make([]string, 0, len(grid.Nodes()))
	for _, n := range grid.Nodes() {
		names = append(names, n.Name())
	}
	sort.Strings(names)
	det.Watch(names...)
	downSince := make(map[string]float64)
	repairs, downSum := 0, 0.0
	det.OnFailure(func(node string, at float64) { downSince[node] = at })
	det.OnRecovery(func(node string, at float64) {
		if t0, ok := downSince[node]; ok {
			downSum += at - t0
			repairs++
			delete(downSince, node)
		}
	})

	var sched *metasched.Scheduler
	var chk *checker
	drained := false
	drainAt := 0.0
	stopAll := func() {
		drained = true
		drainAt = sim.Now()
		in.Stop()
		det.Stop()
		if weather != nil {
			weather.Stop()
		}
		chk.stop()
		sched.Stop()
	}
	sched, err := metasched.New(metasched.Config{
		Sim: sim, Grid: grid, GIS: g, Storage: st, Binder: bind, Weather: weather,
		Policy:         metasched.PolicyBackfill,
		Tick:           5,
		StarveAfter:    300,
		RelaxAfter:     600,
		Retrier:        retr,
		DetectorPeriod: cfg.DetectorPeriod,
		MaxRequeues:    10,
		RequeueBackoff: 4,
		BrownoutSuspects: func() int {
			if cfg.DetectorPeriod > 0 {
				return 5
			}
			return 0
		}(),
		OnIdle: stopAll,
	})
	if err != nil {
		return nil, err
	}
	specs := buildStream(rand.New(rand.NewSource(cfg.Seed+3)), cfg)
	for _, s := range specs {
		if _, err := sched.Submit(s); err != nil {
			return nil, fmt.Errorf("chaossoak: submit %s: %w", s.Name, err)
		}
	}

	chk = newChecker(sim, sched, cfg.Jobs)
	chk.start(cfg.TickEvery, func() bool { return drained })

	sched.Start()
	in.Start()
	det.Start()
	sim.RunUntil(cfg.RunCap)

	// Final sweep: the invariants must also hold at rest.
	chk.sweep(sim.Now())
	if !drained {
		stuck := ""
		for _, j := range sched.Jobs() {
			st := j.State()
			if st == metasched.JobDone || st == metasched.JobFailed || st == metasched.JobQuarantined {
				continue
			}
			if stuck != "" {
				stuck += ", "
			}
			stuck += fmt.Sprintf("%s(%s)", j.Spec.Name, st)
		}
		chk.violate(sim.Now(), "liveness",
			fmt.Sprintf("%d jobs unfinished at the %g s cap: %s", sched.Remaining(), cfg.RunCap, stuck))
	}
	if cfg.MinKernelEvents > 0 && sim.EventsFired() < cfg.MinKernelEvents {
		chk.violate(sim.Now(), "scale",
			fmt.Sprintf("only %d kernel events fired, need >= %d", sim.EventsFired(), cfg.MinKernelEvents))
	}

	res := &Result{
		Seed:         cfg.Seed,
		Spec:         faultinject.FormatSpec(events),
		KernelEvents: sim.EventsFired(),
		Elapsed:      sim.Now(),
		Drained:      drained,
		Jobs:         cfg.Jobs,
		Admissions:   sched.Admissions(),
		Preempts:     sched.PreemptApplied(),
		Brownouts:    sched.Brownouts(),
		Injected:     in.Injected(),
		Recovered:    in.Recovered(),
		Skipped:      in.Skipped(),
		Suspects:     det.Suspects(),
		Repairs:      repairs,
		Retries:      retr.Retries(),
		GaveUp:       retr.GaveUp(),
		Checks:       chk.checks,
		Violations:   chk.violations,
	}
	if drained {
		res.Elapsed = drainAt
	}
	if repairs > 0 {
		res.MTTRMean = downSum / float64(repairs)
	}
	if bs := retr.Breakers(); bs != nil {
		res.BreakerOpens = bs.Opens()
		res.FastFails = bs.FastFails()
	}
	if bu := retr.Budgets(); bu != nil {
		res.BudgetDenied = bu.Denied()
	}

	counts := sched.StateCounts()
	res.Done = counts[metasched.JobDone]
	res.Failed = counts[metasched.JobFailed]
	res.Quarantined = counts[metasched.JobQuarantined]
	res.LostJobs = cfg.Jobs - res.Done - res.Failed - res.Quarantined
	if !drained {
		// Unfinished-but-tracked jobs are stalled, not lost; the liveness
		// violation above already reports them.
		res.LostJobs -= counts[metasched.JobPending] + counts[metasched.JobQueued] + counts[metasched.JobRunning]
	}
	for _, j := range sched.Jobs() {
		if r := j.RSS(); r != nil {
			res.CorruptDetected += r.CorruptDetected()
			res.CorruptServed += r.CorruptServed()
			res.LineageFallbacks += r.LineageFallbacks()
		}
		if j.State() == metasched.JobFailed && j.Err() != nil {
			res.FailedJobs = append(res.FailedJobs, fmt.Sprintf("%s: %v", j.Spec.Name, j.Err()))
		}
	}
	for _, r := range sched.Records() {
		res.Requeues += r.Requeues
	}
	res.PerClass = classStats(sched.Records())
	return res, nil
}

func detectorPeriodOr(cfg Config) float64 {
	if cfg.DetectorPeriod > 0 {
		return cfg.DetectorPeriod
	}
	return 5
}

// classStats folds the per-job records into per-class degradation rows.
func classStats(recs []metasched.Record) []ClassStats {
	byClass := make(map[string]*ClassStats)
	turn := make(map[string]float64)
	reqs := make(map[string]int)
	terminal := make(map[string]int)
	for _, r := range recs {
		c := byClass[r.Kind]
		if c == nil {
			c = &ClassStats{Class: r.Kind}
			byClass[r.Kind] = c
		}
		c.Jobs++
		reqs[r.Kind] += r.Requeues
		switch r.State {
		case "done":
			c.Done++
		case "failed":
			c.Failed++
		case "quarantined":
			c.Quarantined++
		}
		if r.Turnaround > 0 {
			turn[r.Kind] += r.Turnaround
			terminal[r.Kind]++
		}
	}
	out := make([]ClassStats, 0, len(byClass))
	for kind, c := range byClass {
		if terminal[kind] > 0 {
			c.MeanTurnaround = turn[kind] / float64(terminal[kind])
		}
		c.MeanRequeues = float64(reqs[kind]) / float64(c.Jobs)
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
