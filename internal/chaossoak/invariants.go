package chaossoak

import (
	"fmt"

	"grads/internal/metasched"
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// checker sweeps the soak invariants on a virtual-time period. Every check
// is a safety property that must hold at every instant, whatever faults
// are in flight:
//
//  1. job conservation — the scheduler's per-state counts always sum to
//     the number of submissions, the queued count matches the queue, and
//     Remaining matches the non-terminal population (no job ever vanishes
//     or double-counts);
//  2. lease ledger soundness — LeaseManager.Audit passes (ownership maps,
//     lease sets and the leased counter agree; no down node is held) and
//     the busy node-seconds integral never decreases;
//  3. checkpoint integrity — no job's SRS ever hands restored bytes to the
//     application that fail their checksum (CorruptServed stays 0);
//  4. kernel sanity — virtual time and the fired-event counter are
//     monotone.
type checker struct {
	sim   *simcore.Sim
	sched *metasched.Scheduler
	jobs  int

	proc       *simcore.Proc
	checks     int
	violations []Violation
	suppressed int

	lastNow    float64
	lastEvents uint64
	lastBusy   float64
	lastServed int
}

func newChecker(sim *simcore.Sim, sched *metasched.Scheduler, jobs int) *checker {
	return &checker{sim: sim, sched: sched, jobs: jobs}
}

// start spawns the sweep daemon. done short-circuits it once the stream has
// drained (the final at-rest sweep is run by the caller).
func (c *checker) start(period float64, done func() bool) {
	c.proc = c.sim.Spawn("soak-invariants", func(p *simcore.Proc) {
		for !done() {
			if err := p.Sleep(period); err != nil {
				return
			}
			if done() {
				return
			}
			c.sweep(p.Now())
		}
	})
}

// stop kills the sweep daemon so a drained soak can run the event queue
// dry instead of ticking until the cap.
func (c *checker) stop() {
	if c.proc != nil {
		c.proc.Kill()
	}
}

// violate records one failed check, bounded, and mirrors it to telemetry.
func (c *checker) violate(t float64, invariant, detail string) {
	if len(c.violations) < maxViolationDetails {
		c.violations = append(c.violations, Violation{T: t, Invariant: invariant, Detail: detail})
	} else {
		c.suppressed++
	}
	c.sim.Tracef("soak: INVARIANT VIOLATION [%s] %s", invariant, detail)
	if tel := c.sim.Telemetry(); tel != nil {
		tel.Counter("soak", "violations").Inc()
		tel.Emit(telemetry.Event{
			Type: telemetry.EvSoakViolation, Comp: "soak", Name: invariant,
			Args: []telemetry.Arg{telemetry.S("detail", detail)},
		})
	}
}

// sweep runs every invariant once against the current instant.
func (c *checker) sweep(now float64) {
	c.checks++

	// 4. Kernel sanity first: everything else trusts the clock.
	if now < c.lastNow {
		c.violate(now, "monotone-time",
			fmt.Sprintf("virtual time went backwards: %g after %g", now, c.lastNow))
	}
	c.lastNow = now
	if ev := c.sim.EventsFired(); ev < c.lastEvents {
		c.violate(now, "monotone-events",
			fmt.Sprintf("fired-event counter went backwards: %d after %d", ev, c.lastEvents))
	} else {
		c.lastEvents = ev
	}

	// 1. Job conservation.
	counts := c.sched.StateCounts()
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != c.jobs {
		c.violate(now, "job-conservation",
			fmt.Sprintf("state counts sum to %d, submitted %d (counts %v)", sum, c.jobs, counts))
	}
	if q := counts[metasched.JobQueued]; q != c.sched.QueueDepth() {
		c.violate(now, "job-conservation",
			fmt.Sprintf("%d jobs in state queued but queue depth %d", q, c.sched.QueueDepth()))
	}
	terminal := counts[metasched.JobDone] + counts[metasched.JobFailed] + counts[metasched.JobQuarantined]
	if got := c.sched.Remaining(); got != c.jobs-terminal {
		c.violate(now, "job-conservation",
			fmt.Sprintf("remaining %d but %d of %d jobs are terminal", got, terminal, c.jobs))
	}

	// 2. Lease ledger soundness.
	if err := c.sched.Leases().Audit(); err != nil {
		c.violate(now, "lease-audit", err.Error())
	}
	if busy := c.sched.Leases().BusyNodeSeconds(); busy < c.lastBusy {
		c.violate(now, "lease-busy-monotone",
			fmt.Sprintf("busy node-seconds shrank: %g after %g", busy, c.lastBusy))
	} else {
		c.lastBusy = busy
	}

	// 3. Checkpoint integrity: restores must never consume corrupt bytes.
	// Report increments, not levels, so one bad read is one violation.
	served := 0
	for _, j := range c.sched.Jobs() {
		if r := j.RSS(); r != nil {
			served += r.CorruptServed()
		}
	}
	if served > c.lastServed {
		c.violate(now, "ckpt-integrity",
			fmt.Sprintf("%d corrupt checkpoint reads reached applications", served-c.lastServed))
	}
	c.lastServed = served
}
