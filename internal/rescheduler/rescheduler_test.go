package rescheduler

import (
	"math"
	"testing"

	"grads/internal/simcore"
	"grads/internal/topology"
)

// fakeApp is an Estimator whose remaining time is flops / aggregate
// lock-step rate (the slowest node paces a tightly coupled app).
type fakeApp struct {
	remainingFlops float64
	ckptBytes      float64
	restart        float64
}

func (a *fakeApp) RemainingTime(nodes []*topology.Node, avail func(*topology.Node) float64) float64 {
	if len(nodes) == 0 {
		return math.Inf(1)
	}
	slowest := math.Inf(1)
	for _, n := range nodes {
		r := n.Spec.Flops() * avail(n)
		if r < slowest {
			slowest = r
		}
	}
	return a.remainingFlops / (slowest * float64(len(nodes)))
}

func (a *fakeApp) CheckpointBytes() float64 { return a.ckptBytes }
func (a *fakeApp) RestartOverhead() float64 { return a.restart }

func qrGrid() (*simcore.Sim, *topology.Grid) {
	sim := simcore.New(1)
	return sim, topology.QRTestbed(sim)
}

func TestEvaluateMigratesWhenLoaded(t *testing.T) {
	sim, g := qrGrid()
	_ = sim
	r := New(g, nil)
	// Artificial load on utk1: availability 1/3 (2 competing processes).
	g.Node("utk1").CPU.SetExternalLoad(2)
	app := &fakeApp{remainingFlops: 4e12, ckptBytes: 1e8, restart: 60}
	utk := g.Site("UTK").Nodes()
	uiuc := g.Site("UIUC").Nodes()
	d := r.Evaluate(app, utk, [][]*topology.Node{uiuc})
	if !d.Migrate {
		t.Fatalf("should migrate away from loaded UTK: %+v", d)
	}
	if d.TargetRemaining >= d.CurrentRemaining {
		t.Fatalf("target %v not faster than current %v", d.TargetRemaining, d.CurrentRemaining)
	}
	if d.MigrationCost <= 0 {
		t.Fatal("migration cost not estimated")
	}
}

func TestEvaluateStaysWhenUnloaded(t *testing.T) {
	_, g := qrGrid()
	r := New(g, nil)
	app := &fakeApp{remainingFlops: 4e12, ckptBytes: 5e8, restart: 60}
	utk := g.Site("UTK").Nodes()
	uiuc := g.Site("UIUC").Nodes()
	d := r.Evaluate(app, utk, [][]*topology.Node{uiuc})
	if d.Migrate {
		t.Fatalf("unloaded UTK (faster aggregate) should win: %+v", d)
	}
}

func TestWorstCaseCostBlocksMarginalMigration(t *testing.T) {
	_, g := qrGrid()
	g.Node("utk1").CPU.SetExternalLoad(2)
	utk := g.Site("UTK").Nodes()
	uiuc := g.Site("UIUC").Nodes()
	// Tune remaining work so the true benefit is real but below 900s.
	app := &fakeApp{remainingFlops: 2.5e11, ckptBytes: 5e8, restart: 60}

	honest := New(g, nil)
	dHonest := honest.Evaluate(app, utk, [][]*topology.Node{uiuc})

	pessimist := New(g, nil)
	pessimist.WorstCaseCost = 900
	dPess := pessimist.Evaluate(app, utk, [][]*topology.Node{uiuc})

	if !dHonest.Migrate {
		t.Fatalf("honest estimate should migrate: %+v", dHonest)
	}
	if dPess.Migrate {
		t.Fatalf("worst-case 900s should block this marginal migration: %+v", dPess)
	}
	if dPess.MigrationCost != 900 {
		t.Fatalf("worst-case cost = %v", dPess.MigrationCost)
	}
}

func TestForcedModes(t *testing.T) {
	_, g := qrGrid()
	app := &fakeApp{remainingFlops: 4e12, ckptBytes: 1e8}
	utk := g.Site("UTK").Nodes()
	uiuc := g.Site("UIUC").Nodes()

	r := New(g, nil)
	r.Mode = ModeForceMigrate
	if d := r.Evaluate(app, utk, [][]*topology.Node{uiuc}); !d.Migrate {
		t.Fatal("ModeForceMigrate must migrate")
	}
	r.Mode = ModeForceStay
	g.Node("utk1").CPU.SetExternalLoad(10)
	if d := r.Evaluate(app, utk, [][]*topology.Node{uiuc}); d.Migrate {
		t.Fatal("ModeForceStay must stay")
	}
}

func TestEvaluateNoCandidates(t *testing.T) {
	_, g := qrGrid()
	r := New(g, nil)
	app := &fakeApp{remainingFlops: 1e12}
	utk := g.Site("UTK").Nodes()
	d := r.Evaluate(app, utk, nil)
	if d.Migrate || d.Target != nil {
		t.Fatalf("no candidates should mean stay: %+v", d)
	}
	// Candidate identical to current is skipped.
	d = r.Evaluate(app, utk, [][]*topology.Node{utk})
	if d.Target != nil {
		t.Fatalf("current set offered as candidate was not skipped: %+v", d)
	}
}

func TestMigrationCostDominatedByWANRead(t *testing.T) {
	_, g := qrGrid()
	r := New(g, nil)
	app := &fakeApp{ckptBytes: 512e6, restart: 30} // N=8000 doubles: 512 MB
	utk := g.Site("UTK").Nodes()
	uiuc := g.Site("UIUC").Nodes()
	cost := r.EstimateMigrationCost(app, utk, uiuc)
	wan := 512e6 / topology.Internet10
	if cost < wan {
		t.Fatalf("cost %v less than WAN transfer alone %v", cost, wan)
	}
	if cost > wan*1.5+30+60 {
		t.Fatalf("cost %v implausibly high vs WAN %v", cost, wan)
	}
}

func TestSiteCandidates(t *testing.T) {
	_, g := qrGrid()
	sets := SiteCandidates(g.Nodes())
	if len(sets) != 2 {
		t.Fatalf("got %d candidate sets, want 2", len(sets))
	}
	if sets[0][0].Site().Name != "UIUC" || sets[1][0].Site().Name != "UTK" {
		t.Fatalf("sets not sorted by site: %v %v", sets[0][0].Site().Name, sets[1][0].Site().Name)
	}
	if len(sets[0]) != 8 || len(sets[1]) != 4 {
		t.Fatalf("set sizes %d/%d, want 8/4", len(sets[0]), len(sets[1]))
	}
}

func TestDaemonMigrationOnRequest(t *testing.T) {
	sim, g := qrGrid()
	r := New(g, nil)
	g.Node("utk1").CPU.SetExternalLoad(2)
	app := &fakeApp{remainingFlops: 4e12, ckptBytes: 1e8, restart: 60}
	utk := g.Site("UTK").Nodes()
	uiuc := g.Site("UIUC").Nodes()

	migrated := false
	d := NewDaemon(sim, r, uiuc) // UIUC free
	d.Register(&ManagedApp{
		Name:      "qr",
		App:       app,
		Current:   utk,
		OnMigrate: func(Decision) bool { migrated = true; return true },
	})
	dec := d.RequestMigration("qr")
	if !dec.Migrate || !migrated {
		t.Fatalf("daemon did not migrate: %+v", dec)
	}
	reqs, _, migs := d.Stats()
	if reqs != 1 || migs != 1 {
		t.Fatalf("stats = %d reqs, %d migs", reqs, migs)
	}
	// The pool now holds the freed UTK nodes, not the UIUC ones.
	for _, n := range d.FreePool() {
		if n.Site().Name == "UIUC" {
			t.Fatalf("UIUC node %s still in pool after migration", n.Name())
		}
	}
	if dec2 := d.RequestMigration("ghost"); dec2.Migrate {
		t.Fatal("unknown app migrated")
	}
}

func TestDaemonOpportunistic(t *testing.T) {
	sim, g := qrGrid()
	r := New(g, nil)
	utk := g.Site("UTK").Nodes()
	uiuc := g.Site("UIUC").Nodes()

	// App B runs on slow UIUC; app A occupies fast UTK. When A completes,
	// the daemon should opportunistically move B onto the freed UTK nodes.
	appA := &fakeApp{remainingFlops: 0}
	appB := &fakeApp{remainingFlops: 8e12, ckptBytes: 1e7, restart: 30}
	migratedTo := ""
	d := NewDaemon(sim, r, nil)
	d.Register(&ManagedApp{Name: "a", App: appA, Current: utk})
	d.Register(&ManagedApp{Name: "b", App: appB, Current: uiuc,
		OnMigrate: func(dec Decision) bool {
			migratedTo = dec.Target[0].Site().Name
			return true
		}})
	d.AppCompleted("a")
	if migratedTo != "UTK" {
		t.Fatalf("opportunistic migration went to %q, want UTK", migratedTo)
	}
	_, opp, migs := d.Stats()
	if opp != 1 || migs != 1 {
		t.Fatalf("stats: opportunistic=%d migrations=%d", opp, migs)
	}
}
