package rescheduler

import (
	"math"
	"sort"

	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Preemptee describes one running application offered to a preemption
// negotiation: its estimator, the lease it currently runs on, the smallest
// lease it can make progress on, and its queue priority (victims are
// considered lowest-priority first).
type Preemptee struct {
	Name     string
	App      Estimator
	Nodes    []*topology.Node
	MinNodes int
	Priority float64
}

// PreemptionPlan is the negotiated outcome: stop-and-restart Victim via SRS
// onto the Keep subset of its lease, freeing the Freed nodes for the
// starving job. The prediction fields quantify what the victim pays, so the
// caller can decline plans that hurt more than they help.
type PreemptionPlan struct {
	Victim *Preemptee
	Keep   []*topology.Node // shrunken lease the victim restarts on
	Freed  []*topology.Node // nodes returned to the free pool

	// VictimCost is the predicted stop-and-restart overhead (checkpoint
	// write + read + restart), and Slowdown the predicted inflation of the
	// victim's remaining time on the shrunken lease (>= 1).
	VictimCost float64
	Slowdown   float64
}

// PlanPreemption negotiates which running application to shrink so that at
// least need nodes come free. Victims are considered in ascending priority
// (ties by name); the first one that can free enough nodes while still
// making progress on its shrunken lease wins. The kept subset is the
// MinNodes fastest nodes (by forecast effective speed) of the victim's
// best-represented site, so tightly coupled single-site applications
// restart on a usable cluster. It returns nil when no single victim can
// free need nodes.
func (r *Rescheduler) PlanPreemption(victims []*Preemptee, need int) *PreemptionPlan {
	if need <= 0 || len(victims) == 0 {
		return nil
	}
	order := append([]*Preemptee(nil), victims...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Priority != order[j].Priority {
			return order[i].Priority < order[j].Priority
		}
		return order[i].Name < order[j].Name
	})
	for _, v := range order {
		minKeep := v.MinNodes
		if minKeep < 1 {
			minKeep = 1
		}
		if len(v.Nodes)-minKeep < need {
			continue
		}
		keep := r.keepSet(v.Nodes, minKeep)
		if len(keep) == 0 {
			continue
		}
		// The victim must still make progress on the shrunken lease.
		remaining := v.App.RemainingTime(keep, r.avail)
		if math.IsInf(remaining, 1) {
			continue
		}
		current := v.App.RemainingTime(v.Nodes, r.avail)
		plan := &PreemptionPlan{
			Victim:     v,
			Keep:       keep,
			Freed:      subtractNodes(v.Nodes, keep),
			VictimCost: r.EstimateMigrationCost(v.App, v.Nodes, keep),
			Slowdown:   1,
		}
		if current > 0 && !math.IsInf(current, 1) {
			plan.Slowdown = remaining / current
		}
		r.emitPreemptionPlan(plan)
		return plan
	}
	return nil
}

// keepSet picks the k fastest nodes (forecast effective speed, name-stable)
// within the site holding most of the lease, falling back to the whole
// lease when no site holds k nodes.
func (r *Rescheduler) keepSet(lease []*topology.Node, k int) []*topology.Node {
	bySite := make(map[string][]*topology.Node)
	for _, n := range lease {
		bySite[n.Site().Name] = append(bySite[n.Site().Name], n)
	}
	names := make([]string, 0, len(bySite))
	for s := range bySite {
		names = append(names, s)
	}
	sort.Strings(names)
	best := ""
	for _, s := range names {
		if len(bySite[s]) >= k && (best == "" || len(bySite[s]) > len(bySite[best])) {
			best = s
		}
	}
	cand := lease
	if best != "" {
		cand = bySite[best]
	}
	speed := func(n *topology.Node) float64 { return n.Spec.Flops() * r.avail(n) }
	sel := append([]*topology.Node(nil), cand...)
	sort.SliceStable(sel, func(i, j int) bool {
		si, sj := speed(sel[i]), speed(sel[j])
		if si != sj {
			return si > sj
		}
		return sel[i].Name() < sel[j].Name()
	})
	if len(sel) > k {
		sel = sel[:k]
	}
	return sel
}

// subtractNodes returns the members of all that are not in exclude,
// preserving order.
func subtractNodes(all, exclude []*topology.Node) []*topology.Node {
	skip := make(map[*topology.Node]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}
	var out []*topology.Node
	for _, n := range all {
		if !skip[n] {
			out = append(out, n)
		}
	}
	return out
}

// emitPreemptionPlan publishes the negotiated plan into telemetry.
func (r *Rescheduler) emitPreemptionPlan(plan *PreemptionPlan) {
	if r.Grid == nil || r.Grid.Sim == nil {
		return
	}
	tel := r.Grid.Sim.Telemetry()
	if tel == nil {
		return
	}
	tel.Counter("rescheduler", "preemption_plans").Inc()
	tel.Emit(telemetry.Event{
		Type: telemetry.EvJobPreempt, Comp: "rescheduler", Name: plan.Victim.Name,
		Args: []telemetry.Arg{
			telemetry.I("keep", len(plan.Keep)),
			telemetry.I("freed", len(plan.Freed)),
			telemetry.F("victim_cost", plan.VictimCost),
			telemetry.F("slowdown", plan.Slowdown),
		},
	})
}
