// Package rescheduler implements the GrADS rescheduler of §4: it evaluates
// whether migrating a running application is profitable — comparing the
// predicted remaining execution time on the current resources against the
// predicted remaining time on candidate resources plus the migration
// overhead — and operates in two modes: migration on request (triggered by
// contract-monitor violations) and opportunistic migration (triggered by
// another application's completion freeing resources).
//
// The default/forced operating modes of §4.1.2 are supported, as is the
// paper's experimentally-determined worst-case migration cost (900 s in the
// QR experiments), which is what produced the documented wrong decision at
// matrix size 8000.
package rescheduler

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"grads/internal/nws"
	"grads/internal/perfmodel"
	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Mode selects the §4.1.2 operating mode.
type Mode int

// Operating modes: Default decides on predicted benefit; the forced modes
// invert/pin the decision for experimental comparison.
const (
	ModeDefault Mode = iota
	ModeForceMigrate
	ModeForceStay
)

// Estimator exposes what the rescheduler needs from an application's COP:
// its performance model (remaining time on a node set) and its migration
// footprint.
type Estimator interface {
	// RemainingTime predicts the remaining execution time on nodes, where
	// avail returns each node's forecast CPU availability.
	RemainingTime(nodes []*topology.Node, avail func(*topology.Node) float64) float64
	// CheckpointBytes is the volume of user data a migration must move.
	CheckpointBytes() float64
	// RestartOverhead is the fixed cost of restarting (resource selection,
	// binding, launch) on new resources.
	RestartOverhead() float64
}

// ProgressVersioned is an optional Estimator extension: a value that
// identifies the estimator's internal progress state (e.g. panels or tasks
// completed). Estimators that implement it get their RemainingTime
// predictions memoized — the version, the node set with availabilities, and
// the node sites' LAN figures form the cache key, so predictions are only
// replayed while every input is unchanged.
type ProgressVersioned interface {
	ProgressVersion() int64
}

// Decision is the outcome of one evaluation.
type Decision struct {
	Migrate          bool
	Target           []*topology.Node
	CurrentRemaining float64
	TargetRemaining  float64
	MigrationCost    float64
	Reason           string
}

// Rescheduler evaluates migration profitability.
type Rescheduler struct {
	Grid    *topology.Grid
	Weather *nws.Service
	Mode    Mode

	// WorstCaseCost, when positive, replaces the estimated migration cost
	// with a fixed pessimistic bound (the paper used 900 s).
	WorstCaseCost float64

	// MinBenefit is the required predicted gain before migrating.
	MinBenefit float64

	// Cache memoizes RemainingTime predictions for ProgressVersioned
	// estimators across the repeated candidate evaluations the metascheduler
	// makes every planning tick. nil disables memoization.
	Cache *perfmodel.Cache

	estKeys map[Estimator]string // stable per-estimator cache-key prefixes
	nextEst int
}

// New creates a default-mode rescheduler with a prediction cache.
func New(grid *topology.Grid, weather *nws.Service) *Rescheduler {
	return &Rescheduler{Grid: grid, Weather: weather, Cache: perfmodel.NewCache(0)}
}

// avail returns the forecast availability of a node, falling back to the
// instantaneous CPU measurement when no weather service is wired up.
func (r *Rescheduler) avail(n *topology.Node) float64 {
	if r.Weather != nil {
		return r.Weather.CPUForecast(n.Name())
	}
	return n.CPU.Availability()
}

// EstimateMigrationCost predicts the overhead of moving the application
// from its current nodes to target nodes: checkpoint write to local disks,
// checkpoint read across the network (the dominant term when sites differ),
// and restart overhead. A configured WorstCaseCost overrides the estimate.
func (r *Rescheduler) EstimateMigrationCost(app Estimator, from, to []*topology.Node) float64 {
	if r.WorstCaseCost > 0 {
		return r.WorstCaseCost
	}
	bytes := app.CheckpointBytes()
	cost := app.RestartOverhead()
	// Write: parallel across source nodes to local disks.
	if len(from) > 0 {
		cost += bytes / float64(len(from)) / 40e6
	}
	// Read: the whole volume crosses from the source to the target site;
	// concurrent readers share the path, so charge the full volume at the
	// forecast path bandwidth.
	if len(from) > 0 && len(to) > 0 {
		a, b := from[0], to[0]
		if a.Site() != b.Site() {
			bw := 1.0
			if r.Weather != nil {
				// A checkpoint transfer outlives short fluctuations:
				// use the long-horizon forecast.
				bw = r.Weather.BandwidthForecastLong(a.Site().Name, b.Site().Name)
			} else {
				bw = r.Grid.Net.EstimateRate(r.Grid.Route(a, b))
			}
			if bw <= 0 {
				bw = 1
			}
			cost += bytes / bw
		} else {
			cost += bytes / a.Site().LAN.Capacity()
		}
		// Disk read at the depots.
		cost += bytes / float64(len(from)) / 40e6
	}
	return cost
}

// appKey returns the memoization prefix for an estimator — its stable
// identity plus its current progress version — or "" when the estimator
// does not opt in to caching.
func (r *Rescheduler) appKey(app Estimator) string {
	pv, ok := app.(ProgressVersioned)
	if !ok || r.Cache == nil {
		return ""
	}
	if r.estKeys == nil {
		r.estKeys = make(map[Estimator]string)
	}
	k, ok := r.estKeys[app]
	if !ok {
		r.nextEst++
		k = "e" + strconv.Itoa(r.nextEst)
		r.estKeys[app] = k
	}
	return k + "@" + strconv.FormatInt(pv.ProgressVersion(), 10)
}

// remaining predicts app's remaining time on nodes, memoized when the
// estimator is ProgressVersioned. The signature covers everything the QR and
// task-farm models read: each node's identity and availability plus its
// site's LAN capacity and latency.
func (r *Rescheduler) remaining(app Estimator, appKey string, nodes []*topology.Node) float64 {
	if appKey == "" {
		return app.RemainingTime(nodes, r.avail)
	}
	var sig perfmodel.Sig
	sig.S(appKey)
	for _, n := range nodes {
		sig.S(n.Name()).F(r.avail(n))
		if site := n.Site(); site != nil && site.LAN != nil {
			sig.F(site.LAN.Capacity()).F(site.LAN.Latency())
		}
	}
	key := sig.String()
	if v, ok := r.Cache.Lookup("remaining", key); ok {
		return v
	}
	v := app.RemainingTime(nodes, r.avail)
	r.Cache.Store("remaining", key, v)
	return v
}

// Evaluate compares staying on current against the best of the candidate
// node sets. The forced modes override the profitability test but the
// returned numbers always reflect the true prediction.
func (r *Rescheduler) Evaluate(app Estimator, current []*topology.Node, candidates [][]*topology.Node) Decision {
	ak := r.appKey(app)
	d := Decision{
		CurrentRemaining: r.remaining(app, ak, current),
		TargetRemaining:  math.Inf(1),
	}
	for _, cand := range candidates {
		if len(cand) == 0 || sameNodes(cand, current) {
			continue
		}
		if t := r.remaining(app, ak, cand); t < d.TargetRemaining {
			d.TargetRemaining = t
			d.Target = cand
		}
	}
	if d.Target == nil {
		d.Reason = "no alternative resources"
		r.emitDecision(d)
		return d
	}
	d.MigrationCost = r.EstimateMigrationCost(app, current, d.Target)
	benefit := d.CurrentRemaining - (d.TargetRemaining + d.MigrationCost)
	switch r.Mode {
	case ModeForceMigrate:
		d.Migrate = true
		d.Reason = "forced migrate"
	case ModeForceStay:
		d.Migrate = false
		d.Reason = "forced stay"
	default:
		d.Migrate = benefit > r.MinBenefit
		if d.Migrate {
			d.Reason = fmt.Sprintf("predicted benefit %.0fs", benefit)
		} else {
			d.Reason = fmt.Sprintf("predicted benefit %.0fs below threshold", benefit)
		}
	}
	r.emitDecision(d)
	return d
}

// emitDecision publishes a migration decision into the grid simulation's
// telemetry, if attached.
func (r *Rescheduler) emitDecision(d Decision) {
	if r.Grid == nil || r.Grid.Sim == nil {
		return
	}
	tel := r.Grid.Sim.Telemetry()
	if tel == nil {
		return
	}
	tel.Counter("rescheduler", "evaluations").Inc()
	if d.Migrate {
		tel.Counter("rescheduler", "migrate_decisions").Inc()
	}
	tel.Emit(telemetry.Event{
		Type: telemetry.EvReschedDecision, Comp: "rescheduler",
		Args: []telemetry.Arg{
			telemetry.B("migrate", d.Migrate),
			telemetry.F("current_remaining", d.CurrentRemaining),
			telemetry.F("target_remaining", d.TargetRemaining),
			telemetry.F("migration_cost", d.MigrationCost),
			telemetry.S("reason", d.Reason),
		},
	})
}

// sameNodes reports whether two node sets are identical as sets.
func sameNodes(a, b []*topology.Node) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[*topology.Node]bool, len(a))
	for _, n := range a {
		seen[n] = true
	}
	for _, n := range b {
		if !seen[n] {
			return false
		}
	}
	return true
}

// SiteCandidates groups a resource pool into per-site candidate sets,
// sorted by site name — the natural alternatives for a tightly coupled MPI
// application that must run within one cluster.
func SiteCandidates(pool []*topology.Node) [][]*topology.Node {
	bySite := make(map[string][]*topology.Node)
	for _, n := range pool {
		bySite[n.Site().Name] = append(bySite[n.Site().Name], n)
	}
	names := make([]string, 0, len(bySite))
	for s := range bySite {
		names = append(names, s)
	}
	sort.Strings(names)
	out := make([][]*topology.Node, 0, len(names))
	for _, s := range names {
		set := bySite[s]
		sort.Slice(set, func(i, j int) bool { return set[i].Name() < set[j].Name() })
		out = append(out, set)
	}
	return out
}

// ManagedApp registers a running application with the opportunistic daemon.
type ManagedApp struct {
	Name    string
	App     Estimator
	Current []*topology.Node
	// OnMigrate performs the actual migration mechanics (stop, move,
	// restart); it returns false if migration was not carried out.
	OnMigrate func(Decision) bool
}

// Daemon is the rescheduler daemon of §4.1.1: it serves migration requests
// from contract monitors and periodically performs opportunistic
// rescheduling onto resources freed by completed applications.
type Daemon struct {
	sim   *simcore.Sim
	resch *Rescheduler

	apps map[string]*ManagedApp
	pool []*topology.Node // currently free nodes

	requests      int
	opportunistic int
	migrations    int
}

// NewDaemon creates a daemon over free resource pool.
func NewDaemon(sim *simcore.Sim, resch *Rescheduler, freePool []*topology.Node) *Daemon {
	return &Daemon{sim: sim, resch: resch, apps: make(map[string]*ManagedApp), pool: freePool}
}

// Register adds a running application.
func (d *Daemon) Register(app *ManagedApp) { d.apps[app.Name] = app }

// Stats returns counters: migration requests served, opportunistic
// evaluations, migrations performed.
func (d *Daemon) Stats() (requests, opportunistic, migrations int) {
	return d.requests, d.opportunistic, d.migrations
}

// FreePool returns the current free nodes.
func (d *Daemon) FreePool() []*topology.Node { return d.pool }

// RequestMigration serves a contract-monitor violation for one application
// ("migration on request"). It returns the decision; when the decision is
// to migrate and the app's OnMigrate succeeds, the node bookkeeping moves
// the freed nodes back into the pool.
func (d *Daemon) RequestMigration(name string) Decision {
	d.requests++
	d.sim.Telemetry().Counter("rescheduler", "requests").Inc()
	app, ok := d.apps[name]
	if !ok {
		return Decision{Reason: "unknown application"}
	}
	return d.evaluate(app)
}

// AppCompleted removes a finished application, returns its nodes to the
// pool, and opportunistically re-evaluates every remaining application
// against the enlarged pool.
func (d *Daemon) AppCompleted(name string) {
	app, ok := d.apps[name]
	if !ok {
		return
	}
	delete(d.apps, name)
	d.pool = append(d.pool, app.Current...)
	// Opportunistic pass over remaining apps, in name order for
	// determinism.
	names := make([]string, 0, len(d.apps))
	for n := range d.apps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d.opportunistic++
		d.sim.Telemetry().Counter("rescheduler", "opportunistic").Inc()
		d.evaluate(d.apps[n])
	}
}

// evaluate runs the decision and, on migrate, the migration mechanics and
// pool bookkeeping.
func (d *Daemon) evaluate(app *ManagedApp) Decision {
	dec := d.resch.Evaluate(app.App, app.Current, SiteCandidates(d.pool))
	if !dec.Migrate || app.OnMigrate == nil {
		return dec
	}
	if !app.OnMigrate(dec) {
		dec.Migrate = false
		dec.Reason = "migration mechanics failed"
		return dec
	}
	d.migrations++
	d.sim.Telemetry().Counter("rescheduler", "migrations").Inc()
	// Freed nodes return to the pool; target nodes leave it.
	d.pool = append(d.pool, app.Current...)
	inTarget := make(map[*topology.Node]bool, len(dec.Target))
	for _, n := range dec.Target {
		inTarget[n] = true
	}
	var rest []*topology.Node
	for _, n := range d.pool {
		if !inTarget[n] {
			rest = append(rest, n)
		}
	}
	d.pool = rest
	app.Current = dec.Target
	return dec
}
