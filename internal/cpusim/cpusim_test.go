package cpusim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grads/internal/simcore"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleTaskFullSpeed(t *testing.T) {
	s := simcore.New(1)
	c := New(s, "n0", 100) // 100 ops/s
	var done float64
	s.Spawn("w", func(p *simcore.Proc) {
		n, err := c.Compute(p, 500)
		if err != nil || n != 500 {
			t.Errorf("Compute = %v, %v", n, err)
		}
		done = p.Now()
	})
	s.Run()
	if !almost(done, 5.0, 1e-9) {
		t.Fatalf("single task finished at %v, want 5.0", done)
	}
}

func TestTwoTasksShare(t *testing.T) {
	s := simcore.New(1)
	c := New(s, "n0", 100)
	var d1, d2 float64
	s.Spawn("a", func(p *simcore.Proc) {
		c.Compute(p, 500)
		d1 = p.Now()
	})
	s.Spawn("b", func(p *simcore.Proc) {
		c.Compute(p, 500)
		d2 = p.Now()
	})
	s.Run()
	// Both share the CPU for the whole run: each gets 50 ops/s.
	if !almost(d1, 10.0, 1e-9) || !almost(d2, 10.0, 1e-9) {
		t.Fatalf("finish times %v, %v; want 10.0 each", d1, d2)
	}
}

func TestUnequalTasksReleaseShare(t *testing.T) {
	s := simcore.New(1)
	c := New(s, "n0", 100)
	var dShort, dLong float64
	s.Spawn("short", func(p *simcore.Proc) {
		c.Compute(p, 100)
		dShort = p.Now()
	})
	s.Spawn("long", func(p *simcore.Proc) {
		c.Compute(p, 300)
		dLong = p.Now()
	})
	s.Run()
	// Shared at 50 ops/s until short finishes at t=2 (100 ops each);
	// long then has 200 ops left at 100 ops/s -> finishes at t=4.
	if !almost(dShort, 2.0, 1e-9) {
		t.Fatalf("short finished at %v, want 2.0", dShort)
	}
	if !almost(dLong, 4.0, 1e-9) {
		t.Fatalf("long finished at %v, want 4.0", dLong)
	}
}

func TestExternalLoadSlowsTask(t *testing.T) {
	s := simcore.New(1)
	c := New(s, "n0", 100)
	var done float64
	s.Spawn("w", func(p *simcore.Proc) {
		c.Compute(p, 400)
		done = p.Now()
	})
	// At t=2 (200 ops done), one competitive process arrives: rate halves.
	s.Schedule(2, func() { c.SetExternalLoad(1) })
	s.Run()
	// Remaining 200 ops at 50 ops/s -> 4 more seconds.
	if !almost(done, 6.0, 1e-9) {
		t.Fatalf("finished at %v, want 6.0", done)
	}
	if c.ExternalLoad() != 1 {
		t.Fatalf("ExternalLoad = %v", c.ExternalLoad())
	}
}

func TestLoadRemovedSpeedsUp(t *testing.T) {
	s := simcore.New(1)
	c := New(s, "n0", 100)
	c.SetExternalLoad(3)
	var done float64
	s.Spawn("w", func(p *simcore.Proc) {
		c.Compute(p, 100)
		done = p.Now()
	})
	s.Schedule(2, func() { c.SetExternalLoad(0) })
	s.Run()
	// 2s at 25 ops/s = 50 ops, then 50 ops at 100 ops/s = 0.5s.
	if !almost(done, 2.5, 1e-9) {
		t.Fatalf("finished at %v, want 2.5", done)
	}
}

func TestInterruptReturnsPartialWork(t *testing.T) {
	s := simcore.New(1)
	c := New(s, "n0", 100)
	cause := errors.New("checkpoint now")
	var got float64
	var err error
	p := s.Spawn("w", func(p *simcore.Proc) {
		got, err = c.Compute(p, 1000)
	})
	s.Schedule(3, func() { p.Interrupt(cause) })
	s.Run()
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want %v", err, cause)
	}
	if !almost(got, 300, 1e-6) {
		t.Fatalf("completed %v ops before interrupt, want 300", got)
	}
	if c.Running() != 0 {
		t.Fatalf("task leaked after interrupt: %d running", c.Running())
	}
}

func TestAvailabilityMetric(t *testing.T) {
	s := simcore.New(1)
	c := New(s, "n0", 100)
	if c.Availability() != 1.0 {
		t.Fatalf("idle availability = %v", c.Availability())
	}
	s.Spawn("w", func(p *simcore.Proc) { c.Compute(p, 1000) })
	s.Schedule(1, func() {
		// The app's own task does not count against availability.
		if !almost(c.Availability(), 1.0, 1e-12) {
			t.Errorf("availability with 1 own task = %v, want 1.0", c.Availability())
		}
		c.SetExternalLoad(2)
		if !almost(c.Availability(), 1.0/3.0, 1e-12) {
			t.Errorf("availability with 2 foreign procs = %v, want 1/3", c.Availability())
		}
		// EffectiveSpeed is the share a NEW task would get (all sharers).
		if !almost(c.EffectiveSpeed(), 25, 1e-9) {
			t.Errorf("EffectiveSpeed = %v, want 25", c.EffectiveSpeed())
		}
	})
	s.Run()
}

func TestBusyTimeAccounting(t *testing.T) {
	s := simcore.New(1)
	c := New(s, "n0", 100)
	s.SpawnAt(5, "w", func(p *simcore.Proc) { c.Compute(p, 200) })
	s.Run()
	if !almost(c.BusyTime(), 2.0, 1e-9) {
		t.Fatalf("BusyTime = %v, want 2.0", c.BusyTime())
	}
}

func TestZeroOpsComputeYields(t *testing.T) {
	s := simcore.New(1)
	c := New(s, "n0", 100)
	var done float64 = -1
	s.Spawn("w", func(p *simcore.Proc) {
		n, err := c.Compute(p, 0)
		if n != 0 || err != nil {
			t.Errorf("Compute(0) = %v, %v", n, err)
		}
		done = p.Now()
	})
	s.Run()
	if done != 0 {
		t.Fatalf("zero compute took time: %v", done)
	}
}

// Property: total work conservation — with any mix of task sizes on one CPU
// (no external load), the last finish time equals total work / speed.
func TestQuickWorkConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		s := simcore.New(9)
		c := New(s, "n0", 50)
		total := 0.0
		var last float64
		for _, raw := range sizes {
			ops := float64(raw%5000) + 1
			total += ops
			s.Spawn("w", func(p *simcore.Proc) {
				c.Compute(p, ops)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		s.Run()
		return almost(last, total/50, 1e-6*(1+total/50))
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: processor sharing is fair — equal tasks started together finish
// together regardless of external load changes applied uniformly.
func TestQuickEqualTasksFinishTogether(t *testing.T) {
	f := func(n uint8, loadAt uint8, load uint8) bool {
		k := int(n%6) + 2
		s := simcore.New(17)
		c := New(s, "n0", 100)
		finishes := make([]float64, 0, k)
		for i := 0; i < k; i++ {
			s.Spawn("w", func(p *simcore.Proc) {
				c.Compute(p, 1000)
				finishes = append(finishes, p.Now())
			})
		}
		s.Schedule(float64(loadAt%20), func() { c.SetExternalLoad(float64(load % 5)) })
		s.Run()
		if len(finishes) != k {
			return false
		}
		for _, ft := range finishes {
			if !almost(ft, finishes[0], 1e-6) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
