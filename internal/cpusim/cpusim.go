// Package cpusim models a CPU as a processor-sharing server in virtual time.
//
// Each node in the emulated Grid owns one CPU. Simulated work is expressed in
// abstract operations (we use double-precision floating-point operations);
// all tasks currently computing on the CPU, plus any external competing load
// (the paper's "artificial load" and "competitive processes"), share the
// CPU's speed equally. Changing the task set or the external load re-splits
// the rate instantly, exactly like timesharing among CPU-bound processes.
package cpusim

import (
	"math"

	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// CPU is a processor-sharing server. Create one with New.
type CPU struct {
	sim   *simcore.Sim
	name  string
	speed float64 // operations per second at full allocation

	extLoad float64 // number of competing CPU-bound external processes
	tasks   []*task
	nextSeq int64

	lastUpdate float64
	doneEvent  simcore.Event
	onDone     func() // completion handler, bound once to avoid per-reschedule allocs

	busyTime   float64 // integral of "CPU has >=1 task" for utilization stats
	lastBusyAt float64
}

type task struct {
	seq       int64
	remaining float64 // operations left
	total     float64
	proc      *simcore.Proc
	removed   bool
}

// New creates a CPU with the given speed in operations per second.
func New(sim *simcore.Sim, name string, speed float64) *CPU {
	if speed <= 0 {
		panic("cpusim: speed must be positive")
	}
	c := &CPU{sim: sim, name: name, speed: speed, lastUpdate: sim.Now()}
	c.onDone = c.onCompletion
	return c
}

// Name returns the CPU's name (normally the owning node's name).
func (c *CPU) Name() string { return c.name }

// Speed returns the CPU's full-allocation speed in operations per second.
func (c *CPU) Speed() float64 { return c.speed }

// ExternalLoad returns the current number of competing external processes.
func (c *CPU) ExternalLoad() float64 { return c.extLoad }

// SetExternalLoad changes the competing external load. Each unit of load
// behaves like one CPU-bound process sharing the processor.
func (c *CPU) SetExternalLoad(n float64) {
	if n < 0 {
		n = 0
	}
	c.advance()
	c.extLoad = n
	c.reschedule()
	c.emitShare("external-load")
}

// emitShare publishes a CPU-share-change trace event: the per-task rate now
// in force, the task count and the external load.
func (c *CPU) emitShare(reason string) {
	tel := c.sim.Telemetry()
	if tel == nil {
		return
	}
	tel.Counter("cpusim", "share_changes").Inc()
	tel.Emit(telemetry.Event{
		Type: telemetry.EvCPUShare, Comp: "cpu:" + c.name,
		Args: []telemetry.Arg{
			telemetry.S("reason", reason),
			telemetry.I("tasks", len(c.tasks)),
			telemetry.F("ext_load", c.extLoad),
			telemetry.F("rate_ops_s", c.rate()),
		},
	})
}

// Running returns the number of simulated tasks currently computing.
func (c *CPU) Running() int { return len(c.tasks) }

// Availability returns the fraction of the CPU available to an application
// process, as the GrADS layers consume it: 1 / (1 + external load).
// Simulated application tasks are deliberately excluded — they belong to
// the applications whose remaining time is being estimated, and counting a
// job's own share against the node would double-charge every forecast
// (and make freshly freed nodes look busy).
func (c *CPU) Availability() float64 {
	return 1.0 / (1.0 + c.extLoad)
}

// EffectiveSpeed returns the rate, in operations per second, that a newly
// arriving task would receive right now.
func (c *CPU) EffectiveSpeed() float64 {
	return c.speed / (1.0 + float64(len(c.tasks)) + c.extLoad)
}

// BusyTime returns the cumulative virtual time during which at least one
// simulated task was computing.
func (c *CPU) BusyTime() float64 {
	t := c.busyTime
	if len(c.tasks) > 0 {
		t += c.sim.Now() - c.lastBusyAt
	}
	return t
}

// rate returns the per-task share in operations per second.
func (c *CPU) rate() float64 {
	n := float64(len(c.tasks)) + c.extLoad
	if n <= 0 {
		return c.speed
	}
	return c.speed / n
}

// advance progresses all running tasks to the current time at the rate that
// held since lastUpdate.
func (c *CPU) advance() {
	now := c.sim.Now()
	dt := now - c.lastUpdate
	if dt > 0 && len(c.tasks) > 0 {
		r := c.rate()
		for _, t := range c.tasks {
			t.remaining -= r * dt
			// Absorb floating-point residue so a task scheduled to
			// finish now is seen as finished (avoids zero-length
			// completion-event loops).
			if t.remaining < 1e-9+1e-12*t.total {
				t.remaining = 0
			}
		}
	}
	c.lastUpdate = now
}

// reschedule cancels any pending completion event and schedules one for the
// earliest task to finish under the current sharing.
func (c *CPU) reschedule() {
	c.doneEvent.Cancel()
	if len(c.tasks) == 0 {
		return
	}
	minRem := math.Inf(1)
	for _, t := range c.tasks {
		if t.remaining < minRem {
			minRem = t.remaining
		}
	}
	delay := minRem / c.rate()
	c.doneEvent = c.sim.Schedule(delay, c.onDone)
}

// onCompletion finishes every task whose work is exhausted and wakes its
// process, then reschedules.
func (c *CPU) onCompletion() {
	c.advance()
	now := c.sim.Now()
	rate := c.rate()
	var finished []*task
	var rest []*task
	for _, t := range c.tasks {
		// Done when no work remains, or when the residual completion time
		// is absorbed by floating point (now + dt == now) and the event
		// would loop forever without advancing the clock.
		if t.remaining <= 0 || now+t.remaining/rate == now {
			t.remaining = 0
			finished = append(finished, t)
		} else {
			rest = append(rest, t)
		}
	}
	c.setTasks(rest)
	c.reschedule()
	if len(finished) > 0 {
		c.emitShare("completion")
	}
	if tel := c.sim.Telemetry(); tel != nil {
		tel.Counter("cpusim", "tasks_completed").Add(uint64(len(finished)))
		for _, t := range finished {
			tel.Emit(telemetry.Event{
				Type: telemetry.EvTaskDone, Comp: "cpu:" + c.name, Name: t.proc.Name(),
				Args: []telemetry.Arg{telemetry.F("ops", t.total)},
			})
		}
	}
	for _, t := range finished {
		t.removed = true
		t.proc.Resume(nil)
	}
}

// setTasks replaces the task set, maintaining the busy-time integral.
func (c *CPU) setTasks(ts []*task) {
	wasBusy := len(c.tasks) > 0
	c.tasks = ts
	nowBusy := len(c.tasks) > 0
	now := c.sim.Now()
	switch {
	case wasBusy && !nowBusy:
		c.busyTime += now - c.lastBusyAt
	case !wasBusy && nowBusy:
		c.lastBusyAt = now
	}
}

// removeTask deletes t from the running set (used when a computing process
// is interrupted).
func (c *CPU) removeTask(t *task) {
	if t.removed {
		return
	}
	t.removed = true
	c.advance()
	rest := c.tasks[:0:0]
	for _, x := range c.tasks {
		if x != t {
			rest = append(rest, x)
		}
	}
	c.setTasks(rest)
	c.reschedule()
}

// Compute blocks the calling process until ops operations complete under
// processor sharing. It returns the number of operations actually completed
// and a nil error, or the partial count and the interrupt cause if the
// process was interrupted mid-computation (the unfinished task is removed).
func (c *CPU) Compute(p *simcore.Proc, ops float64) (completed float64, err error) {
	if ops <= 0 {
		return 0, p.Yield()
	}
	c.advance()
	c.nextSeq++
	t := &task{seq: c.nextSeq, remaining: ops, total: ops, proc: p}
	c.setTasks(append(c.tasks, t))
	c.reschedule()
	start := c.sim.Now()
	if tel := c.sim.Telemetry(); tel != nil {
		tel.Emit(telemetry.Event{
			Type: telemetry.EvTaskStart, Comp: "cpu:" + c.name, Name: p.Name(),
			Args: []telemetry.Arg{telemetry.F("ops", ops)},
		})
	}
	c.emitShare("task-start")
	if err = p.ParkWith(nil); err != nil {
		c.removeTask(t)
		c.emitShare("task-interrupted")
		return t.total - t.remaining, err
	}
	if tel := c.sim.Telemetry(); tel != nil {
		tel.Histogram("cpusim", "task_seconds").Observe(c.sim.Now() - start)
	}
	return t.total, nil
}
