// Package gis implements the GrADS Information Service (the MDS analog in
// the paper): a registry of Grid resources and of the software installed on
// them. The scheduler queries it for candidate resources; the distributed
// binder queries it to locate the local binder code and application
// libraries on each scheduled node (§2 of the paper).
package gis

import (
	"fmt"
	"sort"

	"grads/internal/faultinject"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// QueryDelay is the virtual-time cost a process pays per GIS query,
// modeling the directory-service round trip.
const QueryDelay = 0.050

// Service is a Grid Information Service over one emulated Grid.
type Service struct {
	sim  *simcore.Sim
	grid *topology.Grid

	// software maps node name -> package name -> install path.
	software map[string]map[string]string
	queries  int
	health   *faultinject.Health
}

// SetHealth attaches the chaos-layer availability handle; every query is
// gated on it. A nil health (the default) is always available.
func (s *Service) SetHealth(h *faultinject.Health) { s.health = h }

// New creates a GIS over grid.
func New(sim *simcore.Sim, grid *topology.Grid) *Service {
	return &Service{
		sim:      sim,
		grid:     grid,
		software: make(map[string]map[string]string),
	}
}

// Queries returns how many queries the service has answered (stats).
func (s *Service) Queries() int { return s.queries }

// RegisterSoftware records that a package is installed at path on a node.
func (s *Service) RegisterSoftware(node, pkg, path string) {
	m := s.software[node]
	if m == nil {
		m = make(map[string]string)
		s.software[node] = m
	}
	m[pkg] = path
}

// RegisterSoftwareEverywhere records a package on every node of the grid
// (convenience for preinstalled libraries such as the local binder).
func (s *Service) RegisterSoftwareEverywhere(pkg, path string) {
	for _, n := range s.grid.Nodes() {
		s.RegisterSoftware(n.Name(), pkg, path)
	}
}

// LookupSoftware returns a package's install path on a node. The calling
// process pays QueryDelay. It returns an error for missing software —
// the binder treats that as a deployment failure.
func (s *Service) LookupSoftware(p *simcore.Proc, node, pkg string) (string, error) {
	s.queries++
	if err := s.health.Check(p); err != nil {
		return "", err
	}
	if err := p.Sleep(QueryDelay); err != nil {
		return "", err
	}
	if path, ok := s.software[node][pkg]; ok {
		return path, nil
	}
	return "", fmt.Errorf("gis: software %q not installed on %q", pkg, node)
}

// HasSoftware reports without delay whether a package is installed on a node
// (used by filters that run inside scheduler heuristics).
func (s *Service) HasSoftware(node, pkg string) bool {
	_, ok := s.software[node][pkg]
	return ok
}

// Filter restricts a resource query.
type Filter struct {
	Arch     topology.Arch // match this architecture if non-empty
	Site     string        // restrict to this site if non-empty
	MinMemMB float64       // minimum node memory
	MinMHz   float64       // minimum clock
	Software []string      // require these packages installed
}

// matches reports whether a node satisfies the filter. Failed nodes never
// match.
func (s *Service) matches(n *topology.Node, f Filter) bool {
	if n.Down() {
		return false
	}
	if f.Arch != "" && n.Spec.Arch != f.Arch {
		return false
	}
	if f.Site != "" && n.Site().Name != f.Site {
		return false
	}
	if n.Spec.MemMB < f.MinMemMB || n.Spec.MHz < f.MinMHz {
		return false
	}
	for _, pkg := range f.Software {
		if !s.HasSoftware(n.Name(), pkg) {
			return false
		}
	}
	return true
}

// QueryResources returns all nodes matching the filter, sorted by name.
// The calling process pays QueryDelay.
func (s *Service) QueryResources(p *simcore.Proc, f Filter) ([]*topology.Node, error) {
	s.queries++
	if err := s.health.Check(p); err != nil {
		return nil, err
	}
	if err := p.Sleep(QueryDelay); err != nil {
		return nil, err
	}
	return s.selectNodes(f), nil
}

// SelectResources is QueryResources without the virtual-time cost, for use
// from kernel/event context.
func (s *Service) SelectResources(f Filter) []*topology.Node { return s.selectNodes(f) }

// Snapshot is a point-in-time shared view of the live resource pool: the
// matching nodes plus the virtual time the view was taken. Brokers that
// arbitrate between competing applications (the metascheduler) admit
// against one snapshot per decision round, so every queued job in a round
// sees the same pool.
type Snapshot struct {
	Time  float64
	Nodes []*topology.Node // live matching nodes, sorted by name
}

// TakeSnapshot answers one directory query with a consistent view of the
// pool. The calling process pays a single QueryDelay regardless of pool
// size (the MDS answers the whole query in one round trip).
func (s *Service) TakeSnapshot(p *simcore.Proc, f Filter) (*Snapshot, error) {
	nodes, err := s.QueryResources(p, f)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Time: s.sim.Now(), Nodes: nodes}, nil
}

func (s *Service) selectNodes(f Filter) []*topology.Node {
	var out []*topology.Node
	for _, n := range s.grid.Nodes() {
		if s.matches(n, f) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// NodeInfo is the per-node capability record a GIS query returns.
type NodeInfo struct {
	Name     string
	Site     string
	Arch     topology.Arch
	MHz      float64
	Flops    float64
	MemMB    float64
	Software []string
}

// DescribeNode returns a node's capability record (hardware and software),
// as the binder consumes it. It returns an error for unknown nodes.
func (s *Service) DescribeNode(p *simcore.Proc, name string) (NodeInfo, error) {
	s.queries++
	if err := s.health.Check(p); err != nil {
		return NodeInfo{}, err
	}
	if err := p.Sleep(QueryDelay); err != nil {
		return NodeInfo{}, err
	}
	n := s.grid.Node(name)
	if n == nil {
		return NodeInfo{}, fmt.Errorf("gis: unknown node %q", name)
	}
	var pkgs []string
	for pkg := range s.software[name] {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	return NodeInfo{
		Name:     n.Name(),
		Site:     n.Site().Name,
		Arch:     n.Spec.Arch,
		MHz:      n.Spec.MHz,
		Flops:    n.Spec.Flops(),
		MemMB:    n.Spec.MemMB,
		Software: pkgs,
	}, nil
}
