package gis

import (
	"testing"

	"grads/internal/simcore"
	"grads/internal/topology"
)

func testGrid(sim *simcore.Sim) *topology.Grid {
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e6, 1e-4)
	g.AddSite("B", 1e6, 1e-4)
	g.Connect("A", "B", 1e5, 0.01)
	g.AddNode(topology.NodeSpec{Name: "a1", Site: "A", Arch: topology.ArchIA32, MHz: 933, MemMB: 1024})
	g.AddNode(topology.NodeSpec{Name: "a2", Site: "A", Arch: topology.ArchIA32, MHz: 450, MemMB: 256})
	g.AddNode(topology.NodeSpec{Name: "b1", Site: "B", Arch: topology.ArchIA64, MHz: 900, MemMB: 2048})
	return g
}

func TestQueryResourcesFilters(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	s := New(sim, g)
	s.RegisterSoftware("a1", "scalapack", "/opt/scalapack")

	sim.Spawn("client", func(p *simcore.Proc) {
		all, err := s.QueryResources(p, Filter{})
		if err != nil || len(all) != 3 {
			t.Errorf("unfiltered query = %d nodes, %v", len(all), err)
		}
		ia64, _ := s.QueryResources(p, Filter{Arch: topology.ArchIA64})
		if len(ia64) != 1 || ia64[0].Name() != "b1" {
			t.Errorf("arch filter = %v", ia64)
		}
		bigmem, _ := s.QueryResources(p, Filter{MinMemMB: 512})
		if len(bigmem) != 2 {
			t.Errorf("mem filter = %d nodes, want 2", len(bigmem))
		}
		siteA, _ := s.QueryResources(p, Filter{Site: "A", MinMHz: 500})
		if len(siteA) != 1 || siteA[0].Name() != "a1" {
			t.Errorf("site+mhz filter = %v", siteA)
		}
		withSW, _ := s.QueryResources(p, Filter{Software: []string{"scalapack"}})
		if len(withSW) != 1 || withSW[0].Name() != "a1" {
			t.Errorf("software filter = %v", withSW)
		}
	})
	sim.Run()
	if s.Queries() != 5 {
		t.Fatalf("query count = %d, want 5", s.Queries())
	}
	// Each query costs QueryDelay of virtual time.
	if want := 5 * QueryDelay; sim.Now() != want {
		t.Fatalf("virtual time = %v, want %v", sim.Now(), want)
	}
}

func TestLookupSoftware(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	s := New(sim, g)
	s.RegisterSoftwareEverywhere("binder", "/opt/grads/binder")
	sim.Spawn("client", func(p *simcore.Proc) {
		path, err := s.LookupSoftware(p, "b1", "binder")
		if err != nil || path != "/opt/grads/binder" {
			t.Errorf("LookupSoftware = %q, %v", path, err)
		}
		if _, err := s.LookupSoftware(p, "b1", "eman"); err == nil {
			t.Error("missing software lookup should fail")
		}
	})
	sim.Run()
	if !s.HasSoftware("a2", "binder") {
		t.Fatal("RegisterSoftwareEverywhere missed a node")
	}
}

func TestDescribeNode(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	s := New(sim, g)
	s.RegisterSoftware("b1", "eman", "/opt/eman")
	s.RegisterSoftware("b1", "autopilot", "/opt/ap")
	sim.Spawn("client", func(p *simcore.Proc) {
		info, err := s.DescribeNode(p, "b1")
		if err != nil {
			t.Errorf("DescribeNode: %v", err)
			return
		}
		if info.Arch != topology.ArchIA64 || info.Site != "B" || info.MemMB != 2048 {
			t.Errorf("info = %+v", info)
		}
		if len(info.Software) != 2 || info.Software[0] != "autopilot" {
			t.Errorf("software list = %v (want sorted)", info.Software)
		}
		if _, err := s.DescribeNode(p, "zz"); err == nil {
			t.Error("unknown node should error")
		}
	})
	sim.Run()
}
