package ibp

import (
	"math"
	"testing"

	"grads/internal/simcore"
	"grads/internal/topology"
)

func testGrid(sim *simcore.Sim) *topology.Grid {
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e8, 0)
	g.AddSite("B", 1e8, 0)
	g.Connect("A", "B", 1e6, 0.010)
	g.AddNode(topology.NodeSpec{Name: "a1", Site: "A"})
	g.AddNode(topology.NodeSpec{Name: "b1", Site: "B"})
	return g
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLocalStoreIsCheapRemoteReadIsNot(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	s := New(sim, g)
	s.AddDepotsEverywhere()
	a, b := g.Node("a1"), g.Node("b1")

	var writeDone, readDone float64
	sim.Spawn("app", func(p *simcore.Proc) {
		// Local checkpoint write: disk only.
		if err := s.Store(p, a, a, "ckpt", 4e7); err != nil {
			t.Errorf("Store: %v", err)
		}
		writeDone = p.Now()
		// Remote checkpoint read from the other site: disk + WAN.
		start := p.Now()
		n, err := s.Retrieve(p, a, b, "ckpt")
		if err != nil || n != 4e7 {
			t.Errorf("Retrieve = %v, %v", n, err)
		}
		readDone = p.Now() - start
	})
	sim.Run()
	// Write: 4e7 B at 40 MB/s disk = 1 s. Read: 1 s disk + 40 s WAN.
	if !almost(writeDone, 1.0, 1e-6) {
		t.Fatalf("local write took %v, want 1.0", writeDone)
	}
	if !almost(readDone, 41.01, 0.1) {
		t.Fatalf("remote read took %v, want ~41 (WAN-dominated)", readDone)
	}
	if readDone < 10*writeDone {
		t.Fatal("checkpoint read should dominate write (Figure 3 asymmetry)")
	}
}

func TestStoreReplacesAndDelete(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	s := New(sim, g)
	a := g.Node("a1")
	s.AddDepot(a, 1e9)
	sim.Spawn("app", func(p *simcore.Proc) {
		s.Store(p, a, a, "k", 100)
		s.Store(p, a, a, "k", 250)
	})
	sim.Run()
	if sz, ok := s.Size("a1", "k"); !ok || sz != 250 {
		t.Fatalf("Size = %v, %v; want 250", sz, ok)
	}
	if s.Depot("a1").Stored() != 250 {
		t.Fatalf("Stored = %v", s.Depot("a1").Stored())
	}
	s.Delete("a1", "k")
	if _, ok := s.Size("a1", "k"); ok {
		t.Fatal("Delete left the key behind")
	}
}

func TestErrorsOnMissingDepotOrKey(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	s := New(sim, g)
	a, b := g.Node("a1"), g.Node("b1")
	s.AddDepot(a, 0)
	sim.Spawn("app", func(p *simcore.Proc) {
		if err := s.Store(p, a, b, "k", 1); err == nil {
			t.Error("Store to missing depot should fail")
		}
		if _, err := s.Retrieve(p, a, a, "ghost"); err == nil {
			t.Error("Retrieve of missing key should fail")
		}
		if err := s.Store(p, a, a, "neg", -5); err == nil {
			t.Error("negative size should fail")
		}
	})
	sim.Run()
}
