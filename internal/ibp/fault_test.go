package ibp

import (
	"errors"
	"testing"

	"grads/internal/faultinject"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// replicaGrid: two nodes at A, one at B, depots everywhere.
func replicaGrid(sim *simcore.Sim) *topology.Grid {
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e8, 0)
	g.AddSite("B", 1e8, 0)
	g.Connect("A", "B", 1e6, 0.010)
	g.AddNode(topology.NodeSpec{Name: "a1", Site: "A"})
	g.AddNode(topology.NodeSpec{Name: "a2", Site: "A"})
	g.AddNode(topology.NodeSpec{Name: "b1", Site: "B"})
	return g
}

func TestDepotOpsFailWhenNodeDown(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	s := New(sim, g)
	s.AddDepotsEverywhere()
	a, b := g.Node("a1"), g.Node("b1")
	sim.Spawn("app", func(p *simcore.Proc) {
		if err := s.Store(p, a, a, "k", 1e6); err != nil {
			t.Errorf("Store before crash: %v", err)
		}
		a.SetDown(true)
		if err := s.Store(p, b, a, "k2", 1e6); !errors.Is(err, ErrDepotDown) {
			t.Errorf("Store to down depot = %v, want ErrDepotDown", err)
		}
		if _, err := s.Retrieve(p, a, b, "k"); !errors.Is(err, ErrDepotDown) {
			t.Errorf("Retrieve from down depot = %v, want ErrDepotDown", err)
		}
		if _, err := s.RetrievePartial(p, a, b, "k", 100); !errors.Is(err, ErrDepotDown) {
			t.Errorf("RetrievePartial from down depot = %v, want ErrDepotDown", err)
		}
		// The class is retryable: the node may come back.
		if err := s.Store(p, b, a, "k2", 1e6); !faultinject.Retryable(err) {
			t.Errorf("ErrDepotDown must be retryable, got %v", err)
		}
		a.SetDown(false)
		if _, err := s.Retrieve(p, a, b, "k"); err != nil {
			t.Errorf("Retrieve after recovery: %v", err)
		}
	})
	sim.Run()
}

func TestServiceOutageRejectsCalls(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	s := New(sim, g)
	s.AddDepotsEverywhere()
	h := faultinject.NewHealth(sim, "ibp")
	s.SetHealth(h)
	a := g.Node("a1")
	sim.Spawn("app", func(p *simcore.Proc) {
		h.SetDown(true)
		if err := s.Store(p, a, a, "k", 100); !faultinject.Retryable(err) {
			t.Errorf("Store during outage = %v, want retryable ErrUnavailable", err)
		}
		h.SetDown(false)
		if err := s.Store(p, a, a, "k", 100); err != nil {
			t.Errorf("Store after outage: %v", err)
		}
	})
	sim.Run()
}

func TestReplicaForPrefersSameSiteLiveDepot(t *testing.T) {
	sim := simcore.New(1)
	g := replicaGrid(sim)
	s := New(sim, g)
	s.AddDepotsEverywhere()
	a1, a2, b1 := g.Node("a1"), g.Node("a2"), g.Node("b1")

	if got := s.ReplicaFor(a1); got != a2 {
		t.Fatalf("ReplicaFor(a1) = %v, want same-site a2", got)
	}
	a2.SetDown(true)
	if got := s.ReplicaFor(a1); got != b1 {
		t.Fatalf("ReplicaFor(a1) with a2 down = %v, want cross-site b1", got)
	}
	b1.SetDown(true)
	if got := s.ReplicaFor(a1); got != nil {
		t.Fatalf("ReplicaFor(a1) with everything down = %v, want nil", got)
	}
}
