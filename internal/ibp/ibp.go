// Package ibp models the Internet Backplane Protocol storage the SRS
// checkpointing library uses: storage depots located on grid nodes, with
// writes and reads paying local disk cost plus any network transfer between
// the requesting node and the depot.
//
// The asymmetry the paper reports in Figure 3 — checkpoint *writes* are
// insignificant because they go to IBP depots on local disks, while
// checkpoint *reads* dominate migration cost because they cross the
// Internet — falls out of this model directly.
package ibp

import (
	"fmt"
	"sort"

	"grads/internal/faultinject"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// ErrDepotDown is returned by depot operations whose hosting node is down.
// It wraps faultinject.ErrUnavailable so callers' retry policies treat a
// crashed depot as transient — the node may recover, or SRS may fall back
// to a replica on another depot.
var ErrDepotDown = fmt.Errorf("%w: ibp depot node down", faultinject.ErrUnavailable)

// ErrCorrupt is returned when a read touches a blob whose stored bits are
// corrupt. It does NOT wrap ErrUnavailable: re-reading the same depot will
// never heal bit rot, so retry loops must not burn their budget on it —
// the caller falls back to a replica or an older generation instead.
var ErrCorrupt = fmt.Errorf("ibp: blob corrupt")

// DefaultDiskRate is the local disk throughput of a depot in bytes/s
// (2003-era IDE disk).
const DefaultDiskRate = 40e6

// blob is one stored allocation: its size, the checksum the writer
// declared (0 when the writer did not checksum), and whether the stored
// bits have rotted — either an injected bit-rot event or a partial write
// during a corruption window.
type blob struct {
	bytes   float64
	sum     uint64
	corrupt bool
}

// Depot is a storage allocation server on one node.
type Depot struct {
	node       *topology.Node
	diskRate   float64
	blobs      map[string]blob // key -> stored allocation
	corrupting bool            // writes land partially (torn) while set
}

// Node returns the node hosting the depot.
func (d *Depot) Node() *topology.Node { return d.node }

// Stored returns the total bytes resident in the depot.
func (d *Depot) Stored() float64 {
	sum := 0.0
	for _, b := range d.blobs {
		sum += b.bytes
	}
	return sum
}

// System is the set of IBP depots on an emulated Grid.
type System struct {
	sim    *simcore.Sim
	grid   *topology.Grid
	depots map[string]*Depot // node name -> depot
	health *faultinject.Health
}

// SetHealth attaches the chaos-layer availability handle for the IBP
// service as a whole (outage/lag events target it); individual depot
// failures are modeled by their hosting node going down.
func (s *System) SetHealth(h *faultinject.Health) { s.health = h }

// check gates a depot operation: the service must be up and the depot's
// hosting node alive.
func (s *System) check(p *simcore.Proc, d *Depot) error {
	if err := s.health.Check(p); err != nil {
		return err
	}
	if d.node.Down() {
		return fmt.Errorf("%w: %s", ErrDepotDown, d.node.Name())
	}
	return nil
}

// New creates an IBP system with no depots.
func New(sim *simcore.Sim, grid *topology.Grid) *System {
	return &System{sim: sim, grid: grid, depots: make(map[string]*Depot)}
}

// AddDepot creates a depot on a node with the given disk rate (bytes/s);
// a non-positive rate selects DefaultDiskRate.
func (s *System) AddDepot(node *topology.Node, diskRate float64) *Depot {
	if diskRate <= 0 {
		diskRate = DefaultDiskRate
	}
	d := &Depot{node: node, diskRate: diskRate, blobs: make(map[string]blob)}
	s.depots[node.Name()] = d
	return d
}

// AddDepotsEverywhere creates a default depot on every grid node that lacks
// one, mirroring "IBP storage on local disks".
func (s *System) AddDepotsEverywhere() {
	for _, n := range s.grid.Nodes() {
		if s.depots[n.Name()] == nil {
			s.AddDepot(n, 0)
		}
	}
}

// Depot returns the depot on the named node, or nil.
func (s *System) Depot(node string) *Depot { return s.depots[node] }

// Store writes bytes under key into the depot on depotNode, called from a
// process running on fromNode. The caller pays network transfer (if the
// depot is remote) plus disk write time. Storing an existing key replaces it.
func (s *System) Store(p *simcore.Proc, from, depotNode *topology.Node, key string, bytes float64) error {
	return s.StoreSum(p, from, depotNode, key, bytes, 0)
}

// StoreSum is Store with a writer-declared checksum recorded alongside the
// blob, so readers can verify integrity (Verify) before paying for the
// read. A depot inside a corruption window tears the write: the blob lands
// but is marked corrupt.
func (s *System) StoreSum(p *simcore.Proc, from, depotNode *topology.Node, key string, bytes float64, sum uint64) error {
	d := s.depots[depotNode.Name()]
	if d == nil {
		return fmt.Errorf("ibp: no depot on %q", depotNode.Name())
	}
	if bytes < 0 {
		return fmt.Errorf("ibp: negative size for %q", key)
	}
	if err := s.check(p, d); err != nil {
		return err
	}
	if from != depotNode {
		if _, err := s.grid.Net.TransferLabeled(p, s.grid.Route(from, depotNode), bytes, from.Name(), depotNode.Name()); err != nil {
			return err
		}
	}
	// The depot may have crashed while the data was in flight.
	if d.node.Down() {
		return fmt.Errorf("%w: %s", ErrDepotDown, d.node.Name())
	}
	if err := p.Sleep(bytes / d.diskRate); err != nil {
		return err
	}
	d.blobs[key] = blob{bytes: bytes, sum: sum, corrupt: d.corrupting}
	return nil
}

// Retrieve reads the blob under key from the depot on depotNode into a
// process running on toNode, paying disk read plus network transfer.
// It returns the blob size.
func (s *System) Retrieve(p *simcore.Proc, depotNode, to *topology.Node, key string) (float64, error) {
	d := s.depots[depotNode.Name()]
	if d == nil {
		return 0, fmt.Errorf("ibp: no depot on %q", depotNode.Name())
	}
	b, ok := d.blobs[key]
	if !ok {
		return 0, fmt.Errorf("ibp: key %q not in depot on %q", key, depotNode.Name())
	}
	if b.corrupt {
		return 0, fmt.Errorf("%w: %q on %q", ErrCorrupt, key, depotNode.Name())
	}
	bytes := b.bytes
	if err := s.check(p, d); err != nil {
		return 0, err
	}
	if err := p.Sleep(bytes / d.diskRate); err != nil {
		return 0, err
	}
	if depotNode != to {
		if _, err := s.grid.Net.TransferLabeled(p, s.grid.Route(depotNode, to), bytes, depotNode.Name(), to.Name()); err != nil {
			return 0, err
		}
	}
	return bytes, nil
}

// RetrievePartial reads bytes of the blob under key (a byte range, for
// block-cyclic redistribution where each reader takes a slice) from the
// depot on depotNode into a process on toNode. It pays disk and network
// proportional to the slice.
func (s *System) RetrievePartial(p *simcore.Proc, depotNode, to *topology.Node, key string, bytes float64) (float64, error) {
	d := s.depots[depotNode.Name()]
	if d == nil {
		return 0, fmt.Errorf("ibp: no depot on %q", depotNode.Name())
	}
	b, ok := d.blobs[key]
	if !ok {
		return 0, fmt.Errorf("ibp: key %q not in depot on %q", key, depotNode.Name())
	}
	if b.corrupt {
		return 0, fmt.Errorf("%w: %q on %q", ErrCorrupt, key, depotNode.Name())
	}
	if bytes > b.bytes {
		bytes = b.bytes
	}
	if bytes <= 0 {
		return 0, nil
	}
	if err := s.check(p, d); err != nil {
		return 0, err
	}
	if err := p.Sleep(bytes / d.diskRate); err != nil {
		return 0, err
	}
	if depotNode != to {
		if _, err := s.grid.Net.TransferLabeled(p, s.grid.Route(depotNode, to), bytes, depotNode.Name(), to.Name()); err != nil {
			return 0, err
		}
	}
	return bytes, nil
}

// ReplicaFor returns the depot node that should hold a replica of data
// whose primary depot is on primary: the first alive depot-bearing node
// other than primary, preferring primary's own site (a cheap LAN copy), in
// sorted node order so the choice is deterministic. It returns nil when no
// other live depot exists.
func (s *System) ReplicaFor(primary *topology.Node) *topology.Node {
	names := make([]string, 0, len(s.depots))
	for name := range s.depots {
		names = append(names, name)
	}
	sort.Strings(names)
	var fallback *topology.Node
	for _, name := range names {
		n := s.depots[name].node
		if n == primary || n.Down() {
			continue
		}
		if n.Site() == primary.Site() {
			return n
		}
		if fallback == nil {
			fallback = n
		}
	}
	return fallback
}

// Size returns the stored size of key on a depot without any cost, or
// ok=false if absent (metadata lookups are negligible next to data motion).
func (s *System) Size(depotNode, key string) (float64, bool) {
	d := s.depots[depotNode]
	if d == nil {
		return 0, false
	}
	b, ok := d.blobs[key]
	return b.bytes, ok
}

// Verify reports whether key on depotNode exists, is not corrupt, and
// carries the expected checksum. Like Size it is a free metadata check —
// the reader verifies before paying disk and network for the data.
func (s *System) Verify(depotNode, key string, sum uint64) bool {
	d := s.depots[depotNode]
	if d == nil {
		return false
	}
	b, ok := d.blobs[key]
	return ok && !b.corrupt && b.sum == sum
}

// SetCorrupting opens or closes a partial-write window on the depot of
// node: while open, every write lands torn (marked corrupt). It reports
// whether the node has a depot.
func (s *System) SetCorrupting(node string, on bool) bool {
	d := s.depots[node]
	if d == nil {
		return false
	}
	d.corrupting = on
	return true
}

// CorruptAll rots every blob currently resident on the depot of node (the
// bit-rot half of a ckptcorrupt fault) and returns how many it touched,
// or -1 when the node has no depot.
func (s *System) CorruptAll(node string) int {
	d := s.depots[node]
	if d == nil {
		return -1
	}
	n := 0
	for k, b := range d.blobs {
		if !b.corrupt {
			b.corrupt = true
			d.blobs[k] = b
			n++
		}
	}
	return n
}

// Delete removes key from the depot on depotNode, if present.
func (s *System) Delete(depotNode, key string) {
	if d := s.depots[depotNode]; d != nil {
		delete(d.blobs, key)
	}
}
