package autopilot

import (
	"fmt"
	"sort"

	"grads/internal/simcore"
)

// Actuator applies one optimization command to the running system —
// Autopilot's third element beside sensors and the decision mechanism
// ("actuators for implementing optimization commands"). The argument is
// decision-dependent (for the contract monitor it is the fuzzy violation
// severity).
type Actuator struct {
	Name  string
	Apply func(arg float64) error
}

// Actuation is one logged actuator invocation.
type Actuation struct {
	Time float64
	Name string
	Arg  float64
	Err  error
}

// ActuatorRegistry holds the system's actuators and logs every invocation.
type ActuatorRegistry struct {
	sim  *simcore.Sim
	acts map[string]*Actuator
	log  []Actuation
}

// NewActuatorRegistry creates an empty registry.
func NewActuatorRegistry(sim *simcore.Sim) *ActuatorRegistry {
	return &ActuatorRegistry{sim: sim, acts: make(map[string]*Actuator)}
}

// Register adds an actuator; re-registering a name replaces it.
func (r *ActuatorRegistry) Register(a *Actuator) {
	if a == nil || a.Name == "" || a.Apply == nil {
		panic("autopilot: invalid actuator")
	}
	r.acts[a.Name] = a
}

// Names returns the registered actuator names, sorted.
func (r *ActuatorRegistry) Names() []string {
	out := make([]string, 0, len(r.acts))
	for n := range r.acts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Invoke applies the named actuator and logs the outcome.
func (r *ActuatorRegistry) Invoke(name string, arg float64) error {
	a, ok := r.acts[name]
	var err error
	if !ok {
		err = fmt.Errorf("autopilot: no actuator %q", name)
	} else {
		err = a.Apply(arg)
	}
	r.log = append(r.log, Actuation{Time: r.sim.Now(), Name: name, Arg: arg, Err: err})
	return err
}

// Log returns the invocation history.
func (r *ActuatorRegistry) Log() []Actuation { return append([]Actuation(nil), r.log...) }

// RescheduleActuator is the actuator name the contract monitor invokes on a
// violation when wired to a registry.
const RescheduleActuator = "reschedule"

// UseActuators routes this monitor's violations through a registry: on a
// contract violation the monitor invokes the RescheduleActuator with the
// fuzzy severity as argument; a nil error from the actuator counts as
// corrective action taken. An explicitly set OnViolation takes precedence.
func (m *Monitor) UseActuators(r *ActuatorRegistry) {
	m.actuators = r
}

// actViaRegistry is the registry-backed violation path.
func (m *Monitor) actViaRegistry(v Violation) bool {
	return m.actuators.Invoke(RescheduleActuator, v.Severity) == nil
}
