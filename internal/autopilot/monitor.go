package autopilot

import (
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// Sensor supplies one measured value per sampling period. ok=false means no
// fresh measurement is available (e.g. the application is between phases);
// the monitor skips that tick.
type Sensor func() (value float64, ok bool)

// Contract is a performance contract (§4.1.1): the application promises
// phase durations predicted by its performance model; the monitor verifies
// the ratio of measured to predicted duration stays inside tolerance
// limits.
type Contract struct {
	Name      string
	Predicted Sensor // predicted phase duration
	Actual    Sensor // measured phase duration

	// Tolerance limits on the actual/predicted ratio. The monitor adjusts
	// them adaptively exactly as §4.1.1 describes.
	UpperLimit float64
	LowerLimit float64
}

// Violation is delivered to the violation handler when a contract breaks.
type Violation struct {
	Contract *Contract
	Time     float64
	Ratio    float64 // the ratio that triggered the check
	AvgRatio float64 // average of all computed ratios
	Severity float64 // fuzzy-logic severity in [0, 1]
}

// Monitor is the GrADS contract monitor: a periodic process that samples
// the contract's sensors, verifies the contract via the decision mechanism,
// and calls the violation handler (which contacts the rescheduler). If the
// handler declines to act, the monitor widens its tolerance limits; if
// performance is persistently better than predicted, it lowers them.
type Monitor struct {
	sim      *simcore.Sim
	contract *Contract
	period   float64
	engine   *Engine

	// OnViolation is invoked on a contract violation; it returns true if
	// corrective action was taken (e.g. the application migrated), false
	// if the monitor should adapt its limits instead.
	OnViolation func(v Violation) bool

	// Window bounds how many recent ratios enter the average (0 keeps
	// all). A bounded window keeps a long healthy history from masking a
	// fresh sustained slowdown.
	Window int

	ratios    []float64
	lastRatio float64
	proc      *simcore.Proc
	stopped   bool
	trace     []TickRecord
	actuators *ActuatorRegistry

	violations int
	adjustUps  int
	adjustDown int
}

// NewMonitor creates a contract monitor sampling every period seconds.
// Limits default to [0.5, 2.0] when the contract leaves them zero.
func NewMonitor(sim *simcore.Sim, c *Contract, period float64) *Monitor {
	if c.UpperLimit <= 0 {
		c.UpperLimit = 2.0
	}
	if c.LowerLimit <= 0 {
		c.LowerLimit = 0.5
	}
	if period <= 0 {
		period = 10
	}
	return &Monitor{sim: sim, contract: c, period: period, engine: ViolationEngine(), Window: 10}
}

// Start spawns the monitoring process.
func (m *Monitor) Start() {
	m.proc = m.sim.Spawn("contract-monitor:"+m.contract.Name, m.run)
}

// Stop terminates the monitoring process.
func (m *Monitor) Stop() {
	m.stopped = true
	if m.proc != nil {
		m.proc.Kill()
	}
}

// Violations returns how many violations were reported.
func (m *Monitor) Violations() int { return m.violations }

// Adjustments returns how many times the limits were widened and lowered.
func (m *Monitor) Adjustments() (widened, lowered int) { return m.adjustUps, m.adjustDown }

// Limits returns the current tolerance limits.
func (m *Monitor) Limits() (lower, upper float64) {
	return m.contract.LowerLimit, m.contract.UpperLimit
}

// AvgRatio returns the average of all computed ratios (0 with none).
func (m *Monitor) AvgRatio() float64 {
	if len(m.ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range m.ratios {
		sum += r
	}
	return sum / float64(len(m.ratios))
}

func (m *Monitor) run(p *simcore.Proc) {
	for !m.stopped {
		if err := p.Sleep(m.period); err != nil {
			return
		}
		m.tick()
	}
}

// tick performs one §4.1.1 verification step.
func (m *Monitor) tick() {
	pred, okP := m.contract.Predicted()
	act, okA := m.contract.Actual()
	if !okP || !okA || pred <= 0 {
		return
	}
	ratio := act / pred
	trend := 0.0
	if m.lastRatio > 0 {
		trend = ratio - m.lastRatio
	}
	m.lastRatio = ratio
	m.ratios = append(m.ratios, ratio)
	if m.Window > 0 && len(m.ratios) > m.Window {
		m.ratios = m.ratios[len(m.ratios)-m.Window:]
	}

	severity := m.engine.Eval(map[string]float64{"ratio": ratio, "trend": trend})
	rec := TickRecord{
		Time:     m.sim.Now(),
		Ratio:    ratio,
		Lower:    m.contract.LowerLimit,
		Upper:    m.contract.UpperLimit,
		Severity: severity,
	}
	defer func() { m.recordTick(rec) }()
	if tel := m.sim.Telemetry(); tel != nil {
		tel.Histogram("autopilot", "contract_ratio").Observe(ratio)
		tel.Emit(telemetry.Event{
			Type: telemetry.EvContractTick, Comp: "autopilot", Name: m.contract.Name,
			Args: []telemetry.Arg{
				telemetry.F("ratio", ratio),
				telemetry.F("lower", m.contract.LowerLimit),
				telemetry.F("upper", m.contract.UpperLimit),
				telemetry.F("severity", severity),
			},
		})
	}

	switch {
	case ratio > m.contract.UpperLimit:
		avg := m.AvgRatio()
		if avg > m.contract.UpperLimit {
			m.violations++
			rec.Violation = true
			acted := false
			v := Violation{
				Contract: m.contract,
				Time:     m.sim.Now(),
				Ratio:    ratio,
				AvgRatio: avg,
				Severity: severity,
			}
			if tel := m.sim.Telemetry(); tel != nil {
				tel.Counter("autopilot", "violations").Inc()
				tel.Emit(telemetry.Event{
					Type: telemetry.EvContractViolation, Comp: "autopilot", Name: m.contract.Name,
					Args: []telemetry.Arg{
						telemetry.F("ratio", ratio),
						telemetry.F("avg_ratio", avg),
						telemetry.F("severity", severity),
					},
				})
			}
			switch {
			case m.OnViolation != nil:
				acted = m.OnViolation(v)
			case m.actuators != nil:
				acted = m.actViaRegistry(v)
			}
			if acted {
				// Corrective action taken: reset history so the new
				// execution is judged afresh.
				m.ratios = m.ratios[:0]
				m.lastRatio = 0
				return
			}
			// Rescheduler declined: adjust tolerance to the observed
			// level so the monitor stops re-reporting the same loss.
			m.contract.UpperLimit = avg * 1.1
			m.adjustUps++
		}
	case ratio < m.contract.LowerLimit:
		avg := m.AvgRatio()
		if avg < m.contract.LowerLimit {
			// Persistently better than predicted: lower the limits.
			m.contract.LowerLimit = avg * 0.9
			if newUpper := m.contract.UpperLimit * 0.9; newUpper > 1 {
				m.contract.UpperLimit = newUpper
			}
			m.adjustDown++
		}
	}
}
