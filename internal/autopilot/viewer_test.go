package autopilot

import (
	"strings"
	"testing"

	"grads/internal/simcore"
)

func TestMonitorRecordsTrace(t *testing.T) {
	sim := simcore.New(1)
	h := &contractHarness{predicted: 10, actual: 10}
	m := NewMonitor(sim, h.contract(), 5)
	m.OnViolation = func(Violation) bool {
		h.actual = 10
		return true
	}
	m.Start()
	sim.Schedule(50, func() { h.actual = 30 })
	sim.RunUntil(200)
	m.Stop()
	trace := m.Trace()
	if len(trace) == 0 {
		t.Fatal("no trace recorded")
	}
	sawViolation := false
	for i, r := range trace {
		if r.Time <= 0 || r.Ratio <= 0 || r.Upper <= r.Lower {
			t.Fatalf("record %d malformed: %+v", i, r)
		}
		if r.Violation {
			sawViolation = true
			if r.Severity <= 0 {
				t.Fatalf("violation record without severity: %+v", r)
			}
		}
	}
	if !sawViolation {
		t.Fatal("violation not in the trace")
	}
	// Records are time-ordered.
	for i := 1; i < len(trace); i++ {
		if trace[i].Time < trace[i-1].Time {
			t.Fatal("trace out of order")
		}
	}
}

func TestFormatTrace(t *testing.T) {
	records := []TickRecord{
		{Time: 10, Ratio: 1.0, Lower: 0.5, Upper: 2.0},
		{Time: 20, Ratio: 3.0, Lower: 0.5, Upper: 2.0, Severity: 0.9, Violation: true},
		{Time: 30, Ratio: 0.3, Lower: 0.5, Upper: 2.0},
	}
	out := FormatTrace(records, 30)
	if !strings.Contains(out, "VIOLATION") {
		t.Fatalf("violation row missing:\n%s", out)
	}
	if !strings.Contains(out, "under limit") {
		t.Fatalf("under-limit row missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if FormatTrace(nil, 40) != "(no contract activity)\n" {
		t.Fatal("empty-trace rendering wrong")
	}
	// Tiny width is clamped, not crashing.
	if out := FormatTrace(records, 1); !strings.Contains(out, "#") {
		t.Fatal("clamped width lost the bar")
	}
}
