package autopilot

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grads/internal/simcore"
)

func TestMembershipShapes(t *testing.T) {
	tri := Triangle(0, 1, 2)
	cases := []struct{ x, want float64 }{{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 0.5}, {2, 0}, {3, 0}}
	for _, c := range cases {
		if got := tri(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Triangle(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	trap := Trapezoid(0, 1, 2, 3)
	for _, c := range []struct{ x, want float64 }{{0.5, 0.5}, {1.5, 1}, {2.5, 0.5}, {4, 0}} {
		if got := trap(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Trapezoid(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	g := Grade(1, 2)
	if g(0.5) != 0 || g(1.5) != 0.5 || g(3) != 1 {
		t.Fatal("Grade wrong")
	}
	rg := ReverseGrade(1, 2)
	if rg(0.5) != 1 || math.Abs(rg(1.5)-0.5) > 1e-12 || rg(3) != 0 {
		t.Fatal("ReverseGrade wrong")
	}
}

func TestEngineInference(t *testing.T) {
	temp := &Var{Name: "temp", Terms: map[string]MembershipFunc{
		"cold": ReverseGrade(10, 30),
		"hot":  Grade(20, 40),
	}}
	e := NewEngine(temp)
	e.MustRule(Rule{If: map[string]string{"temp": "cold"}, Output: 0})
	e.MustRule(Rule{If: map[string]string{"temp": "hot"}, Output: 1})
	if got := e.Eval(map[string]float64{"temp": 5}); got != 0 {
		t.Fatalf("cold eval = %v", got)
	}
	if got := e.Eval(map[string]float64{"temp": 45}); got != 1 {
		t.Fatalf("hot eval = %v", got)
	}
	// In the overlap region both terms fire and the outputs blend.
	mid := e.Eval(map[string]float64{"temp": 25})
	if mid <= 0 || mid >= 1 {
		t.Fatalf("blended eval = %v, want in (0,1)", mid)
	}
	// Missing input -> no rule fires -> 0.
	if got := e.Eval(nil); got != 0 {
		t.Fatalf("empty eval = %v", got)
	}
}

func TestEngineRuleValidation(t *testing.T) {
	e := NewEngine(&Var{Name: "x", Terms: map[string]MembershipFunc{"a": Grade(0, 1)}})
	if err := e.AddRule(Rule{If: map[string]string{"y": "a"}}); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if err := e.AddRule(Rule{If: map[string]string{"x": "zzz"}}); err == nil {
		t.Fatal("unknown term accepted")
	}
}

func TestViolationEngineSeverityOrdering(t *testing.T) {
	e := ViolationEngine()
	good := e.Eval(map[string]float64{"ratio": 1.0, "trend": 0})
	degraded := e.Eval(map[string]float64{"ratio": 1.8, "trend": 0})
	bad := e.Eval(map[string]float64{"ratio": 3.5, "trend": 0.3})
	if !(good < degraded && degraded < bad) {
		t.Fatalf("severities not ordered: %v %v %v", good, degraded, bad)
	}
	if good > 0.1 || bad < 0.9 {
		t.Fatalf("extremes wrong: good=%v bad=%v", good, bad)
	}
	// Worsening trend raises severity at the same ratio.
	steady := e.Eval(map[string]float64{"ratio": 1.6, "trend": 0})
	worse := e.Eval(map[string]float64{"ratio": 1.6, "trend": 0.3})
	if worse <= steady {
		t.Fatalf("trend ignored: steady=%v worsening=%v", steady, worse)
	}
}

// Property: fuzzy severity stays within [0, 1] for any inputs.
func TestQuickSeverityBounded(t *testing.T) {
	e := ViolationEngine()
	f := func(r, tr float64) bool {
		if math.IsNaN(r) || math.IsInf(r, 0) || math.IsNaN(tr) || math.IsInf(tr, 0) {
			return true
		}
		s := e.Eval(map[string]float64{"ratio": r, "trend": tr})
		return s >= 0 && s <= 1
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// contractHarness wires a monitor to synthetic predicted/actual series.
type contractHarness struct {
	predicted float64
	actual    float64
}

func (h *contractHarness) contract() *Contract {
	return &Contract{
		Name:      "test",
		Predicted: func() (float64, bool) { return h.predicted, true },
		Actual:    func() (float64, bool) { return h.actual, true },
	}
}

func TestMonitorDetectsSustainedViolation(t *testing.T) {
	sim := simcore.New(1)
	h := &contractHarness{predicted: 10, actual: 10}
	m := NewMonitor(sim, h.contract(), 5)
	var got *Violation
	m.OnViolation = func(v Violation) bool {
		vv := v
		got = &vv
		h.actual = 10 // migration restores the promised performance
		return true
	}
	m.Start()
	// Healthy for 100s, then performance collapses (ratio 3x).
	sim.Schedule(100, func() { h.actual = 30 })
	sim.RunUntil(400)
	m.Stop()
	if got == nil {
		t.Fatal("sustained 3x slowdown not reported")
	}
	if got.Ratio < 2.0 || got.Severity < 0.5 {
		t.Fatalf("violation %+v looks too mild", got)
	}
	if got.Time < 100 {
		t.Fatalf("violation before the slowdown: t=%v", got.Time)
	}
	if m.Violations() != 1 {
		t.Fatalf("violations = %d, want 1 (history reset after action)", m.Violations())
	}
}

func TestMonitorIgnoresTransientSpike(t *testing.T) {
	sim := simcore.New(1)
	h := &contractHarness{predicted: 10, actual: 10}
	m := NewMonitor(sim, h.contract(), 5)
	fired := false
	m.OnViolation = func(Violation) bool { fired = true; return true }
	m.Start()
	// One bad sample among many good ones: the ratio exceeds the limit once
	// but the average stays low, so no violation (the paper's avg check).
	sim.Schedule(100, func() { h.actual = 30 })
	sim.Schedule(106, func() { h.actual = 10 })
	sim.RunUntil(300)
	m.Stop()
	if fired {
		t.Fatal("transient spike reported as violation")
	}
}

func TestMonitorWidensLimitsWhenReschedulerDeclines(t *testing.T) {
	sim := simcore.New(1)
	h := &contractHarness{predicted: 10, actual: 25}
	m := NewMonitor(sim, h.contract(), 5)
	declines := 0
	m.OnViolation = func(Violation) bool { declines++; return false }
	m.Start()
	sim.RunUntil(500)
	m.Stop()
	if declines == 0 {
		t.Fatal("no violation ever reported")
	}
	_, upper := m.Limits()
	if upper <= 2.0 {
		t.Fatalf("upper limit %v not widened after decline", upper)
	}
	widened, _ := m.Adjustments()
	if widened == 0 {
		t.Fatal("widening not counted")
	}
	// After widening, the same ratio must not retrigger forever.
	if declines > 3 {
		t.Fatalf("rescheduler spammed %d times despite adjustment", declines)
	}
}

func TestMonitorLowersLimitsWhenFaster(t *testing.T) {
	sim := simcore.New(1)
	h := &contractHarness{predicted: 10, actual: 3} // consistently 0.3x
	m := NewMonitor(sim, h.contract(), 5)
	m.Start()
	sim.RunUntil(200)
	m.Stop()
	lower, upper := m.Limits()
	if lower >= 0.5 {
		t.Fatalf("lower limit %v not lowered for a fast app", lower)
	}
	if upper <= 1 {
		t.Fatalf("upper limit %v fell to/below 1", upper)
	}
	_, lowered := m.Adjustments()
	if lowered == 0 {
		t.Fatal("lowering not counted")
	}
}

func TestMonitorSkipsWhenSensorsNotReady(t *testing.T) {
	sim := simcore.New(1)
	c := &Contract{
		Name:      "noready",
		Predicted: func() (float64, bool) { return 0, false },
		Actual:    func() (float64, bool) { return 5, true },
	}
	m := NewMonitor(sim, c, 5)
	m.OnViolation = func(Violation) bool { t.Error("violation with no data"); return true }
	m.Start()
	sim.RunUntil(100)
	m.Stop()
	if m.AvgRatio() != 0 {
		t.Fatalf("ratios recorded with unready sensors: %v", m.AvgRatio())
	}
}
