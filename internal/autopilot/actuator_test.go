package autopilot

import (
	"errors"
	"testing"

	"grads/internal/simcore"
)

func TestActuatorRegistry(t *testing.T) {
	sim := simcore.New(1)
	r := NewActuatorRegistry(sim)
	applied := 0.0
	r.Register(&Actuator{Name: "tune", Apply: func(arg float64) error { applied = arg; return nil }})
	r.Register(&Actuator{Name: "broken", Apply: func(float64) error { return errors.New("nope") }})

	if err := r.Invoke("tune", 0.7); err != nil || applied != 0.7 {
		t.Fatalf("Invoke tune: %v, applied %v", err, applied)
	}
	if err := r.Invoke("broken", 1); err == nil {
		t.Fatal("broken actuator reported success")
	}
	if err := r.Invoke("missing", 1); err == nil {
		t.Fatal("missing actuator reported success")
	}
	log := r.Log()
	if len(log) != 3 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[0].Err != nil || log[1].Err == nil || log[2].Err == nil {
		t.Fatalf("log errors wrong: %+v", log)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "broken" || names[1] != "tune" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegisterInvalidActuatorPanics(t *testing.T) {
	r := NewActuatorRegistry(simcore.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("nil Apply accepted")
		}
	}()
	r.Register(&Actuator{Name: "x"})
}

func TestMonitorRoutesViolationsThroughActuators(t *testing.T) {
	sim := simcore.New(1)
	h := &contractHarness{predicted: 10, actual: 10}
	m := NewMonitor(sim, h.contract(), 5)
	reg := NewActuatorRegistry(sim)
	var severity float64
	reg.Register(&Actuator{Name: RescheduleActuator, Apply: func(arg float64) error {
		severity = arg
		h.actual = 10 // the corrective action restores performance
		return nil
	}})
	m.UseActuators(reg)
	m.Start()
	sim.Schedule(50, func() { h.actual = 30 })
	sim.RunUntil(300)
	m.Stop()
	if severity <= 0 {
		t.Fatal("reschedule actuator never invoked")
	}
	found := false
	for _, a := range reg.Log() {
		if a.Name == RescheduleActuator && a.Err == nil {
			found = true
		}
	}
	if !found {
		t.Fatal("actuation not logged")
	}
	if m.Violations() != 1 {
		t.Fatalf("violations = %d, want 1 (actuator acted)", m.Violations())
	}
}

func TestMonitorActuatorFailureWidensLimits(t *testing.T) {
	sim := simcore.New(1)
	h := &contractHarness{predicted: 10, actual: 25}
	m := NewMonitor(sim, h.contract(), 5)
	reg := NewActuatorRegistry(sim)
	reg.Register(&Actuator{Name: RescheduleActuator, Apply: func(float64) error {
		return errors.New("no better resources")
	}})
	m.UseActuators(reg)
	m.Start()
	sim.RunUntil(400)
	m.Stop()
	widened, _ := m.Adjustments()
	if widened == 0 {
		t.Fatal("failed actuation should widen the limits (rescheduler declined)")
	}
}
