// Package autopilot reproduces the role of the Autopilot toolkit in GrADS:
// sensors for application and resource data, performance contracts that
// compare measured against predicted behavior, a fuzzy-logic decision
// mechanism, and the contract monitor that requests rescheduling when a
// contract is violated (§1, §4.1.1 of the paper).
package autopilot

import "fmt"

// MembershipFunc maps a crisp input to a membership degree in [0, 1].
type MembershipFunc func(x float64) float64

// Triangle returns a triangular membership function rising from a to b and
// falling from b to c.
func Triangle(a, b, c float64) MembershipFunc {
	return func(x float64) float64 {
		switch {
		case x <= a || x >= c:
			return 0
		case x == b:
			return 1
		case x < b:
			return (x - a) / (b - a)
		default:
			return (c - x) / (c - b)
		}
	}
}

// Trapezoid returns a trapezoidal membership function: 0 below a, rising to
// 1 at b, flat to c, falling to 0 at d.
func Trapezoid(a, b, c, d float64) MembershipFunc {
	return func(x float64) float64 {
		switch {
		case x <= a || x >= d:
			return 0
		case x >= b && x <= c:
			return 1
		case x < b:
			return (x - a) / (b - a)
		default:
			return (d - x) / (d - c)
		}
	}
}

// Grade returns a membership function that is 0 below a and rises to 1 at b,
// staying 1 beyond (an "at least" term).
func Grade(a, b float64) MembershipFunc {
	return func(x float64) float64 {
		switch {
		case x <= a:
			return 0
		case x >= b:
			return 1
		default:
			return (x - a) / (b - a)
		}
	}
}

// ReverseGrade returns a membership function that is 1 below a and falls to
// 0 at b (an "at most" term).
func ReverseGrade(a, b float64) MembershipFunc {
	g := Grade(a, b)
	return func(x float64) float64 { return 1 - g(x) }
}

// Var is a fuzzy linguistic variable with named terms.
type Var struct {
	Name  string
	Terms map[string]MembershipFunc
}

// Rule is a zero-order Sugeno rule: if every (variable, term) condition
// holds (AND = min), the rule votes for the crisp Output with its firing
// strength.
type Rule struct {
	If     map[string]string // variable name -> term name
	Output float64
}

// Engine is a zero-order Sugeno fuzzy inference engine: the output is the
// firing-strength-weighted average of rule outputs.
type Engine struct {
	vars  map[string]*Var
	rules []Rule
}

// NewEngine creates an engine over the given variables.
func NewEngine(vars ...*Var) *Engine {
	e := &Engine{vars: make(map[string]*Var, len(vars))}
	for _, v := range vars {
		e.vars[v.Name] = v
	}
	return e
}

// AddRule appends a rule, validating its variable and term names.
func (e *Engine) AddRule(r Rule) error {
	for vn, tn := range r.If {
		v, ok := e.vars[vn]
		if !ok {
			return fmt.Errorf("autopilot: rule references unknown variable %q", vn)
		}
		if _, ok := v.Terms[tn]; !ok {
			return fmt.Errorf("autopilot: variable %q has no term %q", vn, tn)
		}
	}
	e.rules = append(e.rules, r)
	return nil
}

// MustRule is AddRule that panics on invalid rules (for static rule bases).
func (e *Engine) MustRule(r Rule) {
	if err := e.AddRule(r); err != nil {
		panic(err)
	}
}

// Eval runs inference on crisp inputs (one per variable). Variables missing
// from the input map contribute zero membership to rules that use them.
// With no firing rules Eval returns 0.
func (e *Engine) Eval(inputs map[string]float64) float64 {
	num, den := 0.0, 0.0
	for _, r := range e.rules {
		strength := 1.0
		for vn, tn := range r.If {
			x, ok := inputs[vn]
			if !ok {
				strength = 0
				break
			}
			m := e.vars[vn].Terms[tn](x)
			if m < strength {
				strength = m
			}
		}
		num += strength * r.Output
		den += strength
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ViolationEngine builds the decision mechanism the contract monitor uses:
// inputs are the current actual/predicted ratio and its recent trend
// (ratio change per measurement); the output is a violation severity in
// [0, 1].
func ViolationEngine() *Engine {
	ratio := &Var{Name: "ratio", Terms: map[string]MembershipFunc{
		"good":     ReverseGrade(0.9, 1.3),
		"degraded": Triangle(1.0, 1.6, 2.4),
		"bad":      Grade(1.8, 3.0),
	}}
	trend := &Var{Name: "trend", Terms: map[string]MembershipFunc{
		"improving": ReverseGrade(-0.2, 0.0),
		"steady":    Triangle(-0.15, 0, 0.15),
		"worsening": Grade(0.0, 0.2),
	}}
	e := NewEngine(ratio, trend)
	e.MustRule(Rule{If: map[string]string{"ratio": "good"}, Output: 0})
	e.MustRule(Rule{If: map[string]string{"ratio": "degraded", "trend": "improving"}, Output: 0.2})
	e.MustRule(Rule{If: map[string]string{"ratio": "degraded", "trend": "steady"}, Output: 0.5})
	e.MustRule(Rule{If: map[string]string{"ratio": "degraded", "trend": "worsening"}, Output: 0.8})
	e.MustRule(Rule{If: map[string]string{"ratio": "bad"}, Output: 1})
	return e
}
