package autopilot

import (
	"fmt"
	"strings"
)

// TickRecord is one contract-verification step, as recorded for the
// contract viewer (the paper ships "a Java-based Contract Viewer GUI to
// visualize the performance contract validation activity in real-time";
// this package substitutes a terminal renderer over the same data).
type TickRecord struct {
	Time      float64
	Ratio     float64
	Lower     float64
	Upper     float64
	Severity  float64
	Violation bool
}

// Trace returns the recorded verification steps.
func (m *Monitor) Trace() []TickRecord { return append([]TickRecord(nil), m.trace...) }

// recordTick appends to the viewer trace. This slice only feeds the ASCII
// renderer below; the canonical observation stream is the telemetry hub the
// monitor publishes contract.tick / contract.violation events into (see
// Monitor.tick).
func (m *Monitor) recordTick(r TickRecord) { m.trace = append(m.trace, r) }

// FormatTrace renders a contract-validation timeline: one row per
// verification step with a bar visualizing the measured ratio against the
// tolerance band. width is the bar width in cells (the bar spans ratio
// values 0..maxRatio).
func FormatTrace(records []TickRecord, width int) string {
	if len(records) == 0 {
		return "(no contract activity)\n"
	}
	if width < 10 {
		width = 40
	}
	maxRatio := 0.0
	for _, r := range records {
		if r.Ratio > maxRatio {
			maxRatio = r.Ratio
		}
		if r.Upper > maxRatio {
			maxRatio = r.Upper
		}
	}
	if maxRatio <= 0 {
		maxRatio = 1
	}
	cell := func(v float64) int {
		c := int(v / maxRatio * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s  %8s  %-*s  %s\n", "time(s)", "ratio", width, "ratio bar ('|' = tolerance limits)", "state")
	for _, r := range records {
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		for i := 0; i <= cell(r.Ratio); i++ {
			bar[i] = '#'
		}
		bar[cell(r.Lower)] = '|'
		bar[cell(r.Upper)] = '|'
		state := "ok"
		switch {
		case r.Violation:
			state = fmt.Sprintf("VIOLATION (severity %.2f)", r.Severity)
		case r.Ratio > r.Upper:
			state = "over limit"
		case r.Ratio < r.Lower:
			state = "under limit"
		}
		fmt.Fprintf(&b, "%10.1f  %8.2f  %s  %s\n", r.Time, r.Ratio, bar, state)
	}
	return b.String()
}
