package faultinject

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"grads/internal/simcore"
	"grads/internal/topology"
)

func testGrid(sim *simcore.Sim) *topology.Grid {
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e8, 1e-4)
	g.AddSite("B", 1e8, 1e-4)
	g.Connect("A", "B", 1.25e6, 0.011)
	g.AddNode(topology.NodeSpec{Name: "a1", Site: "A", MHz: 1000, FlopsPerCycle: 1})
	g.AddNode(topology.NodeSpec{Name: "a2", Site: "A", MHz: 1000, FlopsPerCycle: 1})
	g.AddNode(topology.NodeSpec{Name: "b1", Site: "B", MHz: 1000, FlopsPerCycle: 1})
	return g
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "outage@10-40:nws;crash@100-400:a1;slow@150-300:a2:4;" +
		"linkslow@50-90:lan:A:0.25;linkdown@200-260:wan:A|B;lag@20:gis:0.5;" +
		"ckptcorrupt@300-500:a1;storm@600-700:a:2"
	events, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(events) != 8 {
		t.Fatalf("parsed %d events, want 8", len(events))
	}
	// Link targets keep their internal colons.
	found := map[string]bool{}
	for _, e := range events {
		found[string(e.Kind)+":"+e.Target] = true
	}
	for _, want := range []string{"linkslow:lan:A", "linkdown:wan:A|B", "lag:gis", "ckptcorrupt:a1", "storm:a"} {
		if !found[want] {
			t.Fatalf("missing %q in parsed events %v", want, events)
		}
	}
	// Format → Parse is the identity on the sorted schedule.
	again, err := ParseSpec(FormatSpec(events))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(events, again) {
		t.Fatalf("round trip changed the schedule:\n%v\n%v", events, again)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, spec, wantErr string
	}{
		{"empty spec", "", "empty fault spec"},
		{"blank events only", " ; ; ", "empty fault spec"},
		{"missing at-sign", "crash:100:a1", "missing '@'"},
		{"unknown kind", "explode@10:a1", `unknown kind "explode"`},
		{"reversed window", "crash@40-10:a1", "end 10 not after start 40"},
		{"zero-length window", "crash@40-40:a1", "not after start"},
		// The leading '-' reads as a window separator, so the start is empty.
		{"negative time", "crash@-5:a1", `bad start time ""`},
		{"missing target separator", "crash@100", "missing ':' before target"},
		{"empty target", "crash@10:", "empty target"},
		{"empty value-kind target", "slow@10::4", "empty target"},
		{"missing value", "slow@10:a1", "needs a ':value' suffix"},
		{"malformed value", "slow@10:a1:x", `bad value "x"`},
		{"non-positive value", "slow@10:a1:-2", "must be positive"},
		{"linkslow factor above 1", "linkslow@10:lan:A:2", "outside (0,1]"},
		{"linkslow factor zero", "linkslow@10:lan:A:0", "outside (0,1]"},
		{"malformed time", "crash@ten:a1", `bad time "ten"`},
		{"malformed start of window", "crash@x-10:a1", `bad start time "x"`},
		{"malformed end of window", "crash@10-y:a1", `bad end time "y"`},
		{"bad event among good ones", "crash@10:a1;lag@5:gis", "needs a ':value' suffix"},
		{"storm without count", "storm@10:utk", "needs a ':value' suffix"},
		{"storm fractional count", "storm@10:utk:0.5", "below 1"},
		{"storm zero count", "storm@10:utk:0", "below 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events, err := ParseSpec(tc.spec)
			if err == nil {
				t.Fatalf("ParseSpec(%q) accepted a bad spec: %v", tc.spec, events)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseSpec(%q) error %q does not mention %q", tc.spec, err, tc.wantErr)
			}
		})
	}
}

func TestGenerateNodeFaultsDeterministicAndSparesSurvivor(t *testing.T) {
	nodes := []string{"a1", "a2", "b1"}
	gen := func() []Event {
		return GenerateNodeFaults(rand.New(rand.NewSource(7)), nodes, 50, 10, 500)
	}
	a, b := gen(), gen()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("no faults generated")
	}
	for _, e := range a {
		if e.Target == "b1" {
			t.Fatal("survivor node b1 was scheduled to crash")
		}
		if e.Kind != KindCrash {
			t.Fatalf("unexpected kind %s", e.Kind)
		}
		if e.End <= e.Start {
			t.Fatalf("mttr > 0 must schedule recovery: %+v", e)
		}
	}
	// Permanent crashes: one per non-survivor node, no recovery.
	perm := GenerateNodeFaults(rand.New(rand.NewSource(7)), nodes, 50, 0, 500)
	if len(perm) != 2 {
		t.Fatalf("permanent schedule has %d events, want 2", len(perm))
	}
	for _, e := range perm {
		if e.End != 0 {
			t.Fatalf("permanent crash has a recovery: %+v", e)
		}
	}
}

func TestInjectorExecutesTimeline(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	in := NewInjector(sim, g)
	h := NewHealth(sim, "gis")
	in.RegisterService("gis", h)
	if err := in.LoadSpec("crash@10-20:a1;outage@5-15:gis;crash@30:nosuch"); err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	in.Start()

	type probe struct {
		at          float64
		nodeDown    bool
		serviceDown bool
	}
	var probes []probe
	for _, at := range []float64{1, 7, 12, 25} {
		at := at
		sim.At(at, func() {
			probes = append(probes, probe{at, g.Node("a1").Down(), h.Down()})
		})
	}
	sim.Run()

	want := []probe{
		{1, false, false},
		{7, false, true},
		{12, true, true},
		{25, false, false},
	}
	if !reflect.DeepEqual(probes, want) {
		t.Fatalf("timeline probes %v, want %v", probes, want)
	}
	if in.Injected() != 2 || in.Recovered() != 2 {
		t.Fatalf("injected=%d recovered=%d, want 2/2", in.Injected(), in.Recovered())
	}
	if in.Skipped() != 1 {
		t.Fatalf("skipped=%d, want 1 (unknown target)", in.Skipped())
	}
}

// fakeCorruptor records ckptcorrupt actions, standing in for ibp.System.
type fakeCorruptor struct {
	rotted     []string
	corrupting map[string]bool
}

func (f *fakeCorruptor) CorruptAll(node string) int {
	f.rotted = append(f.rotted, node)
	return len(f.rotted)
}

func (f *fakeCorruptor) SetCorrupting(node string, on bool) bool {
	if f.corrupting == nil {
		f.corrupting = make(map[string]bool)
	}
	f.corrupting[node] = on
	return true
}

func TestInjectorCkptCorruptWindow(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	in := NewInjector(sim, g)
	fc := &fakeCorruptor{}
	in.RegisterStorage(fc)
	// A windowed corruption on a1 plus one on an unknown node (skipped).
	if err := in.LoadSpec("ckptcorrupt@10-30:a1;ckptcorrupt@10:nosuch"); err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	in.Start()
	var midWindow, after bool
	sim.At(20, func() { midWindow = fc.corrupting["a1"] })
	sim.At(40, func() { after = fc.corrupting["a1"] })
	sim.Run()
	if len(fc.rotted) != 1 || fc.rotted[0] != "a1" {
		t.Fatalf("rotted %v, want one bit-rot pass on a1", fc.rotted)
	}
	if !midWindow || after {
		t.Fatalf("corrupting window mid=%v after=%v, want open then closed", midWindow, after)
	}
	if in.Skipped() != 1 {
		t.Fatalf("skipped=%d, want 1 (unknown node)", in.Skipped())
	}
}

func TestInjectorStormCrashesAndRevivesVictimSet(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	in := NewInjector(sim, g)
	// 2 a-prefixed victims; b1 crashes independently inside the window and
	// must NOT be revived by the storm's recovery.
	if err := in.LoadSpec("storm@10-50:a:2;crash@20:b1"); err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	in.Start()
	var duringA1, duringA2, duringB1 bool
	sim.At(30, func() {
		duringA1, duringA2, duringB1 = g.Node("a1").Down(), g.Node("a2").Down(), g.Node("b1").Down()
	})
	sim.Run()
	if !duringA1 || !duringA2 || !duringB1 {
		t.Fatalf("mid-storm down states a1=%v a2=%v b1=%v, want all down", duringA1, duringA2, duringB1)
	}
	if g.Node("a1").Down() || g.Node("a2").Down() {
		t.Fatal("storm recovery did not revive its victim set")
	}
	if !g.Node("b1").Down() {
		t.Fatal("storm recovery revived b1, which crashed independently")
	}
}

func TestInjectorStormPicksLiveSortedPrefix(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	in := NewInjector(sim, g)
	// a1 is already down when the storm hits, so the 1-victim storm must
	// fall on a2 (next in sorted order), and the wildcard storm at t=30
	// takes whatever is still alive.
	g.SetNodeDown("a1", true)
	if err := in.LoadSpec("storm@10:a:1;storm@30:*:5"); err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	in.Start()
	var a2AtTwenty bool
	sim.At(20, func() { a2AtTwenty = g.Node("a2").Down() })
	sim.Run()
	if !a2AtTwenty {
		t.Fatal("storm skipped the live sorted-prefix victim a2")
	}
	for _, n := range g.Nodes() {
		if !n.Down() {
			t.Fatalf("wildcard storm left %s alive", n.Name())
		}
	}
	if in.Injected() != 2 {
		t.Fatalf("injected=%d, want 2", in.Injected())
	}
}

func TestInjectorStopFreezesTimeline(t *testing.T) {
	sim := simcore.New(1)
	g := testGrid(sim)
	in := NewInjector(sim, g)
	if err := in.LoadSpec("crash@10:a1;crash@100:a2"); err != nil {
		t.Fatal(err)
	}
	in.Start()
	sim.At(50, in.Stop)
	sim.Run()
	if !g.Node("a1").Down() {
		t.Fatal("first crash did not execute")
	}
	if g.Node("a2").Down() {
		t.Fatal("crash scheduled after Stop still executed")
	}
	if in.Injected() != 1 {
		t.Fatalf("injected=%d, want 1", in.Injected())
	}
}

func TestHealthCheckGateAndLatency(t *testing.T) {
	sim := simcore.New(1)
	h := NewHealth(sim, "gis")
	var nilHealth *Health
	var lagPaid float64
	var downErr, nilErr error
	sim.Spawn("caller", func(p *simcore.Proc) {
		nilErr = nilHealth.Check(p) // nil Health is healthy and free

		h.SetExtraLatency(0.5)
		t0 := p.Now()
		if err := h.Check(p); err != nil {
			t.Errorf("lagged Check failed: %v", err)
		}
		lagPaid = p.Now() - t0

		h.SetExtraLatency(0)
		h.SetDown(true)
		downErr = h.Check(p)
	})
	sim.Run()
	if nilErr != nil {
		t.Fatalf("nil Health rejected a call: %v", nilErr)
	}
	if lagPaid != 0.5 {
		t.Fatalf("lag penalty %v, want 0.5", lagPaid)
	}
	if !Retryable(downErr) || !errors.Is(downErr, ErrUnavailable) {
		t.Fatalf("down Check error %v, want retryable ErrUnavailable", downErr)
	}
	if h.Rejected() != 1 {
		t.Fatalf("rejected=%d, want 1", h.Rejected())
	}
	if err := h.CheckNow(); !Retryable(err) {
		t.Fatalf("CheckNow while down = %v, want retryable", err)
	}
}
