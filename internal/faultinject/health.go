// Package faultinject is the deterministic chaos layer of the Grid
// emulator: a seeded, virtual-time fault scheduler (Injector) that executes
// a schedule of fault events — node crashes and recoveries, link
// degradation and partition, CPU slowdowns, and grid-service outages and
// latency spikes — against a running simulation, plus the Health handle the
// grid services (GIS, NWS, binder, IBP) consult to model their own
// availability.
//
// Every injection and recovery is emitted as a telemetry event, so a chaos
// run's fault timeline, detector firings and recoveries are all visible in
// the same trace, and two runs with the same seed produce byte-identical
// streams.
package faultinject

import (
	"errors"
	"fmt"

	"grads/internal/simcore"
)

// ErrUnavailable is the error grid services return while their Health is
// down. It is the retryable class: the resilience layer's retry policy
// backs off and re-attempts calls failing with it, while other errors
// (missing software, unknown nodes) propagate immediately.
var ErrUnavailable = errors.New("faultinject: service unavailable")

// Retryable reports whether an error is a transient service failure worth
// retrying (an outage), as opposed to a permanent one.
func Retryable(err error) bool { return errors.Is(err, ErrUnavailable) }

// Health models the availability of one grid service. Services hold a
// Health and consult it at every call boundary; the Injector flips the same
// handle to take the service down, bring it back, or add per-call latency.
// A nil *Health is always healthy and free, so services without a chaos
// layer attached pay a single branch.
type Health struct {
	sim  *simcore.Sim
	name string

	down     bool
	extraLat float64 // added per-call latency in seconds

	rejected int // calls failed while down
	delayed  int // calls that paid extra latency
}

// NewHealth creates a healthy service handle named name (e.g. "gis").
func NewHealth(sim *simcore.Sim, name string) *Health {
	return &Health{sim: sim, name: name}
}

// Name returns the service name.
func (h *Health) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Down reports whether the service is currently out.
func (h *Health) Down() bool { return h != nil && h.down }

// ExtraLatency returns the current per-call latency penalty in seconds.
func (h *Health) ExtraLatency() float64 {
	if h == nil {
		return 0
	}
	return h.extraLat
}

// SetDown marks the service out or restored.
func (h *Health) SetDown(down bool) {
	if h == nil {
		return
	}
	h.down = down
}

// SetExtraLatency sets the per-call latency penalty (a service "latency
// spike"); negative values clamp to zero.
func (h *Health) SetExtraLatency(d float64) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.extraLat = d
}

// Rejected returns how many calls failed because the service was down.
func (h *Health) Rejected() int {
	if h == nil {
		return 0
	}
	return h.rejected
}

// Check is the call-boundary gate: the calling process pays any injected
// latency penalty, then receives ErrUnavailable (wrapped with the service
// name) if the service is down. A nil Health passes for free.
func (h *Health) Check(p *simcore.Proc) error {
	if h == nil {
		return nil
	}
	if h.extraLat > 0 {
		h.delayed++
		if err := p.Sleep(h.extraLat); err != nil {
			return err
		}
	}
	if h.down {
		h.rejected++
		if tel := h.sim.Telemetry(); tel != nil {
			tel.Counter("faultinject", "calls_rejected").Inc()
		}
		return fmt.Errorf("%w: %s", ErrUnavailable, h.name)
	}
	return nil
}

// CheckNow is Check for kernel/event contexts that cannot sleep: it skips
// the latency penalty and only applies the availability gate.
func (h *Health) CheckNow() error {
	if h == nil || !h.down {
		return nil
	}
	h.rejected++
	return fmt.Errorf("%w: %s", ErrUnavailable, h.name)
}
