package faultinject

import (
	"fmt"
	"sort"
	"strings"

	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Injector executes a fault schedule against a running simulation. It is
// itself a simulated process: injections and recoveries happen at exact
// virtual times, interleaved deterministically with the workload, so the
// same seed always produces the same fault timeline and the same trace.
type Injector struct {
	sim  *simcore.Sim
	grid *topology.Grid

	services map[string]*Health
	storage  Corruptor
	actions  []action

	// stormVictims remembers, per windowed storm event, exactly which live
	// nodes its injection crashed, so recovery revives that set and no
	// other (a node that crashed independently mid-storm stays down).
	stormVictims map[Event][]string

	proc    *simcore.Proc
	stopped bool

	injected  int
	recovered int
	skipped   int
}

// action is one timeline step: the injection or recovery of one Event.
type action struct {
	at      float64
	recover bool
	ev      Event
}

// NewInjector creates an injector over the grid with no schedule loaded.
func NewInjector(sim *simcore.Sim, grid *topology.Grid) *Injector {
	return &Injector{
		sim: sim, grid: grid,
		services:     make(map[string]*Health),
		stormVictims: make(map[Event][]string),
	}
}

// Corruptor is the storage surface ckptcorrupt events drive: marking every
// resident blob on a node's depot corrupt, and opening/closing a window in
// which new writes land torn. *ibp.System implements it; the interface
// keeps this package free of an import cycle with ibp.
type Corruptor interface {
	CorruptAll(node string) int
	SetCorrupting(node string, on bool) bool
}

// RegisterStorage attaches the depot system ckptcorrupt events target.
// Without it, ckptcorrupt actions are skipped and counted in Skipped.
func (in *Injector) RegisterStorage(c Corruptor) { in.storage = c }

// RegisterService attaches a service Health under the name fault specs use
// (gis, nws, binder, ibp). Outage and lag events whose target has no
// registered Health are skipped and counted in Skipped.
func (in *Injector) RegisterService(name string, h *Health) {
	if h != nil {
		in.services[name] = h
	}
}

// Service returns the registered Health for name, or nil.
func (in *Injector) Service(name string) *Health { return in.services[name] }

// Load appends a schedule of events to the injector's timeline. It must be
// called before Start.
func (in *Injector) Load(events []Event) {
	for _, e := range events {
		in.actions = append(in.actions, action{at: e.Start, ev: e})
		if e.End > e.Start {
			in.actions = append(in.actions, action{at: e.End, recover: true, ev: e})
		}
	}
	// Total order: time, then injections before recoveries, then kind and
	// target — the timeline replays identically run after run.
	sort.SliceStable(in.actions, func(i, j int) bool {
		a, b := in.actions[i], in.actions[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.recover != b.recover {
			return !a.recover
		}
		if a.ev.Kind != b.ev.Kind {
			return a.ev.Kind < b.ev.Kind
		}
		return a.ev.Target < b.ev.Target
	})
}

// LoadSpec parses a -faults spec string and loads it.
func (in *Injector) LoadSpec(spec string) error {
	events, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	in.Load(events)
	return nil
}

// Start spawns the injector process, which sleeps between scheduled actions
// and applies each at its exact virtual time.
func (in *Injector) Start() {
	in.proc = in.sim.Spawn("faultinject", func(p *simcore.Proc) {
		for _, a := range in.actions {
			if in.stopped {
				return
			}
			if err := p.SleepUntil(a.at); err != nil {
				return
			}
			in.apply(a)
		}
	})
}

// Stop terminates the injector process; faults already injected stay in
// force.
func (in *Injector) Stop() {
	in.stopped = true
	if in.proc != nil {
		in.proc.Kill()
	}
}

// Injected and Recovered return how many fault injections and recoveries
// have executed; Skipped counts actions whose target did not resolve.
func (in *Injector) Injected() int  { return in.injected }
func (in *Injector) Recovered() int { return in.recovered }
func (in *Injector) Skipped() int   { return in.skipped }

// apply executes one timeline action.
func (in *Injector) apply(a action) {
	ok := false
	switch a.ev.Kind {
	case KindCrash:
		ok = in.grid.SetNodeDown(a.ev.Target, !a.recover)
	case KindSlow:
		if n := in.grid.Node(a.ev.Target); n != nil {
			delta := a.ev.Value
			if a.recover {
				delta = -delta
			}
			n.CPU.SetExternalLoad(n.CPU.ExternalLoad() + delta)
			ok = true
		}
	case KindLinkDown:
		if l := in.grid.Net.Link(a.ev.Target); l != nil {
			in.grid.Net.SetLinkDown(l, !a.recover)
			ok = true
		}
	case KindLinkSlow:
		if l := in.grid.Net.Link(a.ev.Target); l != nil {
			factor := a.ev.Value
			if a.recover {
				factor = 1
			}
			in.grid.Net.SetCapacityFactor(l, factor)
			ok = true
		}
	case KindOutage:
		if h := in.services[a.ev.Target]; h != nil {
			h.SetDown(!a.recover)
			ok = true
		}
	case KindLag:
		if h := in.services[a.ev.Target]; h != nil {
			if a.recover {
				h.SetExtraLatency(0)
			} else {
				h.SetExtraLatency(a.ev.Value)
			}
			ok = true
		}
	case KindCkptCorrupt:
		if in.storage != nil && in.grid.Node(a.ev.Target) != nil {
			if a.recover {
				ok = in.storage.SetCorrupting(a.ev.Target, false)
			} else if in.storage.CorruptAll(a.ev.Target) >= 0 {
				in.storage.SetCorrupting(a.ev.Target, true)
				ok = true
			}
		}
	case KindStorm:
		if a.recover {
			for _, name := range in.stormVictims[a.ev] {
				in.grid.SetNodeDown(name, false)
			}
			delete(in.stormVictims, a.ev)
			ok = true
		} else if victims := in.stormPick(a.ev.Target, int(a.ev.Value)); len(victims) > 0 {
			for _, name := range victims {
				in.grid.SetNodeDown(name, true)
			}
			if a.ev.End > a.ev.Start {
				in.stormVictims[a.ev] = victims
			}
			ok = true
		}
	}
	if !ok {
		in.skipped++
		in.sim.Tracef("faultinject: skipped %s (unknown target %q)", a.ev.Kind, a.ev.Target)
		return
	}
	typ := telemetry.EvFaultInject
	if a.recover {
		typ = telemetry.EvFaultRecover
		in.recovered++
	} else {
		in.injected++
	}
	in.sim.Tracef("faultinject: %s %s %s", verb(a.recover), a.ev.Kind, a.ev.Target)
	if tel := in.sim.Telemetry(); tel != nil {
		tel.Counter("faultinject", counterName(a.recover)).Inc()
		tel.Emit(telemetry.Event{
			Type: typ, Comp: "faultinject", Name: string(a.ev.Kind),
			Args: []telemetry.Arg{
				telemetry.S("target", a.ev.Target),
				telemetry.F("value", a.ev.Value),
			},
		})
	}
}

// stormPick selects the first count live nodes whose names match the storm
// prefix ("*" matches everything), in sorted name order so the victim set
// is the same run after run.
func (in *Injector) stormPick(prefix string, count int) []string {
	if count <= 0 {
		return nil
	}
	var names []string
	for _, n := range in.grid.Nodes() {
		if n.Down() {
			continue
		}
		if prefix == "*" || strings.HasPrefix(n.Name(), prefix) {
			names = append(names, n.Name())
		}
	}
	sort.Strings(names)
	if len(names) > count {
		names = names[:count]
	}
	return names
}

func verb(rec bool) string {
	if rec {
		return "recover"
	}
	return "inject"
}

func counterName(rec bool) string {
	if rec {
		return "recoveries"
	}
	return "injections"
}

// HealthSetter is implemented by every grid service that can be taken down
// by the injector.
type HealthSetter interface{ SetHealth(*Health) }

// Wire creates a Health per named service, installs it on the service, and
// registers it with the injector under the spec-grammar name (gis, nws,
// binder, ibp). Nil services are skipped. A storage service that also
// implements Corruptor (ibp.System does) is registered as the ckptcorrupt
// target. It returns the injector for chaining.
func Wire(in *Injector, gis, nws, binder, ibp HealthSetter) *Injector {
	wire := func(name string, svc HealthSetter) {
		if svc == nil {
			return
		}
		h := NewHealth(in.sim, name)
		svc.SetHealth(h)
		in.RegisterService(name, h)
	}
	wire("gis", gis)
	wire("nws", nws)
	wire("binder", binder)
	wire("ibp", ibp)
	if c, ok := ibp.(Corruptor); ok {
		in.RegisterStorage(c)
	}
	return in
}

// Describe renders the loaded timeline for reports (one line per action).
func (in *Injector) Describe() string {
	out := ""
	for _, a := range in.actions {
		out += fmt.Sprintf("t=%-8.1f %-8s %-9s %s\n", a.at, verb(a.recover), a.ev.Kind, a.ev.Target)
	}
	return out
}
