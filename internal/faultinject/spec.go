package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind names one class of injectable fault.
type Kind string

// The fault kinds the injector executes.
const (
	// KindCrash takes a node down (and kills the flows and processes it
	// hosts); recovery brings it back into the GIS-visible pool.
	KindCrash Kind = "crash"
	// KindSlow squeezes a node's CPU by adding Value units of competing
	// external load; recovery removes them again.
	KindSlow Kind = "slow"
	// KindLinkDown partitions a link: active flows crossing it are killed
	// and new transfers fail until recovery.
	KindLinkDown Kind = "linkdown"
	// KindLinkSlow degrades a link to Value (0..1] of its capacity;
	// recovery restores full capacity.
	KindLinkSlow Kind = "linkslow"
	// KindOutage takes a grid service (gis, nws, binder, ibp) down; its
	// calls fail with ErrUnavailable until recovery.
	KindOutage Kind = "outage"
	// KindLag adds Value seconds of latency to every call of a grid
	// service; recovery removes the penalty.
	KindLag Kind = "lag"
	// KindCkptCorrupt rots every checkpoint blob resident on the target
	// node's IBP depot and tears (partially writes) new blobs landing there
	// until recovery — the storage-integrity fault the SRS checksum and
	// lineage-fallback machinery defends against.
	KindCkptCorrupt Kind = "ckptcorrupt"
	// KindStorm crashes a correlated burst of Value live nodes whose names
	// start with the target prefix ("*" matches every node); recovery
	// brings exactly that victim set back.
	KindStorm Kind = "storm"
)

// Event is one scheduled fault: injected at Start and, when End > Start,
// recovered at End. End = 0 (or <= Start) means the fault is permanent.
type Event struct {
	Kind   Kind
	Start  float64
	End    float64
	Target string  // node name, link name, or service name
	Value  float64 // kind-specific magnitude (load units, capacity factor, seconds)
}

// String renders the event in the -faults spec grammar.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s", e.Kind, trimFloat(e.Start))
	if e.End > e.Start {
		fmt.Fprintf(&b, "-%s", trimFloat(e.End))
	}
	fmt.Fprintf(&b, ":%s", e.Target)
	if kindHasValue(e.Kind) {
		fmt.Fprintf(&b, ":%s", trimFloat(e.Value))
	}
	return b.String()
}

// trimFloat renders a non-negative time or magnitude in fixed notation:
// exponent form would put an 'e-07'-style dash into the spec, which the
// start-end separator of the grammar would then split on.
func trimFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// parseFinite parses a float and rejects NaN and infinities: a schedule with
// a non-finite time or magnitude would wedge the injector's event loop.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

// kindHasValue reports whether the kind carries a magnitude argument.
func kindHasValue(k Kind) bool {
	switch k {
	case KindSlow, KindLinkSlow, KindLag, KindStorm:
		return true
	}
	return false
}

// FormatSpec renders a schedule in the spec grammar (the inverse of
// ParseSpec), so generated schedules can be reported and replayed.
func FormatSpec(events []Event) string {
	parts := make([]string, len(events))
	for i, e := range events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// ParseSpec parses the -faults schedule grammar:
//
//	spec  := event (';' event)*
//	event := kind '@' start [ '-' end ] ':' target [ ':' value ]
//
// where kind is one of crash, slow, linkdown, linkslow, outage, lag,
// ckptcorrupt, storm; start and end are virtual-time seconds; target is a
// node name (crash, slow, ckptcorrupt), a node-name prefix or "*" (storm),
// a netsim link name such as "lan:UT" or "wan:UIUC|UT" (linkdown,
// linkslow), or a service name gis|nws|binder|ibp (outage, lag); and value
// is the kind's magnitude (slow: added load units, linkslow: capacity
// factor in (0,1], lag: seconds per call, storm: how many live matching
// nodes crash). Omitting "-end" makes the fault permanent.
//
// Examples:
//
//	crash@800:qr0                      qr0 fails at t=800 and stays down
//	crash@800-1600:qr2                 qr2 fails at 800, recovers at 1600
//	slow@100-400:qr1:4                 4 competing processes on qr1
//	linkslow@50-90:lan:UT:0.25         UT LAN at quarter capacity
//	linkdown@200-260:wan:UIUC|UT       WAN partition for 60 s
//	outage@10-40:nws                   NWS outage
//	lag@10-40:gis:0.5                  every GIS call pays +0.5 s
//	ckptcorrupt@300-500:qr1            qr1's depot rots and tears writes
//	storm@600-700:utk:3                3 utk* nodes crash together
func ParseSpec(spec string) ([]Event, error) {
	var events []Event
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseEvent(part)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad event %q: %w", part, err)
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault spec")
	}
	sortEvents(events)
	return events, nil
}

func parseEvent(s string) (Event, error) {
	at := strings.Index(s, "@")
	if at < 0 {
		return Event{}, fmt.Errorf("missing '@'")
	}
	kind := Kind(strings.ToLower(strings.TrimSpace(s[:at])))
	switch kind {
	case KindCrash, KindSlow, KindLinkDown, KindLinkSlow, KindOutage, KindLag, KindCkptCorrupt, KindStorm:
	default:
		return Event{}, fmt.Errorf("unknown kind %q", string(kind))
	}
	rest := s[at+1:]
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return Event{}, fmt.Errorf("missing ':' before target")
	}
	times, target := rest[:colon], rest[colon+1:]

	e := Event{Kind: kind}
	var err error
	if dash := strings.Index(times, "-"); dash >= 0 {
		if e.Start, err = parseFinite(times[:dash]); err != nil {
			return Event{}, fmt.Errorf("bad start time %q", times[:dash])
		}
		if e.End, err = parseFinite(times[dash+1:]); err != nil {
			return Event{}, fmt.Errorf("bad end time %q", times[dash+1:])
		}
		if e.End <= e.Start {
			return Event{}, fmt.Errorf("end %g not after start %g", e.End, e.Start)
		}
	} else if e.Start, err = parseFinite(times); err != nil {
		return Event{}, fmt.Errorf("bad time %q", times)
	}
	if e.Start < 0 {
		return Event{}, fmt.Errorf("negative time %g", e.Start)
	}

	if kindHasValue(kind) {
		last := strings.LastIndex(target, ":")
		if last < 0 {
			return Event{}, fmt.Errorf("%s needs a ':value' suffix", kind)
		}
		if e.Value, err = parseFinite(target[last+1:]); err != nil {
			return Event{}, fmt.Errorf("bad value %q", target[last+1:])
		}
		target = target[:last]
		switch {
		case kind == KindLinkSlow && (e.Value <= 0 || e.Value > 1):
			return Event{}, fmt.Errorf("linkslow factor %g outside (0,1]", e.Value)
		case kind == KindStorm && e.Value < 1:
			return Event{}, fmt.Errorf("storm count %g below 1", e.Value)
		case kind != KindLinkSlow && e.Value <= 0:
			return Event{}, fmt.Errorf("value %g must be positive", e.Value)
		}
	}
	if target == "" {
		return Event{}, fmt.Errorf("empty target")
	}
	e.Target = target
	return e, nil
}

// sortEvents orders a schedule by start time, then kind, then target —
// a total order, so schedule execution is deterministic regardless of how
// the events were produced.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Target < b.Target
	})
}

// GenerateNodeFaults builds a seeded crash/recover schedule over the named
// nodes on [0, horizon): each node fails with exponentially distributed
// time-between-failures of mean mtbf and stays down for an exponentially
// distributed repair time of mean mttr (a non-positive mttr makes every
// crash permanent). The schedule is fully determined by rng's state, and at
// least one node is always left untouched so recovery has somewhere to run.
func GenerateNodeFaults(rng *rand.Rand, nodes []string, mtbf, mttr, horizon float64) []Event {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if mtbf <= 0 || horizon <= 0 || len(nodes) == 0 {
		return nil
	}
	spared := len(nodes) - 1 // index of the survivor node
	var events []Event
	for i, node := range nodes {
		if i == spared {
			continue
		}
		t := rng.ExpFloat64() * mtbf
		for t < horizon {
			e := Event{Kind: KindCrash, Start: t, Target: node}
			if mttr > 0 {
				e.End = t + math.Max(1, rng.ExpFloat64()*mttr)
				t = e.End + rng.ExpFloat64()*mtbf
			} else {
				t = horizon
			}
			events = append(events, e)
		}
	}
	sortEvents(events)
	return events
}
