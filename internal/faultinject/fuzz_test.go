package faultinject

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseSpec drives the -faults grammar parser with arbitrary input. The
// parser must never panic, and whenever it accepts a spec the resulting
// schedule must satisfy the injector's preconditions (finite non-negative
// times, end after start, non-empty targets, in-range magnitudes) and
// round-trip exactly through FormatSpec.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"crash@800:qr0",
		"crash@800-1600:qr2",
		"slow@100-400:qr1:4",
		"linkslow@50-90:lan:UT:0.25",
		"linkdown@200-260:wan:UIUC|UT",
		"outage@10-40:nws",
		"lag@10-40:gis:0.5",
		"crash@800:qr0;outage@10-40:nws; slow@1:n:2 ",
		"crash@0.0000001:a",
		"crash@0-0.0000001:a",
		"slow@1:n:+Inf",
		"lag@NaN:gis:1",
		"crash@1e3:a;crash@1E-1:b",
		";;;",
		"crash@@:x",
		"linkslow@1:l:0",
		"ckptcorrupt@300-500:qr1",
		"storm@600-700:utk:3",
		"storm@600:*:1;ckptcorrupt@1:a;storm@2:x:0.5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		events, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if len(events) == 0 {
			t.Fatalf("accepted %q but returned no events", spec)
		}
		for _, e := range events {
			if math.IsNaN(e.Start) || math.IsInf(e.Start, 0) || e.Start < 0 {
				t.Fatalf("accepted %q with bad start %v", spec, e.Start)
			}
			if math.IsNaN(e.End) || math.IsInf(e.End, 0) {
				t.Fatalf("accepted %q with non-finite end %v", spec, e.End)
			}
			if e.End != 0 && e.End <= e.Start {
				t.Fatalf("accepted %q with end %v not after start %v", spec, e.End, e.Start)
			}
			if e.Target == "" || strings.Contains(e.Target, ";") {
				t.Fatalf("accepted %q with bad target %q", spec, e.Target)
			}
			if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
				t.Fatalf("accepted %q with non-finite value %v", spec, e.Value)
			}
			switch {
			case e.Kind == KindLinkSlow && (e.Value <= 0 || e.Value > 1):
				t.Fatalf("accepted %q with linkslow factor %v outside (0,1]", spec, e.Value)
			case e.Kind == KindStorm && e.Value < 1:
				t.Fatalf("accepted %q with storm count %v below 1", spec, e.Value)
			case kindHasValue(e.Kind) && e.Value <= 0:
				t.Fatalf("accepted %q with non-positive value %v", spec, e.Value)
			}
		}
		// Accepted schedules must survive a format/parse round trip intact:
		// reports render schedules with FormatSpec for replay.
		again, err := ParseSpec(FormatSpec(events))
		if err != nil {
			t.Fatalf("round trip of %q failed: %v (formatted %q)", spec, err, FormatSpec(events))
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatalf("round trip of %q changed the schedule:\n was %v\n got %v", spec, events, again)
		}
	})
}
