package shardsim

import (
	"bytes"
	"testing"

	"grads/internal/simtest"
	"grads/internal/telemetry"
)

// runVariant runs one scenario at a shard count and fails the test on any
// invariant violation.
func runVariant(t *testing.T, cfg ScenarioConfig, shards int) *Result {
	t.Helper()
	cfg.Shards = shards
	r := RunScenario(cfg)
	for _, v := range r.Violations {
		t.Errorf("shards=%d invariant violated: %s", shards, v)
	}
	return r
}

// checkEquivalence proves byte-identical merged traces and identical virtual
// stats between the single-kernel oracle and every sharded run.
func checkEquivalence(t *testing.T, cfg ScenarioConfig) {
	t.Helper()
	oracle := runVariant(t, cfg, 1)
	if oracle.Shards != 1 {
		t.Fatalf("oracle ran with %d shards", oracle.Shards)
	}
	ref := oracle.MergedTrace()
	if len(ref) == 0 {
		t.Fatal("oracle produced an empty trace")
	}
	for _, n := range []int{2, 4, 8} {
		r := runVariant(t, cfg, n)
		if d := simtest.FirstDiff(ref, r.MergedTrace()); d != "" {
			t.Fatalf("shards=%d trace diverges from oracle: %s", n, d)
		}
		if r.FinalTime != oracle.FinalTime || r.Events != oracle.Events ||
			r.Rounds != oracle.Rounds || r.Delivered != oracle.Delivered ||
			r.JobsDone != oracle.JobsDone || r.JobsRequeued != oracle.JobsRequeued {
			t.Fatalf("shards=%d virtual stats diverge: %+v vs %+v", n, r, oracle)
		}
	}
}

func TestShardEquivalenceChaos(t *testing.T) {
	checkEquivalence(t, ChaosSmokeConfig(11))
}

func TestShardEquivalenceContention(t *testing.T) {
	checkEquivalence(t, ContentionSmokeConfig(23))
}

func TestShardEquivalenceSoak(t *testing.T) {
	checkEquivalence(t, SoakSmokeConfig(5))
}

func TestScenarioRunTwiceDeterminism(t *testing.T) {
	cfg := ChaosSmokeConfig(42)
	cfg.Shards = 4
	a := RunScenario(cfg).MergedTrace()
	b := RunScenario(cfg).MergedTrace()
	if d := simtest.FirstDiff(a, b); d != "" {
		t.Fatalf("same seed, same shards, different trace: %s", d)
	}
}

func TestSeedChangesTrace(t *testing.T) {
	a := RunScenario(ChaosSmokeConfig(1)).MergedTrace()
	b := RunScenario(ChaosSmokeConfig(2)).MergedTrace()
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical traces — seed is not wired through")
	}
}

// TestZeroLookaheadForcesOracle: a zero-latency WAN pair leaves no
// conservative window, so Finalize must fall back to the single-kernel
// oracle regardless of the requested shard count — and still run correctly.
func TestZeroLookaheadForcesOracle(t *testing.T) {
	c := NewCluster(Config{Shards: 4, Seed: 1, Trace: true})
	a := c.AddSite("a", 1e8, 1e-4)
	b := c.AddSite("b", 1e8, 1e-4)
	c.Connect(a, b, 1e6, 0) // zero lookahead
	c.Finalize()
	if !c.ForcedOracle() {
		t.Fatal("zero-lookahead pair did not force the oracle path")
	}
	if c.Shards() != 1 {
		t.Fatalf("forced oracle still built %d shards", c.Shards())
	}
	var got []int64
	for _, s := range c.Sites() {
		s := s
		s.OnMessage(func(s *Site, m Message) { got = append(got, m.A) })
	}
	sa := c.Site(a)
	sa.Sim.At(1, func() { sa.Send(b, 1, 7, 0, 0, 0) })
	c.Run()
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("message not delivered on oracle path: %v", got)
	}
}

// TestSameInstantCrossShard: messages from different source sites engineered
// to arrive at the same destination at the identical instant must resolve in
// deterministic (time, src, send-seq) order for every shard count.
func TestSameInstantCrossShard(t *testing.T) {
	build := func(shards int) []int64 {
		c := NewCluster(Config{Shards: shards, Seed: 9})
		const n = 5
		for i := 0; i < n; i++ {
			c.AddSite("s", 1e8, 1e-4)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				c.Connect(i, j, 1e6, 0.010) // identical latency everywhere
			}
		}
		c.Finalize()
		var got []int64
		for _, s := range c.Sites() {
			s.OnMessage(func(s *Site, m Message) {
				if s.Idx == n-1 {
					got = append(got, m.A)
				}
			})
		}
		// Sites 0..3 all send to site 4 at t=1 with zero payload: identical
		// delivery instant 1.010. Each also sends a second message (higher
		// send-seq) at the same instant.
		for i := 0; i < n-1; i++ {
			s := c.Site(i)
			id := int64(i)
			s.Sim.At(1, func() {
				s.Send(n-1, 1, id*10, 0, 0, 0)
				s.Send(n-1, 1, id*10+1, 0, 0, 0)
			})
		}
		c.Run()
		return got
	}
	want := []int64{0, 1, 10, 11, 20, 21, 30, 31}
	for _, shards := range []int{1, 2, 4, 5} {
		got := build(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: got %v want %v", shards, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d same-instant order: got %v want %v", shards, got, want)
			}
		}
	}
}

// TestIdleShardAdvances: a site with no local events (its shard would sit at
// time 0 forever if rounds stalled on it) must still receive late messages,
// and the cluster must terminate.
func TestIdleShardAdvances(t *testing.T) {
	for _, shards := range []int{1, 2, 3} {
		c := NewCluster(Config{Shards: shards, Seed: 3})
		a := c.AddSite("busy", 1e8, 1e-4)
		b := c.AddSite("idle", 1e8, 1e-4)
		d := c.AddSite("idle2", 1e8, 1e-4)
		for _, p := range [][2]int{{a, b}, {a, d}, {b, d}} {
			c.Connect(p[0], p[1], 1e6, 0.020)
		}
		c.Finalize()
		var idleGot []float64
		for _, s := range c.Sites() {
			s.OnMessage(func(s *Site, m Message) {
				if s.Idx == b {
					idleGot = append(idleGot, s.Sim.Now())
				}
			})
		}
		sa := c.Site(a)
		// The busy site churns locally for a while, then messages the idle one.
		for i := 1; i <= 100; i++ {
			sa.Sim.At(float64(i)*0.5, func() {})
		}
		sa.Sim.At(45, func() { sa.Send(b, 1, 1, 0, 0, 0) })
		end := c.Run()
		if len(idleGot) != 1 || idleGot[0] != 45.02 {
			t.Fatalf("shards=%d idle site delivery times %v, want [45.02]", shards, idleGot)
		}
		if end != 50 {
			t.Fatalf("shards=%d final time %v want 50", shards, end)
		}
	}
}

// TestRemoteCrashLandsOnRemoteShard: with shards=2 and an even/odd site
// split, every chaos command from site 0 targets a site on the other shard.
// The victims must requeue running jobs and recover, and the run must stay
// byte-identical to the oracle.
func TestRemoteCrashLandsOnRemoteShard(t *testing.T) {
	cfg := ChaosSmokeConfig(77)
	cfg.Sites = 2 // chaos targets site 1; with 2 shards it is always remote
	cfg.Crashes = 6
	cfg.CrashNodes = 20
	oracle := runVariant(t, cfg, 1)
	sharded := runVariant(t, cfg, 2)
	if sharded.Shards != 2 {
		t.Fatalf("expected 2 shards, got %d", sharded.Shards)
	}
	if oracle.CrashCmds == 0 || oracle.Recoveries == 0 {
		t.Fatalf("chaos never fired: %+v", oracle)
	}
	if oracle.JobsRequeued == 0 {
		t.Skip("no running job hit by the schedule; widen the schedule")
	}
	if d := simtest.FirstDiff(oracle.MergedTrace(), sharded.MergedTrace()); d != "" {
		t.Fatalf("remote-crash trace diverges: %s", d)
	}
}

// TestSharedFabricBaseline: the pre-sharding architecture must run the same
// workload to the same virtual quiescence (virtual stats match the per-site
// fabric) even though its trace bytes are not comparable.
func TestSharedFabricBaseline(t *testing.T) {
	cfg := ChaosSmokeConfig(11)
	ref := runVariant(t, cfg, 1)
	cfg.SharedFabric = true
	legacy := runVariant(t, cfg, 4)
	if legacy.Shards != 1 {
		t.Fatalf("shared fabric must force one kernel, got %d", legacy.Shards)
	}
	if legacy.JobsDone != ref.JobsDone || legacy.HaloAcked != ref.HaloAcked ||
		legacy.CkptAcked != ref.CkptAcked || legacy.LeaseGranted != ref.LeaseGranted {
		t.Fatalf("shared-fabric stats diverge: %+v vs %+v", legacy, ref)
	}
}

// TestReplayIntoPreservesOrder: replaying the merged stream through an
// external hub (the gradsim -trace-jsonl path) must keep timestamps and
// relative order.
func TestReplayIntoPreservesOrder(t *testing.T) {
	r := RunScenario(ChaosSmokeConfig(4))
	tel := telemetry.New()
	buf := telemetry.NewBuffer()
	tel.AddSink(buf)
	r.ReplayInto(tel)
	events := buf.Events()
	merged := r.cluster.MergedEvents()
	if len(events) != len(merged) || len(events) == 0 {
		t.Fatalf("replayed %d events, merged %d", len(events), len(merged))
	}
	for i := range events {
		if events[i].T != merged[i].T || events[i].Type != merged[i].Type {
			t.Fatalf("replay reordered event %d: %+v vs %+v", i, events[i], merged[i])
		}
		if events[i].Seq != uint64(i+1) {
			t.Fatalf("hub restamp broke seq at %d: %d", i, events[i].Seq)
		}
	}
}
