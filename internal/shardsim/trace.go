package shardsim

import (
	"bytes"
	"sort"

	"grads/internal/telemetry"
)

// MergedEvents returns every site's telemetry events merged into the
// canonical global order: ascending (T, site index, site-local sequence),
// with the sequence numbers restamped to the merged position so the result
// reads as one stream. Each site's hub stamps events with its own
// monotonically increasing sequence, and a site's behavior depends only on
// its timestamped inputs, so both the per-site streams and this merged
// order are invariant under the shard count — the byte-equivalence the
// differential tests and the CI shard-equivalence matrix entry enforce.
func (c *Cluster) MergedEvents() []telemetry.Event {
	type rec struct {
		e    telemetry.Event
		site int
	}
	var all []rec
	for i, s := range c.sites {
		if s.buf == nil {
			continue
		}
		for _, e := range s.buf.Events() {
			all = append(all, rec{e, i})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].e.T != all[b].e.T {
			return all[a].e.T < all[b].e.T
		}
		if all[a].site != all[b].site {
			return all[a].site < all[b].site
		}
		return all[a].e.Seq < all[b].e.Seq
	})
	out := make([]telemetry.Event, len(all))
	for i, r := range all {
		r.e.Seq = uint64(i + 1)
		out[i] = r.e
	}
	return out
}

// MergedTrace encodes the merged event stream as JSONL bytes, the format
// the determinism CI compares across shard counts.
func (c *Cluster) MergedTrace() []byte {
	var buf bytes.Buffer
	sink := telemetry.NewJSONL(&buf)
	for _, e := range c.MergedEvents() {
		sink.Emit(e)
	}
	sink.Close()
	return buf.Bytes()
}

// ReplayInto re-emits the merged stream through an external hub (gradsim's
// shared -trace-jsonl pipeline). The hub restamps sequence numbers in
// emission order, preserving the merged order; its clock must be detached
// first (SetClock(nil)) or the original virtual timestamps would be
// overwritten.
func (c *Cluster) ReplayInto(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	tel.SetClock(nil)
	for _, e := range c.MergedEvents() {
		tel.Emit(e)
	}
}
