package shardsim

import "testing"

// The shard-scaling benchmarks run the full 10k-node ScaleConfig workload
// (16 mega-sites x 640 nodes, staging-heavy) to quiescence, tracing off.
//
// BenchmarkShardScaleSingleKernel is the pre-sharding architecture: one
// kernel and one global netsim fabric, so every flow event pays the
// all-active-flows advance/reschedule/completion scans across all 16 sites'
// traffic. BenchmarkShardScaleN runs the sharded kernel (per-site fabrics,
// N worker kernels). BENCH_shard.json gates ShardScale4 against
// SingleKernel; the 4-vs-1-shard pair additionally shows the parallel
// speedup on multi-core hosts (on a single core the two are equal up to
// barrier overhead, and the fabric split carries the gate).
func benchScale(b *testing.B, shards int, sharedFabric bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := ScaleConfig(1)
		cfg.Shards = shards
		cfg.SharedFabric = sharedFabric
		r := RunScenario(cfg)
		if len(r.Violations) > 0 {
			b.Fatalf("invariants violated: %v", r.Violations)
		}
	}
}

func BenchmarkShardScaleSingleKernel(b *testing.B) { benchScale(b, 1, true) }
func BenchmarkShardScale1(b *testing.B)            { benchScale(b, 1, false) }
func BenchmarkShardScale2(b *testing.B)            { benchScale(b, 2, false) }
func BenchmarkShardScale4(b *testing.B)            { benchScale(b, 4, false) }
func BenchmarkShardScale8(b *testing.B)            { benchScale(b, 8, false) }
