// Package shardsim runs the multi-site Grid emulation on several simcore
// kernels at once, synchronized conservatively. Each Site owns its own
// telemetry hub, RNG and netsim fabric (the dirty-component boundary the
// incremental solver computes is made structural: a site's LAN never shares
// a solver with another site's), and sites are assigned round-robin to
// shards — worker kernels that advance in barrier-synchronous rounds.
//
// Time synchronization is classic conservative (CMB-style) lookahead: the
// minimum WAN latency between any two sites bounds how far ahead of the
// global lower bound on timestamps (LBTS) any shard may safely run. Every
// round the coordinator computes T, the earliest pending event or in-flight
// message anywhere, opens the window [T, H) with H = max(T+minLookahead,
// nextafter(T)), injects every message due before H, and lets all shards
// process their queues up to (but excluding) H in parallel. A message sent
// at time t carries Deliver >= t + minLookahead >= H, so nothing sent during
// a round can land inside it.
//
// Determinism is by construction rather than by locking: the round sequence
// depends only on event and delivery timestamps, which are site-local facts;
// messages are injected at barriers in a canonical (Deliver, Src, send-seq)
// order; and each site's behavior depends only on its own timestamped
// inputs. Runs with any shard count — including the single-kernel oracle at
// Shards=1, which executes the identical round structure inline on one
// kernel — therefore produce byte-identical merged traces (see MergedTrace
// and the differential tests).
package shardsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"grads/internal/netsim"
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// Config configures a Cluster.
type Config struct {
	// Shards is the requested number of worker kernels. It is clamped to
	// [1, number of sites], and forced to 1 when any WAN pair has
	// non-positive latency (no lookahead — the oracle path) or when
	// SharedFabric is set.
	Shards int

	// Seed derives every site's RNG and each shard kernel's seed.
	Seed int64

	// Trace attaches a buffer sink to every site hub so MergedTrace can
	// reconstruct the canonical global stream. Benchmarks leave it off.
	Trace bool

	// SharedFabric recreates the pre-sharding architecture for baseline
	// benchmarks: one kernel and ONE netsim.Network carrying every site's
	// LAN link, so every flow event pays the global all-flows costs the
	// per-site fabrics eliminate. It forces Shards=1. Traces from a shared
	// fabric are not byte-comparable to per-site-fabric runs (the solver's
	// advance partition differs), so it is excluded from equivalence
	// checks and used only by BENCH_shard.
	SharedFabric bool
}

// Message is one cross-site event in flight. Payload fields are plain data
// (no pointers) so a message can cross shard goroutines without sharing.
type Message struct {
	Deliver  float64 // arrival virtual time at Dst
	Src, Dst int     // site indices
	Kind     int     // scenario-defined discriminator
	A, B     int64   // scenario payload
	F        float64 // scenario payload

	seq uint64 // per-sender send sequence; breaks same-instant ties
}

// Handler consumes a delivered message on the destination site's shard.
type Handler func(s *Site, m Message)

// Site is one logical site of the emulated Grid: a name, its place in the
// WAN, and site-private simulation state. All fields are owned by the shard
// the site is assigned to; nothing here is shared across shards.
type Site struct {
	Idx  int
	Name string

	Sim *simcore.Sim         // the shard kernel this site runs on
	Tel *telemetry.Telemetry // site-local hub; clock bound to Sim
	Net *netsim.Network      // site-local fabric (shared in SharedFabric mode)
	LAN *netsim.Link         // the site LAN inside Net
	RNG *rand.Rand           // site-private; never draw from Sim.Rand

	cl       *Cluster
	shard    int
	buf      *telemetry.Buffer
	handler  Handler
	outbox   []Message
	sendSeq  uint64
	nextFree []float64 // per destination: when this directed WAN path frees up
}

// OnMessage installs the site's message handler. It must be set before the
// cluster runs if the site can receive messages.
func (s *Site) OnMessage(h Handler) { s.handler = h }

// Tracing reports whether the site collects trace events (Config.Trace).
// Scenario hot paths guard event construction with it.
func (s *Site) Tracing() bool { return s.buf != nil }

// Emit publishes a trace event through the site's hub when tracing is on
// (a no-op otherwise, so benchmark runs skip the sink entirely). The hub
// stamps the event with the shard kernel's virtual time and the site-local
// sequence number; MergedTrace later orders events globally by
// (T, site, seq).
func (s *Site) Emit(e telemetry.Event) {
	if s.buf == nil {
		return
	}
	s.Tel.Emit(e)
}

// Send transmits a message of size bytes to site dst, serializing on this
// site's directed WAN path to dst (back-to-back sends queue behind each
// other) and paying the pair latency. It returns the delivery time. The
// computation uses only sender-local state, so delivery times are identical
// under any shard placement. Sending to self panics: local causality has no
// lookahead, use the kernel directly.
func (s *Site) Send(dst, kind int, a, b int64, f, bytes float64) float64 {
	if dst == s.Idx {
		panic(fmt.Sprintf("shardsim: site %d sending to itself", dst))
	}
	lat := s.cl.latency[s.Idx][dst]
	if math.IsNaN(lat) {
		panic(fmt.Sprintf("shardsim: sites %d and %d are not connected", s.Idx, dst))
	}
	start := s.Sim.Now()
	if nf := s.nextFree[dst]; nf > start {
		start = nf
	}
	var tx float64
	if bytes > 0 {
		tx = bytes / s.cl.bandwidth[s.Idx][dst]
	}
	s.nextFree[dst] = start + tx
	deliver := start + tx + lat
	s.sendSeq++
	s.outbox = append(s.outbox, Message{
		Deliver: deliver, Src: s.Idx, Dst: dst,
		Kind: kind, A: a, B: b, F: f, seq: s.sendSeq,
	})
	return deliver
}

// shard is one worker kernel plus its barrier-round plumbing.
type shard struct {
	sim   *simcore.Sim
	bound chan float64
	done  chan struct{}
}

// Cluster owns the shards, the WAN matrix and the inter-shard mail. Build
// one with NewCluster, add sites and WAN links, Finalize, install scenario
// state, then Run.
type Cluster struct {
	cfg   Config
	sites []*Site

	// WAN matrix, symmetric. latency NaN = unconnected.
	latency   [][]float64
	bandwidth [][]float64

	decls []siteDecl
	conns []connDecl

	shards       []*shard
	minLA        float64
	forcedOracle bool
	finalized    bool

	pending       [][]Message // per destination site, messages awaiting injection
	injectScratch []Message

	rounds    uint64
	delivered uint64
}

// siteDecl holds AddSite parameters until Finalize builds the kernels.
type siteDecl struct {
	name          string
	lanBW, lanLat float64
}

// connDecl holds Connect parameters until Finalize builds the WAN matrix.
type connDecl struct {
	i, j    int
	bw, lat float64
}

// NewCluster creates an empty cluster.
func NewCluster(cfg Config) *Cluster {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	return &Cluster{cfg: cfg}
}

// AddSite declares a site with a LAN of the given bandwidth (bytes/s) and
// latency (seconds) and returns its index. Sites must be declared before
// Finalize.
func (c *Cluster) AddSite(name string, lanBW, lanLat float64) int {
	if c.finalized {
		panic("shardsim: AddSite after Finalize")
	}
	c.decls = append(c.decls, siteDecl{name, lanBW, lanLat})
	return len(c.decls) - 1
}

// Connect declares the symmetric WAN path between sites i and j with the
// given bandwidth (bytes/s) and latency (seconds). Must be called for every
// pair that exchanges messages, before Finalize.
func (c *Cluster) Connect(i, j int, bw, lat float64) {
	if c.finalized {
		panic("shardsim: Connect after Finalize")
	}
	c.conns = append(c.conns, connDecl{i, j, bw, lat})
}

// Finalize builds the shard kernels and per-site state. The effective shard
// count is Config.Shards clamped to the site count, forced to 1 when the
// minimum WAN latency is non-positive (zero lookahead: conservative windows
// cannot open, so the single-kernel oracle path is used) or when
// SharedFabric is set.
func (c *Cluster) Finalize() {
	if c.finalized {
		panic("shardsim: Finalize twice")
	}
	c.finalized = true
	ds, cs := c.decls, c.conns
	c.decls, c.conns = nil, nil
	n := len(ds)
	if n == 0 {
		panic("shardsim: no sites")
	}

	c.latency = make([][]float64, n)
	c.bandwidth = make([][]float64, n)
	for i := range c.latency {
		c.latency[i] = make([]float64, n)
		c.bandwidth[i] = make([]float64, n)
		for j := range c.latency[i] {
			c.latency[i][j] = math.NaN()
		}
	}
	c.minLA = math.Inf(1)
	for _, cn := range cs {
		c.latency[cn.i][cn.j], c.latency[cn.j][cn.i] = cn.lat, cn.lat
		c.bandwidth[cn.i][cn.j], c.bandwidth[cn.j][cn.i] = cn.bw, cn.bw
		if cn.lat < c.minLA {
			c.minLA = cn.lat
		}
	}
	if len(cs) > 0 && c.minLA <= 0 {
		c.forcedOracle = true
	}

	shards := c.cfg.Shards
	if shards > n {
		shards = n
	}
	if c.forcedOracle || c.cfg.SharedFabric {
		shards = 1
	}
	c.shards = make([]*shard, shards)
	for i := range c.shards {
		c.shards[i] = &shard{sim: simcore.New(c.cfg.Seed + int64(i)*7907)}
	}

	var sharedNet *netsim.Network
	if c.cfg.SharedFabric {
		sharedNet = netsim.New(c.shards[0].sim)
	}

	c.sites = make([]*Site, n)
	c.pending = make([][]Message, n)
	for i, d := range ds {
		sh := i % shards
		sim := c.shards[sh].sim
		s := &Site{
			Idx:      i,
			Name:     d.name,
			Sim:      sim,
			Tel:      telemetry.New(),
			RNG:      rand.New(rand.NewSource(c.cfg.Seed + 104729*int64(i+1))),
			cl:       c,
			shard:    sh,
			nextFree: make([]float64, n),
		}
		if c.cfg.Trace {
			s.buf = telemetry.NewBuffer()
			s.Tel.AddSink(s.buf)
		}
		s.Tel.SetClock(sim.Now)
		if sharedNet != nil {
			s.Net = sharedNet
		} else {
			s.Net = netsim.New(sim)
		}
		s.LAN = s.Net.AddLink("lan/"+d.name, d.lanBW, d.lanLat)
		c.sites[i] = s
	}
}

// Sites returns the cluster's sites in index order.
func (c *Cluster) Sites() []*Site { return c.sites }

// Site returns the site at index i.
func (c *Cluster) Site(i int) *Site { return c.sites[i] }

// Shards returns the effective shard count after Finalize.
func (c *Cluster) Shards() int { return len(c.shards) }

// ForcedOracle reports whether zero lookahead forced the single-kernel
// oracle path regardless of the requested shard count.
func (c *Cluster) ForcedOracle() bool { return c.forcedOracle }

// MinLookahead returns the conservative lookahead: the minimum WAN latency
// over all connected pairs.
func (c *Cluster) MinLookahead() float64 { return c.minLA }

// Rounds returns the number of barrier rounds executed so far.
func (c *Cluster) Rounds() uint64 { return c.rounds }

// Delivered returns the number of cross-site messages injected so far.
func (c *Cluster) Delivered() uint64 { return c.delivered }

// EventsFired sums fired kernel events over all shards.
func (c *Cluster) EventsFired() uint64 {
	var n uint64
	for _, sh := range c.shards {
		n += sh.sim.EventsFired()
	}
	return n
}

// Run executes barrier rounds until no shard has a pending event and no
// message is in flight, and returns the latest shard virtual time.
func (c *Cluster) Run() float64 { return c.RunUntil(math.Inf(1)) }

// RunUntil executes barrier rounds while the global lower bound on
// timestamps is <= horizon, then returns the latest shard virtual time.
// Events and messages beyond the horizon stay queued.
func (c *Cluster) RunUntil(horizon float64) float64 {
	if !c.finalized {
		panic("shardsim: Run before Finalize")
	}
	parallel := len(c.shards) > 1
	if parallel {
		for _, sh := range c.shards {
			sh.bound = make(chan float64)
			sh.done = make(chan struct{})
			go func(sh *shard) {
				for b := range sh.bound {
					sh.sim.RunBefore(b)
					sh.done <- struct{}{}
				}
			}(sh)
		}
	}
	for {
		// T: the global lower bound on anything that can still happen.
		T := math.Inf(1)
		for _, sh := range c.shards {
			if t, ok := sh.sim.NextEventTime(); ok && t < T {
				T = t
			}
		}
		for _, q := range c.pending {
			for _, m := range q {
				if m.Deliver < T {
					T = m.Deliver
				}
			}
		}
		if T > horizon || math.IsInf(T, 1) {
			break
		}
		// Round window [T, H). Messages sent inside it deliver at or after
		// T+minLA <= H, so they cannot land inside the window; nextafter
		// guarantees progress when the lookahead underflows at large T.
		H := math.Nextafter(T, math.Inf(1))
		if th := T + c.minLA; th > H {
			H = th
		}
		c.inject(H)
		c.rounds++
		if parallel {
			for _, sh := range c.shards {
				sh.bound <- H
			}
			for _, sh := range c.shards {
				<-sh.done
			}
		} else {
			c.shards[0].sim.RunBefore(H)
		}
		c.collect()
	}
	if parallel {
		for _, sh := range c.shards {
			close(sh.bound)
		}
	}
	var now float64
	for _, sh := range c.shards {
		if t := sh.sim.Now(); t > now {
			now = t
		}
	}
	return now
}

// inject schedules every pending message due before bound onto its
// destination site, visiting destinations in site-index order and messages
// in (Deliver, Src, send-seq) order — the canonical order that makes the
// injection (and hence each destination kernel's sequence numbering)
// independent of shard placement.
func (c *Cluster) inject(bound float64) {
	for dst, q := range c.pending {
		due := c.injectScratch[:0]
		rest := q[:0]
		for _, m := range q {
			if m.Deliver < bound {
				due = append(due, m)
			} else {
				rest = append(rest, m)
			}
		}
		c.injectScratch = due[:0]
		c.pending[dst] = rest
		if len(due) == 0 {
			continue
		}
		sort.Slice(due, func(a, b int) bool {
			if due[a].Deliver != due[b].Deliver {
				return due[a].Deliver < due[b].Deliver
			}
			if due[a].Src != due[b].Src {
				return due[a].Src < due[b].Src
			}
			return due[a].seq < due[b].seq
		})
		s := c.sites[dst]
		for _, m := range due {
			m := m
			s.Sim.At(m.Deliver, func() { s.handler(s, m) })
			c.delivered++
		}
	}
}

// collect drains every site's outbox into the per-destination pending
// queues, in site-index order. It runs at the barrier, after all shards
// have parked.
func (c *Cluster) collect() {
	for _, s := range c.sites {
		for _, m := range s.outbox {
			c.pending[m.Dst] = append(c.pending[m.Dst], m)
		}
		s.outbox = s.outbox[:0]
	}
}
