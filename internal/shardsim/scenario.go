package shardsim

import (
	"fmt"
	"math/rand"

	"grads/internal/netsim"
	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Trace event types of the multi-site scenario (dotted component.verb style,
// see telemetry.EventType).
const (
	evStageDone telemetry.EventType = "stage.done"
	evJobReq    telemetry.EventType = "job.requeue"
	evHaloSend  telemetry.EventType = "halo.send"
	evHaloRecv  telemetry.EventType = "halo.recv"
	evHaloAck   telemetry.EventType = "halo.ack"
	evCkptSend  telemetry.EventType = "ckpt.send"
	evCkptAck   telemetry.EventType = "ckpt.ack"
	evLeaseDeny telemetry.EventType = "lease.deny"
)

// Cross-site message kinds of the multi-site scenario.
const (
	kindHalo = iota + 1
	kindHaloAck
	kindCkpt
	kindCkptAck
	kindLeaseReq
	kindLeaseGrant
	kindLeaseDeny
	kindLeaseRelease
	kindCrash
)

// ScenarioConfig sizes the seeded multi-site workload the shard-equivalence
// harness and the scale experiment run: per-site open-loop job streams with
// LAN input staging (netsim flows), an MPI-style halo-exchange ring, SRS-style
// checkpoint replication to a buddy site, metascheduler-style lease traffic
// against a broker at site 0, and chaos crash commands landing on remote
// shards. Every random draw comes from per-site (or the chaos coordinator's)
// RNGs, never from a kernel's, so behavior is identical under any shard
// placement.
type ScenarioConfig struct {
	Sites        int
	NodesPerSite int
	Seed         int64
	Shards       int
	SharedFabric bool // pre-sharding baseline fabric; see Config.SharedFabric
	Trace        bool // collect per-site telemetry for the merged trace

	Jobs        int     // jobs per site
	ArrivalRate float64 // job arrivals per second per site
	WorkMeanGF  float64 // mean job size in Gflop
	StageKB     float64 // input staged over the site LAN per job
	Stagers     int     // staging processes per site

	HaloRounds int     // ring exchanges per site (site i -> i+1 mod S)
	HaloPeriod float64 // seconds between exchanges
	HaloKB     float64

	CkptRounds int // checkpoint replications to the buddy site
	CkptPeriod float64
	CkptKB     float64

	LeaseRounds  int // lease requests per non-broker site
	LeasePeriod  float64
	LeaseHold    float64 // mean hold before release
	BrokerTokens int     // broker grant pool (site 0)

	Crashes       int     // chaos crash commands (remote sites only)
	CrashNodes    int     // nodes taken down per command
	CrashDowntime float64 // mean downtime
	CrashSpread   float64 // commands drawn uniformly in (0, CrashSpread]

	WANLatencyMS float64 // uniform pairwise WAN latency (the lookahead)
	WANBW        float64 // bytes/s per directed site pair
	LANBW        float64 // bytes/s per site LAN
	LANLatency   float64
}

// ChaosSmokeConfig is the seeded chaos workload of the shard-equivalence
// suite: a small grid with node crashes landing on remote shards.
func ChaosSmokeConfig(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Sites: 6, NodesPerSite: 24, Seed: seed, Shards: 1, Trace: true,
		Jobs: 40, ArrivalRate: 0.5, WorkMeanGF: 40, StageKB: 512, Stagers: 3,
		HaloRounds: 20, HaloPeriod: 4, HaloKB: 64,
		CkptRounds: 10, CkptPeriod: 8, CkptKB: 1024,
		LeaseRounds: 8, LeasePeriod: 10, LeaseHold: 6, BrokerTokens: 3,
		Crashes: 8, CrashNodes: 6, CrashDowntime: 15, CrashSpread: 60,
		WANLatencyMS: 30, WANBW: 1.25e6, LANBW: 125e6, LANLatency: 100e-6,
	}
}

// ContentionSmokeConfig is the seeded contention workload: a flash crowd of
// jobs against few nodes and a starved lease broker, no faults.
func ContentionSmokeConfig(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Sites: 8, NodesPerSite: 8, Seed: seed, Shards: 1, Trace: true,
		Jobs: 60, ArrivalRate: 4, WorkMeanGF: 60, StageKB: 2048, Stagers: 2,
		HaloRounds: 12, HaloPeriod: 3, HaloKB: 256,
		CkptRounds: 6, CkptPeriod: 9, CkptKB: 4096,
		LeaseRounds: 16, LeasePeriod: 2, LeaseHold: 5, BrokerTokens: 2,
		WANLatencyMS: 11, WANBW: 1.25e6, LANBW: 12.5e6, LANLatency: 100e-6,
	}
}

// SoakSmokeConfig is the seeded mixed workload with every traffic class and
// chaos on; RunScenario's invariant sweep must come back clean on it.
func SoakSmokeConfig(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Sites: 10, NodesPerSite: 16, Seed: seed, Shards: 1, Trace: true,
		Jobs: 30, ArrivalRate: 1, WorkMeanGF: 50, StageKB: 768, Stagers: 2,
		HaloRounds: 15, HaloPeriod: 5, HaloKB: 128,
		CkptRounds: 8, CkptPeriod: 7, CkptKB: 2048,
		LeaseRounds: 10, LeasePeriod: 6, LeaseHold: 4, BrokerTokens: 4,
		Crashes: 10, CrashNodes: 10, CrashDowntime: 12, CrashSpread: 70,
		WANLatencyMS: 30, WANBW: 1.25e6, LANBW: 125e6, LANLatency: 100e-6,
	}
}

// ScaleConfig is the 10k-node synthetic topology of the scaling-curve
// experiment and BENCH_shard: 16 mega-sites of 640 nodes (10240 total) under
// a staging-heavy job stream, so flow churn dominates and the per-site
// fabrics' elimination of the global all-flows scans carries the speedup.
func ScaleConfig(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Sites: 16, NodesPerSite: 640, Seed: seed, Shards: 1,
		Jobs: 1200, ArrivalRate: 25, WorkMeanGF: 30, StageKB: 8192, Stagers: 384,
		HaloRounds: 24, HaloPeriod: 2, HaloKB: 256,
		CkptRounds: 12, CkptPeriod: 4, CkptKB: 4096,
		LeaseRounds: 20, LeasePeriod: 2.5, LeaseHold: 3, BrokerTokens: 6,
		Crashes: 12, CrashNodes: 64, CrashDowntime: 10, CrashSpread: 45,
		WANLatencyMS: 30, WANBW: 12.5e6, LANBW: 125e6, LANLatency: 100e-6,
	}
}

// Result aggregates a scenario run. Every field except the cluster handle is
// derived from virtual-time state, so it is identical across shard counts on
// the per-site fabric.
type Result struct {
	Shards       int
	ForcedOracle bool
	FinalTime    float64
	Rounds       uint64
	Delivered    uint64
	Events       uint64

	JobsDone     int
	JobsRequeued int
	StagedMB     float64
	HaloSent     int
	HaloAcked    int
	CkptSent     int
	CkptAcked    int
	LeaseGranted int
	LeaseDenied  int
	CrashCmds    int
	Recoveries   int

	Violations []string

	cluster *Cluster
}

// MergedTrace returns the canonical merged JSONL trace (empty without
// ScenarioConfig.Trace).
func (r *Result) MergedTrace() []byte { return r.cluster.MergedTrace() }

// ReplayInto re-emits the merged trace through an external telemetry hub.
func (r *Result) ReplayInto(tel *telemetry.Telemetry) { r.cluster.ReplayInto(tel) }

// siteState is the scenario's per-site mutable state, owned by the site's
// shard.
type siteState struct {
	s   *Site
	cfg ScenarioConfig

	flops   []float64 // per node, from topology.SyntheticSite
	down    []bool
	running []int64 // job id per node, -1 when idle
	doneEv  []simcore.Event
	queue   []int64
	stageCh *simcore.Chan
	staged  int
	jobWork []float64 // per job, Gflop

	jobsDone     int
	jobsRequeued int
	stagedBytes  float64
	haloSent     int
	haloAcked    int
	ckptSent     int
	ckptAcked    int
	leaseGranted int
	leaseDenied  int
	leaseReqs    int
	recoveries   int

	// broker state (site 0 only)
	tokens    int
	crashCmds int
}

// RunScenario builds the workload on a Cluster, runs it to completion and
// sweeps the end-of-run invariants (job conservation, ack/sent matching,
// broker token conservation). It is the entry point for the differential
// tests, the scale experiment and BENCH_shard.
func RunScenario(cfg ScenarioConfig) *Result {
	if cfg.Stagers < 1 {
		cfg.Stagers = 1
	}
	cl := NewCluster(Config{Shards: cfg.Shards, Seed: cfg.Seed, SharedFabric: cfg.SharedFabric, Trace: cfg.Trace})
	for i := 0; i < cfg.Sites; i++ {
		cl.AddSite(fmt.Sprintf("site%02d", i), cfg.LANBW, cfg.LANLatency)
	}
	for i := 0; i < cfg.Sites; i++ {
		for j := i + 1; j < cfg.Sites; j++ {
			cl.Connect(i, j, cfg.WANBW, cfg.WANLatencyMS/1e3)
		}
	}
	cl.Finalize()

	states := make([]*siteState, cfg.Sites)
	for i, s := range cl.Sites() {
		states[i] = newSiteState(s, cfg)
	}
	for _, st := range states {
		st.install()
	}
	if cfg.Crashes > 0 && cfg.Sites > 1 {
		states[0].installChaos()
	}

	final := cl.Run()

	r := &Result{
		Shards:       cl.Shards(),
		ForcedOracle: cl.ForcedOracle(),
		FinalTime:    final,
		Rounds:       cl.Rounds(),
		Delivered:    cl.Delivered(),
		Events:       cl.EventsFired(),
		cluster:      cl,
	}
	for _, st := range states {
		r.JobsDone += st.jobsDone
		r.JobsRequeued += st.jobsRequeued
		r.StagedMB += st.stagedBytes / 1e6
		r.HaloSent += st.haloSent
		r.HaloAcked += st.haloAcked
		r.CkptSent += st.ckptSent
		r.CkptAcked += st.ckptAcked
		r.LeaseGranted += st.leaseGranted
		r.LeaseDenied += st.leaseDenied
		r.CrashCmds += st.crashCmds
		r.Recoveries += st.recoveries
	}
	r.Violations = checkInvariants(cfg, states, r)
	return r
}

// checkInvariants sweeps the conservation laws the scenario must satisfy at
// quiescence regardless of fault schedule or shard count.
func checkInvariants(cfg ScenarioConfig, states []*siteState, r *Result) []string {
	var v []string
	if want := cfg.Sites * cfg.Jobs; r.JobsDone != want {
		v = append(v, fmt.Sprintf("job conservation: %d done, want %d", r.JobsDone, want))
	}
	if r.HaloAcked != r.HaloSent {
		v = append(v, fmt.Sprintf("halo acks: %d acked, %d sent", r.HaloAcked, r.HaloSent))
	}
	if r.CkptAcked != r.CkptSent {
		v = append(v, fmt.Sprintf("ckpt acks: %d acked, %d sent", r.CkptAcked, r.CkptSent))
	}
	if states[0].tokens != cfg.BrokerTokens {
		v = append(v, fmt.Sprintf("broker tokens: %d free at end, want %d", states[0].tokens, cfg.BrokerTokens))
	}
	reqs := 0
	for _, st := range states {
		reqs += st.leaseReqs
	}
	if r.LeaseGranted+r.LeaseDenied != reqs {
		v = append(v, fmt.Sprintf("lease outcomes: %d grant + %d deny != %d requests",
			r.LeaseGranted, r.LeaseDenied, reqs))
	}
	for _, st := range states {
		for n, down := range st.down {
			if down {
				v = append(v, fmt.Sprintf("site %d node %d still down at quiescence", st.s.Idx, n))
				break
			}
		}
		if len(st.queue) != 0 {
			v = append(v, fmt.Sprintf("site %d: %d jobs stranded in queue", st.s.Idx, len(st.queue)))
		}
	}
	return v
}

func newSiteState(s *Site, cfg ScenarioConfig) *siteState {
	st := &siteState{
		s: s, cfg: cfg,
		flops:   make([]float64, cfg.NodesPerSite),
		down:    make([]bool, cfg.NodesPerSite),
		running: make([]int64, cfg.NodesPerSite),
		doneEv:  make([]simcore.Event, cfg.NodesPerSite),
		stageCh: simcore.NewChan(s.Sim, 0),
		jobWork: make([]float64, cfg.Jobs),
		tokens:  cfg.BrokerTokens,
	}
	for i, sp := range topology.SyntheticSite(s.Name, cfg.NodesPerSite) {
		st.flops[i] = sp.Flops()
	}
	for i := range st.running {
		st.running[i] = -1
	}
	return st
}

// install draws the site's whole schedule from its private RNG and plants
// the initial events. Sites are installed in index order, which fixes the
// per-kernel event numbering for any placement.
func (st *siteState) install() {
	cfg, s, rng := st.cfg, st.s, st.s.RNG

	// Open-loop job arrivals with exponential gaps; work drawn per job.
	t := 0.0
	for j := 0; j < cfg.Jobs; j++ {
		t += rng.ExpFloat64() / cfg.ArrivalRate
		st.jobWork[j] = cfg.WorkMeanGF * (0.5 + rng.ExpFloat64())
		job := int64(j)
		at := t
		s.Sim.At(at, func() {
			s.Emit(telemetry.Event{Type: telemetry.EvJobSubmit, Comp: "shardjob", Name: s.Name,
				Args: []telemetry.Arg{telemetry.I("job", int(job))}})
			st.stageCh.TryPut(job)
		})
	}

	// Staging pool: a few processes drain the channel through the site LAN.
	for w := 0; w < cfg.Stagers; w++ {
		s.Sim.Spawn(fmt.Sprintf("%s/stager%d", s.Name, w), st.stagerBody)
	}

	// Halo-exchange ring: site i sends to i+1 mod S on a jittered period.
	if cfg.Sites > 1 {
		next := (s.Idx + 1) % cfg.Sites
		for r := 0; r < cfg.HaloRounds; r++ {
			at := float64(r+1) * cfg.HaloPeriod * (0.9 + 0.2*rng.Float64())
			round := int64(r)
			s.Sim.At(at, func() {
				st.haloSent++
				s.Emit(telemetry.Event{Type: evHaloSend, Comp: "halo", Name: s.Name,
					Args: []telemetry.Arg{telemetry.I("round", int(round))}})
				s.Send(next, kindHalo, round, 0, 0, cfg.HaloKB*1024)
			})
		}
	}

	// Checkpoint replication to the buddy site.
	if cfg.Sites > 1 {
		buddy := (s.Idx + cfg.Sites/2) % cfg.Sites
		if buddy == s.Idx {
			buddy = (s.Idx + 1) % cfg.Sites
		}
		for r := 0; r < cfg.CkptRounds; r++ {
			at := float64(r+1) * cfg.CkptPeriod * (0.85 + 0.3*rng.Float64())
			round := int64(r)
			s.Sim.At(at, func() {
				st.ckptSent++
				s.Emit(telemetry.Event{Type: evCkptSend, Comp: "srsrep", Name: s.Name,
					Args: []telemetry.Arg{telemetry.I("epoch", int(round))}})
				s.Send(buddy, kindCkpt, round, 0, 0, cfg.CkptKB*1024)
			})
		}
	}

	// Lease traffic against the broker at site 0.
	if s.Idx != 0 {
		for r := 0; r < cfg.LeaseRounds; r++ {
			at := float64(r+1) * cfg.LeasePeriod * (0.8 + 0.4*rng.Float64())
			hold := cfg.LeaseHold * (0.5 + rng.ExpFloat64())
			req := int64(s.Idx)*1_000_000 + int64(r)
			s.Sim.At(at, func() {
				st.leaseReqs++
				s.Send(0, kindLeaseReq, req, int64(hold*1e6), hold, 256)
			})
		}
	}

	s.OnMessage(func(_ *Site, m Message) { st.onMessage(m) })
}

// installChaos plants the chaos coordinator on site 0: a crash/recover
// command schedule drawn from its own RNG (distinct from every site's
// workload stream) and delivered to remote victims over the WAN.
func (st *siteState) installChaos() {
	cfg, s := st.cfg, st.s
	chaos := rand.New(rand.NewSource(cfg.Seed*31 + 7))
	for c := 0; c < cfg.Crashes; c++ {
		at := cfg.CrashSpread * (0.1 + 0.9*chaos.Float64())
		victim := 1 + chaos.Intn(cfg.Sites-1)
		nodes := 1 + chaos.Intn(cfg.CrashNodes)
		downtime := cfg.CrashDowntime * (0.5 + chaos.Float64())
		s.Sim.At(at, func() {
			st.crashCmds++
			s.Emit(telemetry.Event{Type: telemetry.EvFaultInject, Comp: "chaos", Name: s.Name,
				Args: []telemetry.Arg{telemetry.I("victim", victim), telemetry.I("nodes", nodes)}})
			s.Send(victim, kindCrash, int64(nodes), 0, downtime, 128)
		})
	}
}

// stagerBody is one staging process: it drains job ids from the channel,
// moves the input bytes over the site LAN and hands the job to the node
// queue. A negative id is the exit sentinel.
func (st *siteState) stagerBody(p *simcore.Proc) {
	s, cfg := st.s, st.cfg
	route := []*netsim.Link{s.LAN}
	for {
		v, err := st.stageCh.Get(p)
		if err != nil {
			return
		}
		job := v.(int64)
		if job < 0 {
			return
		}
		moved, err := s.Net.Transfer(p, route, cfg.StageKB*1024)
		if err != nil {
			return
		}
		st.stagedBytes += moved
		s.Emit(telemetry.Event{Type: evStageDone, Comp: "stage", Name: s.Name,
			Args: []telemetry.Arg{telemetry.I("job", int(job))}})
		st.queue = append(st.queue, job)
		st.dispatch()
		st.staged++
		if st.staged == cfg.Jobs {
			for w := 0; w < cfg.Stagers; w++ {
				st.stageCh.TryPut(int64(-1))
			}
		}
	}
}

// dispatch assigns queued jobs to free up nodes, fastest node first (ties to
// the lowest index), until one side runs out.
func (st *siteState) dispatch() {
	for len(st.queue) > 0 {
		best := -1
		for n := range st.flops {
			if st.down[n] || st.running[n] >= 0 {
				continue
			}
			if best < 0 || st.flops[n] > st.flops[best] {
				best = n
			}
		}
		if best < 0 {
			return
		}
		job := st.queue[0]
		st.queue = st.queue[1:]
		st.start(best, job)
	}
}

// start runs job on node, scheduling its completion.
func (st *siteState) start(node int, job int64) {
	s := st.s
	st.running[node] = job
	dur := st.jobWork[job] * 1e9 / st.flops[node]
	st.doneEv[node] = s.Sim.Schedule(dur, func() {
		st.running[node] = -1
		st.jobsDone++
		s.Emit(telemetry.Event{Type: telemetry.EvJobDone, Comp: "shardjob", Name: s.Name,
			Args: []telemetry.Arg{telemetry.I("job", int(job)), telemetry.I("node", node)}})
		st.dispatch()
	})
}

// applyCrash takes count nodes down for downtime seconds, requeueing their
// running jobs at the head of the queue, and schedules the recovery.
func (st *siteState) applyCrash(count int, downtime float64) {
	s := st.s
	var victims []int
	for n := range st.down {
		if len(victims) == count {
			break
		}
		if !st.down[n] {
			victims = append(victims, n)
		}
	}
	for _, n := range victims {
		st.down[n] = true
		if job := st.running[n]; job >= 0 {
			st.doneEv[n].Cancel()
			st.running[n] = -1
			st.jobsRequeued++
			st.queue = append([]int64{job}, st.queue...)
			s.Emit(telemetry.Event{Type: evJobReq, Comp: "shardjob", Name: s.Name,
				Args: []telemetry.Arg{telemetry.I("job", int(job)), telemetry.I("node", n)}})
		}
	}
	vs := victims
	s.Sim.Schedule(downtime, func() {
		for _, n := range vs {
			st.down[n] = false
		}
		st.recoveries++
		s.Emit(telemetry.Event{Type: telemetry.EvFaultRecover, Comp: "chaos", Name: s.Name,
			Args: []telemetry.Arg{telemetry.I("nodes", len(vs))}})
		st.dispatch()
	})
}

// onMessage dispatches one delivered cross-site message. Every mutation
// stays on the destination site's state.
func (st *siteState) onMessage(m Message) {
	s := st.s
	switch m.Kind {
	case kindHalo:
		s.Emit(telemetry.Event{Type: evHaloRecv, Comp: "halo", Name: s.Name,
			Args: []telemetry.Arg{telemetry.I("round", int(m.A)), telemetry.I("from", m.Src)}})
		s.Send(m.Src, kindHaloAck, m.A, 0, 0, 64)
	case kindHaloAck:
		st.haloAcked++
		s.Emit(telemetry.Event{Type: evHaloAck, Comp: "halo", Name: s.Name,
			Args: []telemetry.Arg{telemetry.I("round", int(m.A))}})
	case kindCkpt:
		s.Send(m.Src, kindCkptAck, m.A, 0, 0, 128)
	case kindCkptAck:
		st.ckptAcked++
		s.Emit(telemetry.Event{Type: evCkptAck, Comp: "srsrep", Name: s.Name,
			Args: []telemetry.Arg{telemetry.I("epoch", int(m.A))}})
	case kindLeaseReq:
		if st.tokens > 0 {
			st.tokens--
			s.Send(m.Src, kindLeaseGrant, m.A, 0, m.F, 256)
		} else {
			s.Send(m.Src, kindLeaseDeny, m.A, 0, 0, 256)
		}
	case kindLeaseGrant:
		st.leaseGranted++
		s.Emit(telemetry.Event{Type: telemetry.EvLeaseGrant, Comp: "lease", Name: s.Name,
			Args: []telemetry.Arg{telemetry.I("req", int(m.A))}})
		hold := m.F
		s.Sim.Schedule(hold, func() {
			s.Send(0, kindLeaseRelease, m.A, 0, 0, 128)
			s.Emit(telemetry.Event{Type: telemetry.EvLeaseRelease, Comp: "lease", Name: s.Name,
				Args: []telemetry.Arg{telemetry.I("req", int(m.A))}})
		})
	case kindLeaseDeny:
		st.leaseDenied++
		s.Emit(telemetry.Event{Type: evLeaseDeny, Comp: "lease", Name: s.Name,
			Args: []telemetry.Arg{telemetry.I("req", int(m.A))}})
	case kindLeaseRelease:
		st.tokens++
	case kindCrash:
		st.applyCrash(int(m.A), m.F)
	default:
		panic(fmt.Sprintf("shardsim: unknown message kind %d", m.Kind))
	}
}
