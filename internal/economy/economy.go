// Package economy implements Grid economies for resource allocation — the
// third capability the paper's conclusion previews for VGrADS, modeled on
// the G-commerce work the paper cites ([24] Wolski et al., "G-commerce:
// Market formulations controlling resource allocation on the computational
// grid"). Two market formulations are provided:
//
//   - a commodities market, in which each site sells interchangeable
//     node-rounds at a posted price that an auctioneer adjusts toward
//     supply/demand equilibrium (tâtonnement); and
//   - sealed-bid auctions, in which every round all offered nodes are
//     auctioned to the highest bidders.
//
// G-commerce's central finding — commodity markets produce smoother prices
// and comparable utilization versus auctions — is reproduced by the
// economy experiment.
package economy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Producer offers a site's nodes to the market each round.
type Producer struct {
	Site     string
	Capacity int     // node-rounds offered per round
	Cost     float64 // production cost floor per node-round
}

// Consumer is an application buying node-rounds.
type Consumer struct {
	Name     string
	Budget   float64 // money per round
	Demand   int     // node-rounds wanted per round
	MaxPrice float64 // reservation price per node-round
}

// Purchase records one consumer's allocation from one site in a round.
type Purchase struct {
	Consumer string
	Site     string
	Units    int
	Price    float64
}

// RoundResult summarizes one market round.
type RoundResult struct {
	Prices      map[string]float64 // per site, after adjustment
	Purchases   []Purchase
	Demand      int // total units requested
	Supply      int // total units offered
	Sold        int
	Utilization float64 // sold / supply
}

// CommodityMarket is the posted-price market with tâtonnement adjustment.
type CommodityMarket struct {
	Producers []*Producer
	Consumers []*Consumer
	// Alpha is the price adjustment rate per round (fraction of price per
	// unit of relative excess demand).
	Alpha float64

	prices map[string]float64
}

// NewCommodityMarket creates a market with every site's price starting at
// its cost floor plus a small margin.
func NewCommodityMarket(producers []*Producer, consumers []*Consumer, alpha float64) (*CommodityMarket, error) {
	if len(producers) == 0 || len(consumers) == 0 {
		return nil, fmt.Errorf("economy: need producers and consumers")
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.1
	}
	m := &CommodityMarket{Producers: producers, Consumers: consumers, Alpha: alpha,
		prices: make(map[string]float64)}
	for _, p := range producers {
		if p.Capacity <= 0 || p.Cost <= 0 {
			return nil, fmt.Errorf("economy: producer %q needs positive capacity and cost", p.Site)
		}
		m.prices[p.Site] = p.Cost * 1.1
	}
	return m, nil
}

// Prices returns a copy of the current posted prices.
func (m *CommodityMarket) Prices() map[string]float64 {
	out := make(map[string]float64, len(m.prices))
	for k, v := range m.prices {
		out[k] = v
	}
	return out
}

// Round clears one market round: consumers buy greedily from the cheapest
// acceptable sites within their budgets; oversubscribed sites allocate
// first-come by consumer order (deterministic); then prices adjust toward
// equilibrium.
func (m *CommodityMarket) Round() RoundResult {
	res := RoundResult{Prices: make(map[string]float64)}
	remaining := make(map[string]int, len(m.Producers))
	demandAt := make(map[string]int, len(m.Producers))
	for _, p := range m.Producers {
		remaining[p.Site] = p.Capacity
		res.Supply += p.Capacity
	}

	// Sites sorted by current price (cheapest first), name-stable.
	sites := make([]string, 0, len(m.prices))
	for s := range m.prices {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool {
		if m.prices[sites[i]] != m.prices[sites[j]] {
			return m.prices[sites[i]] < m.prices[sites[j]]
		}
		return sites[i] < sites[j]
	})

	for _, c := range m.Consumers {
		want := c.Demand
		budget := c.Budget
		res.Demand += want
		for _, site := range sites {
			if want == 0 {
				break
			}
			price := m.prices[site]
			if price > c.MaxPrice || price > budget {
				continue
			}
			// Record demand at this price point whether or not stock
			// remains (the auctioneer needs true demand).
			afford := int(budget / price)
			take := want
			if afford < take {
				take = afford
			}
			demandAt[site] += take
			if remaining[site] < take {
				take = remaining[site]
			}
			if take <= 0 {
				continue
			}
			remaining[site] -= take
			want -= take
			budget -= float64(take) * price
			res.Sold += take
			res.Purchases = append(res.Purchases, Purchase{
				Consumer: c.Name, Site: site, Units: take, Price: price,
			})
		}
	}

	// Tâtonnement: adjust each site's price by relative excess demand,
	// floored at the production cost.
	for _, p := range m.Producers {
		price := m.prices[p.Site]
		excess := float64(demandAt[p.Site]-p.Capacity) / float64(p.Capacity)
		price *= 1 + m.Alpha*excess
		if price < p.Cost {
			price = p.Cost
		}
		m.prices[p.Site] = price
		res.Prices[p.Site] = price
	}
	if res.Supply > 0 {
		res.Utilization = float64(res.Sold) / float64(res.Supply)
	}
	return res
}

// Auctioneer runs per-round sealed-bid uniform-price auctions over the
// pooled node supply.
type Auctioneer struct {
	Producers []*Producer
	Consumers []*Consumer
}

// NewAuctioneer creates the auction formulation over the same participants.
func NewAuctioneer(producers []*Producer, consumers []*Consumer) (*Auctioneer, error) {
	if len(producers) == 0 || len(consumers) == 0 {
		return nil, fmt.Errorf("economy: need producers and consumers")
	}
	return &Auctioneer{Producers: producers, Consumers: consumers}, nil
}

// Round clears one auction: every consumer bids its per-unit valuation
// (budget spread over its demand, capped by its reservation price) for each
// wanted unit; the highest bids win the pooled supply and pay the lowest
// winning bid (uniform price), floored at the maximum producer cost of the
// units actually sourced.
func (a *Auctioneer) Round() RoundResult {
	res := RoundResult{Prices: make(map[string]float64)}
	type bid struct {
		consumer string
		value    float64
	}
	var bids []bid
	for _, c := range a.Consumers {
		if c.Demand <= 0 {
			continue
		}
		res.Demand += c.Demand
		value := math.Min(c.MaxPrice, c.Budget/float64(c.Demand))
		for u := 0; u < c.Demand; u++ {
			bids = append(bids, bid{consumer: c.Name, value: value})
		}
	}
	sort.SliceStable(bids, func(i, j int) bool { return bids[i].value > bids[j].value })

	// Pool supply cheapest-first.
	prods := append([]*Producer(nil), a.Producers...)
	sort.Slice(prods, func(i, j int) bool {
		if prods[i].Cost != prods[j].Cost {
			return prods[i].Cost < prods[j].Cost
		}
		return prods[i].Site < prods[j].Site
	})
	for _, p := range prods {
		res.Supply += p.Capacity
	}

	// Winners: top bids up to supply, each above the marginal unit's cost.
	sold := 0
	clearing := 0.0
	prodIdx, prodUsed := 0, 0
	for _, b := range bids {
		if sold >= res.Supply || prodIdx >= len(prods) {
			break
		}
		cost := prods[prodIdx].Cost
		if b.value < cost {
			break // remaining bids are lower still
		}
		res.Purchases = append(res.Purchases, Purchase{
			Consumer: b.consumer, Site: prods[prodIdx].Site, Units: 1, Price: b.value,
		})
		sold++
		prodUsed++
		if prodUsed >= prods[prodIdx].Capacity {
			prodIdx++
			prodUsed = 0
		}
	}
	// Uniform clearing price: the lowest winning bid.
	if sold > 0 {
		clearing = res.Purchases[len(res.Purchases)-1].Price
		for i := range res.Purchases {
			res.Purchases[i].Price = clearing
		}
	}
	for _, p := range prods {
		res.Prices[p.Site] = clearing
	}
	res.Sold = sold
	if res.Supply > 0 {
		res.Utilization = float64(sold) / float64(res.Supply)
	}
	return res
}

// Series captures per-round aggregates for stability analysis.
type Series struct {
	MeanPrices   []float64
	Utilizations []float64
}

// PriceVolatility returns the mean absolute round-to-round relative price
// change — G-commerce's smoothness metric.
func (s *Series) PriceVolatility() float64 {
	if len(s.MeanPrices) < 2 {
		return 0
	}
	sum := 0.0
	for i := 1; i < len(s.MeanPrices); i++ {
		prev := s.MeanPrices[i-1]
		if prev == 0 {
			continue
		}
		sum += math.Abs(s.MeanPrices[i]-prev) / prev
	}
	return sum / float64(len(s.MeanPrices)-1)
}

// MeanUtilization averages utilization over all rounds.
func (s *Series) MeanUtilization() float64 {
	if len(s.Utilizations) == 0 {
		return 0
	}
	sum := 0.0
	for _, u := range s.Utilizations {
		sum += u
	}
	return sum / float64(len(s.Utilizations))
}

// Market is either formulation.
type Market interface {
	Round() RoundResult
}

// Simulate runs rounds of a market under stochastic demand: each round
// every consumer's demand is re-drawn uniformly from [0, 2*base] (seeded,
// deterministic), mimicking G-commerce's fluctuating consumer populations.
// All randomness flows through the explicit rng (never the global source),
// so a run is fully reproducible from its seed; a nil rng falls back to a
// fixed-seed source rather than nondeterminism.
func Simulate(m Market, consumers []*Consumer, rounds int, rng *rand.Rand) *Series {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	base := make([]int, len(consumers))
	for i, c := range consumers {
		base[i] = c.Demand
	}
	s := &Series{}
	for r := 0; r < rounds; r++ {
		for i, c := range consumers {
			c.Demand = rng.Intn(2*base[i] + 1)
		}
		res := m.Round()
		mean := 0.0
		for _, p := range res.Prices {
			mean += p
		}
		if len(res.Prices) > 0 {
			mean /= float64(len(res.Prices))
		}
		s.MeanPrices = append(s.MeanPrices, mean)
		s.Utilizations = append(s.Utilizations, res.Utilization)
	}
	for i, c := range consumers {
		c.Demand = base[i]
	}
	return s
}
