package economy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoSites() []*Producer {
	return []*Producer{
		{Site: "UTK", Capacity: 10, Cost: 1.0},
		{Site: "UIUC", Capacity: 20, Cost: 0.8},
	}
}

func someConsumers() []*Consumer {
	return []*Consumer{
		{Name: "qr", Budget: 40, Demand: 12, MaxPrice: 4},
		{Name: "nbody", Budget: 20, Demand: 8, MaxPrice: 3},
		{Name: "eman", Budget: 60, Demand: 15, MaxPrice: 5},
	}
}

func TestCommodityMarketClearsAndAdjusts(t *testing.T) {
	m, err := NewCommodityMarket(twoSites(), someConsumers(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Round()
	if r.Supply != 30 || r.Demand != 35 {
		t.Fatalf("supply/demand = %d/%d", r.Supply, r.Demand)
	}
	if r.Sold == 0 || r.Utilization == 0 {
		t.Fatalf("nothing sold: %+v", r)
	}
	// Demand exceeds supply: prices must rise from their starting points.
	p0 := m.Prices()
	for i := 0; i < 20; i++ {
		m.Round()
	}
	p1 := m.Prices()
	rose := false
	for site := range p0 {
		if p1[site] > p0[site] {
			rose = true
		}
	}
	if !rose {
		t.Fatalf("oversubscribed market prices never rose: %v -> %v", p0, p1)
	}
	// Consumers never exceed budgets.
	for _, pur := range r.Purchases {
		if pur.Units <= 0 || pur.Price <= 0 {
			t.Fatalf("bad purchase %+v", pur)
		}
	}
}

func TestCommodityPricesFallWhenDemandVanishes(t *testing.T) {
	consumers := []*Consumer{{Name: "idle", Budget: 0, Demand: 0, MaxPrice: 1}}
	m, err := NewCommodityMarket(twoSites(), consumers, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m.Round()
	}
	for site, p := range m.Prices() {
		var cost float64
		for _, pr := range twoSites() {
			if pr.Site == site {
				cost = pr.Cost
			}
		}
		if math.Abs(p-cost) > 1e-9 {
			t.Fatalf("price at %s = %v, want floor %v with zero demand", site, p, cost)
		}
	}
}

func TestCommodityMarketValidation(t *testing.T) {
	if _, err := NewCommodityMarket(nil, someConsumers(), 0.1); err == nil {
		t.Fatal("no producers accepted")
	}
	if _, err := NewCommodityMarket(twoSites(), nil, 0.1); err == nil {
		t.Fatal("no consumers accepted")
	}
	bad := []*Producer{{Site: "X", Capacity: 0, Cost: 1}}
	if _, err := NewCommodityMarket(bad, someConsumers(), 0.1); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestAuctionUniformPriceAndBudgets(t *testing.T) {
	a, err := NewAuctioneer(twoSites(), someConsumers())
	if err != nil {
		t.Fatal(err)
	}
	r := a.Round()
	if r.Sold == 0 {
		t.Fatal("auction sold nothing")
	}
	// Uniform price: all purchases at the same clearing price.
	price := r.Purchases[0].Price
	for _, p := range r.Purchases {
		if p.Price != price {
			t.Fatalf("non-uniform prices: %v vs %v", p.Price, price)
		}
	}
	// Winners are the highest-valuation consumers: eman (value 4) and qr
	// (value 10/3) outbid nbody (2.5) for scarce supply... with supply 30 and
	// demand 35, the lowest-value units lose.
	units := map[string]int{}
	for _, p := range r.Purchases {
		units[p.Consumer] += p.Units
	}
	if units["eman"] != 15 || units["qr"] != 12 {
		t.Fatalf("high bidders not fully served: %v", units)
	}
	if units["nbody"] >= 8 {
		t.Fatalf("lowest bidder fully served despite scarcity: %v", units)
	}
}

func TestAuctionRespectsCostFloor(t *testing.T) {
	producers := []*Producer{{Site: "X", Capacity: 10, Cost: 5}}
	consumers := []*Consumer{{Name: "cheap", Budget: 10, Demand: 5, MaxPrice: 2}}
	a, err := NewAuctioneer(producers, consumers)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Round()
	if r.Sold != 0 {
		t.Fatalf("units sold below production cost: %+v", r)
	}
}

// TestGCommerceFinding reproduces the cited result: under fluctuating
// demand the commodities market produces smoother prices than auctions at
// comparable utilization.
func TestGCommerceFinding(t *testing.T) {
	cm, err := NewCommodityMarket(twoSites(), someConsumers(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cmSeries := Simulate(cm, cm.Consumers, 300, rand.New(rand.NewSource(5)))

	au, err := NewAuctioneer(twoSites(), someConsumers())
	if err != nil {
		t.Fatal(err)
	}
	auSeries := Simulate(au, au.Consumers, 300, rand.New(rand.NewSource(5)))

	if cmSeries.PriceVolatility() >= auSeries.PriceVolatility() {
		t.Fatalf("commodity volatility %v not smoother than auction %v",
			cmSeries.PriceVolatility(), auSeries.PriceVolatility())
	}
	if cmSeries.MeanUtilization() < 0.5*auSeries.MeanUtilization() {
		t.Fatalf("commodity utilization %v collapsed vs auction %v",
			cmSeries.MeanUtilization(), auSeries.MeanUtilization())
	}
}

// Property: conservation — units sold never exceed supply or demand, and
// utilization is in [0, 1].
func TestQuickMarketConservation(t *testing.T) {
	f := func(caps [2]uint8, demands [3]uint8, budgets [3]uint8, auction bool) bool {
		producers := []*Producer{
			{Site: "A", Capacity: int(caps[0]%20) + 1, Cost: 1},
			{Site: "B", Capacity: int(caps[1]%20) + 1, Cost: 1.5},
		}
		var consumers []*Consumer
		for i := 0; i < 3; i++ {
			consumers = append(consumers, &Consumer{
				Name:     string(rune('a' + i)),
				Budget:   float64(budgets[i]%50) + 1,
				Demand:   int(demands[i] % 15),
				MaxPrice: 5,
			})
		}
		var m Market
		var err error
		if auction {
			m, err = NewAuctioneer(producers, consumers)
		} else {
			m, err = NewCommodityMarket(producers, consumers, 0.1)
		}
		if err != nil {
			return false
		}
		for round := 0; round < 10; round++ {
			r := m.Round()
			if r.Sold > r.Supply || r.Sold > r.Demand {
				return false
			}
			if r.Utilization < 0 || r.Utilization > 1 {
				return false
			}
			total := 0
			for _, p := range r.Purchases {
				total += p.Units
			}
			if total != r.Sold {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(86))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSpotPriceStaysFiniteUnderSustainedOverload(t *testing.T) {
	sp := NewSpotPricer(1, 0.1)
	for i := 0; i < 100000; i++ {
		sp.Observe(1<<20, 1) // massively oversubscribed every round
	}
	if math.IsInf(sp.Price(), 0) || math.IsNaN(sp.Price()) {
		t.Fatalf("price overflowed: %v", sp.Price())
	}
	if sp.Price() > 1*maxPriceFactor {
		t.Fatalf("price %v above ceiling", sp.Price())
	}
	// Ordering must survive at the ceiling: higher bids still rank higher.
	if !(sp.EffectivePriority(5) > sp.EffectivePriority(1)) {
		t.Fatalf("priorities collapsed at the ceiling: %v vs %v",
			sp.EffectivePriority(5), sp.EffectivePriority(1))
	}
	// And the price decays back once the pool idles.
	for i := 0; i < 1000000 && sp.Price() > sp.Floor; i++ {
		sp.Observe(0, 10)
	}
	if sp.Price() != sp.Floor {
		t.Fatalf("price did not decay to floor: %v", sp.Price())
	}
}
