package economy

// SpotPricer posts a single tâtonnement-adjusted price per node-round for a
// shared resource pool. It is the priority-pricing half of the G-commerce
// formulation applied to queue ordering: each queued job carries a bid (its
// willingness to pay per node-round), and its effective priority is the
// bid measured against the current posted price. When the pool is
// oversubscribed the price rises, so low-bid jobs sink relative to high-bid
// ones exactly when contention makes ordering matter; when the pool idles
// the price decays back to the floor and FIFO-like ordering re-emerges.
type SpotPricer struct {
	// Floor is the production-cost floor the price never drops below.
	Floor float64
	// Alpha is the adjustment rate per observation (fraction of price per
	// unit of relative excess demand), as in CommodityMarket.
	Alpha float64

	price float64
}

// NewSpotPricer creates a pricer starting at the floor plus the same small
// margin the commodities market opens with.
func NewSpotPricer(floor, alpha float64) *SpotPricer {
	if floor <= 0 {
		floor = 1
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.1
	}
	return &SpotPricer{Floor: floor, Alpha: alpha, price: floor * 1.1}
}

// Price returns the current posted price per node-round.
func (sp *SpotPricer) Price() float64 { return sp.price }

// maxPriceFactor caps the posted price at this multiple of the floor.
// Tâtonnement under sustained oversubscription is multiplicative, so an
// uncapped price eventually overflows to +Inf — which collapses every
// effective priority to zero and makes the price unserializable.
// Effective priorities are bids divided by the one shared price, so the
// cap can never reorder the queue; it only keeps the arithmetic finite.
const maxPriceFactor = 1e12

// Observe feeds one round's demand (queued node demand) and supply (free
// nodes) into the tâtonnement adjustment, clamped between the cost floor
// and the overflow ceiling.
func (sp *SpotPricer) Observe(demand, supply int) {
	if supply < 1 {
		supply = 1
	}
	excess := float64(demand-supply) / float64(supply)
	sp.price *= 1 + sp.Alpha*excess
	if sp.price < sp.Floor {
		sp.price = sp.Floor
	}
	if ceil := sp.Floor * maxPriceFactor; sp.price > ceil {
		sp.price = ceil
	}
}

// EffectivePriority converts a job's bid into its queue priority under the
// posted price: how many node-rounds' worth of the current price the job is
// willing to pay. Non-positive bids rank at zero.
func (sp *SpotPricer) EffectivePriority(bid float64) float64 {
	if bid <= 0 {
		return 0
	}
	return bid / sp.price
}
