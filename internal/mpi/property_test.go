package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"grads/internal/simcore"
	"grads/internal/topology"
)

// propWorld builds a flat single-site world of n ranks.
func propWorld(n int) (*simcore.Sim, *World) {
	sim := simcore.New(1)
	g := topology.NewGrid(sim)
	g.AddSite("S", 1e9, 1e-5)
	var nodes []*topology.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, g.AddNode(topology.NodeSpec{
			Name: "n" + string(rune('a'+i)), Site: "S", MHz: 1000, FlopsPerCycle: 1,
		}))
	}
	return sim, NewWorld(sim, g, "prop", nodes)
}

// Property: Bcast delivers the root's payload to every rank, for any comm
// size, root and message size.
func TestQuickBcastDeliversEverywhere(t *testing.T) {
	f := func(sizeRaw, rootRaw uint8, bytesRaw uint16, value int64) bool {
		size := int(sizeRaw%7) + 1
		root := int(rootRaw) % size
		bytes := float64(bytesRaw) + 1
		sim, w := propWorld(size)
		c := w.WorldComm()
		got := make([]any, size)
		w.Start(func(ctx *Ctx) {
			var payload any
			if c.Rank(ctx) == root {
				payload = value
			}
			v, err := c.Bcast(ctx, root, bytes, payload)
			if err != nil {
				return
			}
			got[ctx.PhysRank()] = v
		})
		sim.Run()
		for _, v := range got {
			if v != value {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(81))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce with integer addition computes the exact sum at every
// rank regardless of comm size.
func TestQuickAllreduceSum(t *testing.T) {
	sum := func(a, b any) any {
		if a == nil {
			return b
		}
		return a.(int) + b.(int)
	}
	f := func(sizeRaw uint8, valsRaw [8]int8) bool {
		size := int(sizeRaw%8) + 1
		want := 0
		for i := 0; i < size; i++ {
			want += int(valsRaw[i])
		}
		sim, w := propWorld(size)
		c := w.WorldComm()
		ok := true
		w.Start(func(ctx *Ctx) {
			me := c.Rank(ctx)
			v, err := c.Allreduce(ctx, 8, int(valsRaw[me]), sum)
			if err != nil || v.(int) != want {
				ok = false
			}
		})
		sim.Run()
		return ok
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(82))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Allgather returns every rank's contribution in virtual-rank
// order at every rank.
func TestQuickAllgatherOrder(t *testing.T) {
	f := func(sizeRaw uint8) bool {
		size := int(sizeRaw%8) + 1
		sim, w := propWorld(size)
		c := w.WorldComm()
		ok := true
		w.Start(func(ctx *Ctx) {
			me := c.Rank(ctx)
			all, err := c.Allgather(ctx, 16, me*7)
			if err != nil || len(all) != size {
				ok = false
				return
			}
			for i, v := range all {
				if v != i*7 {
					ok = false
				}
			}
		})
		sim.Run()
		return ok
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(83))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: message ordering — point-to-point messages between a fixed
// (src, dst, tag) arrive in send order.
func TestQuickP2POrdering(t *testing.T) {
	f := func(countRaw uint8) bool {
		count := int(countRaw%20) + 1
		sim, w := propWorld(2)
		ok := true
		w.Start(func(ctx *Ctx) {
			switch ctx.PhysRank() {
			case 0:
				for i := 0; i < count; i++ {
					if err := ctx.SendPhys(1, 5, 100, i); err != nil {
						ok = false
						return
					}
				}
			case 1:
				for i := 0; i < count; i++ {
					m, err := ctx.RecvPhys(0, 5)
					if err != nil || m.Payload != i {
						ok = false
						return
					}
				}
			}
		})
		sim.Run()
		return ok
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(84))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFailNodeAbortsWorld(t *testing.T) {
	sim, w := propWorld(4)
	c := w.WorldComm()
	errs := make([]error, 4)
	w.Start(func(ctx *Ctx) {
		for i := 0; i < 1000; i++ {
			if err := ctx.Compute(1e8); err != nil {
				errs[ctx.PhysRank()] = err
				return
			}
			if _, err := c.Allreduce(ctx, 8, nil, nil); err != nil {
				errs[ctx.PhysRank()] = err
				return
			}
		}
	})
	victim := w.Node(2).Name()
	sim.Schedule(5, func() {
		if lost := w.FailNode(victim); lost != 1 {
			t.Errorf("FailNode lost %d procs, want 1", lost)
		}
	})
	sim.Run()
	if w.Running() != 0 {
		t.Fatalf("%d ranks still running after node failure", w.Running())
	}
	if w.Err() == nil {
		t.Fatal("world error not recorded")
	}
	if !w.Node(2).Down() {
		t.Fatal("node not marked down")
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("rank %d finished normally despite the abort", i)
		}
	}
}
