package mpi

import "fmt"

// ReduceOp combines two payloads during reductions. Either argument may be
// nil when payloads are not carried (pure cost simulation).
type ReduceOp func(a, b any) any

// Comm is a communicator: an ordered mapping of virtual ranks onto physical
// world ranks. Applications address virtual ranks; the mapping can be
// remapped at run time, which implements the §4.2 communication hijack
// (the user's MPI_Comm_World only ever shows the active set).
type Comm struct {
	w    *World
	id   int
	phys []int // virtual rank -> physical rank
}

var nextCommID int

// NewComm creates a communicator over the given physical ranks, in virtual
// rank order. Physical ranks must be distinct and in range.
func NewComm(w *World, phys []int) *Comm {
	seen := make(map[int]bool, len(phys))
	for _, p := range phys {
		if p < 0 || p >= w.Size() || seen[p] {
			panic(fmt.Sprintf("mpi: bad comm physical ranks %v", phys))
		}
		seen[p] = true
	}
	nextCommID++
	return &Comm{w: w, id: nextCommID, phys: append([]int(nil), phys...)}
}

// WorldComm returns the identity communicator over all physical ranks.
func (w *World) WorldComm() *Comm {
	phys := make([]int, w.Size())
	for i := range phys {
		phys[i] = i
	}
	return NewComm(w, phys)
}

// Size returns the communicator's virtual size.
func (c *Comm) Size() int { return len(c.phys) }

// Phys returns the physical rank currently bound to virtual rank v.
func (c *Comm) Phys(v int) int { return c.phys[v] }

// Ranks returns a copy of the virtual-to-physical mapping.
func (c *Comm) Ranks() []int { return append([]int(nil), c.phys...) }

// Rank returns the calling process's virtual rank in the communicator, or
// -1 if the process is not currently mapped (an inactive swap process).
func (c *Comm) Rank(ctx *Ctx) int {
	for v, p := range c.phys {
		if p == ctx.PhysRank() {
			return v
		}
	}
	return -1
}

// Remap binds virtual rank v to a new physical rank. The caller (the swap
// runtime) must ensure the communicator is quiescent. It panics if the
// physical rank is already mapped to a different virtual rank.
func (c *Comm) Remap(v, phys int) {
	for ov, op := range c.phys {
		if op == phys && ov != v {
			panic(fmt.Sprintf("mpi: phys rank %d already mapped to virtual %d", phys, ov))
		}
	}
	c.phys[v] = phys
}

// userTag isolates comm-level user messages from raw SendPhys traffic and
// from other communicators.
func (c *Comm) userTag(tag int) int {
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	return 1<<20 + c.id<<24 + tag
}

// opTag isolates one collective's traffic per communicator.
func (c *Comm) opTag(op int) int { return 1<<21 + c.id<<24 + op }

// Collective opcodes.
const (
	opBarrier = iota
	opBcast
	opReduce
	opGather
	opScatter
)

// ctlBytes is the size of zero-payload control messages.
const ctlBytes = 64

// Send sends to a virtual rank through the communicator.
func (c *Comm) Send(ctx *Ctx, dstV, tag int, bytes float64, payload any) error {
	return ctx.SendPhys(c.phys[dstV], c.userTag(tag), bytes, payload)
}

// Recv receives from a virtual rank through the communicator. The source's
// physical binding is resolved at call time.
func (c *Comm) Recv(ctx *Ctx, srcV, tag int) (Msg, error) {
	return ctx.RecvPhys(c.phys[srcV], c.userTag(tag))
}

// mustRank returns ctx's virtual rank, panicking for non-members (calling a
// collective from outside the communicator is a programming error).
func (c *Comm) mustRank(ctx *Ctx) int {
	v := c.Rank(ctx)
	if v < 0 {
		panic(fmt.Sprintf("mpi: phys rank %d is not in comm", ctx.PhysRank()))
	}
	return v
}

// Barrier blocks until every member reaches it (flat gather + release).
func (c *Comm) Barrier(ctx *Ctx) error {
	_, err := c.Reduce(ctx, 0, ctlBytes, nil, nil)
	if err != nil {
		return err
	}
	_, err = c.Bcast(ctx, 0, ctlBytes, nil)
	return err
}

// Bcast broadcasts bytes (and payload) from virtual root along a binomial
// tree. Every member receives the root's payload as the return value.
func (c *Comm) Bcast(ctx *Ctx, root int, bytes float64, payload any) (any, error) {
	me := c.mustRank(ctx)
	size := c.Size()
	tag := c.opTag(opBcast)
	rel := (me - root + size) % size

	mask := 1
	for mask < size {
		if rel&mask != 0 {
			srcV := (rel - mask + root) % size
			m, err := ctx.RecvPhys(c.phys[srcV], tag)
			if err != nil {
				return nil, err
			}
			payload = m.Payload
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			dstV := (rel + mask + root) % size
			if err := ctx.SendPhys(c.phys[dstV], tag, bytes, payload); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return payload, nil
}

// Reduce combines every member's payload at the virtual root using op
// (flat). Non-roots receive nil. A nil op keeps the root's own payload and
// just pays the communication cost.
func (c *Comm) Reduce(ctx *Ctx, root int, bytes float64, payload any, op ReduceOp) (any, error) {
	me := c.mustRank(ctx)
	tag := c.opTag(opReduce)
	if me != root {
		return nil, ctx.SendPhys(c.phys[root], tag, bytes, payload)
	}
	acc := payload
	for v := 0; v < c.Size(); v++ {
		if v == root {
			continue
		}
		m, err := ctx.RecvPhys(c.phys[v], tag)
		if err != nil {
			return nil, err
		}
		if op != nil {
			acc = op(acc, m.Payload)
		}
	}
	return acc, nil
}

// Allreduce reduces to virtual rank 0 and broadcasts the result; every
// member returns the combined payload.
func (c *Comm) Allreduce(ctx *Ctx, bytes float64, payload any, op ReduceOp) (any, error) {
	acc, err := c.Reduce(ctx, 0, bytes, payload, op)
	if err != nil {
		return nil, err
	}
	return c.Bcast(ctx, 0, bytes, acc)
}

// Gather collects every member's payload at the virtual root, returned as a
// slice indexed by virtual rank. Non-roots receive nil.
func (c *Comm) Gather(ctx *Ctx, root int, bytes float64, payload any) ([]any, error) {
	me := c.mustRank(ctx)
	tag := c.opTag(opGather)
	if me != root {
		return nil, ctx.SendPhys(c.phys[root], tag, bytes, payload)
	}
	out := make([]any, c.Size())
	out[root] = payload
	for v := 0; v < c.Size(); v++ {
		if v == root {
			continue
		}
		m, err := ctx.RecvPhys(c.phys[v], tag)
		if err != nil {
			return nil, err
		}
		out[v] = m.Payload
	}
	return out, nil
}

// Scatter distributes payloads[v] (each of the given size) from the root to
// every member; each member returns its own element. payloads is only read
// at the root.
func (c *Comm) Scatter(ctx *Ctx, root int, bytes float64, payloads []any) (any, error) {
	me := c.mustRank(ctx)
	tag := c.opTag(opScatter)
	if me == root {
		if payloads != nil && len(payloads) != c.Size() {
			panic("mpi: Scatter payload count != comm size")
		}
		var mine any
		for v := 0; v < c.Size(); v++ {
			var pv any
			if payloads != nil {
				pv = payloads[v]
			}
			if v == root {
				mine = pv
				continue
			}
			if err := ctx.SendPhys(c.phys[v], tag, bytes, pv); err != nil {
				return nil, err
			}
		}
		return mine, nil
	}
	m, err := ctx.RecvPhys(c.phys[root], tag)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// Allgather collects every member's payload everywhere: a gather to virtual
// rank 0 followed by a broadcast of the combined slice.
func (c *Comm) Allgather(ctx *Ctx, bytes float64, payload any) ([]any, error) {
	all, err := c.Gather(ctx, 0, bytes, payload)
	if err != nil {
		return nil, err
	}
	got, err := c.Bcast(ctx, 0, bytes*float64(c.Size()), all)
	if err != nil {
		return nil, err
	}
	if got == nil {
		return nil, nil
	}
	return got.([]any), nil
}
