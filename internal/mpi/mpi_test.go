package mpi

import (
	"math"
	"testing"

	"grads/internal/simcore"
	"grads/internal/topology"
)

// testWorld builds a 2-site grid and a world with np ranks spread across it.
func testWorld(t *testing.T, sim *simcore.Sim, np int) (*topology.Grid, *World) {
	t.Helper()
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e7, 1e-4)
	g.AddSite("B", 1e7, 1e-4)
	g.Connect("A", "B", 1e6, 0.010)
	var nodes []*topology.Node
	for i := 0; i < np; i++ {
		site := "A"
		if i >= (np+1)/2 {
			site = "B"
		}
		nodes = append(nodes, g.AddNode(topology.NodeSpec{
			Name: string(rune('a'+i)) + "1", Site: site, MHz: 1000, FlopsPerCycle: 1,
		}))
	}
	return g, NewWorld(sim, g, "test", nodes)
}

func TestSendRecvDelivers(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 2)
	var got Msg
	w.Start(func(ctx *Ctx) {
		switch ctx.PhysRank() {
		case 0:
			if err := ctx.SendPhys(1, 7, 1e4, "hello"); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			m, err := ctx.RecvPhys(0, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
			}
			got = m
		}
	})
	sim.Run()
	if got.Payload != "hello" || got.Src != 0 || got.Bytes != 1e4 {
		t.Fatalf("got %+v", got)
	}
	if w.Running() != 0 {
		t.Fatalf("%d ranks still running", w.Running())
	}
}

func TestSendPaysNetworkCost(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 2) // ranks on different sites: WAN 1e6 B/s, 10ms
	var sendDone, recvDone float64
	w.Start(func(ctx *Ctx) {
		if ctx.PhysRank() == 0 {
			ctx.SendPhys(1, 1, 1e6, nil)
			sendDone = ctx.Now()
		} else {
			ctx.RecvPhys(0, 1)
			recvDone = ctx.Now()
		}
	})
	sim.Run()
	// latency 0.0001+0.010+0.0001 + 1e6/1e6 s transfer ~= 1.0102
	if math.Abs(sendDone-1.0102) > 1e-6 {
		t.Fatalf("send completed at %v, want ~1.0102", sendDone)
	}
	if recvDone < sendDone {
		t.Fatal("receiver finished before sender delivered")
	}
	p := w.Rank(0).Profile()
	if p.BytesSent != 1e6 || p.MsgsSent != 1 {
		t.Fatalf("sender profile %+v", p)
	}
	if p.CommTime < 1.0 {
		t.Fatalf("sender comm time %v, want >= 1", p.CommTime)
	}
}

func TestComputeChargesProfile(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 1)
	w.Start(func(ctx *Ctx) {
		if err := ctx.Compute(5e8); err != nil { // 0.5s at 1 Gflop/s
			t.Errorf("compute: %v", err)
		}
		ctx.MarkIteration(3)
	})
	sim.Run()
	p := w.Rank(0).Profile()
	if math.Abs(p.ComputeTime-0.5) > 1e-9 || p.Flops != 5e8 {
		t.Fatalf("profile %+v", p)
	}
	if p.Iteration != 3 || p.IterationAt != 0.5 {
		t.Fatalf("iteration mark %+v", p)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 4)
	c := w.WorldComm()
	var after []float64
	w.Start(func(ctx *Ctx) {
		// Rank i sleeps i seconds, then barriers.
		ctx.Proc().Sleep(float64(ctx.PhysRank()))
		if err := c.Barrier(ctx); err != nil {
			t.Errorf("barrier: %v", err)
		}
		after = append(after, ctx.Now())
	})
	sim.Run()
	if len(after) != 4 {
		t.Fatalf("barrier released %d ranks", len(after))
	}
	for _, ts := range after {
		if ts < 3.0 {
			t.Fatalf("rank escaped barrier at %v, before slowest arrival", ts)
		}
	}
}

func TestBcastDeliversPayloadToAll(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 5)
	c := w.WorldComm()
	got := make([]any, 5)
	w.Start(func(ctx *Ctx) {
		var payload any
		if c.Rank(ctx) == 2 {
			payload = "root-data"
		}
		v, err := c.Bcast(ctx, 2, 1e3, payload)
		if err != nil {
			t.Errorf("bcast: %v", err)
		}
		got[ctx.PhysRank()] = v
	})
	sim.Run()
	for i, v := range got {
		if v != "root-data" {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 4)
	c := w.WorldComm()
	sum := func(a, b any) any {
		if a == nil {
			return b
		}
		return a.(int) + b.(int)
	}
	results := make([]any, 4)
	w.Start(func(ctx *Ctx) {
		me := c.Rank(ctx)
		v, err := c.Allreduce(ctx, 8, me+1, sum)
		if err != nil {
			t.Errorf("allreduce: %v", err)
		}
		results[me] = v
	})
	sim.Run()
	for i, v := range results {
		if v != 10 { // 1+2+3+4
			t.Fatalf("rank %d allreduce = %v, want 10", i, v)
		}
	}
}

func TestGatherScatterAllgather(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 3)
	c := w.WorldComm()
	var gathered []any
	scattered := make([]any, 3)
	allg := make([][]any, 3)
	w.Start(func(ctx *Ctx) {
		me := c.Rank(ctx)
		g, err := c.Gather(ctx, 0, 8, me*10)
		if err != nil {
			t.Errorf("gather: %v", err)
		}
		if me == 0 {
			gathered = g
		}
		var parts []any
		if me == 1 {
			parts = []any{"p0", "p1", "p2"}
		}
		mine, err := c.Scatter(ctx, 1, 8, parts)
		if err != nil {
			t.Errorf("scatter: %v", err)
		}
		scattered[me] = mine
		all, err := c.Allgather(ctx, 8, me)
		if err != nil {
			t.Errorf("allgather: %v", err)
		}
		allg[me] = all
	})
	sim.Run()
	for i, v := range gathered {
		if v != i*10 {
			t.Fatalf("gathered[%d] = %v", i, v)
		}
	}
	for i, v := range scattered {
		if v != []any{"p0", "p1", "p2"}[i] {
			t.Fatalf("scattered[%d] = %v", i, v)
		}
	}
	for r := range allg {
		for i, v := range allg[r] {
			if v != i {
				t.Fatalf("allgather at rank %d: %v", r, allg[r])
			}
		}
	}
}

func TestSubsetCommAndRemap(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 4)
	// Active set = phys {0, 1}; phys 2 and 3 idle (inactive swap pool).
	c := NewComm(w, []int{0, 1})
	var at2 any
	w.Start(func(ctx *Ctx) {
		switch ctx.PhysRank() {
		case 0:
			c.Send(ctx, 1, 0, 100, "before-swap")
			// Wait for the remap (virtual rank 1 -> phys 2), then send again.
			ctx.Proc().Sleep(10)
			c.Send(ctx, 1, 0, 100, "after-swap")
		case 1:
			m, _ := c.Recv(ctx, 0, 0)
			if m.Payload != "before-swap" {
				t.Errorf("phys 1 got %v", m.Payload)
			}
			if c.Rank(ctx) != 1 {
				t.Errorf("phys 1 virtual rank = %d", c.Rank(ctx))
			}
		case 2:
			m, err := ctx.RecvPhys(0, c.userTag(0))
			if err != nil {
				t.Errorf("phys 2 recv: %v", err)
			}
			at2 = m.Payload
		case 3:
			// inactive: not a member.
			if c.Rank(ctx) != -1 {
				t.Errorf("phys 3 should be unmapped, got %d", c.Rank(ctx))
			}
		}
	})
	sim.Schedule(5, func() { c.Remap(1, 2) })
	sim.Run()
	if at2 != "after-swap" {
		t.Fatalf("post-remap message went to %v, want phys 2", at2)
	}
	if c.Phys(1) != 2 {
		t.Fatalf("Phys(1) = %d after remap", c.Phys(1))
	}
}

func TestRemapConflictPanics(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 3)
	c := NewComm(w, []int{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Remap onto an already-mapped phys rank should panic")
		}
	}()
	c.Remap(0, 1)
}

func TestNewCommValidation(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 2)
	for _, bad := range [][]int{{0, 0}, {5}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewComm(%v) should panic", bad)
				}
			}()
			NewComm(w, bad)
		}()
	}
}

func TestWaitBlocksUntilAllDone(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 3)
	w.Start(func(ctx *Ctx) {
		ctx.Proc().Sleep(float64(ctx.PhysRank() + 1))
	})
	var waited float64
	sim.Spawn("waiter", func(p *simcore.Proc) {
		if err := w.Wait(p); err != nil {
			t.Errorf("wait: %v", err)
		}
		waited = p.Now()
	})
	sim.Run()
	if waited != 3 {
		t.Fatalf("Wait returned at %v, want 3", waited)
	}
}

func TestUserTagNegativePanics(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 2)
	c := w.WorldComm()
	defer func() {
		if recover() == nil {
			t.Fatal("negative user tag should panic")
		}
	}()
	c.userTag(-1)
}
