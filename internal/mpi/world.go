// Package mpi is a simulated message-passing layer over the emulated Grid,
// standing in for the MPI runtime the GrADS applications use.
//
// A World is a fixed set of physical processes, one per chosen node.
// Computation advances virtual time through each node's processor-sharing
// CPU; messages advance it through the flow-level network. A Comm maps
// virtual ranks onto physical processes and can be remapped at runtime,
// which is exactly the hook the §4.2 process-swapping rescheduler uses to
// hijack communication ("user communication calls to the active set are
// converted to communication calls to a subset of the full process set").
//
// The layer exposes an MPI-profiling-interface equivalent: per-process
// counters of compute time, communication time, bytes and iteration marks,
// which the Autopilot sensors feed to the contract monitor.
package mpi

import (
	"errors"
	"fmt"

	"grads/internal/simcore"
	"grads/internal/topology"
)

// ErrNodeLost is the interrupt cause delivered to processes whose hosting
// node failed (fault-tolerance extension).
var ErrNodeLost = errors.New("mpi: node lost")

// ErrWorldAborted is the interrupt cause delivered to the surviving
// processes of a failed world so that collectives blocked on dead peers
// unwind instead of hanging.
var ErrWorldAborted = errors.New("mpi: world aborted")

// Msg is a delivered message.
type Msg struct {
	Src     int // physical source rank
	Tag     int
	Bytes   float64
	Payload any
}

// Profile is the per-process counter set exposed through the profiling
// interface (the paper's PAPI + MPI profiling sensors).
type Profile struct {
	ComputeTime float64 // seconds spent computing
	CommTime    float64 // seconds blocked in communication
	BytesSent   float64
	MsgsSent    int
	Flops       float64
	Iteration   int     // last iteration mark
	IterationAt float64 // virtual time of the last mark
}

// World is a set of physical message-passing processes pinned to nodes.
type World struct {
	sim   *simcore.Sim
	grid  *topology.Grid
	name  string
	ranks []*Rank

	running     int
	done        *simcore.Signal
	failed      error
	exited      bool
	unsubscribe func()
}

// Rank is one physical process of a World.
type Rank struct {
	world *World
	phys  int
	node  *topology.Node

	boxes map[int64]*simcore.Chan // (src,tag) -> queue
	prof  Profile
	proc  *simcore.Proc
}

// NewWorld creates a world with one process per node in placement. The
// processes are created but not started; call Start.
func NewWorld(sim *simcore.Sim, grid *topology.Grid, name string, placement []*topology.Node) *World {
	if len(placement) == 0 {
		panic("mpi: empty placement")
	}
	w := &World{sim: sim, grid: grid, name: name, done: simcore.NewSignal(sim)}
	for i, n := range placement {
		w.ranks = append(w.ranks, &Rank{
			world: w,
			phys:  i,
			node:  n,
			boxes: make(map[int64]*simcore.Chan),
		})
	}
	return w
}

// Size returns the number of physical processes.
func (w *World) Size() int { return len(w.ranks) }

// Grid returns the emulated Grid the world runs on.
func (w *World) Grid() *topology.Grid { return w.grid }

// Rank returns the physical process with the given rank.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Node returns the node hosting physical rank i.
func (w *World) Node(i int) *topology.Node { return w.ranks[i].node }

// Start spawns every process running body. body receives the per-process
// context. Start returns immediately; use Wait from a simulated process or
// Running/Err from event context to observe completion.
func (w *World) Start(body func(ctx *Ctx)) {
	w.running = len(w.ranks)
	// Grid-level crashes (chaos layer) must reach this world's processes:
	// subscribe for the lifetime of the run.
	w.unsubscribe = w.grid.OnNodeStateChange(func(n *topology.Node, down bool) {
		if down {
			w.FailNode(n.Name())
		}
	})
	for _, r := range w.ranks {
		r := r
		r.proc = w.sim.Spawn(fmt.Sprintf("%s[%d]", w.name, r.phys), func(p *simcore.Proc) {
			ctx := &Ctx{rank: r, proc: p}
			defer func() {
				w.running--
				if w.running == 0 {
					w.exited = true
					if w.unsubscribe != nil {
						w.unsubscribe()
						w.unsubscribe = nil
					}
					w.done.Broadcast()
				}
			}()
			body(ctx)
		})
	}
}

// Running returns the number of processes that have not terminated.
func (w *World) Running() int { return w.running }

// Fail records an application-level failure (first one wins) and aborts
// the world: every surviving process is interrupted with ErrWorldAborted so
// collectives blocked on the failed process unwind. Without this, a single
// rank's failure would deadlock its peers forever.
func (w *World) Fail(err error) {
	if w.failed != nil {
		return
	}
	w.failed = err
	w.abortSweep()
}

// abortSweep interrupts every blocked process; processes that were running
// (and therefore not interruptible) are retried shortly after, until the
// world drains.
func (w *World) abortSweep() {
	if w.running == 0 {
		return
	}
	stillRunning := false
	for _, r := range w.ranks {
		if r.proc == nil || !r.proc.Alive() {
			continue
		}
		if !r.proc.Interrupt(ErrWorldAborted) {
			stillRunning = true
		}
	}
	if stillRunning {
		w.sim.Schedule(1e-3, w.abortSweep)
	}
}

// FailNode marks the named node down and delivers ErrNodeLost to every
// process of this world hosted on it, then aborts the world. It returns
// the number of processes lost. Unknown nodes, nodes hosting no live
// process (including a second failure of the same node), and calls after
// the world has drained are all harmless no-ops returning 0. This is the
// fault-injection entry point of the fault-tolerance extension.
func (w *World) FailNode(nodeName string) int {
	if w.exited || w.running == 0 {
		return 0
	}
	lost := 0
	for _, r := range w.ranks {
		if r.node.Name() != nodeName {
			continue
		}
		r.node.SetDown(true)
		if r.proc != nil && r.proc.Alive() {
			r.proc.Interrupt(ErrNodeLost)
			lost++
		}
	}
	if lost > 0 {
		w.Fail(fmt.Errorf("%w: %s", ErrNodeLost, nodeName))
	}
	return lost
}

// Err returns the recorded failure, if any.
func (w *World) Err() error { return w.failed }

// Wait blocks the calling process until every world process terminates.
func (w *World) Wait(p *simcore.Proc) error {
	for w.running > 0 {
		if err := w.done.Wait(p); err != nil {
			return err
		}
	}
	return nil
}

// boxKey packs (src, tag) into a mailbox key.
func boxKey(src, tag int) int64 { return int64(src)<<32 | int64(uint32(tag)) }

// box returns (creating on demand) the queue for messages from src with tag.
func (r *Rank) box(src, tag int) *simcore.Chan {
	k := boxKey(src, tag)
	c := r.boxes[k]
	if c == nil {
		c = simcore.NewChan(r.world.sim, 0)
		r.boxes[k] = c
	}
	return c
}

// Profile returns a copy of the rank's counters.
func (r *Rank) Profile() Profile { return r.prof }

// NodeName returns the name of the node hosting this rank.
func (r *Rank) NodeName() string { return r.node.Name() }
