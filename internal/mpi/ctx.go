package mpi

import (
	"grads/internal/simcore"
	"grads/internal/topology"
)

// Ctx is the per-process handle application code runs against: it binds a
// physical rank to its simulated process and charges compute and
// communication costs to the right resources and counters.
type Ctx struct {
	rank *Rank
	proc *simcore.Proc
}

// PhysRank returns the process's physical rank in its world.
func (c *Ctx) PhysRank() int { return c.rank.phys }

// World returns the owning world.
func (c *Ctx) World() *World { return c.rank.world }

// Node returns the hosting node.
func (c *Ctx) Node() *topology.Node { return c.rank.node }

// Proc returns the underlying simulated process (for sleeps and interrupt
// targets).
func (c *Ctx) Proc() *simcore.Proc { return c.proc }

// Now returns the current virtual time.
func (c *Ctx) Now() float64 { return c.proc.Now() }

// Profile returns a copy of this process's counters.
func (c *Ctx) Profile() Profile { return c.rank.prof }

// Compute executes ops floating-point operations on the hosting node's CPU
// under processor sharing, charging compute time and flops to the profile.
// On interrupt it returns the cause with the partial work recorded.
func (c *Ctx) Compute(ops float64) error {
	start := c.proc.Now()
	done, err := c.rank.node.CPU.Compute(c.proc, ops)
	c.rank.prof.ComputeTime += c.proc.Now() - start
	c.rank.prof.Flops += done
	return err
}

// MarkIteration records an application progress mark (iteration number),
// which contract-monitor sensors read.
func (c *Ctx) MarkIteration(iter int) {
	c.rank.prof.Iteration = iter
	c.rank.prof.IterationAt = c.proc.Now()
}

// SendPhys sends a message to a physical rank: the sender blocks for the
// network transfer, then the message is deposited in the receiver's mailbox.
// Intra-node sends cost only a yield.
func (c *Ctx) SendPhys(dst, tag int, bytes float64, payload any) error {
	w := c.rank.world
	if dst < 0 || dst >= len(w.ranks) {
		panic("mpi: send to rank out of range")
	}
	start := c.proc.Now()
	route := w.grid.Route(c.rank.node, w.ranks[dst].node)
	if _, err := w.grid.Net.Transfer(c.proc, route, bytes); err != nil {
		c.rank.prof.CommTime += c.proc.Now() - start
		return err
	}
	c.rank.prof.CommTime += c.proc.Now() - start
	c.rank.prof.BytesSent += bytes
	c.rank.prof.MsgsSent++
	w.ranks[dst].box(c.rank.phys, tag).TryPut(Msg{
		Src: c.rank.phys, Tag: tag, Bytes: bytes, Payload: payload,
	})
	return nil
}

// RecvPhys blocks until a message from physical rank src with the given tag
// arrives, charging the wait to communication time.
func (c *Ctx) RecvPhys(src, tag int) (Msg, error) {
	start := c.proc.Now()
	v, err := c.rank.box(src, tag).Get(c.proc)
	c.rank.prof.CommTime += c.proc.Now() - start
	if err != nil {
		return Msg{}, err
	}
	return v.(Msg), nil
}
