package mpi

import (
	"errors"
	"testing"

	"grads/internal/simcore"
)

// TestFailNodeKillsHostedRanksOnly: the hosted rank gets ErrNodeLost, the
// peers unwind with ErrWorldAborted, and the world records the failure.
func TestFailNodeKillsHostedRanksOnly(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 2)
	errs := make([]error, 2)
	w.Start(func(ctx *Ctx) {
		errs[ctx.PhysRank()] = ctx.Compute(1e12) // long enough to be mid-compute at t=1
	})
	sim.At(1, func() {
		if lost := w.FailNode(w.Node(0).Name()); lost != 1 {
			t.Errorf("FailNode lost %d procs, want 1", lost)
		}
	})
	sim.Run()
	if !errors.Is(errs[0], ErrNodeLost) {
		t.Fatalf("hosted rank got %v, want ErrNodeLost", errs[0])
	}
	if !errors.Is(errs[1], ErrWorldAborted) {
		t.Fatalf("surviving rank got %v, want ErrWorldAborted", errs[1])
	}
	if !errors.Is(w.Err(), ErrNodeLost) {
		t.Fatalf("world error %v, want ErrNodeLost", w.Err())
	}
	if !w.Node(0).Down() {
		t.Fatal("failed node not marked down")
	}
}

// TestFailNodeUnknownNode: a node outside the world's placement is a
// harmless no-op — nothing dies, the run completes.
func TestFailNodeUnknownNode(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 2)
	done := 0
	w.Start(func(ctx *Ctx) {
		if err := ctx.Compute(1e9); err == nil {
			done++
		}
	})
	sim.At(0.5, func() {
		if lost := w.FailNode("not-a-node"); lost != 0 {
			t.Errorf("unknown node lost %d procs, want 0", lost)
		}
	})
	sim.Run()
	if done != 2 || w.Err() != nil {
		t.Fatalf("done=%d err=%v, want an unaffected world", done, w.Err())
	}
}

// TestFailNodeSameNodeTwice: the second failure of an already-failed node
// finds no live process and returns 0.
func TestFailNodeSameNodeTwice(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 2)
	w.Start(func(ctx *Ctx) { ctx.Compute(1e12) })
	name := w.Node(0).Name()
	var first, second int
	sim.At(1, func() { first = w.FailNode(name) })
	sim.At(2, func() { second = w.FailNode(name) })
	sim.Run()
	if first != 1 || second != 0 {
		t.Fatalf("first=%d second=%d, want 1 then 0", first, second)
	}
}

// TestFailNodeAfterWorldExited: once every rank has terminated, FailNode is
// a no-op — in particular it must not mark the (reusable) node down.
func TestFailNodeAfterWorldExited(t *testing.T) {
	sim := simcore.New(1)
	_, w := testWorld(t, sim, 2)
	w.Start(func(ctx *Ctx) { ctx.Compute(1e6) })
	sim.Run()
	if w.Running() != 0 {
		t.Fatalf("%d ranks still running", w.Running())
	}
	if lost := w.FailNode(w.Node(0).Name()); lost != 0 {
		t.Fatalf("FailNode after exit lost %d procs, want 0", lost)
	}
	if w.Node(0).Down() {
		t.Fatal("FailNode after exit must not touch node state")
	}
	if w.Err() != nil {
		t.Fatalf("FailNode after exit recorded %v", w.Err())
	}
}
