package appmgr

import (
	"testing"

	"grads/internal/simcore"
)

// TestRecoveryWithPeriodicCheckpoints: a node dies mid-run; the manager
// rolls the QR back to its last committed checkpoint, remaps onto the
// surviving resources and finishes.
func TestRecoveryWithPeriodicCheckpoints(t *testing.T) {
	r := newRig(t, 4000)
	r.qr.CheckpointEvery = 5
	r.mgr.RSS = r.rss

	// Kill the first scheduled node 60 s after the app starts making
	// progress (the app runs ~160 s total).
	r.sim.Spawn("chaos", func(p *simcore.Proc) {
		for r.qr.DonePanels() == 0 {
			if p.Sleep(1) != nil {
				return
			}
		}
		if p.Sleep(60) != nil {
			return
		}
		if n := r.qr.FailCurrentNode(0); n == 0 {
			t.Error("no process was killed by the failure")
		}
	})

	var rep *Report
	r.sim.Spawn("user", func(p *simcore.Proc) {
		got, err := r.mgr.Execute(p, r.qr, r.grid.Nodes())
		if err != nil {
			t.Errorf("Execute did not recover: %v", err)
			return
		}
		rep = got
	})
	r.sim.Run()
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Failures != 1 {
		t.Fatalf("failures = %d, want 1", rep.Failures)
	}
	if rep.Runs < 2 {
		t.Fatalf("runs = %d, want a recovery segment", rep.Runs)
	}
	if r.qr.DonePanels() != r.qr.Panels() {
		t.Fatalf("finished %d of %d panels", r.qr.DonePanels(), r.qr.Panels())
	}
	// The recovery segment must have restored from checkpoints.
	if rep.Sum(PhaseCkptRead, 0) <= 0 {
		t.Fatal("recovery did not read checkpoints")
	}
	if rep.Sum(PhaseLostWork, 0) <= 0 {
		t.Fatal("lost work not recorded")
	}
	// The dead node must not be selected again.
	for _, n := range r.qr.CurNodes() {
		if n.Down() {
			t.Fatalf("restarted on the failed node %s", n.Name())
		}
	}
}

// TestRecoveryWithoutCheckpointsRestartsFromScratch: no periodic
// checkpoints; the failure discards all progress but the run still
// completes.
func TestRecoveryWithoutCheckpointsRestartsFromScratch(t *testing.T) {
	r := newRig(t, 2000)
	r.mgr.RSS = r.rss
	r.sim.Spawn("chaos", func(p *simcore.Proc) {
		for r.qr.DonePanels() == 0 {
			if p.Sleep(1) != nil {
				return
			}
		}
		p.Sleep(5) // the N=2000 run lasts ~19 s; land mid-run
		if n := r.qr.FailCurrentNode(0); n == 0 {
			t.Error("failure injection missed the running world")
		}
	})
	var rep *Report
	r.sim.Spawn("user", func(p *simcore.Proc) {
		got, err := r.mgr.Execute(p, r.qr, r.grid.Nodes())
		if err != nil {
			t.Errorf("Execute: %v", err)
			return
		}
		rep = got
	})
	r.sim.Run()
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Failures != 1 {
		t.Fatalf("failures = %d", rep.Failures)
	}
	if rep.Sum(PhaseCkptRead, 0) != 0 {
		t.Fatal("restart from scratch should not read checkpoints")
	}
	if r.qr.DonePanels() != r.qr.Panels() {
		t.Fatalf("finished %d of %d panels", r.qr.DonePanels(), r.qr.Panels())
	}
}
