// Package appmgr implements the GrADS application manager: the right-hand
// side of Figure 1. Given a COP and a resource pool it performs resource
// selection (mapper + performance model), invokes the binder to tailor and
// instrument the program on the chosen nodes, launches it (with the MPI
// synchronization when required), and — when an execution segment ends in
// an SRS stop — repeats the cycle on the resources the rescheduler chose.
// Every phase is timed, producing exactly the Figure 3 breakdown.
package appmgr

import (
	"errors"
	"fmt"

	"grads/internal/binder"
	"grads/internal/cop"
	"grads/internal/faultinject"
	"grads/internal/ibp"
	"grads/internal/mpi"
	"grads/internal/netsim"
	"grads/internal/nws"
	"grads/internal/resilience"
	"grads/internal/simcore"
	"grads/internal/srs"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Phase names used in reports (the Figure 3 legend, plus the
// fault-tolerance extension's recovery phase).
const (
	PhaseResourceSelection = "resource selection"
	PhasePerfModeling      = "performance modeling"
	PhaseGridOverhead      = "grid overhead"
	PhaseAppStart          = "application start"
	PhaseCkptWrite         = "checkpoint writing"
	PhaseCkptRead          = "checkpoint reading"
	PhaseAppDuration       = "application duration"
	PhaseLostWork          = "lost work" // execution discarded by a failure
)

// ErrNoResources reports that the mapper found no usable nodes in the
// pool — every candidate is down or the lease has been reclaimed. The
// metascheduler treats this as "requeue the job", not a fatal error.
var ErrNoResources = errors.New("appmgr: no usable resources in pool")

// PhaseRecord times one phase of one execution segment.
type PhaseRecord struct {
	Run      int // 1 for the initial execution, 2 after the first restart...
	Name     string
	Duration float64
}

// Report is the outcome of a managed execution.
type Report struct {
	Phases   []PhaseRecord
	Runs     int
	Total    float64 // end-to-end virtual time including all overheads
	Migrated bool
	Failures int // node failures survived (fault-tolerance extension)
}

// Sum returns the summed duration of a phase across all runs (or one run if
// run > 0).
func (r *Report) Sum(name string, run int) float64 {
	sum := 0.0
	for _, p := range r.Phases {
		if p.Name == name && (run == 0 || p.Run == run) {
			sum += p.Duration
		}
	}
	return sum
}

// Manager drives COP executions.
type Manager struct {
	Sim     *simcore.Sim
	Grid    *topology.Grid
	Binder  *binder.Binder
	Weather *nws.Service

	// MPISyncTime is the global synchronization cost before launching an
	// MPI application (§2).
	MPISyncTime float64
	// LaunchTime is the per-segment process start cost.
	LaunchTime float64
	// ModelEvalTime is the cost of one performance-model evaluation during
	// resource selection (the mapper evaluates the pool once).
	ModelEvalTime float64

	// NextNodes, when set, overrides the mapper for the next segment (the
	// rescheduler decided where to restart).
	NextNodes []*topology.Node

	// PoolFn, when set, re-derives the resource pool at the start of every
	// execution segment, overriding the pool passed to Execute. Leased
	// pools change between segments: the metascheduler reclaims crashed
	// nodes and shrinks leases when it preempts a job, and the shrunken
	// pool must be what the next segment's resource selection sees.
	PoolFn func() []*topology.Node

	// RSS, when set, is cleared between segments so the restarted
	// execution does not immediately see the stale stop request.
	RSS *srs.RSS

	// Retrier, when set, retries the bind phase across transient service
	// outages (binder or GIS down) instead of failing the execution.
	Retrier *resilience.Retrier
}

// New creates a manager with defaults calibrated to the paper's "Grid
// overhead" magnitudes (tens of seconds).
func New(sim *simcore.Sim, grid *topology.Grid, b *binder.Binder, w *nws.Service) *Manager {
	return &Manager{
		Sim:           sim,
		Grid:          grid,
		Binder:        b,
		Weather:       w,
		MPISyncTime:   5,
		LaunchTime:    3,
		ModelEvalTime: 10,
	}
}

// avail returns the availability forecast function for mappers.
func (m *Manager) avail(n *topology.Node) float64 {
	if m.Weather != nil {
		return m.Weather.CPUForecast(n.Name())
	}
	return n.CPU.Availability()
}

// Execute runs the COP to completion from the calling process, restarting
// after every SRS stop and recovering from node failures when the COP is
// cop.Recoverable, and returns the phase report. pool is the resource
// universe the mapper selects from.
func (m *Manager) Execute(p *simcore.Proc, app cop.COP, pool []*topology.Node) (*Report, error) {
	rep := &Report{}
	start := p.Now()
	restartNext := false
	for run := 1; ; run++ {
		rep.Runs = run
		if m.PoolFn != nil {
			pool = m.PoolFn()
		}
		record := func(name string, d float64) {
			rep.Phases = append(rep.Phases, PhaseRecord{Run: run, Name: name, Duration: d})
			if tel := m.Sim.Telemetry(); tel != nil {
				tel.Histogram("appmgr", "phase_seconds").Observe(d)
				tel.Emit(telemetry.Event{
					Type: telemetry.EvAppPhase, Comp: "appmgr:" + app.Name(), Name: name,
					Dur:  d,
					Args: []telemetry.Arg{telemetry.I("run", run)},
				})
			}
		}

		// Resource selection: the mapper picks nodes from the live part of
		// the pool (crashed nodes never re-enter a placement until they
		// recover).
		t0 := p.Now()
		var nodes []*topology.Node
		if m.NextNodes != nil {
			nodes = m.NextNodes
			m.NextNodes = nil
		} else {
			nodes = app.Mapper().Map(livePool(pool), m.avail)
		}
		if len(nodes) == 0 {
			return rep, fmt.Errorf("%w: mapper selected none for %s", ErrNoResources, app.Name())
		}
		if err := p.Sleep(2); err != nil { // MDS/NWS queries
			return rep, err
		}
		record(PhaseResourceSelection, p.Now()-t0)

		// Performance modeling: evaluate the COP's model on the choice.
		t0 = p.Now()
		app.Model().RemainingTime(nodes, m.avail)
		if err := p.Sleep(m.ModelEvalTime); err != nil {
			return rep, err
		}
		record(PhasePerfModeling, p.Now()-t0)

		// Grid overhead: the distributed binder tailors the COP per node.
		// The whole bind is retried across transient service outages.
		t0 = p.Now()
		var bres *binder.Result
		err := m.Retrier.Do(p, "binder.bind", func() error {
			var berr error
			bres, berr = m.Binder.Bind(p, app.Pkg(), nodes)
			return berr
		})
		if err != nil {
			return rep, err
		}
		record(PhaseGridOverhead, p.Now()-t0)

		// Pre-launch check: a chosen node may have crashed while the bind
		// ran. Launching onto it would fail instantly, so discard the bind
		// and re-select instead.
		if downNode := firstDown(nodes); downNode != nil {
			rep.Failures++
			record(PhaseLostWork, p.Now()-t0)
			m.emitRestart(app.Name(), run, "node-down-prelaunch")
			continue
		}

		// Application start: MPI synchronization plus process launch.
		t0 = p.Now()
		startCost := m.LaunchTime
		if bres.MPISyncNeeded {
			startCost += m.MPISyncTime
		}
		if err := p.Sleep(startCost); err != nil {
			return rep, err
		}
		record(PhaseAppStart, p.Now()-t0)

		// Application execution segment.
		segStart := p.Now()
		rr, err := app.Run(p, nodes, restartNext)
		if err != nil {
			// Node failure (or a storage outage that outlasted the retry
			// policy): if the COP can roll back to a committed checkpoint,
			// discard the segment and re-run the lifecycle on the surviving
			// resources.
			// Checkpoint corruption is not retryable (re-reading rotted
			// bytes never heals them) but it IS recoverable: Rollback
			// re-plans the restore, and the planner skips generations
			// without an intact verified copy — the lineage fallback.
			rec, recoverable := app.(cop.Recoverable)
			if !recoverable || !(isNodeLoss(err) || faultinject.Retryable(err) || errors.Is(err, ibp.ErrCorrupt)) {
				return rep, err
			}
			rep.Failures++
			record(PhaseLostWork, p.Now()-segStart)
			restartNext = rec.Rollback()
			if m.RSS != nil {
				m.RSS.ClearStop()
			}
			m.emitRestart(app.Name(), run, "node-failure")
			continue
		}
		if rr.CkptRead > 0 {
			record(PhaseCkptRead, rr.CkptRead)
		}
		record(PhaseAppDuration, rr.Duration)
		if rr.CkptWrite > 0 {
			record(PhaseCkptWrite, rr.CkptWrite)
		}
		if !rr.Stopped {
			rep.Total = p.Now() - start
			return rep, nil
		}
		rep.Migrated = true
		restartNext = true
		if m.RSS != nil {
			m.RSS.ClearStop()
		}
		m.emitRestart(app.Name(), run, "srs-stop")
	}
}

// livePool filters crashed nodes out of a resource pool.
func livePool(pool []*topology.Node) []*topology.Node {
	out := make([]*topology.Node, 0, len(pool))
	for _, n := range pool {
		if !n.Down() {
			out = append(out, n)
		}
	}
	return out
}

// firstDown returns the first crashed node of a placement, or nil.
func firstDown(nodes []*topology.Node) *topology.Node {
	for _, n := range nodes {
		if n.Down() {
			return n
		}
	}
	return nil
}

// isNodeLoss classifies an execution error as a recoverable infrastructure
// loss: the MPI layer reported a crash, a severed transfer surfaced it
// first, or a link on the transfer's route went down (a partition is as
// transient as a crashed endpoint — the segment rolls back and re-runs,
// it must not kill the job).
func isNodeLoss(err error) bool {
	return errors.Is(err, mpi.ErrNodeLost) ||
		errors.Is(err, netsim.ErrEndpointDown) ||
		errors.Is(err, netsim.ErrLinkDown)
}

// emitRestart publishes an application restart event (migration restart or
// failure recovery) into telemetry.
func (m *Manager) emitRestart(app string, run int, reason string) {
	tel := m.Sim.Telemetry()
	if tel == nil {
		return
	}
	tel.Counter("appmgr", "restarts").Inc()
	tel.Emit(telemetry.Event{
		Type: telemetry.EvAppRestart, Comp: "appmgr:" + app, Name: reason,
		Args: []telemetry.Arg{telemetry.I("run", run)},
	})
}
