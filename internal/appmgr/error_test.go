package appmgr

import (
	"testing"

	"grads/internal/faultinject"
	"grads/internal/resilience"
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// captureEvents installs a buffering telemetry hub on the rig's sim and
// returns the buffer.
func captureEvents(r *rig) *telemetry.Buffer {
	tel := telemetry.New()
	buf := telemetry.NewBuffer()
	tel.AddSink(buf)
	r.sim.SetTelemetry(tel)
	return buf
}

func eventNames(buf *telemetry.Buffer, typ telemetry.EventType) []string {
	var names []string
	for _, e := range buf.Events() {
		if e.Type == typ {
			names = append(names, e.Name)
		}
	}
	return names
}

// TestExecuteMapperNoResources: with every pool node crashed the mapper has
// nothing to select from and Execute fails up front instead of launching.
func TestExecuteMapperNoResources(t *testing.T) {
	r := newRig(t, 1000)
	for _, n := range r.grid.Nodes() {
		n.SetDown(true)
	}
	var execErr error
	r.sim.Spawn("user", func(p *simcore.Proc) {
		_, execErr = r.mgr.Execute(p, r.qr, r.grid.Nodes())
	})
	r.sim.Run()
	if execErr == nil {
		t.Fatal("Execute succeeded with an all-down pool")
	}
}

// TestExecuteBinderOutageRetried: a transient binder outage during the bind
// phase is ridden out by the manager's retrier; the execution completes and
// the re-attempts are visible as service.retry telemetry.
func TestExecuteBinderOutageRetried(t *testing.T) {
	r := newRig(t, 1000)
	buf := captureEvents(r)
	h := faultinject.NewHealth(r.sim, "binder")
	r.mgr.Binder.SetHealth(h)
	retr := resilience.NewRetrier(r.sim, resilience.DefaultPolicy(), nil)
	r.mgr.Retrier = retr

	// The bind phase starts after ~12 s of selection + modeling; take the
	// binder down across it and bring it back shortly after.
	h.SetDown(true)
	r.sim.At(14, func() { h.SetDown(false) })

	var rep *Report
	var execErr error
	r.sim.Spawn("user", func(p *simcore.Proc) {
		rep, execErr = r.mgr.Execute(p, r.qr, r.grid.Nodes())
	})
	r.sim.Run()
	if execErr != nil {
		t.Fatalf("Execute did not survive the transient outage: %v", execErr)
	}
	if rep == nil || rep.Runs != 1 {
		t.Fatalf("report %+v, want a single completed run", rep)
	}
	if retr.Retries() == 0 {
		t.Fatal("no retries recorded for the outage")
	}
	if len(eventNames(buf, telemetry.EvServiceRetry)) == 0 {
		t.Fatal("no service.retry telemetry emitted")
	}
}

// TestExecuteBinderPermanentOutageFails: when the binder never comes back
// the retrier exhausts its attempts and Execute surfaces the outage rather
// than looping forever.
func TestExecuteBinderPermanentOutageFails(t *testing.T) {
	r := newRig(t, 1000)
	h := faultinject.NewHealth(r.sim, "binder")
	r.mgr.Binder.SetHealth(h)
	h.SetDown(true)
	retr := resilience.NewRetrier(r.sim, resilience.DefaultPolicy(), nil)
	r.mgr.Retrier = retr

	var execErr error
	r.sim.Spawn("user", func(p *simcore.Proc) {
		_, execErr = r.mgr.Execute(p, r.qr, r.grid.Nodes())
	})
	r.sim.RunUntil(1000)
	if !faultinject.Retryable(execErr) {
		t.Fatalf("Execute = %v, want the exhausted retryable outage", execErr)
	}
	if retr.GaveUp() != 1 {
		t.Fatalf("gaveUp=%d, want 1", retr.GaveUp())
	}
}

// TestExecuteNodeFailureEmitsRestartTelemetry: a node crash mid-run produces
// an app.restart event with the node-failure reason (plus the restarts
// counter) as the manager re-runs the lifecycle.
func TestExecuteNodeFailureEmitsRestartTelemetry(t *testing.T) {
	r := newRig(t, 4000)
	buf := captureEvents(r)
	r.qr.CheckpointEvery = 5
	r.mgr.RSS = r.rss

	r.sim.Spawn("chaos", func(p *simcore.Proc) {
		for r.qr.DonePanels() == 0 {
			if p.Sleep(1) != nil {
				return
			}
		}
		if p.Sleep(60) != nil {
			return
		}
		r.qr.FailCurrentNode(0)
	})
	var rep *Report
	r.sim.Spawn("user", func(p *simcore.Proc) {
		got, err := r.mgr.Execute(p, r.qr, r.grid.Nodes())
		if err != nil {
			t.Errorf("Execute did not recover: %v", err)
			return
		}
		rep = got
	})
	r.sim.Run()
	if rep == nil || rep.Failures != 1 {
		t.Fatalf("report %+v, want one survived failure", rep)
	}
	restarts := eventNames(buf, telemetry.EvAppRestart)
	foundNodeFailure := false
	for _, name := range restarts {
		if name == "node-failure" {
			foundNodeFailure = true
		}
	}
	if !foundNodeFailure {
		t.Fatalf("restart events %v, want a node-failure restart", restarts)
	}
	if got := r.sim.Telemetry().Counter("appmgr", "restarts").Value(); got == 0 {
		t.Fatal("appmgr restarts counter not incremented")
	}
}
