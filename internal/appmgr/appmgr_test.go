package appmgr

import (
	"testing"

	"grads/internal/apps"
	"grads/internal/binder"
	"grads/internal/gis"
	"grads/internal/ibp"
	"grads/internal/simcore"
	"grads/internal/srs"
	"grads/internal/topology"
)

type rig struct {
	sim  *simcore.Sim
	grid *topology.Grid
	rss  *srs.RSS
	mgr  *Manager
	qr   *apps.QR
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	sim := simcore.New(1)
	grid := topology.QRTestbed(sim)
	st := ibp.New(sim, grid)
	st.AddDepotsEverywhere()
	g := gis.New(sim, grid)
	g.RegisterSoftwareEverywhere(binder.LocalBinderPkg, "/opt/grads/binder")
	for _, lib := range []string{"scalapack", "blas", "srs", "autopilot"} {
		g.RegisterSoftwareEverywhere(lib, "/opt/"+lib)
	}
	b := binder.New(sim, g)
	rss := srs.NewRSS(sim, st, "qr")
	qr, err := apps.NewQR(grid, rss, b, nil, n, 100)
	if err != nil {
		t.Fatalf("NewQR: %v", err)
	}
	return &rig{sim: sim, grid: grid, rss: rss, mgr: New(sim, grid, b, nil), qr: qr}
}

func TestExecuteSingleSegment(t *testing.T) {
	r := newRig(t, 1000)
	var rep *Report
	r.sim.Spawn("user", func(p *simcore.Proc) {
		got, err := r.mgr.Execute(p, r.qr, r.grid.Nodes())
		if err != nil {
			t.Errorf("Execute: %v", err)
			return
		}
		rep = got
	})
	r.sim.Run()
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Runs != 1 || rep.Migrated {
		t.Fatalf("report %+v, want single unmigrated run", rep)
	}
	for _, phase := range []string{PhaseResourceSelection, PhasePerfModeling, PhaseGridOverhead, PhaseAppStart, PhaseAppDuration} {
		if rep.Sum(phase, 1) <= 0 {
			t.Fatalf("phase %q missing from report: %+v", phase, rep.Phases)
		}
	}
	if rep.Sum(PhaseCkptWrite, 0) != 0 || rep.Sum(PhaseCkptRead, 0) != 0 {
		t.Fatal("checkpoint phases recorded without a migration")
	}
	if rep.Total <= rep.Sum(PhaseAppDuration, 1) {
		t.Fatal("total must include overheads")
	}
}

func TestExecuteWithStopAndRestart(t *testing.T) {
	r := newRig(t, 4000)
	uiuc := r.grid.Site("UIUC").Nodes()
	// Force a stop mid-run-1 (the segment starts after ~25s of overheads)
	// and point the restart at UIUC.
	r.sim.Schedule(40, func() {
		r.mgr.NextNodes = uiuc
		r.rss.RequestStop(4)
	})
	var rep *Report
	r.sim.Spawn("user", func(p *simcore.Proc) {
		got, err := r.mgr.Execute(p, r.qr, r.grid.Nodes())
		if err != nil {
			t.Errorf("Execute: %v", err)
			return
		}
		// Clear the stop for run 2 happens via RSS ClearStop by the
		// experiment; here the manager restarts immediately, so clear in
		// the stop scheduling above instead.
		rep = got
	})
	// ClearStop must happen between segments; hook it on the manager loop
	// via a monitor process that clears once all ranks stopped.
	r.sim.Spawn("rss-clear", func(p *simcore.Proc) {
		if err := r.rss.WaitAllStopped(p); err != nil {
			return
		}
		r.rss.ClearStop()
	})
	r.sim.Run()
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Runs != 2 || !rep.Migrated {
		t.Fatalf("runs=%d migrated=%v, want a 2-segment migrated execution", rep.Runs, rep.Migrated)
	}
	if rep.Sum(PhaseCkptWrite, 1) <= 0 {
		t.Fatal("run 1 should record checkpoint writing")
	}
	if rep.Sum(PhaseCkptRead, 2) <= 0 {
		t.Fatal("run 2 should record checkpoint reading")
	}
	if rep.Sum(PhaseGridOverhead, 2) <= 0 || rep.Sum(PhaseAppStart, 2) <= 0 {
		t.Fatal("run 2 overhead phases missing")
	}
	// Checkpoint reading crosses the WAN: it should dominate writing.
	if rep.Sum(PhaseCkptRead, 2) < 5*rep.Sum(PhaseCkptWrite, 1) {
		t.Fatalf("read %v not dominating write %v", rep.Sum(PhaseCkptRead, 2), rep.Sum(PhaseCkptWrite, 1))
	}
}

func TestReportSum(t *testing.T) {
	rep := &Report{Phases: []PhaseRecord{
		{Run: 1, Name: "x", Duration: 2},
		{Run: 2, Name: "x", Duration: 3},
		{Run: 1, Name: "y", Duration: 5},
	}}
	if rep.Sum("x", 0) != 5 || rep.Sum("x", 2) != 3 || rep.Sum("z", 0) != 0 {
		t.Fatal("Sum filters wrong")
	}
}
