package core

import (
	"fmt"
	"sort"
	"strings"
)

// FormatGantt renders a schedule as a text Gantt chart: one row per node
// that received work, time flowing left to right across width cells. Each
// component is drawn with a letter (a, b, c, ... by component index), and
// idle time with '.'.
func FormatGantt(w *Workflow, s *Schedule, width int) string {
	if width < 20 {
		width = 60
	}
	if s.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	// Group assignments per node.
	type span struct {
		comp          int
		start, finish float64
	}
	byNode := map[string][]span{}
	for ci, a := range s.Assignments {
		if a.Node == nil {
			continue
		}
		byNode[a.Node.Name()] = append(byNode[a.Node.Name()], span{ci, a.Start, a.Finish})
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	glyph := func(ci int) byte {
		const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
		return letters[ci%len(letters)]
	}
	cell := func(t float64) int {
		c := int(t / s.Makespan * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	nameW := 0
	for _, n := range nodes {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  0%s%.1fs\n", nameW, "node",
		strings.Repeat(" ", width-len(fmt.Sprintf("%.1fs", s.Makespan))-1), s.Makespan)
	for _, n := range nodes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, sp := range byNode[n] {
			g := glyph(sp.comp)
			for i := cell(sp.start); i <= cell(sp.finish); i++ {
				row[i] = g
			}
		}
		fmt.Fprintf(&b, "%-*s  %s\n", nameW, n, row)
	}
	// Legend.
	fmt.Fprintf(&b, "%-*s  ", nameW, "")
	for ci, c := range w.Components {
		if s.Assignments[ci].Node == nil {
			continue
		}
		fmt.Fprintf(&b, "%c=%s ", glyph(ci), c.Name)
		if (ci+1)%6 == 0 {
			fmt.Fprintf(&b, "\n%-*s  ", nameW, "")
		}
	}
	b.WriteString("\n")
	return b.String()
}
