package core

import (
	"strings"
	"testing"
)

func TestFormatGantt(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	a := w.Add(&Component{Name: "prep", Model: flatModel(t, "p", 1e9), ProblemSize: 1})
	w.Add(&Component{Name: "main", Model: flatModel(t, "m", 2e9), ProblemSize: 1}, a)
	w.Add(&Component{Name: "side", Model: flatModel(t, "s", 1e9), ProblemSize: 1}, a)
	sched, err := s.Schedule(w, g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatGantt(w, sched, 50)
	if !strings.Contains(out, "a=prep") || !strings.Contains(out, "b=main") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Every node used appears as a row.
	used := map[string]bool{}
	for _, asg := range sched.Assignments {
		used[asg.Node.Name()] = true
	}
	for n := range used {
		if !strings.Contains(out, n) {
			t.Fatalf("node %s missing from chart:\n%s", n, out)
		}
	}
	// Bars present.
	if !strings.Contains(out, "aa") {
		t.Fatalf("no bar for component a:\n%s", out)
	}
	if FormatGantt(w, &Schedule{}, 40) != "(empty schedule)\n" {
		t.Fatal("empty schedule rendering wrong")
	}
}
