// Package core implements the paper's primary contribution: the GrADS
// workflow scheduler (§3). A workflow is a DAG of application components;
// the scheduler ranks every eligible resource for every component using
// performance-model execution estimates and NWS-informed data-movement
// costs, collates the ranks into a performance matrix, runs the min-min,
// max-min and sufferage heuristics over it, and keeps the schedule with the
// minimum makespan.
package core

import (
	"fmt"

	"grads/internal/perfmodel"
	"grads/internal/topology"
)

// Component is one node of a workflow DAG.
type Component struct {
	Name string

	// Model estimates execution resource usage as a function of
	// ProblemSize (§3.2). A nil model makes the component free.
	Model       *perfmodel.ComponentModel
	ProblemSize float64

	// OutputBytes is the data volume this component hands to each
	// successor; InputBytes the volume staged from the workflow origin
	// for entry components.
	OutputBytes float64
	InputBytes  float64

	// Parallelizable components may be split into Width independent
	// sub-tasks by Expand (the EMAN classesbymra pattern).
	Parallelizable bool
	Width          int

	// Minimum resource requirements; resources failing them get an
	// infinite rank, per the paper.
	MinMemMB float64
	ReqArch  topology.Arch // empty = any architecture

	// SubOf is the index of the original component when this one was
	// produced by Expand, else -1.
	SubOf int
}

// Workflow is a DAG of components with dependency edges.
type Workflow struct {
	Components []*Component
	deps       [][]int // deps[i] = indices of predecessors of component i

	// Origin, if set, is where entry components' input data initially
	// lives; staging it to the chosen resource is charged as data cost.
	Origin *topology.Node
}

// NewWorkflow creates an empty workflow.
func NewWorkflow() *Workflow { return &Workflow{} }

// DepError reports an invalid dependency edge: a predecessor index that is
// out of range (including forward and self references, which would make the
// DAG cyclic or dangling), a duplicate edge, or an edge participating in a
// cycle.
type DepError struct {
	Comp   int    // index of the component whose edge is invalid
	Dep    int    // the offending predecessor index (-1 for cycles)
	Reason string // "out of range", "self", "forward", "duplicate", "cycle"
}

func (e *DepError) Error() string {
	if e.Dep < 0 {
		return fmt.Sprintf("core: component %d: dependency %s", e.Comp, e.Reason)
	}
	return fmt.Sprintf("core: component %d: dependency %d %s", e.Comp, e.Dep, e.Reason)
}

// checkDeps validates the predecessor list of the component about to become
// index next.
func checkDeps(next int, deps []int) *DepError {
	seen := make(map[int]bool, len(deps))
	for _, d := range deps {
		switch {
		case d == next:
			return &DepError{Comp: next, Dep: d, Reason: "self"}
		case d > next:
			return &DepError{Comp: next, Dep: d, Reason: "forward"}
		case d < 0:
			return &DepError{Comp: next, Dep: d, Reason: "out of range"}
		case seen[d]:
			return &DepError{Comp: next, Dep: d, Reason: "duplicate"}
		}
		seen[d] = true
	}
	return nil
}

// AddChecked appends a component with the given predecessor indices and
// returns its index. Predecessors must already exist — self, forward,
// negative and duplicate indices are rejected with a *DepError — which keeps
// the graph acyclic by construction.
func (w *Workflow) AddChecked(c *Component, deps ...int) (int, error) {
	if err := checkDeps(len(w.Components), deps); err != nil {
		return 0, err
	}
	if c.SubOf == 0 {
		c.SubOf = -1
	}
	w.Components = append(w.Components, c)
	w.deps = append(w.deps, append([]int(nil), deps...))
	return len(w.Components) - 1, nil
}

// Add is AddChecked for programmatic construction: invalid predecessor
// indices are a caller bug and panic with the same *DepError.
func (w *Workflow) Add(c *Component, deps ...int) int {
	i, err := w.AddChecked(c, deps...)
	if err != nil {
		panic(err)
	}
	return i
}

// Validate re-checks the whole dependency structure: every edge in range
// with no self/forward/duplicate references (the invariant Add enforces),
// which in particular proves the graph acyclic. It exists for workflows
// whose edges arrive from outside Add — deserialized or generated specs.
func (w *Workflow) Validate() error {
	for i := range w.Components {
		if err := checkDeps(i, w.deps[i]); err != nil {
			return err
		}
	}
	return nil
}

// Deps returns the predecessor indices of component i.
func (w *Workflow) Deps(i int) []int { return w.deps[i] }

// Succs returns the successor adjacency: succs[i] lists the components that
// depend on i, in increasing index order.
func (w *Workflow) Succs() [][]int {
	succs := make([][]int, w.Len())
	for i := range w.Components {
		for _, d := range w.deps[i] {
			succs[d] = append(succs[d], i)
		}
	}
	return succs
}

// Len returns the number of components.
func (w *Workflow) Len() int { return len(w.Components) }

// Levels returns the components grouped by topological level (distance from
// the entry components), a convenient view for printing DAGs.
func (w *Workflow) Levels() [][]int {
	level := make([]int, w.Len())
	maxLevel := 0
	for i := range w.Components {
		l := 0
		for _, d := range w.deps[i] {
			if level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]int, maxLevel+1)
	for i, l := range level {
		out[l] = append(out[l], i)
	}
	return out
}

// CriticalPathTime returns a lower bound on makespan: the longest
// dependency chain, with each component charged its fastest time over the
// given resources (zero data costs).
func (w *Workflow) CriticalPathTime(resources []*topology.Node) float64 {
	finish := make([]float64, w.Len())
	for i, c := range w.Components {
		ready := 0.0
		for _, d := range w.deps[i] {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		best := 0.0
		if c.Model != nil && len(resources) > 0 {
			best = c.Model.Time(c.ProblemSize, resources[0])
			for _, r := range resources[1:] {
				if t := c.Model.Time(c.ProblemSize, r); t < best {
					best = t
				}
			}
		}
		finish[i] = ready + best
	}
	max := 0.0
	for _, f := range finish {
		if f > max {
			max = f
		}
	}
	return max
}

// Expand splits every parallelizable component into Width independent
// sub-tasks, each carrying 1/Width of the work and output volume, preserving
// all dependencies (each sub-task depends on all of the original's
// predecessors, and the original's successors depend on every sub-task).
// Sub-tasks record the original component index in SubOf.
func (w *Workflow) Expand() *Workflow {
	out := NewWorkflow()
	out.Origin = w.Origin
	// expansion[i] = indices in out corresponding to original component i.
	expansion := make([][]int, w.Len())
	for i, c := range w.Components {
		var predIdx []int
		for _, d := range w.deps[i] {
			predIdx = append(predIdx, expansion[d]...)
		}
		if !c.Parallelizable || c.Width <= 1 {
			cc := *c
			cc.SubOf = -1
			expansion[i] = []int{out.Add(&cc, predIdx...)}
			continue
		}
		width := c.Width
		for k := 0; k < width; k++ {
			sub := &Component{
				Name:        fmt.Sprintf("%s.%d", c.Name, k),
				Model:       scaleModel(c.Model, 1/float64(width)),
				ProblemSize: c.ProblemSize,
				OutputBytes: c.OutputBytes / float64(width),
				InputBytes:  c.InputBytes / float64(width),
				MinMemMB:    c.MinMemMB,
				ReqArch:     c.ReqArch,
				SubOf:       i,
			}
			expansion[i] = append(expansion[i], out.Add(sub, predIdx...))
		}
	}
	return out
}

// scaleModel returns a copy of m with the flop curve scaled by f (the
// per-sub-task share of a data-parallel component). MRD behavior is kept:
// each sub-task walks the same data structures over its slice.
func scaleModel(m *perfmodel.ComponentModel, f float64) *perfmodel.ComponentModel {
	if m == nil {
		return nil
	}
	scaled := *m
	coeffs := make(perfmodel.Poly, len(m.Flops))
	for i, c := range m.Flops {
		coeffs[i] = c * f
	}
	scaled.Flops = coeffs
	return &scaled
}
