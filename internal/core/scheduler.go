package core

import (
	"fmt"
	"math"
	"math/rand"

	"grads/internal/nws"
	"grads/internal/perfmodel"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Heuristic names accepted by ScheduleWith.
const (
	MinMin    = "min-min"
	MaxMin    = "max-min"
	Sufferage = "sufferage"
)

// Heuristics lists the three mapping heuristics the paper applies.
var Heuristics = []string{MinMin, MaxMin, Sufferage}

// Assignment records where and when one component runs.
type Assignment struct {
	Node   *topology.Node
	Start  float64
	Finish float64
}

// Schedule is a complete mapping of workflow components onto resources.
type Schedule struct {
	Heuristic   string
	Makespan    float64
	Assignments []Assignment // indexed by component
}

// Scheduler is the GrADS workflow scheduler. W1 and W2 weight execution
// cost and data-movement cost in the rank function
// rank(c, r) = W1*ecost(c, r) + W2*dcost(c, r).
type Scheduler struct {
	W1, W2 float64

	// Weather optionally supplies CPU-availability and network forecasts;
	// without it nodes are assumed idle and transfers are estimated from
	// instantaneous network state.
	Weather *nws.Service

	Grid *topology.Grid

	// Cache memoizes model evaluations across the search: the three
	// heuristics re-rank the same (component, node) pairs against identical
	// availabilities, and repeated searches at unchanged network state
	// re-estimate the same transfers. Every input of a cached evaluation is
	// part of its key, so cached and uncached searches produce bit-identical
	// schedules. A nil Cache disables memoization.
	Cache *perfmodel.Cache
}

// NewScheduler creates a scheduler with the paper's defaults (equal
// weights) and an evaluation cache.
func NewScheduler(grid *topology.Grid, weather *nws.Service) *Scheduler {
	return &Scheduler{W1: 1, W2: 1, Weather: weather, Grid: grid, Cache: perfmodel.NewCache(0)}
}

// avail returns the forecast availability of a node.
func (s *Scheduler) avail(n *topology.Node) float64 {
	if s.Weather != nil {
		return s.Weather.CPUForecast(n.Name())
	}
	return 1
}

// transferTime estimates moving bytes between two nodes.
func (s *Scheduler) transferTime(a, b *topology.Node, bytes float64) float64 {
	if a == nil || b == nil || a == b || bytes <= 0 {
		return 0
	}
	if s.Weather != nil {
		// Forecast-backed estimates change with NWS state we cannot version,
		// so they are not memoized.
		return s.Weather.TransferEstimate(a, b, bytes)
	}
	if s.Cache != nil && s.Grid != nil && s.Grid.Net != nil {
		// The network's state version covers every input of the estimate
		// (flow set, background, degradations, latency factors), so equal
		// keys guarantee equal results.
		var sig perfmodel.Sig
		sig.S(a.Name()).S(b.Name()).F(bytes).I(s.Grid.Net.StateVersion())
		key := sig.String()
		if v, ok := s.Cache.Lookup("xfer", key); ok {
			return v
		}
		v := s.Grid.TransferTimeEstimate(a, b, bytes)
		s.Cache.Store("xfer", key, v)
		return v
	}
	return s.Grid.TransferTimeEstimate(a, b, bytes)
}

// ECost exposes the execution-cost half of the rank function — the expected
// execution time of c on r under forecast load, memoized like Rank — for
// engines built over the same cost model (internal/listsched).
func (s *Scheduler) ECost(c *Component, r *topology.Node) float64 { return s.ecost(c, r) }

// DCost exposes the data-movement half of the rank function: the cost of
// staging component ci's inputs to r given the partial schedule.
func (s *Scheduler) DCost(w *Workflow, ci int, r *topology.Node, assigned []Assignment) float64 {
	return s.dcostFrom(w, w.Components[ci], ci, r, assigned)
}

// TransferTime exposes the memoized point-to-point transfer estimate the
// data costs are built from.
func (s *Scheduler) TransferTime(a, b *topology.Node, bytes float64) float64 {
	return s.transferTime(a, b, bytes)
}

// Eligible reports whether a resource meets a component's minimum
// requirements (§3.1: failing resources get rank infinity).
func Eligible(c *Component, r *topology.Node) bool { return eligible(c, r) }

// eligible reports whether a resource meets a component's minimum
// requirements (§3.1: failing resources get rank infinity).
func eligible(c *Component, r *topology.Node) bool {
	if c.ReqArch != "" && r.Spec.Arch != c.ReqArch {
		return false
	}
	if r.Spec.MemMB < c.MinMemMB {
		return false
	}
	return true
}

// ecost is the expected execution time of c on r under forecast load.
func (s *Scheduler) ecost(c *Component, r *topology.Node) float64 {
	if c.Model == nil {
		return 0
	}
	av := s.avail(r)
	if s.Cache == nil {
		return c.Model.TimeLoaded(c.ProblemSize, r, av)
	}
	// TimeLoaded is pure in (model, size, node spec, availability); the node
	// spec is static, so this key covers every input.
	var sig perfmodel.Sig
	sig.S(c.Model.Name).S(c.Name).F(c.ProblemSize).S(r.Name()).F(av)
	key := sig.String()
	if v, ok := s.Cache.Lookup("ecost", key); ok {
		return v
	}
	v := c.Model.TimeLoaded(c.ProblemSize, r, av)
	s.Cache.Store("ecost", key, v)
	return v
}

// dcostFrom estimates the data-movement cost of running c on r given the
// nodes its inputs live on (predecessor assignments, or the workflow origin
// for entry components).
func (s *Scheduler) dcostFrom(w *Workflow, c *Component, ci int, r *topology.Node, assigned []Assignment) float64 {
	cost := 0.0
	if len(w.Deps(ci)) == 0 {
		cost += s.transferTime(w.Origin, r, c.InputBytes)
	}
	for _, d := range w.Deps(ci) {
		cost += s.transferTime(assigned[d].Node, r, w.Components[d].OutputBytes)
	}
	return cost
}

// Rank computes the paper's rank value for a (component, resource) pair in
// the context of the partial schedule. Infinity marks ineligibility.
func (s *Scheduler) Rank(w *Workflow, ci int, r *topology.Node, assigned []Assignment) float64 {
	c := w.Components[ci]
	if !eligible(c, r) {
		return math.Inf(1)
	}
	return s.W1*s.ecost(c, r) + s.W2*s.dcostFrom(w, c, ci, r, assigned)
}

// Matrix builds the performance matrix over the ready components (rows) and
// resources (columns) for inspection and benchmarking.
func (s *Scheduler) Matrix(w *Workflow, ready []int, resources []*topology.Node, assigned []Assignment) [][]float64 {
	m := make([][]float64, len(ready))
	for i, ci := range ready {
		row := make([]float64, len(resources))
		for j, r := range resources {
			row[j] = s.Rank(w, ci, r, assigned)
		}
		m[i] = row
	}
	return m
}

// tel returns the telemetry hub of the grid's simulation, or nil.
func (s *Scheduler) tel() *telemetry.Telemetry {
	if s.Grid == nil || s.Grid.Sim == nil {
		return nil
	}
	return s.Grid.Sim.Telemetry()
}

// emitDecision publishes one schedule decision into telemetry.
func (s *Scheduler) emitDecision(sched *Schedule, w *Workflow, resources int, chosen bool) {
	tel := s.tel()
	if tel == nil {
		return
	}
	tel.Counter("core", "schedules").Inc()
	tel.Histogram("core", "makespan_seconds").Observe(sched.Makespan)
	tel.Emit(telemetry.Event{
		Type: telemetry.EvSchedDecision, Comp: "core", Name: sched.Heuristic,
		Args: []telemetry.Arg{
			telemetry.I("components", w.Len()),
			telemetry.I("resources", resources),
			telemetry.F("makespan", sched.Makespan),
			telemetry.B("chosen", chosen),
		},
	})
}

// Schedule maps the workflow with all three heuristics and returns the
// schedule with the minimum makespan (§3.1).
func (s *Scheduler) Schedule(w *Workflow, resources []*topology.Node) (*Schedule, error) {
	var best *Schedule
	for _, h := range Heuristics {
		sched, err := s.ScheduleWith(h, w, resources)
		if err != nil {
			return nil, err
		}
		if best == nil || sched.Makespan < best.Makespan {
			best = sched
		}
	}
	s.emitDecision(best, w, len(resources), true)
	return best, nil
}

// ScheduleWith maps the workflow using one named heuristic.
func (s *Scheduler) ScheduleWith(heuristic string, w *Workflow, resources []*topology.Node) (*Schedule, error) {
	if len(resources) == 0 {
		return nil, fmt.Errorf("core: no resources")
	}
	switch heuristic {
	case MinMin, MaxMin, Sufferage:
	default:
		return nil, fmt.Errorf("core: unknown heuristic %q", heuristic)
	}

	n := w.Len()
	assigned := make([]Assignment, n)
	done := make([]bool, n)
	nodeFree := make(map[*topology.Node]float64, len(resources))
	remaining := n

	for remaining > 0 {
		ready := w.readySet(done)
		if len(ready) == 0 {
			return nil, fmt.Errorf("core: workflow has a dependency cycle or unsatisfiable component")
		}
		// Completion-time matrix over ready components.
		choices := make([]choice, 0, len(ready))
		for _, ci := range ready {
			best := choice{comp: ci, finish: math.Inf(1), second: math.Inf(1)}
			for _, r := range resources {
				rank := s.Rank(w, ci, r, assigned)
				if math.IsInf(rank, 1) {
					continue
				}
				start := nodeFree[r]
				for _, d := range w.Deps(ci) {
					if assigned[d].Finish > start {
						start = assigned[d].Finish
					}
				}
				finish := start + rank
				switch {
				case finish < best.finish:
					best.second = best.finish
					best.node, best.start, best.finish = r, start, finish
				case finish < best.second:
					best.second = finish
				}
			}
			if best.node == nil {
				return nil, fmt.Errorf("core: component %q has no eligible resource", w.Components[ci].Name)
			}
			choices = append(choices, best)
		}

		// Pick per heuristic.
		pick := choices[0]
		for _, ch := range choices[1:] {
			switch heuristic {
			case MinMin:
				if ch.finish < pick.finish {
					pick = ch
				}
			case MaxMin:
				if ch.finish > pick.finish {
					pick = ch
				}
			case Sufferage:
				if ch.sufferage() > pick.sufferage() {
					pick = ch
				}
			}
		}

		assigned[pick.comp] = Assignment{Node: pick.node, Start: pick.start, Finish: pick.finish}
		done[pick.comp] = true
		nodeFree[pick.node] = pick.finish
		remaining--
	}

	makespan := 0.0
	for _, a := range assigned {
		if a.Finish > makespan {
			makespan = a.Finish
		}
	}
	sched := &Schedule{Heuristic: heuristic, Makespan: makespan, Assignments: assigned}
	s.emitDecision(sched, w, len(resources), false)
	return sched, nil
}

// choice is one ready component's best placement in the current round.
type choice struct {
	comp   int
	node   *topology.Node
	start  float64
	finish float64
	second float64 // second-best finish time
}

// sufferage is how much the component suffers if denied its best resource.
func (ch choice) sufferage() float64 {
	if math.IsInf(ch.second, 1) {
		return math.Inf(1)
	}
	return ch.second - ch.finish
}

// readySet returns unscheduled components whose predecessors are all
// scheduled.
func (w *Workflow) readySet(done []bool) []int {
	var ready []int
	for i := range w.Components {
		if done[i] {
			continue
		}
		ok := true
		for _, d := range w.deps[i] {
			if !done[d] {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, i)
		}
	}
	return ready
}

// EvaluateFixed computes the start/finish times and makespan of a FIXED
// placement (one node per component) under this scheduler's cost model.
// It is used to compare placements produced under different rank weights on
// an equal footing.
func (s *Scheduler) EvaluateFixed(w *Workflow, placement []*topology.Node) (*Schedule, error) {
	if len(placement) != w.Len() {
		return nil, fmt.Errorf("core: placement length %d != %d components", len(placement), w.Len())
	}
	assigned := make([]Assignment, w.Len())
	done := make([]bool, w.Len())
	nodeFree := make(map[*topology.Node]float64)
	remaining := w.Len()
	for remaining > 0 {
		ready := w.readySet(done)
		if len(ready) == 0 {
			return nil, fmt.Errorf("core: workflow has a dependency cycle")
		}
		for _, ci := range ready {
			r := placement[ci]
			if r == nil {
				return nil, fmt.Errorf("core: component %d has no placement", ci)
			}
			start := nodeFree[r]
			for _, d := range w.Deps(ci) {
				if assigned[d].Finish > start {
					start = assigned[d].Finish
				}
			}
			finish := start + s.Rank(w, ci, r, assigned)
			assigned[ci] = Assignment{Node: r, Start: start, Finish: finish}
			done[ci] = true
			nodeFree[r] = finish
			remaining--
		}
	}
	makespan := 0.0
	for _, a := range assigned {
		if a.Finish > makespan {
			makespan = a.Finish
		}
	}
	return &Schedule{Heuristic: "fixed", Makespan: makespan, Assignments: assigned}, nil
}

// Baseline strategies from the heuristic comparison the paper cites
// (Braun et al., JPDC 2001), accepted by ScheduleBaseline.
const (
	// OLB (opportunistic load balancing) assigns each ready component, in
	// index order, to the node that becomes available earliest, ignoring
	// execution time.
	OLB = "olb"
	// MCT assigns each ready component, in index order, to the node
	// minimizing that component's completion time (no min-min selection
	// across the ready set).
	MCT = "mct"
)

// ScheduleBaseline maps the workflow with one of the simple baseline
// strategies (OLB, MCT) the GrADS heuristics are compared against.
func (s *Scheduler) ScheduleBaseline(strategy string, w *Workflow, resources []*topology.Node) (*Schedule, error) {
	if strategy != OLB && strategy != MCT {
		return nil, fmt.Errorf("core: unknown baseline %q", strategy)
	}
	if len(resources) == 0 {
		return nil, fmt.Errorf("core: no resources")
	}
	n := w.Len()
	assigned := make([]Assignment, n)
	done := make([]bool, n)
	nodeFree := make(map[*topology.Node]float64, len(resources))
	remaining := n
	for remaining > 0 {
		ready := w.readySet(done)
		if len(ready) == 0 {
			return nil, fmt.Errorf("core: workflow has a dependency cycle")
		}
		for _, ci := range ready {
			var pick *topology.Node
			pickStart, pickFinish := 0.0, math.Inf(1)
			for _, r := range resources {
				rank := s.Rank(w, ci, r, assigned)
				if math.IsInf(rank, 1) {
					continue
				}
				start := nodeFree[r]
				for _, d := range w.Deps(ci) {
					if assigned[d].Finish > start {
						start = assigned[d].Finish
					}
				}
				var better bool
				switch strategy {
				case OLB:
					better = pick == nil || nodeFree[r] < nodeFree[pick]
				case MCT:
					better = start+rank < pickFinish
				}
				if better {
					pick, pickStart, pickFinish = r, start, start+rank
				}
			}
			if pick == nil {
				return nil, fmt.Errorf("core: component %q has no eligible resource", w.Components[ci].Name)
			}
			assigned[ci] = Assignment{Node: pick, Start: pickStart, Finish: pickFinish}
			done[ci] = true
			nodeFree[pick] = pickFinish
			remaining--
		}
	}
	makespan := 0.0
	for _, a := range assigned {
		if a.Finish > makespan {
			makespan = a.Finish
		}
	}
	return &Schedule{Heuristic: strategy, Makespan: makespan, Assignments: assigned}, nil
}

// ScheduleRandom maps every component to a uniformly random eligible
// resource (the baseline the heuristics are compared against).
func (s *Scheduler) ScheduleRandom(rng *rand.Rand, w *Workflow, resources []*topology.Node) (*Schedule, error) {
	n := w.Len()
	assigned := make([]Assignment, n)
	done := make([]bool, n)
	nodeFree := make(map[*topology.Node]float64, len(resources))
	remaining := n
	for remaining > 0 {
		ready := w.readySet(done)
		if len(ready) == 0 {
			return nil, fmt.Errorf("core: workflow has a dependency cycle")
		}
		for _, ci := range ready {
			var elig []*topology.Node
			for _, r := range resources {
				if eligible(w.Components[ci], r) {
					elig = append(elig, r)
				}
			}
			if len(elig) == 0 {
				return nil, fmt.Errorf("core: component %q has no eligible resource", w.Components[ci].Name)
			}
			r := elig[rng.Intn(len(elig))]
			start := nodeFree[r]
			for _, d := range w.Deps(ci) {
				if assigned[d].Finish > start {
					start = assigned[d].Finish
				}
			}
			finish := start + s.Rank(w, ci, r, assigned)
			assigned[ci] = Assignment{Node: r, Start: start, Finish: finish}
			done[ci] = true
			nodeFree[r] = finish
			remaining--
		}
	}
	makespan := 0.0
	for _, a := range assigned {
		if a.Finish > makespan {
			makespan = a.Finish
		}
	}
	return &Schedule{Heuristic: "random", Makespan: makespan, Assignments: assigned}, nil
}
