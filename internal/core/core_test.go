package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grads/internal/perfmodel"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// flatModel builds a component model with constant flop count f.
func flatModel(t *testing.T, name string, f float64) *perfmodel.ComponentModel {
	t.Helper()
	m, err := perfmodel.FitComponent(name, []perfmodel.Sample{
		{N: 1, Flops: f}, {N: 2, Flops: f},
	}, 0, 0)
	if err != nil {
		t.Fatalf("flatModel: %v", err)
	}
	return m
}

// twoSiteGrid: site F has fast nodes, site S slow ones.
func twoSiteGrid(tb testing.TB) *topology.Grid {
	sim := simcore.New(1)
	g := topology.NewGrid(sim)
	g.AddSite("F", 1e8, 1e-4)
	g.AddSite("S", 1e8, 1e-4)
	g.Connect("F", "S", 1e6, 0.01)
	g.AddNode(topology.NodeSpec{Name: "f1", Site: "F", MHz: 1000, FlopsPerCycle: 1, MemMB: 1024})
	g.AddNode(topology.NodeSpec{Name: "f2", Site: "F", MHz: 1000, FlopsPerCycle: 1, MemMB: 1024})
	g.AddNode(topology.NodeSpec{Name: "s1", Site: "S", MHz: 100, FlopsPerCycle: 1, MemMB: 256})
	g.AddNode(topology.NodeSpec{Name: "s2", Site: "S", MHz: 100, FlopsPerCycle: 1, MemMB: 256})
	return g
}

func TestWorkflowLevelsAndDeps(t *testing.T) {
	w := NewWorkflow()
	a := w.Add(&Component{Name: "a"})
	b := w.Add(&Component{Name: "b"}, a)
	c := w.Add(&Component{Name: "c"}, a)
	d := w.Add(&Component{Name: "d"}, b, c)
	levels := w.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	if len(levels[1]) != 2 {
		t.Fatalf("level 1 = %v, want [b c]", levels[1])
	}
	if got := w.Deps(d); len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("Deps(d) = %v", got)
	}
}

func TestAddBadDepPanics(t *testing.T) {
	w := NewWorkflow()
	defer func() {
		if recover() == nil {
			t.Fatal("forward dependency should panic")
		}
	}()
	w.Add(&Component{Name: "x"}, 3)
}

func TestAddCheckedErrors(t *testing.T) {
	// Each case builds a two-component prefix (indices 0, 1) and then tries
	// to add index 2 with the given predecessor list.
	cases := []struct {
		name   string
		deps   []int
		reason string // "" = must succeed
		dep    int
	}{
		{name: "ok-empty", deps: nil},
		{name: "ok-both", deps: []int{0, 1}},
		{name: "negative", deps: []int{-1}, reason: "out of range", dep: -1},
		{name: "self", deps: []int{2}, reason: "self", dep: 2},
		{name: "forward", deps: []int{3}, reason: "forward", dep: 3},
		{name: "far-forward", deps: []int{1 << 20}, reason: "forward", dep: 1 << 20},
		{name: "duplicate", deps: []int{1, 0, 1}, reason: "duplicate", dep: 1},
		{name: "valid-then-bad", deps: []int{0, 5}, reason: "forward", dep: 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorkflow()
			w.Add(&Component{Name: "a"})
			w.Add(&Component{Name: "b"}, 0)
			i, err := w.AddChecked(&Component{Name: "c"}, tc.deps...)
			if tc.reason == "" {
				if err != nil {
					t.Fatalf("AddChecked(%v) = %v, want ok", tc.deps, err)
				}
				if i != 2 {
					t.Fatalf("index = %d, want 2", i)
				}
				return
			}
			de, ok := err.(*DepError)
			if !ok {
				t.Fatalf("AddChecked(%v) error = %T %v, want *DepError", tc.deps, err, err)
			}
			if de.Comp != 2 || de.Dep != tc.dep || de.Reason != tc.reason {
				t.Fatalf("DepError = %+v, want comp 2 dep %d %q", de, tc.dep, tc.reason)
			}
			if w.Len() != 2 {
				t.Fatalf("failed AddChecked mutated the workflow: len %d", w.Len())
			}
			if de.Error() == "" {
				t.Fatal("empty error string")
			}
		})
	}
}

func TestWorkflowValidate(t *testing.T) {
	ok := NewWorkflow()
	a := ok.Add(&Component{Name: "a"})
	ok.Add(&Component{Name: "b"}, a)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid workflow rejected: %v", err)
	}

	// Corrupt the edge lists the way a buggy deserializer could: Validate
	// must catch cycles (mutual and self) and dangling indices that Add can
	// never produce.
	cases := []struct {
		name   string
		deps   [][]int
		reason string
	}{
		{name: "self-cycle", deps: [][]int{{0}}, reason: "self"},
		{name: "two-cycle", deps: [][]int{{1}, {0}}, reason: "forward"},
		{name: "dangling", deps: [][]int{nil, {7}}, reason: "forward"},
		{name: "negative", deps: [][]int{nil, {-2}}, reason: "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorkflow()
			for range tc.deps {
				w.Add(&Component{Name: "t"})
			}
			w.deps = tc.deps
			err := w.Validate()
			de, ok := err.(*DepError)
			if !ok {
				t.Fatalf("Validate = %v, want *DepError", err)
			}
			if de.Reason != tc.reason {
				t.Fatalf("reason = %q, want %q", de.Reason, tc.reason)
			}
		})
	}
}

func TestWorkflowSuccs(t *testing.T) {
	w := NewWorkflow()
	a := w.Add(&Component{Name: "a"})
	b := w.Add(&Component{Name: "b"}, a)
	c := w.Add(&Component{Name: "c"}, a)
	d := w.Add(&Component{Name: "d"}, b, c)
	succs := w.Succs()
	if len(succs[a]) != 2 || succs[a][0] != b || succs[a][1] != c {
		t.Fatalf("succs[a] = %v", succs[a])
	}
	if len(succs[b]) != 1 || succs[b][0] != d || len(succs[d]) != 0 {
		t.Fatalf("succs = %v", succs)
	}
}

func TestScheduleChainPrefersFastNodes(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	prev := -1
	for i := 0; i < 3; i++ {
		c := &Component{Name: "c", Model: flatModel(t, "c", 1e9), ProblemSize: 1}
		if prev < 0 {
			prev = w.Add(c)
		} else {
			prev = w.Add(c, prev)
		}
	}
	sched, err := s.Schedule(w, g.Nodes())
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for i, a := range sched.Assignments {
		if a.Node.Site().Name != "F" {
			t.Fatalf("component %d on slow node %s", i, a.Node.Name())
		}
	}
	// Chain of 3 on 1 Gflop/s nodes: 1 s each; all on fast nodes makespan 3.
	if math.Abs(sched.Makespan-3) > 1e-6 {
		t.Fatalf("makespan = %v, want 3", sched.Makespan)
	}
}

func TestScheduleRespectsEligibility(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	// Requires more memory than fast nodes... actually more than slow nodes
	// have: must land on F despite any data costs.
	w.Add(&Component{Name: "big", Model: flatModel(t, "big", 1e8), ProblemSize: 1, MinMemMB: 512})
	sched, err := s.Schedule(w, g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Assignments[0].Node.Spec.MemMB < 512 {
		t.Fatalf("scheduled on ineligible node %s", sched.Assignments[0].Node.Name())
	}
	// Unsatisfiable arch requirement errors out.
	w2 := NewWorkflow()
	w2.Add(&Component{Name: "itanium-only", Model: flatModel(t, "x", 1), ProblemSize: 1, ReqArch: topology.ArchIA64})
	if _, err := s.Schedule(w2, g.Nodes()); err == nil {
		t.Fatal("unsatisfiable component should error")
	}
}

func TestRankInfinityForIneligible(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	ci := w.Add(&Component{Name: "c", Model: flatModel(t, "c", 1e9), ProblemSize: 1, MinMemMB: 512})
	assigned := make([]Assignment, 1)
	if r := s.Rank(w, ci, g.Node("s1"), assigned); !math.IsInf(r, 1) {
		t.Fatalf("rank on ineligible = %v, want +Inf", r)
	}
	if r := s.Rank(w, ci, g.Node("f1"), assigned); math.IsInf(r, 1) || r <= 0 {
		t.Fatalf("rank on eligible = %v", r)
	}
}

func TestDataCostPullsComponentToData(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	s.W2 = 1
	// Producer pinned (by memory) to fast site; consumer is cheap to run
	// anywhere but consumes a huge output: data cost should keep it at F.
	w := NewWorkflow()
	p := w.Add(&Component{Name: "prod", Model: flatModel(t, "p", 1e9), ProblemSize: 1, MinMemMB: 512, OutputBytes: 5e8})
	w.Add(&Component{Name: "cons", Model: flatModel(t, "c", 1e6), ProblemSize: 1}, p)
	sched, err := s.Schedule(w, g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Assignments[1].Node.Site().Name != "F" {
		t.Fatalf("consumer crossed the WAN to %s despite 500 MB input", sched.Assignments[1].Node.Name())
	}
	// With data cost ignored (W2=0), parallel independence doesn't matter
	// for a chain, but the consumer may go anywhere fast — it stays at F too
	// (fast nodes are idle at its start). Sanity only: schedule succeeds.
	s.W2 = 0
	if _, err := s.Schedule(w, g.Nodes()); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicsAllBeatRandomOnHeterogeneousMix(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	rng := rand.New(rand.NewSource(7))
	w := NewWorkflow()
	// 12 independent tasks of mixed sizes (the classic heuristics setting).
	for i := 0; i < 12; i++ {
		f := 1e8 * float64(1+i%5)
		w.Add(&Component{Name: "t", Model: flatModel(t, "t", f), ProblemSize: 1})
	}
	randTotal := 0.0
	for trial := 0; trial < 20; trial++ {
		r, err := s.ScheduleRandom(rng, w, g.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		randTotal += r.Makespan
	}
	randMean := randTotal / 20
	for _, h := range Heuristics {
		sched, err := s.ScheduleWith(h, w, g.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		if sched.Makespan > randMean {
			t.Fatalf("%s makespan %v worse than random mean %v", h, sched.Makespan, randMean)
		}
	}
}

func TestBestOfThreeIsMin(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	for i := 0; i < 8; i++ {
		w.Add(&Component{Name: "t", Model: flatModel(t, "t", 1e8*float64(1+i)), ProblemSize: 1})
	}
	best, err := s.Schedule(w, g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range Heuristics {
		sched, err := s.ScheduleWith(h, w, g.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		if sched.Makespan < best.Makespan-1e-12 {
			t.Fatalf("Schedule returned %v (%s) but %s achieves %v",
				best.Makespan, best.Heuristic, h, sched.Makespan)
		}
	}
}

func TestExpandSplitsParallelizable(t *testing.T) {
	w := NewWorkflow()
	a := w.Add(&Component{Name: "pre", OutputBytes: 100})
	b := w.Add(&Component{Name: "par", Parallelizable: true, Width: 4, OutputBytes: 400, InputBytes: 0}, a)
	w.Add(&Component{Name: "post"}, b)
	ex := w.Expand()
	if ex.Len() != 6 { // pre + 4 subs + post
		t.Fatalf("expanded len = %d, want 6", ex.Len())
	}
	subs := 0
	for i, c := range ex.Components {
		if c.SubOf == 1 {
			subs++
			if len(ex.Deps(i)) != 1 {
				t.Fatalf("sub-task deps = %v", ex.Deps(i))
			}
			if c.OutputBytes != 100 {
				t.Fatalf("sub output = %v, want 400/4", c.OutputBytes)
			}
		}
	}
	if subs != 4 {
		t.Fatalf("found %d sub-tasks, want 4", subs)
	}
	// post must depend on all 4 sub-tasks.
	post := ex.Len() - 1
	if len(ex.Deps(post)) != 4 {
		t.Fatalf("post deps = %v", ex.Deps(post))
	}
}

func TestExpandScalesModelWork(t *testing.T) {
	m, err := perfmodel.FitComponent("p", []perfmodel.Sample{
		{N: 1, Flops: 8e9}, {N: 2, Flops: 8e9},
	}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkflow()
	w.Add(&Component{Name: "par", Model: m, ProblemSize: 1, Parallelizable: true, Width: 8})
	ex := w.Expand()
	got := ex.Components[0].Model.FlopsAt(1)
	if math.Abs(got-1e9) > 1 {
		t.Fatalf("sub-task flops = %v, want 1e9", got)
	}
	// Original untouched.
	if w.Components[0].Model.FlopsAt(1) != 8e9 {
		t.Fatal("Expand mutated the original model")
	}
}

func TestParallelComponentUsesManyNodes(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	w.Add(&Component{
		Name: "par", Model: flatModel(t, "p", 4e9), ProblemSize: 1,
		Parallelizable: true, Width: 4,
	})
	sched, err := s.Schedule(w.Expand(), g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	used := map[string]bool{}
	for _, a := range sched.Assignments {
		used[a.Node.Name()] = true
	}
	if len(used) < 2 {
		t.Fatalf("parallel component used only %d nodes", len(used))
	}
	// Splitting must beat running the whole thing on one fast node (4 s).
	if sched.Makespan >= 4 {
		t.Fatalf("parallel makespan %v, want < 4 (serial time)", sched.Makespan)
	}
}

func TestCriticalPathLowerBound(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	a := w.Add(&Component{Name: "a", Model: flatModel(t, "a", 1e9), ProblemSize: 1})
	w.Add(&Component{Name: "b", Model: flatModel(t, "b", 2e9), ProblemSize: 1}, a)
	cp := w.CriticalPathTime(g.Nodes())
	if math.Abs(cp-3) > 1e-9 { // 1s + 2s on the fast nodes
		t.Fatalf("critical path = %v, want 3", cp)
	}
	sched, err := s.Schedule(w, g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan < cp-1e-9 {
		t.Fatalf("makespan %v below critical path %v", sched.Makespan, cp)
	}
}

func TestUnknownHeuristicAndEmptyResources(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	w.Add(&Component{Name: "a"})
	if _, err := s.ScheduleWith("genetic", w, g.Nodes()); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if _, err := s.ScheduleWith(MinMin, w, nil); err == nil {
		t.Fatal("empty resources accepted")
	}
}

func TestBaselineStrategies(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	for i := 0; i < 10; i++ {
		w.Add(&Component{Name: "t", Model: flatModel(t, "t", 1e8*float64(1+i%4)), ProblemSize: 1})
	}
	olb, err := s.ScheduleBaseline(OLB, w, g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	mct, err := s.ScheduleBaseline(MCT, w, g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	// OLB ignores speeds, so it wastes the slow nodes; MCT should beat it
	// on a heterogeneous grid.
	if mct.Makespan > olb.Makespan {
		t.Fatalf("MCT (%v) worse than OLB (%v)", mct.Makespan, olb.Makespan)
	}
	// min-min usually (not provably) tracks MCT closely; guard against
	// gross regressions only.
	mm, err := s.ScheduleWith(MinMin, w, g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if mm.Makespan > mct.Makespan*1.3 {
		t.Fatalf("min-min (%v) far worse than MCT (%v)", mm.Makespan, mct.Makespan)
	}
	// Validity: dependencies and node exclusivity hold.
	for _, sched := range []*Schedule{olb, mct} {
		for i, a := range sched.Assignments {
			if a.Node == nil || a.Finish < a.Start {
				t.Fatalf("bad assignment %d: %+v", i, a)
			}
		}
	}
	if _, err := s.ScheduleBaseline("sjf", w, g.Nodes()); err == nil {
		t.Fatal("unknown baseline accepted")
	}
	if _, err := s.ScheduleBaseline(OLB, w, nil); err == nil {
		t.Fatal("empty resources accepted")
	}
}

func TestEvaluateFixedMatchesSchedule(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	w := NewWorkflow()
	a := w.Add(&Component{Name: "a", Model: flatModel(t, "a", 1e9), ProblemSize: 1, OutputBytes: 1e6})
	w.Add(&Component{Name: "b", Model: flatModel(t, "b", 2e9), ProblemSize: 1}, a)
	sched, err := s.ScheduleWith(MinMin, w, g.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	placement := []*topology.Node{sched.Assignments[0].Node, sched.Assignments[1].Node}
	fixed, err := s.EvaluateFixed(w, placement)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fixed.Makespan-sched.Makespan) > 1e-9 {
		t.Fatalf("EvaluateFixed %v != schedule %v", fixed.Makespan, sched.Makespan)
	}
	if _, err := s.EvaluateFixed(w, placement[:1]); err == nil {
		t.Fatal("short placement accepted")
	}
	if _, err := s.EvaluateFixed(w, []*topology.Node{nil, nil}); err == nil {
		t.Fatal("nil placement accepted")
	}
}

// Property: schedules are valid — every component assigned to an eligible
// node, no node runs two components at once, dependencies precede
// dependents, and makespan equals the max finish.
func TestQuickScheduleValidity(t *testing.T) {
	g := twoSiteGrid(t)
	s := NewScheduler(g, nil)
	model, err := perfmodel.FitComponent("q", []perfmodel.Sample{
		{N: 1, Flops: 1e8}, {N: 10, Flops: 1e9},
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(sizesRaw []uint8, edgesRaw []uint8, hIdx uint8) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 10 {
			return true
		}
		w := NewWorkflow()
		for i, sr := range sizesRaw {
			var deps []int
			if i > 0 && len(edgesRaw) > 0 {
				// Pseudo-random back edge.
				d := int(edgesRaw[i%len(edgesRaw)]) % i
				deps = append(deps, d)
			}
			w.Add(&Component{
				Name: "t", Model: model, ProblemSize: float64(sr%9) + 1,
			}, deps...)
		}
		h := Heuristics[int(hIdx)%3]
		sched, err := s.ScheduleWith(h, w, g.Nodes())
		if err != nil {
			return false
		}
		maxFinish := 0.0
		type span struct{ s, f float64 }
		byNode := map[string][]span{}
		for i, a := range sched.Assignments {
			if a.Node == nil || a.Finish < a.Start {
				return false
			}
			for _, d := range w.Deps(i) {
				if sched.Assignments[d].Finish > a.Start+1e-9 {
					return false // dependency violated
				}
			}
			byNode[a.Node.Name()] = append(byNode[a.Node.Name()], span{a.Start, a.Finish})
			if a.Finish > maxFinish {
				maxFinish = a.Finish
			}
		}
		for _, spans := range byNode {
			for i := range spans {
				for j := i + 1; j < len(spans); j++ {
					if spans[i].s < spans[j].f-1e-9 && spans[j].s < spans[i].f-1e-9 {
						return false // overlap on one node
					}
				}
			}
		}
		return math.Abs(maxFinish-sched.Makespan) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
