package perfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grads/internal/simcore"
	"grads/internal/topology"
)

func TestPolyEval(t *testing.T) {
	p := Poly{1, 2, 3} // 1 + 2x + 3x²
	if got := p.Eval(2); got != 17 {
		t.Fatalf("Eval(2) = %v, want 17", got)
	}
	if Poly(nil).Eval(5) != 0 {
		t.Fatal("empty poly should evaluate to 0")
	}
	if p.Degree() != 2 || Poly(nil).Degree() != -1 {
		t.Fatal("Degree wrong")
	}
}

func TestPolyfitRecoversExactPolynomial(t *testing.T) {
	want := Poly{3, -2, 0.5, 0.01} // cubic
	var xs, ys []float64
	for x := 1.0; x <= 12; x++ {
		xs = append(xs, x)
		ys = append(ys, want.Eval(x))
	}
	got, err := Polyfit(xs, ys, 3)
	if err != nil {
		t.Fatalf("Polyfit: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("coefficient %d = %v, want %v", i, got[i], want[i])
		}
	}
	if r := got.Residual(xs, ys); r > 1e-6 {
		t.Fatalf("residual = %v", r)
	}
}

func TestPolyfitErrors(t *testing.T) {
	if _, err := Polyfit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Polyfit([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
	// Duplicate x values of different y make the system singular for high
	// degree.
	if _, err := Polyfit([]float64{1, 1, 1}, []float64{1, 2, 3}, 2); err == nil {
		t.Fatal("singular system accepted")
	}
	if _, err := Polyfit([]float64{1, 2, 3}, []float64{1, 2, 3}, -1); err == nil {
		t.Fatal("negative degree accepted")
	}
}

// Property: least squares never fits worse (RMS) than the zero polynomial
// on centered data, and exactly interpolates when points == degree+1.
func TestQuickPolyfitInterpolates(t *testing.T) {
	f := func(raw [4]int8) bool {
		xs := []float64{1, 2, 3, 4}
		ys := make([]float64, 4)
		for i, r := range raw {
			ys[i] = float64(r)
		}
		p, err := Polyfit(xs, ys, 3)
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(p.Eval(xs[i])-ys[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// syntheticHist builds the MRD histogram of a blocked matrix sweep:
// one hot group reused within a block (distance ~ constant), one group with
// distance growing linearly in n, one growing quadratically (whole-matrix
// reuse).
func syntheticHist(n float64) Histogram {
	return Histogram{
		{Dist: 64, Count: 100 * n},
		{Dist: 2 * n, Count: 10 * n},
		{Dist: n * n / 8, Count: n},
	}
}

func TestFitMRDExtrapolatesMisses(t *testing.T) {
	ns := []float64{100, 200, 300, 400, 500}
	hists := make([]Histogram, len(ns))
	for i, n := range ns {
		hists[i] = syntheticHist(n)
	}
	m, err := FitMRD(ns, hists, 2)
	if err != nil {
		t.Fatalf("FitMRD: %v", err)
	}
	// At n=2000 the true histogram is known; compare misses for a cache of
	// 2048 lines: group1 (dist 64) hits; group2 (dist 4000) misses -> 20000;
	// group3 (dist 500000) misses -> 2000. Total 22000.
	got := m.Misses(2000, 2048)
	if math.Abs(got-22000) > 1 {
		t.Fatalf("predicted misses = %v, want 22000", got)
	}
	acc := m.Accesses(2000)
	want := 100*2000.0 + 10*2000 + 2000
	if math.Abs(acc-want) > 1 {
		t.Fatalf("predicted accesses = %v, want %v", acc, want)
	}
	ratio := m.MissRatio(2000, 2048)
	if math.Abs(ratio-22000/want) > 1e-6 {
		t.Fatalf("miss ratio = %v", ratio)
	}
}

func TestFitMRDLargerCacheNeverMoreMisses(t *testing.T) {
	ns := []float64{100, 200, 300, 400}
	hists := make([]Histogram, len(ns))
	for i, n := range ns {
		hists[i] = syntheticHist(n)
	}
	m, err := FitMRD(ns, hists, 2)
	if err != nil {
		t.Fatal(err)
	}
	for n := 500.0; n <= 4000; n += 500 {
		small := m.Misses(n, 1024)
		big := m.Misses(n, 65536)
		if big > small {
			t.Fatalf("larger cache produced more misses at n=%v: %v > %v", n, big, small)
		}
	}
}

func TestFitMRDErrors(t *testing.T) {
	if _, err := FitMRD(nil, nil, 1); err == nil {
		t.Fatal("empty inputs accepted")
	}
	h1 := Histogram{{Dist: 1, Count: 1}}
	h2 := Histogram{{Dist: 1, Count: 1}, {Dist: 2, Count: 2}}
	if _, err := FitMRD([]float64{1, 2}, []Histogram{h1, h2}, 0); err == nil {
		t.Fatal("ragged histograms accepted")
	}
}

func TestHistogramMisses(t *testing.T) {
	h := Histogram{{Dist: 10, Count: 5}, {Dist: 100, Count: 7}, {Dist: 1000, Count: 11}}
	if h.Misses(50) != 18 {
		t.Fatalf("Misses(50) = %v, want 18", h.Misses(50))
	}
	if h.Misses(1e6) != 0 {
		t.Fatal("infinite cache should miss nothing")
	}
	if h.Accesses() != 23 {
		t.Fatalf("Accesses = %v", h.Accesses())
	}
}

func qrFlops(n float64) float64 { return 4.0 / 3.0 * n * n * n }

func TestFitComponentQRCurve(t *testing.T) {
	// Profile small sizes 200..1000, extrapolate to 8000 (the paper's
	// methodology: small-run counters -> least-squares -> big-run predict).
	var samples []Sample
	for n := 200.0; n <= 1000; n += 200 {
		samples = append(samples, Sample{N: n, Flops: qrFlops(n), Hist: syntheticHist(n)})
	}
	cm, err := FitComponent("qr", samples, 3, 2)
	if err != nil {
		t.Fatalf("FitComponent: %v", err)
	}
	pred := cm.FlopsAt(8000)
	want := qrFlops(8000)
	if math.Abs(pred-want)/want > 1e-6 {
		t.Fatalf("extrapolated flops = %v, want %v", pred, want)
	}
	if cm.MRD == nil {
		t.Fatal("MRD model missing despite histograms")
	}
}

func TestComponentTimeScalesWithNode(t *testing.T) {
	sim := simcore.New(1)
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e6, 0)
	fast := g.AddNode(topology.NodeSpec{
		Name: "fast", Site: "A", MHz: 1000, FlopsPerCycle: 1,
		Cache: topology.CacheConfig{L2KB: 512, LineBytes: 32},
	})
	slow := g.AddNode(topology.NodeSpec{
		Name: "slow", Site: "A", MHz: 250, FlopsPerCycle: 1,
		Cache: topology.CacheConfig{L2KB: 512, LineBytes: 32},
	})
	var samples []Sample
	for n := 100.0; n <= 500; n += 100 {
		samples = append(samples, Sample{N: n, Flops: qrFlops(n)})
	}
	cm, err := FitComponent("qr", samples, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tf, ts := cm.Time(2000, fast), cm.Time(2000, slow)
	if math.Abs(ts/tf-4) > 1e-6 {
		t.Fatalf("time ratio slow/fast = %v, want 4", ts/tf)
	}
	// Loaded node takes proportionally longer.
	if got := cm.TimeLoaded(2000, fast, 0.5); math.Abs(got-2*tf) > 1e-9 {
		t.Fatalf("TimeLoaded(0.5) = %v, want %v", got, 2*tf)
	}
	if cm.TimeLoaded(2000, fast, 0) <= 0 {
		t.Fatal("zero availability should clamp, not divide by zero")
	}
}

func TestComponentTimeIncludesMemoryPenalty(t *testing.T) {
	sim := simcore.New(1)
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e6, 0)
	tiny := g.AddNode(topology.NodeSpec{
		Name: "tinycache", Site: "A", MHz: 1000, FlopsPerCycle: 1,
		Cache: topology.CacheConfig{L2KB: 16, LineBytes: 32}, // 512 lines
	})
	big := g.AddNode(topology.NodeSpec{
		Name: "bigcache", Site: "A", MHz: 1000, FlopsPerCycle: 1,
		Cache: topology.CacheConfig{L2KB: 4096, LineBytes: 32}, // 131072 lines
	})
	var samples []Sample
	for n := 100.0; n <= 500; n += 100 {
		samples = append(samples, Sample{N: n, Flops: qrFlops(n), Hist: syntheticHist(n)})
	}
	cm, err := FitComponent("qr", samples, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Time(600, tiny) <= cm.Time(600, big) {
		t.Fatal("small cache should pay more memory stall time")
	}
}

func TestFitComponentNoSamples(t *testing.T) {
	if _, err := FitComponent("x", nil, 1, 1); err == nil {
		t.Fatal("no samples accepted")
	}
}

func TestCrossValidateExtrapolation(t *testing.T) {
	// Exact cubic data: held-out large sizes predicted perfectly.
	var samples []Sample
	for n := 100.0; n <= 1000; n += 100 {
		samples = append(samples, Sample{N: n, Flops: qrFlops(n)})
	}
	relErr, err := CrossValidate(samples, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relErr > 1e-9 {
		t.Fatalf("cubic cross-validation error = %v", relErr)
	}
	// Underfitting (linear model on cubic data) shows large error.
	relErrBad, err := CrossValidate(samples, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relErrBad < 0.2 {
		t.Fatalf("linear fit of cubic data reported error %v, want large", relErrBad)
	}
	if _, err := CrossValidate(samples, 0, 1, 0); err == nil {
		t.Fatal("holdOut=0 accepted")
	}
	if _, err := CrossValidate(samples, len(samples), 1, 0); err == nil {
		t.Fatal("holdOut=all accepted")
	}
}
