package perfmodel

import "strconv"

// DefaultCacheEntries bounds a Cache created with NewCache(0).
const DefaultCacheEntries = 1 << 16

// Cache memoizes performance-model evaluations keyed by an application key
// plus a nodeset signature. Schedulers re-evaluate identical (component,
// node, availability) combinations thousands of times per search — three
// heuristics times many rounds over the same matrix — and reschedulers
// re-price the same candidate sets every tick; the model evaluations are
// pure, so their results can be replayed from the cache bit-identically.
//
// Correctness rests on the key actually covering every input of the
// evaluation: callers build signatures with Sig, including every float
// (problem size, availability, virtual time for time-varying estimates)
// that the computation reads. Sig encodes floats losslessly, so a cache hit
// returns exactly the float64 a fresh evaluation would produce, and cached
// and uncached runs are indistinguishable — eviction only ever costs time,
// never changes a result.
//
// Cache is not safe for concurrent use; like the rest of the emulator it
// lives in single-threaded simulation code.
type Cache struct {
	max    int
	m      map[string]float64
	hits   uint64
	misses uint64
	resets uint64
}

// NewCache creates a cache bounded to max entries; max <= 0 selects
// DefaultCacheEntries. When the bound is reached the cache is cleared
// wholesale (evaluations are cheap enough that LRU bookkeeping would cost
// more than the occasional cold restart).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{max: max, m: make(map[string]float64)}
}

// Lookup returns the memoized value for (app, sig) and whether it was found.
func (c *Cache) Lookup(app, sig string) (float64, bool) {
	v, ok := c.m[app+"\x00"+sig]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Store memoizes a value for (app, sig).
func (c *Cache) Store(app, sig string, v float64) {
	if len(c.m) >= c.max {
		clear(c.m)
		c.resets++
	}
	c.m[app+"\x00"+sig] = v
}

// Memo returns the cached value for (app, sig), computing and storing it on
// a miss.
func (c *Cache) Memo(app, sig string, compute func() float64) float64 {
	if v, ok := c.Lookup(app, sig); ok {
		return v
	}
	v := compute()
	c.Store(app, sig, v)
	return v
}

// Len returns the number of live entries.
func (c *Cache) Len() int { return len(c.m) }

// Stats returns the lookup hit and miss counts and how many times the cache
// was cleared on overflow.
func (c *Cache) Stats() (hits, misses, resets uint64) { return c.hits, c.misses, c.resets }

// Reset drops every entry (the counters survive).
func (c *Cache) Reset() {
	clear(c.m)
	c.resets++
}

// Sig incrementally builds a cache signature from the inputs of a model
// evaluation. The zero value is ready to use. Floats are encoded in the
// shortest form that round-trips exactly, so distinct float64 values never
// collide; fields are separated so concatenations cannot alias.
type Sig struct{ buf []byte }

// S appends a string field.
func (s *Sig) S(v string) *Sig {
	s.buf = append(s.buf, v...)
	s.buf = append(s.buf, '|')
	return s
}

// F appends a float field, encoded losslessly.
func (s *Sig) F(v float64) *Sig {
	s.buf = strconv.AppendFloat(s.buf, v, 'g', -1, 64)
	s.buf = append(s.buf, '|')
	return s
}

// I appends an integer field (version counters, sizes).
func (s *Sig) I(v int64) *Sig {
	s.buf = strconv.AppendInt(s.buf, v, 10)
	s.buf = append(s.buf, '|')
	return s
}

// String returns the accumulated signature.
func (s *Sig) String() string { return string(s.buf) }
