package perfmodel

import (
	"errors"
	"fmt"
)

// Bin is one group of memory references in an MRD histogram: Count accesses
// whose reuse distance (unique cache lines touched between two accesses to
// the same line) is Dist.
type Bin struct {
	Dist  float64 // reuse distance in cache lines
	Count float64 // number of accesses in this group
}

// Histogram is a memory-reuse-distance histogram collected from one run.
// Bins correspond positionally across runs of different problem sizes (each
// bin is the same static reference group observed at a different size).
type Histogram []Bin

// Accesses returns the histogram's total access count.
func (h Histogram) Accesses() float64 {
	sum := 0.0
	for _, b := range h {
		sum += b.Count
	}
	return sum
}

// Misses returns the number of accesses whose reuse distance exceeds a
// cache of the given capacity in lines (fully-associative stack-distance
// criterion).
func (h Histogram) Misses(cacheLines float64) float64 {
	sum := 0.0
	for _, b := range h {
		if b.Dist > cacheLines {
			sum += b.Count
		}
	}
	return sum
}

// RefModel models one reference group: its reuse distance and access count
// as polynomials in the problem size.
type RefModel struct {
	Dist  Poly
	Count Poly
}

// MRDModel predicts cache behavior at any problem size from per-reference
// models fitted on small-size histograms (§3.2).
type MRDModel struct {
	Refs []RefModel
}

// ErrBadHistograms reports inconsistent training histograms.
var ErrBadHistograms = errors.New("perfmodel: histograms empty or bin counts differ across sizes")

// FitMRD fits an MRDModel from histograms collected at problem sizes ns.
// All histograms must have the same number of bins (the same reference
// groups). degree is the polynomial degree used for both the distance and
// count models of each group.
func FitMRD(ns []float64, hists []Histogram, degree int) (*MRDModel, error) {
	if len(ns) == 0 || len(ns) != len(hists) || len(hists[0]) == 0 {
		return nil, ErrBadHistograms
	}
	bins := len(hists[0])
	for _, h := range hists {
		if len(h) != bins {
			return nil, ErrBadHistograms
		}
	}
	m := &MRDModel{Refs: make([]RefModel, bins)}
	dists := make([]float64, len(ns))
	counts := make([]float64, len(ns))
	for b := 0; b < bins; b++ {
		for i, h := range hists {
			dists[i] = h[b].Dist
			counts[i] = h[b].Count
		}
		dp, err := Polyfit(ns, dists, degree)
		if err != nil {
			return nil, fmt.Errorf("bin %d distance fit: %w", b, err)
		}
		cp, err := Polyfit(ns, counts, degree)
		if err != nil {
			return nil, fmt.Errorf("bin %d count fit: %w", b, err)
		}
		m.Refs[b] = RefModel{Dist: dp, Count: cp}
	}
	return m, nil
}

// Predict evaluates the model at problem size n, returning the predicted
// histogram.
func (m *MRDModel) Predict(n float64) Histogram {
	h := make(Histogram, len(m.Refs))
	for i, r := range m.Refs {
		d := r.Dist.Eval(n)
		c := r.Count.Eval(n)
		if d < 0 {
			d = 0
		}
		if c < 0 {
			c = 0
		}
		h[i] = Bin{Dist: d, Count: c}
	}
	return h
}

// Misses predicts the miss count at problem size n for a cache holding
// cacheLines lines: the summed counts of reference groups whose predicted
// reuse distance exceeds the cache size.
func (m *MRDModel) Misses(n, cacheLines float64) float64 {
	return m.Predict(n).Misses(cacheLines)
}

// Accesses predicts the total access count at problem size n.
func (m *MRDModel) Accesses(n float64) float64 {
	return m.Predict(n).Accesses()
}

// MissRatio predicts misses/accesses at size n for the given cache, or 0
// when no accesses are predicted.
func (m *MRDModel) MissRatio(n, cacheLines float64) float64 {
	a := m.Accesses(n)
	if a <= 0 {
		return 0
	}
	return m.Misses(n, cacheLines) / a
}
