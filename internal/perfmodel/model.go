package perfmodel

import (
	"errors"
	"fmt"
	"math"

	"grads/internal/topology"
)

// DefaultMissPenaltyNS is the memory-access penalty per predicted cache
// miss, in nanoseconds (2003-era SDRAM latency).
const DefaultMissPenaltyNS = 120.0

// Sample is one profiled small-size run of a component: its problem size,
// the floating-point operations counted, and the MRD histogram observed.
// In the paper these come from PAPI hardware counters and binary
// instrumentation; here the application cost models synthesize them.
type Sample struct {
	N     float64
	Flops float64
	Hist  Histogram
}

// ComponentModel is the architecture-independent performance model of one
// application component: resource usage (flops, memory behavior) as
// functions of problem size, convertible to a time estimate on any node.
type ComponentModel struct {
	Name          string
	Flops         Poly
	MRD           *MRDModel
	MissPenaltyNS float64
}

// ErrNoSamples reports an attempt to fit a model with no profiles.
var ErrNoSamples = errors.New("perfmodel: no samples")

// FitComponent builds a ComponentModel from small-run profiles.
// flopDegree is the degree of the flop-count fit (e.g. 3 for dense linear
// algebra); mrdDegree the per-reference-group fit degree. Samples may omit
// histograms, in which case the model is compute-only.
func FitComponent(name string, samples []Sample, flopDegree, mrdDegree int) (*ComponentModel, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	ns := make([]float64, len(samples))
	flops := make([]float64, len(samples))
	withHist := true
	for i, s := range samples {
		ns[i] = s.N
		flops[i] = s.Flops
		if len(s.Hist) == 0 {
			withHist = false
		}
	}
	fp, err := Polyfit(ns, flops, flopDegree)
	if err != nil {
		return nil, err
	}
	cm := &ComponentModel{Name: name, Flops: fp, MissPenaltyNS: DefaultMissPenaltyNS}
	if withHist {
		hists := make([]Histogram, len(samples))
		for i, s := range samples {
			hists[i] = s.Hist
		}
		mrd, err := FitMRD(ns, hists, mrdDegree)
		if err != nil {
			return nil, err
		}
		cm.MRD = mrd
	}
	return cm, nil
}

// FlopsAt predicts the flop count at problem size n (never negative).
func (c *ComponentModel) FlopsAt(n float64) float64 {
	f := c.Flops.Eval(n)
	if f < 0 {
		return 0
	}
	return f
}

// cacheLines returns a node's L2 capacity in lines.
func cacheLines(node *topology.Node) float64 {
	cc := node.Spec.Cache
	if cc.L2KB <= 0 || cc.LineBytes <= 0 {
		return 16384 // 512 KiB of 32 B lines, the PIII default
	}
	return float64(cc.L2KB) * 1024 / float64(cc.LineBytes)
}

// Time estimates the component's execution time at problem size n on a node
// at full availability: compute time at the node's sustained flop rate plus
// predicted memory stall time.
func (c *ComponentModel) Time(n float64, node *topology.Node) float64 {
	t := c.FlopsAt(n) / node.Spec.Flops()
	if c.MRD != nil {
		t += c.MRD.Misses(n, cacheLines(node)) * c.MissPenaltyNS * 1e-9
	}
	return t
}

// TimeLoaded estimates execution time when the node delivers only the given
// availability fraction of its CPU (an NWS forecast); memory penalties scale
// the same way since the process is descheduled as a whole.
func (c *ComponentModel) TimeLoaded(n float64, node *topology.Node, avail float64) float64 {
	if avail <= 0 {
		avail = 1e-3
	}
	return c.Time(n, node) / avail
}

// CrossValidate measures how well the §3.2 fitting pipeline extrapolates:
// it fits a model on all but the last holdOut samples (which must be the
// largest problem sizes — the direction GrADS extrapolates in) and returns
// the mean relative error of the flop predictions on the held-out samples.
func CrossValidate(samples []Sample, holdOut, flopDegree, mrdDegree int) (float64, error) {
	if holdOut <= 0 || holdOut >= len(samples) {
		return 0, fmt.Errorf("perfmodel: holdOut %d of %d samples", holdOut, len(samples))
	}
	train := samples[:len(samples)-holdOut]
	test := samples[len(samples)-holdOut:]
	m, err := FitComponent("cv", train, flopDegree, mrdDegree)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, s := range test {
		if s.Flops == 0 {
			continue
		}
		sum += math.Abs(m.FlopsAt(s.N)-s.Flops) / s.Flops
	}
	return sum / float64(len(test)), nil
}
