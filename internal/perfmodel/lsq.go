// Package perfmodel implements §3.2 of the paper: architecture-independent
// component performance models built from profiles of small-size runs.
//
// Two ingredients are modeled exactly as described:
//
//   - floating-point operation counts, collected (here, synthesized by the
//     application cost models standing in for hardware counters) on several
//     small problem sizes and fitted with least-squares polynomials; and
//   - memory access behavior, captured as histograms of memory reuse
//     distance (MRD) — the number of unique blocks touched between accesses
//     to the same block. Per-reference-group models of reuse distance and
//     access count as functions of problem size predict cache misses for any
//     problem size and cache configuration by counting accesses whose
//     predicted reuse distance exceeds the target cache capacity.
//
// The resulting resource-usage estimates convert to rough per-node time
// estimates using a node's sustained flop rate and memory-miss penalty,
// which is what the workflow scheduler's rank function consumes.
package perfmodel

import (
	"errors"
	"math"
)

// Poly is a polynomial given by its coefficients in ascending order:
// Poly{a, b, c} is a + b*x + c*x².
type Poly []float64

// Eval evaluates the polynomial at x (Horner's method).
func (p Poly) Eval(x float64) float64 {
	v := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		v = v*x + p[i]
	}
	return v
}

// Degree returns the polynomial's degree (-1 for an empty polynomial).
func (p Poly) Degree() int { return len(p) - 1 }

// ErrBadFit reports an unsolvable least-squares system (too few points or a
// singular normal matrix).
var ErrBadFit = errors.New("perfmodel: least-squares system unsolvable")

// Polyfit fits a degree-d polynomial to (xs, ys) by least squares via the
// normal equations. It requires len(xs) == len(ys) >= d+1.
func Polyfit(xs, ys []float64, degree int) (Poly, error) {
	if degree < 0 || len(xs) != len(ys) || len(xs) < degree+1 {
		return nil, ErrBadFit
	}
	m := degree + 1
	// Normal equations: (VᵀV) c = Vᵀy with V the Vandermonde matrix.
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	for k, x := range xs {
		// powers[j] = x^j
		pw := 1.0
		powers := make([]float64, m)
		for j := 0; j < m; j++ {
			powers[j] = pw
			pw *= x
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				a[i][j] += powers[i] * powers[j]
			}
			b[i] += powers[i] * ys[k]
		}
	}
	c, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	return Poly(c), nil
}

// solve performs Gaussian elimination with partial pivoting on a copy-free
// basis (a and b are consumed).
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrBadFit
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrBadFit
		}
	}
	return x, nil
}

// Residual returns the root-mean-square error of the polynomial over the
// given points.
func (p Poly) Residual(xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for i, x := range xs {
		d := p.Eval(x) - ys[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}
