package perfmodel

import (
	"math"
	"testing"
)

func TestCacheMemoizesExactly(t *testing.T) {
	c := NewCache(0)
	calls := 0
	compute := func() float64 { calls++; return 42.5 }
	if v := c.Memo("app", "sig", compute); v != 42.5 {
		t.Fatalf("first Memo = %v", v)
	}
	if v := c.Memo("app", "sig", compute); v != 42.5 {
		t.Fatalf("second Memo = %v", v)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("Stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestCacheKeysDoNotAlias(t *testing.T) {
	c := NewCache(0)
	c.Store("ab", "c", 1)
	if _, ok := c.Lookup("a", "bc"); ok {
		t.Fatal("app/sig concatenation aliased across the separator")
	}
	// Sig field boundaries must not alias either.
	var a, b Sig
	a.S("x").S("yz")
	b.S("xy").S("z")
	if a.String() == b.String() {
		t.Fatalf("Sig aliased: %q == %q", a.String(), b.String())
	}
}

func TestSigFloatsAreLossless(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1.0 / 3.0, 1e300, 5e-324, 0.1, 0.1 + 1e-17}
	seen := map[string]float64{}
	for _, v := range vals {
		var s Sig
		s.F(v)
		k := s.String()
		if prev, dup := seen[k]; dup && prev != v {
			t.Fatalf("distinct floats %v and %v share signature %q", prev, v, k)
		}
		seen[k] = v
	}
	// 0.1 + 1e-17 rounds to exactly 0.1 in float64: equal values must share
	// a signature (hit), distinct values must not (no silent wrong answer).
	var s1, s2 Sig
	s1.F(0.1)
	s2.F(0.1 + 1e-17)
	if s1.String() != s2.String() {
		t.Fatalf("bit-equal floats got distinct signatures %q / %q", s1.String(), s2.String())
	}
}

func TestCacheOverflowClearsAndStaysCorrect(t *testing.T) {
	c := NewCache(4)
	sigs := []string{"a", "b", "c", "d", "e", "f"}
	for i, s := range sigs {
		c.Store("app", s, float64(i))
	}
	if c.Len() > 4 {
		t.Fatalf("cache grew past its bound: %d entries", c.Len())
	}
	if _, _, resets := c.Stats(); resets == 0 {
		t.Fatal("overflow did not clear the cache")
	}
	// Whatever survives must still be correct.
	for i, s := range sigs {
		if v, ok := c.Lookup("app", s); ok && v != float64(i) {
			t.Fatalf("entry %q corrupted: %v", s, v)
		}
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Reset left %d entries", c.Len())
	}
}
