package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"grads/internal/faultinject"
	"grads/internal/simcore"
	"grads/internal/topology"
)

func TestBackoffGrowthAndCeiling(t *testing.T) {
	po := Policy{MaxAttempts: 10, BaseDelay: 0.5, MaxDelay: 8, Multiplier: 2}
	wants := []float64{0.5, 1, 2, 4, 8, 8, 8}
	for i, want := range wants {
		if got := po.Backoff(i+1, nil); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	if got := po.Backoff(0, nil); got != 0.5 {
		t.Fatalf("Backoff clamps attempt to 1, got %v", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	po := Policy{MaxAttempts: 5, BaseDelay: 1, MaxDelay: 8, Multiplier: 2, Jitter: 0.25}
	rng := rand.New(rand.NewSource(3))
	for attempt := 1; attempt <= 5; attempt++ {
		nominal := po.Backoff(attempt, nil)
		for i := 0; i < 100; i++ {
			d := po.Backoff(attempt, rng)
			if d > nominal || d < nominal*(1-po.Jitter) {
				t.Fatalf("jittered Backoff(%d) = %v outside [%v, %v]",
					attempt, d, nominal*(1-po.Jitter), nominal)
			}
		}
	}
	// Same seed, same jitter sequence.
	seq := func() []float64 {
		r := rand.New(rand.NewSource(3))
		var out []float64
		for i := 0; i < 10; i++ {
			out = append(out, po.Backoff(2, r))
		}
		return out
	}
	if !reflect.DeepEqual(seq(), seq()) {
		t.Fatal("seeded jitter is not deterministic")
	}
}

func TestDoRetriesOnlyRetryable(t *testing.T) {
	sim := simcore.New(1)
	r := NewRetrier(sim, Policy{MaxAttempts: 5, BaseDelay: 0.5, MaxDelay: 8, Multiplier: 2}, nil)

	var elapsed float64
	var calls int
	var err error
	sim.Spawn("caller", func(p *simcore.Proc) {
		t0 := p.Now()
		err = r.Do(p, "gis.query", func() error {
			calls++
			if calls < 3 {
				return fmt.Errorf("%w: gis", faultinject.ErrUnavailable)
			}
			return nil
		})
		elapsed = p.Now() - t0
	})
	sim.Run()
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on 3rd call", err, calls)
	}
	// No jitter: exactly 0.5 + 1.0 of backoff slept in virtual time.
	if elapsed != 1.5 {
		t.Fatalf("slept %v, want 1.5", elapsed)
	}
	if r.Retries() != 2 || r.GaveUp() != 0 {
		t.Fatalf("retries=%d gaveUp=%d, want 2/0", r.Retries(), r.GaveUp())
	}

	// A permanent error propagates immediately, un-retried.
	perm := errors.New("no such software")
	calls = 0
	sim.Spawn("caller2", func(p *simcore.Proc) {
		err = r.Do(p, "gis.lookup", func() error { calls++; return perm })
	})
	sim.Run()
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("permanent error: err=%v calls=%d, want 1 un-retried call", err, calls)
	}
	if r.Retries() != 2 {
		t.Fatalf("permanent error consumed a retry: %d", r.Retries())
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	sim := simcore.New(1)
	r := NewRetrier(sim, Policy{MaxAttempts: 3, BaseDelay: 0.1, Multiplier: 2}, nil)
	var calls int
	var err error
	sim.Spawn("caller", func(p *simcore.Proc) {
		err = r.Do(p, "ibp.store", func() error {
			calls++
			return faultinject.ErrUnavailable
		})
	})
	sim.Run()
	if calls != 3 {
		t.Fatalf("calls=%d, want MaxAttempts=3", calls)
	}
	if !faultinject.Retryable(err) {
		t.Fatalf("exhausted error %v should stay in the retryable class", err)
	}
	if r.GaveUp() != 1 {
		t.Fatalf("gaveUp=%d, want 1", r.GaveUp())
	}
}

// TestDoExhaustionReturnsLastError: when the budget runs out, the wrapped
// error is the final attempt's, not the first's.
func TestDoExhaustionReturnsLastError(t *testing.T) {
	sim := simcore.New(1)
	r := NewRetrier(sim, Policy{MaxAttempts: 3, BaseDelay: 0.1, Multiplier: 2}, nil)
	attempts := []error{
		fmt.Errorf("attempt one: %w", faultinject.ErrUnavailable),
		fmt.Errorf("attempt two: %w", faultinject.ErrUnavailable),
		fmt.Errorf("attempt three: %w", faultinject.ErrUnavailable),
	}
	var calls int
	var err error
	sim.Spawn("caller", func(p *simcore.Proc) {
		err = r.Do(p, "nws.forecast", func() error {
			calls++
			return attempts[calls-1]
		})
	})
	sim.Run()
	if calls != 3 {
		t.Fatalf("calls=%d, want the full budget of 3", calls)
	}
	if !errors.Is(err, attempts[2]) {
		t.Fatalf("exhaustion error %v does not wrap the last attempt's error", err)
	}
	if errors.Is(err, attempts[0]) || errors.Is(err, attempts[1]) {
		t.Fatalf("exhaustion error %v wraps an earlier attempt's error", err)
	}
	if want := "after 3 attempts"; !strings.Contains(err.Error(), want) {
		t.Fatalf("exhaustion error %q does not mention %q", err, want)
	}
}

func TestNilRetrierRunsOnce(t *testing.T) {
	var r *Retrier
	calls := 0
	err := r.Do(nil, "x", func() error { calls++; return faultinject.ErrUnavailable })
	if calls != 1 || !faultinject.Retryable(err) {
		t.Fatalf("nil retrier: calls=%d err=%v", calls, err)
	}
	if r.Retries() != 0 || r.GaveUp() != 0 {
		t.Fatal("nil retrier counters must read 0")
	}
}

func detectorGrid(sim *simcore.Sim) *topology.Grid {
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e8, 1e-4)
	g.AddNode(topology.NodeSpec{Name: "a1", Site: "A", MHz: 1000, FlopsPerCycle: 1})
	g.AddNode(topology.NodeSpec{Name: "a2", Site: "A", MHz: 1000, FlopsPerCycle: 1})
	return g
}

func TestDetectorTransitions(t *testing.T) {
	sim := simcore.New(1)
	g := detectorGrid(sim)
	d := NewDetector(sim, g, 1)
	d.Watch("a1", "a2", "nosuch")

	type firing struct {
		node string
		down bool
		at   float64
	}
	var fired []firing
	d.OnFailure(func(n string, at float64) { fired = append(fired, firing{n, true, at}) })
	d.OnRecovery(func(n string, at float64) { fired = append(fired, firing{n, false, at}) })
	d.Start()

	sim.At(2.5, func() { g.SetNodeDown("a1", true) })
	sim.At(5.5, func() { g.SetNodeDown("a1", false) })
	sim.At(7.5, func() { g.SetNodeDown("a1", true) }) // second failure fires again
	sim.At(10, d.Stop)
	sim.RunUntil(20)

	want := []firing{{"a1", true, 3}, {"a1", false, 6}, {"a1", true, 8}}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("firings %v, want %v (detection latency <= one period)", fired, want)
	}
	if d.Suspects() != 2 {
		t.Fatalf("suspects=%d, want 2", d.Suspects())
	}
	if !d.Suspected("a1") || d.Suspected("a2") {
		t.Fatal("suspicion state wrong after the run")
	}
}

// TestDetectorFlappingHeartbeats: a node flapping down/up/down/up raises a
// strictly alternating suspect → recover → suspect → recover sequence with
// nondecreasing detection times, each suspicion cleared before the next one
// fires, while an untouched node stays quiet.
func TestDetectorFlappingHeartbeats(t *testing.T) {
	sim := simcore.New(1)
	g := detectorGrid(sim)
	d := NewDetector(sim, g, 1)
	d.Watch("a1", "a2")

	type firing struct {
		node string
		down bool
		at   float64
	}
	var fired []firing
	d.OnFailure(func(n string, at float64) {
		if d.Suspected(n) != true {
			t.Errorf("OnFailure(%s) fired without the node marked suspected", n)
		}
		fired = append(fired, firing{n, true, at})
	})
	d.OnRecovery(func(n string, at float64) {
		if d.Suspected(n) {
			t.Errorf("OnRecovery(%s) fired with the suspicion still set", n)
		}
		fired = append(fired, firing{n, false, at})
	})
	d.Start()

	// Each flap phase outlasts one heartbeat period so every transition is
	// observed.
	flaps := []struct {
		at   float64
		down bool
	}{{2.2, true}, {4.2, false}, {6.2, true}, {8.2, false}}
	for _, f := range flaps {
		f := f
		sim.At(f.at, func() { g.SetNodeDown("a1", f.down) })
	}
	sim.At(12, d.Stop)
	sim.RunUntil(20)

	if len(fired) != len(flaps) {
		t.Fatalf("got %d firings %v, want %d (one per flap phase)", len(fired), fired, len(flaps))
	}
	for i, f := range fired {
		if f.node != "a1" {
			t.Fatalf("firing %d on %s; only a1 flapped", i, f.node)
		}
		if wantDown := i%2 == 0; f.down != wantDown {
			t.Fatalf("firing %d down=%v, want strict suspect/recover alternation %v", i, f.down, fired)
		}
		if i > 0 && f.at <= fired[i-1].at {
			t.Fatalf("firing %d at %g not after previous at %g", i, f.at, fired[i-1].at)
		}
		if lag := f.at - flaps[i].at; lag < 0 || lag > 1 {
			t.Fatalf("firing %d detected %gs after the flap, want within one period", i, lag)
		}
	}
	if d.Suspects() != 2 {
		t.Fatalf("suspects=%d, want one per down phase", d.Suspects())
	}
	if d.Suspected("a1") || d.Suspected("a2") {
		t.Fatal("no node should end the run suspected")
	}
}
