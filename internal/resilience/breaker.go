package resilience

import (
	"fmt"
	"math/rand"

	"grads/internal/faultinject"
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// BreakerState is the position of a circuit breaker's state machine.
type BreakerState int

const (
	// BreakerClosed passes calls through and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails calls fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets a bounded number of probe calls through; a
	// success closes the breaker, a failure re-opens it.
	BreakerHalfOpen
)

// String names the state for telemetry and reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// ErrCircuitOpen is returned (wrapped with the service name) when a breaker
// rejects a call without invoking it. It wraps faultinject.ErrUnavailable,
// so retry loops treat a fast-failed call exactly like a service outage:
// they back off and try again later — bounded now by the retry budget —
// instead of treating the rejection as a fatal application error.
var ErrCircuitOpen = fmt.Errorf("%w: circuit open", faultinject.ErrUnavailable)

// BreakerConfig parameterizes one service's circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive retryable failures trip the
	// breaker from closed to open (minimum 1).
	FailureThreshold int
	// Cooldown is how long (virtual seconds) an open breaker rejects calls
	// before transitioning to half-open.
	Cooldown float64
	// ProbeJitter randomizes each cooldown down by up to this fraction,
	// drawn from the breaker set's seeded source, so breakers guarding the
	// same storm don't probe the recovering service in lock-step.
	ProbeJitter float64
	// HalfOpenProbes is how many calls the half-open state admits before it
	// starts rejecting again (minimum 1). The first probe success closes
	// the breaker; a probe failure re-opens it.
	HalfOpenProbes int
}

// DefaultBreakerConfig trips after 3 consecutive failures, cools down for
// 4 s with 25% probe jitter, and admits one probe at a time — tuned so a
// breaker rides out the same outage windows as DefaultPolicy without
// hammering the recovering service.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{FailureThreshold: 3, Cooldown: 4, ProbeJitter: 0.25, HalfOpenProbes: 1}
}

// Breaker is a deterministic virtual-time circuit breaker for one service.
// All timing comes from the simulation clock and all jitter from an
// explicit seeded source, so two runs with the same seed trip, probe and
// close at exactly the same instants.
type Breaker struct {
	sim     *simcore.Sim
	service string
	cfg     BreakerConfig
	rng     *rand.Rand

	state      BreakerState
	consecFail int
	openUntil  float64 // virtual time the open state expires
	probesLeft int     // remaining half-open probe slots

	opens     int // closed/half-open -> open transitions
	fastFails int // calls rejected without being invoked
}

// NewBreaker creates a closed breaker for one service. A nil rng disables
// probe jitter (still deterministic).
func NewBreaker(sim *simcore.Sim, service string, cfg BreakerConfig, rng *rand.Rand) *Breaker {
	if cfg.FailureThreshold < 1 {
		cfg.FailureThreshold = 1
	}
	if cfg.HalfOpenProbes < 1 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.Cooldown < 0 {
		cfg.Cooldown = 0
	}
	return &Breaker{sim: sim, service: service, cfg: cfg, rng: rng}
}

// State returns the breaker's current position, folding in an elapsed
// cooldown (an open breaker whose cooldown has passed reports half-open).
func (b *Breaker) State() BreakerState {
	if b.state == BreakerOpen && b.sim.Now() >= b.openUntil {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int { return b.opens }

// FastFails returns how many calls the breaker rejected without invoking.
func (b *Breaker) FastFails() int { return b.fastFails }

// Allow reports whether a call may proceed now. In the open state it fails
// fast until the cooldown elapses, then transitions to half-open and
// admits up to HalfOpenProbes probes.
func (b *Breaker) Allow() bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.sim.Now() < b.openUntil {
			b.fastFails++
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probesLeft = b.cfg.HalfOpenProbes
		fallthrough
	default: // BreakerHalfOpen
		if b.probesLeft <= 0 {
			b.fastFails++
			return false
		}
		b.probesLeft--
		return true
	}
}

// Record feeds the outcome of an allowed call back into the state machine.
// Only retryable failures (faultinject.Retryable) count against the
// breaker: a semantic error from a healthy service must not trip it.
func (b *Breaker) Record(err error) {
	failed := err != nil && faultinject.Retryable(err)
	switch b.state {
	case BreakerClosed:
		if !failed {
			b.consecFail = 0
			return
		}
		b.consecFail++
		if b.consecFail >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if failed {
			b.trip() // the probe found the service still down
			return
		}
		b.transition(BreakerClosed)
		b.consecFail = 0
	case BreakerOpen:
		// A call admitted before the trip may report after it; ignore.
	}
}

// trip opens the breaker for one jittered cooldown.
func (b *Breaker) trip() {
	cooldown := b.cfg.Cooldown
	if b.rng != nil && b.cfg.ProbeJitter > 0 && cooldown > 0 {
		j := b.cfg.ProbeJitter
		if j > 1 {
			j = 1
		}
		cooldown *= 1 - j*b.rng.Float64()
	}
	b.openUntil = b.sim.Now() + cooldown
	b.opens++
	b.consecFail = 0
	b.transition(BreakerOpen)
}

// transition moves the state machine and publishes the edge.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	b.sim.Tracef("resilience: breaker %s %s -> %s", b.service, from, to)
	if tel := b.sim.Telemetry(); tel != nil {
		if to == BreakerOpen {
			tel.Counter("resilience", "breaker_opens").Inc()
		}
		tel.Emit(telemetry.Event{
			Type: telemetry.EvBreakerState, Comp: "resilience", Name: b.service,
			Args: []telemetry.Arg{
				telemetry.S("from", from.String()),
				telemetry.S("to", to.String()),
			},
		})
	}
}

// BreakerSet holds one breaker per service, created lazily on first use so
// callers never pre-register service names. All breakers share one config
// and one seeded jitter source; creation order is call order, which is
// deterministic under the single-threaded kernel.
type BreakerSet struct {
	sim      *simcore.Sim
	cfg      BreakerConfig
	rng      *rand.Rand
	breakers map[string]*Breaker
}

// NewBreakerSet creates an empty set over sim.
func NewBreakerSet(sim *simcore.Sim, cfg BreakerConfig, rng *rand.Rand) *BreakerSet {
	return &BreakerSet{sim: sim, cfg: cfg, rng: rng, breakers: make(map[string]*Breaker)}
}

// For returns the breaker guarding service, creating it closed on first
// use. A nil set returns nil (breakers disabled).
func (bs *BreakerSet) For(service string) *Breaker {
	if bs == nil {
		return nil
	}
	b := bs.breakers[service]
	if b == nil {
		b = NewBreaker(bs.sim, service, bs.cfg, bs.rng)
		bs.breakers[service] = b
	}
	return b
}

// Opens sums the trip counts across all breakers in the set.
func (bs *BreakerSet) Opens() int {
	if bs == nil {
		return 0
	}
	sum := 0
	for _, b := range bs.breakers {
		sum += b.opens
	}
	return sum
}

// FastFails sums the fast-failed call counts across the set.
func (bs *BreakerSet) FastFails() int {
	if bs == nil {
		return 0
	}
	sum := 0
	for _, b := range bs.breakers {
		sum += b.fastFails
	}
	return sum
}
