package resilience

import "math"

// Deadline is an absolute virtual-time budget for a multi-hop recovery
// operation. It is a plain value passed down the call chain — the emulated
// analogue of context deadline propagation — so a restore that must pull
// twenty checkpoint blobs shares one clock across all twenty retrieves
// instead of granting each hop a fresh timeout. The zero Deadline means
// "no deadline".
type Deadline struct {
	at float64 // absolute virtual time; 0 = none
}

// NoDeadline is the unbounded deadline.
var NoDeadline = Deadline{}

// DeadlineAt returns a deadline expiring at absolute virtual time t.
func DeadlineAt(t float64) Deadline { return Deadline{at: t} }

// DeadlineAfter returns a deadline expiring budget seconds after now. A
// non-positive budget yields no deadline.
func DeadlineAfter(now, budget float64) Deadline {
	if budget <= 0 {
		return NoDeadline
	}
	return Deadline{at: now + budget}
}

// Set reports whether the deadline is bounded.
func (d Deadline) Set() bool { return d.at > 0 }

// At returns the absolute expiry time (+Inf when unbounded).
func (d Deadline) At() float64 {
	if !d.Set() {
		return math.Inf(1)
	}
	return d.at
}

// Remaining returns the budget left at virtual time now (+Inf when
// unbounded; never negative).
func (d Deadline) Remaining(now float64) float64 {
	if !d.Set() {
		return math.Inf(1)
	}
	if d.at <= now {
		return 0
	}
	return d.at - now
}

// Expired reports whether the deadline has passed at virtual time now.
func (d Deadline) Expired(now float64) bool { return d.Set() && now >= d.at }
