package resilience

import (
	"grads/internal/simcore"
)

// BudgetConfig parameterizes the per-service retry budget: a token bucket
// refilled by virtual time. Every retry (not first attempts) spends one
// token; an empty bucket denies the retry, so a whole fleet of callers
// hammering one recovering service collectively backs off instead of
// storming it.
type BudgetConfig struct {
	// Capacity is the bucket size in tokens (minimum 1).
	Capacity float64
	// RefillPerSec is how many tokens accrue per virtual second.
	RefillPerSec float64
}

// DefaultBudgetConfig allows bursts of 10 retries per service, refilled at
// one per second — generous enough that a lone job rides out an outage,
// tight enough that dozens of callers cannot multiply into a storm.
func DefaultBudgetConfig() BudgetConfig {
	return BudgetConfig{Capacity: 10, RefillPerSec: 1}
}

// Budget is one service's token bucket, lazily refilled from the
// simulation clock so it costs nothing while the service is healthy.
type Budget struct {
	sim *simcore.Sim
	cfg BudgetConfig

	tokens     float64
	lastRefill float64

	taken  int // retries granted
	denied int // retries refused on an empty bucket
}

// NewBudget creates a full bucket over sim.
func NewBudget(sim *simcore.Sim, cfg BudgetConfig) *Budget {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.RefillPerSec < 0 {
		cfg.RefillPerSec = 0
	}
	return &Budget{sim: sim, cfg: cfg, tokens: cfg.Capacity, lastRefill: sim.Now()}
}

// refill accrues tokens for the elapsed virtual time.
func (b *Budget) refill() {
	now := b.sim.Now()
	if now > b.lastRefill {
		b.tokens += (now - b.lastRefill) * b.cfg.RefillPerSec
		if b.tokens > b.cfg.Capacity {
			b.tokens = b.cfg.Capacity
		}
	}
	b.lastRefill = now
}

// TryTake spends one token if available and reports whether the retry may
// proceed. A nil budget always grants (budgets disabled).
func (b *Budget) TryTake() bool {
	if b == nil {
		return true
	}
	b.refill()
	if b.tokens < 1 {
		b.denied++
		if tel := b.sim.Telemetry(); tel != nil {
			tel.Counter("resilience", "budget_denied").Inc()
		}
		return false
	}
	b.tokens--
	b.taken++
	return true
}

// Tokens returns the current token level (after refill).
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.refill()
	return b.tokens
}

// Taken returns how many retries the budget has granted.
func (b *Budget) Taken() int {
	if b == nil {
		return 0
	}
	return b.taken
}

// Denied returns how many retries the budget has refused.
func (b *Budget) Denied() int {
	if b == nil {
		return 0
	}
	return b.denied
}

// BudgetSet holds one token bucket per service, created full on first use.
// The budget is shared by every caller retrying against that service —
// that sharing is the point: it converts N independent retry loops into
// one bounded aggregate retry rate per service.
type BudgetSet struct {
	sim     *simcore.Sim
	cfg     BudgetConfig
	budgets map[string]*Budget
}

// NewBudgetSet creates an empty set over sim.
func NewBudgetSet(sim *simcore.Sim, cfg BudgetConfig) *BudgetSet {
	return &BudgetSet{sim: sim, cfg: cfg, budgets: make(map[string]*Budget)}
}

// For returns the budget of service, creating a full bucket on first use.
// A nil set returns nil (budgets disabled; nil *Budget grants everything).
func (bs *BudgetSet) For(service string) *Budget {
	if bs == nil {
		return nil
	}
	b := bs.budgets[service]
	if b == nil {
		b = NewBudget(bs.sim, bs.cfg)
		bs.budgets[service] = b
	}
	return b
}

// Denied sums the denied-retry counts across the set.
func (bs *BudgetSet) Denied() int {
	if bs == nil {
		return 0
	}
	sum := 0
	for _, b := range bs.budgets {
		sum += b.denied
	}
	return sum
}
