package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"grads/internal/faultinject"
	"grads/internal/simcore"
)

var errDown = fmt.Errorf("%w: svc", faultinject.ErrUnavailable)

// step is one scripted interaction with a breaker: advance the clock, make
// a call (allowed or not), and check the resulting state.
type step struct {
	at        float64 // virtual time of the step
	outcome   error   // what the call returns if allowed (nil = success)
	wantAllow bool
	wantState BreakerState // state after the step
}

func runSteps(t *testing.T, name string, cfg BreakerConfig, steps []step) {
	t.Helper()
	sim := simcore.New(1)
	b := NewBreaker(sim, "svc", cfg, nil) // no jitter: exact cooldown edges
	for i, s := range steps {
		sim.RunUntil(s.at)
		got := b.Allow()
		if got != s.wantAllow {
			t.Fatalf("%s step %d (t=%g): Allow() = %v, want %v", name, i, s.at, got, s.wantAllow)
		}
		if got {
			b.Record(s.outcome)
		}
		if st := b.State(); st != s.wantState {
			t.Fatalf("%s step %d (t=%g): state = %v, want %v", name, i, s.at, st, s.wantState)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{FailureThreshold: 2, Cooldown: 10, HalfOpenProbes: 1}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "trips after threshold consecutive failures",
			steps: []step{
				{at: 0, outcome: errDown, wantAllow: true, wantState: BreakerClosed},
				{at: 1, outcome: errDown, wantAllow: true, wantState: BreakerOpen},
				{at: 2, wantAllow: false, wantState: BreakerOpen},
			},
		},
		{
			name: "success resets the consecutive count",
			steps: []step{
				{at: 0, outcome: errDown, wantAllow: true, wantState: BreakerClosed},
				{at: 1, outcome: nil, wantAllow: true, wantState: BreakerClosed},
				{at: 2, outcome: errDown, wantAllow: true, wantState: BreakerClosed},
				{at: 3, outcome: errDown, wantAllow: true, wantState: BreakerOpen},
			},
		},
		{
			name: "semantic errors never trip it",
			steps: []step{
				{at: 0, outcome: errors.New("no such software"), wantAllow: true, wantState: BreakerClosed},
				{at: 1, outcome: errors.New("no such software"), wantAllow: true, wantState: BreakerClosed},
				{at: 2, outcome: errors.New("no such software"), wantAllow: true, wantState: BreakerClosed},
			},
		},
		{
			name: "half-open probe success closes",
			steps: []step{
				{at: 0, outcome: errDown, wantAllow: true, wantState: BreakerClosed},
				{at: 1, outcome: errDown, wantAllow: true, wantState: BreakerOpen},
				{at: 5, wantAllow: false, wantState: BreakerOpen}, // cooldown runs to t=11
				{at: 11, outcome: nil, wantAllow: true, wantState: BreakerClosed},
				{at: 12, outcome: nil, wantAllow: true, wantState: BreakerClosed},
			},
		},
		{
			name: "half-open probe failure re-opens for a fresh cooldown",
			steps: []step{
				{at: 0, outcome: errDown, wantAllow: true, wantState: BreakerClosed},
				{at: 1, outcome: errDown, wantAllow: true, wantState: BreakerOpen},
				{at: 11, outcome: errDown, wantAllow: true, wantState: BreakerOpen},
				{at: 20, wantAllow: false, wantState: BreakerOpen}, // new cooldown runs to t=21
				{at: 21, outcome: nil, wantAllow: true, wantState: BreakerClosed},
			},
		},
		{
			name: "half-open admits only the configured probes",
			steps: []step{
				{at: 0, outcome: errDown, wantAllow: true, wantState: BreakerClosed},
				{at: 1, outcome: errDown, wantAllow: true, wantState: BreakerOpen},
				// First Allow after cooldown takes the single probe slot but
				// its Record has not happened when the second Allow arrives.
				{at: 11, outcome: errDown, wantAllow: true, wantState: BreakerOpen},
				{at: 11, wantAllow: false, wantState: BreakerOpen},
			},
		},
	}
	for _, tc := range cases {
		runSteps(t, tc.name, cfg, tc.steps)
	}
}

func TestBreakerCounters(t *testing.T) {
	sim := simcore.New(1)
	b := NewBreaker(sim, "svc", BreakerConfig{FailureThreshold: 1, Cooldown: 5, HalfOpenProbes: 1}, nil)
	b.Allow()
	b.Record(errDown) // trip 1
	if b.Allow() {
		t.Fatal("open breaker allowed a call inside the cooldown")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a second call inside the cooldown")
	}
	sim.RunUntil(5)
	b.Allow()
	b.Record(errDown) // probe fails: trip 2
	if b.Opens() != 2 || b.FastFails() != 2 {
		t.Fatalf("opens=%d fastFails=%d, want 2/2", b.Opens(), b.FastFails())
	}
}

// TestBreakerJitterDeterministicAcrossSeeds: the jittered cooldown sequence
// is a pure function of the seed — identical for equal seeds, different for
// different ones (the anti-lockstep property).
func TestBreakerJitterDeterministicAcrossSeeds(t *testing.T) {
	trips := func(seed int64) []float64 {
		sim := simcore.New(1)
		cfg := BreakerConfig{FailureThreshold: 1, Cooldown: 8, ProbeJitter: 0.5, HalfOpenProbes: 1}
		b := NewBreaker(sim, "svc", cfg, rand.New(rand.NewSource(seed)))
		var outs []float64
		at := 0.0
		for i := 0; i < 6; i++ {
			sim.RunUntil(at)
			if !b.Allow() {
				t.Fatalf("breaker not ready to probe at t=%g", at)
			}
			b.Record(errDown)
			outs = append(outs, b.openUntil)
			at = b.openUntil // next probe exactly when the cooldown expires
		}
		return outs
	}
	a1, a2, b1 := trips(7), trips(7), trips(8)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same seed, different trip schedule:\n%v\n%v", a1, a2)
	}
	if reflect.DeepEqual(a1, b1) {
		t.Fatal("different seeds produced identical jittered cooldowns")
	}
	for i, until := range a1 {
		lo := 4.0 // Cooldown * (1 - ProbeJitter)
		prev := 0.0
		if i > 0 {
			prev = a1[i-1]
		}
		if d := until - prev; d < lo || d > 8 {
			t.Fatalf("jittered cooldown %d = %g outside [4,8]", i, d)
		}
	}
}

func TestBudgetTable(t *testing.T) {
	cases := []struct {
		name       string
		cfg        BudgetConfig
		takes      int     // TryTake calls at t=0
		wantGrants int     // how many of them succeed
		advance    float64 // then advance the clock...
		moreTakes  int     // ...and take again
		wantMore   int
	}{
		{
			name:  "burst capped at capacity",
			cfg:   BudgetConfig{Capacity: 3, RefillPerSec: 0},
			takes: 5, wantGrants: 3,
			advance: 100, moreTakes: 2, wantMore: 0, // no refill configured
		},
		{
			name:  "refill restores tokens with virtual time",
			cfg:   BudgetConfig{Capacity: 4, RefillPerSec: 1},
			takes: 4, wantGrants: 4,
			advance: 2.5, moreTakes: 3, wantMore: 2,
		},
		{
			name:  "refill never exceeds capacity",
			cfg:   BudgetConfig{Capacity: 2, RefillPerSec: 10},
			takes: 2, wantGrants: 2,
			advance: 1000, moreTakes: 5, wantMore: 2,
		},
	}
	for _, tc := range cases {
		sim := simcore.New(1)
		b := NewBudget(sim, tc.cfg)
		grants := 0
		for i := 0; i < tc.takes; i++ {
			if b.TryTake() {
				grants++
			}
		}
		if grants != tc.wantGrants {
			t.Fatalf("%s: %d of %d initial takes granted, want %d", tc.name, grants, tc.takes, tc.wantGrants)
		}
		sim.RunUntil(tc.advance)
		more := 0
		for i := 0; i < tc.moreTakes; i++ {
			if b.TryTake() {
				more++
			}
		}
		if more != tc.wantMore {
			t.Fatalf("%s: %d of %d post-refill takes granted, want %d", tc.name, more, tc.moreTakes, tc.wantMore)
		}
		if b.Taken() != grants+more || b.Denied() != (tc.takes-grants)+(tc.moreTakes-more) {
			t.Fatalf("%s: taken=%d denied=%d inconsistent with grant history", tc.name, b.Taken(), b.Denied())
		}
	}
}

// TestRetrierGuards: the integrated path — a breaker trips during a
// persistent outage, fast-fails subsequent attempts, and the retry budget
// bounds the total retries spent per service.
func TestRetrierGuards(t *testing.T) {
	sim := simcore.New(1)
	r := NewRetrier(sim, Policy{MaxAttempts: 6, BaseDelay: 1, MaxDelay: 1, Multiplier: 1}, nil)
	r.SetGuards(
		NewBreakerSet(sim, BreakerConfig{FailureThreshold: 2, Cooldown: 100, HalfOpenProbes: 1}, nil),
		NewBudgetSet(sim, BudgetConfig{Capacity: 100, RefillPerSec: 0}),
	)
	calls := 0
	var err error
	sim.Spawn("caller", func(p *simcore.Proc) {
		err = r.Do(p, "gis.query", func() error { calls++; return errDown })
	})
	sim.Run()
	// Attempts 1 and 2 invoke and trip the breaker; attempts 3..6 fast-fail
	// against the open breaker without touching the service.
	if calls != 2 {
		t.Fatalf("service invoked %d times, want 2 (breaker fast-fails the rest)", calls)
	}
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("final error %v should surface the open circuit", err)
	}
	if got := r.Breakers().For("gis").Opens(); got != 1 {
		t.Fatalf("breaker opens = %d, want 1", got)
	}
	if fb := r.Breakers().FastFails(); fb != 4 {
		t.Fatalf("fast fails = %d, want 4", fb)
	}

	// Budget exhaustion: a service with an empty bucket gives up after the
	// first attempt instead of sleeping through backoff.
	r2 := NewRetrier(sim, Policy{MaxAttempts: 6, BaseDelay: 1, MaxDelay: 1, Multiplier: 1}, nil)
	r2.SetGuards(nil, NewBudgetSet(sim, BudgetConfig{Capacity: 1, RefillPerSec: 0}))
	calls2 := 0
	var err2 error
	sim.Spawn("caller2", func(p *simcore.Proc) {
		err2 = r2.Do(p, "ibp.store", func() error { calls2++; return errDown })
	})
	sim.Run()
	// Capacity 1: attempt 1 fails, one retry token grants attempt 2, then
	// the empty bucket denies further retries.
	if calls2 != 2 {
		t.Fatalf("service invoked %d times, want 2 (budget denies the rest)", calls2)
	}
	if err2 == nil || r2.Budgets().For("ibp").Denied() != 1 {
		t.Fatalf("err=%v denied=%d, want budget-exhausted failure after 1 denial",
			err2, r2.Budgets().For("ibp").Denied())
	}
}

// TestDeadlinePropagation: DoUntil refuses to start a backoff sleep that
// would cross the deadline, so multi-hop recovery paths inherit one shared
// time bound instead of each hop getting a fresh allowance.
func TestDeadlinePropagation(t *testing.T) {
	sim := simcore.New(1)
	r := NewRetrier(sim, Policy{MaxAttempts: 10, BaseDelay: 4, MaxDelay: 4, Multiplier: 1}, nil)
	calls := 0
	var err error
	var elapsed float64
	sim.Spawn("caller", func(p *simcore.Proc) {
		t0 := p.Now()
		dl := DeadlineAfter(p.Now(), 10)
		err = r.DoUntil(p, "gis.query", dl, func() error { calls++; return errDown })
		elapsed = p.Now() - t0
	})
	sim.Run()
	// Attempts at t=0,4,8; the next backoff would end at t=12 > 10.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 before the deadline cuts off", calls)
	}
	if elapsed > 10 {
		t.Fatalf("retrying ran %gs past a 10s deadline", elapsed)
	}
	if err == nil {
		t.Fatal("deadline exhaustion must surface an error")
	}

	// NoDeadline is unbounded: all attempts run.
	calls = 0
	sim.Spawn("caller2", func(p *simcore.Proc) {
		err = r.DoUntil(p, "gis.query", NoDeadline, func() error { calls++; return errDown })
	})
	sim.Run()
	if calls != 10 {
		t.Fatalf("calls = %d, want the full MaxAttempts under NoDeadline", calls)
	}
}
