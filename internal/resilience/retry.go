// Package resilience provides the fault-handling primitives the GrADS
// services share: a virtual-time retry policy with seeded exponential
// backoff for calls against flaky grid services, and a heartbeat-based
// failure detector that feeds the contract monitor and rescheduler when
// nodes crash.
//
// Both primitives are deterministic: backoff jitter comes from an explicit
// seeded source and all waiting happens in virtual time, so two runs with
// the same seed retry at exactly the same instants.
package resilience

import (
	"fmt"
	"math/rand"

	"grads/internal/faultinject"
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// Policy is a retry/timeout policy for calls against grid services.
// Attempts that fail with a retryable error (faultinject.Retryable) are
// re-tried after an exponentially growing, jittered backoff; other errors
// propagate immediately. The zero value retries nothing; use DefaultPolicy
// for the stack-wide default.
type Policy struct {
	MaxAttempts int     // total attempts, including the first (<=1 disables retry)
	BaseDelay   float64 // backoff before the second attempt, seconds
	MaxDelay    float64 // backoff ceiling, seconds
	Multiplier  float64 // backoff growth per attempt (>= 1)
	Jitter      float64 // fraction of the delay randomized away, [0, 1]
}

// DefaultPolicy is the stack-wide service-call policy: five attempts with
// 0.5 s → 8 s exponential backoff and 25% jitter. Total worst-case wait is
// under half a minute — long enough to ride out a short outage, short
// enough that a permanent one surfaces before the contract monitor's
// horizon.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 5, BaseDelay: 0.5, MaxDelay: 8, Multiplier: 2, Jitter: 0.25}
}

// Backoff returns the wait in seconds before attempt (1-based: Backoff(1)
// precedes the second attempt), drawing jitter from rng. A nil rng yields
// the deterministic un-jittered delay.
func (po Policy) Backoff(attempt int, rng *rand.Rand) float64 {
	if attempt < 1 {
		attempt = 1
	}
	d := po.BaseDelay
	mult := po.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 1; i < attempt; i++ {
		d *= mult
		if po.MaxDelay > 0 && d >= po.MaxDelay {
			d = po.MaxDelay
			break
		}
	}
	if po.MaxDelay > 0 && d > po.MaxDelay {
		d = po.MaxDelay
	}
	if rng != nil && po.Jitter > 0 && d > 0 {
		j := po.Jitter
		if j > 1 {
			j = 1
		}
		// Deterministic jitter in [1-j, 1]: never longer than the nominal
		// delay, so MaxDelay stays an upper bound.
		d *= 1 - j*rng.Float64()
	}
	return d
}

// Retrier executes service calls under a Policy, sleeping virtual time
// between attempts and emitting one service.retry telemetry event per
// re-attempt.
type Retrier struct {
	sim    *simcore.Sim
	policy Policy
	rng    *rand.Rand

	// Optional recovery control plane: per-service circuit breakers (fail
	// fast while a service is known-down) and shared retry budgets (bound
	// the aggregate retry rate against a recovering service). Nil means
	// plain policy-driven retries.
	breakers *BreakerSet
	budgets  *BudgetSet

	retries int // re-attempts performed
	gaveUp  int // calls that exhausted every attempt
}

// NewRetrier creates a retrier over sim with the given policy and jitter
// source. A nil rng disables jitter (still fully deterministic).
func NewRetrier(sim *simcore.Sim, policy Policy, rng *rand.Rand) *Retrier {
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	return &Retrier{sim: sim, policy: policy, rng: rng}
}

// Policy returns the retrier's policy.
func (r *Retrier) Policy() Policy { return r.policy }

// SetGuards installs the recovery control plane around the retrier's
// calls: breakers trip per service after consecutive failures and fail
// subsequent calls fast; budgets spend one token per retry so callers
// sharing a service cannot collectively storm it. Either may be nil.
func (r *Retrier) SetGuards(breakers *BreakerSet, budgets *BudgetSet) {
	r.breakers = breakers
	r.budgets = budgets
}

// Breakers returns the installed breaker set, or nil.
func (r *Retrier) Breakers() *BreakerSet {
	if r == nil {
		return nil
	}
	return r.breakers
}

// Budgets returns the installed budget set, or nil.
func (r *Retrier) Budgets() *BudgetSet {
	if r == nil {
		return nil
	}
	return r.budgets
}

// serviceOf maps an op name to its service key: the prefix before the
// first dot ("ibp.store" -> "ibp"), or the whole op when undotted.
func serviceOf(op string) string {
	for i := 0; i < len(op); i++ {
		if op[i] == '.' {
			return op[:i]
		}
	}
	return op
}

// Retries returns how many re-attempts the retrier has performed.
func (r *Retrier) Retries() int {
	if r == nil {
		return 0
	}
	return r.retries
}

// GaveUp returns how many calls exhausted all attempts.
func (r *Retrier) GaveUp() int {
	if r == nil {
		return 0
	}
	return r.gaveUp
}

// Do runs call from process p, retrying on retryable errors per the policy.
// op names the call in telemetry ("gis.query", "ibp.store"); its prefix
// before the first dot selects the breaker and budget when guards are
// installed. A nil Retrier runs the call once with no retry. The returned
// error is the last attempt's, wrapped with the attempt count when retries
// were exhausted.
func (r *Retrier) Do(p *simcore.Proc, op string, call func() error) error {
	return r.DoUntil(p, op, NoDeadline, call)
}

// DoUntil is Do under an absolute virtual-time deadline: the retry loop
// gives up (returning the last error wrapped) rather than start a backoff
// that would cross it. Multi-hop recovery operations pass one Deadline
// down to every hop, so the hops share a single recovery budget.
func (r *Retrier) DoUntil(p *simcore.Proc, op string, dl Deadline, call func() error) error {
	if r == nil {
		return call()
	}
	svc := serviceOf(op)
	br := r.breakers.For(svc)
	var err error
	for attempt := 1; ; attempt++ {
		if br != nil && !br.Allow() {
			// Fail fast without touching the recovering service. The error
			// is retryable, so the loop below still backs off and re-tries
			// (a probe slot may open), bounded by the budget and deadline.
			err = fmt.Errorf("%w for %s", ErrCircuitOpen, svc)
		} else {
			err = call()
			if br != nil {
				br.Record(err)
			}
		}
		if err == nil || !faultinject.Retryable(err) || attempt >= r.policy.MaxAttempts {
			break
		}
		wait := r.policy.Backoff(attempt, r.rng)
		now := r.sim.Now()
		if dl.Expired(now) || now+wait > dl.At() {
			r.giveUp(op, "deadline")
			return fmt.Errorf("%s deadline exceeded after %d attempts: %w", op, attempt, err)
		}
		if !r.budgets.For(svc).TryTake() {
			r.giveUp(op, "budget")
			return fmt.Errorf("retry budget for %s exhausted after %d attempts: %w", svc, attempt, err)
		}
		r.retries++
		if tel := r.sim.Telemetry(); tel != nil {
			tel.Counter("resilience", "retries").Inc()
			tel.Emit(telemetry.Event{
				Type: telemetry.EvServiceRetry, Comp: "resilience", Name: op,
				Args: []telemetry.Arg{
					telemetry.I("attempt", attempt),
					telemetry.F("backoff", wait),
				},
			})
		}
		r.sim.Tracef("resilience: %s attempt %d failed (%v), retrying in %.3fs", op, attempt, err, wait)
		if serr := p.Sleep(wait); serr != nil {
			return serr // interrupted while backing off: surface the interrupt
		}
	}
	if err != nil && faultinject.Retryable(err) {
		r.giveUp(op, "attempts")
		return fmt.Errorf("after %d attempts: %w", r.policy.MaxAttempts, err)
	}
	return err
}

// giveUp accounts one abandoned call and publishes why.
func (r *Retrier) giveUp(op, reason string) {
	r.gaveUp++
	if tel := r.sim.Telemetry(); tel != nil {
		tel.Counter("resilience", "gave_up").Inc()
		tel.Emit(telemetry.Event{
			Type: telemetry.EvServiceDegraded, Comp: "resilience", Name: op,
			Args: []telemetry.Arg{telemetry.S("reason", reason)},
		})
	}
}
