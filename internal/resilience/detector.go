package resilience

import (
	"sort"

	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Detector is a heartbeat-based failure detector: a daemon process that
// polls the liveness of a watched node set every Period seconds and fires a
// callback (plus a detector.suspect telemetry event) when a node stops
// answering. Detection latency is therefore at most one period — the
// emulator's stand-in for a missed-heartbeat timeout.
//
// The detector is level-triggered per transition: each node is suspected
// once per failure, and a recovery observed at a later tick clears the
// suspicion so a subsequent failure fires again.
type Detector struct {
	sim    *simcore.Sim
	grid   *topology.Grid
	period float64

	watched   []string // sorted node names, deterministic sweep order
	suspected map[string]bool

	onFailure  func(node string, at float64)
	onRecovery func(node string, at float64)

	proc     *simcore.Proc
	stopped  bool
	suspects int // total suspect firings
}

// NewDetector creates a detector over the grid polling every period
// seconds (non-positive defaults to 1 s). Watch and the callbacks must be
// set before Start.
func NewDetector(sim *simcore.Sim, grid *topology.Grid, period float64) *Detector {
	if period <= 0 {
		period = 1
	}
	return &Detector{
		sim: sim, grid: grid, period: period,
		suspected: make(map[string]bool),
	}
}

// Watch adds nodes to the monitored set (unknown names are ignored at poll
// time). The sweep order is sorted, so firing order within a tick is
// deterministic.
func (d *Detector) Watch(nodes ...string) {
	d.watched = append(d.watched, nodes...)
	sort.Strings(d.watched)
}

// OnFailure installs the callback fired (from the detector process) when a
// watched node is first seen down.
func (d *Detector) OnFailure(fn func(node string, at float64)) { d.onFailure = fn }

// OnRecovery installs the callback fired when a previously suspected node
// is seen up again.
func (d *Detector) OnRecovery(fn func(node string, at float64)) { d.onRecovery = fn }

// Suspects returns how many failure suspicions the detector has raised.
func (d *Detector) Suspects() int { return d.suspects }

// Suspected reports whether the node is currently suspected down.
func (d *Detector) Suspected(node string) bool { return d.suspected[node] }

// SuspectedCount returns how many watched nodes are currently suspected
// down — the detector-storm signal that brownout admission shedding keys
// on.
func (d *Detector) SuspectedCount() int { return len(d.suspected) }

// Start spawns the detector daemon.
func (d *Detector) Start() {
	d.proc = d.sim.Spawn("detector", func(p *simcore.Proc) {
		for !d.stopped {
			if err := p.Sleep(d.period); err != nil {
				return
			}
			d.sweep()
		}
	})
}

// Stop terminates the detector daemon.
func (d *Detector) Stop() {
	d.stopped = true
	if d.proc != nil {
		d.proc.Kill()
	}
}

// sweep performs one heartbeat round over the watched set.
func (d *Detector) sweep() {
	now := d.sim.Now()
	for _, name := range d.watched {
		n := d.grid.Node(name)
		if n == nil {
			continue
		}
		down := n.Down()
		switch {
		case down && !d.suspected[name]:
			d.suspected[name] = true
			d.suspects++
			d.sim.Tracef("detector: suspect %s (missed heartbeat)", name)
			if tel := d.sim.Telemetry(); tel != nil {
				tel.Counter("detector", "suspects").Inc()
				tel.Emit(telemetry.Event{
					Type: telemetry.EvDetectorSuspect, Comp: "detector", Name: name,
					Args: []telemetry.Arg{telemetry.B("down", true)},
				})
			}
			if d.onFailure != nil {
				d.onFailure(name, now)
			}
		case !down && d.suspected[name]:
			delete(d.suspected, name)
			d.sim.Tracef("detector: %s answering again", name)
			if tel := d.sim.Telemetry(); tel != nil {
				tel.Emit(telemetry.Event{
					Type: telemetry.EvDetectorSuspect, Comp: "detector", Name: name,
					Args: []telemetry.Arg{telemetry.B("down", false)},
				})
			}
			if d.onRecovery != nil {
				d.onRecovery(name, now)
			}
		}
	}
}
