package metasched

import (
	"math"
	"testing"

	"grads/internal/apps"
	"grads/internal/binder"
	"grads/internal/cop"
	"grads/internal/gis"
	"grads/internal/ibp"
	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// rig wires a minimal GrADS environment over the QR testbed (12 nodes,
// two sites).
type rig struct {
	sim  *simcore.Sim
	grid *topology.Grid
	gis  *gis.Service
	st   *ibp.System
	bind *binder.Binder
}

func newRig(seed int64) *rig {
	sim := simcore.New(seed)
	grid := topology.QRTestbed(sim)
	g := gis.New(sim, grid)
	g.RegisterSoftwareEverywhere(binder.LocalBinderPkg, "/opt/grads/binder")
	for _, lib := range []string{"scalapack", "blas", "srs", "autopilot", "mpi"} {
		g.RegisterSoftwareEverywhere(lib, "/opt/"+lib)
	}
	st := ibp.New(sim, grid)
	st.AddDepotsEverywhere()
	return &rig{sim: sim, grid: grid, gis: g, st: st, bind: binder.New(sim, g)}
}

func (r *rig) config(policy Policy) Config {
	return Config{
		Sim: r.sim, Grid: r.grid, GIS: r.gis, Storage: r.st, Binder: r.bind,
		Policy: policy, Tick: 5,
	}
}

// farmSpec builds a task-farm submission.
func farmSpec(name string, submit float64, tasks, width, minWidth int, bid, est float64) JobSpec {
	return JobSpec{
		Name: name, Kind: "task-farm", Submit: submit,
		Width: width, MinWidth: minWidth, Bid: bid, EstRuntime: est,
		Make: func(c *AppContext) (cop.COP, error) {
			f, err := apps.NewTaskFarm(c.Grid, c.RSS, c.Binder, c.Weather, tasks, 2e9, width)
			if err != nil {
				return nil, err
			}
			f.CheckpointEvery = 2
			return f, nil
		},
	}
}

// qrSpec builds a ScaLAPACK QR submission.
func qrSpec(name string, submit float64, n, width, minWidth int, bid, est float64) JobSpec {
	return JobSpec{
		Name: name, Kind: "qr", Submit: submit,
		Width: width, MinWidth: minWidth, Bid: bid, EstRuntime: est,
		Make: func(c *AppContext) (cop.COP, error) {
			q, err := apps.NewQR(c.Grid, c.RSS, c.Binder, c.Weather, n, 50)
			if err != nil {
				return nil, err
			}
			q.SetMaxProcs(width)
			q.CheckpointEvery = 3
			return q, nil
		},
	}
}

// TestLeaseLifecycle: grants are exclusive, overlaps rejected, release and
// shrink return nodes to the free pool.
func TestLeaseLifecycle(t *testing.T) {
	r := newRig(1)
	lm := NewLeaseManager(r.sim, r.grid)
	nodes := sortedByName(r.grid.Nodes())

	a, err := lm.Grant("a", nodes[:4])
	if err != nil {
		t.Fatalf("grant a: %v", err)
	}
	if _, err := lm.Grant("b", nodes[3:6]); err == nil {
		t.Fatal("overlapping grant accepted")
	}
	b, err := lm.Grant("b", nodes[4:8])
	if err != nil {
		t.Fatalf("grant b: %v", err)
	}
	if got := len(lm.Free(nodes)); got != 4 {
		t.Fatalf("free = %d, want 4", got)
	}
	lm.Release(a)
	if got := len(lm.Free(nodes)); got != 8 {
		t.Fatalf("free after release = %d, want 8", got)
	}
	freed := lm.Shrink(b, b.Nodes()[:1])
	if len(freed) != 3 || b.Size() != 1 {
		t.Fatalf("shrink freed %d (lease %d), want 3 (1)", len(freed), b.Size())
	}
	lm.Release(b)
	if lm.LeasedNodes() != 0 {
		t.Fatalf("leased = %d after releasing everything", lm.LeasedNodes())
	}
	// A lease holding a down node is refused.
	nodes[0].SetDown(true)
	if _, err := lm.Grant("c", nodes[:2]); err == nil {
		t.Fatal("grant including a down node accepted")
	}
}

// TestLeaseReclaimAndUtilization: a crash pulls the node out of its lease
// via the topology watcher, and the busy-node-seconds integral reflects the
// shrink.
func TestLeaseReclaimAndUtilization(t *testing.T) {
	r := newRig(1)
	lm := NewLeaseManager(r.sim, r.grid)
	nodes := sortedByName(r.grid.Nodes())
	l, err := lm.Grant("a", nodes[:4])
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	var reclaimed string
	lm.OnReclaim(func(_ *Lease, n *topology.Node) { reclaimed = n.Name() })
	r.sim.At(10, func() { r.grid.SetNodeDown(nodes[0].Name(), true) })
	r.sim.At(25, func() {})
	r.sim.Run()

	if l.Size() != 3 || lm.Reclaimed() != 1 {
		t.Fatalf("lease size %d reclaimed %d, want 3 and 1", l.Size(), lm.Reclaimed())
	}
	if reclaimed != nodes[0].Name() {
		t.Fatalf("reclaim callback got %q, want %q", reclaimed, nodes[0].Name())
	}
	for _, n := range lm.Free(nodes) {
		if n == nodes[0] {
			t.Fatal("down node in free pool")
		}
	}
	// 4 nodes x 10s, then 3 nodes x 15s.
	if got := lm.BusyNodeSeconds(); math.Abs(got-85) > 1e-9 {
		t.Fatalf("busy node-seconds = %g, want 85", got)
	}
}

// TestOrderQueuePolicies: FIFO is submission order; priority ranks by bid
// with FIFO tie-break.
func TestOrderQueuePolicies(t *testing.T) {
	mk := func(id int, enq, bid float64) *Job {
		return &Job{ID: id, enqueuedAt: enq, Spec: JobSpec{Bid: bid}}
	}
	a, b, c := mk(1, 0, 1), mk(2, 5, 9), mk(3, 10, 9)
	prio := func(j *Job) float64 { return j.Spec.Bid }

	fifo := orderQueue(PolicyFIFO, []*Job{c, a, b}, prio)
	if fifo[0] != a || fifo[1] != b || fifo[2] != c {
		t.Fatalf("fifo order = %v,%v,%v", fifo[0].ID, fifo[1].ID, fifo[2].ID)
	}
	pr := orderQueue(PolicyPriority, []*Job{c, a, b}, prio)
	if pr[0] != b || pr[1] != c || pr[2] != a {
		t.Fatalf("priority order = %v,%v,%v", pr[0].ID, pr[1].ID, pr[2].ID)
	}
	if _, err := ParsePolicy("lottery"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestBackfillWindow: the EASY reservation is the earliest estimated
// release that satisfies the head, with the surplus as backfill room.
func TestBackfillWindow(t *testing.T) {
	r := newRig(1)
	lm := NewLeaseManager(r.sim, r.grid)
	nodes := sortedByName(r.grid.Nodes())
	j1 := &Job{ID: 1, Spec: JobSpec{EstRuntime: 100}}
	j2 := &Job{ID: 2, Spec: JobSpec{EstRuntime: 300}}
	j1.lease, _ = lm.Grant("j1", nodes[:4])
	j2.lease, _ = lm.Grant("j2", nodes[4:10])
	running := []*Job{j1, j2}

	if shadow, extra := backfillWindow(0, 2, 6, running); shadow != 100 || extra != 0 {
		t.Fatalf("window = %g,%d want 100,0", shadow, extra)
	}
	if shadow, extra := backfillWindow(0, 2, 5, running); shadow != 100 || extra != 1 {
		t.Fatalf("window = %g,%d want 100,1", shadow, extra)
	}
	if shadow, _ := backfillWindow(0, 2, 12, running); shadow != 300 {
		t.Fatalf("shadow = %g want 300", shadow)
	}
	if shadow, _ := backfillWindow(0, 2, 13, running); !math.IsInf(shadow, 1) {
		t.Fatalf("unsatisfiable head got shadow %g, want +Inf", shadow)
	}
	if shadow, extra := backfillWindow(0, 6, 6, running); shadow != 0 || extra != 0 {
		t.Fatalf("head fits now: window = %g,%d want 0,0", shadow, extra)
	}
}

// TestSchedulerRunsStreamToCompletion: an oversubscribed mixed stream (two
// farms and a QR wanting 16 of 12 nodes) all completes under backfill, with
// leases fully returned.
func TestSchedulerRunsStreamToCompletion(t *testing.T) {
	r := newRig(3)
	s, err := New(r.config(PolicyBackfill))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	mustSubmit(t, s, farmSpec("farm-a", 0, 24, 8, 1, 2, 300))
	mustSubmit(t, s, farmSpec("farm-b", 10, 8, 4, 1, 4, 150))
	mustSubmit(t, s, qrSpec("qr-c", 20, 600, 4, 2, 8, 600))
	s.Start()
	r.sim.RunUntil(50000)

	for _, j := range s.Jobs() {
		if j.State() != JobDone {
			t.Fatalf("job %s state %v (err %v)", j.Spec.Name, j.State(), j.Err())
		}
	}
	if s.Admissions() < 3 {
		t.Fatalf("admissions = %d, want >= 3", s.Admissions())
	}
	if s.Leases().LeasedNodes() != 0 {
		t.Fatalf("leaked %d leased nodes", s.Leases().LeasedNodes())
	}
	if s.Leases().BusyNodeSeconds() <= 0 {
		t.Fatal("no lease utilization recorded")
	}
	for _, rec := range s.Records() {
		if rec.State != "done" || rec.Wait < 0 || rec.Finish <= rec.Start {
			t.Fatalf("bad record %+v", rec)
		}
	}
}

// TestStarvationPreemptionViaSRS: a high-bid QR starving behind a low-bid
// farm that owns the whole testbed forces a negotiated stop-and-shrink of
// the farm through the SRS checkpoint path; both jobs still complete.
func TestStarvationPreemptionViaSRS(t *testing.T) {
	r := newRig(4)
	cfg := r.config(PolicyPriority)
	cfg.StarveAfter = 60
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	mustSubmit(t, s, farmSpec("farm", 0, 48, 12, 1, 1, 400))
	mustSubmit(t, s, qrSpec("qr", 30, 600, 6, 4, 50, 600))
	s.Start()
	r.sim.RunUntil(100000)

	if s.PreemptOrders() < 1 || s.PreemptApplied() < 1 {
		t.Fatalf("preempt orders=%d applied=%d, want >=1 each", s.PreemptOrders(), s.PreemptApplied())
	}
	var farm, qr *Job
	for _, j := range s.Jobs() {
		switch j.Spec.Name {
		case "farm":
			farm = j
		case "qr":
			qr = j
		}
	}
	if farm.State() != JobDone || qr.State() != JobDone {
		t.Fatalf("farm=%v qr=%v (farm err %v, qr err %v)", farm.State(), qr.State(), farm.Err(), qr.Err())
	}
	if farm.preemptions < 1 {
		t.Fatalf("victim shrinks = %d, want >= 1", farm.preemptions)
	}
	if farm.rss.Migrations() < 1 {
		t.Fatal("victim never went through an SRS stop/restart")
	}
}

// TestLeaseLossRequeuesJob: crashing every node of a running job's lease
// reclaims the lease, requeues the job, and it finishes elsewhere.
func TestLeaseLossRequeuesJob(t *testing.T) {
	r := newRig(5)
	s, err := New(r.config(PolicyFIFO))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	job := mustSubmit(t, s, farmSpec("farm", 0, 16, 4, 2, 2, 300))
	s.Start()
	// The farm's mapper picks the 4 fastest nodes: the UTK cluster. Crash
	// all of them mid-run.
	r.sim.At(60, func() {
		for _, n := range r.grid.Site("UTK").Nodes() {
			r.grid.SetNodeDown(n.Name(), true)
		}
	})
	r.sim.RunUntil(100000)

	if job.State() != JobDone {
		t.Fatalf("job state %v (err %v)", job.State(), job.Err())
	}
	if job.requeues < 1 {
		t.Fatalf("requeues = %d, want >= 1", job.requeues)
	}
	if s.Leases().Reclaimed() != 4 {
		t.Fatalf("reclaimed = %d, want 4", s.Leases().Reclaimed())
	}
	for _, n := range job.cop.(nodeTracker).CurNodes() {
		if n.Site().Name == "UTK" {
			t.Fatal("job restarted on a crashed UTK node")
		}
	}
}

// TestContractViolationShrinks: ReportViolation negotiates the running
// job down to its MinWidth-fastest nodes.
func TestContractViolationShrinks(t *testing.T) {
	r := newRig(6)
	s, err := New(r.config(PolicyPriority))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	job := mustSubmit(t, s, farmSpec("farm", 0, 24, 6, 2, 2, 300))
	s.Start()
	var ordered bool
	r.sim.At(80, func() { ordered = s.ReportViolation("farm") })
	r.sim.RunUntil(100000)

	if !ordered {
		t.Fatal("ReportViolation declined to act")
	}
	if s.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", s.Violations())
	}
	if job.State() != JobDone {
		t.Fatalf("job state %v (err %v)", job.State(), job.Err())
	}
	if job.preemptions < 1 {
		t.Fatalf("shrinks applied = %d, want >= 1", job.preemptions)
	}
	if s.ReportViolation("farm") {
		t.Fatal("violation on a finished job acted")
	}
}

// TestSubmitValidation: broken specs are rejected up front.
func TestSubmitValidation(t *testing.T) {
	r := newRig(7)
	s, err := New(r.config(PolicyFIFO))
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	ok := farmSpec("a", 0, 4, 2, 1, 1, 100)
	if _, err := s.Submit(ok); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []JobSpec{
		{},
		{Name: "a", Width: 2, Make: ok.Make}, // duplicate
		{Name: "b", Width: 0, Make: ok.Make}, // no width
		{Name: "c", Width: 2, MinWidth: 4, Make: ok.Make}, // min > width
		{Name: "d", Width: 2},                             // no factory
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("config without services accepted")
	}
	cfg := r.config(Policy("lottery"))
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func mustSubmit(t *testing.T, s *Scheduler, spec JobSpec) *Job {
	t.Helper()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit %s: %v", spec.Name, err)
	}
	return j
}

// TestHoldOpenOpenLoopIntake: a HoldOpen broker survives a lull in which
// every submitted job has already finished, accepts a later submission at
// its own arrival instant (the open-loop front-door pattern), and fires
// OnIdle exactly once — after CloseIntake, when the queue drains. OnJobDone
// observes every terminal job in completion order.
func TestHoldOpenOpenLoopIntake(t *testing.T) {
	r := newRig(5)
	cfg := r.config(PolicyBackfill)
	cfg.HoldOpen = true
	var done []string
	idles := 0
	cfg.OnJobDone = func(j *Job) { done = append(done, j.Spec.Name) }
	cfg.OnIdle = func() { idles++ }
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	mustSubmit(t, s, farmSpec("early", 0, 4, 4, 1, 2, 100))
	s.Start()
	r.sim.At(30000, func() {
		if s.Remaining() != 0 {
			t.Errorf("early job still unfinished at t=30000")
		}
		if idles != 0 {
			t.Errorf("OnIdle fired while intake was still open")
		}
		mustSubmit(t, s, farmSpec("late", 30000, 4, 4, 1, 2, 100))
		s.CloseIntake()
	})
	r.sim.RunUntil(100000)

	for _, j := range s.Jobs() {
		if j.State() != JobDone {
			t.Fatalf("job %s state %v (err %v)", j.Spec.Name, j.State(), j.Err())
		}
	}
	if idles != 1 {
		t.Fatalf("OnIdle fired %d times, want 1", idles)
	}
	if len(done) != 2 || done[0] != "early" || done[1] != "late" {
		t.Fatalf("OnJobDone order = %v, want [early late]", done)
	}
	sub, start, fin := s.Jobs()[1].Times()
	if sub != 30000 || start < sub || fin <= start {
		t.Fatalf("late job times submit=%g start=%g finish=%g", sub, start, fin)
	}
}

// TestCloseIntakeAfterDrain: closing intake on an already-drained HoldOpen
// broker fires OnIdle immediately; a second close is a no-op.
func TestCloseIntakeAfterDrain(t *testing.T) {
	r := newRig(6)
	cfg := r.config(PolicyFIFO)
	cfg.HoldOpen = true
	idles := 0
	cfg.OnIdle = func() { idles++ }
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	mustSubmit(t, s, farmSpec("only", 0, 4, 4, 1, 2, 100))
	s.Start()
	r.sim.RunUntil(30000)
	if got := s.Jobs()[0].State(); got != JobDone {
		t.Fatalf("job state %v, want done", got)
	}
	if idles != 0 {
		t.Fatalf("OnIdle fired %d times before CloseIntake, want 0", idles)
	}
	s.CloseIntake()
	if idles != 1 {
		t.Fatalf("OnIdle fired %d times after CloseIntake, want 1", idles)
	}
	s.CloseIntake()
	if idles != 1 {
		t.Fatalf("second CloseIntake fired OnIdle again (%d)", idles)
	}
}

// TestNamedBrokerTelemetry: a named broker publishes its scheduler metrics
// under "metasched:<name>", leaving the bare component untouched, so a
// multi-broker fleet's gauges stay distinct.
func TestNamedBrokerTelemetry(t *testing.T) {
	r := newRig(7)
	tel := telemetry.New()
	r.sim.SetTelemetry(tel)
	cfg := r.config(PolicyFIFO)
	cfg.Name = "east"
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	mustSubmit(t, s, farmSpec("job", 0, 4, 4, 1, 2, 100))
	s.Start()
	r.sim.RunUntil(30000)

	if got := tel.Counter("metasched:east", "submissions").Value(); got != 1 {
		t.Fatalf("namespaced submissions = %d, want 1", got)
	}
	if got := tel.Counter("metasched:east", "admissions").Value(); got == 0 {
		t.Fatal("namespaced admissions counter empty")
	}
	if got := tel.Counter("metasched", "submissions").Value(); got != 0 {
		t.Fatalf("bare metasched submissions = %d, want 0", got)
	}
}
