package metasched

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// StreamEntry is one parsed submission of the -jobs stream grammar: a job
// class, an arrival time, and its shape parameters. It carries everything a
// JobSpec needs except the COP constructor, which the consumer binds to its
// execution environment (see experiments.RunJobStream).
type StreamEntry struct {
	Kind   string  // "qr" or "farm"
	Submit float64 // virtual arrival time, seconds

	N     int // qr: matrix order
	Tasks int // farm: independent work units

	Width    int     // requested lease width
	MinWidth int     // smallest acceptable lease (0 = broker default of 1)
	Bid      float64 // willingness to pay per node-round
	Est      float64 // user runtime estimate, seconds (0 = none)
}

// String renders the entry in the stream grammar.
func (e StreamEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s:", e.Kind, streamFloat(e.Submit))
	switch e.Kind {
	case "qr":
		fmt.Fprintf(&b, "n=%d", e.N)
	case "farm":
		fmt.Fprintf(&b, "tasks=%d", e.Tasks)
	}
	fmt.Fprintf(&b, ",w=%d", e.Width)
	if e.MinWidth > 0 {
		fmt.Fprintf(&b, ",min=%d", e.MinWidth)
	}
	if e.Bid > 0 {
		fmt.Fprintf(&b, ",bid=%s", streamFloat(e.Bid))
	}
	if e.Est > 0 {
		fmt.Fprintf(&b, ",est=%s", streamFloat(e.Est))
	}
	return b.String()
}

// streamFloat renders a non-negative finite value in fixed notation (no
// exponent), so formatted streams reparse to the identical value.
func streamFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// FormatStream renders a submission stream in the grammar ParseStream
// accepts (its exact inverse), so generated streams can be reported and
// replayed.
func FormatStream(entries []StreamEntry) string {
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// ParseStream parses the -jobs submission-stream grammar:
//
//	stream := entry (';' entry)*
//	entry  := kind '@' submit ':' param (',' param)*
//	param  := key '=' value
//
// where kind is qr (a tightly coupled ScaLAPACK QR factorization) or farm
// (a loosely coupled task farm), and submit is the virtual arrival time in
// seconds. Parameters:
//
//	n=N       qr only, required: matrix order (rows = cols)
//	tasks=T   farm only, required: independent work units
//	w=W       required: requested lease width in nodes
//	min=M     smallest acceptable lease, 1 <= M <= W (default 1)
//	bid=B     willingness to pay per node-round (default 1)
//	est=S     user runtime estimate in seconds, backfill only (default:
//	          derived from the job shape)
//
// Example:
//
//	qr@0:n=3000,w=8,min=4,bid=40;farm@25:tasks=24,w=4,bid=3
//
// Entries may arrive in any order; the parsed stream is sorted by submit
// time (then kind, then shape) so execution is deterministic.
func ParseStream(stream string) ([]StreamEntry, error) {
	var entries []StreamEntry
	for _, part := range strings.Split(stream, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseStreamEntry(part)
		if err != nil {
			return nil, fmt.Errorf("metasched: bad job %q: %w", part, err)
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("metasched: empty job stream")
	}
	sortStream(entries)
	return entries, nil
}

func parseStreamEntry(s string) (StreamEntry, error) {
	at := strings.Index(s, "@")
	if at < 0 {
		return StreamEntry{}, fmt.Errorf("missing '@'")
	}
	kind := strings.ToLower(strings.TrimSpace(s[:at]))
	if kind != "qr" && kind != "farm" {
		return StreamEntry{}, fmt.Errorf("unknown job kind %q (want qr or farm)", kind)
	}
	rest := s[at+1:]
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return StreamEntry{}, fmt.Errorf("missing ':' before parameters")
	}
	e := StreamEntry{Kind: kind}
	submit, err := strconv.ParseFloat(rest[:colon], 64)
	if err != nil || math.IsNaN(submit) || math.IsInf(submit, 0) || submit < 0 {
		return StreamEntry{}, fmt.Errorf("bad submit time %q", rest[:colon])
	}
	e.Submit = submit

	seen := map[string]bool{}
	for _, param := range strings.Split(rest[colon+1:], ",") {
		eq := strings.Index(param, "=")
		if eq < 0 {
			return StreamEntry{}, fmt.Errorf("parameter %q is not key=value", param)
		}
		key, val := strings.TrimSpace(param[:eq]), strings.TrimSpace(param[eq+1:])
		if seen[key] {
			return StreamEntry{}, fmt.Errorf("duplicate parameter %q", key)
		}
		seen[key] = true
		switch key {
		case "n", "tasks", "w", "min":
			iv, err := strconv.Atoi(val)
			if err != nil || iv <= 0 {
				return StreamEntry{}, fmt.Errorf("%s=%q is not a positive integer", key, val)
			}
			switch key {
			case "n":
				if kind != "qr" {
					return StreamEntry{}, fmt.Errorf("n= only applies to qr jobs")
				}
				e.N = iv
			case "tasks":
				if kind != "farm" {
					return StreamEntry{}, fmt.Errorf("tasks= only applies to farm jobs")
				}
				e.Tasks = iv
			case "w":
				e.Width = iv
			case "min":
				e.MinWidth = iv
			}
		case "bid", "est":
			fv, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(fv) || math.IsInf(fv, 0) || fv <= 0 {
				return StreamEntry{}, fmt.Errorf("%s=%q is not a positive finite number", key, val)
			}
			if key == "bid" {
				e.Bid = fv
			} else {
				e.Est = fv
			}
		default:
			return StreamEntry{}, fmt.Errorf("unknown parameter %q", key)
		}
	}
	if kind == "qr" && e.N == 0 {
		return StreamEntry{}, fmt.Errorf("qr job needs n=")
	}
	if kind == "farm" && e.Tasks == 0 {
		return StreamEntry{}, fmt.Errorf("farm job needs tasks=")
	}
	if e.Width == 0 {
		return StreamEntry{}, fmt.Errorf("job needs w=")
	}
	if e.MinWidth > e.Width {
		return StreamEntry{}, fmt.Errorf("min=%d exceeds w=%d", e.MinWidth, e.Width)
	}
	return e, nil
}

// sortStream orders entries by submit time, then kind, then shape and
// width — a total order over distinct entries, so execution order never
// depends on how the stream string was assembled.
func sortStream(entries []StreamEntry) {
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.Tasks != b.Tasks {
			return a.Tasks < b.Tasks
		}
		return a.Width < b.Width
	})
}
