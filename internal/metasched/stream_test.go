package metasched

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseStream(t *testing.T) {
	entries, err := ParseStream("farm@25:tasks=24,w=4,bid=3; qr@0:n=3000,w=8,min=4,bid=40")
	if err != nil {
		t.Fatal(err)
	}
	want := []StreamEntry{
		{Kind: "qr", Submit: 0, N: 3000, Width: 8, MinWidth: 4, Bid: 40},
		{Kind: "farm", Submit: 25, Tasks: 24, Width: 4, Bid: 3},
	}
	if !reflect.DeepEqual(entries, want) {
		t.Fatalf("ParseStream = %+v, want %+v", entries, want)
	}
	if got := FormatStream(entries); got != "qr@0:n=3000,w=8,min=4,bid=40;farm@25:tasks=24,w=4,bid=3" {
		t.Fatalf("FormatStream = %q", got)
	}
}

func TestParseStreamRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"qr@0:w=8",                          // missing n
		"farm@0:w=8",                        // missing tasks
		"qr@0:n=100",                        // missing w
		"qr@0:n=100,w=4,min=8",              // min > w
		"qr@-1:n=100,w=4",                   // negative submit
		"qr@Inf:n=100,w=4",                  // non-finite submit
		"qr@0:n=100,w=4,bid=NaN",            // non-finite bid
		"qr@0:n=100,w=4,bid=0",              // non-positive bid
		"qr@0:n=100,w=4,w=5",                // duplicate key
		"qr@0:tasks=4,w=4",                  // farm-only key on qr
		"mpi@0:n=100,w=4",                   // unknown kind
		"qr@0:n=100,w=4,weight=2",           // unknown key
		"qr@0:n=2.5,w=4",                    // non-integer shape
		"qr@0:n=-100,w=4",                   // negative shape
		"qr@0:n=100,w=4;;bogus",             // trailing garbage entry
		"qr@0:n=9999999999999999999999,w=4", // integer overflow
	} {
		if _, err := ParseStream(bad); err == nil {
			t.Errorf("ParseStream(%q) accepted", bad)
		}
	}
}

// FuzzParseStream drives the -jobs grammar parser with arbitrary input: no
// panics, every accepted stream satisfies the broker's submission
// preconditions, and accepted streams round-trip exactly through
// FormatStream.
func FuzzParseStream(f *testing.F) {
	for _, seed := range []string{
		"qr@0:n=3000,w=8,min=4,bid=40;farm@25:tasks=24,w=4,bid=3",
		"qr@0:n=2000,w=4",
		"farm@100.5:tasks=16,w=2,est=350",
		"farm@3:tasks=8,w=2;qr@3:n=500,w=2",
		" qr@1:n=10,w=1,min=1,bid=0.1,est=2 ; farm@1:tasks=1,w=1 ",
		"qr@1e2:n=10,w=1",
		"qr@0:n=10,w=1,bid=Inf",
		"qr@@:n=1,w=1",
		";;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, stream string) {
		entries, err := ParseStream(stream)
		if err != nil {
			return
		}
		if len(entries) == 0 {
			t.Fatalf("accepted %q but returned no entries", stream)
		}
		for _, e := range entries {
			if e.Kind != "qr" && e.Kind != "farm" {
				t.Fatalf("accepted %q with kind %q", stream, e.Kind)
			}
			if math.IsNaN(e.Submit) || math.IsInf(e.Submit, 0) || e.Submit < 0 {
				t.Fatalf("accepted %q with bad submit %v", stream, e.Submit)
			}
			if e.Kind == "qr" && (e.N <= 0 || e.Tasks != 0) {
				t.Fatalf("accepted %q with qr shape n=%d tasks=%d", stream, e.N, e.Tasks)
			}
			if e.Kind == "farm" && (e.Tasks <= 0 || e.N != 0) {
				t.Fatalf("accepted %q with farm shape n=%d tasks=%d", stream, e.N, e.Tasks)
			}
			if e.Width <= 0 || e.MinWidth < 0 || e.MinWidth > e.Width {
				t.Fatalf("accepted %q with widths w=%d min=%d", stream, e.Width, e.MinWidth)
			}
			if e.Bid < 0 || math.IsNaN(e.Bid) || math.IsInf(e.Bid, 0) {
				t.Fatalf("accepted %q with bid %v", stream, e.Bid)
			}
			if e.Est < 0 || math.IsNaN(e.Est) || math.IsInf(e.Est, 0) {
				t.Fatalf("accepted %q with est %v", stream, e.Est)
			}
		}
		out := FormatStream(entries)
		if strings.Contains(out, "\n") {
			t.Fatalf("formatted stream of %q contains a newline: %q", stream, out)
		}
		again, err := ParseStream(out)
		if err != nil {
			t.Fatalf("round trip of %q failed: %v (formatted %q)", stream, err, out)
		}
		if !reflect.DeepEqual(entries, again) {
			t.Fatalf("round trip of %q changed the stream:\n was %+v\n got %+v", stream, entries, again)
		}
	})
}
