package metasched

import (
	"errors"
	"fmt"
	"sort"

	"grads/internal/appmgr"
	"grads/internal/binder"
	"grads/internal/cop"
	"grads/internal/economy"
	"grads/internal/faultinject"
	"grads/internal/gis"
	"grads/internal/ibp"
	"grads/internal/nws"
	"grads/internal/rescheduler"
	"grads/internal/resilience"
	"grads/internal/simcore"
	"grads/internal/srs"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// JobState is the lifecycle position of a submitted job.
type JobState int

const (
	JobPending JobState = iota // submitted, arrival not yet due
	JobQueued                  // in the admission queue
	JobRunning                 // on a lease, under its application manager
	JobDone
	JobFailed
	// JobQuarantined is the terminal state of a poison job: one that
	// exhausted its requeue cap without completing. Quarantine is graceful
	// degradation — the job stops consuming admission rounds and leases,
	// but stays accounted for (it is not lost).
	JobQuarantined
)

// String names the state for reports.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// AppContext is what a job's COP factory gets to build the application
// against: the shared Grid services plus the job's own private SRS instance
// (each job checkpoints under its own namespace and stop flag).
type AppContext struct {
	Grid    *topology.Grid
	Binder  *binder.Binder
	Weather *nws.Service
	RSS     *srs.RSS
}

// JobSpec describes one submission in the stream.
type JobSpec struct {
	Name   string
	Kind   string  // app class for reports ("qr", "task-farm", ...)
	Submit float64 // virtual arrival time
	// Width is the requested lease size; MinWidth (default 1) is the
	// smallest lease the job accepts — the floor for preemptive shrinking
	// and for relaxed admission of long-starved jobs.
	Width    int
	MinWidth int
	// Bid is the job's willingness to pay per node-round; effective
	// priority is Bid against the posted spot price.
	Bid float64
	// EstRuntime is the user's runtime estimate, used for backfill
	// reservations (never for correctness).
	EstRuntime float64
	// Make builds the job's COP against the context. Called once, at
	// arrival.
	Make func(ctx *AppContext) (cop.COP, error)
}

// Job is the broker's record of one submission.
type Job struct {
	ID   int
	Spec JobSpec

	state   JobState
	rss     *srs.RSS
	cop     cop.COP
	lease   *Lease
	mgr     *appmgr.Manager
	report  *appmgr.Report
	failErr error

	submitAt   float64
	enqueuedAt float64 // last queue entry (arrival or requeue)
	startAt    float64 // first admission
	finishAt   float64
	started    bool

	// Preemption negotiation state: pendingKeep is the shrunken lease the
	// victim's next segment must map onto, applied lazily by PoolFn once
	// the old segment has checkpointed and stopped.
	pendingKeep    []*topology.Node
	preemptPending bool
	preemptions    int // shrinks actually applied
	requeues       int
	notBefore      float64 // requeue backoff: ineligible for admission until then
}

// State returns the job's lifecycle position.
func (j *Job) State() JobState { return j.state }

// RSS returns the job's private checkpoint service (nil until arrival).
// The chaos soak audits its integrity counters through this.
func (j *Job) RSS() *srs.RSS { return j.rss }

// Report returns the application manager's phase report (nil until done).
func (j *Job) Report() *appmgr.Report { return j.report }

// Err returns the terminal error of a failed job.
func (j *Job) Err() error { return j.failErr }

// Times returns the job's submit, first-admission and finish instants in
// virtual time. Start is 0 until the job was first admitted, Finish is 0
// until it reached a terminal state.
func (j *Job) Times() (submit, start, finish float64) {
	return j.submitAt, j.startAt, j.finishAt
}

// minWidth is the smallest acceptable lease.
func (j *Job) minWidth() int {
	if j.Spec.MinWidth > 0 {
		return j.Spec.MinWidth
	}
	return 1
}

// nodeTracker is implemented by COPs that expose their current execution
// segment's node set (QR and TaskFarm both do); the broker uses it to size
// stop requests.
type nodeTracker interface{ CurNodes() []*topology.Node }

// Record is one job's flattened outcome for experiment tables.
type Record struct {
	Name, Kind  string
	Width       int
	State       string
	Submit      float64
	Start       float64 // first admission
	Finish      float64
	Wait        float64 // Start - Submit
	Turnaround  float64 // Finish - Submit
	Preemptions int     // lease shrinks applied to it
	Requeues    int
	Failures    int // node failures survived by its appmgr
}

// Config wires a Scheduler to an emulated Grid.
type Config struct {
	Sim     *simcore.Sim
	Grid    *topology.Grid
	GIS     *gis.Service
	Storage *ibp.System
	Binder  *binder.Binder
	Weather *nws.Service // optional; nil degrades to static capabilities

	Policy Policy

	// Tick is the admission-round period (default 5s of virtual time).
	Tick float64
	// StarveAfter is how long the highest-priority queued job may wait
	// before the broker negotiates a preemption for it (default 600s;
	// non-positive disables preemption). FIFO never preempts.
	StarveAfter float64
	// RelaxAfter is how long a queued job waits before the broker accepts
	// a lease down to MinWidth instead of the full Width (default
	// 2*StarveAfter; non-positive disables relaxation).
	RelaxAfter float64

	// PriceFloor and PriceAlpha parameterize the spot pricer that converts
	// bids into effective priorities (defaults 1 and 0.1).
	PriceFloor float64
	PriceAlpha float64

	// Retrier, when set, is handed to every job's application manager so
	// binds survive transient service outages.
	Retrier *resilience.Retrier
	// DetectorPeriod, when positive, runs a heartbeat failure detector over
	// all nodes and triggers an immediate admission round on every detected
	// failure or recovery (crash capacity is re-brokered at detection time,
	// not at the next tick).
	DetectorPeriod float64

	// MaxRequeues, when positive, caps how many times a job may lose its
	// lease and re-enter the queue before the broker quarantines it as a
	// poison job (terminal, but accounted — never silently lost). Zero
	// means unlimited requeues.
	MaxRequeues int
	// RequeueBackoff, when positive, is the base of an exponential
	// re-admission delay: after its k-th requeue a job is ineligible for
	// RequeueBackoff * 2^(k-1) seconds (capped at 64x base), so a job
	// bouncing off a sick grid stops thrashing the admission loop.
	RequeueBackoff float64
	// BrownoutSuspects, when positive, is the detector-storm threshold: an
	// admission round that sees at least this many nodes simultaneously
	// suspected down sheds its admissions entirely (leases and running
	// jobs are untouched) instead of placing work on a grid in mid-
	// collapse. Requires DetectorPeriod > 0 to have any effect.
	BrownoutSuspects int

	// OnIdle, when set, fires once when the last submitted job finishes.
	OnIdle func()

	// Name, when set, identifies this broker in a multi-broker fleet: the
	// scheduler's telemetry component becomes "metasched:<name>" so each
	// broker's queue/price gauges stay distinct (lease counters remain on
	// the shared "metasched" component — they are fleet-wide totals).
	// Empty keeps the single-broker component "metasched".
	Name string

	// HoldOpen keeps the admission daemon alive while the submission
	// stream is still open, even when every job submitted so far has
	// finished. Open-loop front ends (internal/frontdoor) submit jobs
	// during the run; without HoldOpen a lull in arrivals would retire
	// the daemon and strand every later submission. Call CloseIntake once
	// the last submission is in; OnIdle then fires when the queue drains.
	HoldOpen bool

	// OnJobDone, when set, fires after every job reaches a terminal state
	// (done, failed or quarantined), before any OnIdle. Front-door load
	// balancers use it to observe per-job completion latency.
	OnJobDone func(*Job)
}

// Scheduler is the metascheduler: it owns the admission queue, the lease
// ledger and the preemption negotiation over one emulated Grid.
type Scheduler struct {
	cfg    Config
	comp   string // telemetry component: "metasched" or "metasched:<name>"
	leases *LeaseManager
	resch  *rescheduler.Rescheduler
	pricer *economy.SpotPricer
	det    *resilience.Detector

	jobs   []*Job // by ID
	byName map[string]*Job
	queued []*Job

	proc      *simcore.Proc
	inRound   bool
	stopped   bool
	remaining int

	admissions     int
	preemptOrders  int // stop-and-shrink orders issued
	preemptApplied int // shrinks that took effect
	violations     int // contract violations reported
	quarantined    int // poison jobs retired by the requeue cap
	brownouts      int // admission rounds shed by detector storms
}

// New creates a Scheduler. Submit jobs, then Start it before running the
// simulation.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Sim == nil || cfg.Grid == nil || cfg.GIS == nil || cfg.Storage == nil || cfg.Binder == nil {
		return nil, errors.New("metasched: Sim, Grid, GIS, Storage and Binder are required")
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyFIFO
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 5
	}
	if cfg.StarveAfter == 0 {
		cfg.StarveAfter = 600
	}
	if cfg.RelaxAfter == 0 {
		cfg.RelaxAfter = 2 * cfg.StarveAfter
	}
	comp := "metasched"
	if cfg.Name != "" {
		comp = "metasched:" + cfg.Name
	}
	s := &Scheduler{
		cfg:    cfg,
		comp:   comp,
		leases: NewLeaseManager(cfg.Sim, cfg.Grid),
		resch:  rescheduler.New(cfg.Grid, cfg.Weather),
		pricer: economy.NewSpotPricer(cfg.PriceFloor, cfg.PriceAlpha),
		byName: make(map[string]*Job),
	}
	return s, nil
}

// Leases exposes the lease ledger (utilization accounting, reclaim stats).
func (s *Scheduler) Leases() *LeaseManager { return s.leases }

// Detector returns the broker's failure detector (nil unless DetectorPeriod
// was set and Start has run). Front-door brownout shedding reads its suspect
// count.
func (s *Scheduler) Detector() *resilience.Detector { return s.det }

// Price returns the current posted spot price.
func (s *Scheduler) Price() float64 { return s.pricer.Price() }

// Admissions returns how many admissions were performed (including
// re-admissions of requeued jobs).
func (s *Scheduler) Admissions() int { return s.admissions }

// PreemptOrders and PreemptApplied count stop-and-shrink orders issued and
// lease shrinks that actually took effect.
func (s *Scheduler) PreemptOrders() int { return s.preemptOrders }

// PreemptApplied returns how many preemptive lease shrinks were applied.
func (s *Scheduler) PreemptApplied() int { return s.preemptApplied }

// QueueDepth returns how many jobs currently wait in the queue.
func (s *Scheduler) QueueDepth() int { return len(s.queued) }

// Remaining returns how many submitted jobs have not yet finished.
func (s *Scheduler) Remaining() int { return s.remaining }

// Submit registers a job whose arrival fires at spec.Submit. Must be called
// before the simulation reaches that time.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if spec.Name == "" {
		return nil, errors.New("metasched: job needs a name")
	}
	if s.byName[spec.Name] != nil {
		return nil, fmt.Errorf("metasched: duplicate job name %q", spec.Name)
	}
	if spec.Width <= 0 {
		return nil, fmt.Errorf("metasched: job %s needs a positive width", spec.Name)
	}
	if spec.MinWidth > spec.Width {
		return nil, fmt.Errorf("metasched: job %s MinWidth %d exceeds Width %d", spec.Name, spec.MinWidth, spec.Width)
	}
	if spec.Make == nil {
		return nil, fmt.Errorf("metasched: job %s needs a COP factory", spec.Name)
	}
	job := &Job{ID: len(s.jobs) + 1, Spec: spec, state: JobPending, submitAt: spec.Submit}
	s.jobs = append(s.jobs, job)
	s.byName[spec.Name] = job
	s.remaining++
	s.cfg.Sim.At(spec.Submit, func() { s.arrive(job) })
	return job, nil
}

// arrive materializes the job's COP and puts it in the queue.
func (s *Scheduler) arrive(job *Job) {
	job.rss = srs.NewRSS(s.cfg.Sim, s.cfg.Storage, job.Spec.Name)
	if s.cfg.Retrier != nil {
		job.rss.SetRetrier(s.cfg.Retrier)
	}
	app, err := job.Spec.Make(&AppContext{
		Grid: s.cfg.Grid, Binder: s.cfg.Binder, Weather: s.cfg.Weather, RSS: job.rss,
	})
	if err != nil {
		s.finish(job, nil, fmt.Errorf("metasched: building %s: %w", job.Spec.Name, err))
		return
	}
	job.cop = app
	job.state = JobQueued
	job.enqueuedAt = s.cfg.Sim.Now()
	s.queued = append(s.queued, job)
	if tel := s.cfg.Sim.Telemetry(); tel != nil {
		tel.Counter(s.comp, "submissions").Inc()
		tel.Emit(telemetry.Event{
			Type: telemetry.EvJobSubmit, Comp: s.comp, Name: job.Spec.Name,
			Args: []telemetry.Arg{
				telemetry.S("kind", job.Spec.Kind),
				telemetry.I("width", job.Spec.Width),
				telemetry.F("bid", job.Spec.Bid),
			},
		})
	}
}

// Start spawns the admission daemon (and the failure detector when
// configured).
func (s *Scheduler) Start() {
	if s.cfg.DetectorPeriod > 0 {
		s.det = resilience.NewDetector(s.cfg.Sim, s.cfg.Grid, s.cfg.DetectorPeriod)
		names := make([]string, 0, len(s.cfg.Grid.Nodes()))
		for _, n := range s.cfg.Grid.Nodes() {
			names = append(names, n.Name())
		}
		s.det.Watch(names...)
		poke := func(string, float64) { s.kick() }
		s.det.OnFailure(poke)
		s.det.OnRecovery(poke)
		s.det.Start()
	}
	s.proc = s.cfg.Sim.Spawn(s.comp, func(p *simcore.Proc) {
		for !s.stopped && (s.cfg.HoldOpen || s.remaining > 0) {
			if err := p.Sleep(s.cfg.Tick); err != nil {
				return
			}
			s.round(p)
		}
	})
}

// CloseIntake declares the submission stream finished on a HoldOpen broker:
// the daemon retires once the queue drains, and OnIdle fires immediately if
// it already has. No-op on a broker that was never held open.
func (s *Scheduler) CloseIntake() {
	if !s.cfg.HoldOpen {
		return
	}
	s.cfg.HoldOpen = false
	if s.remaining == 0 && s.cfg.OnIdle != nil {
		s.cfg.OnIdle()
	}
}

// Stop halts the daemon, the detector and the crash watcher.
func (s *Scheduler) Stop() {
	s.stopped = true
	if s.proc != nil {
		s.proc.Kill()
	}
	if s.det != nil {
		s.det.Stop()
	}
	s.leases.Close()
}

// kick runs one extra admission round now (from a one-shot process, since
// rounds query GIS).
func (s *Scheduler) kick() {
	if s.stopped || s.remaining == 0 {
		return
	}
	s.cfg.Sim.Spawn(s.comp+"-kick", func(p *simcore.Proc) { s.round(p) })
}

// avail builds the shared availability view for one round from a single NWS
// snapshot, so every decision of the round ranks nodes identically.
func (s *Scheduler) availFn(nodes []*topology.Node) func(*topology.Node) float64 {
	if s.cfg.Weather == nil {
		return func(n *topology.Node) float64 { return n.CPU.Availability() }
	}
	names := make([]string, 0, len(nodes))
	for _, n := range nodes {
		names = append(names, n.Name())
	}
	snap := s.cfg.Weather.CPUSnapshot(names)
	return func(n *topology.Node) float64 {
		if v, ok := snap[n.Name()]; ok {
			return v
		}
		return 1
	}
}

// round performs one admission round: shared GIS/NWS snapshot, price
// update, admissions under the queue policy, then starvation-driven
// preemption.
func (s *Scheduler) round(p *simcore.Proc) {
	if s.inRound || s.stopped {
		return
	}
	s.inRound = true
	defer func() { s.inRound = false }()

	// Brownout: a detector storm (many nodes suspected at once) means the
	// free-pool view is collapsing under the round; shedding the round is
	// cheaper than placing jobs on nodes about to be reclaimed. Running
	// jobs and leases are untouched.
	if s.cfg.BrownoutSuspects > 0 && s.det != nil && s.det.SuspectedCount() >= s.cfg.BrownoutSuspects {
		s.brownouts++
		s.cfg.Sim.Tracef("metasched: brownout, %d nodes suspected — admission round shed", s.det.SuspectedCount())
		if tel := s.cfg.Sim.Telemetry(); tel != nil {
			tel.Counter(s.comp, "brownouts").Inc()
			tel.Emit(telemetry.Event{
				Type: telemetry.EvSchedBrownout, Comp: s.comp,
				Args: []telemetry.Arg{telemetry.I("suspected", s.det.SuspectedCount())},
			})
		}
		return
	}

	snap, err := s.cfg.GIS.TakeSnapshot(p, gis.Filter{})
	if err != nil {
		return // GIS outage: skip the round, leases stay as they are
	}
	avail := s.availFn(snap.Nodes)
	free := s.leases.Free(snap.Nodes)

	demand := 0
	for _, j := range s.queued {
		demand += j.Spec.Width
	}
	s.pricer.Observe(demand, len(free))
	if tel := s.cfg.Sim.Telemetry(); tel != nil {
		tel.Gauge(s.comp, "queue_depth").Set(float64(len(s.queued)))
		tel.Gauge(s.comp, "free_nodes").Set(float64(len(free)))
		tel.Gauge(s.comp, "spot_price").Set(s.pricer.Price())
	}
	prio := func(j *Job) float64 { return s.pricer.EffectivePriority(j.Spec.Bid) }

	// Admission loop: admit heads while they fit; under backfill, let
	// safe smaller jobs around a blocked head. Jobs inside their requeue
	// backoff window are invisible to the round.
	for {
		eligible := s.eligibleQueued(p.Now())
		if len(eligible) == 0 {
			break
		}
		order := orderQueue(s.cfg.Policy, eligible, prio)
		head := order[0]
		if nodes := s.placement(head, free, avail); len(nodes) >= s.needWidth(head) {
			if s.admit(p, head, nodes) {
				free = s.leases.Free(snap.Nodes)
				continue
			}
		}
		if s.cfg.Policy != PolicyBackfill || len(order) == 1 {
			break
		}
		shadow, extra := backfillWindow(p.Now(), len(free), s.needWidth(head), s.runningJobs())
		admitted := false
		for _, cand := range order[1:] {
			nodes := s.placement(cand, free, avail)
			if len(nodes) < s.needWidth(cand) {
				continue
			}
			if p.Now()+cand.Spec.EstRuntime > shadow && len(nodes) > extra {
				continue // would delay the head's reservation
			}
			if s.admit(p, cand, nodes) {
				free = s.leases.Free(snap.Nodes)
				admitted = true
				break
			}
		}
		if !admitted {
			break
		}
	}

	s.considerPreemption(p.Now(), free, avail, prio)
}

// eligibleQueued returns the queued jobs admissible now: those not parked
// inside a requeue-backoff window.
func (s *Scheduler) eligibleQueued(now float64) []*Job {
	if s.cfg.RequeueBackoff <= 0 {
		return s.queued
	}
	out := make([]*Job, 0, len(s.queued))
	for _, j := range s.queued {
		if j.notBefore <= now {
			out = append(out, j)
		}
	}
	return out
}

// placement maps a queued job over the free pool through its own mapper.
func (s *Scheduler) placement(job *Job, free []*topology.Node, avail func(*topology.Node) float64) []*topology.Node {
	return job.cop.Mapper().Map(free, avail)
}

// needWidth is the lease size the broker insists on for a job right now:
// the full request, relaxed down to MinWidth once the job has waited past
// RelaxAfter (so a shrunken Grid cannot strand a wide job forever).
func (s *Scheduler) needWidth(j *Job) int {
	w := j.Spec.Width
	if s.cfg.RelaxAfter > 0 && s.cfg.Sim.Now()-j.enqueuedAt >= s.cfg.RelaxAfter && j.minWidth() < w {
		return j.minWidth()
	}
	return w
}

// runningJobs returns the running jobs ordered by ID.
func (s *Scheduler) runningJobs() []*Job {
	var out []*Job
	for _, j := range s.jobs {
		if j.state == JobRunning {
			out = append(out, j)
		}
	}
	return out
}

// admit grants the lease and hands the job to its own application manager
// in a fresh runner process.
func (s *Scheduler) admit(p *simcore.Proc, job *Job, nodes []*topology.Node) bool {
	lease, err := s.leases.Grant(job.Spec.Name, nodes)
	if err != nil {
		return false
	}
	now := p.Now()
	job.lease = lease
	job.state = JobRunning
	if !job.started {
		job.started = true
		job.startAt = now
	}
	s.dequeue(job)
	s.admissions++
	if tel := s.cfg.Sim.Telemetry(); tel != nil {
		tel.Counter(s.comp, "admissions").Inc()
		tel.Histogram(s.comp, "wait_seconds").Observe(now - job.enqueuedAt)
		tel.Emit(telemetry.Event{
			Type: telemetry.EvJobAdmit, Comp: s.comp, Name: job.Spec.Name,
			Args: []telemetry.Arg{
				telemetry.I("nodes", len(nodes)),
				telemetry.F("wait", now-job.enqueuedAt),
				telemetry.F("price", s.pricer.Price()),
			},
		})
	}
	s.cfg.Sim.Spawn(fmt.Sprintf("job:%s", job.Spec.Name), func(rp *simcore.Proc) { s.runJob(rp, job) })
	return true
}

// dequeue removes a job from the admission queue.
func (s *Scheduler) dequeue(job *Job) {
	for i, j := range s.queued {
		if j == job {
			s.queued = append(s.queued[:i], s.queued[i+1:]...)
			return
		}
	}
}

// runJob drives one admitted job through its application manager until it
// completes, fails, or loses its whole lease (requeue).
func (s *Scheduler) runJob(p *simcore.Proc, job *Job) {
	mgr := appmgr.New(s.cfg.Sim, s.cfg.Grid, s.cfg.Binder, s.cfg.Weather)
	mgr.RSS = job.rss
	mgr.Retrier = s.cfg.Retrier
	mgr.PoolFn = func() []*topology.Node { return s.jobPool(job) }
	job.mgr = mgr

	rep, err := mgr.Execute(p, job.cop, job.lease.Nodes())
	if err != nil && (errors.Is(err, appmgr.ErrNoResources) || faultinject.Retryable(err)) {
		// The lease was reclaimed from under the job (crashes or a
		// preemption that cut to the bone), or a transient infrastructure
		// error outlasted the retry policy (e.g. a binder outage longer
		// than the attempt budget). Either way the grid may heal: roll
		// back to the last committed checkpoint and put the job back in
		// the queue — the requeue cap quarantines it if this never stops.
		if rec, ok := job.cop.(cop.Recoverable); ok {
			rec.Rollback()
		}
		s.requeue(job, rep)
		return
	}
	s.finish(job, rep, err)
}

// jobPool re-derives a job's resource pool at each segment start: pending
// preemptive shrinks are applied here — after the previous segment has
// checkpointed and stopped, which is the only safe release point — and
// crash-reclaimed nodes have already left the lease.
func (s *Scheduler) jobPool(job *Job) []*topology.Node {
	if job.pendingKeep != nil {
		keep := job.pendingKeep
		job.pendingKeep = nil
		job.preemptPending = false
		if freed := s.leases.Shrink(job.lease, keep); len(freed) > 0 {
			job.preemptions++
			s.preemptApplied++
			if tel := s.cfg.Sim.Telemetry(); tel != nil {
				tel.Counter(s.comp, "preempt_applied").Inc()
			}
			s.kick() // re-broker the freed nodes now, not at the next tick
		}
	}
	return job.lease.Nodes()
}

// requeue puts a job that lost its lease back in the queue — unless it has
// burned through the requeue cap, in which case it is quarantined as a
// poison job. With RequeueBackoff set, each successive requeue parks the
// job for exponentially longer before it competes for admission again.
func (s *Scheduler) requeue(job *Job, rep *appmgr.Report) {
	s.leases.Release(job.lease)
	job.lease = nil
	job.rss.ClearStop()
	job.pendingKeep = nil
	job.preemptPending = false
	job.requeues++
	if rep != nil {
		job.report = rep
	}
	if s.cfg.MaxRequeues > 0 && job.requeues >= s.cfg.MaxRequeues {
		s.quarantine(job)
		return
	}
	if s.cfg.RequeueBackoff > 0 {
		exp := job.requeues - 1
		if exp > 6 {
			exp = 6 // cap at 64x base: past that the delay adds nothing
		}
		job.notBefore = s.cfg.Sim.Now() + s.cfg.RequeueBackoff*float64(int(1)<<exp)
	}
	job.state = JobQueued
	job.enqueuedAt = s.cfg.Sim.Now()
	s.queued = append(s.queued, job)
	if tel := s.cfg.Sim.Telemetry(); tel != nil {
		tel.Counter(s.comp, "requeues").Inc()
	}
}

// quarantine retires a poison job: terminal like a failure, but named so
// the conservation ledger distinguishes "gave up on it deliberately" from
// "it broke" — and from "it vanished", which must never happen.
func (s *Scheduler) quarantine(job *Job) {
	now := s.cfg.Sim.Now()
	job.state = JobQuarantined
	job.finishAt = now
	job.failErr = fmt.Errorf("metasched: %s quarantined after %d requeues", job.Spec.Name, job.requeues)
	s.quarantined++
	s.cfg.Sim.Tracef("metasched: quarantined poison job %s (%d requeues)", job.Spec.Name, job.requeues)
	if tel := s.cfg.Sim.Telemetry(); tel != nil {
		tel.Counter(s.comp, "quarantines").Inc()
		tel.Emit(telemetry.Event{
			Type: telemetry.EvJobQuarantine, Comp: s.comp, Name: job.Spec.Name,
			Args: []telemetry.Arg{telemetry.I("requeues", job.requeues)},
		})
	}
	s.remaining--
	if s.cfg.OnJobDone != nil {
		s.cfg.OnJobDone(job)
	}
	if s.remaining == 0 && !s.cfg.HoldOpen && s.cfg.OnIdle != nil {
		s.cfg.OnIdle()
	}
}

// finish retires a job (done or failed), releases its lease and fires
// OnIdle after the last one.
func (s *Scheduler) finish(job *Job, rep *appmgr.Report, err error) {
	now := s.cfg.Sim.Now()
	s.leases.Release(job.lease)
	job.lease = nil
	if rep != nil {
		job.report = rep
	}
	job.finishAt = now
	if err != nil {
		job.state = JobFailed
		job.failErr = err
	} else {
		job.state = JobDone
	}
	if tel := s.cfg.Sim.Telemetry(); tel != nil {
		tel.Histogram(s.comp, "turnaround_seconds").Observe(now - job.submitAt)
		tel.Emit(telemetry.Event{
			Type: telemetry.EvJobDone, Comp: s.comp, Name: job.Spec.Name,
			Args: []telemetry.Arg{
				telemetry.B("ok", err == nil),
				telemetry.F("turnaround", now-job.submitAt),
				telemetry.I("preemptions", job.preemptions),
			},
		})
	}
	s.remaining--
	if s.cfg.OnJobDone != nil {
		s.cfg.OnJobDone(job)
	}
	if s.remaining == 0 && !s.cfg.HoldOpen && s.cfg.OnIdle != nil {
		s.cfg.OnIdle()
	}
}

// considerPreemption checks the queue head for starvation and, when a
// high-priority job has waited past StarveAfter under a priority policy,
// negotiates a stop-and-shrink of a lower-priority running job with the
// rescheduler. The victim checkpoints through SRS, its lease shrinks at the
// next segment boundary, and the freed nodes let the starving job in.
func (s *Scheduler) considerPreemption(now float64, free []*topology.Node, avail func(*topology.Node) float64, prio func(*Job) float64) {
	eligible := s.eligibleQueued(now)
	if s.cfg.Policy == PolicyFIFO || s.cfg.StarveAfter <= 0 || len(eligible) == 0 {
		return
	}
	order := orderQueue(s.cfg.Policy, eligible, prio)
	head := order[0]
	if now-head.enqueuedAt < s.cfg.StarveAfter {
		return
	}
	need := s.needWidth(head) - len(free)
	if need <= 0 {
		return // head is blocked on shape (e.g. same-site), not capacity
	}
	headPrio := prio(head)
	var victims []*rescheduler.Preemptee
	for _, j := range s.runningJobs() {
		if j.preemptPending || j.lease == nil || prio(j) >= headPrio {
			continue
		}
		victims = append(victims, &rescheduler.Preemptee{
			Name:     j.Spec.Name,
			App:      j.cop.Model(),
			Nodes:    j.lease.Nodes(),
			MinNodes: j.minWidth(),
			Priority: prio(j),
		})
	}
	if plan := s.resch.PlanPreemption(victims, need); plan != nil {
		s.orderShrink(s.byName[plan.Victim.Name], plan.Keep, head.Spec.Name)
	}
}

// orderShrink issues the SRS stop order that executes a negotiated shrink.
func (s *Scheduler) orderShrink(victim *Job, keep []*topology.Node, beneficiary string) {
	if victim == nil || victim.state != JobRunning || victim.preemptPending {
		return
	}
	victim.pendingKeep = keep
	victim.preemptPending = true
	s.preemptOrders++
	expected := victim.lease.Size()
	if tr, ok := victim.cop.(nodeTracker); ok && len(tr.CurNodes()) > 0 {
		expected = len(tr.CurNodes())
	}
	victim.rss.RequestStop(expected)
	if tel := s.cfg.Sim.Telemetry(); tel != nil {
		tel.Counter(s.comp, "preempt_orders").Inc()
		tel.Emit(telemetry.Event{
			Type: telemetry.EvJobPreempt, Comp: s.comp, Name: victim.Spec.Name,
			Args: []telemetry.Arg{
				telemetry.S("for", beneficiary),
				telemetry.I("keep", len(keep)),
			},
		})
	}
}

// ReportViolation is the contract-monitoring entry point: when a running
// job's performance contract is violated (its nodes underdeliver), the
// broker negotiates shrinking it to its MinWidth-fastest nodes so the
// flaky remainder returns to the pool. Returns whether a shrink was
// ordered.
func (s *Scheduler) ReportViolation(name string) bool {
	job := s.byName[name]
	if job == nil || job.state != JobRunning || job.preemptPending || job.lease == nil {
		return false
	}
	need := job.lease.Size() - job.minWidth()
	if need <= 0 {
		return false
	}
	v := &rescheduler.Preemptee{
		Name:     job.Spec.Name,
		App:      job.cop.Model(),
		Nodes:    job.lease.Nodes(),
		MinNodes: job.minWidth(),
	}
	plan := s.resch.PlanPreemption([]*rescheduler.Preemptee{v}, need)
	if plan == nil {
		return false
	}
	s.violations++
	if tel := s.cfg.Sim.Telemetry(); tel != nil {
		tel.Counter(s.comp, "contract_violations").Inc()
	}
	s.orderShrink(job, plan.Keep, "contract")
	return true
}

// Violations returns how many contract violations led to shrink orders.
func (s *Scheduler) Violations() int { return s.violations }

// Quarantined returns how many poison jobs the requeue cap retired.
func (s *Scheduler) Quarantined() int { return s.quarantined }

// Brownouts returns how many admission rounds were shed by detector
// storms.
func (s *Scheduler) Brownouts() int { return s.brownouts }

// StateCounts tallies every submitted job by lifecycle state — the
// conservation ledger the chaos soak checks each tick: the counts must
// always sum to the number of submissions, whatever faults are in flight.
func (s *Scheduler) StateCounts() map[JobState]int {
	out := make(map[JobState]int)
	for _, j := range s.jobs {
		out[j.state]++
	}
	return out
}

// Jobs returns every submitted job, by ID.
func (s *Scheduler) Jobs() []*Job { return append([]*Job(nil), s.jobs...) }

// Records flattens every job's outcome, ordered by ID.
func (s *Scheduler) Records() []Record {
	out := make([]Record, 0, len(s.jobs))
	for _, j := range s.jobs {
		r := Record{
			Name: j.Spec.Name, Kind: j.Spec.Kind, Width: j.Spec.Width,
			State:  j.state.String(),
			Submit: j.submitAt, Start: j.startAt, Finish: j.finishAt,
			Preemptions: j.preemptions, Requeues: j.requeues,
		}
		if j.started {
			r.Wait = j.startAt - j.submitAt
		}
		if j.state == JobDone || j.state == JobFailed || j.state == JobQuarantined {
			r.Turnaround = j.finishAt - j.submitAt
		}
		if j.report != nil {
			r.Failures = j.report.Failures
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
