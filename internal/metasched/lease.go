// Package metasched implements a contention-aware metascheduler over the
// emulated Grid: the resource broker that arbitrates a stream of competing
// GrADS applications, the regime the paper's SC2003 demonstrations ran in
// (multiple applications sharing the testbed simultaneously) and the one
// the GridSim / deadline-and-budget brokering literature studies.
//
// Jobs are submitted into a queue (FIFO, priority, or priority-backfill
// order, with priorities set by G-commerce-style posted-price bidding),
// admitted against a shared GIS/NWS snapshot of the free pool, and each
// admitted job runs through its own application manager on an exclusive
// *lease* of nodes. Leases make ownership explicit: overlapping grants are
// rejected, crashed nodes are reclaimed out of live leases by a topology
// watcher, and preemption — triggered by a starving high-priority job or a
// violated performance contract — is negotiated with the rescheduler and
// executed through the existing SRS stop-and-restart path onto a smaller
// lease.
package metasched

import (
	"fmt"
	"sort"

	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Lease is an exclusive grant of a node set to one job.
type Lease struct {
	ID      int
	JobID   string
	Granted float64 // virtual time of the grant

	nodes []*topology.Node // sorted by name; shrinks on reclaim/preempt
}

// Nodes returns the currently leased nodes, sorted by name.
func (l *Lease) Nodes() []*topology.Node {
	return append([]*topology.Node(nil), l.nodes...)
}

// Size returns how many nodes the lease currently holds.
func (l *Lease) Size() int { return len(l.nodes) }

// LeaseManager tracks per-node allocation for the metascheduler: which
// lease owns each node, the free remainder of any pool, and the busy
// node-seconds that leases have accumulated (the utilization numerator).
// A topology watcher reclaims crashed nodes out of live leases the moment
// they go down; a recovered node returns to the free pool, not to the lease
// it was reclaimed from.
type LeaseManager struct {
	sim  *simcore.Sim
	grid *topology.Grid

	nextID int
	leases map[int]*Lease
	owner  map[*topology.Node]*Lease

	// Utilization accounting: leased-node integral over time.
	leasedNow  int
	lastChange float64
	busy       float64

	reclaimed   int
	onReclaim   func(l *Lease, n *topology.Node)
	unsubscribe func()
}

// NewLeaseManager creates a manager over grid and subscribes its crash
// watcher.
func NewLeaseManager(sim *simcore.Sim, grid *topology.Grid) *LeaseManager {
	m := &LeaseManager{
		sim:    sim,
		grid:   grid,
		leases: make(map[int]*Lease),
		owner:  make(map[*topology.Node]*Lease),
	}
	m.unsubscribe = grid.OnNodeStateChange(func(n *topology.Node, down bool) {
		if down {
			m.reclaim(n)
		}
	})
	return m
}

// Close unsubscribes the crash watcher.
func (m *LeaseManager) Close() {
	if m.unsubscribe != nil {
		m.unsubscribe()
		m.unsubscribe = nil
	}
}

// OnReclaim installs a callback fired whenever a crashed node is reclaimed
// out of a live lease (after the lease has shrunk).
func (m *LeaseManager) OnReclaim(fn func(l *Lease, n *topology.Node)) { m.onReclaim = fn }

// Reclaimed returns how many nodes have been reclaimed from leases by
// crashes.
func (m *LeaseManager) Reclaimed() int { return m.reclaimed }

// LeasedNodes returns how many nodes are currently under lease.
func (m *LeaseManager) LeasedNodes() int { return m.leasedNow }

// BusyNodeSeconds returns the leased-node time integral up to now (the
// utilization numerator: node-seconds under lease).
func (m *LeaseManager) BusyNodeSeconds() float64 {
	m.account()
	return m.busy
}

// account folds the elapsed interval into the busy integral.
func (m *LeaseManager) account() {
	now := m.sim.Now()
	m.busy += float64(m.leasedNow) * (now - m.lastChange)
	m.lastChange = now
}

// Grant leases nodes exclusively to jobID. It rejects an empty set, a set
// containing a down node, and any overlap with an existing lease — resource
// ownership is explicit, so a double-grant is a broker bug, not a race to
// be tolerated.
func (m *LeaseManager) Grant(jobID string, nodes []*topology.Node) (*Lease, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("metasched: empty lease request for %s", jobID)
	}
	for _, n := range nodes {
		if n.Down() {
			return nil, fmt.Errorf("metasched: node %s is down", n.Name())
		}
		if holder := m.owner[n]; holder != nil {
			return nil, fmt.Errorf("metasched: node %s already leased to %s", n.Name(), holder.JobID)
		}
	}
	m.account()
	m.nextID++
	l := &Lease{ID: m.nextID, JobID: jobID, Granted: m.sim.Now(), nodes: sortedByName(nodes)}
	m.leases[l.ID] = l
	for _, n := range l.nodes {
		m.owner[n] = l
	}
	m.leasedNow += len(l.nodes)
	m.emitLease(telemetry.EvLeaseGrant, l, len(l.nodes))
	return l, nil
}

// Release returns every node of the lease to the free pool and retires it.
// Releasing an unknown (already released) lease is a no-op.
func (m *LeaseManager) Release(l *Lease) {
	if l == nil {
		return
	}
	if _, ok := m.leases[l.ID]; !ok {
		return
	}
	m.account()
	for _, n := range l.nodes {
		delete(m.owner, n)
	}
	m.leasedNow -= len(l.nodes)
	m.emitLease(telemetry.EvLeaseRelease, l, len(l.nodes))
	l.nodes = nil
	delete(m.leases, l.ID)
}

// Shrink reduces the lease to the keep subset (members of keep that are not
// in the lease are ignored) and returns the freed nodes. This is the
// preemption mechanic: the victim's next segment maps over the kept
// remainder while the freed nodes go back to the broker.
func (m *LeaseManager) Shrink(l *Lease, keep []*topology.Node) []*topology.Node {
	if l == nil {
		return nil
	}
	if _, ok := m.leases[l.ID]; !ok {
		return nil
	}
	keepSet := make(map[*topology.Node]bool, len(keep))
	for _, n := range keep {
		keepSet[n] = true
	}
	var kept, freed []*topology.Node
	for _, n := range l.nodes {
		if keepSet[n] {
			kept = append(kept, n)
		} else {
			freed = append(freed, n)
		}
	}
	if len(freed) == 0 {
		return nil
	}
	m.account()
	for _, n := range freed {
		delete(m.owner, n)
	}
	m.leasedNow -= len(freed)
	l.nodes = kept
	m.emitLease(telemetry.EvLeaseRelease, l, len(freed))
	return freed
}

// reclaim pulls a crashed node out of its lease, if any.
func (m *LeaseManager) reclaim(n *topology.Node) {
	l := m.owner[n]
	if l == nil {
		return
	}
	m.account()
	delete(m.owner, n)
	m.leasedNow--
	for i, ln := range l.nodes {
		if ln == n {
			l.nodes = append(l.nodes[:i], l.nodes[i+1:]...)
			break
		}
	}
	m.reclaimed++
	if tel := m.sim.Telemetry(); tel != nil {
		tel.Counter("lease", "reclaims").Inc()
		tel.Gauge("lease", "leased_nodes").Set(float64(m.leasedNow))
		tel.Emit(telemetry.Event{
			Type: telemetry.EvLeaseReclaim, Comp: "metasched", Name: n.Name(),
			Args: []telemetry.Arg{
				telemetry.I("lease", l.ID),
				telemetry.S("job", l.JobID),
				telemetry.I("remaining", len(l.nodes)),
			},
		})
	}
	if m.onReclaim != nil {
		m.onReclaim(l, n)
	}
}

// Audit structurally checks the ledger: every leased node is owned by
// exactly the lease that lists it, no live lease holds a down node (the
// crash watcher reclaims synchronously, so one ever appearing means a
// reclaim was lost), and the leased-node gauge equals both the ownership
// map and the sum of lease sizes. The chaos soak calls it every tick; any
// error is an accounting bug, not a tolerable transient.
func (m *LeaseManager) Audit() error {
	total := 0
	for _, l := range m.leases {
		total += len(l.nodes)
		for _, n := range l.nodes {
			if m.owner[n] != l {
				return fmt.Errorf("lease audit: node %s listed by lease %d but owned by another", n.Name(), l.ID)
			}
			if n.Down() {
				return fmt.Errorf("lease audit: down node %s still held by lease %d (reclaim lost)", n.Name(), l.ID)
			}
		}
	}
	if total != len(m.owner) {
		return fmt.Errorf("lease audit: %d nodes in lease sets but %d ownership entries", total, len(m.owner))
	}
	if total != m.leasedNow {
		return fmt.Errorf("lease audit: %d nodes in lease sets but leased-node gauge reads %d", total, m.leasedNow)
	}
	return nil
}

// Free filters a pool down to live, unleased nodes, sorted by name.
func (m *LeaseManager) Free(pool []*topology.Node) []*topology.Node {
	var out []*topology.Node
	for _, n := range pool {
		if !n.Down() && m.owner[n] == nil {
			out = append(out, n)
		}
	}
	return sortedByName(out)
}

// emitLease publishes a lease transition plus the leased-nodes gauge.
func (m *LeaseManager) emitLease(ev telemetry.EventType, l *Lease, count int) {
	tel := m.sim.Telemetry()
	if tel == nil {
		return
	}
	switch ev {
	case telemetry.EvLeaseGrant:
		tel.Counter("lease", "grants").Inc()
	case telemetry.EvLeaseRelease:
		tel.Counter("lease", "releases").Inc()
	}
	tel.Gauge("lease", "leased_nodes").Set(float64(m.leasedNow))
	tel.Emit(telemetry.Event{
		Type: ev, Comp: "metasched", Name: l.JobID,
		Args: []telemetry.Arg{
			telemetry.I("lease", l.ID),
			telemetry.I("nodes", count),
		},
	})
}

// sortedByName returns a name-sorted copy of nodes.
func sortedByName(nodes []*topology.Node) []*topology.Node {
	out := append([]*topology.Node(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
