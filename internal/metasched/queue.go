package metasched

import (
	"fmt"
	"math"
	"sort"
)

// Policy names a queue-ordering discipline for the admission queue.
type Policy string

const (
	// PolicyFIFO admits strictly in submission order; the head of the line
	// blocks everything behind it.
	PolicyFIFO Policy = "fifo"
	// PolicyPriority orders the queue by effective priority (bid against
	// the posted spot price); the highest-priority job blocks the rest.
	PolicyPriority Policy = "priority"
	// PolicyBackfill is PolicyPriority with EASY backfill: while the head
	// waits for its nodes, smaller jobs may jump ahead if they fit now and
	// do not delay the head's reservation.
	PolicyBackfill Policy = "priority-backfill"
)

// Policies lists every known policy in a stable order.
func Policies() []Policy { return []Policy{PolicyFIFO, PolicyPriority, PolicyBackfill} }

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if string(p) == s {
			return p, nil
		}
	}
	return "", fmt.Errorf("metasched: unknown queue policy %q (want fifo, priority or priority-backfill)", s)
}

// orderQueue returns the queued jobs in admission order under the policy.
// FIFO orders by queue-entry time (ties by job ID); the priority policies
// order by descending effective priority, with entry time then ID breaking
// ties so equal bids degrade to FIFO.
func orderQueue(policy Policy, queued []*Job, prio func(*Job) float64) []*Job {
	order := append([]*Job(nil), queued...)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if policy != PolicyFIFO {
			pa, pb := prio(a), prio(b)
			if pa != pb {
				return pa > pb
			}
		}
		if a.enqueuedAt != b.enqueuedAt {
			return a.enqueuedAt < b.enqueuedAt
		}
		return a.ID < b.ID
	})
	return order
}

// backfillWindow computes the EASY reservation for the blocked head job:
// the shadow time at which, per the running jobs' runtime estimates, enough
// nodes will have come free for the head (headNeed nodes), and the extra
// nodes beyond the head's need available at that time. A backfilled job is
// safe if it either finishes before the shadow time or fits within the
// extra nodes. When the estimates never free enough nodes the window is
// unbounded (the reservation cannot be computed, so backfill is
// unrestricted — matching EASY's behavior of only reserving for a
// satisfiable head).
func backfillWindow(now float64, free int, headNeed int, running []*Job) (shadow float64, extra int) {
	if free >= headNeed {
		return now, free - headNeed
	}
	type release struct {
		at    float64
		width int
	}
	rel := make([]release, 0, len(running))
	for _, j := range running {
		if j.lease == nil || j.lease.Size() == 0 {
			continue
		}
		at := j.startAt + j.Spec.EstRuntime
		if at < now {
			at = now
		}
		rel = append(rel, release{at: at, width: j.lease.Size()})
	}
	sort.SliceStable(rel, func(i, j int) bool { return rel[i].at < rel[j].at })
	avail := free
	for _, r := range rel {
		avail += r.width
		if avail >= headNeed {
			return r.at, avail - headNeed
		}
	}
	return math.Inf(1), math.MaxInt32
}
