package metasched

import (
	"testing"

	"grads/internal/topology"
)

// TestReclaimDuringInFlightPreemption: a preemption order names a keep set,
// but before the victim applies the shrink, one kept node and one to-be-freed
// node crash. The shrink must converge to the live subset of the keep set,
// never resurrect the crashed nodes, and leave the ownership accounting
// consistent enough for the freed nodes to be granted onward.
func TestReclaimDuringInFlightPreemption(t *testing.T) {
	r := newRig(1)
	lm := NewLeaseManager(r.sim, r.grid)
	nodes := sortedByName(r.grid.Nodes())

	l, err := lm.Grant("victim", nodes[:4])
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	// The broker decides to shrink the victim to nodes[:2] (the preempt
	// order is now "in flight": the victim still has to checkpoint and stop
	// before the shrink is applied).
	keep := nodes[:2]

	// While the order is in flight, a kept node and a doomed node crash and
	// are reclaimed by the topology watcher.
	r.sim.At(10, func() { r.grid.SetNodeDown(nodes[1].Name(), true) })
	r.sim.At(10, func() { r.grid.SetNodeDown(nodes[3].Name(), true) })
	// The victim's stop completes at t=20 and the shrink is applied with the
	// now-stale keep set.
	var freed []*topology.Node
	r.sim.At(20, func() { freed = lm.Shrink(l, keep) })
	r.sim.Run()

	if lm.Reclaimed() != 2 {
		t.Fatalf("reclaimed = %d, want 2", lm.Reclaimed())
	}
	// The lease must hold exactly the live kept node.
	if l.Size() != 1 || l.Nodes()[0] != nodes[0] {
		t.Fatalf("lease holds %v, want [%s]", l.Nodes(), nodes[0].Name())
	}
	// The shrink freed only the live non-kept node; the crashed ones were
	// already reclaimed and must not be handed back to the broker.
	if len(freed) != 1 || freed[0] != nodes[2] {
		t.Fatalf("shrink freed %v, want [%s]", freed, nodes[2].Name())
	}
	if lm.LeasedNodes() != l.Size() {
		t.Fatalf("leasedNodes = %d, lease size = %d", lm.LeasedNodes(), l.Size())
	}
	// Crashed nodes stay out of the free pool; the freed node is grantable.
	for _, n := range lm.Free(nodes) {
		if n.Down() {
			t.Fatalf("down node %s in free pool", n.Name())
		}
	}
	if _, err := lm.Grant("beneficiary", freed); err != nil {
		t.Fatalf("granting shrink-freed node: %v", err)
	}
	lm.Release(l)
	if lm.LeasedNodes() != 1 {
		t.Fatalf("leasedNodes = %d after release, want 1 (beneficiary)", lm.LeasedNodes())
	}
}

// TestCrashDuringShrinkUnderPartition: a node crashes while a preemption
// shrink is in flight AND the grid is WAN-partitioned. The partition is a
// network event and must not touch lease state; the crash must be
// reclaimed exactly once even when reported twice (e.g. a storm plus the
// detector sweep both observing it); the late shrink converges on the live
// subset; and the busy-node-seconds integral must balance against the
// piecewise lease-size timeline to the second.
func TestCrashDuringShrinkUnderPartition(t *testing.T) {
	r := newRig(1)
	lm := NewLeaseManager(r.sim, r.grid)
	nodes := sortedByName(r.grid.Nodes())
	utk := nodes[len(nodes)-4:] // utk1..utk4 sort after uiuc*
	l, err := lm.Grant("victim", utk)
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	keep := utk[:2]
	reclaims := 0
	lm.OnReclaim(func(*Lease, *topology.Node) { reclaims++ })

	// t=10: the WAN partitions. Leases are broker-side state, not flows.
	r.sim.At(10, func() {
		wan := r.grid.Net.Link("wan:UIUC|UTK")
		if wan == nil {
			t.Error("no wan:UIUC|UTK link in the QR testbed")
			return
		}
		r.grid.Net.SetLinkDown(wan, true)
		if err := lm.Audit(); err != nil {
			t.Errorf("audit after partition: %v", err)
		}
		if l.Size() != 4 {
			t.Errorf("partition changed lease size to %d", l.Size())
		}
	})
	// t=15: a kept node crashes mid-partition, and the crash is reported
	// twice within the same instant.
	r.sim.At(15, func() { r.grid.SetNodeDown(keep[1].Name(), true) })
	r.sim.At(15, func() { r.grid.SetNodeDown(keep[1].Name(), true) })
	// t=20: the victim's stop completes and the stale shrink is applied.
	var freed []*topology.Node
	r.sim.At(20, func() {
		freed = lm.Shrink(l, keep)
		if err := lm.Audit(); err != nil {
			t.Errorf("audit after shrink: %v", err)
		}
	})
	// t=30: the partition heals; again no lease movement.
	r.sim.At(30, func() {
		r.grid.Net.SetLinkDown(r.grid.Net.Link("wan:UIUC|UTK"), false)
	})
	r.sim.RunUntil(40)

	if reclaims != 1 || lm.Reclaimed() != 1 {
		t.Fatalf("crash under partition reclaimed %d/%d times, want exactly 1", reclaims, lm.Reclaimed())
	}
	if l.Size() != 1 || l.Nodes()[0] != keep[0] {
		t.Fatalf("lease holds %v, want [%s]", l.Nodes(), keep[0].Name())
	}
	if len(freed) != 2 {
		t.Fatalf("shrink freed %d nodes, want the 2 live non-kept ones", len(freed))
	}
	if err := lm.Audit(); err != nil {
		t.Fatalf("final audit: %v", err)
	}
	// Busy integral: 4 nodes over [0,15), 3 over [15,20), 1 over [20,40].
	want := 4*15.0 + 3*5.0 + 1*20.0
	if got := lm.BusyNodeSeconds(); got != want {
		t.Fatalf("busy node-seconds = %v, want %v", got, want)
	}
}

// TestDoubleCrashSameNodeWithinOneTick: the same node crashing twice at one
// virtual instant — both the degenerate repeat (already down) and the
// crash/recover/crash sequence — must reclaim the node from its lease
// exactly once and keep the accounting consistent.
func TestDoubleCrashSameNodeWithinOneTick(t *testing.T) {
	r := newRig(1)
	lm := NewLeaseManager(r.sim, r.grid)
	nodes := sortedByName(r.grid.Nodes())

	l, err := lm.Grant("a", nodes[:4])
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	reclaims := 0
	lm.OnReclaim(func(*Lease, *topology.Node) { reclaims++ })

	// Two crash events for the same node at the same instant: the second is
	// a state no-op and must not re-reclaim.
	r.sim.At(10, func() { r.grid.SetNodeDown(nodes[0].Name(), true) })
	r.sim.At(10, func() { r.grid.SetNodeDown(nodes[0].Name(), true) })
	r.sim.RunUntil(11)
	if reclaims != 1 || lm.Reclaimed() != 1 {
		t.Fatalf("double crash reclaimed %d/%d times, want 1", reclaims, lm.Reclaimed())
	}
	if l.Size() != 3 || lm.LeasedNodes() != 3 {
		t.Fatalf("lease %d leased %d after double crash, want 3/3", l.Size(), lm.LeasedNodes())
	}

	// Crash, recover, and crash again within one tick. The recovery returns
	// the node to the free pool — not to the lease it was reclaimed from —
	// so the second crash finds it unleased and reclaims nothing.
	r.sim.At(20, func() { r.grid.SetNodeDown(nodes[1].Name(), true) })
	r.sim.At(20, func() { r.grid.SetNodeDown(nodes[1].Name(), false) })
	r.sim.At(20, func() { r.grid.SetNodeDown(nodes[1].Name(), true) })
	r.sim.RunUntil(21)
	if reclaims != 2 || lm.Reclaimed() != 2 {
		t.Fatalf("crash/recover/crash reclaimed %d/%d times, want 2", reclaims, lm.Reclaimed())
	}
	if l.Size() != 2 || lm.LeasedNodes() != 2 {
		t.Fatalf("lease %d leased %d, want 2/2", l.Size(), lm.LeasedNodes())
	}
	// The twice-crashed node is down and must not be grantable or free.
	if !nodes[1].Down() {
		t.Fatal("node should have ended the tick down")
	}
	for _, n := range lm.Free(nodes) {
		if n == nodes[0] || n == nodes[1] {
			t.Fatalf("crashed node %s in free pool", n.Name())
		}
	}
	if _, err := lm.Grant("b", nodes[1:2]); err == nil {
		t.Fatal("grant of a down node accepted")
	}

	// Recover for good: the node becomes free and grantable again, while the
	// original lease stays shrunk.
	r.sim.At(30, func() { r.grid.SetNodeDown(nodes[1].Name(), false) })
	r.sim.RunUntil(31)
	if _, err := lm.Grant("b", nodes[1:2]); err != nil {
		t.Fatalf("grant of recovered node: %v", err)
	}
	if l.Size() != 2 {
		t.Fatalf("recovery changed the victim lease to %d nodes", l.Size())
	}
}
