package srs

import (
	"testing"

	"grads/internal/mpi"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// storeRound runs a one-rank world on node that writes one checkpoint and
// waits for it (and its async replica) to land.
func storeRound(p *simcore.Proc, r *rig, node *topology.Node, name, key string, bytes float64) {
	w := mpi.NewWorld(r.sim, r.grid, name, []*topology.Node{node})
	w.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		if err := lib.StoreCheckpoint(key, bytes); err != nil {
			panic("StoreCheckpoint: " + err.Error())
		}
	})
	w.Wait(p)
	p.Sleep(60) // let the lazy buddy-depot replica finish
}

func TestCorruptGenerationFallsBackThroughLineage(t *testing.T) {
	r := newRig()
	a1 := r.grid.Node("a1")
	var marker int
	var ok bool
	r.sim.Spawn("driver", func(p *simcore.Proc) {
		// Epoch 1: a good committed generation.
		storeRound(p, r, a1, "e1", "k", 1e7)
		r.rss.Commit(10, []string{"k"})

		// Epoch 2: written entirely inside a torn-write window, so both the
		// primary blob and its replica land corrupt.
		r.st.SetCorrupting("a1", true)
		r.st.SetCorrupting("a2", true)
		storeRound(p, r, a1, "e2", "k", 1e7)
		r.rss.Commit(20, []string{"k"})
		r.st.SetCorrupting("a1", false)
		r.st.SetCorrupting("a2", false)

		marker, ok = r.rss.PlanRestore()
	})
	r.sim.Run()

	if !ok {
		t.Fatal("PlanRestore found no restorable generation despite intact epoch 1")
	}
	if marker != 10 {
		t.Fatalf("resume marker = %d, want epoch-1 marker 10 (rolled back in lockstep)", marker)
	}
	if r.rss.LineageFallbacks() != 1 {
		t.Fatalf("lineage fallbacks = %d, want 1", r.rss.LineageFallbacks())
	}
	if r.rss.CorruptDetected() == 0 {
		t.Fatal("corrupt epoch-2 blobs were not detected")
	}
	if r.rss.CorruptServed() != 0 {
		t.Fatalf("corrupt reads served = %d, must stay 0", r.rss.CorruptServed())
	}
}

func TestCorruptPrimaryRestoresFromReplica(t *testing.T) {
	r := newRig()
	a1 := r.grid.Node("a1")
	bytes := 1e7
	var marker int
	var ok bool
	var restored float64
	var restoreErr error
	r.sim.Spawn("driver", func(p *simcore.Proc) {
		storeRound(p, r, a1, "w", "k", bytes)
		r.rss.Commit(5, []string{"k"})

		// Rot the primary depot only; the buddy replica stays intact.
		r.st.CorruptAll("a1")

		marker, ok = r.rss.PlanRestore()
		w := mpi.NewWorld(r.sim, r.grid, "restore", []*topology.Node{r.grid.Node("b1")})
		w.Start(func(ctx *mpi.Ctx) {
			lib := Attach(r.rss, ctx)
			restored, restoreErr = lib.RestoreShare(0, 1)
		})
		w.Wait(p)
	})
	r.sim.Run()

	if !ok || marker != 5 {
		t.Fatalf("PlanRestore = (%d, %v), want (5, true): replica should keep the epoch viable", marker, ok)
	}
	if restoreErr != nil {
		t.Fatalf("RestoreShare: %v", restoreErr)
	}
	if restored != bytes {
		t.Fatalf("restored %v bytes, want %v", restored, bytes)
	}
	if r.rss.CorruptDetected() == 0 {
		t.Fatal("rotted primary was never detected")
	}
	if r.rss.CorruptServed() != 0 {
		t.Fatalf("corrupt reads served = %d, must stay 0", r.rss.CorruptServed())
	}
}

func TestUncommittedUnverifiableRestartsFromScratch(t *testing.T) {
	r := newRig()
	a1 := r.grid.Node("a1")
	var intactMarker, marker int
	var intactOK, ok bool
	r.sim.Spawn("driver", func(p *simcore.Proc) {
		// Single-round caller: stores but never commits an epoch.
		storeRound(p, r, a1, "w", "k", 1e7)
		r.rss.SetResumeMarker(7)
		intactMarker, intactOK = r.rss.PlanRestore()

		// Both copies rot. The legacy path must refuse to resume rather
		// than plan a restore that can only ever read bad bytes.
		r.st.CorruptAll("a1")
		r.st.CorruptAll("a2")
		marker, ok = r.rss.PlanRestore()
	})
	r.sim.Run()

	if !intactOK || intactMarker != 7 {
		t.Fatalf("intact uncommitted state: PlanRestore = (%d, %v), want (7, true)", intactMarker, intactOK)
	}
	if ok || marker != 0 {
		t.Fatalf("rotted uncommitted state: PlanRestore = (%d, %v), want (0, false) scratch restart", marker, ok)
	}
}
