package srs

import (
	"testing"

	"grads/internal/mpi"
)

// storeOne runs a one-rank world on node aIdx of site A that writes one
// checkpoint of the given size.
func storeOne(t *testing.T, r *rig, key string, bytes float64) {
	t.Helper()
	w := mpi.NewWorld(r.sim, r.grid, "writer", siteNodes(r.grid, "A")[:1])
	w.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		if err := lib.StoreCheckpoint(key, bytes); err != nil {
			t.Errorf("StoreCheckpoint: %v", err)
		}
	})
	r.sim.Run() // drains the async replica data mover too
}

func TestCheckpointReplicatedToBuddyDepot(t *testing.T) {
	r := newRig()
	storeOne(t, r, "k0", 1e7)
	cks := r.rss.Checkpoints()
	if len(cks) != 1 {
		t.Fatalf("%d checkpoints registered, want 1", len(cks))
	}
	c := cks[0]
	if c.Replica == nil {
		t.Fatal("no replica attached after the data mover drained")
	}
	if c.Replica == c.Depot {
		t.Fatal("replica landed on the primary depot")
	}
	if c.Replica.Site() != c.Depot.Site() {
		t.Fatalf("replica on %s, want a same-site LAN buddy", c.Replica.Name())
	}
	if sz, ok := r.st.Size(c.Replica.Name(), r.rss.blobKey("k0", c.Epoch)); !ok || sz != 1e7 {
		t.Fatalf("replica blob = %v, %v; want the full 1e7 bytes", sz, ok)
	}
	if !r.st.Verify(c.Replica.Name(), r.rss.blobKey("k0", c.Epoch), c.Sum) {
		t.Fatal("replica blob does not verify against the writer checksum")
	}
}

func TestRestoreFallsBackToReplicaWhenPrimaryDown(t *testing.T) {
	r := newRig()
	storeOne(t, r, "k0", 1e7)
	primary := r.rss.Checkpoints()[0].Depot

	// The checkpoint holder crashes; a new world on site B restores.
	primary.SetDown(true)
	var restored float64
	w := mpi.NewWorld(r.sim, r.grid, "restarter", siteNodes(r.grid, "B")[:1])
	w.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		n, err := lib.RestoreShare(0, 1)
		if err != nil {
			t.Errorf("RestoreShare with primary down: %v", err)
		}
		restored = n
	})
	r.sim.Run()
	if restored != 1e7 {
		t.Fatalf("restored %v bytes from the replica, want 1e7", restored)
	}
}

func TestRestoreFailsWithoutReplication(t *testing.T) {
	r := newRig()
	r.rss.SetReplication(false)
	storeOne(t, r, "k0", 1e7)
	if c := r.rss.Checkpoints()[0]; c.Replica != nil {
		t.Fatal("replica created with replication off")
	}
	r.rss.Checkpoints()[0].Depot.SetDown(true)
	w := mpi.NewWorld(r.sim, r.grid, "restarter", siteNodes(r.grid, "B")[:1])
	w.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		if _, err := lib.RestoreShare(0, 1); err == nil {
			t.Error("RestoreShare succeeded with the only copy unreachable")
		}
	})
	r.sim.Run()
}

// TestStaleReplicaInvalidated: re-writing a key while its replica copy is
// still in flight must not leave the old epoch's bytes as the registered
// replica.
func TestStaleReplicaInvalidated(t *testing.T) {
	r := newRig()
	w := mpi.NewWorld(r.sim, r.grid, "writer", siteNodes(r.grid, "A")[:1])
	w.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		if err := lib.StoreCheckpoint("k0", 1e7); err != nil {
			t.Errorf("first StoreCheckpoint: %v", err)
		}
		// Overwrite immediately: the first epoch's data mover is still
		// copying when this lands.
		if err := lib.StoreCheckpoint("k0", 2e7); err != nil {
			t.Errorf("second StoreCheckpoint: %v", err)
		}
	})
	r.sim.Run()
	c := r.rss.Checkpoints()[0]
	if c.Bytes != 2e7 {
		t.Fatalf("registered %v bytes, want the second epoch's 2e7", c.Bytes)
	}
	if c.Replica == nil {
		t.Fatal("no replica after both movers drained")
	}
	if sz, ok := r.st.Size(c.Replica.Name(), r.rss.blobKey("k0", c.Epoch)); !ok || sz != 2e7 {
		t.Fatalf("replica blob = %v, %v; want the fresh 2e7-byte copy", sz, ok)
	}
}
